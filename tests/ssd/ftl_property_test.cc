/**
 * @file
 * Randomized property tests of the capacity-recycling FTL: a model
 * checker drives random allocate / free / dropGroup / collect
 * sequences on the tiny geometry and asserts the structural
 * invariants the drive relies on after every step:
 *
 *  - no live LPN resolves into a block on the free list;
 *  - per-column live-page counters match a reference model exactly;
 *  - free + allocated blocks never exceed the geometry, and blocks
 *    hand themselves back to the free list only via collect();
 *  - grouped operands keep Equation-1 wordline alignment (same
 *    sub-block, successive wordlines) across any number of GC
 *    relocations.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ssd/ftl.h"
#include "util/rng.h"

namespace fcos::ssd {
namespace {

class FtlPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    FtlPropertyTest() : geom(nand::Geometry::tiny()) {}

    nand::Geometry geom;
};

/** One grouped vector the model tracks (pages all live or freed). */
struct ModelVector
{
    std::uint64_t group = 0;
    std::uint64_t ord = 0; ///< allocation order within the group
    std::vector<Lpn> lpns;
};

TEST_P(FtlPropertyTest, RandomTrafficKeepsInvariants)
{
    const std::uint32_t kDies = 2;
    Ftl ftl(kDies, geom);
    Rng rng = Rng::seeded(GetParam());

    const std::uint32_t columns = ftl.columns();
    // Capacity guards. GC relocates sub-blocks as units — it never
    // merges partial sub-blocks of different groups — so a pathological
    // mix of tiny groups can pin one sub-block per live page. Keep the
    // live-page load low AND require real free-block headroom on every
    // column before allocating (an allocation opens at most three new
    // sub-blocks per column; three free blocks cover that plus the GC
    // reserve with relocation room to spare).
    const std::uint64_t per_column = std::uint64_t{geom.blocksPerPlane} *
                                     geom.subBlocksPerBlock *
                                     geom.wordlinesPerSubBlock;
    const std::uint64_t live_budget = columns * per_column / 4;
    const auto headroom = [&] {
        for (std::uint32_t col = 0; col < columns; ++col)
            if (ftl.freeBlocks(col) < 3)
                return false;
        return true;
    };

    std::vector<Lpn> striped_live;          // individually freeable
    std::vector<ModelVector> group_vectors; // freed group-at-a-time
    std::map<std::uint64_t, std::uint64_t> group_sizes;
    std::map<std::uint64_t, std::uint64_t> group_next_ord;
    std::uint64_t next_group = 1;

    const auto modelLiveCount = [&] {
        std::uint64_t n = striped_live.size();
        for (const ModelVector &v : group_vectors)
            n += v.lpns.size();
        return n;
    };

    const auto checkInvariants = [&] {
        // Per-column tallies rebuilt from the model.
        std::vector<std::uint64_t> col_live(columns, 0);
        const auto visit = [&](Lpn lpn) {
            ASSERT_TRUE(ftl.isLive(lpn));
            const PhysPage p = ftl.physOf(lpn);
            const std::uint32_t col =
                p.die * geom.planesPerDie + p.addr.plane;
            ++col_live[col];
            // A live page's block must be allocated (not free-listed).
            EXPECT_TRUE(ftl.blockAllocated(p.die, p.addr.plane,
                                           p.addr.block));
            nand::checkAddr(geom, p.addr);
        };
        for (Lpn lpn : striped_live)
            visit(lpn);
        for (const ModelVector &v : group_vectors)
            for (Lpn lpn : v.lpns)
                visit(lpn);
        EXPECT_EQ(ftl.liveCount(), modelLiveCount());
        for (std::uint32_t col = 0; col < columns; ++col) {
            EXPECT_EQ(ftl.livePages(col), col_live[col]) << "col " << col;
            // Block conservation: free + allocated never exceeds the
            // plane (untouched fresh blocks are in neither set).
            EXPECT_LE(ftl.freeBlocks(col) + ftl.allocatedBlocks(col),
                      std::uint64_t{geom.blocksPerPlane})
                << "col " << col;
        }
        // Equation-1 alignment: vector k of a group sits at wordline
        // (first vector's wordline + k) of the *same* sub-block, per
        // column — through any number of relocations.
        std::map<std::uint64_t, std::vector<const ModelVector *>>
            by_group;
        for (const ModelVector &v : group_vectors)
            by_group[v.group].push_back(&v);
        for (auto &[group, vecs] : by_group) {
            (void)group;
            std::sort(vecs.begin(), vecs.end(),
                      [](const ModelVector *a, const ModelVector *b) {
                          return a->ord < b->ord;
                      });
        }
        for (const auto &[group, vecs] : by_group) {
            // Vector k of a group sits at wordline k % wlPerSub of the
            // sub-block shared by its run of wlPerSub vectors (runs
            // overflow into fresh sub-blocks; relocation preserves
            // wordline offsets).
            const std::uint32_t wl_per_sub = geom.wordlinesPerSubBlock;
            for (std::size_t k = 0; k < vecs.size(); ++k) {
                const ModelVector &v = *vecs[k];
                const ModelVector &base = *vecs[k - k % wl_per_sub];
                ASSERT_EQ(v.lpns.size(), base.lpns.size());
                for (std::size_t i = 0; i < v.lpns.size(); ++i) {
                    const PhysPage a = ftl.physOf(base.lpns[i]);
                    const PhysPage b = ftl.physOf(v.lpns[i]);
                    EXPECT_EQ(a.die, b.die);
                    EXPECT_EQ(a.addr.plane, b.addr.plane);
                    EXPECT_EQ(a.addr.block, b.addr.block);
                    EXPECT_EQ(a.addr.subBlock, b.addr.subBlock);
                    EXPECT_EQ(b.addr.wordline, k % wl_per_sub)
                        << "group " << group << " vec " << k << " page "
                        << i;
                }
            }
        }
    };

    for (int step = 0; step < 400; ++step) {
        const std::uint64_t op = rng.nextBounded(100);
        if (op < 30) {
            // Striped allocation (small, budget-guarded).
            const std::uint64_t pages = 1 + rng.nextBounded(12);
            if (headroom() && modelLiveCount() + pages <= live_budget) {
                auto lpns = ftl.allocateStriped(pages);
                striped_live.insert(striped_live.end(), lpns.begin(),
                                    lpns.end());
            }
        } else if (op < 50) {
            // Grow a group: new or existing, lockstep page count.
            const bool fresh =
                group_sizes.empty() || rng.nextBounded(3) == 0;
            std::uint64_t group, pages;
            if (fresh) {
                group = next_group++;
                pages = 1 + rng.nextBounded(10);
            } else {
                auto it = group_sizes.begin();
                std::advance(it, static_cast<long>(
                                     rng.nextBounded(group_sizes.size())));
                group = it->first;
                pages = it->second;
            }
            if (headroom() && modelLiveCount() + pages <= live_budget) {
                ModelVector v;
                v.group = group;
                v.ord = group_next_ord[group]++;
                v.lpns = ftl.allocateInGroup(group, pages);
                group_vectors.push_back(std::move(v));
                group_sizes[group] = pages;
            }
        } else if (op < 70) {
            // Free random striped pages (overwrite/trim traffic).
            if (!striped_live.empty()) {
                const std::uint64_t n =
                    1 + rng.nextBounded(striped_live.size());
                for (std::uint64_t i = 0; i < n; ++i) {
                    const std::size_t j = static_cast<std::size_t>(
                        rng.nextBounded(striped_live.size()));
                    ftl.free(striped_live[j]);
                    striped_live[j] = striped_live.back();
                    striped_live.pop_back();
                }
            }
        } else if (op < 85) {
            // Trim one whole group (every vector, then dropGroup).
            if (!group_sizes.empty()) {
                auto it = group_sizes.begin();
                std::advance(it, static_cast<long>(
                                     rng.nextBounded(group_sizes.size())));
                const std::uint64_t group = it->first;
                for (std::size_t j = 0; j < group_vectors.size();) {
                    if (group_vectors[j].group == group) {
                        for (Lpn lpn : group_vectors[j].lpns)
                            ftl.free(lpn);
                        group_vectors[j] = group_vectors.back();
                        group_vectors.pop_back();
                    } else {
                        ++j;
                    }
                }
                ftl.dropGroup(group);
                group_sizes.erase(it);
            }
        } else {
            // Collect a random column (whether or not it is needy —
            // collect() must be safe to call any time).
            const std::uint32_t col =
                static_cast<std::uint32_t>(rng.nextBounded(columns));
            Ftl::GcPlan plan;
            if (ftl.collect(col, {}, &plan)) {
                EXPECT_EQ(plan.column, col);
                // Every reported move's destination must now be where
                // the mapping table points (spot check via rmap).
                for (const Ftl::GcMove &m : plan.moves)
                    EXPECT_EQ(m.src.die, m.dst.die);
            }
        }
        // Drain any columns GC policy says are needy, as the drive
        // would, so allocation never runs out of space.
        for (std::uint32_t col = 0; col < columns; ++col) {
            Ftl::GcPlan plan;
            while (ftl.gcNeeded(col) && ftl.collect(col, {}, &plan)) {
            }
        }
        checkInvariants();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlPropertyTest,
                         ::testing::Values(1u, 20260808u, 0xFC05u,
                                           424242u));

} // namespace
} // namespace fcos::ssd
