/**
 * @file
 * Energy meter tests.
 */

#include <gtest/gtest.h>

#include "ssd/energy.h"

namespace fcos::ssd {
namespace {

TEST(EnergyMeterTest, AccumulatesPerComponent)
{
    EnergyMeter m;
    m.add(EnergyComponent::NandRead, 1.0);
    m.add(EnergyComponent::NandRead, 2.0);
    m.add(EnergyComponent::HostCpu, 4.0);
    EXPECT_DOUBLE_EQ(m.get(EnergyComponent::NandRead), 3.0);
    EXPECT_DOUBLE_EQ(m.get(EnergyComponent::HostCpu), 4.0);
    EXPECT_DOUBLE_EQ(m.get(EnergyComponent::NandErase), 0.0);
    EXPECT_DOUBLE_EQ(m.total(), 7.0);
}

TEST(EnergyMeterTest, ScaleAffectsOneComponent)
{
    EnergyMeter m;
    m.add(EnergyComponent::ChannelDma, 2.0);
    m.add(EnergyComponent::HostCpu, 1.0);
    m.scale(EnergyComponent::ChannelDma, 8.0);
    EXPECT_DOUBLE_EQ(m.get(EnergyComponent::ChannelDma), 16.0);
    EXPECT_DOUBLE_EQ(m.get(EnergyComponent::HostCpu), 1.0);
}

TEST(EnergyMeterTest, ResetZeroesEverything)
{
    EnergyMeter m;
    m.add(EnergyComponent::Controller, 5.0);
    m.reset();
    EXPECT_DOUBLE_EQ(m.total(), 0.0);
}

TEST(EnergyMeterTest, BreakdownListsNonZeroComponents)
{
    EnergyMeter m;
    m.add(EnergyComponent::NandMws, 1e-6);
    std::string b = m.breakdown();
    EXPECT_NE(b.find("nand.mws"), std::string::npos);
    EXPECT_EQ(b.find("nand.erase"), std::string::npos);
    EXPECT_NE(b.find("total"), std::string::npos);
}

TEST(EnergyMeterTest, ComponentNamesAreStable)
{
    EXPECT_STREQ(energyComponentName(EnergyComponent::NandRead),
                 "nand.read");
    EXPECT_STREQ(energyComponentName(EnergyComponent::ExternalLink),
                 "ssd.external_link");
    EXPECT_STREQ(energyComponentName(EnergyComponent::HostDram),
                 "host.dram");
}

} // namespace
} // namespace fcos::ssd
