/**
 * @file
 * FTL placement tests: striping and FC-aware group co-location.
 */

#include <gtest/gtest.h>

#include <set>

#include "ssd/ftl.h"

namespace fcos::ssd {
namespace {

class FtlTest : public ::testing::Test
{
  protected:
    FtlTest() : geom(nand::Geometry::tiny()), ftl(4, geom) {}

    /** Resolve a list of logical pages to physical placements. */
    std::vector<PhysPage> phys(const std::vector<Lpn> &lpns) const
    {
        std::vector<PhysPage> out;
        out.reserve(lpns.size());
        for (Lpn lpn : lpns)
            out.push_back(ftl.physOf(lpn));
        return out;
    }

    nand::Geometry geom;
    Ftl ftl;
};

TEST_F(FtlTest, StripedAllocationRoundRobinsColumns)
{
    auto pages = phys(ftl.allocateStriped(16));
    ASSERT_EQ(pages.size(), 16u);
    // 4 dies x 2 planes = 8 columns; page i -> column i % 8.
    for (std::size_t i = 0; i < pages.size(); ++i) {
        EXPECT_EQ(pages[i].die, (i % 8) / 2);
        EXPECT_EQ(pages[i].addr.plane, (i % 8) % 2);
    }
    // Second lap lands on the next wordline of the same sub-block.
    EXPECT_EQ(pages[8].addr.block, pages[0].addr.block);
    EXPECT_EQ(pages[8].addr.subBlock, pages[0].addr.subBlock);
    EXPECT_EQ(pages[8].addr.wordline, pages[0].addr.wordline + 1);
}

TEST_F(FtlTest, GroupMembersStackInOneString)
{
    // Successive vectors of one group take successive wordlines of the
    // same sub-block in every column — the MWS co-location contract.
    auto v0 = phys(ftl.allocateInGroup(7, 8));
    auto v1 = phys(ftl.allocateInGroup(7, 8));
    auto v2 = phys(ftl.allocateInGroup(7, 8));
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(v0[i].die, v1[i].die);
        EXPECT_EQ(v0[i].addr.plane, v1[i].addr.plane);
        EXPECT_EQ(v0[i].addr.block, v1[i].addr.block);
        EXPECT_EQ(v0[i].addr.subBlock, v1[i].addr.subBlock);
        EXPECT_EQ(v1[i].addr.wordline, v0[i].addr.wordline + 1);
        EXPECT_EQ(v2[i].addr.wordline, v0[i].addr.wordline + 2);
    }
}

TEST_F(FtlTest, GroupOverflowsToFreshSubBlock)
{
    // tiny geometry: 8 wordlines per sub-block; the 9th vector of a
    // group starts a new sub-block.
    std::vector<std::vector<PhysPage>> vs;
    for (int i = 0; i < 9; ++i)
        vs.push_back(phys(ftl.allocateInGroup(1, 8)));
    auto &first = vs[0][0].addr;
    auto &ninth = vs[8][0].addr;
    EXPECT_TRUE(first.block != ninth.block ||
                first.subBlock != ninth.subBlock);
    EXPECT_EQ(ninth.wordline, 0u);
}

TEST_F(FtlTest, DistinctGroupsUseDistinctSubBlocks)
{
    auto a = phys(ftl.allocateInGroup(1, 8));
    auto b = phys(ftl.allocateInGroup(2, 8));
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(a[i].addr.block != b[i].addr.block ||
                    a[i].addr.subBlock != b[i].addr.subBlock);
    }
}

TEST_F(FtlTest, MultiRowGroupVectorsKeepLockstep)
{
    // Vectors longer than one stripe row: each row has its own
    // sub-block chain, still in lockstep across vectors.
    auto v0 = phys(ftl.allocateInGroup(3, 20)); // 8 columns -> 3 rows
    auto v1 = phys(ftl.allocateInGroup(3, 20));
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(v0[i].die, v1[i].die);
        EXPECT_EQ(v0[i].addr.block, v1[i].addr.block);
        EXPECT_EQ(v0[i].addr.subBlock, v1[i].addr.subBlock);
        EXPECT_EQ(v1[i].addr.wordline, v0[i].addr.wordline + 1);
    }
    // Different rows of one vector use different sub-blocks.
    EXPECT_TRUE(v0[0].addr.block != v0[8].addr.block ||
                v0[0].addr.subBlock != v0[8].addr.subBlock);
}

TEST_F(FtlTest, UsedSubBlockAccounting)
{
    EXPECT_EQ(ftl.usedSubBlocks(0, 0), 0u);
    ftl.allocateStriped(8);
    EXPECT_EQ(ftl.usedSubBlocks(0, 0), 1u);
    ftl.allocateInGroup(9, 8);
    EXPECT_EQ(ftl.usedSubBlocks(0, 0), 2u);
}

TEST_F(FtlTest, ExhaustionIsFatal)
{
    // tiny geometry: 8 blocks x 2 sub-blocks x 8 wordlines per plane.
    Ftl small(1, geom);
    EXPECT_EXIT(
        {
            for (int i = 0; i < 1000; ++i)
                small.allocateStriped(2 * 8 * 2 * 8);
        },
        ::testing::ExitedWithCode(1), "out of space");
}

TEST_F(FtlTest, AddressesStayInGeometryBounds)
{
    // tiny geometry: 16 sub-blocks per plane; 4 groups x 3 rows fits.
    for (int i = 0; i < 4; ++i) {
        auto pages = phys(ftl.allocateInGroup(100 + i, 24));
        for (const auto &p : pages) {
            EXPECT_LT(p.die, 4u);
            nand::checkAddr(geom, p.addr); // panics if out of range
        }
    }
}

TEST_F(FtlTest, FreeRecyclesLpnsAndCollectReclaimsBlocks)
{
    // Fill one single-die FTL, trim everything, and confirm GC hands
    // the blocks back without relocating anything.
    Ftl small(1, geom);
    const std::uint64_t per_plane = std::uint64_t{geom.blocksPerPlane} *
                                    geom.subBlocksPerBlock *
                                    geom.wordlinesPerSubBlock;
    auto lpns = small.allocateStriped(2 * per_plane); // both planes full
    EXPECT_EQ(small.freeBlocks(0), 0u);
    EXPECT_EQ(small.liveCount(), 2 * per_plane);
    for (Lpn lpn : lpns)
        small.free(lpn);
    EXPECT_EQ(small.liveCount(), 0u);
    // Every block is dead; a full drain reclaims all of them with
    // zero relocations (gcNeeded() would stop at the reserve — the
    // drive's policy; a bare FTL drains explicitly).
    for (std::uint32_t col = 0; col < small.columns(); ++col) {
        Ftl::GcPlan plan;
        while (small.collect(col, {}, &plan))
            EXPECT_TRUE(plan.moves.empty());
        EXPECT_EQ(small.freeBlocks(col), geom.blocksPerPlane);
        EXPECT_FALSE(small.gcNeeded(col));
    }
    // The drive is writable again at full capacity.
    auto again = small.allocateStriped(2 * per_plane - 2 *
                                       geom.wordlinesPerSubBlock);
    EXPECT_EQ(again.size(), 2 * per_plane - 2 *
                            geom.wordlinesPerSubBlock);
}

TEST_F(FtlTest, CollectRelocatesGroupSubBlocksAsUnits)
{
    // One live group vector amid dead data: the victim's live
    // sub-block must move wholesale, wordlines preserved.
    Ftl small(1, geom);
    auto keep = small.allocateInGroup(1, 2);    // wl 0 of a sub, col 0+1
    auto keep2 = small.allocateInGroup(1, 2);   // wl 1, same subs
    std::vector<Lpn> dead;
    for (int i = 0; i < 12; ++i) {
        auto v = small.allocateStriped(2);
        dead.insert(dead.end(), v.begin(), v.end());
    }
    for (Lpn lpn : dead)
        small.free(lpn);

    const PhysPage before0 = small.physOf(keep[0]);
    const PhysPage before1 = small.physOf(keep2[0]);
    ASSERT_EQ(before0.addr.block, before1.addr.block);
    ASSERT_EQ(before0.addr.subBlock, before1.addr.subBlock);

    std::uint64_t moves = 0;
    for (std::uint32_t col = 0; col < small.columns(); ++col) {
        Ftl::GcPlan plan;
        while (small.collect(col, {}, &plan))
            moves += plan.moves.size();
    }
    // A full drain must eventually victimize the keepers' block and
    // relocate its live sub-block; co-location must hold afterwards:
    // same sub-block, successive wordlines.
    EXPECT_GT(moves, 0u);
    const PhysPage after0 = small.physOf(keep[0]);
    const PhysPage after1 = small.physOf(keep2[0]);
    EXPECT_EQ(after0.addr.plane, after1.addr.plane);
    EXPECT_EQ(after0.addr.block, after1.addr.block);
    EXPECT_EQ(after0.addr.subBlock, after1.addr.subBlock);
    EXPECT_EQ(after0.addr.wordline + 1, after1.addr.wordline);
}

TEST_F(FtlTest, EraseCountsSurviveRecycling)
{
    Ftl small(1, geom);
    const std::uint64_t per_plane = std::uint64_t{geom.blocksPerPlane} *
                                    geom.subBlocksPerBlock *
                                    geom.wordlinesPerSubBlock;
    auto lpns = small.allocateStriped(2 * per_plane);
    for (Lpn lpn : lpns)
        small.free(lpn);
    std::uint64_t erases = 0;
    for (std::uint32_t col = 0; col < small.columns(); ++col) {
        Ftl::GcPlan plan;
        while (small.collect(col, {}, &plan)) {
            ++erases;
            EXPECT_GE(small.eraseCount(0, plan.column % 2, plan.block),
                      1u);
        }
    }
    // Both planes fully drained: every block erased exactly once.
    EXPECT_EQ(erases, 2u * geom.blocksPerPlane);
}

} // namespace
} // namespace fcos::ssd
