/**
 * @file
 * FTL placement tests: striping and FC-aware group co-location.
 */

#include <gtest/gtest.h>

#include <set>

#include "ssd/ftl.h"

namespace fcos::ssd {
namespace {

class FtlTest : public ::testing::Test
{
  protected:
    FtlTest() : geom(nand::Geometry::tiny()), ftl(4, geom) {}

    nand::Geometry geom;
    Ftl ftl;
};

TEST_F(FtlTest, StripedAllocationRoundRobinsColumns)
{
    auto pages = ftl.allocateStriped(16);
    ASSERT_EQ(pages.size(), 16u);
    // 4 dies x 2 planes = 8 columns; page i -> column i % 8.
    for (std::size_t i = 0; i < pages.size(); ++i) {
        EXPECT_EQ(pages[i].die, (i % 8) / 2);
        EXPECT_EQ(pages[i].addr.plane, (i % 8) % 2);
    }
    // Second lap lands on the next wordline of the same sub-block.
    EXPECT_EQ(pages[8].addr.block, pages[0].addr.block);
    EXPECT_EQ(pages[8].addr.subBlock, pages[0].addr.subBlock);
    EXPECT_EQ(pages[8].addr.wordline, pages[0].addr.wordline + 1);
}

TEST_F(FtlTest, GroupMembersStackInOneString)
{
    // Successive vectors of one group take successive wordlines of the
    // same sub-block in every column — the MWS co-location contract.
    auto v0 = ftl.allocateInGroup(7, 8);
    auto v1 = ftl.allocateInGroup(7, 8);
    auto v2 = ftl.allocateInGroup(7, 8);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(v0[i].die, v1[i].die);
        EXPECT_EQ(v0[i].addr.plane, v1[i].addr.plane);
        EXPECT_EQ(v0[i].addr.block, v1[i].addr.block);
        EXPECT_EQ(v0[i].addr.subBlock, v1[i].addr.subBlock);
        EXPECT_EQ(v1[i].addr.wordline, v0[i].addr.wordline + 1);
        EXPECT_EQ(v2[i].addr.wordline, v0[i].addr.wordline + 2);
    }
}

TEST_F(FtlTest, GroupOverflowsToFreshSubBlock)
{
    // tiny geometry: 8 wordlines per sub-block; the 9th vector of a
    // group starts a new sub-block.
    std::vector<std::vector<PhysPage>> vs;
    for (int i = 0; i < 9; ++i)
        vs.push_back(ftl.allocateInGroup(1, 8));
    auto &first = vs[0][0].addr;
    auto &ninth = vs[8][0].addr;
    EXPECT_TRUE(first.block != ninth.block ||
                first.subBlock != ninth.subBlock);
    EXPECT_EQ(ninth.wordline, 0u);
}

TEST_F(FtlTest, DistinctGroupsUseDistinctSubBlocks)
{
    auto a = ftl.allocateInGroup(1, 8);
    auto b = ftl.allocateInGroup(2, 8);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(a[i].addr.block != b[i].addr.block ||
                    a[i].addr.subBlock != b[i].addr.subBlock);
    }
}

TEST_F(FtlTest, MultiRowGroupVectorsKeepLockstep)
{
    // Vectors longer than one stripe row: each row has its own
    // sub-block chain, still in lockstep across vectors.
    auto v0 = ftl.allocateInGroup(3, 20); // 8 columns -> 3 rows
    auto v1 = ftl.allocateInGroup(3, 20);
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(v0[i].die, v1[i].die);
        EXPECT_EQ(v0[i].addr.block, v1[i].addr.block);
        EXPECT_EQ(v0[i].addr.subBlock, v1[i].addr.subBlock);
        EXPECT_EQ(v1[i].addr.wordline, v0[i].addr.wordline + 1);
    }
    // Different rows of one vector use different sub-blocks.
    EXPECT_TRUE(v0[0].addr.block != v0[8].addr.block ||
                v0[0].addr.subBlock != v0[8].addr.subBlock);
}

TEST_F(FtlTest, UsedSubBlockAccounting)
{
    EXPECT_EQ(ftl.usedSubBlocks(0, 0), 0u);
    ftl.allocateStriped(8);
    EXPECT_EQ(ftl.usedSubBlocks(0, 0), 1u);
    ftl.allocateInGroup(9, 8);
    EXPECT_EQ(ftl.usedSubBlocks(0, 0), 2u);
}

TEST_F(FtlTest, ExhaustionIsFatal)
{
    // tiny geometry: 8 blocks x 2 sub-blocks x 8 wordlines per plane.
    Ftl small(1, geom);
    EXPECT_EXIT(
        {
            for (int i = 0; i < 1000; ++i)
                small.allocateStriped(2 * 8 * 2 * 8);
        },
        ::testing::ExitedWithCode(1), "out of space");
}

TEST_F(FtlTest, AddressesStayInGeometryBounds)
{
    // tiny geometry: 16 sub-blocks per plane; 4 groups x 3 rows fits.
    for (int i = 0; i < 4; ++i) {
        auto pages = ftl.allocateInGroup(100 + i, 24);
        for (const auto &p : pages) {
            EXPECT_LT(p.die, 4u);
            nand::checkAddr(geom, p.addr); // panics if out of range
        }
    }
}

} // namespace
} // namespace fcos::ssd
