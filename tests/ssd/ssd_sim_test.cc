/**
 * @file
 * SSD timing-simulator tests: resource serialization, pipelining, and
 * the Figure 7 component times.
 */

#include <gtest/gtest.h>

#include "ssd/ssd_sim.h"

namespace fcos::ssd {
namespace {

TEST(SsdSimTest, PlaneOpsOnSamePlaneSerialize)
{
    SsdSim sim(SsdConfig::table1());
    Time t1 = 0, t2 = 0;
    sim.planeOp(0, 100, 0.0, EnergyComponent::NandRead,
                [&] { t1 = sim.queue().now(); });
    sim.planeOp(0, 100, 0.0, EnergyComponent::NandRead,
                [&] { t2 = sim.queue().now(); });
    sim.drain();
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 200u);
}

TEST(SsdSimTest, DifferentPlanesRunConcurrently)
{
    SsdSim sim(SsdConfig::table1());
    Time t1 = 0, t2 = 0;
    sim.planeOp(0, 100, 0.0, EnergyComponent::NandRead,
                [&] { t1 = sim.queue().now(); });
    sim.planeOp(1, 100, 0.0, EnergyComponent::NandRead,
                [&] { t2 = sim.queue().now(); });
    sim.drain();
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 100u);
}

TEST(SsdSimTest, ChannelSharedByDiesOfThatChannel)
{
    SsdConfig cfg = SsdConfig::table1();
    SsdSim sim(cfg);
    // Planes 0 and 2 are dies 0 and 1 of channel 0; their DMAs
    // serialize. A plane on another channel does not interfere.
    std::uint32_t other_channel_plane =
        cfg.diesPerChannel * cfg.geometry.planesPerDie; // first of ch 1
    Time t1 = 0, t2 = 0, t3 = 0;
    sim.dmaFromDie(0, 16 * 1024, [&] { t1 = sim.queue().now(); });
    sim.dmaFromDie(2, 16 * 1024, [&] { t2 = sim.queue().now(); });
    sim.dmaFromDie(other_channel_plane, 16 * 1024,
                   [&] { t3 = sim.queue().now(); });
    sim.drain();
    Time page_dma = cfg.pageDmaTime();
    EXPECT_EQ(t1, page_dma);
    EXPECT_EQ(t2, 2 * page_dma);
    EXPECT_EQ(t3, page_dma);
    EXPECT_EQ(sim.channelOfPlane(0), 0u);
    EXPECT_EQ(sim.channelOfPlane(other_channel_plane), 1u);
}

TEST(SsdSimTest, PageTimesMatchPaper)
{
    SsdConfig cfg = SsdConfig::table1();
    // 16 KiB at 1.2 GB/s ~ 13.65 us; at 8 GB/s ~ 2.05 us.
    EXPECT_NEAR(timeToUs(cfg.pageDmaTime()), 13.65, 0.05);
    EXPECT_NEAR(timeToUs(cfg.pageExternalTime()), 2.05, 0.05);
}

TEST(SsdSimTest, ExternalLinkSerializesAcrossEverything)
{
    SsdSim sim(SsdConfig::table1());
    Time t1 = 0, t2 = 0;
    sim.externalTransfer(8000, [&] { t1 = sim.queue().now(); });
    sim.externalTransfer(8000, [&] { t2 = sim.queue().now(); });
    sim.drain();
    EXPECT_EQ(t1, 1000u); // 8000 B at 8 GB/s = 1 us
    EXPECT_EQ(t2, 2000u);
    EXPECT_EQ(sim.externalBusyTime(), 2000u);
}

TEST(SsdSimTest, EnergyBookkeeping)
{
    SsdSim sim(SsdConfig::table1());
    sim.planeOp(0, 100, 1.5e-6, EnergyComponent::NandMws, [] {});
    sim.dmaFromDie(0, 16 * 1024, [] {});
    sim.externalTransfer(16 * 1024, [] {});
    sim.drain();
    EXPECT_DOUBLE_EQ(sim.energy().get(EnergyComponent::NandMws), 1.5e-6);
    // 16 KiB * 8 bits * 2 pJ = 0.262 uJ on the channel.
    EXPECT_NEAR(sim.energy().get(EnergyComponent::ChannelDma), 2.62e-7,
                1e-9);
    // 16 KiB * 8 bits * 10 pJ = 1.31 uJ on the external link.
    EXPECT_NEAR(sim.energy().get(EnergyComponent::ExternalLink), 1.31e-6,
                5e-9);
}

TEST(SsdSimTest, AccelPortPipelinesPerChannel)
{
    SsdSim sim(SsdConfig::table1());
    Time t1 = 0, t2 = 0;
    sim.accelCompute(0, 16 * 1024, [&] { t1 = sim.queue().now(); });
    sim.accelCompute(1, 16 * 1024, [&] { t2 = sim.queue().now(); });
    sim.drain();
    EXPECT_EQ(t1, t2); // separate channels, parallel ports
    EXPECT_GT(sim.energy().get(EnergyComponent::IspAccel), 0.0);
}

TEST(SsdSimTest, SenseDmaPipelineOverlaps)
{
    // Cache-read pipelining: the next sense can start while the
    // previous page crosses the channel (Section 3.1).
    SsdConfig cfg = SsdConfig::table1();
    SsdSim sim(cfg);
    Time tR = cfg.timings.tReadSlc;
    Time dma = cfg.pageDmaTime();
    Time last_dma_done = 0;
    for (int i = 0; i < 3; ++i) {
        sim.planeOp(0, tR, 0.0, EnergyComponent::NandRead, [&] {
            sim.dmaFromDie(0, cfg.geometry.pageBytes,
                           [&] { last_dma_done = sim.queue().now(); });
        });
    }
    sim.drain();
    // Senses serialize (3 tR); the last DMA follows the last sense.
    EXPECT_EQ(last_dma_done, 3 * tR + dma);
}

TEST(SsdSimTest, DrainReturnsMakespan)
{
    SsdSim sim(SsdConfig::table1());
    sim.planeOp(0, 500, 0.0, EnergyComponent::NandRead, [&] {
        sim.queue().scheduleAfter(
            250, [&] { sim.noteCompletion(sim.queue().now()); });
    });
    EXPECT_EQ(sim.drain(), 750u);
}

} // namespace
} // namespace fcos::ssd
