/**
 * @file
 * WorkerPool tests: lane assignment, striping, reuse across rounds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/worker_pool.h"

namespace fcos {
namespace {

TEST(WorkerPoolTest, RunsEveryLaneExactlyOnce)
{
    WorkerPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::vector<std::atomic<int>> hits(4);
    pool.run([&hits](std::uint32_t lane) { ++hits[lane]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, ReusableAcrossManyRounds)
{
    WorkerPool pool(3);
    std::vector<std::atomic<std::uint64_t>> sums(3);
    for (std::uint64_t round = 1; round <= 100; ++round)
        pool.run([&sums, round](std::uint32_t lane) {
            sums[lane] += round;
        });
    for (const auto &s : sums)
        EXPECT_EQ(s.load(), 5050u);
}

TEST(WorkerPoolTest, MoreLanesThanCoresStillCoversAllLanes)
{
    // Lanes are logical: even a 1-core host (threads_ empty, inline
    // execution) must run all 16 lanes.
    WorkerPool pool(16);
    std::atomic<std::uint32_t> mask{0};
    pool.run([&mask](std::uint32_t lane) { mask |= 1u << lane; });
    EXPECT_EQ(mask.load(), 0xFFFFu);
    EXPECT_LE(pool.threadCount(), 16u);
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(WorkerPoolTest, ResolveCountPrefersExplicitRequest)
{
    EXPECT_EQ(WorkerPool::resolveCount(3), 3u);
    EXPECT_EQ(WorkerPool::resolveCount(1), 1u);
    // 0 falls back to the FCOS_WORKERS environment default (>= 1).
    EXPECT_GE(WorkerPool::resolveCount(0), 1u);
}

} // namespace
} // namespace fcos
