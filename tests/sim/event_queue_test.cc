/**
 * @file
 * Event queue and facility tests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/worker_pool.h"
#include "util/rng.h"

// TU-wide allocation counter backing the SmallFn no-allocation
// assertions below: every global new/delete in this test binary ticks
// it, so a window where the count stays flat proves the event loop
// touched the heap not at all.
static std::atomic<std::uint64_t> g_heap_allocs{0};

static void *
countedAlloc(std::size_t n)
{
    ++g_heap_allocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace fcos {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueueTest, FifoTieBreakAtEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleAfter(5, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 6u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilAdvancesClockToDeadline)
{
    // Regression: runUntil used to leave now() at the last *executed*
    // event when later events remained queued — callers polling in
    // fixed steps saw a stale clock. The clock must always reach the
    // deadline.
    EventQueue q;
    q.schedule(10, [] {});
    q.schedule(20, [] {});
    EXPECT_EQ(q.runUntil(15), 15u);
    EXPECT_EQ(q.now(), 15u);
    EXPECT_EQ(q.pending(), 1u);
    // And with an empty queue it still advances.
    q.run();
    EXPECT_EQ(q.runUntil(40), 40u);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueueTest, HeapStaysValidUnderChurn)
{
    EventQueue q;
    Rng rng = Rng::seeded(7);
    int fired = 0;
    for (int i = 0; i < 200; ++i)
        q.schedule(rng.nextBounded(50), [&] { ++fired; });
    EXPECT_TRUE(q.heapIsValid());
    for (int i = 0; i < 50; ++i) {
        q.runOne();
        EXPECT_TRUE(q.heapIsValid());
        // Events scheduled mid-run keep the invariant too.
        q.scheduleAfter(rng.nextBounded(20), [&] { ++fired; });
        EXPECT_TRUE(q.heapIsValid());
    }
    q.run();
    EXPECT_EQ(fired, 250);
}

TEST(EventQueueTest, MergePreservesStreamOrderAndQueueOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(0); });
    // A large pre-ordered stream (exercises the heapify path) with
    // equal-time entries: they must run after the already-queued event
    // at t=5 and keep their relative order.
    std::vector<std::pair<Time, EventQueue::Callback>> stream;
    for (int i = 1; i <= 32; ++i)
        stream.emplace_back(5, [&order, i] { order.push_back(i); });
    q.merge(std::move(stream));
    EXPECT_TRUE(q.heapIsValid());
    q.run();
    ASSERT_EQ(order.size(), 33u);
    for (int i = 0; i <= 32; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, ShardedEventsRunWorkThenCommitSerially)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleSharded(
        1, 0, [&] { order.push_back(10); }, [&] { order.push_back(11); });
    q.scheduleSharded(
        1, 1, [&] { order.push_back(20); }, [&] { order.push_back(21); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21}));
}

// Drive the same randomized workload serially and on a pool; the
// commit order (the only externally visible order) must match exactly.
// Works mutate shard-local accumulators and record their observation
// into event-private storage, which the commit publishes — the same
// split the command scheduler uses (PendingOp::result).
std::vector<std::uint64_t>
shardedWorkloadTrace(std::uint32_t workers)
{
    EventQueue q;
    std::vector<std::uint64_t> trace;
    Rng rng = Rng::seeded(42);
    std::vector<std::uint64_t> slots(8, 0);
    auto submit = [&](Time when, std::uint32_t shard,
                      std::uint64_t mix, auto &self) -> void {
        auto res = std::make_shared<std::uint64_t>(0);
        q.scheduleSharded(
            when, shard,
            [&slots, shard, mix, res] {
                slots[shard] = slots[shard] * 31 + mix;
                *res = slots[shard];
            },
            [&q, &trace, &rng, shard, res, self] {
                trace.push_back(*res);
                // Commits may schedule follow-ups, including same-time
                // ones (the wave's next sub-batch).
                if (trace.size() % 5 == 0)
                    self(q.now() + rng.nextBounded(2), shard, 0x9e37,
                         self);
            });
    };
    for (int i = 0; i < 64; ++i) {
        const std::uint32_t shard = rng.nextBounded(8);
        const Time when = rng.nextBounded(4); // heavy timestamp ties
        submit(when, shard, std::uint64_t(i), submit);
    }
    if (workers <= 1) {
        q.run();
    } else {
        WorkerPool pool(workers);
        q.run(pool);
    }
    return trace;
}

TEST(EventQueueTest, ParallelRunIsBitIdenticalToSerial)
{
    const std::vector<std::uint64_t> serial = shardedWorkloadTrace(1);
    EXPECT_EQ(shardedWorkloadTrace(2), serial);
    EXPECT_EQ(shardedWorkloadTrace(4), serial);
    EXPECT_EQ(shardedWorkloadTrace(7), serial);
}

TEST(EventQueueTest, SteadyStateEventsDoNotTouchTheHeap)
{
    // Satellite guarantee of the SmallFn payload switch: once the
    // queue's backing vector has its capacity, scheduling and running
    // events with engine-typical captures (a this-pointer, indices, a
    // shared_ptr — up to the inline window) performs zero allocations.
    EventQueue q;
    for (int i = 0; i < 128; ++i)
        q.schedule(static_cast<Time>(i), [] {});
    q.run();

    auto tally = std::make_shared<std::uint64_t>(0);
    const EventQueue *self = &q;
    const std::uint64_t before = g_heap_allocs.load();
    for (int i = 0; i < 64; ++i) {
        // 32-byte capture: shared_ptr + pointer + two indices — the
        // shape of the scheduler's completion closures.
        q.schedule(static_cast<Time>(200 + i),
                   [tally, self, die = i, col = i + 1] {
                       *tally += self->now() + std::uint64_t(die + col);
                   });
    }
    // Sharded two-phase events ride the same payload type.
    q.scheduleSharded(
        300, 0, [tally] { *tally += 1; }, [tally] { *tally += 2; });
    q.run();
    EXPECT_EQ(g_heap_allocs.load() - before, 0u)
        << "steady-state event churn must not allocate";
    EXPECT_GT(*tally, 0u);
}

TEST(EventQueueTest, OversizedCapturesFallBackToTheHeap)
{
    // Captures beyond the inline window still work — they pay one
    // allocation at construction and none per heap swap.
    EventQueue q;
    q.schedule(0, [] {});
    q.run();
    struct Huge
    {
        std::uint64_t pad[12]; // 96 bytes > kSmallFnCapacity
    };
    Huge h{};
    h.pad[3] = 7;
    std::uint64_t out = 0;
    const std::uint64_t before = g_heap_allocs.load();
    q.schedule(1, [h, &out] { out = h.pad[3]; });
    EXPECT_EQ(g_heap_allocs.load() - before, 1u);
    q.run();
    EXPECT_EQ(out, 7u);
    EXPECT_EQ(g_heap_allocs.load() - before, 1u);
}

TEST(EventQueueTest, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

TEST(FacilityTest, SerializesOverlappingBookings)
{
    Facility f("bus");
    EXPECT_EQ(f.acquire(0, 10), 10u);
    EXPECT_EQ(f.acquire(0, 10), 20u);  // queued behind the first
    EXPECT_EQ(f.acquire(5, 10), 30u);  // still queued
    EXPECT_EQ(f.acquire(100, 10), 110u); // idle gap: starts at 100
    EXPECT_EQ(f.busyTime(), 40u);
    EXPECT_EQ(f.grants(), 4u);
}

TEST(FacilityTest, ResetClearsState)
{
    Facility f;
    f.acquire(0, 50);
    f.reset();
    EXPECT_EQ(f.readyAt(), 0u);
    EXPECT_EQ(f.busyTime(), 0u);
    EXPECT_EQ(f.acquire(0, 5), 5u);
}

TEST(FacilityTest, PipelineThroughEventQueue)
{
    // Two-stage pipeline: stage A (10 each) feeds stage B (15 each);
    // three jobs; makespan = 10 + 3*15 = 55.
    EventQueue q;
    Facility a("A"), b("B");
    Time last = 0;
    for (int i = 0; i < 3; ++i) {
        Time done_a = a.acquire(0, 10);
        q.schedule(done_a, [&q, &b, &last] {
            Time done_b = b.acquire(q.now(), 15);
            q.schedule(done_b, [&q, &last] { last = q.now(); });
        });
    }
    q.run();
    EXPECT_EQ(last, 55u);
}

} // namespace
} // namespace fcos
