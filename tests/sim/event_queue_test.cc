/**
 * @file
 * Event queue and facility tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace fcos {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueueTest, FifoTieBreakAtEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleAfter(5, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 6u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

TEST(FacilityTest, SerializesOverlappingBookings)
{
    Facility f("bus");
    EXPECT_EQ(f.acquire(0, 10), 10u);
    EXPECT_EQ(f.acquire(0, 10), 20u);  // queued behind the first
    EXPECT_EQ(f.acquire(5, 10), 30u);  // still queued
    EXPECT_EQ(f.acquire(100, 10), 110u); // idle gap: starts at 100
    EXPECT_EQ(f.busyTime(), 40u);
    EXPECT_EQ(f.grants(), 4u);
}

TEST(FacilityTest, ResetClearsState)
{
    Facility f;
    f.acquire(0, 50);
    f.reset();
    EXPECT_EQ(f.readyAt(), 0u);
    EXPECT_EQ(f.busyTime(), 0u);
    EXPECT_EQ(f.acquire(0, 5), 5u);
}

TEST(FacilityTest, PipelineThroughEventQueue)
{
    // Two-stage pipeline: stage A (10 each) feeds stage B (15 each);
    // three jobs; makespan = 10 + 3*15 = 55.
    EventQueue q;
    Facility a("A"), b("B");
    Time last = 0;
    for (int i = 0; i < 3; ++i) {
        Time done_a = a.acquire(0, 10);
        q.schedule(done_a, [&q, &b, &last] {
            Time done_b = b.acquire(q.now(), 15);
            q.schedule(done_b, [&q, &last] { last = q.now(); });
        });
    }
    q.run();
    EXPECT_EQ(last, 55u);
}

} // namespace
} // namespace fcos
