/**
 * @file
 * Logging-flag tests. The interesting one is thread-safety: fcos_warn
 * fires from worker-phase code, so quietWarnings() is read concurrently
 * with a test/bench toggling it. The concurrent test runs in the
 * threads/tsan tier (FCOS_FORCE_THREADS=1) where every lane is a real
 * OS thread, giving ThreadSanitizer an actual race to look for.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "sim/worker_pool.h"
#include "util/log.h"

namespace fcos {
namespace {

TEST(LogTest, SetQuietWarningsReturnsPreviousValue)
{
    const bool initial = quietWarnings();
    EXPECT_EQ(setQuietWarnings(true), initial);
    EXPECT_TRUE(quietWarnings());
    EXPECT_TRUE(setQuietWarnings(false));
    EXPECT_FALSE(quietWarnings());
    setQuietWarnings(initial);
}

TEST(LogTest, QuietWarningsIsSafeToReadFromWorkerLanes)
{
    // Lane 0 toggles the flag while the other lanes hammer reads —
    // exactly the warn-from-worker-phase pattern. The assertion is
    // simply "no torn/undefined values and no TSan report"; both
    // outcomes of each read are legal while the toggler runs.
    const bool initial = setQuietWarnings(false);

    WorkerPool pool(4);
    std::atomic<std::uint64_t> reads{0};
    pool.run([&reads](std::uint32_t lane) {
        if (lane == 0) {
            for (int i = 0; i < 2000; ++i)
                setQuietWarnings((i & 1) == 0); // ends on false
        } else {
            for (int i = 0; i < 20000; ++i) {
                const bool q = quietWarnings();
                reads.fetch_add(q ? 1 : 0,
                                std::memory_order_relaxed);
            }
        }
    });

    // The final write of the toggler is visible after the barrier.
    EXPECT_FALSE(quietWarnings());
    EXPECT_LE(reads.load(), 3u * 20000u);
    setQuietWarnings(initial);
}

} // namespace
} // namespace fcos
