/**
 * @file
 * Numerics tests (Q function, interpolation, percentiles).
 */

#include <gtest/gtest.h>

#include "util/mathutil.h"

namespace fcos {
namespace {

TEST(MathUtilTest, GaussianQKnownValues)
{
    EXPECT_NEAR(gaussianQ(0.0), 0.5, 1e-12);
    EXPECT_NEAR(gaussianQ(1.0), 0.158655, 1e-5);
    EXPECT_NEAR(gaussianQ(3.0), 1.349898e-3, 1e-8);
    // The deep-tail regime of the ESP zero-error demonstration.
    EXPECT_NEAR(gaussianQ(7.0), 1.28e-12, 3e-13);
    EXPECT_GT(gaussianQ(-2.0), 0.97);
}

TEST(MathUtilTest, GaussianQMonotone)
{
    double prev = 1.0;
    for (double x = -3.0; x < 9.0; x += 0.25) {
        double q = gaussianQ(x);
        EXPECT_LT(q, prev);
        prev = q;
    }
}

TEST(MathUtilTest, GaussianQInvRoundTrip)
{
    for (double p : {0.5, 0.1, 1e-3, 1e-6, 1e-12}) {
        double x = gaussianQInv(p);
        EXPECT_NEAR(gaussianQ(x), p, p * 1e-3);
    }
}

TEST(MathUtilTest, InterpolateInsideAndOutside)
{
    std::vector<double> xs{0.0, 1.0, 2.0};
    std::vector<double> ys{10.0, 20.0, 40.0};
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 0.5), 15.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 1.5), 30.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, -1.0), 10.0); // flat left
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 5.0), 40.0);  // flat right
}

TEST(MathUtilTest, Percentiles)
{
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
}

TEST(MathUtilTest, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(MathUtilTest, ClampVal)
{
    EXPECT_EQ(clampVal(5, 0, 10), 5);
    EXPECT_EQ(clampVal(-5, 0, 10), 0);
    EXPECT_EQ(clampVal(15, 0, 10), 10);
}

} // namespace
} // namespace fcos
