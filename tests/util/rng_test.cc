/**
 * @file
 * Deterministic RNG tests.
 */

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fcos {
namespace {

TEST(RngTest, SeededStreamsReproduce)
{
    Rng a = Rng::seeded(42), b = Rng::seeded(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a = Rng::seeded(1), b = Rng::seeded(2);
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministicAndDecorrelated)
{
    Rng parent = Rng::seeded(7);
    Rng c1 = parent.fork(0);
    Rng c2 = parent.fork(1);
    Rng c1_again = Rng::seeded(7).fork(0);
    EXPECT_EQ(c1.nextU64(), c1_again.nextU64());
    EXPECT_NE(c1.nextU64(), c2.nextU64());
}

TEST(RngTest, BoundedStaysInRange)
{
    Rng rng = Rng::seeded(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, BernoulliEdgeCases)
{
    Rng rng = Rng::seeded(4);
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(RngTest, BinomialMatchesMean)
{
    Rng rng = Rng::seeded(5);
    double total = 0.0;
    for (int i = 0; i < 200; ++i)
        total += static_cast<double>(rng.binomial(1000, 0.1));
    EXPECT_NEAR(total / 200.0, 100.0, 5.0);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(10, 0.0), 0u);
    EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(RngTest, PoissonMatchesMean)
{
    Rng rng = Rng::seeded(6);
    double total = 0.0;
    for (int i = 0; i < 500; ++i)
        total += static_cast<double>(rng.poisson(4.0));
    EXPECT_NEAR(total / 500.0, 4.0, 0.5);
    EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng = Rng::seeded(8);
    double sum = 0.0, sq = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        double x = rng.gaussian(2.0, 3.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.2);
    EXPECT_NEAR(var, 9.0, 1.0);
}

} // namespace
} // namespace fcos
