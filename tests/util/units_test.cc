/**
 * @file
 * Unit helpers tests.
 */

#include <gtest/gtest.h>

#include "util/units.h"

namespace fcos {
namespace {

TEST(UnitsTest, Literals)
{
    EXPECT_EQ(1_us, 1000u);
    EXPECT_EQ(1_ms, 1000000u);
    EXPECT_EQ(1_s, 1000000000u);
    EXPECT_EQ(16_KiB, 16384u);
    EXPECT_EQ(1_MiB, 1048576u);
}

TEST(UnitsTest, UsConversionRoundTrips)
{
    EXPECT_EQ(usToTime(22.5), 22500u);
    EXPECT_DOUBLE_EQ(timeToUs(22500), 22.5);
    EXPECT_DOUBLE_EQ(timeToMs(3500000), 3.5);
    EXPECT_DOUBLE_EQ(timeToSec(2_s), 2.0);
}

TEST(UnitsTest, TransferTimeMatchesPaperNumbers)
{
    // 16-KiB page over the 1.2-GB/s channel: ~13.65 us; the paper's
    // Figure 7 quotes 27 us for a 2-plane (32-KiB) die batch.
    EXPECT_NEAR(timeToUs(transferTime(16_KiB, 1.2)), 13.65, 0.02);
    EXPECT_NEAR(timeToUs(transferTime(32_KiB, 1.2)), 27.3, 0.05);
    // 32 KiB over 8-GB/s PCIe: the paper's 4 us.
    EXPECT_NEAR(timeToUs(transferTime(32_KiB, 8.0)), 4.1, 0.05);
}

TEST(UnitsTest, Formatting)
{
    EXPECT_EQ(formatTime(500), "500 ns");
    EXPECT_EQ(formatTime(22500), "22.5 us");
    EXPECT_EQ(formatTime(3500000), "3.5 ms");
    EXPECT_EQ(formatBytes(16384), "16 KiB");
    EXPECT_EQ(formatEnergy(1.86e-6), "1.86 uJ");
}

} // namespace
} // namespace fcos
