/**
 * @file
 * Table printer tests.
 */

#include <gtest/gtest.h>

#include "tests/support/golden.h"
#include "util/table.h"

namespace fcos {
namespace {

TEST(TableTest, RendersAlignedColumns)
{
    TablePrinter t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string s = t.toString();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("name    value"), std::string::npos);
    EXPECT_NE(s.find("longer  22"), std::string::npos);
}

TEST(TableTest, CellFormatters)
{
    EXPECT_EQ(TablePrinter::cell(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::cellInt(42), "42");
    EXPECT_EQ(TablePrinter::cellSci(0.00123, 2), "1.23e-03");
}

TEST(TableTest, RowWidthMustMatchHeader)
{
    TablePrinter t("bad");
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TableTest, MatchesGoldenRendering)
{
    // Full-output pin through the shared golden comparator: bench
    // tables feed figure regeneration, so formatting is contract.
    TablePrinter t("golden demo");
    t.setHeader({"metric", "value", "unit"});
    t.addRow({"latency", TablePrinter::cell(22.5, 1), "us"});
    t.addRow({"rber", TablePrinter::cellSci(0.00123, 2), "-"});
    t.addRow({"pages", TablePrinter::cellInt(42), "-"});
    EXPECT_TRUE(
        test::MatchesGolden(t.toString(), "golden/table_demo.txt"));
}

TEST(TableTest, WorksWithoutHeader)
{
    TablePrinter t("raw");
    t.addRow({"x", "y", "z"});
    std::string s = t.toString();
    EXPECT_NE(s.find("x  y  z"), std::string::npos);
}

} // namespace
} // namespace fcos
