/**
 * @file
 * Table printer tests.
 */

#include <gtest/gtest.h>

#include "util/table.h"

namespace fcos {
namespace {

TEST(TableTest, RendersAlignedColumns)
{
    TablePrinter t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string s = t.toString();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("name    value"), std::string::npos);
    EXPECT_NE(s.find("longer  22"), std::string::npos);
}

TEST(TableTest, CellFormatters)
{
    EXPECT_EQ(TablePrinter::cell(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::cellInt(42), "42");
    EXPECT_EQ(TablePrinter::cellSci(0.00123, 2), "1.23e-03");
}

TEST(TableTest, RowWidthMustMatchHeader)
{
    TablePrinter t("bad");
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TableTest, WorksWithoutHeader)
{
    TablePrinter t("raw");
    t.addRow({"x", "y", "z"});
    std::string s = t.toString();
    EXPECT_NE(s.find("x  y  z"), std::string::npos);
}

} // namespace
} // namespace fcos
