/**
 * @file
 * BitVector unit tests.
 */

#include <gtest/gtest.h>

#include "util/bitvector.h"
#include "util/rng.h"

namespace fcos {
namespace {

TEST(BitVectorTest, ConstructionAndSize)
{
    BitVector v;
    EXPECT_TRUE(v.empty());
    BitVector w(100);
    EXPECT_EQ(w.size(), 100u);
    EXPECT_TRUE(w.allZeros());
    BitVector x(100, true);
    EXPECT_TRUE(x.allOnes());
    EXPECT_EQ(x.popcount(), 100u);
}

TEST(BitVectorTest, SetGetRoundTrip)
{
    BitVector v(130);
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_FALSE(v.get(1));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_EQ(v.popcount(), 3u);
    v.set(64, false);
    EXPECT_FALSE(v.get(64));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVectorTest, FromStringAndToString)
{
    BitVector v = BitVector::fromString("10110");
    EXPECT_EQ(v.size(), 5u);
    EXPECT_TRUE(v.get(0));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.toString(), "10110");
}

TEST(BitVectorTest, BitwiseOperators)
{
    BitVector a = BitVector::fromString("1100");
    BitVector b = BitVector::fromString("1010");
    EXPECT_EQ((a & b).toString(), "1000");
    EXPECT_EQ((a | b).toString(), "1110");
    EXPECT_EQ((a ^ b).toString(), "0110");
    EXPECT_EQ((~a).toString(), "0011");
}

TEST(BitVectorTest, TailBitsStayClean)
{
    // Inversion must not set bits beyond size(); popcount would
    // otherwise leak ghost bits from the last partial word.
    BitVector v(70);
    v.invert();
    EXPECT_EQ(v.popcount(), 70u);
    EXPECT_TRUE(v.allOnes());
    v.fill(true);
    EXPECT_EQ(v.popcount(), 70u);
}

TEST(BitVectorTest, InPlaceOperatorsMatchOutOfPlace)
{
    Rng rng = Rng::seeded(5);
    BitVector a(200), b(200);
    a.randomize(rng);
    b.randomize(rng);
    BitVector c = a;
    c &= b;
    EXPECT_EQ(c, a & b);
    c = a;
    c |= b;
    EXPECT_EQ(c, a | b);
    c = a;
    c ^= b;
    EXPECT_EQ(c, a ^ b);
}

TEST(BitVectorTest, VectorizedFoldsMatchBitwiseReferenceAtAllAlignments)
{
    // The AND/OR/XOR folds run 4 words per SIMD lane with a scalar
    // tail; sweep sizes through every lane/tail split (0..5 words,
    // every 64-bit alignment in between) against a bit-at-a-time
    // reference so no remainder shape goes untested.
    Rng rng = Rng::seeded(11);
    for (std::size_t bits : {1u,   63u,  64u,  65u,  127u, 128u, 191u,
                             192u, 255u, 256u, 257u, 320u, 351u}) {
        BitVector a(bits), b(bits);
        a.randomize(rng);
        b.randomize(rng);
        BitVector and_ref(bits), or_ref(bits), xor_ref(bits);
        for (std::size_t i = 0; i < bits; ++i) {
            and_ref.set(i, a.get(i) && b.get(i));
            or_ref.set(i, a.get(i) || b.get(i));
            xor_ref.set(i, a.get(i) != b.get(i));
        }
        BitVector c = a;
        c &= b;
        EXPECT_EQ(c, and_ref) << "AND at " << bits << " bits";
        c = a;
        c |= b;
        EXPECT_EQ(c, or_ref) << "OR at " << bits << " bits";
        c = a;
        c ^= b;
        EXPECT_EQ(c, xor_ref) << "XOR at " << bits << " bits";
    }
}

TEST(BitVectorTest, HammingDistance)
{
    BitVector a = BitVector::fromString("110010");
    BitVector b = BitVector::fromString("101010");
    EXPECT_EQ(a.hammingDistance(b), 2u);
    EXPECT_EQ(a.hammingDistance(a), 0u);
}

TEST(BitVectorTest, SliceAndPaste)
{
    BitVector v = BitVector::fromString("0011010111");
    BitVector s = v.slice(2, 5);
    EXPECT_EQ(s.toString(), "11010");
    BitVector w(10);
    w.paste(3, s);
    EXPECT_EQ(w.toString(), "0001101000");
}

TEST(BitVectorTest, ResizePreservesAndExtends)
{
    BitVector v = BitVector::fromString("101");
    v.resize(6, true);
    EXPECT_EQ(v.toString(), "101111");
    v.resize(2);
    EXPECT_EQ(v.toString(), "10");
}

TEST(BitVectorTest, ResizeAcrossWordBoundaryWithOnes)
{
    BitVector v(60, false);
    v.resize(130, true);
    EXPECT_EQ(v.popcount(), 70u);
    for (std::size_t i = 0; i < 60; ++i)
        EXPECT_FALSE(v.get(i));
    for (std::size_t i = 60; i < 130; ++i)
        EXPECT_TRUE(v.get(i));
}

TEST(BitVectorTest, CheckeredPattern)
{
    BitVector v(10);
    v.fillCheckered(true);
    EXPECT_EQ(v.toString(), "1010101010");
    v.fillCheckered(false);
    EXPECT_EQ(v.toString(), "0101010101");
}

TEST(BitVectorTest, RandomizeIsSeedDeterministic)
{
    Rng r1 = Rng::seeded(9), r2 = Rng::seeded(9);
    BitVector a(500), b(500);
    a.randomize(r1);
    b.randomize(r2);
    EXPECT_EQ(a, b);
    // Roughly half ones.
    EXPECT_NEAR(static_cast<double>(a.popcount()), 250.0, 60.0);
}

TEST(BitVectorTest, RandomizeBiased)
{
    Rng rng = Rng::seeded(10);
    BitVector v(2000);
    v.randomize(rng, 0.1);
    EXPECT_LT(v.popcount(), 400u);
    EXPECT_GT(v.popcount(), 50u);
}

// ---------------------------------------------------------------------
// Property tests pinning the word-at-a-time slice/paste/randomize
// kernels to bit-at-a-time scalar references, across word-alignment
// boundaries, sub-word spans, and ragged tails.
// ---------------------------------------------------------------------

BitVector
sliceReference(const BitVector &v, std::size_t begin, std::size_t len)
{
    BitVector out(len);
    for (std::size_t i = 0; i < len; ++i)
        out.set(i, v.get(begin + i));
    return out;
}

void
pasteReference(BitVector &dst, std::size_t begin, const BitVector &src)
{
    for (std::size_t i = 0; i < src.size(); ++i)
        dst.set(begin + i, src.get(i));
}

TEST(BitVectorPropertyTest, SliceMatchesScalarReference)
{
    Rng rng = Rng::seeded(77);
    BitVector v(4 * 64 + 17);
    v.randomize(rng);
    // Every offset alignment crossed with lengths around every word
    // boundary, plus empty and full-span slices.
    for (std::size_t begin :
         {0u, 1u, 7u, 63u, 64u, 65u, 127u, 128u, 200u}) {
        for (std::size_t len :
             {0u, 1u, 5u, 63u, 64u, 65u, 70u, 128u, 273u - 200u}) {
            if (begin + len > v.size())
                continue;
            BitVector got = v.slice(begin, len);
            BitVector want = sliceReference(v, begin, len);
            EXPECT_EQ(got, want) << "begin=" << begin << " len=" << len;
            // Tail words beyond size() must be zero (the invariant
            // paste and bulk operators rely on).
            if (!got.words().empty() && (len & 63)) {
                EXPECT_EQ(got.words().back() >> (len & 63), 0u);
            }
        }
    }
    EXPECT_EQ(v.slice(0, v.size()), v);
}

TEST(BitVectorPropertyTest, PasteMatchesScalarReference)
{
    Rng rng = Rng::seeded(78);
    for (std::size_t begin :
         {0u, 1u, 9u, 63u, 64u, 65u, 127u, 128u, 190u}) {
        for (std::size_t len : {0u, 1u, 6u, 63u, 64u, 65u, 90u, 128u}) {
            BitVector dst(64 * 5 + 3);
            dst.randomize(rng);
            if (begin + len > dst.size())
                continue;
            BitVector src(len);
            src.randomize(rng);
            BitVector want = dst;
            pasteReference(want, begin, src);
            BitVector got = dst;
            got.paste(begin, src);
            EXPECT_EQ(got, want) << "begin=" << begin << " len=" << len;
        }
    }
}

TEST(BitVectorPropertyTest, SlicePasteRandomizedRoundTrips)
{
    Rng rng = Rng::seeded(79);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t n = 1 + rng.nextBounded(500);
        BitVector v(static_cast<std::size_t>(n));
        v.randomize(rng);
        const std::size_t begin = rng.nextBounded(n);
        const std::size_t len = rng.nextBounded(n - begin + 1);
        // slice agrees with the reference...
        BitVector s = v.slice(begin, len);
        EXPECT_EQ(s, sliceReference(v, begin, len));
        // ...and pasting it back is the identity.
        BitVector w = v;
        w.paste(begin, s);
        EXPECT_EQ(w, v);
        // Pasting fresh random content agrees with the reference.
        BitVector r(len);
        r.randomize(rng, 0.3);
        BitVector got = v, want = v;
        got.paste(begin, r);
        pasteReference(want, begin, r);
        EXPECT_EQ(got, want);
    }
}

TEST(BitVectorPropertyTest, BiasedRandomizeDrawStreamIsStable)
{
    // The word-accumulating biased randomize must consume the Rng
    // exactly like the historical bit-loop: one bernoulli per bit, in
    // ascending order. Goldens seed pages through this path.
    for (std::size_t n : {1u, 63u, 64u, 65u, 130u, 1000u}) {
        Rng r1 = Rng::seeded(5), r2 = Rng::seeded(5);
        BitVector fast(n);
        fast.randomize(r1, 0.2);
        BitVector ref(n);
        for (std::size_t i = 0; i < n; ++i)
            ref.set(i, r2.bernoulli(0.2));
        EXPECT_EQ(fast, ref) << "n=" << n;
        // Both rngs must land in the same state.
        EXPECT_EQ(r1.nextU64(), r2.nextU64());
    }
}

TEST(BitVectorPropertyTest, PopcountMatchesScalarReference)
{
    Rng rng = Rng::seeded(80);
    for (std::size_t n : {0u, 1u, 64u, 65u, 255u, 256u, 257u, 1024u}) {
        BitVector v(n);
        v.randomize(rng, 0.4);
        std::size_t want = 0;
        for (std::size_t i = 0; i < n; ++i)
            want += v.get(i) ? 1u : 0u;
        EXPECT_EQ(v.popcount(), want) << "n=" << n;
    }
}

TEST(BitVectorTest, EqualityRequiresSameSize)
{
    BitVector a(10), b(11);
    EXPECT_NE(a, b);
}

TEST(BitVectorTest, DeathOnOutOfRange)
{
    BitVector v(8);
    EXPECT_DEATH(v.get(8), "out of range");
    EXPECT_DEATH(v.set(9, true), "out of range");
    BitVector w(4);
    EXPECT_DEATH(v.hammingDistance(w), "size mismatch");
}

} // namespace
} // namespace fcos
