/**
 * @file
 * BitVector unit tests.
 */

#include <gtest/gtest.h>

#include "util/bitvector.h"
#include "util/rng.h"

namespace fcos {
namespace {

TEST(BitVectorTest, ConstructionAndSize)
{
    BitVector v;
    EXPECT_TRUE(v.empty());
    BitVector w(100);
    EXPECT_EQ(w.size(), 100u);
    EXPECT_TRUE(w.allZeros());
    BitVector x(100, true);
    EXPECT_TRUE(x.allOnes());
    EXPECT_EQ(x.popcount(), 100u);
}

TEST(BitVectorTest, SetGetRoundTrip)
{
    BitVector v(130);
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_FALSE(v.get(1));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_EQ(v.popcount(), 3u);
    v.set(64, false);
    EXPECT_FALSE(v.get(64));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVectorTest, FromStringAndToString)
{
    BitVector v = BitVector::fromString("10110");
    EXPECT_EQ(v.size(), 5u);
    EXPECT_TRUE(v.get(0));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.toString(), "10110");
}

TEST(BitVectorTest, BitwiseOperators)
{
    BitVector a = BitVector::fromString("1100");
    BitVector b = BitVector::fromString("1010");
    EXPECT_EQ((a & b).toString(), "1000");
    EXPECT_EQ((a | b).toString(), "1110");
    EXPECT_EQ((a ^ b).toString(), "0110");
    EXPECT_EQ((~a).toString(), "0011");
}

TEST(BitVectorTest, TailBitsStayClean)
{
    // Inversion must not set bits beyond size(); popcount would
    // otherwise leak ghost bits from the last partial word.
    BitVector v(70);
    v.invert();
    EXPECT_EQ(v.popcount(), 70u);
    EXPECT_TRUE(v.allOnes());
    v.fill(true);
    EXPECT_EQ(v.popcount(), 70u);
}

TEST(BitVectorTest, InPlaceOperatorsMatchOutOfPlace)
{
    Rng rng = Rng::seeded(5);
    BitVector a(200), b(200);
    a.randomize(rng);
    b.randomize(rng);
    BitVector c = a;
    c &= b;
    EXPECT_EQ(c, a & b);
    c = a;
    c |= b;
    EXPECT_EQ(c, a | b);
    c = a;
    c ^= b;
    EXPECT_EQ(c, a ^ b);
}

TEST(BitVectorTest, HammingDistance)
{
    BitVector a = BitVector::fromString("110010");
    BitVector b = BitVector::fromString("101010");
    EXPECT_EQ(a.hammingDistance(b), 2u);
    EXPECT_EQ(a.hammingDistance(a), 0u);
}

TEST(BitVectorTest, SliceAndPaste)
{
    BitVector v = BitVector::fromString("0011010111");
    BitVector s = v.slice(2, 5);
    EXPECT_EQ(s.toString(), "11010");
    BitVector w(10);
    w.paste(3, s);
    EXPECT_EQ(w.toString(), "0001101000");
}

TEST(BitVectorTest, ResizePreservesAndExtends)
{
    BitVector v = BitVector::fromString("101");
    v.resize(6, true);
    EXPECT_EQ(v.toString(), "101111");
    v.resize(2);
    EXPECT_EQ(v.toString(), "10");
}

TEST(BitVectorTest, ResizeAcrossWordBoundaryWithOnes)
{
    BitVector v(60, false);
    v.resize(130, true);
    EXPECT_EQ(v.popcount(), 70u);
    for (std::size_t i = 0; i < 60; ++i)
        EXPECT_FALSE(v.get(i));
    for (std::size_t i = 60; i < 130; ++i)
        EXPECT_TRUE(v.get(i));
}

TEST(BitVectorTest, CheckeredPattern)
{
    BitVector v(10);
    v.fillCheckered(true);
    EXPECT_EQ(v.toString(), "1010101010");
    v.fillCheckered(false);
    EXPECT_EQ(v.toString(), "0101010101");
}

TEST(BitVectorTest, RandomizeIsSeedDeterministic)
{
    Rng r1 = Rng::seeded(9), r2 = Rng::seeded(9);
    BitVector a(500), b(500);
    a.randomize(r1);
    b.randomize(r2);
    EXPECT_EQ(a, b);
    // Roughly half ones.
    EXPECT_NEAR(static_cast<double>(a.popcount()), 250.0, 60.0);
}

TEST(BitVectorTest, RandomizeBiased)
{
    Rng rng = Rng::seeded(10);
    BitVector v(2000);
    v.randomize(rng, 0.1);
    EXPECT_LT(v.popcount(), 400u);
    EXPECT_GT(v.popcount(), 50u);
}

TEST(BitVectorTest, EqualityRequiresSameSize)
{
    BitVector a(10), b(11);
    EXPECT_NE(a, b);
}

TEST(BitVectorTest, DeathOnOutOfRange)
{
    BitVector v(8);
    EXPECT_DEATH(v.get(8), "out of range");
    EXPECT_DEATH(v.set(9, true), "out of range");
    BitVector w(4);
    EXPECT_DEATH(v.hammingDistance(w), "size mismatch");
}

} // namespace
} // namespace fcos
