/**
 * @file
 * Evaluation-sweep library tests (on reduced workloads for speed).
 */

#include <gtest/gtest.h>

#include "platforms/sweep.h"

namespace fcos::plat {
namespace {

TEST(SweepTest, PointRunsAllPlatformsCoherently)
{
    EvaluationSweep sweep;
    SweepPoint p = sweep.runPoint(wl::makeKcs(16, 4, 8000000ULL));
    EXPECT_GT(p.osp.makespan, 0u);
    // Speedup of OSP over itself is 1 by construction.
    EXPECT_DOUBLE_EQ(p.speedup(PlatformKind::Osp), 1.0);
    EXPECT_DOUBLE_EQ(p.energyRatio(PlatformKind::Osp), 1.0);
    // FC dominates on this AND-heavy workload.
    EXPECT_GT(p.speedup(PlatformKind::FlashCosmos),
              p.speedup(PlatformKind::ParaBit));
    EXPECT_GT(p.speedup(PlatformKind::ParaBit),
              p.speedup(PlatformKind::Isp));
    EXPECT_GT(p.energyRatio(PlatformKind::FlashCosmos), 1.0);
}

TEST(SweepTest, MeansAggregateAcrossSeries)
{
    EvaluationSweep sweep;
    SweepSeries a{"A",
                  {sweep.runPoint(wl::makeKcs(8, 2, 8000000ULL)),
                   sweep.runPoint(wl::makeKcs(16, 2, 8000000ULL))}};
    SweepSeries b{"B", {sweep.runPoint(wl::makeBmi(1, 80000000ULL))}};
    std::vector<SweepSeries> series{a, b};

    double fc = EvaluationSweep::meanSpeedup(series,
                                             PlatformKind::FlashCosmos);
    double pb =
        EvaluationSweep::meanSpeedup(series, PlatformKind::ParaBit);
    EXPECT_GT(fc, pb);
    EXPECT_GT(pb, 1.0);
    EXPECT_DOUBLE_EQ(
        EvaluationSweep::meanSpeedup(series, PlatformKind::Osp), 1.0);

    double fc_e = EvaluationSweep::meanEnergyRatio(
        series, PlatformKind::FlashCosmos);
    EXPECT_GT(fc_e, 1.0);
}

TEST(SweepTest, SeriesCoverThePaperParameters)
{
    // Check the parameter lists without running them (expensive).
    EvaluationSweep sweep;
    // Spot-run the smallest point of each series generator's family.
    SweepPoint bmi = sweep.runPoint(wl::makeBmi(1));
    EXPECT_EQ(bmi.workload.name, "BMI");
    EXPECT_EQ(bmi.workload.batches[0].andOperands, 30u);
    SweepPoint ims = sweep.runPoint(wl::makeIms(10000));
    EXPECT_EQ(ims.workload.name, "IMS");
    SweepPoint kcs = sweep.runPoint(wl::makeKcs(8, 16));
    EXPECT_EQ(kcs.workload.name, "KCS");
}

} // namespace
} // namespace fcos::plat
