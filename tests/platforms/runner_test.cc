/**
 * @file
 * Platform-runner tests: Figure 7 timeline shape, platform ordering,
 * and the Flash-Cosmos sense-count arithmetic.
 */

#include <gtest/gtest.h>

#include "platforms/runner.h"

namespace fcos::plat {
namespace {

/** The Figure 7 micro-workload: bitwise OR of three 1-MiB vectors. */
wl::Workload
figure7Workload()
{
    wl::Workload w;
    w.name = "fig7";
    w.paramName = "-";
    wl::OpBatch b;
    b.andOperands = 0;
    b.orOperands = 3;
    b.operandBytes = 1ULL << 20;
    b.resultToHost = true;
    b.hostPostProcess = false;
    w.batches.push_back(b);
    return w;
}

TEST(FcSensesTest, PureAndChunksByStringLength)
{
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(1, 0, 48, 4), 1u);
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(48, 0, 48, 4), 1u);
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(49, 0, 48, 4), 2u);
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(1095, 0, 48, 4), 23u);
}

TEST(FcSensesTest, PureOrUsesInverseStorage)
{
    // Inverse-stored operands: intra-block MWS per string (Section 6.1).
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(0, 3, 48, 4), 1u);
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(0, 48, 48, 4), 1u);
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(0, 96, 48, 4), 2u);
}

TEST(FcSensesTest, KcsFusionRidesAlong)
{
    // k <= 48 plus the clique vector: one combined command.
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(32, 1, 48, 4), 1u);
    // k = 64: two AND commands plus an OR-merge command.
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(64, 1, 48, 4), 3u);
}

TEST(FcSensesTest, EmptyBatchSensesNothing)
{
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(0, 0, 48, 4), 0u);
}

class RunnerTest : public ::testing::Test
{
  protected:
    PlatformRunner fig7{ssd::SsdConfig::figure7()};
    PlatformRunner table1{ssd::SsdConfig::table1()};
};

TEST_F(RunnerTest, EngineModeIsTheDefault)
{
    EXPECT_EQ(fig7.mode(), RunnerMode::Engine);
    EXPECT_STREQ(runnerModeName(RunnerMode::Engine), "engine");
    EXPECT_STREQ(runnerModeName(RunnerMode::Analytic), "analytic");
}

TEST_F(RunnerTest, Figure7TimelineShape)
{
    // Paper: OSP 471 us (external I/O bound), ISP 431 us (internal I/O
    // bound), IFP(=ParaBit) 335 us (sensing bound). The default
    // engine path must land on the same anchors.
    wl::Workload w = figure7Workload();
    RunResult osp = fig7.run(PlatformKind::Osp, w);
    RunResult isp = fig7.run(PlatformKind::Isp, w);
    RunResult ifp = fig7.run(PlatformKind::ParaBit, w);

    EXPECT_NEAR(timeToUs(osp.makespan), 471.0, 471.0 * 0.08);
    EXPECT_NEAR(timeToUs(isp.makespan), 431.0, 431.0 * 0.08);
    EXPECT_NEAR(timeToUs(ifp.makespan), 335.0, 335.0 * 0.08);
    EXPECT_GT(osp.makespan, isp.makespan);
    EXPECT_GT(isp.makespan, ifp.makespan);
}

TEST_F(RunnerTest, AnalyticModeMatchesTheSameAnchors)
{
    // The retained analytic path stays anchored to the paper numbers
    // (full engine-vs-analytic parity lives in parity_test.cc).
    wl::Workload w = figure7Workload();
    RunResult osp = fig7.run(PlatformKind::Osp, w, RunnerMode::Analytic);
    RunResult isp = fig7.run(PlatformKind::Isp, w, RunnerMode::Analytic);
    RunResult ifp =
        fig7.run(PlatformKind::ParaBit, w, RunnerMode::Analytic);

    EXPECT_NEAR(timeToUs(osp.makespan), 471.0, 471.0 * 0.08);
    EXPECT_NEAR(timeToUs(isp.makespan), 431.0, 431.0 * 0.08);
    EXPECT_NEAR(timeToUs(ifp.makespan), 335.0, 335.0 * 0.08);
}

TEST_F(RunnerTest, Figure7Bottlenecks)
{
    wl::Workload w = figure7Workload();
    RunResult osp = fig7.run(PlatformKind::Osp, w);
    // OSP: the external link is the busiest resource.
    EXPECT_GT(osp.externalBusy, osp.channelBusy);
    RunResult isp = fig7.run(PlatformKind::Isp, w);
    // ISP: the per-channel bus dominates.
    EXPECT_GT(isp.channelBusy, isp.externalBusy);
}

TEST_F(RunnerTest, FlashCosmosWinsOnManyOperandAnd)
{
    // A BMI-like query: FC senses ceil(240/48)=5 MWS per row where PB
    // senses 240 pages.
    wl::Workload w = wl::makeBmi(8, 80000000ULL); // 10-MB vectors
    RunResult fc = table1.run(PlatformKind::FlashCosmos, w);
    RunResult pb = table1.run(PlatformKind::ParaBit, w);
    RunResult isp = table1.run(PlatformKind::Isp, w);
    RunResult osp = table1.run(PlatformKind::Osp, w);

    EXPECT_LT(fc.makespan, pb.makespan);
    EXPECT_LT(pb.makespan, isp.makespan);
    EXPECT_LT(isp.makespan, osp.makespan);
    // Sense-operation accounting: PB senses every operand.
    EXPECT_GT(pb.senseOps, 40 * fc.senseOps);
}

TEST_F(RunnerTest, EnergyOrderingMatchesFigure18)
{
    wl::Workload w = wl::makeBmi(8, 80000000ULL);
    double fc = table1.run(PlatformKind::FlashCosmos, w).energyJ;
    double pb = table1.run(PlatformKind::ParaBit, w).energyJ;
    double isp = table1.run(PlatformKind::Isp, w).energyJ;
    double osp = table1.run(PlatformKind::Osp, w).energyJ;
    EXPECT_LT(fc, pb);
    EXPECT_LT(pb, isp);
    EXPECT_LT(isp, osp);
}

TEST_F(RunnerTest, FcAndPbConvergeOnFewOperandLargeResult)
{
    // IMS: 3 operands, huge result — transfer dominates, FC ~ PB
    // (Section 8.1, sixth observation).
    wl::Workload w = wl::makeIms(2000);
    Time fc = table1.run(PlatformKind::FlashCosmos, w).makespan;
    Time pb = table1.run(PlatformKind::ParaBit, w).makespan;
    EXPECT_LT(static_cast<double>(pb) / static_cast<double>(fc), 1.25);
}

TEST_F(RunnerTest, OspInsensitiveToOperandFusion)
{
    // OSP moves every operand regardless of AND/OR structure.
    wl::Workload and_w = wl::makeKcs(8, 4, 8000000ULL);
    wl::Workload or_heavy = and_w;
    for (auto &b : or_heavy.batches) {
        b.andOperands = 4;
        b.orOperands = 5;
    }
    Time t1 = table1.run(PlatformKind::Osp, and_w).makespan;
    Time t2 = table1.run(PlatformKind::Osp, or_heavy).makespan;
    EXPECT_EQ(t1, t2);
}

TEST_F(RunnerTest, ResultsAreDeterministic)
{
    wl::Workload w = wl::makeKcs(16, 8, 8000000ULL);
    RunResult a = table1.run(PlatformKind::FlashCosmos, w);
    RunResult b = table1.run(PlatformKind::FlashCosmos, w);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.senseOps, b.senseOps);
}

TEST_F(RunnerTest, EnergyMeterHasExpectedComponents)
{
    wl::Workload w = wl::makeKcs(16, 8, 8000000ULL);
    RunResult fc = table1.run(PlatformKind::FlashCosmos, w);
    EXPECT_GT(fc.meter.get(ssd::EnergyComponent::NandMws), 0.0);
    EXPECT_DOUBLE_EQ(fc.meter.get(ssd::EnergyComponent::IspAccel), 0.0);
    EXPECT_GT(fc.meter.get(ssd::EnergyComponent::Controller), 0.0);

    RunResult isp = table1.run(PlatformKind::Isp, w);
    EXPECT_GT(isp.meter.get(ssd::EnergyComponent::IspAccel), 0.0);
    EXPECT_DOUBLE_EQ(isp.meter.get(ssd::EnergyComponent::NandMws), 0.0);
}

TEST(PlatformNameTest, AllNamed)
{
    EXPECT_STREQ(platformName(PlatformKind::Osp), "OSP");
    EXPECT_STREQ(platformName(PlatformKind::Isp), "ISP");
    EXPECT_STREQ(platformName(PlatformKind::ParaBit), "PB");
    EXPECT_STREQ(platformName(PlatformKind::FlashCosmos), "FC");
}

} // namespace
} // namespace fcos::plat
