/**
 * @file
 * Bottleneck-crossover tests: the qualitative transitions Section 8.1
 * describes must emerge from the timing simulator, not be hard-coded.
 */

#include <gtest/gtest.h>

#include "platforms/runner.h"

namespace fcos::plat {
namespace {

wl::Workload
andWorkload(std::uint64_t operands, std::uint64_t bytes)
{
    wl::Workload w;
    w.name = "sweep";
    w.paramName = "n";
    w.paramValue = operands;
    wl::OpBatch b;
    b.andOperands = operands;
    b.operandBytes = bytes;
    b.resultToHost = true;
    b.hostPostProcess = false;
    w.batches.push_back(b);
    return w;
}

class CrossoverTest : public ::testing::Test
{
  protected:
    PlatformRunner runner{ssd::SsdConfig::table1()};
};

TEST_F(CrossoverTest, ParaBitShiftsFromTransferToSenseBound)
{
    // Section 8.1, fourth observation: PB's bottleneck moves to serial
    // sensing as operands grow — makespan becomes linear in operands.
    const std::uint64_t bytes = 50000000; // 50-MB vectors
    Time t4 = runner.run(PlatformKind::ParaBit, andWorkload(4, bytes))
                  .makespan;
    Time t64 = runner.run(PlatformKind::ParaBit, andWorkload(64, bytes))
                   .makespan;
    Time t128 =
        runner.run(PlatformKind::ParaBit, andWorkload(128, bytes))
            .makespan;
    // Deep in the sense-bound regime, doubling operands ~doubles time.
    double growth = static_cast<double>(t128) / static_cast<double>(t64);
    EXPECT_GT(growth, 1.8);
    EXPECT_LT(growth, 2.2);
    // The small-operand point is NOT 32x cheaper than the large one:
    // transfer keeps a floor under it.
    EXPECT_GT(static_cast<double>(t4),
              static_cast<double>(t128) / 32.0);
}

TEST_F(CrossoverTest, FlashCosmosStaysTransferBoundAcrossOperands)
{
    // FC senses ceil(n/48) times per row: between 48 and 96 operands
    // nothing changes except one extra MWS — makespan nearly flat.
    const std::uint64_t bytes = 50000000;
    Time t48 = runner.run(PlatformKind::FlashCosmos,
                          andWorkload(48, bytes))
                   .makespan;
    Time t96 = runner.run(PlatformKind::FlashCosmos,
                          andWorkload(96, bytes))
                   .makespan;
    EXPECT_LT(static_cast<double>(t96) / static_cast<double>(t48),
              1.25);
}

TEST_F(CrossoverTest, FcAdvantageGrowsThenSaturatesWithOperands)
{
    // FC/PB speedup approaches the string length (48) but cannot
    // exceed it per command.
    const std::uint64_t bytes = 50000000;
    double prev_ratio = 0.0;
    for (std::uint64_t n : {4ULL, 16ULL, 48ULL}) {
        Time pb = runner.run(PlatformKind::ParaBit,
                             andWorkload(n, bytes))
                      .makespan;
        Time fc = runner.run(PlatformKind::FlashCosmos,
                             andWorkload(n, bytes))
                      .makespan;
        double ratio =
            static_cast<double>(pb) / static_cast<double>(fc);
        EXPECT_GT(ratio, prev_ratio);
        EXPECT_LT(ratio, 49.0);
        prev_ratio = ratio;
    }
}

TEST_F(CrossoverTest, SmallResultsMakeExternalLinkIrrelevantForFc)
{
    // BMI vs IMS contrast (Section 8.1, fifth observation): with many
    // operands and a small result (BMI m=36 has 1095 operands), FC's
    // time tracks sensing; with few operands and a huge result (IMS),
    // it tracks the external link.
    wl::Workload small = andWorkload(1095, 10000000); // 10-MB result
    wl::Workload large = andWorkload(3, 10000000000); // 10-GB result
    RunResult r_small =
        runner.run(PlatformKind::FlashCosmos, small);
    RunResult r_large =
        runner.run(PlatformKind::FlashCosmos, large);
    EXPECT_GT(r_small.planeBusy, r_small.externalBusy);
    EXPECT_GT(r_large.externalBusy, r_large.planeBusy);
}

TEST_F(CrossoverTest, IspBoundByChannelRegardlessOfOperands)
{
    for (std::uint64_t n : {4ULL, 64ULL}) {
        RunResult r =
            runner.run(PlatformKind::Isp, andWorkload(n, 50000000));
        EXPECT_GT(r.channelBusy, r.externalBusy) << n << " operands";
    }
}

} // namespace
} // namespace fcos::plat
