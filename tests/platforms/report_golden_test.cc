/**
 * @file
 * Pins the shared paper-figure tables (platforms/reports) as goldens:
 * the Table 1 configuration tables, the Figure 12 MWS latency table,
 * the Figure 7 timeline, and the Figure 17/18 sweep tables (reduced
 * grids through the same builders the benches print with the full
 * paper grids). Any drift in configuration constants, the calibrated
 * model curves, or the engine's platform timelines now fails a test
 * instead of silently changing bench output.
 */

#include <gtest/gtest.h>

#include "platforms/reports.h"
#include "tests/support/golden.h"

namespace fcos::plat {
namespace {

TEST(ReportGoldenTest, Tab01SsdTableIsPinned)
{
    TablePrinter t = tab01SsdTable(ssd::SsdConfig::table1());
    EXPECT_TRUE(test::MatchesGolden(t.toString(), "golden/tab01_ssd.txt"));
}

TEST(ReportGoldenTest, Tab01HostTableIsPinned)
{
    TablePrinter t = tab01HostTable(host::HostConfig{});
    EXPECT_TRUE(
        test::MatchesGolden(t.toString(), "golden/tab01_host.txt"));
}

TEST(ReportGoldenTest, Fig12MwsLatencyTableIsPinned)
{
    TablePrinter t = fig12MwsLatencyTable();
    EXPECT_TRUE(test::MatchesGolden(t.toString(),
                                    "golden/fig12_mws_latency.txt"));
}

TEST(ReportGoldenTest, Fig07TimelineTableIsPinned)
{
    // The default engine path: this golden pins the engine-produced
    // Figure 7 timeline (and through it the paper's 471/431/335-us
    // anchors, which runner_test checks numerically).
    PlatformRunner runner(ssd::SsdConfig::figure7());
    TablePrinter t = fig07TimelineTable(runner);
    EXPECT_TRUE(
        test::MatchesGolden(t.toString(), "golden/fig07_timeline.txt"));
}

/** Reduced sweep grids: one small point per workload family keeps the
 *  pinned tables fast while exercising every series builder. */
std::vector<SweepSeries>
reducedSweep()
{
    EvaluationSweep sweep;
    return {sweep.bmiSeries({1, 3}), sweep.imsSeries({10000}),
            sweep.kcsSeries({8})};
}

TEST(ReportGoldenTest, Fig17SpeedupTableIsPinned)
{
    TablePrinter t = fig17SpeedupTable(reducedSweep());
    EXPECT_TRUE(test::MatchesGolden(t.toString(),
                                    "golden/fig17_performance.txt"));
}

TEST(ReportGoldenTest, Fig18EnergyTableIsPinned)
{
    TablePrinter t = fig18EnergyTable(reducedSweep());
    EXPECT_TRUE(
        test::MatchesGolden(t.toString(), "golden/fig18_energy.txt"));
}

} // namespace
} // namespace fcos::plat
