/**
 * @file
 * Pins the shared paper-figure tables (platforms/reports) as goldens:
 * the Table 1 configuration tables, the Figure 12 MWS latency table,
 * the Figure 7 timeline, and the Figure 17/18 sweep tables (reduced
 * grids through the same builders the benches print with the full
 * paper grids). Any drift in configuration constants, the calibrated
 * model curves, or the engine's platform timelines now fails a test
 * instead of silently changing bench output.
 */

#include <gtest/gtest.h>

#include "platforms/reports.h"
#include "tests/support/golden.h"

namespace fcos::plat {
namespace {

TEST(ReportGoldenTest, Tab01SsdTableIsPinned)
{
    TablePrinter t = tab01SsdTable(ssd::SsdConfig::table1());
    EXPECT_TRUE(test::MatchesGolden(t.toString(), "golden/tab01_ssd.txt"));
}

TEST(ReportGoldenTest, Tab01HostTableIsPinned)
{
    TablePrinter t = tab01HostTable(host::HostConfig{});
    EXPECT_TRUE(
        test::MatchesGolden(t.toString(), "golden/tab01_host.txt"));
}

TEST(ReportGoldenTest, Fig12MwsLatencyTableIsPinned)
{
    TablePrinter t = fig12MwsLatencyTable();
    EXPECT_TRUE(test::MatchesGolden(t.toString(),
                                    "golden/fig12_mws_latency.txt"));
}

TEST(ReportGoldenTest, Fig07TimelineTableIsPinned)
{
    // The default engine path: this golden pins the engine-produced
    // Figure 7 timeline (and through it the paper's 471/431/335-us
    // anchors, which runner_test checks numerically).
    PlatformRunner runner(ssd::SsdConfig::figure7());
    TablePrinter t = fig07TimelineTable(runner);
    EXPECT_TRUE(
        test::MatchesGolden(t.toString(), "golden/fig07_timeline.txt"));
}

/** Reduced sweep grids: one small point per workload family keeps the
 *  pinned tables fast while exercising every series builder. */
std::vector<SweepSeries>
reducedSweep()
{
    EvaluationSweep sweep;
    return {sweep.bmiSeries({1, 3}), sweep.imsSeries({10000}),
            sweep.kcsSeries({8})};
}

TEST(ReportGoldenTest, Fig17SpeedupTableIsPinned)
{
    TablePrinter t = fig17SpeedupTable(reducedSweep());
    EXPECT_TRUE(test::MatchesGolden(t.toString(),
                                    "golden/fig17_performance.txt"));
}

TEST(ReportGoldenTest, Fig18EnergyTableIsPinned)
{
    TablePrinter t = fig18EnergyTable(reducedSweep());
    EXPECT_TRUE(
        test::MatchesGolden(t.toString(), "golden/fig18_energy.txt"));
}

TEST(ReportGoldenTest, Fig08RberPanelsArePinned)
{
    // All four panels through the same builder and reduced farm the
    // bench prints with — drift in the V_TH model curves fails here.
    rel::ChipFarm farm(fig08FarmConfig());
    EXPECT_TRUE(test::MatchesGolden(fig08RberReport(farm),
                                    "golden/fig08_rber.txt"));
}

/** Reduced chip population for the Figure 11 pins: same builders as
 *  the bench (which uses the full 160-chip farm). */
rel::ChipFarm
fig11ReducedFarm()
{
    rel::ChipFarm::Config cfg;
    cfg.chips = 20;
    cfg.blocksPerChip = 30;
    return rel::ChipFarm(cfg);
}

TEST(ReportGoldenTest, Fig11EspTableIsPinned)
{
    rel::ChipFarm farm = fig11ReducedFarm();
    rel::OperatingCondition worst{10000, 12.0, false};
    EXPECT_TRUE(test::MatchesGolden(fig11EspTable(farm, worst).toString(),
                                    "golden/fig11_esp.txt"));
}

TEST(ReportGoldenTest, Fig11CampaignTableIsPinned)
{
    rel::ChipFarm farm = fig11ReducedFarm();
    rel::OperatingCondition worst{10000, 12.0, false};
    EXPECT_TRUE(test::MatchesGolden(
        fig11CampaignTable(farm, worst, 10000000000ULL).toString(),
        "golden/fig11_campaign.txt"));
}

TEST(ReportGoldenTest, Fig13InterMwsTableIsPinned)
{
    EXPECT_TRUE(test::MatchesGolden(fig13InterMwsTable().toString(),
                                    "golden/fig13_inter_mws.txt"));
}

TEST(ReportGoldenTest, Fig14PowerTableIsPinned)
{
    EXPECT_TRUE(test::MatchesGolden(fig14PowerTable().toString(),
                                    "golden/fig14_power.txt"));
}

// The ablation benches print these builders verbatim; pinning them
// here is what keeps the ablation conclusions from drifting silently.

TEST(ReportGoldenTest, AblationBlockLimitTableIsPinned)
{
    EXPECT_TRUE(test::MatchesGolden(ablationBlockLimitTable().toString(),
                                    "golden/ablation_block_limit.txt"));
}

TEST(ReportGoldenTest, AblationDeMorganTableIsPinned)
{
    EXPECT_TRUE(test::MatchesGolden(ablationDeMorganTable().toString(),
                                    "golden/ablation_demorgan.txt"));
}

TEST(ReportGoldenTest, AblationMlcLsbTableIsPinned)
{
    EXPECT_TRUE(test::MatchesGolden(ablationMlcLsbTable().toString(),
                                    "golden/ablation_mlc_lsb.txt"));
}

TEST(ReportGoldenTest, AblationPlacementTableIsPinned)
{
    // Runs the functional drive (deterministic seeds); also assert
    // the headline claim so a silent correctness break cannot hide
    // behind a golden update.
    AblationPlacementCost coloc = ablationPlacementQuery(true, 8);
    AblationPlacementCost scattered = ablationPlacementQuery(false, 8);
    EXPECT_TRUE(coloc.correct);
    EXPECT_TRUE(scattered.correct);
    EXPECT_EQ(coloc.commandsPerPage, 1u);
    EXPECT_EQ(scattered.commandsPerPage, 8u);
    EXPECT_TRUE(test::MatchesGolden(ablationPlacementTable().toString(),
                                    "golden/ablation_placement.txt"));
}

TEST(ReportGoldenTest, AblationXorEncryptionTableIsPinned)
{
    AblationXorStats stats;
    TablePrinter t = ablationXorEncryptionTable(&stats);
    EXPECT_TRUE(stats.encryptChanges);
    EXPECT_TRUE(stats.roundTrips);
    EXPECT_EQ(stats.sensesPerPage, 2u);
    EXPECT_TRUE(test::MatchesGolden(
        t.toString(), "golden/ablation_xor_encryption.txt"));
}

TEST(ReportGoldenTest, AblationEccRandomizationTablesArePinned)
{
    AblationEccStats ecc;
    TablePrinter ecc_table = ablationEccTable(&ecc);
    EXPECT_EQ(ecc.acceptedCorrect, 0);
    EXPECT_EQ(ecc.rejected + ecc.miscorrected, ecc.trials);
    EXPECT_TRUE(test::MatchesGolden(ecc_table.toString(),
                                    "golden/ablation_ecc.txt"));

    int derand_ok = -1;
    TablePrinter rnd_table = ablationRandomizationTable(&derand_ok);
    EXPECT_EQ(derand_ok, 0);
    EXPECT_TRUE(test::MatchesGolden(
        rnd_table.toString(), "golden/ablation_randomization.txt"));
}

} // namespace
} // namespace fcos::plat
