/**
 * @file
 * Pins the shared paper-figure tables (platforms/reports) as goldens:
 * the Table 1 configuration tables and the Figure 12 MWS latency
 * table. Any drift in configuration constants or the calibrated
 * timing curves now fails a test instead of silently changing bench
 * output.
 */

#include <gtest/gtest.h>

#include "platforms/reports.h"
#include "tests/support/golden.h"

namespace fcos::plat {
namespace {

TEST(ReportGoldenTest, Tab01SsdTableIsPinned)
{
    TablePrinter t = tab01SsdTable(ssd::SsdConfig::table1());
    EXPECT_TRUE(test::MatchesGolden(t.toString(), "golden/tab01_ssd.txt"));
}

TEST(ReportGoldenTest, Tab01HostTableIsPinned)
{
    TablePrinter t = tab01HostTable(host::HostConfig{});
    EXPECT_TRUE(
        test::MatchesGolden(t.toString(), "golden/tab01_host.txt"));
}

TEST(ReportGoldenTest, Fig12MwsLatencyTableIsPinned)
{
    TablePrinter t = fig12MwsLatencyTable();
    EXPECT_TRUE(test::MatchesGolden(t.toString(),
                                    "golden/fig12_mws_latency.txt"));
}

} // namespace
} // namespace fcos::plat
