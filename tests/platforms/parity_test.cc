/**
 * @file
 * Engine-vs-analytic parity: the platform runner's default engine
 * mode (engine::ComputeEngine scheduler) and the retained analytic
 * mode (ssd/ssd_sim) describe the same platforms over the same
 * parameter authority (ssd::IoParams), so for every platform and
 * workload the two timelines must agree — the stated tolerance is
 * 0.5% on makespan and energy, with sense accounting exactly equal.
 *
 * The functional half: runFcFunctional materializes operand pages on
 * the farm's chips, executes real MWS commands through the engine,
 * and must (i) reproduce the host-side reference fold bit-exactly and
 * (ii) land on the timing-only driver's makespan — one run certifies
 * that figure timelines and functional bits come from one execution.
 */

#include <gtest/gtest.h>

#include "platforms/reports.h"
#include "platforms/runner.h"

namespace fcos::plat {
namespace {

/** Relative |a-b| <= tol. */
void
expectClose(double a, double b, double tol, const char *what)
{
    double denom = std::max(std::abs(a), std::abs(b));
    if (denom == 0.0)
        return;
    EXPECT_LE(std::abs(a - b) / denom, tol) << what << ": " << a
                                            << " vs " << b;
}

constexpr double kTol = 0.005; ///< stated parity tolerance (0.5%)

class ModeParityTest : public ::testing::Test
{
  protected:
    void expectParity(const ssd::SsdConfig &cfg, const wl::Workload &w)
    {
        PlatformRunner runner(cfg);
        for (PlatformKind kind :
             {PlatformKind::Osp, PlatformKind::Isp, PlatformKind::ParaBit,
              PlatformKind::FlashCosmos}) {
            RunResult eng = runner.run(kind, w, RunnerMode::Engine);
            RunResult ana = runner.run(kind, w, RunnerMode::Analytic);
            SCOPED_TRACE(std::string(platformName(kind)) + " on " +
                         w.name);
            expectClose(static_cast<double>(eng.makespan),
                        static_cast<double>(ana.makespan), kTol,
                        "makespan");
            expectClose(eng.energyJ, ana.energyJ, kTol, "energy");
            EXPECT_EQ(eng.senseOps, ana.senseOps);
            expectClose(static_cast<double>(eng.planeBusy),
                        static_cast<double>(ana.planeBusy), kTol,
                        "plane busy");
            expectClose(static_cast<double>(eng.channelBusy),
                        static_cast<double>(ana.channelBusy), kTol,
                        "channel busy");
            expectClose(static_cast<double>(eng.externalBusy),
                        static_cast<double>(ana.externalBusy), kTol,
                        "external busy");
            expectClose(static_cast<double>(eng.hostBusy),
                        static_cast<double>(ana.hostBusy), kTol,
                        "host busy");
        }
    }
};

TEST_F(ModeParityTest, Figure7WorkloadAgreesAcrossModes)
{
    expectParity(ssd::SsdConfig::figure7(), figure7Workload());
}

TEST_F(ModeParityTest, BmiWorkloadAgreesAcrossModes)
{
    expectParity(ssd::SsdConfig::table1(),
                 wl::makeBmi(3, 80000000ULL)); // 10-MB vectors
}

TEST_F(ModeParityTest, KcsWorkloadAgreesAcrossModes)
{
    expectParity(ssd::SsdConfig::table1(),
                 wl::makeKcs(16, 8, 8000000ULL));
}

/** A small SSD whose workloads materialize in memory. */
ssd::SsdConfig
smallSsd()
{
    ssd::SsdConfig cfg;
    cfg.channels = 2;
    cfg.diesPerChannel = 2;
    cfg.geometry = nand::Geometry::tiny(); // 2 planes, 32-B pages
    return cfg;
}

/** Pure-AND workload of @p rows result pages per plane column. */
wl::Workload
andWorkload(std::uint64_t operands, std::uint64_t rows,
            const ssd::SsdConfig &cfg)
{
    wl::Workload w;
    w.name = "AND";
    w.paramName = "ops";
    w.paramValue = operands;
    wl::OpBatch b;
    b.andOperands = operands;
    b.orOperands = 0;
    b.operandBytes =
        rows * cfg.geometry.pageBytes * cfg.totalPlanes();
    b.resultToHost = true;
    b.hostPostProcess = false;
    w.batches.push_back(b);
    return w;
}

TEST(FunctionalParityTest, MaterializedRunIsBitExact)
{
    ssd::SsdConfig cfg = smallSsd();
    PlatformRunner runner(cfg);
    wl::Workload w = andWorkload(5, 2, cfg);

    PlatformRunner::FunctionalRun fr = runner.runFcFunctional(w, 11);
    ASSERT_EQ(fr.result.size(), fr.expected.size());
    EXPECT_GT(fr.result.size(), 0u);
    EXPECT_TRUE(fr.bitExact());

    // Same seed => same bits and same timeline; different seed =>
    // different bits (the check is not vacuous).
    PlatformRunner::FunctionalRun again = runner.runFcFunctional(w, 11);
    EXPECT_EQ(again.result, fr.result);
    EXPECT_EQ(again.timing.makespan, fr.timing.makespan);
    EXPECT_EQ(again.timing.energyJ, fr.timing.energyJ);
    PlatformRunner::FunctionalRun other = runner.runFcFunctional(w, 12);
    EXPECT_NE(other.result, fr.result);
}

TEST(FunctionalParityTest, MaterializedTimelineMatchesTimingDriver)
{
    // One result row per plane: the materialized chain (MWS ->
    // per-page readout -> external -> host) is event-for-event the
    // timing-only driver's chain, so the makespans must be *equal*.
    ssd::SsdConfig cfg = smallSsd();
    PlatformRunner runner(cfg);
    wl::Workload w = andWorkload(6, 1, cfg);

    PlatformRunner::FunctionalRun fr = runner.runFcFunctional(w, 3);
    EXPECT_TRUE(fr.bitExact());
    RunResult timing = runner.run(PlatformKind::FlashCosmos, w);
    EXPECT_EQ(fr.timing.makespan, timing.makespan);
    EXPECT_EQ(fr.timing.senseOps, timing.senseOps);

    // Multi-row columns chunk readout differently (per page vs per
    // chunk), so makespans may differ slightly — but stay within the
    // stated parity tolerance.
    wl::Workload w2 = andWorkload(5, 2, cfg);
    PlatformRunner::FunctionalRun fr2 = runner.runFcFunctional(w2, 3);
    RunResult t2 = runner.run(PlatformKind::FlashCosmos, w2);
    EXPECT_EQ(fr2.timing.senseOps, t2.senseOps);
    double a = static_cast<double>(fr2.timing.makespan);
    double b = static_cast<double>(t2.makespan);
    EXPECT_LE(std::abs(a - b) / std::max(a, b), 0.02);
}

} // namespace
} // namespace fcos::plat
