/**
 * @file
 * Engine-vs-analytic parity: the platform runner's default engine
 * mode (engine::ComputeEngine scheduler) and the retained analytic
 * mode (ssd/ssd_sim) describe the same platforms over the same
 * parameter authority (ssd::IoParams), so for every platform and
 * workload the two timelines must agree — the stated tolerance is
 * 0.5% on makespan and energy, with sense accounting exactly equal.
 *
 * The functional half: runFcFunctional materializes operand pages on
 * the farm's chips, executes real MWS commands through the engine,
 * and must (i) reproduce the host-side reference fold bit-exactly and
 * (ii) land on the timing-only driver's makespan — one run certifies
 * that figure timelines and functional bits come from one execution.
 */

#include <gtest/gtest.h>

#include "platforms/reports.h"
#include "platforms/runner.h"

namespace fcos::plat {
namespace {

/** Relative |a-b| <= tol. */
void
expectClose(double a, double b, double tol, const char *what)
{
    double denom = std::max(std::abs(a), std::abs(b));
    if (denom == 0.0)
        return;
    EXPECT_LE(std::abs(a - b) / denom, tol) << what << ": " << a
                                            << " vs " << b;
}

constexpr double kTol = 0.005; ///< stated parity tolerance (0.5%)

class ModeParityTest : public ::testing::Test
{
  protected:
    void expectParity(const ssd::SsdConfig &cfg, const wl::Workload &w)
    {
        PlatformRunner runner(cfg);
        for (PlatformKind kind :
             {PlatformKind::Osp, PlatformKind::Isp, PlatformKind::ParaBit,
              PlatformKind::FlashCosmos}) {
            RunResult eng = runner.run(kind, w, RunnerMode::Engine);
            RunResult ana = runner.run(kind, w, RunnerMode::Analytic);
            SCOPED_TRACE(std::string(platformName(kind)) + " on " +
                         w.name);
            expectClose(static_cast<double>(eng.makespan),
                        static_cast<double>(ana.makespan), kTol,
                        "makespan");
            expectClose(eng.energyJ, ana.energyJ, kTol, "energy");
            EXPECT_EQ(eng.senseOps, ana.senseOps);
            expectClose(static_cast<double>(eng.planeBusy),
                        static_cast<double>(ana.planeBusy), kTol,
                        "plane busy");
            expectClose(static_cast<double>(eng.channelBusy),
                        static_cast<double>(ana.channelBusy), kTol,
                        "channel busy");
            expectClose(static_cast<double>(eng.externalBusy),
                        static_cast<double>(ana.externalBusy), kTol,
                        "external busy");
            expectClose(static_cast<double>(eng.hostBusy),
                        static_cast<double>(ana.hostBusy), kTol,
                        "host busy");
        }
    }
};

TEST_F(ModeParityTest, Figure7WorkloadAgreesAcrossModes)
{
    expectParity(ssd::SsdConfig::figure7(), figure7Workload());
}

TEST_F(ModeParityTest, BmiWorkloadAgreesAcrossModes)
{
    expectParity(ssd::SsdConfig::table1(),
                 wl::makeBmi(3, 80000000ULL)); // 10-MB vectors
}

TEST_F(ModeParityTest, KcsWorkloadAgreesAcrossModes)
{
    expectParity(ssd::SsdConfig::table1(),
                 wl::makeKcs(16, 8, 8000000ULL));
}

/** A small SSD whose workloads materialize in memory. */
ssd::SsdConfig
smallSsd()
{
    ssd::SsdConfig cfg;
    cfg.channels = 2;
    cfg.diesPerChannel = 2;
    cfg.geometry = nand::Geometry::tiny(); // 2 planes, 32-B pages
    return cfg;
}

/** Workload of one batch with @p rows result pages per plane column. */
wl::Workload
batchWorkload(std::uint64_t and_ops, std::uint64_t or_ops,
              std::uint64_t rows, const ssd::SsdConfig &cfg)
{
    wl::Workload w;
    w.name = and_ops ? (or_ops ? "MIX" : "AND") : "OR";
    w.paramName = "ops";
    w.paramValue = and_ops + or_ops;
    wl::OpBatch b;
    b.andOperands = and_ops;
    b.orOperands = or_ops;
    b.operandBytes =
        rows * cfg.geometry.pageBytes * cfg.totalPlanes();
    b.resultToHost = true;
    b.hostPostProcess = false;
    w.batches.push_back(b);
    return w;
}

wl::Workload
andWorkload(std::uint64_t operands, std::uint64_t rows,
            const ssd::SsdConfig &cfg)
{
    return batchWorkload(operands, 0, rows, cfg);
}

TEST(FunctionalParityTest, MaterializedRunIsBitExact)
{
    ssd::SsdConfig cfg = smallSsd();
    PlatformRunner runner(cfg);
    wl::Workload w = andWorkload(5, 2, cfg);

    PlatformRunner::FunctionalRun fr = runner.runFcFunctional(w, 11);
    ASSERT_EQ(fr.result.size(), fr.expected.size());
    EXPECT_GT(fr.result.size(), 0u);
    EXPECT_TRUE(fr.bitExact());

    // Same seed => same bits and same timeline; different seed =>
    // different bits (the check is not vacuous).
    PlatformRunner::FunctionalRun again = runner.runFcFunctional(w, 11);
    EXPECT_EQ(again.result, fr.result);
    EXPECT_EQ(again.timing.makespan, fr.timing.makespan);
    EXPECT_EQ(again.timing.energyJ, fr.timing.energyJ);
    PlatformRunner::FunctionalRun other = runner.runFcFunctional(w, 12);
    EXPECT_NE(other.result, fr.result);
}

TEST(FunctionalParityTest, MaterializedTimelineMatchesTimingDriver)
{
    // One result row per plane: the materialized chain (MWS ->
    // per-page readout -> external -> host) is event-for-event the
    // timing-only driver's chain, so the makespans must be *equal*.
    ssd::SsdConfig cfg = smallSsd();
    PlatformRunner runner(cfg);
    wl::Workload w = andWorkload(6, 1, cfg);

    PlatformRunner::FunctionalRun fr = runner.runFcFunctional(w, 3);
    EXPECT_TRUE(fr.bitExact());
    RunResult timing = runner.run(PlatformKind::FlashCosmos, w);
    EXPECT_EQ(fr.timing.makespan, timing.makespan);
    EXPECT_EQ(fr.timing.senseOps, timing.senseOps);

    // Multi-row columns chunk readout differently (per page vs per
    // chunk), so makespans may differ slightly — but stay within the
    // stated parity tolerance.
    wl::Workload w2 = andWorkload(5, 2, cfg);
    PlatformRunner::FunctionalRun fr2 = runner.runFcFunctional(w2, 3);
    RunResult t2 = runner.run(PlatformKind::FlashCosmos, w2);
    EXPECT_EQ(fr2.timing.senseOps, t2.senseOps);
    double a = static_cast<double>(fr2.timing.makespan);
    double b = static_cast<double>(t2.makespan);
    EXPECT_LE(std::abs(a - b) / std::max(a, b), 0.02);
}

/** Certify one batch shape: bit-exact against the host reference and
 *  event-for-event on the timing driver's timeline (one row per
 *  plane => the chains are identical, so makespan and sense counts
 *  must be *equal*, not merely close). */
void
certifyFunctional(const ssd::SsdConfig &cfg, std::uint64_t and_ops,
                  std::uint64_t or_ops, std::uint64_t seed)
{
    PlatformRunner runner(cfg);
    wl::Workload w = batchWorkload(and_ops, or_ops, 1, cfg);
    PlatformRunner::FunctionalRun fr = runner.runFcFunctional(w, seed);
    ASSERT_GT(fr.result.size(), 0u);
    EXPECT_TRUE(fr.bitExact());
    RunResult timing = runner.run(PlatformKind::FlashCosmos, w);
    EXPECT_EQ(fr.timing.senseOps, timing.senseOps);
    EXPECT_EQ(fr.timing.makespan, timing.makespan);
}

TEST(FunctionalParityTest, OrBatchViaDeMorganIsBitExact)
{
    // The Figure 7 shape: pure OR of 3 vectors — operands stored
    // inverted, one inverse MWS per row (§6.1 De Morgan).
    certifyFunctional(smallSsd(), 0, 3, 21);
}

TEST(FunctionalParityTest, WideOrBatchChainsInverseCommands)
{
    // More OR operands than one string holds (tiny geometry: 8
    // wordlines/string): the planner must chain inverse commands with
    // OR-merge dumps, still matching fcSensesPerRow (= 2 here).
    certifyFunctional(smallSsd(), 0, 12, 22);
}

TEST(FunctionalParityTest, KcsFusionRowIsBitExact)
{
    // The KCS figure row: AND of k adjacency vectors with the clique
    // membership vector OR-ed in as an extra string — one MWS total.
    certifyFunctional(smallSsd(), 4, 1, 23);
    certifyFunctional(smallSsd(), 6, 3, 24);
}

TEST(FunctionalParityTest, WideMixedBatchSplitsOrCommands)
{
    // m = 5 OR operands exceed the KCS fusion's spare string slots
    // (kMaxStrings - 1 = 3): the planner must put the AND group in its
    // own command and split the OR operands into OR-merge commands of
    // up to kMaxStrings strings — 1 + ceil(5/4) = 3 commands per row,
    // exactly what the analytic model charges.
    ssd::SsdConfig cfg = smallSsd();
    EXPECT_EQ(PlatformRunner::fcSensesPerRow(4, 5,
                                             cfg.maxIntraMwsWordlines(),
                                             cfg.maxInterBlockMws),
              3u);
    certifyFunctional(cfg, 4, 5, 25);
}

TEST(FunctionalParityTest, BmiRowSpansSubBlockChains)
{
    // A BMI-shaped row (AND of 30 daily vectors) at a geometry whose
    // strings hold 8 operands: the operands stack across 4 sub-block
    // chains and the planner emits 4 AND-merged commands per row.
    ssd::SsdConfig cfg = smallSsd();
    cfg.geometry.subBlocksPerBlock = 4;
    PlatformRunner runner(cfg);
    wl::Workload w = batchWorkload(30, 0, 1, cfg);
    PlatformRunner::FunctionalRun fr = runner.runFcFunctional(w, 31);
    EXPECT_TRUE(fr.bitExact());
    RunResult timing = runner.run(PlatformKind::FlashCosmos, w);
    // 30 operands / 8-wordline strings => 4 commands per row.
    EXPECT_EQ(fr.timing.senseOps, timing.senseOps);
    EXPECT_EQ(fr.timing.senseOps,
              4u * cfg.totalPlanes()); // 4 per plane column, whole SSD
    EXPECT_EQ(fr.timing.makespan, timing.makespan);
}

TEST(FunctionalParityTest, MixedBatchesAcrossOneWorkload)
{
    // Several certified shapes in one workload exercise the block
    // allocator across batches.
    ssd::SsdConfig cfg = smallSsd();
    PlatformRunner runner(cfg);
    wl::Workload w = batchWorkload(5, 0, 1, cfg);
    wl::Workload or3 = batchWorkload(0, 3, 1, cfg);
    wl::Workload kcs = batchWorkload(4, 2, 1, cfg);
    w.batches.push_back(or3.batches[0]);
    w.batches.push_back(kcs.batches[0]);
    PlatformRunner::FunctionalRun fr = runner.runFcFunctional(w, 41);
    EXPECT_TRUE(fr.bitExact());
    RunResult timing = runner.run(PlatformKind::FlashCosmos, w);
    EXPECT_EQ(fr.timing.senseOps, timing.senseOps);
    EXPECT_EQ(fr.timing.makespan, timing.makespan);
}

} // namespace
} // namespace fcos::plat
