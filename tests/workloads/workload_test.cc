/**
 * @file
 * Workload generator tests (Section 7 parameters).
 */

#include <gtest/gtest.h>

#include "workloads/workload.h"

namespace fcos::wl {
namespace {

TEST(WorkloadTest, BmiOperandCountsMatchPaper)
{
    // "operands (from 30 to 1,095)" across m = 1..36.
    EXPECT_EQ(makeBmi(1).batches[0].andOperands, 30u);
    EXPECT_EQ(makeBmi(12).batches[0].andOperands, 365u);
    EXPECT_EQ(makeBmi(36).batches[0].andOperands, 1095u);
}

TEST(WorkloadTest, BmiVectorIs100MB)
{
    // 800M users at one bit each.
    Workload w = makeBmi(1);
    EXPECT_EQ(w.batches[0].operandBytes, 100000000u);
    EXPECT_TRUE(w.batches[0].hostPostProcess); // bit-count on host
    EXPECT_TRUE(w.batches[0].resultToHost);
    // Result vector: 100 MB (Section 8.1's "only 100 MB" remark).
    EXPECT_EQ(w.totalResultBytes(), 100000000u);
}

TEST(WorkloadTest, ImsSizesMatchPaper)
{
    // I=200,000 images: bit-vectors of I*800*600*4 bits ~ 44.7 GiB
    // ("up to 44GiB result vector", Section 8.1).
    Workload w = makeIms(200000);
    double gib = static_cast<double>(w.batches[0].operandBytes) /
                 (1024.0 * 1024.0 * 1024.0);
    EXPECT_NEAR(gib, 44.7, 0.1);
    EXPECT_EQ(w.batches[0].andOperands, 3u);
    EXPECT_FALSE(w.batches[0].hostPostProcess);
}

TEST(WorkloadTest, KcsShape)
{
    Workload w = makeKcs(32);
    EXPECT_EQ(w.batches.size(), 1024u); // 1,024 k-cliques
    EXPECT_EQ(w.batches[0].andOperands, 32u);
    EXPECT_EQ(w.batches[0].orOperands, 1u); // the clique vector
    // 32M vertices at one bit each = 4 MB adjacency vectors.
    EXPECT_EQ(w.batches[0].operandBytes, 4000000u);
    // Total results: 1024 x 4 MB ~ 4 GB (Section 8.1).
    EXPECT_NEAR(static_cast<double>(w.totalResultBytes()) / 1e9, 4.1,
                0.1);
}

TEST(WorkloadTest, TotalsAggregateBatches)
{
    Workload w = makeKcs(8, 10, 8000000ULL);
    EXPECT_EQ(w.batches.size(), 10u);
    EXPECT_EQ(w.totalOperandBytes(), 10u * 9u * 1000000u);
    EXPECT_EQ(w.totalResultBytes(), 10u * 1000000u);
    EXPECT_DOUBLE_EQ(w.computedBits(), 10.0 * 9.0 * 1000000.0 * 8.0);
}

TEST(WorkloadTest, ParameterMetadata)
{
    EXPECT_EQ(makeBmi(6).paramName, "m");
    EXPECT_EQ(makeBmi(6).paramValue, 6u);
    EXPECT_EQ(makeIms(50000).paramName, "I");
    EXPECT_EQ(makeKcs(16).paramName, "k");
}

} // namespace
} // namespace fcos::wl
