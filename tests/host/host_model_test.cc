/**
 * @file
 * Host model tests.
 */

#include <gtest/gtest.h>

#include "host/host_model.h"

namespace fcos::host {
namespace {

TEST(HostModelTest, ComputeTimeMatchesStreamRate)
{
    EventQueue q;
    ssd::EnergyMeter e;
    HostModel host(q, e);
    // 24 GB/s default: 24 KB in 1 us.
    EXPECT_EQ(host.computeTime(24000), 1000u);
}

TEST(HostModelTest, ComputeSerializesAndBooksEnergy)
{
    EventQueue q;
    ssd::EnergyMeter e;
    HostConfig cfg;
    cfg.streamGBps = 1.0; // 1 B/ns for easy numbers
    cfg.cpuActiveWatts = 10.0;
    HostModel host(q, e, cfg);
    Time t1 = 0, t2 = 0;
    host.compute(1000, [&] { t1 = q.now(); });
    host.compute(1000, [&] { t2 = q.now(); });
    q.run();
    EXPECT_EQ(t1, 1000u);
    EXPECT_EQ(t2, 2000u);
    EXPECT_EQ(host.busyTime(), 2000u);
    // 10 W for 2 us = 20 uJ of CPU energy.
    EXPECT_NEAR(e.get(ssd::EnergyComponent::HostCpu), 2e-5, 1e-9);
    EXPECT_GT(e.get(ssd::EnergyComponent::HostDram), 0.0);
}

TEST(HostModelTest, ReceiveBooksDramOnly)
{
    EventQueue q;
    ssd::EnergyMeter e;
    HostModel host(q, e);
    host.receive(1 << 20);
    EXPECT_DOUBLE_EQ(e.get(ssd::EnergyComponent::HostCpu), 0.0);
    // 1 MiB * 8 bits * 20 pJ = 167.8 uJ.
    EXPECT_NEAR(e.get(ssd::EnergyComponent::HostDram), 1.678e-4, 1e-6);
    EXPECT_EQ(host.busyTime(), 0u);
}

TEST(HostModelTest, DefaultConfigMatchesTable1Host)
{
    HostConfig cfg;
    // DDR4-3600 x 4 channels = 115.2 GB/s peak.
    EXPECT_NEAR(cfg.dramGBps, 115.2, 0.1);
    // Streaming bitwise rate is DRAM-bound, far above the SSD's 8-GB/s
    // external link — which is why OSP is link-bottlenecked (Fig. 7).
    EXPECT_GT(cfg.streamGBps, 8.0);
}

} // namespace
} // namespace fcos::host
