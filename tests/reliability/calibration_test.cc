/**
 * @file
 * Reliability-model calibration: the default VthParams must reproduce
 * the quantitative anchors the paper quotes from its 160-chip
 * characterization (Sections 3.2 and 5.2). If a model change moves
 * these, the Figure 8/11 benches silently drift — this test is the
 * guardrail.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "reliability/vth_model.h"
#include "tests/support/grids.h"

namespace fcos::rel {
namespace {

class CalibrationTest : public ::testing::Test
{
  protected:
    /** The Figure 8 measurement grid. */
    std::vector<std::uint32_t> pecs = test::figure8Pecs();
    std::vector<double> months = test::figure8Months();

    double gridAverage(nand::ProgramMode mode, bool randomized) const
    {
        VthModel m;
        double sum = 0.0;
        int n = 0;
        for (test::GridPoint g : test::figure8Grid()) {
            OperatingCondition c{g.pec, g.months, randomized};
            sum += (mode == nand::ProgramMode::Mlc) ? m.rberMlc(c)
                                                    : m.rberSlc(c);
            ++n;
        }
        return sum / n;
    }

    VthModel model;
};

TEST_F(CalibrationTest, SlcRandomizationFactorNearPaper)
{
    // Section 3.2: disabling randomization raises SLC RBER by 1.91x.
    double with_r = gridAverage(nand::ProgramMode::SlcRegular, true);
    double without_r = gridAverage(nand::ProgramMode::SlcRegular, false);
    double factor = without_r / with_r;
    EXPECT_GT(factor, 1.5);
    EXPECT_LT(factor, 2.4);
}

TEST_F(CalibrationTest, MlcRandomizationFactorNearPaper)
{
    // Section 3.2: 4.92x for MLC.
    double with_r = gridAverage(nand::ProgramMode::Mlc, true);
    double without_r = gridAverage(nand::ProgramMode::Mlc, false);
    double factor = without_r / with_r;
    EXPECT_GT(factor, 3.5);
    EXPECT_LT(factor, 6.5);
}

TEST_F(CalibrationTest, MlcWorseThanSlcByUpToFourX)
{
    // Section 3.2: MLC-mode programming up to ~4x the RBER of SLC.
    OperatingCondition worst{10000, 12.0, true};
    double slc = model.rberSlc(worst);
    double mlc = model.rberMlc(worst);
    EXPECT_GT(mlc / slc, 2.0);
    EXPECT_LT(mlc / slc, 6.0);
}

TEST_F(CalibrationTest, WorstCaseRberRangeMatchesSection32)
{
    // "a bit error rate range of 8.6e-4 to 1.6e-2 (the RBER range
    // across the two plots in Figure 8(b))" — MLC, with and without
    // randomization.
    double lo = 1e9, hi = 0.0;
    for (auto pec : pecs) {
        for (double mo : months) {
            for (bool r : {true, false}) {
                double v = model.rberMlc({pec, mo, r});
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
        }
    }
    EXPECT_GT(hi, 8e-3);
    EXPECT_LT(hi, 3.2e-2);
    EXPECT_LT(lo, 2.5e-3);
}

TEST_F(CalibrationTest, SlcWorstCaseOnMilliScale)
{
    // Figure 8(a)'s axis tops out at 6e-3: the worst SLC point
    // (10K PEC, 12 months) must sit on that scale.
    double worst = model.rberSlc({10000, 12.0, true});
    EXPECT_GT(worst, 1e-3);
    EXPECT_LT(worst, 6e-3);
}

TEST_F(CalibrationTest, SlcPristineIsNearZero)
{
    // Fresh blocks at retention 0 show ~0 on the Figure 8 axes.
    EXPECT_LT(model.rberSlc({0, 0.0, true}), 1e-6);
}

TEST_F(CalibrationTest, RberMonotoneInPecAndRetention)
{
    for (bool randomized : {true, false}) {
        double prev = -1.0;
        for (auto pec : pecs) {
            double v = model.rberSlc({pec, 12.0, randomized});
            EXPECT_GE(v, prev);
            prev = v;
        }
        prev = -1.0;
        for (double mo : months) {
            double v = model.rberMlc({10000, mo, randomized});
            EXPECT_GE(v, prev);
            prev = v;
        }
    }
}

TEST_F(CalibrationTest, EspOrderOfMagnitudeAtSixtyPercent)
{
    // Section 5.2: "increasing tESP by 60% achieves an order of
    // magnitude RBER reduction" for the median block.
    OperatingCondition worst{10000, 12.0, false};
    double base = model.rberEsp(1.0, worst);
    double at16 = model.rberEsp(1.6, worst);
    double decades = std::log10(base / at16);
    EXPECT_GT(decades, 0.8);
    EXPECT_LT(decades, 2.0);
}

TEST_F(CalibrationTest, EspZeroErrorRegimeAtNinetyPercent)
{
    // Section 5.2: zero errors across 4.83e11 bits at tESP >= 1.9x,
    // i.e. statistical RBER below 2.07e-12.
    OperatingCondition worst{10000, 12.0, false};
    for (double f : {1.9, 1.95, 2.0}) {
        double rber = model.rberEsp(f, worst);
        // Even a pessimistic (quality = 1.3) block stays under the
        // paper's bound.
        EXPECT_LT(model.rberEsp(f, worst, 1.3), 2.07e-12) << "f=" << f;
        EXPECT_LT(rber, 2.07e-12) << "f=" << f;
    }
}

TEST_F(CalibrationTest, EspMonotoneInExtension)
{
    OperatingCondition worst{10000, 12.0, false};
    double prev = 1.0;
    for (double f = 1.0; f <= 2.0; f += 0.1) {
        double v = model.rberEsp(f, worst);
        EXPECT_LE(v, prev) << "f=" << f;
        prev = v;
    }
}

TEST_F(CalibrationTest, EspAtBaselineEqualsRegularSlc)
{
    OperatingCondition c{10000, 12.0, false};
    EXPECT_DOUBLE_EQ(model.rberEsp(1.0, c), model.rberSlc(c));
}

} // namespace
} // namespace fcos::rel
