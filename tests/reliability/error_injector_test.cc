/**
 * @file
 * Error-injector tests: statistical faithfulness and determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nand/chip.h"
#include "reliability/error_injector.h"

namespace fcos::rel {
namespace {

TEST(ErrorInjectorTest, ZeroRateInjectsNothing)
{
    VthModel model;
    VthErrorInjector inj(model, {0, 0.0, true});
    BitVector page(1 << 16, true);
    nand::PageMeta meta;
    meta.mode = nand::ProgramMode::SlcRegular;
    meta.randomized = true;
    BitVector copy = page;
    inj.inject(page, meta, 1);
    // Pristine SLC RBER is ~1e-13; 64K bits should see zero flips.
    EXPECT_EQ(page, copy);
    EXPECT_EQ(inj.injectedErrors(), 0u);
    EXPECT_EQ(inj.sensedBits(), page.size());
}

TEST(ErrorInjectorTest, FlipCountTracksAnalyticRate)
{
    VthModel model;
    OperatingCondition worst{10000, 12.0, false};
    VthErrorInjector inj(model, worst);
    nand::PageMeta meta;
    meta.mode = nand::ProgramMode::Mlc;
    meta.randomized = false;
    double p = model.rberMlc(worst);

    const std::size_t bits = 1 << 18;
    std::uint64_t flips = 0;
    for (int round = 0; round < 16; ++round) {
        BitVector page(bits, true);
        BitVector copy = page;
        inj.inject(page, meta, static_cast<std::uint64_t>(round));
        flips += page.hammingDistance(copy);
    }
    double expected = p * bits * 16;
    EXPECT_NEAR(static_cast<double>(flips), expected,
                5.0 * std::sqrt(expected) + 10);
}

TEST(ErrorInjectorTest, DeterministicPerSeed)
{
    VthModel model;
    OperatingCondition worst{10000, 12.0, false};
    nand::PageMeta meta;
    meta.mode = nand::ProgramMode::Mlc;

    VthErrorInjector inj1(model, worst, 1.0, 99);
    VthErrorInjector inj2(model, worst, 1.0, 99);
    BitVector a(1 << 16, true), b(1 << 16, true);
    inj1.inject(a, meta, 7);
    inj2.inject(b, meta, 7);
    EXPECT_EQ(a, b);

    BitVector c(1 << 16, true);
    inj1.inject(c, meta, 8); // different per-read seed -> different flips
    EXPECT_NE(a, c);
}

TEST(ErrorInjectorTest, EspPagesSeeNoErrorsThroughChip)
{
    // End-to-end: an ESP-programmed page read under worst-case
    // conditions returns exactly the stored data (the paper's
    // zero-bit-error property), while a regular SLC page of the same
    // size accumulates visible errors across many reads.
    VthModel model;
    OperatingCondition worst{10000, 12.0, false};
    VthErrorInjector inj(model, worst);

    nand::Geometry geom = nand::Geometry::tiny();
    geom.pageBytes = 4096; // larger page: sharper statistics
    nand::NandChip chip(geom, nand::Timings{}, &inj);

    Rng rng = Rng::seeded(3);
    BitVector data(geom.pageBits());
    data.randomize(rng);
    chip.programPageEsp({0, 0, 0, 0}, data, nand::EspParams{2.0});
    chip.programPage({0, 1, 0, 0}, data, nand::ProgramMode::SlcRegular);

    std::uint64_t esp_errors = 0, slc_errors = 0;
    for (int reads = 0; reads < 50; ++reads) {
        chip.readPage({0, 0, 0, 0});
        esp_errors += chip.dataOut(0).hammingDistance(data);
        chip.readPage({0, 1, 0, 0});
        slc_errors += chip.dataOut(0).hammingDistance(data);
    }
    EXPECT_EQ(esp_errors, 0u);
    EXPECT_GT(slc_errors, 0u);
}

TEST(ErrorInjectorTest, MwsOnEspOperandsIsExact)
{
    // Multi-operand MWS multiplies exposure (every operand cell can
    // err); with ESP it still comes out exact.
    VthModel model;
    OperatingCondition worst{10000, 12.0, false};
    VthErrorInjector inj(model, worst);
    nand::NandChip chip(nand::Geometry::tiny(), nand::Timings{}, &inj);

    Rng rng = Rng::seeded(4);
    BitVector expected(chip.geometry().pageBits(), true);
    std::uint64_t mask = 0;
    for (std::uint32_t wl = 0; wl < 8; ++wl) {
        BitVector v(chip.geometry().pageBits());
        v.randomize(rng);
        chip.programPageEsp({0, 0, 0, wl}, v, nand::EspParams{2.0});
        expected &= v;
        mask |= 1ULL << wl;
    }
    nand::MwsCommand cmd;
    cmd.plane = 0;
    cmd.selections.push_back(nand::WlSelection{0, 0, mask});
    chip.executeMws(cmd);
    EXPECT_EQ(chip.dataOut(0), expected);
}

} // namespace
} // namespace fcos::rel
