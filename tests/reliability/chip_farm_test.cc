/**
 * @file
 * Chip-farm population tests (the simulated 160-chip testbed).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "reliability/chip_farm.h"

namespace fcos::rel {
namespace {

ChipFarm::Config
smallFarm()
{
    ChipFarm::Config cfg;
    cfg.chips = 20;
    cfg.blocksPerChip = 30;
    return cfg;
}

TEST(ChipFarmTest, PopulationMatchesPaperDefaults)
{
    ChipFarm farm;
    EXPECT_EQ(farm.blockCount(), 160u * 120u);
    // "a total of 3,686,400 WLs" (Section 5.1).
    EXPECT_EQ(farm.totalWordlines(), 3686400u);
}

TEST(ChipFarmTest, QualitySpreadIsModest)
{
    ChipFarm farm(smallFarm());
    double lo = 1e9, hi = 0.0;
    for (std::size_t i = 0; i < farm.blockCount(); ++i) {
        double q = farm.blockQuality(i);
        lo = std::min(lo, q);
        hi = std::max(hi, q);
        EXPECT_GT(q, 0.5);
        EXPECT_LT(q, 2.0);
    }
    EXPECT_LT(lo, 1.0);
    EXPECT_GT(hi, 1.0);
}

TEST(ChipFarmTest, DeterministicAcrossConstructions)
{
    ChipFarm a(smallFarm()), b(smallFarm());
    for (std::size_t i = 0; i < a.blockCount(); ++i)
        EXPECT_DOUBLE_EQ(a.blockQuality(i), b.blockQuality(i));
}

TEST(ChipFarmTest, AverageRberNearTypicalBlock)
{
    ChipFarm farm(smallFarm());
    OperatingCondition c{10000, 12.0, true};
    double avg = farm.averageRber(nand::ProgramMode::SlcRegular, c);
    double typical = farm.model().rberSlc(c, 1.0);
    EXPECT_GT(avg, typical * 0.5);
    EXPECT_LT(avg, typical * 3.0);
}

TEST(ChipFarmTest, EspPercentilesOrdered)
{
    ChipFarm farm(smallFarm());
    OperatingCondition c{10000, 12.0, false};
    auto p = farm.espRber(1.3, c);
    EXPECT_LE(p.best, p.median);
    EXPECT_LE(p.median, p.worst);
    EXPECT_GT(p.worst, p.best); // real spread
}

TEST(ChipFarmTest, CampaignCountsMatchExpectation)
{
    ChipFarm farm(smallFarm());
    OperatingCondition c{10000, 12.0, false};
    nand::PageMeta meta;
    meta.mode = nand::ProgramMode::SlcRegular;
    meta.randomized = false;

    auto camp = farm.runCampaign(meta, c, 100000000ULL);
    EXPECT_EQ(camp.bits, 100000000ULL);
    EXPECT_GT(camp.expectedErrors, 1.0);
    double sd = std::sqrt(camp.expectedErrors);
    EXPECT_NEAR(static_cast<double>(camp.errors), camp.expectedErrors,
                6.0 * sd);
}

TEST(ChipFarmTest, EspCampaignAtOperatingPointIsErrorFree)
{
    // The paper's validation: > 4.83e11 bits through ESP-programmed
    // wordlines under worst-case conditions, zero errors observed.
    ChipFarm farm;
    OperatingCondition c{10000, 12.0, false};
    nand::PageMeta meta;
    meta.mode = nand::ProgramMode::SlcEsp;
    meta.espFactor = 2.0;
    auto camp = farm.runCampaign(meta, c, 483000000000ULL);
    EXPECT_EQ(camp.errors, 0u);
    EXPECT_LT(camp.expectedErrors, 0.1);
    // Statistical bound: RBER < 2.07e-12 (Section 5.2).
    EXPECT_LT(camp.rberBound(), 2.08e-12);
}

} // namespace
} // namespace fcos::rel
