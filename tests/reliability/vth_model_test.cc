/**
 * @file
 * V_TH model structural tests (state placement, quality scaling,
 * mode dispatch).
 */

#include <gtest/gtest.h>

#include "reliability/vth_model.h"

namespace fcos::rel {
namespace {

TEST(VthModelTest, SlcStatesDegradeAsExpected)
{
    VthModel m;
    auto fresh = m.slcStates({0, 0.0, true});
    auto aged = m.slcStates({10000, 12.0, true});
    // Retention drops the programmed state; disturb raises erased.
    EXPECT_LT(aged.progMean, fresh.progMean);
    EXPECT_GT(aged.erasedMean, fresh.erasedMean);
    // Wear widens the distributions.
    EXPECT_GT(aged.progSigma, fresh.progSigma);
    // The optimal read reference stays between the states.
    EXPECT_GT(aged.readRef, aged.erasedMean);
    EXPECT_LT(aged.readRef, aged.progMean);
}

TEST(VthModelTest, QualityScalesRber)
{
    VthModel m;
    OperatingCondition c{10000, 12.0, true};
    double good = m.rberSlc(c, 0.9);
    double typical = m.rberSlc(c, 1.0);
    double bad = m.rberSlc(c, 1.2);
    EXPECT_LT(good, typical);
    EXPECT_LT(typical, bad);
}

TEST(VthModelTest, PatternFactorOnlyAffectsUnrandomized)
{
    VthModel m;
    OperatingCondition r{10000, 12.0, true};
    OperatingCondition nr{10000, 12.0, false};
    EXPECT_GT(m.rberSlc(nr), m.rberSlc(r));
    EXPECT_GT(m.rberMlc(nr), m.rberMlc(r));
}

TEST(VthModelTest, RberForDispatchesOnMode)
{
    VthModel m;
    OperatingCondition c{10000, 12.0, false};
    nand::PageMeta meta;
    meta.mode = nand::ProgramMode::SlcRegular;
    meta.randomized = false;
    EXPECT_DOUBLE_EQ(m.rberFor(meta, c), m.rberSlc(c));

    meta.mode = nand::ProgramMode::SlcEsp;
    meta.espFactor = 2.0;
    EXPECT_DOUBLE_EQ(m.rberFor(meta, c), m.rberEsp(2.0, c));

    meta.mode = nand::ProgramMode::Mlc;
    EXPECT_DOUBLE_EQ(m.rberFor(meta, c), m.rberMlc(c));

    meta.mode = nand::ProgramMode::Tlc;
    EXPECT_GT(m.rberFor(meta, c), m.rberMlc(c));
}

TEST(VthModelTest, MetaRandomizationOverridesCondition)
{
    // rberFor takes the randomization fact from the page metadata,
    // not from the caller's condition.
    VthModel m;
    OperatingCondition c{10000, 12.0, true};
    nand::PageMeta meta;
    meta.mode = nand::ProgramMode::SlcRegular;
    meta.randomized = false;
    EXPECT_DOUBLE_EQ(m.rberFor(meta, c),
                     m.rberSlc({10000, 12.0, false}));
}

TEST(VthModelTest, RetentionIsLogarithmicInTime)
{
    VthModel m;
    double d1 = m.rberSlc({10000, 1.0, true});
    double d2 = m.rberSlc({10000, 2.0, true});
    double d12 = m.rberSlc({10000, 12.0, true});
    // Doubling time grows RBER far less than 12x the 1-month value.
    EXPECT_LT(d2 / d1, 4.0);
    EXPECT_GT(d12, d2);
}

TEST(VthModelTest, MlcLsbPageIsMlcClassSingleBoundary)
{
    // Footnote 15: the LSB read is mechanically an SLC read (one
    // boundary), but margins stay MLC-class — comparable to the
    // full-MLC average, orders above ESP.
    VthModel m;
    OperatingCondition worst{10000, 12.0, false};
    double lsb = m.rberMlcLsb(worst);
    double mlc = m.rberMlc(worst);
    EXPECT_GT(lsb, 0.2 * mlc);
    EXPECT_LT(lsb, 2.0 * mlc);
    EXPECT_GT(lsb, 1e6 * m.rberEsp(2.0, worst));
    // Monotone in degradation like every other mode.
    EXPECT_LT(m.rberMlcLsb({0, 0.0, true}), lsb);
}

TEST(VthModelTest, TlcWorseThanMlcEverywhere)
{
    // Eight states in the same window: strictly tighter margins.
    VthModel m;
    for (std::uint32_t pec : {0u, 3000u, 10000u}) {
        for (double mo : {0.0, 3.0, 12.0}) {
            for (bool r : {true, false}) {
                OperatingCondition c{pec, mo, r};
                EXPECT_GE(m.rberTlc(c), m.rberMlc(c))
                    << "pec=" << pec << " mo=" << mo << " r=" << r;
                EXPECT_LT(m.rberTlc(c), 0.5);
            }
        }
    }
}

TEST(VthModelTest, TlcPristineStillErrorProne)
{
    // Section 3.2's premise: even fresh high-density modes carry RBER
    // far above any UBER target, which is why SSDs need strong ECC.
    VthModel m;
    EXPECT_GT(m.rberTlc({0, 0.0, true}), 1e-5);
}

TEST(VthModelTest, TlcDispatchesThroughRberFor)
{
    VthModel m;
    OperatingCondition c{10000, 12.0, false};
    nand::PageMeta meta;
    meta.mode = nand::ProgramMode::Tlc;
    meta.randomized = false;
    EXPECT_DOUBLE_EQ(m.rberFor(meta, c), m.rberTlc(c));
}

TEST(VthModelTest, EspRejectsOutOfRangeFactor)
{
    VthModel m;
    EXPECT_DEATH(m.rberEsp(0.5, {0, 0.0, false}), "range");
    EXPECT_DEATH(m.rberEsp(3.0, {0, 0.0, false}), "range");
}

} // namespace
} // namespace fcos::rel
