/**
 * @file
 * Nightly-scale reliability sweep (label: sweep-full): the *full*
 * Figure 8 cross product — every (P/E, retention) operating point —
 * evaluated against the simulated 160-chip population, not only the
 * coarser subset the default sweeps cover. Population statistics
 * (worst/median/best ESP blocks, mode ordering, campaign error draws)
 * must behave at every point.
 */

#include <gtest/gtest.h>

#include "reliability/chip_farm.h"
#include "tests/support/grids.h"

namespace fcos::rel {
namespace {

using test::GridPoint;

/** One shared population: construction samples 19,200 block qualities. */
const ChipFarm &
farm()
{
    static const ChipFarm *f = new ChipFarm();
    return *f;
}

class FullGridPopulationTest : public ::testing::TestWithParam<GridPoint>
{};

TEST_P(FullGridPopulationTest, ModeOrderingOverPopulation)
{
    const GridPoint g = GetParam();
    OperatingCondition c{g.pec, g.months, false};
    double slc = farm().averageRber(nand::ProgramMode::SlcRegular, c);
    double mlc = farm().averageRber(nand::ProgramMode::Mlc, c);
    double esp = farm().averageRber(nand::ProgramMode::SlcEsp, c);
    // Population averages keep the per-block ordering: ESP <= SLC,
    // SLC no worse than MLC (small tolerance for the tail average).
    EXPECT_LE(esp, slc * (1.0 + 1e-9));
    EXPECT_LE(slc, mlc * 1.05);
    for (double v : {slc, mlc, esp}) {
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 0.5);
    }
}

TEST_P(FullGridPopulationTest, EspSpreadOrderedAndReliable)
{
    const GridPoint g = GetParam();
    OperatingCondition c{g.pec, g.months, false};
    ChipFarm::EspPoint p = farm().espRber(2.0, c);
    EXPECT_LE(p.best, p.median);
    EXPECT_LE(p.median, p.worst);
    // The paper's headline: at the full 2.0x extension even the worst
    // block of the population is effectively error-free everywhere on
    // the grid.
    EXPECT_LT(p.worst, 1e-9) << "pec=" << g.pec
                             << " months=" << g.months;
}

TEST_P(FullGridPopulationTest, CampaignErrorDrawsMatchAnalyticRate)
{
    const GridPoint g = GetParam();
    OperatingCondition c{g.pec, g.months, false};
    nand::PageMeta meta;
    meta.mode = nand::ProgramMode::SlcEsp;
    meta.espFactor = 2.0;
    meta.randomized = false;
    ChipFarm::Campaign camp =
        farm().runCampaign(meta, c, /*total_bits=*/1ULL << 30);
    EXPECT_EQ(camp.bits, 1ULL << 30);
    // ESP 2.0 reproduces the ">4.83e11 bits, zero errors" property at
    // campaign scale on every grid point.
    EXPECT_EQ(camp.errors, 0u);
    EXPECT_LT(camp.expectedErrors, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Figure8FullGrid, FullGridPopulationTest,
                         ::testing::ValuesIn(test::figure8Grid()),
                         test::gridPointName);

} // namespace
} // namespace fcos::rel
