/**
 * @file
 * BCH codec tests: GF arithmetic, encode/decode round trips, error
 * correction up to t, failure beyond t, and the Section 3.2 claim
 * that in-flash AND breaks ECC.
 */

#include <gtest/gtest.h>

#include <set>

#include "reliability/bch.h"
#include "util/rng.h"

namespace fcos::rel {
namespace {

TEST(GaloisFieldTest, BasicAxioms)
{
    GaloisField gf(8);
    EXPECT_EQ(gf.n(), 255u);
    Rng rng = Rng::seeded(1);
    for (int i = 0; i < 200; ++i) {
        unsigned a = 1 + static_cast<unsigned>(rng.nextBounded(255));
        unsigned b = 1 + static_cast<unsigned>(rng.nextBounded(255));
        // Multiplicative inverse and associativity spot checks.
        EXPECT_EQ(gf.mul(a, gf.inv(a)), 1u);
        EXPECT_EQ(gf.div(gf.mul(a, b), b), a);
        EXPECT_EQ(gf.mul(a, 1), a);
        EXPECT_EQ(gf.mul(a, 0), 0u);
    }
}

TEST(GaloisFieldTest, AlphaPowersCycle)
{
    GaloisField gf(5);
    EXPECT_EQ(gf.alphaPow(0), 1u);
    EXPECT_EQ(gf.alphaPow(gf.n()), 1u);
    // All non-zero elements appear exactly once in one period.
    std::set<unsigned> seen;
    for (unsigned e = 0; e < gf.n(); ++e)
        EXPECT_TRUE(seen.insert(gf.alphaPow(e)).second);
}

class BchParamTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(BchParamTest, CorrectsUpToTErrors)
{
    auto [m, t] = GetParam();
    BchCode code(m, t);
    EXPECT_EQ(code.n(), (1u << m) - 1);
    EXPECT_LE(code.parityBits(), m * t);

    Rng rng = Rng::seeded(m * 100 + t);
    for (int round = 0; round < 8; ++round) {
        BitVector data(code.k());
        data.randomize(rng);
        BitVector cw = code.encode(data);
        EXPECT_EQ(code.extractData(cw), data);

        // Inject exactly t errors at distinct positions.
        BitVector corrupted = cw;
        std::set<std::size_t> positions;
        while (positions.size() < t)
            positions.insert(
                static_cast<std::size_t>(rng.nextBounded(code.n())));
        for (auto p : positions)
            corrupted.set(p, !corrupted.get(p));

        BchDecodeResult r = code.decode(corrupted);
        EXPECT_TRUE(r.ok);
        EXPECT_EQ(r.corrected, t);
        EXPECT_EQ(corrupted, cw);
        EXPECT_EQ(code.extractData(corrupted), data);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, BchParamTest,
    ::testing::Values(std::pair{5u, 1u}, std::pair{6u, 2u},
                      std::pair{8u, 2u}, std::pair{8u, 4u},
                      std::pair{10u, 4u}, std::pair{10u, 8u},
                      std::pair{13u, 8u}));

TEST(BchTest, CleanWordDecodesWithZeroCorrections)
{
    BchCode code(8, 3);
    Rng rng = Rng::seeded(5);
    BitVector data(code.k());
    data.randomize(rng);
    BitVector cw = code.encode(data);
    BchDecodeResult r = code.decode(cw);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.corrected, 0u);
}

TEST(BchTest, DetectsUncorrectableOverload)
{
    // Far more errors than t: decode must not silently "succeed" into
    // the original data.
    BchCode code(8, 2);
    Rng rng = Rng::seeded(6);
    int failures_or_miscorrections = 0;
    for (int round = 0; round < 10; ++round) {
        BitVector data(code.k());
        data.randomize(rng);
        BitVector cw = code.encode(data);
        BitVector corrupted = cw;
        for (int e = 0; e < 12; ++e) {
            auto p = static_cast<std::size_t>(rng.nextBounded(code.n()));
            corrupted.set(p, !corrupted.get(p));
        }
        BchDecodeResult r = code.decode(corrupted);
        if (!r.ok || code.extractData(corrupted) != data)
            ++failures_or_miscorrections;
    }
    EXPECT_EQ(failures_or_miscorrections, 10);
}

TEST(BchTest, CodewordsClosedUnderXorButNotAnd)
{
    // Linearity in GF(2): XOR of codewords is a codeword; AND is not
    // (the executable core of Section 3.2's ECC argument).
    BchCode code(8, 2);
    Rng rng = Rng::seeded(7);
    int and_valid = 0;
    for (int round = 0; round < 20; ++round) {
        BitVector d1(code.k()), d2(code.k());
        d1.randomize(rng);
        d2.randomize(rng);
        BitVector c1 = code.encode(d1), c2 = code.encode(d2);

        BitVector x = c1 ^ c2;
        BchDecodeResult rx = code.decode(x);
        EXPECT_TRUE(rx.ok);
        EXPECT_EQ(rx.corrected, 0u);
        EXPECT_EQ(code.extractData(x), d1 ^ d2);

        BitVector a = c1 & c2;
        BchDecodeResult ra = code.decode(a);
        if (ra.ok && ra.corrected == 0)
            ++and_valid;
    }
    EXPECT_EQ(and_valid, 0);
}

TEST(PageCodecTest, PageRoundTripWithScatteredErrors)
{
    PageCodec codec(BchCode(10, 4));
    Rng rng = Rng::seeded(8);
    BitVector page(4096);
    page.randomize(rng);
    BitVector enc = codec.encodePage(page);
    EXPECT_EQ(enc.size(), codec.encodedBits(page.size()));

    // Up to t errors in each chunk remain correctable.
    for (std::size_t c = 0; c < enc.size() / codec.code().n(); ++c) {
        for (int e = 0; e < 4; ++e) {
            std::size_t p = c * codec.code().n() +
                            static_cast<std::size_t>(rng.nextBounded(
                                codec.code().n()));
            enc.set(p, !enc.get(p));
        }
    }
    BitVector out;
    BchDecodeResult r = codec.decodePage(enc, page.size(), &out);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(out, page);
}

TEST(PageCodecTest, PartialLastChunkPads)
{
    PageCodec codec(BchCode(6, 2));
    Rng rng = Rng::seeded(9);
    BitVector page(100); // not a multiple of k
    page.randomize(rng);
    BitVector enc = codec.encodePage(page);
    BitVector out;
    BchDecodeResult r = codec.decodePage(enc, page.size(), &out);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(out, page);
}

} // namespace
} // namespace fcos::rel
