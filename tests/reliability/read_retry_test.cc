/**
 * @file
 * Read-retry and data-pattern tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "reliability/patterns.h"
#include "reliability/read_retry.h"

namespace fcos::rel {
namespace {

TEST(ReadRetryTest, OptimumMatchesNoiseWeightedMidpoint)
{
    VthModel model;
    for (std::uint32_t pec : {0u, 3000u, 10000u}) {
        OperatingCondition c{pec, 6.0, false};
        double searched = ReadRetry::optimalSlcRef(model, c);
        double analytic = model.slcStates(c).readRef;
        EXPECT_NEAR(searched, analytic, 0.02) << "pec=" << pec;
    }
}

TEST(ReadRetryTest, RberIsUnimodalAroundOptimum)
{
    VthModel model;
    OperatingCondition c{10000, 12.0, false};
    double best = ReadRetry::optimalSlcRef(model, c);
    double at_best = ReadRetry::rberSlcAtRef(model, c, best);
    for (double off : {0.2, 0.5, 1.0}) {
        EXPECT_GT(ReadRetry::rberSlcAtRef(model, c, best + off),
                  at_best);
        EXPECT_GT(ReadRetry::rberSlcAtRef(model, c, best - off),
                  at_best);
    }
}

TEST(ReadRetryTest, StaleDefaultReferenceCostsErrors)
{
    // Why read-retry exists: reading an aged page at the pristine
    // default reference is much worse than at the tracked optimum.
    VthModel model;
    OperatingCondition aged{10000, 12.0, false};
    double pristine_ref =
        model.slcStates(OperatingCondition{0, 0.0, false}).readRef;
    double stale = ReadRetry::rberSlcAtRef(model, aged, pristine_ref);
    double tracked = ReadRetry::rberSlcAtRef(
        model, aged, ReadRetry::optimalSlcRef(model, aged));
    EXPECT_GT(stale, 3.0 * tracked);
}

TEST(ReadRetryTest, RetryStepsGrowWithDegradation)
{
    VthModel model;
    unsigned fresh = ReadRetry::retryStepsNeeded(
        model, OperatingCondition{0, 0.0, false});
    unsigned aged = ReadRetry::retryStepsNeeded(
        model, OperatingCondition{10000, 12.0, false});
    EXPECT_EQ(fresh, 0u);
    EXPECT_GT(aged, 0u);
    EXPECT_LT(aged, 30u); // sane magnitude
}

TEST(PatternTest, WorstCasePatternSatisfiesConstraints)
{
    Rng rng = Rng::seeded(3);
    for (std::uint64_t mask : {0x1ULL, 0xFFULL, 0xA5ULL}) {
        auto pages = worstCaseMwsPattern(8, 512, mask, rng);
        ASSERT_EQ(pages.size(), 8u);
        EXPECT_TRUE(satisfiesWorstCaseConstraints(pages, mask));
    }
}

TEST(PatternTest, ConstraintCheckerCatchesViolations)
{
    Rng rng = Rng::seeded(4);
    auto pages = worstCaseMwsPattern(8, 256, 0x0F, rng);
    // Violation 1: a '1' on a non-target wordline.
    auto bad1 = pages;
    bad1[7].set(0, true);
    EXPECT_FALSE(satisfiesWorstCaseConstraints(bad1, 0x0F));
    // Violation 2: two '1's in one string.
    auto bad2 = pages;
    bad2[0].set(5, true);
    bad2[1].set(5, true);
    EXPECT_FALSE(satisfiesWorstCaseConstraints(bad2, 0x0F));
}

TEST(PatternTest, PatternActuallyWeakensStrings)
{
    // Roughly half the strings carry exactly one conducting target
    // cell; none carry two.
    Rng rng = Rng::seeded(5);
    auto pages = worstCaseMwsPattern(8, 4096, 0xFF, rng);
    std::size_t ones = 0;
    for (const auto &p : pages)
        ones += p.popcount();
    EXPECT_GT(ones, 4096u * 3 / 10);
    EXPECT_LT(ones, 4096u * 7 / 10);
}

} // namespace
} // namespace fcos::rel
