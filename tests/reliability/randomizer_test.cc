/**
 * @file
 * Data randomizer tests, including the Section 3.2 incompatibility
 * of randomization with in-flash AND/OR.
 */

#include <gtest/gtest.h>

#include "reliability/randomizer.h"
#include "util/rng.h"

namespace fcos::rel {
namespace {

TEST(RandomizerTest, ApplyTwiceIsIdentity)
{
    Randomizer r;
    Rng rng = Rng::seeded(1);
    BitVector page(1000);
    page.randomize(rng);
    BitVector original = page;
    r.apply(page, 42);
    EXPECT_NE(page, original);
    r.apply(page, 42);
    EXPECT_EQ(page, original);
}

TEST(RandomizerTest, DifferentPagesGetDifferentKeystreams)
{
    Randomizer r;
    BitVector a(512, false), b(512, false);
    r.apply(a, 1);
    r.apply(b, 2);
    EXPECT_NE(a, b);
    EXPECT_NE(r.keystreamWord(1, 0), r.keystreamWord(2, 0));
    EXPECT_NE(r.keystreamWord(1, 0), r.keystreamWord(1, 1));
}

TEST(RandomizerTest, BreaksWorstCasePatterns)
{
    // An all-zeros page (every cell programmed — a disturb-hostile
    // pattern) scrambles to roughly half ones.
    Randomizer r;
    BitVector page(8192, false);
    r.apply(page, 7);
    double ones = static_cast<double>(page.popcount());
    EXPECT_GT(ones, 8192 * 0.40);
    EXPECT_LT(ones, 8192 * 0.60);
}

TEST(RandomizerTest, TailBitsStayClean)
{
    Randomizer r;
    BitVector page(70, false);
    r.apply(page, 3);
    EXPECT_LE(page.popcount(), 70u);
    BitVector copy = page;
    copy.invert();
    EXPECT_EQ(copy.popcount(), 70u - page.popcount());
}

TEST(RandomizerTest, AndDoesNotCommuteWithScrambling)
{
    // Section 3.2: derandomize(randomize(A) AND randomize(B)) != A AND B,
    // which is why ParaBit must disable randomization.
    Randomizer r;
    Rng rng = Rng::seeded(2);
    BitVector a(2048), b(2048);
    a.randomize(rng);
    b.randomize(rng);

    BitVector sa = a, sb = b;
    r.apply(sa, 10); // as stored on wordline 10
    r.apply(sb, 11); // as stored on wordline 11

    BitVector in_flash_and = sa & sb; // what MWS would sense
    // The controller would derandomize the result with *some* page's
    // keystream — neither choice recovers A AND B.
    BitVector attempt1 = in_flash_and;
    r.apply(attempt1, 10);
    BitVector attempt2 = in_flash_and;
    r.apply(attempt2, 11);
    BitVector truth = a & b;
    EXPECT_NE(attempt1, truth);
    EXPECT_NE(attempt2, truth);
    // And the damage is massive, not a few bits.
    EXPECT_GT(attempt1.hammingDistance(truth), 2048u / 8);
}

TEST(RandomizerTest, DeviceSeedChangesKeystream)
{
    Randomizer r1(111), r2(222);
    BitVector a(256, false), b(256, false);
    r1.apply(a, 5);
    r2.apply(b, 5);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace fcos::rel
