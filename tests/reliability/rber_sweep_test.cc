/**
 * @file
 * Parameterized sweeps over the full Figure 8 grid: structural
 * properties of the reliability model that must hold at *every* grid
 * point, not only at the calibrated anchors.
 */

#include <gtest/gtest.h>

#include "reliability/vth_model.h"

namespace fcos::rel {
namespace {

struct GridPoint
{
    std::uint32_t pec;
    double months;
};

class RberGridTest : public ::testing::TestWithParam<GridPoint>
{
  protected:
    VthModel model;
};

TEST_P(RberGridTest, RandomizationNeverHurts)
{
    const GridPoint g = GetParam();
    OperatingCondition with{g.pec, g.months, true};
    OperatingCondition without{g.pec, g.months, false};
    EXPECT_LE(model.rberSlc(with), model.rberSlc(without));
    EXPECT_LE(model.rberMlc(with), model.rberMlc(without));
    EXPECT_LE(model.rberMlcLsb(with), model.rberMlcLsb(without));
}

TEST_P(RberGridTest, ModeOrderingSlcBeatsMlc)
{
    const GridPoint g = GetParam();
    for (bool r : {true, false}) {
        OperatingCondition c{g.pec, g.months, r};
        EXPECT_LE(model.rberSlc(c), model.rberMlc(c) * 1.05)
            << "pec=" << g.pec << " months=" << g.months;
    }
}

TEST_P(RberGridTest, EspAlwaysNoWorseThanRegularSlc)
{
    const GridPoint g = GetParam();
    OperatingCondition c{g.pec, g.months, false};
    double slc = model.rberSlc(c);
    for (double f : {1.0, 1.3, 1.7, 2.0})
        EXPECT_LE(model.rberEsp(f, c), slc * (1.0 + 1e-9));
}

TEST_P(RberGridTest, QualityOrderingHolds)
{
    const GridPoint g = GetParam();
    OperatingCondition c{g.pec, g.months, false};
    EXPECT_LE(model.rberSlc(c, 0.85), model.rberSlc(c, 1.0));
    EXPECT_LE(model.rberSlc(c, 1.0), model.rberSlc(c, 1.25));
    EXPECT_LE(model.rberMlc(c, 0.85), model.rberMlc(c, 1.25));
}

TEST_P(RberGridTest, RatesAreProbabilities)
{
    const GridPoint g = GetParam();
    for (bool r : {true, false}) {
        OperatingCondition c{g.pec, g.months, r};
        for (double v :
             {model.rberSlc(c), model.rberMlc(c), model.rberMlcLsb(c),
              model.rberEsp(1.5, c)}) {
            EXPECT_GE(v, 0.0);
            EXPECT_LT(v, 0.5); // never worse than a coin flip
        }
    }
}

std::vector<GridPoint>
figure8Grid()
{
    std::vector<GridPoint> grid;
    for (std::uint32_t pec : {0u, 1000u, 2000u, 3000u, 6000u, 10000u})
        for (double mo : {0.0, 1.0, 3.0, 12.0})
            grid.push_back({pec, mo});
    return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Figure8Grid, RberGridTest, ::testing::ValuesIn(figure8Grid()),
    [](const ::testing::TestParamInfo<GridPoint> &info) {
        return "pec" + std::to_string(info.param.pec) + "_mo" +
               std::to_string(static_cast<int>(info.param.months));
    });

} // namespace
} // namespace fcos::rel
