/**
 * @file
 * Parameterized sweeps over the full Figure 8 grid: structural
 * properties of the reliability model that must hold at *every* grid
 * point, not only at the calibrated anchors.
 */

#include <gtest/gtest.h>

#include "reliability/vth_model.h"
#include "tests/support/grids.h"

namespace fcos::rel {
namespace {

using test::GridPoint;

class RberGridTest : public ::testing::TestWithParam<GridPoint>
{
  protected:
    VthModel model;
};

TEST_P(RberGridTest, RandomizationNeverHurts)
{
    const GridPoint g = GetParam();
    OperatingCondition with{g.pec, g.months, true};
    OperatingCondition without{g.pec, g.months, false};
    EXPECT_LE(model.rberSlc(with), model.rberSlc(without));
    EXPECT_LE(model.rberMlc(with), model.rberMlc(without));
    EXPECT_LE(model.rberMlcLsb(with), model.rberMlcLsb(without));
}

TEST_P(RberGridTest, ModeOrderingSlcBeatsMlc)
{
    const GridPoint g = GetParam();
    for (bool r : {true, false}) {
        OperatingCondition c{g.pec, g.months, r};
        EXPECT_LE(model.rberSlc(c), model.rberMlc(c) * 1.05)
            << "pec=" << g.pec << " months=" << g.months;
    }
}

TEST_P(RberGridTest, EspAlwaysNoWorseThanRegularSlc)
{
    const GridPoint g = GetParam();
    OperatingCondition c{g.pec, g.months, false};
    double slc = model.rberSlc(c);
    for (double f : {1.0, 1.3, 1.7, 2.0})
        EXPECT_LE(model.rberEsp(f, c), slc * (1.0 + 1e-9));
}

TEST_P(RberGridTest, QualityOrderingHolds)
{
    const GridPoint g = GetParam();
    OperatingCondition c{g.pec, g.months, false};
    EXPECT_LE(model.rberSlc(c, 0.85), model.rberSlc(c, 1.0));
    EXPECT_LE(model.rberSlc(c, 1.0), model.rberSlc(c, 1.25));
    EXPECT_LE(model.rberMlc(c, 0.85), model.rberMlc(c, 1.25));
}

TEST_P(RberGridTest, RatesAreProbabilities)
{
    const GridPoint g = GetParam();
    for (bool r : {true, false}) {
        OperatingCondition c{g.pec, g.months, r};
        for (double v :
             {model.rberSlc(c), model.rberMlc(c), model.rberMlcLsb(c),
              model.rberEsp(1.5, c)}) {
            EXPECT_GE(v, 0.0);
            EXPECT_LT(v, 0.5); // never worse than a coin flip
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Figure8Grid, RberGridTest,
                         ::testing::ValuesIn(test::figure8SweepGrid()),
                         test::gridPointName);

} // namespace
} // namespace fcos::rel
