/**
 * @file
 * Geometry and addressing tests.
 */

#include <gtest/gtest.h>

#include <set>

#include "nand/geometry.h"

namespace fcos::nand {
namespace {

TEST(GeometryTest, Table1Derivations)
{
    Geometry g = Geometry::table1();
    EXPECT_EQ(g.wordlinesPerBlock(), 192u); // 4 x 48 (Table 1)
    EXPECT_EQ(g.pageBits(), 16u * 1024 * 8);
    EXPECT_EQ(g.pagesPerPlane(), 2048u * 192u);
    // 8 ch x 8 dies x 2 planes x that, at 16 KiB, is the 2-TB class.
    double tb = static_cast<double>(g.dieBytesSlc()) * 64.0 / 1e12;
    EXPECT_NEAR(tb, 0.82, 0.1); // SLC capacity; TLC mode triples it
}

TEST(GeometryTest, WordlineIndexIsDense)
{
    Geometry g = Geometry::tiny();
    std::set<std::uint64_t> seen;
    for (std::uint32_t b = 0; b < g.blocksPerPlane; ++b)
        for (std::uint32_t s = 0; s < g.subBlocksPerBlock; ++s)
            for (std::uint32_t w = 0; w < g.wordlinesPerSubBlock; ++w) {
                WordlineAddr a{0, b, s, w};
                auto idx = wordlineIndex(g, a);
                EXPECT_LT(idx, g.pagesPerPlane());
                EXPECT_TRUE(seen.insert(idx).second);
            }
    EXPECT_EQ(seen.size(), g.pagesPerPlane());
}

TEST(GeometryTest, SameStringPredicate)
{
    WordlineAddr a{0, 1, 2, 3};
    WordlineAddr b{0, 1, 2, 7};
    WordlineAddr c{0, 1, 3, 3};
    WordlineAddr d{1, 1, 2, 3};
    EXPECT_TRUE(a.sameString(b));
    EXPECT_FALSE(a.sameString(c)); // different sub-block
    EXPECT_FALSE(a.sameString(d)); // different plane
}

TEST(GeometryTest, CheckAddrPanicsOutOfRange)
{
    Geometry g = Geometry::tiny();
    EXPECT_DEATH(checkAddr(g, WordlineAddr{9, 0, 0, 0}), "plane");
    EXPECT_DEATH(checkAddr(g, WordlineAddr{0, 99, 0, 0}), "block");
    EXPECT_DEATH(checkAddr(g, WordlineAddr{0, 0, 9, 0}), "sub-block");
    EXPECT_DEATH(checkAddr(g, WordlineAddr{0, 0, 0, 99}), "wordline");
}

} // namespace
} // namespace fcos::nand
