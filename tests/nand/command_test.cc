/**
 * @file
 * Flash-Cosmos command codec tests (Figure 15 framing).
 */

#include <gtest/gtest.h>

#include "nand/command.h"

namespace fcos::nand {
namespace {

class CommandTest : public ::testing::Test
{
  protected:
    Geometry geom = Geometry::table1();
};

TEST_F(CommandTest, IscmFlagsRoundTrip)
{
    for (int bits = 0; bits < 16; ++bits) {
        IscmFlags f;
        f.inverseRead = bits & 1;
        f.initSenseLatch = bits & 2;
        f.initCacheLatch = bits & 4;
        f.dumpToCache = bits & 8;
        EXPECT_EQ(IscmFlags::fromByte(f.toByte()), f);
    }
}

TEST_F(CommandTest, MwsSingleSlotRoundTrip)
{
    MwsCommand cmd;
    cmd.plane = 1;
    cmd.flags = IscmFlags{true, true, false, true};
    cmd.selections.push_back(WlSelection{1234, 2, 0x0000A5A5A5A5ULL});
    auto bytes = encodeMws(geom, cmd);
    EXPECT_EQ(bytes.front(), kOpMws);
    EXPECT_EQ(bytes.back(), kSlotConf);
    EXPECT_EQ(decodeMws(geom, bytes), cmd);
}

TEST_F(CommandTest, MwsFourSlotRoundTrip)
{
    MwsCommand cmd;
    cmd.plane = 0;
    for (std::uint32_t i = 0; i < 4; ++i)
        cmd.selections.push_back(WlSelection{100 * i, i % 4, 1ULL << i});
    auto bytes = encodeMws(geom, cmd);
    // Three CONT separators and one CONF terminator.
    int conts = 0;
    for (auto b : bytes)
        conts += (b == kSlotCont);
    EXPECT_EQ(conts, 3);
    EXPECT_EQ(decodeMws(geom, bytes), cmd);
}

TEST_F(CommandTest, MwsRejectsTooManySlots)
{
    MwsCommand cmd;
    for (std::uint32_t i = 0; i < 5; ++i)
        cmd.selections.push_back(WlSelection{i, 0, 1});
    EXPECT_DEATH(encodeMws(geom, cmd), "4-slot");
}

TEST_F(CommandTest, MwsRejectsEmptyBitmapAndBadAddress)
{
    MwsCommand cmd;
    cmd.selections.push_back(WlSelection{0, 0, 0});
    EXPECT_DEATH(encodeMws(geom, cmd), "empty PBM");
    cmd.selections[0] = WlSelection{999999, 0, 1};
    EXPECT_DEATH(encodeMws(geom, cmd), "block out of range");
}

TEST_F(CommandTest, MwsDecodeRejectsTruncation)
{
    MwsCommand cmd;
    cmd.selections.push_back(WlSelection{5, 1, 0b111});
    auto bytes = encodeMws(geom, cmd);
    bytes.pop_back();
    EXPECT_DEATH(decodeMws(geom, bytes), "truncated");
}

TEST_F(CommandTest, MwsDecodeRejectsCrossPlaneSlots)
{
    // Hand-build two slots naming different planes.
    MwsCommand a;
    a.plane = 0;
    a.selections.push_back(WlSelection{1, 0, 1});
    a.selections.push_back(WlSelection{2, 0, 1});
    auto bytes = encodeMws(geom, a);
    // Patch the second slot's plane byte (slot layout: 10 bytes each;
    // first slot starts at offset 2, second at 2 + 10 + 1).
    bytes[2 + 10 + 1] = 1;
    EXPECT_DEATH(decodeMws(geom, bytes), "one plane");
}

TEST_F(CommandTest, EspRoundTrip)
{
    EspCommand cmd;
    cmd.addr = WordlineAddr{1, 2047, 3, 47};
    cmd.extensionCode = EspCommand::encodeFactor(1.9);
    auto bytes = encodeEsp(geom, cmd);
    EXPECT_EQ(bytes.front(), kOpEsp);
    EXPECT_EQ(decodeEsp(geom, bytes), cmd);
    EXPECT_NEAR(cmd.espFactor(), 1.9, 1e-9);
}

TEST_F(CommandTest, EspFactorEncoding)
{
    EXPECT_EQ(EspCommand::encodeFactor(1.0), 0);
    EXPECT_EQ(EspCommand::encodeFactor(2.0), 100);
    EXPECT_EQ(EspCommand::encodeFactor(1.55), 55);
    EXPECT_DEATH(EspCommand::encodeFactor(0.5), "range");
}

TEST_F(CommandTest, XorEncoding)
{
    auto bytes = encodeXor();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], kOpXor);
    EXPECT_EQ(bytes[1], kSlotConf);
}

} // namespace
} // namespace fcos::nand
