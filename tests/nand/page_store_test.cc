/**
 * @file
 * Dense <-> sparse page-store equivalence and the sparse backend's
 * scale contract.
 *
 * The equivalence half drives two identically seeded chips — one per
 * backend — through identical programs (dense payloads, procedural
 * descriptors, inverted descriptors) and the shared random MWS command
 * corpus, with the V_TH error model attached: sensed bits, conduction,
 * latch state and injected-error positions must match exactly. The
 * scale half instantiates a full Table-1 die, programs under 1% of its
 * pages procedurally, and pins the heap footprint — the property that
 * lets Table-1 drives run inside CTest.
 */

#include <gtest/gtest.h>

#include "nand/chip.h"
#include "reliability/error_injector.h"
#include "tests/support/command_corpus.h"
#include "util/rng.h"

namespace fcos::nand {
namespace {

/** A chip plus its own injector, so per-chip error state is isolated
 *  while both chips draw identical (page, sense) seeds. */
struct InjectedChip
{
    rel::VthModel model;
    rel::VthErrorInjector injector;
    NandChip chip;

    InjectedChip(const Geometry &geom, PageStoreKind store)
        : injector(model, rel::OperatingCondition{10000, 12.0, false}),
          chip(geom, Timings{}, &injector, store)
    {}
};

/** Program the same mixed page population on both chips: dense random
 *  payloads, procedural descriptors, inverted and checkered images. */
void
programTwin(InjectedChip &a, InjectedChip &b, const Geometry &geom,
            std::uint64_t seed)
{
    Rng rng = Rng::seeded(seed);
    for (std::uint32_t blk = 0; blk < geom.blocksPerPlane; ++blk) {
        for (std::uint32_t sb = 0; sb < geom.subBlocksPerBlock; ++sb) {
            for (std::uint32_t wl = 0; wl < geom.wordlinesPerSubBlock;
                 ++wl) {
                // ~60% of pages stay erased.
                if (rng.nextDouble() < 0.6)
                    continue;
                std::uint32_t plane = static_cast<std::uint32_t>(
                    rng.nextBounded(geom.planesPerDie));
                WordlineAddr addr{plane, blk, sb, wl};
                switch (rng.nextBounded(4)) {
                  case 0: { // dense payload
                    BitVector v(geom.pageBits());
                    v.randomize(rng);
                    a.chip.programPageEsp(addr, v, EspParams{2.0});
                    b.chip.programPageEsp(addr, v, EspParams{2.0});
                    break;
                  }
                  case 1: { // procedural random descriptor
                    PageImage img = PageImage::random(rng.nextU64());
                    a.chip.programPageEsp(addr, img, EspParams{2.0});
                    b.chip.programPageEsp(addr, img, EspParams{2.0});
                    break;
                  }
                  case 2: { // inverted descriptor (De Morgan storage)
                    PageImage img =
                        PageImage::random(rng.nextU64()).inverted();
                    a.chip.programPage(addr, img);
                    b.chip.programPage(addr, img);
                    break;
                  }
                  default: { // checkered worst-case pattern
                    PageImage img = PageImage::checkered(
                        rng.nextBounded(2) == 0);
                    a.chip.programPage(addr, img,
                                       ProgramMode::SlcRegular, true);
                    b.chip.programPage(addr, img,
                                       ProgramMode::SlcRegular, true);
                    break;
                  }
                }
            }
        }
    }
}

TEST(PageStoreEquivalenceTest, CorpusSensesIdenticallyOnBothBackends)
{
    const Geometry geom = Geometry::tiny();
    InjectedChip dense(geom, PageStoreKind::Dense);
    InjectedChip sparse(geom, PageStoreKind::Sparse);
    ASSERT_EQ(dense.chip.cells().storeKind(), PageStoreKind::Dense);
    ASSERT_EQ(sparse.chip.cells().storeKind(), PageStoreKind::Sparse);

    programTwin(dense, sparse, geom, 99);
    ASSERT_EQ(dense.chip.cells().programmedPages(),
              sparse.chip.cells().programmedPages());

    // The shared random command generator: same sequence of
    // well-formed MWS commands executed on both chips.
    Rng cmd_rng = Rng::seeded(1234);
    for (int i = 0; i < 200; ++i) {
        MwsCommand cmd = test::randomCommand(cmd_rng, geom);
        // An inverse read requires S-latch initialization.
        if (cmd.flags.inverseRead)
            cmd.flags.initSenseLatch = true;
        OpResult ra = dense.chip.executeMws(cmd);
        OpResult rb = sparse.chip.executeMws(cmd);
        EXPECT_EQ(ra.latency, rb.latency);
        EXPECT_DOUBLE_EQ(ra.energyJ, rb.energyJ);
        ASSERT_EQ(dense.chip.dataOut(cmd.plane),
                  sparse.chip.dataOut(cmd.plane))
            << "command " << i << " diverged";
        ASSERT_EQ(dense.chip.latches(cmd.plane).sense(),
                  sparse.chip.latches(cmd.plane).sense())
            << "command " << i << " sense latch diverged";
    }

    // Identical injected-error accounting: every (page, sense) seed
    // must have drawn the same error positions on both backends.
    EXPECT_EQ(dense.injector.injectedErrors(),
              sparse.injector.injectedErrors());
    EXPECT_EQ(dense.injector.sensedBits(), sparse.injector.sensedBits());
    EXPECT_GT(dense.injector.injectedErrors(), 0u)
        << "the equivalence run never exercised the error model";
}

TEST(PageStoreEquivalenceTest, ConductionMatchesAcrossBackends)
{
    const Geometry geom = Geometry::tiny();
    CellArray dense(geom, PageStoreKind::Dense);
    CellArray sparse(geom, PageStoreKind::Sparse);
    PageMeta meta;
    Rng rng = Rng::seeded(5);
    for (std::uint32_t wl = 0; wl < geom.wordlinesPerSubBlock; wl += 2) {
        PageImage img = PageImage::random(rng.nextU64(), 0.7);
        dense.program({0, 1, 0, wl}, img, meta);
        sparse.program({0, 1, 0, wl}, img, meta);
    }
    std::vector<WlSelection> sels{{1, 0, 0b010101}, {1, 1, 0b1}};
    EXPECT_EQ(dense.senseConduction(0, sels, nullptr, 0),
              sparse.senseConduction(0, sels, nullptr, 0));
}

TEST(PageStoreScaleTest, Table1ChipStaysUnderByteBudget)
{
    // A full Table-1 die with < 1% of its pages programmed must not
    // cost more than a pinned budget. Dense payloads for the same
    // population would be pages * 16 KiB (> 60 MiB); the sparse
    // descriptors stay around a hundred bytes per page.
    const Geometry geom = Geometry::table1();
    NandChip chip(geom, Timings{}, nullptr, PageStoreKind::Sparse);

    const std::uint64_t total_pages =
        static_cast<std::uint64_t>(geom.planesPerDie) *
        geom.pagesPerPlane();
    const std::uint64_t target = total_pages / 128; // ~0.78%
    std::uint64_t programmed = 0;
    for (std::uint32_t blk = 0; blk < geom.blocksPerPlane &&
                                programmed < target; ++blk) {
        // First wordline of every string of every 2nd block, both planes.
        if (blk % 2)
            continue;
        for (std::uint32_t p = 0; p < geom.planesPerDie; ++p) {
            for (std::uint32_t sb = 0; sb < geom.subBlocksPerBlock;
                 ++sb) {
                chip.programPageEsp(
                    {p, blk, sb, 0},
                    PageImage::random(Rng::mix(3, programmed)),
                    EspParams{2.0});
                ++programmed;
            }
        }
    }
    ASSERT_GE(programmed, 4000u);
    EXPECT_LT(programmed, total_pages / 100); // < 1% programmed

    constexpr std::size_t kBudgetBytes = 4 * 1024 * 1024; // pinned
    EXPECT_LT(chip.cells().contentBytes(), kBudgetBytes);

    // Sensing a programmed string must not grow the store.
    MwsCommand cmd;
    cmd.plane = 0;
    cmd.selections.push_back(WlSelection{0, 0, 1});
    chip.executeMws(cmd);
    EXPECT_LT(chip.cells().contentBytes(), kBudgetBytes);

    // The same population on the dense backend pays full payloads:
    // the sparse footprint must be at least 50x smaller than the
    // dense payload bytes alone.
    EXPECT_LT(chip.cells().contentBytes() * 50,
              programmed * geom.pageBytes);
}

TEST(PageStoreScaleTest, BroadcastCopiesShareOnePayload)
{
    // CoW dense images: N broadcast copies of one page must account
    // roughly one payload, not N.
    const Geometry geom = Geometry::table1();
    CellArray cells(geom, PageStoreKind::Sparse);
    PageMeta meta;
    BitVector payload(geom.pageBits());
    Rng rng = Rng::seeded(8);
    payload.randomize(rng);
    auto shared = std::make_shared<const BitVector>(std::move(payload));

    const std::uint32_t copies = 64;
    for (std::uint32_t i = 0; i < copies; ++i)
        cells.program({0, i, 0, 0}, PageImage::shared(shared), meta);

    EXPECT_EQ(cells.programmedPages(), copies);
    // One payload (16 KiB) + per-entry bookkeeping, far below
    // copies * pageBytes = 1 MiB.
    EXPECT_LT(cells.contentBytes(), 2 * geom.pageBytes + copies * 256);
    EXPECT_EQ(cells.pageData({0, 5, 0, 0}), *shared);
}

} // namespace
} // namespace fcos::nand
