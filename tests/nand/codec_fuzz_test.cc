/**
 * @file
 * Command-codec fuzzing: random well-formed commands must round-trip
 * bit-exactly; random byte mutations must never decode silently into
 * a different well-formed command without tripping validation.
 */

#include <gtest/gtest.h>

#include "nand/command.h"
#include "tests/support/command_corpus.h"

namespace fcos::nand {
namespace {

using test::randomCommand;

TEST(CodecFuzzTest, PinnedCorpusRoundTripsBitExactly)
{
    // The corpus under tests/data pins encoder framing: every entry
    // must decode to a well-formed command and re-encode to the exact
    // same bytes, so CI catches silent codec drift reproducibly.
    Geometry geom = Geometry::table1();
    auto corpus = test::loadCorpus("codec_corpus.txt");
    ASSERT_FALSE(corpus.empty());
    for (const auto &bytes : corpus) {
        MwsCommand cmd = decodeMws(geom, bytes);
        EXPECT_EQ(encodeMws(geom, cmd), bytes);
    }
}

TEST(CodecFuzzTest, RandomCommandsRoundTrip)
{
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(31);
    for (int i = 0; i < 500; ++i) {
        MwsCommand cmd = randomCommand(rng, geom);
        auto bytes = encodeMws(geom, cmd);
        EXPECT_EQ(decodeMws(geom, bytes), cmd);
    }
}

TEST(CodecFuzzTest, EspCommandsRoundTripAcrossAddressSpace)
{
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(32);
    for (int i = 0; i < 500; ++i) {
        EspCommand cmd;
        cmd.addr.plane = static_cast<std::uint32_t>(
            rng.nextBounded(geom.planesPerDie));
        cmd.addr.block = static_cast<std::uint32_t>(
            rng.nextBounded(geom.blocksPerPlane));
        cmd.addr.subBlock = static_cast<std::uint32_t>(
            rng.nextBounded(geom.subBlocksPerBlock));
        cmd.addr.wordline = static_cast<std::uint32_t>(
            rng.nextBounded(geom.wordlinesPerSubBlock));
        cmd.extensionCode =
            static_cast<std::uint8_t>(rng.nextBounded(101));
        auto bytes = encodeEsp(geom, cmd);
        EXPECT_EQ(decodeEsp(geom, bytes), cmd);
    }
}

TEST(CodecFuzzTest, TruncationsAlwaysDetected)
{
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(33);
    for (int i = 0; i < 50; ++i) {
        MwsCommand cmd = randomCommand(rng, geom);
        auto bytes = encodeMws(geom, cmd);
        std::size_t cut = 1 + rng.nextBounded(bytes.size() - 1);
        std::vector<std::uint8_t> truncated(bytes.begin(),
                                            bytes.begin() +
                                                static_cast<long>(cut));
        EXPECT_DEATH(decodeMws(geom, truncated), "");
    }
}

TEST(CodecFuzzTest, EncodedSizeIsDeterministic)
{
    // Framing: opcode + ISCM + slots * (10 bytes + separator).
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(34);
    for (int i = 0; i < 100; ++i) {
        MwsCommand cmd = randomCommand(rng, geom);
        auto bytes = encodeMws(geom, cmd);
        EXPECT_EQ(bytes.size(), 2 + cmd.selections.size() * 11);
    }
}

} // namespace
} // namespace fcos::nand
