/**
 * @file
 * Command-codec fuzzing: random well-formed commands must round-trip
 * bit-exactly; random byte mutations must never decode silently into
 * a different well-formed command without tripping validation.
 */

#include <gtest/gtest.h>

#include "nand/command.h"
#include "util/rng.h"

namespace fcos::nand {
namespace {

MwsCommand
randomCommand(Rng &rng, const Geometry &geom)
{
    MwsCommand cmd;
    cmd.plane = static_cast<std::uint32_t>(
        rng.nextBounded(geom.planesPerDie));
    cmd.flags = IscmFlags::fromByte(
        static_cast<std::uint8_t>(rng.nextBounded(16)));
    std::size_t slots = 1 + rng.nextBounded(MwsCommand::kMaxSelections);
    for (std::size_t s = 0; s < slots; ++s) {
        WlSelection sel;
        sel.block = static_cast<std::uint32_t>(
            rng.nextBounded(geom.blocksPerPlane));
        sel.subBlock = static_cast<std::uint32_t>(
            rng.nextBounded(geom.subBlocksPerBlock));
        do {
            sel.wlMask = rng.nextU64() &
                         ((1ULL << geom.wordlinesPerSubBlock) - 1);
        } while (sel.wlMask == 0);
        cmd.selections.push_back(sel);
    }
    return cmd;
}

TEST(CodecFuzzTest, RandomCommandsRoundTrip)
{
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(31);
    for (int i = 0; i < 500; ++i) {
        MwsCommand cmd = randomCommand(rng, geom);
        auto bytes = encodeMws(geom, cmd);
        EXPECT_EQ(decodeMws(geom, bytes), cmd);
    }
}

TEST(CodecFuzzTest, EspCommandsRoundTripAcrossAddressSpace)
{
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(32);
    for (int i = 0; i < 500; ++i) {
        EspCommand cmd;
        cmd.addr.plane = static_cast<std::uint32_t>(
            rng.nextBounded(geom.planesPerDie));
        cmd.addr.block = static_cast<std::uint32_t>(
            rng.nextBounded(geom.blocksPerPlane));
        cmd.addr.subBlock = static_cast<std::uint32_t>(
            rng.nextBounded(geom.subBlocksPerBlock));
        cmd.addr.wordline = static_cast<std::uint32_t>(
            rng.nextBounded(geom.wordlinesPerSubBlock));
        cmd.extensionCode =
            static_cast<std::uint8_t>(rng.nextBounded(101));
        auto bytes = encodeEsp(geom, cmd);
        EXPECT_EQ(decodeEsp(geom, bytes), cmd);
    }
}

TEST(CodecFuzzTest, TruncationsAlwaysDetected)
{
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(33);
    for (int i = 0; i < 50; ++i) {
        MwsCommand cmd = randomCommand(rng, geom);
        auto bytes = encodeMws(geom, cmd);
        std::size_t cut = 1 + rng.nextBounded(bytes.size() - 1);
        std::vector<std::uint8_t> truncated(bytes.begin(),
                                            bytes.begin() +
                                                static_cast<long>(cut));
        EXPECT_DEATH(decodeMws(geom, truncated), "");
    }
}

TEST(CodecFuzzTest, EncodedSizeIsDeterministic)
{
    // Framing: opcode + ISCM + slots * (10 bytes + separator).
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(34);
    for (int i = 0; i < 100; ++i) {
        MwsCommand cmd = randomCommand(rng, geom);
        auto bytes = encodeMws(geom, cmd);
        EXPECT_EQ(bytes.size(), 2 + cmd.selections.size() * 11);
    }
}

} // namespace
} // namespace fcos::nand
