/**
 * @file
 * Command-codec fuzzing: random well-formed commands must round-trip
 * bit-exactly; random byte mutations must never decode silently into
 * a different well-formed command without tripping validation.
 */

#include <gtest/gtest.h>

#include "nand/command.h"
#include "tests/support/command_corpus.h"

namespace fcos::nand {
namespace {

using test::randomCommand;

TEST(CodecFuzzTest, PinnedCorpusRoundTripsBitExactly)
{
    // The corpus under tests/data pins encoder framing: every entry
    // must decode to a well-formed command and re-encode to the exact
    // same bytes, so CI catches silent codec drift reproducibly.
    Geometry geom = Geometry::table1();
    auto corpus = test::loadCorpus("codec_corpus.txt");
    ASSERT_FALSE(corpus.empty());
    for (const auto &bytes : corpus) {
        MwsCommand cmd = decodeMws(geom, bytes);
        EXPECT_EQ(encodeMws(geom, cmd), bytes);
    }
}

TEST(CodecFuzzTest, RandomCommandsRoundTrip)
{
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(31);
    for (int i = 0; i < 500; ++i) {
        MwsCommand cmd = randomCommand(rng, geom);
        auto bytes = encodeMws(geom, cmd);
        EXPECT_EQ(decodeMws(geom, bytes), cmd);
    }
}

TEST(CodecFuzzTest, EspCommandsRoundTripAcrossAddressSpace)
{
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(32);
    for (int i = 0; i < 500; ++i) {
        EspCommand cmd;
        cmd.addr.plane = static_cast<std::uint32_t>(
            rng.nextBounded(geom.planesPerDie));
        cmd.addr.block = static_cast<std::uint32_t>(
            rng.nextBounded(geom.blocksPerPlane));
        cmd.addr.subBlock = static_cast<std::uint32_t>(
            rng.nextBounded(geom.subBlocksPerBlock));
        cmd.addr.wordline = static_cast<std::uint32_t>(
            rng.nextBounded(geom.wordlinesPerSubBlock));
        cmd.extensionCode =
            static_cast<std::uint8_t>(rng.nextBounded(101));
        auto bytes = encodeEsp(geom, cmd);
        EXPECT_EQ(decodeEsp(geom, bytes), cmd);
    }
}

TEST(CodecFuzzTest, TruncationsAlwaysDetected)
{
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(33);
    for (int i = 0; i < 50; ++i) {
        MwsCommand cmd = randomCommand(rng, geom);
        auto bytes = encodeMws(geom, cmd);
        std::size_t cut = 1 + rng.nextBounded(bytes.size() - 1);
        std::vector<std::uint8_t> truncated(bytes.begin(),
                                            bytes.begin() +
                                                static_cast<long>(cut));
        EXPECT_DEATH(decodeMws(geom, truncated), "");
    }
}

TEST(CodecFuzzTest, MutatedCorpusNeverDecodesSilently)
{
    // Mutation contract (ROADMAP open item): a byte flip on a pinned
    // canonical frame either trips validation, or the mutated bytes
    // are themselves the canonical encoding of the decoded command —
    // re-encoding reproduces them bit-exactly and the command differs
    // from the original. Decode can therefore never silently
    // normalize a corrupted frame into some other command: nothing
    // escapes validation.
    Geometry geom = Geometry::table1();
    auto corpus = test::loadCorpus("codec_corpus.txt");
    ASSERT_FALSE(corpus.empty());
    std::uint64_t rejected = 0, reinterpreted = 0;
    for (const auto &bytes : corpus) {
        MwsCommand original = decodeMws(geom, bytes);
        for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
            for (int bit = 0; bit < 8; ++bit) {
                std::vector<std::uint8_t> mutated = bytes;
                mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
                std::string error;
                auto decoded = tryDecodeMws(geom, mutated, &error);
                if (!decoded) {
                    ++rejected;
                    EXPECT_FALSE(error.empty());
                    continue;
                }
                ++reinterpreted;
                EXPECT_EQ(encodeMws(geom, *decoded), mutated)
                    << "decode aliased a non-canonical frame at byte "
                    << pos << " bit " << bit;
                EXPECT_FALSE(*decoded == original)
                    << "distinct frames decoded to one command at byte "
                    << pos << " bit " << bit;
            }
        }
    }
    // Both outcomes must actually occur: the codec rejects framing
    // damage and accepts payload flips as the (different) command
    // they canonically encode.
    EXPECT_GT(rejected, 0u);
    EXPECT_GT(reinterpreted, 0u);
}

TEST(CodecFuzzTest, FramingByteMutationsAlwaysRejected)
{
    // Opcode and CONT/CONF separator bytes carry the frame structure;
    // no flip of any of their bits may survive validation. (CONT <->
    // CONF flips shift the frame length, so they surface as truncation
    // or trailing bytes.)
    Geometry geom = Geometry::table1();
    auto corpus = test::loadCorpus("codec_corpus.txt");
    ASSERT_FALSE(corpus.empty());
    for (const auto &bytes : corpus) {
        // Framing layout: [op][ISCM] then 10 payload bytes + 1
        // separator per slot.
        std::vector<std::size_t> framing{0};
        for (std::size_t sep = 12; sep < bytes.size(); sep += 11)
            framing.push_back(sep);
        ASSERT_EQ(framing.back(), bytes.size() - 1);
        for (std::size_t pos : framing) {
            for (int bit = 0; bit < 8; ++bit) {
                std::vector<std::uint8_t> mutated = bytes;
                mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
                EXPECT_EQ(tryDecodeMws(geom, mutated), std::nullopt)
                    << "framing byte " << pos << " bit " << bit
                    << " survived mutation";
            }
        }
    }
}

TEST(CodecFuzzTest, RandomMultiByteMutationsNeverAlias)
{
    // Same contract under heavier damage: 1-3 random byte rewrites on
    // random well-formed commands.
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(36);
    for (int i = 0; i < 2000; ++i) {
        MwsCommand cmd = test::randomCommand(rng, geom);
        auto bytes = encodeMws(geom, cmd);
        std::vector<std::uint8_t> mutated = bytes;
        std::size_t flips = 1 + rng.nextBounded(3);
        for (std::size_t f = 0; f < flips; ++f) {
            std::size_t pos = rng.nextBounded(mutated.size());
            mutated[pos] =
                static_cast<std::uint8_t>(rng.nextBounded(256));
        }
        if (mutated == bytes)
            continue;
        auto decoded = tryDecodeMws(geom, mutated);
        if (decoded) {
            EXPECT_EQ(encodeMws(geom, *decoded), mutated)
                << "aliased after " << flips << " byte rewrites";
        }
    }
}

TEST(CodecFuzzTest, EspMutationsNeverDecodeSilently)
{
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(37);
    std::uint64_t rejected = 0;
    for (int i = 0; i < 200; ++i) {
        EspCommand cmd;
        cmd.addr.plane = static_cast<std::uint32_t>(
            rng.nextBounded(geom.planesPerDie));
        cmd.addr.block = static_cast<std::uint32_t>(
            rng.nextBounded(geom.blocksPerPlane));
        cmd.addr.subBlock = static_cast<std::uint32_t>(
            rng.nextBounded(geom.subBlocksPerBlock));
        cmd.addr.wordline = static_cast<std::uint32_t>(
            rng.nextBounded(geom.wordlinesPerSubBlock));
        cmd.extensionCode =
            static_cast<std::uint8_t>(rng.nextBounded(101));
        auto bytes = encodeEsp(geom, cmd);
        for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
            for (int bit = 0; bit < 8; ++bit) {
                std::vector<std::uint8_t> mutated = bytes;
                mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
                auto decoded = tryDecodeEsp(geom, mutated);
                if (!decoded) {
                    ++rejected;
                    continue;
                }
                EXPECT_EQ(encodeEsp(geom, *decoded), mutated);
                EXPECT_FALSE(*decoded == cmd);
            }
        }
    }
    EXPECT_GT(rejected, 0u);
}

TEST(CodecFuzzTest, EncodedSizeIsDeterministic)
{
    // Framing: opcode + ISCM + slots * (10 bytes + separator).
    Geometry geom = Geometry::table1();
    Rng rng = Rng::seeded(34);
    for (int i = 0; i < 100; ++i) {
        MwsCommand cmd = randomCommand(rng, geom);
        auto bytes = encodeMws(geom, cmd);
        EXPECT_EQ(bytes.size(), 2 + cmd.selections.size() * 11);
    }
}

} // namespace
} // namespace fcos::nand
