/**
 * @file
 * Cell-array tests: program/erase rules and the MWS conduction
 * primitive (AND within a string, OR across strings — Section 4.1).
 * Every test runs against both page-store backends — the NAND
 * semantics must not depend on how payloads are kept.
 */

#include <gtest/gtest.h>

#include "nand/cell_array.h"
#include "util/rng.h"

namespace fcos::nand {
namespace {

class CellArrayTest : public ::testing::TestWithParam<PageStoreKind>
{
  protected:
    CellArrayTest() : geom(Geometry::tiny()), cells(geom, GetParam()) {}

    BitVector page(const std::string &prefix)
    {
        BitVector v(geom.pageBits(), true);
        for (std::size_t i = 0; i < prefix.size(); ++i)
            v.set(i, prefix[i] == '1');
        return v;
    }

    Geometry geom;
    CellArray cells;
    PageMeta meta{};
};

TEST_P(CellArrayTest, ErasedPagesReadAllOnes)
{
    WordlineAddr a{0, 0, 0, 0};
    EXPECT_FALSE(cells.isProgrammed(a));
    BitVector v = cells.effectiveData(a, nullptr, 0);
    EXPECT_TRUE(v.allOnes());
}

TEST_P(CellArrayTest, ProgramThenReadBack)
{
    WordlineAddr a{0, 1, 0, 3};
    BitVector data = page("0101");
    cells.program(a, data, meta);
    EXPECT_TRUE(cells.isProgrammed(a));
    EXPECT_EQ(cells.effectiveData(a, nullptr, 0), data);
    ASSERT_NE(cells.pageMeta(a), nullptr);
    EXPECT_EQ(cells.pageData(a), data);
}

TEST_P(CellArrayTest, DoubleProgramWithoutEraseIsFatal)
{
    WordlineAddr a{0, 0, 0, 0};
    cells.program(a, page("1"), meta);
    EXPECT_EXIT(cells.program(a, page("0"), meta),
                ::testing::ExitedWithCode(1), "without erase");
}

TEST_P(CellArrayTest, EraseClearsAllSubBlocksAndBumpsPec)
{
    WordlineAddr a{0, 2, 0, 1};
    WordlineAddr b{0, 2, 1, 5};
    cells.program(a, page("0"), meta);
    cells.program(b, page("0"), meta);
    EXPECT_EQ(cells.blockPec(0, 2), 0u);
    cells.eraseBlock(0, 2);
    EXPECT_FALSE(cells.isProgrammed(a));
    EXPECT_FALSE(cells.isProgrammed(b));
    EXPECT_EQ(cells.blockPec(0, 2), 1u);
    cells.program(a, page("1"), meta); // reprogram after erase is legal
}

TEST_P(CellArrayTest, PecRecordedAtProgramTime)
{
    cells.setBlockPec(0, 3, 1000);
    WordlineAddr a{0, 3, 0, 0};
    cells.program(a, page("1"), meta);
    ASSERT_NE(cells.pageMeta(a), nullptr);
    EXPECT_EQ(cells.pageMeta(a)->pecAtProgram, 1000u);
}

TEST_P(CellArrayTest, IntraStringConductionIsAnd)
{
    // Two wordlines of the same sub-block: conduction = AND.
    WordlineAddr w0{0, 0, 0, 0}, w1{0, 0, 0, 1};
    cells.program(w0, page("1100"), meta);
    cells.program(w1, page("1010"), meta);
    WlSelection sel{0, 0, 0b11};
    BitVector c = cells.senseConduction(0, {sel}, nullptr, 0);
    EXPECT_TRUE(c.get(0));
    EXPECT_FALSE(c.get(1));
    EXPECT_FALSE(c.get(2));
    EXPECT_FALSE(c.get(3));
}

TEST_P(CellArrayTest, InterStringConductionIsOr)
{
    // Wordlines in different sub-blocks: conduction = OR.
    WordlineAddr w0{0, 0, 0, 0}, w1{0, 0, 1, 0};
    cells.program(w0, page("1100"), meta);
    cells.program(w1, page("1010"), meta);
    std::vector<WlSelection> sels{{0, 0, 0b1}, {0, 1, 0b1}};
    BitVector c = cells.senseConduction(0, sels, nullptr, 0);
    EXPECT_TRUE(c.get(0));
    EXPECT_TRUE(c.get(1));
    EXPECT_TRUE(c.get(2));
    EXPECT_FALSE(c.get(3));
}

TEST_P(CellArrayTest, CombinedConductionMatchesEquationOne)
{
    // (A1 . A2) + (B1 . B2) — Equation 1 of the paper.
    Rng rng = Rng::seeded(11);
    BitVector a1(geom.pageBits()), a2(geom.pageBits());
    BitVector b1(geom.pageBits()), b2(geom.pageBits());
    a1.randomize(rng);
    a2.randomize(rng);
    b1.randomize(rng);
    b2.randomize(rng);
    cells.program({0, 0, 0, 0}, a1, meta);
    cells.program({0, 0, 0, 1}, a2, meta);
    cells.program({0, 1, 1, 2}, b1, meta);
    cells.program({0, 1, 1, 3}, b2, meta);
    std::vector<WlSelection> sels{{0, 0, 0b11}, {1, 1, 0b1100}};
    BitVector c = cells.senseConduction(0, sels, nullptr, 0);
    EXPECT_EQ(c, (a1 & a2) | (b1 & b2));
}

TEST_P(CellArrayTest, NonTargetWordlinesDoNotAffectConduction)
{
    // V_PASS on non-target wordlines turns them on regardless of
    // state: programming neighbours must not change the result.
    WordlineAddr target{0, 0, 0, 2};
    cells.program(target, page("10"), meta);
    WlSelection sel{0, 0, 1ULL << 2};
    BitVector before = cells.senseConduction(0, {sel}, nullptr, 0);
    cells.program({0, 0, 0, 3}, page("00"), meta);
    cells.program({0, 0, 0, 4}, page("01"), meta);
    BitVector after = cells.senseConduction(0, {sel}, nullptr, 0);
    EXPECT_EQ(before, after);
}

TEST_P(CellArrayTest, FullStringSensing)
{
    // All wordlines of a sub-block participate (the paper's 48-operand
    // AND, scaled to the tiny geometry's 8).
    Rng rng = Rng::seeded(22);
    BitVector expected(geom.pageBits(), true);
    std::uint64_t mask = 0;
    for (std::uint32_t wl = 0; wl < geom.wordlinesPerSubBlock; ++wl) {
        BitVector v(geom.pageBits());
        v.randomize(rng);
        cells.program({0, 4, 0, wl}, v, meta);
        expected &= v;
        mask |= 1ULL << wl;
    }
    BitVector c =
        cells.senseConduction(0, {WlSelection{4, 0, mask}}, nullptr, 0);
    EXPECT_EQ(c, expected);
}

TEST_P(CellArrayTest, SelectionValidation)
{
    EXPECT_DEATH(cells.senseConduction(0, {}, nullptr, 0), "empty");
    EXPECT_DEATH(
        cells.senseConduction(0, {WlSelection{0, 0, 0}}, nullptr, 0),
        "empty wordline mask");
    EXPECT_DEATH(cells.senseConduction(
                     0, {WlSelection{0, 0, 1ULL << 60}}, nullptr, 0),
                 "beyond string length");
}

TEST_P(CellArrayTest, ProgrammedPageAccounting)
{
    EXPECT_EQ(cells.programmedPages(), 0u);
    cells.program({0, 0, 0, 0}, page("1"), meta);
    cells.program({1, 0, 0, 0}, page("1"), meta);
    EXPECT_EQ(cells.programmedPages(), 2u);
    cells.eraseBlock(0, 0);
    EXPECT_EQ(cells.programmedPages(), 1u);
}

TEST_P(CellArrayTest, ProceduralImagesSenseLikeTheirMaterialization)
{
    // A descriptor-programmed page must sense exactly as if its
    // materialized payload had been programmed densely.
    PageImage img = PageImage::random(Rng::mix(9, 4));
    BitVector expect = img.materialize(geom.pageBits());
    cells.program({0, 0, 0, 0}, img, meta);
    EXPECT_EQ(cells.effectiveData({0, 0, 0, 0}, nullptr, 0), expect);

    PageImage inv = img.inverted();
    cells.program({0, 0, 0, 1}, inv, meta);
    EXPECT_EQ(cells.effectiveData({0, 0, 0, 1}, nullptr, 0), ~expect);

    cells.program({0, 0, 1, 0}, PageImage::checkered(true), meta);
    BitVector checkered(geom.pageBits());
    checkered.fillCheckered(true);
    EXPECT_EQ(cells.pageData({0, 0, 1, 0}), checkered);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, CellArrayTest,
    ::testing::Values(PageStoreKind::Dense, PageStoreKind::Sparse),
    [](const ::testing::TestParamInfo<PageStoreKind> &info) {
        return std::string(pageStoreName(info.param));
    });

} // namespace
} // namespace fcos::nand
