/**
 * @file
 * NAND chip tests: commands through the full die (array + latches +
 * timing + energy).
 */

#include <gtest/gtest.h>

#include "nand/chip.h"
#include "tests/support/random_fixture.h"

namespace fcos::nand {
namespace {

class ChipTest : public ::testing::Test
{
  protected:
    ChipTest() : chip(Geometry::tiny()) {}

    BitVector randomPage(Rng &rng)
    {
        return test::randomPage(rng, chip.geometry());
    }

    NandChip chip;
};

TEST_F(ChipTest, ProgramReadRoundTrip)
{
    Rng rng = Rng::seeded(1);
    BitVector data = randomPage(rng);
    WordlineAddr a{0, 0, 0, 0};
    OpResult w = chip.programPage(a, data);
    EXPECT_EQ(w.latency, usToTime(200.0));
    OpResult r = chip.readPage(a);
    EXPECT_EQ(r.latency, usToTime(22.5));
    EXPECT_EQ(chip.dataOut(0), data);
}

TEST_F(ChipTest, InverseReadReturnsComplement)
{
    Rng rng = Rng::seeded(2);
    BitVector data = randomPage(rng);
    WordlineAddr a{1, 3, 1, 2};
    chip.programPage(a, data);
    chip.readPage(a, true);
    EXPECT_EQ(chip.dataOut(1), ~data);
}

TEST_F(ChipTest, EspProgramUsesExtendedLatency)
{
    Rng rng = Rng::seeded(3);
    WordlineAddr a{0, 1, 0, 0};
    OpResult w = chip.programPageEsp(a, randomPage(rng),
                                     EspParams{2.0});
    EXPECT_EQ(w.latency, usToTime(400.0));
    const PageMeta *pm = chip.cells().pageMeta(a);
    ASSERT_NE(pm, nullptr);
    EXPECT_EQ(pm->mode, ProgramMode::SlcEsp);
    EXPECT_FALSE(pm->randomized);
}

TEST_F(ChipTest, IntraBlockMwsComputesAnd)
{
    Rng rng = Rng::seeded(4);
    BitVector a = randomPage(rng), b = randomPage(rng),
              c = randomPage(rng);
    chip.programPage({0, 0, 0, 0}, a);
    chip.programPage({0, 0, 0, 1}, b);
    chip.programPage({0, 0, 0, 2}, c);
    MwsCommand cmd;
    cmd.plane = 0;
    cmd.selections.push_back(WlSelection{0, 0, 0b111});
    OpResult r = chip.executeMws(cmd);
    EXPECT_EQ(chip.dataOut(0), a & b & c);
    // Intra-block MWS latency is tR x small factor (Fig. 12).
    EXPECT_GE(r.latency, usToTime(22.5));
    EXPECT_LE(r.latency, usToTime(23.3));
}

TEST_F(ChipTest, InterBlockMwsComputesOr)
{
    Rng rng = Rng::seeded(5);
    BitVector a = randomPage(rng), b = randomPage(rng);
    chip.programPage({0, 0, 0, 0}, a);
    chip.programPage({0, 1, 0, 0}, b);
    MwsCommand cmd;
    cmd.plane = 0;
    cmd.selections.push_back(WlSelection{0, 0, 1});
    cmd.selections.push_back(WlSelection{1, 0, 1});
    chip.executeMws(cmd);
    EXPECT_EQ(chip.dataOut(0), a | b);
}

TEST_F(ChipTest, InverseMwsComputesNandAndNor)
{
    Rng rng = Rng::seeded(6);
    BitVector a = randomPage(rng), b = randomPage(rng);
    chip.programPage({0, 2, 0, 0}, a);
    chip.programPage({0, 2, 0, 1}, b);
    MwsCommand nand_cmd;
    nand_cmd.plane = 0;
    nand_cmd.flags.inverseRead = true;
    nand_cmd.selections.push_back(WlSelection{2, 0, 0b11});
    chip.executeMws(nand_cmd);
    EXPECT_EQ(chip.dataOut(0), ~(a & b));

    chip.programPage({0, 3, 0, 0}, a);
    chip.programPage({0, 4, 0, 0}, b);
    MwsCommand nor_cmd;
    nor_cmd.plane = 0;
    nor_cmd.flags.inverseRead = true;
    nor_cmd.selections.push_back(WlSelection{3, 0, 1});
    nor_cmd.selections.push_back(WlSelection{4, 0, 1});
    chip.executeMws(nor_cmd);
    EXPECT_EQ(chip.dataOut(0), ~(a | b));
}

TEST_F(ChipTest, AccumulationAcrossMwsCommands)
{
    // Figure 16 mechanics: second command with both inits off
    // AND-accumulates into both latches.
    Rng rng = Rng::seeded(7);
    BitVector a = randomPage(rng), b = randomPage(rng);
    chip.programPage({0, 0, 0, 0}, a);
    chip.programPage({0, 1, 0, 0}, b);

    MwsCommand first;
    first.plane = 0;
    first.selections.push_back(WlSelection{0, 0, 1});
    chip.executeMws(first);

    MwsCommand second;
    second.plane = 0;
    second.flags.initCacheLatch = false;
    second.selections.push_back(WlSelection{1, 0, 1});
    chip.executeMws(second);

    EXPECT_EQ(chip.dataOut(0), a & b);
}

TEST_F(ChipTest, ExecuteMwsFromEncodedBytes)
{
    Rng rng = Rng::seeded(8);
    BitVector a = randomPage(rng), b = randomPage(rng);
    chip.programPage({0, 5, 0, 3}, a);
    chip.programPage({0, 5, 0, 4}, b);
    MwsCommand cmd;
    cmd.plane = 0;
    cmd.selections.push_back(WlSelection{5, 0, 0b11000});
    chip.executeMwsBytes(encodeMws(chip.geometry(), cmd));
    EXPECT_EQ(chip.dataOut(0), a & b);
}

TEST_F(ChipTest, XorCommandCombinesLatches)
{
    Rng rng = Rng::seeded(9);
    BitVector a = randomPage(rng), b = randomPage(rng);
    chip.programPage({0, 6, 0, 0}, a);
    chip.programPage({0, 6, 0, 1}, b);
    chip.readPage({0, 6, 0, 0}); // C := a
    MwsCommand sense_b;
    sense_b.plane = 0;
    sense_b.flags.initCacheLatch = false;
    sense_b.flags.dumpToCache = false;
    sense_b.selections.push_back(WlSelection{6, 0, 0b10});
    chip.executeMws(sense_b); // S := b
    chip.executeXor(0);
    EXPECT_EQ(chip.dataOut(0), a ^ b);
}

TEST_F(ChipTest, EraseAllowsReprogram)
{
    Rng rng = Rng::seeded(10);
    BitVector a = randomPage(rng);
    chip.programPage({0, 7, 0, 0}, a);
    OpResult e = chip.eraseBlock(0, 7);
    EXPECT_EQ(e.latency, usToTime(3500.0));
    BitVector b = randomPage(rng);
    chip.programPage({0, 7, 0, 0}, b);
    chip.readPage({0, 7, 0, 0});
    EXPECT_EQ(chip.dataOut(0), b);
}

TEST_F(ChipTest, PlanesHaveIndependentLatches)
{
    Rng rng = Rng::seeded(11);
    BitVector a = randomPage(rng), b = randomPage(rng);
    chip.programPage({0, 0, 0, 0}, a);
    chip.programPage({1, 0, 0, 0}, b);
    chip.readPage({0, 0, 0, 0});
    chip.readPage({1, 0, 0, 0});
    EXPECT_EQ(chip.dataOut(0), a);
    EXPECT_EQ(chip.dataOut(1), b);
}

TEST_F(ChipTest, MwsEnergyScalesWithActivatedBlocks)
{
    Rng rng = Rng::seeded(12);
    for (std::uint32_t blk = 0; blk < 4; ++blk)
        chip.programPage({0, blk, 0, 0}, randomPage(rng));
    auto energy_for = [&](std::uint32_t blocks) {
        MwsCommand cmd;
        cmd.plane = 0;
        for (std::uint32_t b = 0; b < blocks; ++b)
            cmd.selections.push_back(WlSelection{b, 0, 1});
        return chip.executeMws(cmd).energyJ;
    };
    double e1 = energy_for(1), e4 = energy_for(4);
    EXPECT_GT(e4, 1.5 * e1); // Fig. 14: ~+80% power at 4 blocks
}

TEST_F(ChipTest, ProgramFromCachePersistsLatchContents)
{
    Rng rng = Rng::seeded(14);
    BitVector a = randomPage(rng), b = randomPage(rng);
    chip.programPage({0, 0, 0, 0}, a);
    chip.programPage({0, 0, 0, 1}, b);
    // Compute AND in the latches, then persist without data-out.
    MwsCommand cmd;
    cmd.plane = 0;
    cmd.selections.push_back(WlSelection{0, 0, 0b11});
    chip.executeMws(cmd);
    OpResult w = chip.programFromCache({0, 1, 0, 0});
    EXPECT_EQ(w.latency, usToTime(400.0)); // ESP by default
    chip.readPage({0, 1, 0, 0});
    EXPECT_EQ(chip.dataOut(0), a & b);
    const PageMeta *pm = chip.cells().pageMeta({0, 1, 0, 0});
    ASSERT_NE(pm, nullptr);
    EXPECT_EQ(pm->mode, ProgramMode::SlcEsp);
}

TEST_F(ChipTest, CopybackMovesDataWithinPlane)
{
    Rng rng = Rng::seeded(15);
    BitVector data = randomPage(rng);
    chip.programPage({0, 2, 0, 3}, data);
    OpResult r = chip.copyback({0, 2, 0, 3}, {0, 3, 0, 0});
    // Read + program, no channel transfer.
    EXPECT_EQ(r.latency, usToTime(22.5) + usToTime(200.0));
    chip.readPage({0, 3, 0, 0});
    EXPECT_EQ(chip.dataOut(0), data);
}

TEST_F(ChipTest, CopybackPreservesEspMode)
{
    Rng rng = Rng::seeded(16);
    BitVector data = randomPage(rng);
    chip.programPageEsp({0, 4, 0, 0}, data, EspParams{2.0});
    chip.copyback({0, 4, 0, 0}, {0, 5, 0, 0});
    const PageMeta *pm = chip.cells().pageMeta({0, 5, 0, 0});
    ASSERT_NE(pm, nullptr);
    EXPECT_EQ(pm->mode, ProgramMode::SlcEsp);
    EXPECT_DOUBLE_EQ(pm->espFactor, 2.0);
    chip.readPage({0, 5, 0, 0});
    EXPECT_EQ(chip.dataOut(0), data);
}

TEST_F(ChipTest, CopybackCannotCrossPlanes)
{
    EXPECT_DEATH(chip.copyback({0, 0, 0, 0}, {1, 0, 0, 0}),
                 "cross planes");
}

TEST_F(ChipTest, EraseVerifyDetectsProgrammedCells)
{
    Rng rng = Rng::seeded(17);
    EXPECT_TRUE(chip.eraseVerify(0, 6)); // never-programmed block
    BitVector data = randomPage(rng);
    data.set(0, false); // at least one programmed cell
    chip.programPage({0, 6, 1, 4}, data);
    OpResult cost;
    EXPECT_FALSE(chip.eraseVerify(0, 6, &cost));
    EXPECT_GT(cost.latency, 0u);
    chip.eraseBlock(0, 6);
    EXPECT_TRUE(chip.eraseVerify(0, 6));
}

TEST_F(ChipTest, SenseCounterAdvances)
{
    Rng rng = Rng::seeded(13);
    chip.programPage({0, 0, 0, 0}, randomPage(rng));
    std::uint64_t before = chip.senseCount();
    chip.readPage({0, 0, 0, 0});
    chip.readPage({0, 0, 0, 0});
    EXPECT_EQ(chip.senseCount(), before + 2);
}

} // namespace
} // namespace fcos::nand
