/**
 * @file
 * Latch-circuit semantics tests (Figures 3, 4, 6 and the Figure 16
 * accumulation rules).
 */

#include <gtest/gtest.h>

#include "nand/latch.h"

namespace fcos::nand {
namespace {

BitVector
bits(const std::string &s)
{
    return BitVector::fromString(s);
}

TEST(LatchTest, NormalReadLatchesConduction)
{
    LatchArray l(4);
    l.initSense();
    l.evaluate(bits("1010"), false, true);
    EXPECT_EQ(l.sense(), bits("1010"));
}

TEST(LatchTest, InverseReadLatchesComplement)
{
    LatchArray l(4);
    l.initSense();
    l.evaluate(bits("1010"), true, true);
    EXPECT_EQ(l.sense(), bits("0101"));
}

TEST(LatchTest, InverseReadRequiresInitialization)
{
    LatchArray l(4);
    l.initSense();
    l.evaluate(bits("1111"), false, true);
    // Second inverse evaluation without re-initialization must die.
    EXPECT_DEATH(l.evaluate(bits("0000"), true, false), "initialization");
}

TEST(LatchTest, ParaBitAndAccumulation)
{
    // Fig. 6(b): senses without re-init accumulate S := S AND N.
    LatchArray l(4);
    l.initSense();
    l.evaluate(bits("1110"), false, true);
    l.evaluate(bits("1101"), false, false);
    l.evaluate(bits("1011"), false, false);
    EXPECT_EQ(l.sense(), bits("1000"));
}

TEST(LatchTest, ParaBitOrAccumulation)
{
    // Fig. 6(c): re-init sense + M3 transfer accumulate C := C OR S.
    LatchArray l(4);
    l.initCache();
    for (const char *op : {"0001", "0010", "0100"}) {
        l.initSense();
        l.evaluate(bits(op), false, true);
        l.dumpOrMerge();
    }
    EXPECT_EQ(l.cache(), bits("0111"));
}

TEST(LatchTest, DumpCopyOverwritesCache)
{
    LatchArray l(4);
    l.initSense();
    l.evaluate(bits("1100"), false, true);
    l.initCache();
    l.dumpCopy();
    EXPECT_EQ(l.cache(), bits("1100"));
    l.initSense();
    l.evaluate(bits("0011"), false, true);
    l.dumpCopy();
    EXPECT_EQ(l.cache(), bits("0011"));
}

TEST(LatchTest, DumpAndMergeAccumulatesConjunction)
{
    // Figure 16: a dump with C-init off accumulates C := C AND S.
    LatchArray l(4);
    l.initSense();
    l.evaluate(bits("1110"), false, true);
    l.initCache();
    l.dumpCopy();
    l.initSense();
    l.evaluate(bits("0110"), false, true);
    l.dumpAndMerge();
    EXPECT_EQ(l.cache(), bits("0110"));
}

TEST(LatchTest, XorSenseIntoCache)
{
    LatchArray l(4);
    l.initSense();
    l.evaluate(bits("1100"), false, true);
    l.initCache();
    l.dumpCopy();
    l.initSense();
    l.evaluate(bits("1010"), false, true);
    l.xorSenseIntoCache();
    EXPECT_EQ(l.cache(), bits("0110"));
}

TEST(LatchTest, WidthMismatchPanics)
{
    LatchArray l(4);
    l.initSense();
    EXPECT_DEATH(l.evaluate(bits("11"), false, true), "width");
}

} // namespace
} // namespace fcos::nand
