/**
 * @file
 * Nightly-scale MWS shape sweep (label: sweep-full): shapes beyond the
 * default suite's 8-wordline x 8-string cap, up to full 48-wordline
 * strings activated across 8 blocks — every point checked against the
 * Equation-1 reference in both polarities, with the timing model's
 * intra/inter factors applied consistently.
 */

#include <gtest/gtest.h>

#include "nand/chip.h"
#include "tests/support/nand_builders.h"

namespace fcos::nand {
namespace {

struct FullShape
{
    std::uint32_t wordlines; // per string (up to the full 48)
    std::uint32_t strings;   // distinct blocks activated
};

class MwsFullShapeTest : public ::testing::TestWithParam<FullShape>
{
  protected:
    static Geometry geometry()
    {
        // Production-depth strings (Table 1: 48 wordlines), enough
        // blocks for 8-string inter-block commands.
        return test::GeometryBuilder().blocks(16).wordlines(48).build();
    }
};

TEST_P(MwsFullShapeTest, MatchesEquationOneBothPolarities)
{
    const FullShape shape = GetParam();
    test::ProgrammedChip programmed(
        geometry(), /*seed=*/shape.wordlines * 1000 + shape.strings);
    NandChip &chip = programmed.chip();

    MwsCommand cmd;
    cmd.plane = 0;
    for (std::uint32_t s = 0; s < shape.strings; ++s) {
        std::uint64_t mask = 0;
        for (std::uint32_t w = 0; w < shape.wordlines; ++w) {
            programmed.programRandom({0, s, 0, w});
            mask |= 1ULL << w;
        }
        cmd.selections.push_back(WlSelection{s, 0, mask});
    }

    BitVector expected = programmed.referenceMws(cmd);
    OpResult normal = chip.executeMws(cmd);
    EXPECT_EQ(chip.dataOut(0), expected);

    cmd.flags.inverseRead = true;
    OpResult inverse = chip.executeMws(cmd);
    EXPECT_EQ(chip.dataOut(0), ~expected);
    EXPECT_EQ(normal.latency, inverse.latency);

    // Latency equals the model's prediction for this exact shape.
    TimingModel tm;
    EXPECT_EQ(normal.latency,
              tm.mwsLatency(shape.wordlines, shape.strings));
    // Figure 12/13 envelope: never better than tR, and the 48x8 corner
    // stays within the characterized +40% band.
    EXPECT_GE(normal.latency, usToTime(22.5));
    EXPECT_LE(normal.latency, usToTime(22.5) * 14 / 10);
}

std::vector<FullShape>
fullShapes()
{
    // Beyond the default suite's 8x8 cap: deep strings, wide commands.
    std::vector<FullShape> shapes;
    for (std::uint32_t w : {12u, 24u, 36u, 48u})
        for (std::uint32_t s : {1u, 2u, 4u, 8u})
            shapes.push_back({w, s});
    return shapes;
}

INSTANTIATE_TEST_SUITE_P(
    DeepShapes, MwsFullShapeTest, ::testing::ValuesIn(fullShapes()),
    [](const ::testing::TestParamInfo<FullShape> &info) {
        return "wl" + std::to_string(info.param.wordlines) + "_str" +
               std::to_string(info.param.strings);
    });

TEST(MwsFullSweepTest, FullStringEraseVerifyAcrossBlocks)
{
    // The pre-existing chip capability MWS generalizes (Section 4.1):
    // whole-string sensing must verify erased blocks and flag a single
    // programmed page anywhere in the 48-wordline string.
    Geometry geom = test::GeometryBuilder().blocks(4).wordlines(48).build();
    test::ProgrammedChip programmed(geom, /*seed=*/11);
    NandChip &chip = programmed.chip();
    EXPECT_TRUE(chip.eraseVerify(0, 1));
    programmed.programRandom({0, 1, 0, 47});
    EXPECT_FALSE(chip.eraseVerify(0, 1));
    chip.eraseBlock(0, 1);
    EXPECT_TRUE(chip.eraseVerify(0, 1));
}

} // namespace
} // namespace fcos::nand
