/**
 * @file
 * Power model tests: pinned to the paper's Figure 14 anchors.
 */

#include <gtest/gtest.h>

#include "nand/power_model.h"

namespace fcos::nand {
namespace {

TEST(PowerModelTest, InterBlockAnchors)
{
    // Fig. 14: one block == a read; +34% at two; ~+80% at four.
    EXPECT_DOUBLE_EQ(PowerModel::interBlockMwsPower(1), 1.0);
    EXPECT_NEAR(PowerModel::interBlockMwsPower(2), 1.34, 0.001);
    EXPECT_NEAR(PowerModel::interBlockMwsPower(4), 1.80, 0.02);
}

TEST(PowerModelTest, FourBlocksBelowEraseFiveAbove)
{
    // Section 5.2: the 4-block cap keeps MWS below erase power.
    EXPECT_LT(PowerModel::interBlockMwsPower(4), PowerModel::kErasePower);
    EXPECT_GT(PowerModel::interBlockMwsPower(5), PowerModel::kErasePower);
}

TEST(PowerModelTest, IntraBlockDrawsLessThanRead)
{
    // Target wordlines get V_REF instead of the larger V_PASS.
    for (std::uint32_t n = 2; n <= 48; ++n)
        EXPECT_LT(PowerModel::intraBlockMwsPower(n),
                  PowerModel::kReadPower);
    EXPECT_DOUBLE_EQ(PowerModel::intraBlockMwsPower(1),
                     PowerModel::kReadPower);
}

TEST(PowerModelTest, PowerOrderingReadProgramErase)
{
    EXPECT_LT(PowerModel::kReadPower, PowerModel::kProgramPower);
    EXPECT_LT(PowerModel::kProgramPower, PowerModel::kErasePower);
}

TEST(PowerModelTest, EnergyIsPowerTimesTime)
{
    // 1.0 normalized power at 82.5 mW for 22.5 us = 1.856 uJ/page.
    double e = PowerModel::energy(PowerModel::kReadPower, usToTime(22.5));
    EXPECT_NEAR(e, 1.856e-6, 1e-8);
    EXPECT_DOUBLE_EQ(PowerModel::energy(2.0, usToTime(10.0)),
                     2.0 * PowerModel::energy(1.0, usToTime(10.0)));
}

TEST(PowerModelTest, FourBlockMwsMoreEfficientThanSerialReads)
{
    // Section 5.2: ~80% more power but 4x fewer sensings -> ~53% less
    // energy than four serial reads.
    Timings t;
    double mws_energy = PowerModel::energy(
        PowerModel::interBlockMwsPower(4),
        static_cast<Time>(t.tReadSlc * 1.033));
    double serial_energy =
        4.0 * PowerModel::energy(PowerModel::kReadPower, t.tReadSlc);
    EXPECT_NEAR(1.0 - mws_energy / serial_energy, 0.53, 0.05);
}

TEST(PowerModelTest, CombinedMwsPower)
{
    // The inter-block load dominates; the intra saving subtracts.
    double p = PowerModel::mwsPower(48, 4);
    EXPECT_LT(p, PowerModel::interBlockMwsPower(4));
    EXPECT_GT(p, PowerModel::interBlockMwsPower(4) - 0.15);
}

} // namespace
} // namespace fcos::nand
