/**
 * @file
 * MWS latency model tests: pinned to the paper's Figure 12/13 anchors.
 */

#include <gtest/gtest.h>

#include "nand/timing_model.h"

namespace fcos::nand {
namespace {

TEST(TimingModelTest, IntraBlockAnchors)
{
    // Fig. 12: f(1)=1.000, f(8)~1.008 (<1%), f(48)=1.033.
    EXPECT_DOUBLE_EQ(TimingModel::intraBlockFactor(1), 1.0);
    EXPECT_NEAR(TimingModel::intraBlockFactor(8), 1.008, 0.002);
    EXPECT_LT(TimingModel::intraBlockFactor(8), 1.01);
    EXPECT_NEAR(TimingModel::intraBlockFactor(48), 1.033, 0.001);
}

TEST(TimingModelTest, IntraBlockMonotone)
{
    double prev = 0.0;
    for (std::uint32_t n = 1; n <= 48; ++n) {
        double f = TimingModel::intraBlockFactor(n);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(TimingModelTest, InterBlockAnchors)
{
    // Fig. 13: f(1)=1.000, hidden until 8 (f(8)=1.033), f(32)=1.363.
    EXPECT_DOUBLE_EQ(TimingModel::interBlockFactor(1), 1.0);
    EXPECT_NEAR(TimingModel::interBlockFactor(8), 1.033, 0.001);
    EXPECT_NEAR(TimingModel::interBlockFactor(32), 1.363, 0.003);
    // Mostly hidden below 8 blocks.
    EXPECT_LT(TimingModel::interBlockFactor(4), 1.02);
}

TEST(TimingModelTest, InterBlockMonotoneAndContinuousAtThreshold)
{
    double prev = 0.0;
    for (std::uint32_t n = 1; n <= 32; ++n) {
        double f = TimingModel::interBlockFactor(n);
        EXPECT_GT(f, prev) << "n=" << n;
        prev = f;
    }
    double below = TimingModel::interBlockFactor(8);
    double above = TimingModel::interBlockFactor(9);
    EXPECT_NEAR(above - below, 0.01375, 0.002);
}

TEST(TimingModelTest, MwsLatencyTakesTheSlowerMechanism)
{
    TimingModel tm;
    Time t_r = tm.timings().tReadSlc;
    // 48 wordlines, one block: intra dominates.
    EXPECT_NEAR(timeToUs(tm.mwsLatency(48, 1)),
                timeToUs(t_r) * 1.033, 0.05);
    // 1 wordline each, 32 blocks: inter dominates.
    EXPECT_NEAR(timeToUs(tm.mwsLatency(1, 32)),
                timeToUs(t_r) * 1.363, 0.1);
    // Single regular read.
    EXPECT_EQ(tm.mwsLatency(1, 1), t_r);
}

TEST(TimingModelTest, FixedCommandLatencyCoversCappedShapes)
{
    // Table 1: tMWS = 25 us covers any MWS with <= 4 blocks and <= 48
    // wordlines per string.
    TimingModel tm;
    EXPECT_EQ(tm.mwsLatencyFixed(), usToTime(25.0));
    for (std::uint32_t blocks = 1; blocks <= 4; ++blocks)
        for (std::uint32_t wls : {1u, 8u, 48u})
            EXPECT_LE(tm.mwsLatency(wls, blocks), tm.mwsLatencyFixed());
}

TEST(TimingModelTest, MwsFarCheaperThanSerialReads)
{
    // Reading 32 wordlines via inter-block MWS is ~1.363 tR vs 32 tR
    // serially (Section 5.2).
    TimingModel tm;
    Time mws = tm.mwsLatency(1, 32);
    Time serial = 32 * tm.timings().tReadSlc;
    EXPECT_LT(mws * 20, serial);
}

TEST(TimingModelTest, ProgramLatenciesMatchTable1)
{
    Timings t;
    EXPECT_EQ(t.programLatency(ProgramMode::SlcRegular), usToTime(200.0));
    EXPECT_EQ(t.programLatency(ProgramMode::SlcEsp), usToTime(400.0));
    EXPECT_EQ(t.programLatency(ProgramMode::Mlc), usToTime(500.0));
    EXPECT_EQ(t.programLatency(ProgramMode::Tlc), usToTime(700.0));
}

} // namespace
} // namespace fcos::nand
