/**
 * @file
 * Exhaustive MWS shape sweep: for every (wordlines-per-string x
 * strings) combination the chip supports, the sensed result must
 * equal the reference OR-of-ANDs (Equation 1), in both normal and
 * inverse mode, and latency/power must grow monotonically with the
 * activation footprint.
 */

#include <gtest/gtest.h>

#include "nand/chip.h"
#include "nand/power_model.h"
#include "tests/support/nand_builders.h"

namespace fcos::nand {
namespace {

struct MwsShape
{
    std::uint32_t wordlines; // per string
    std::uint32_t strings;   // distinct sub-blocks activated
};

class MwsShapeTest : public ::testing::TestWithParam<MwsShape>
{
  protected:
    static Geometry geometry()
    {
        return test::GeometryBuilder().blocks(16).build();
    }
};

TEST_P(MwsShapeTest, MatchesEquationOneBothPolarities)
{
    const MwsShape shape = GetParam();
    test::ProgrammedChip programmed(
        geometry(), /*seed=*/shape.wordlines * 100 + shape.strings);
    NandChip &chip = programmed.chip();

    // Program random data; string s lives in block s, sub-block 0.
    MwsCommand cmd;
    cmd.plane = 0;
    for (std::uint32_t s = 0; s < shape.strings; ++s) {
        std::uint64_t mask = 0;
        for (std::uint32_t w = 0; w < shape.wordlines; ++w) {
            programmed.programRandom({0, s, 0, w});
            mask |= 1ULL << w;
        }
        cmd.selections.push_back(WlSelection{s, 0, mask});
    }

    // Reference: OR over strings of AND over wordlines (Equation 1).
    BitVector expected = programmed.referenceMws(cmd);

    OpResult normal = chip.executeMws(cmd);
    EXPECT_EQ(chip.dataOut(0), expected);

    cmd.flags.inverseRead = true;
    OpResult inverse = chip.executeMws(cmd);
    EXPECT_EQ(chip.dataOut(0), ~expected);
    EXPECT_EQ(normal.latency, inverse.latency);

    // Latency bounded by the characterized extremes.
    EXPECT_GE(normal.latency, usToTime(22.5));
    EXPECT_LE(normal.latency, usToTime(22.5) * 15 / 10);
}

std::vector<MwsShape>
allShapes()
{
    std::vector<MwsShape> shapes;
    for (std::uint32_t w : {1u, 2u, 3u, 5u, 8u})
        for (std::uint32_t s : {1u, 2u, 3u, 4u, 8u})
            shapes.push_back({w, s});
    return shapes;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MwsShapeTest, ::testing::ValuesIn(allShapes()),
    [](const ::testing::TestParamInfo<MwsShape> &info) {
        return "wl" + std::to_string(info.param.wordlines) + "_str" +
               std::to_string(info.param.strings);
    });

TEST(MwsMonotonicityTest, LatencyAndPowerGrowWithFootprint)
{
    TimingModel tm;
    for (std::uint32_t w = 2; w <= 48; ++w)
        EXPECT_GE(tm.mwsLatency(w, 1), tm.mwsLatency(w - 1, 1));
    for (std::uint32_t s = 2; s <= 32; ++s) {
        EXPECT_GE(tm.mwsLatency(1, s), tm.mwsLatency(1, s - 1));
        EXPECT_GT(PowerModel::interBlockMwsPower(s),
                  PowerModel::interBlockMwsPower(s - 1));
    }
}

TEST(MwsMixedSubBlockTest, StringsAcrossSubBlocksOfOneBlock)
{
    // "Inter-block" semantics also hold between sub-blocks of the same
    // physical block: different NAND strings on the same bitlines.
    test::ProgrammedChip programmed(Geometry::tiny(), /*seed=*/7);
    const BitVector &a = programmed.programRandom({0, 0, 0, 2});
    const BitVector &b = programmed.programRandom({0, 0, 1, 5});
    MwsCommand cmd;
    cmd.plane = 0;
    cmd.selections.push_back(WlSelection{0, 0, 1ULL << 2});
    cmd.selections.push_back(WlSelection{0, 1, 1ULL << 5});
    programmed.chip().executeMws(cmd);
    EXPECT_EQ(programmed.chip().dataOut(0), a | b);
    EXPECT_EQ(programmed.chip().dataOut(0), programmed.referenceMws(cmd));
}

} // namespace
} // namespace fcos::nand
