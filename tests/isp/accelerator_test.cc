/**
 * @file
 * ISP accelerator functional tests.
 */

#include <gtest/gtest.h>

#include "isp/accelerator.h"
#include "util/rng.h"

namespace fcos::isp {
namespace {

TEST(IspAcceleratorTest, AccumulatesAndOrXor)
{
    Rng rng = Rng::seeded(1);
    BitVector a(4096), b(4096), c(4096);
    a.randomize(rng);
    b.randomize(rng);
    c.randomize(rng);

    IspAccelerator accel;
    accel.begin(AccelOp::And, 4096);
    accel.consume(a);
    accel.consume(b);
    accel.consume(c);
    EXPECT_EQ(accel.result(), a & b & c);
    EXPECT_EQ(accel.tilesConsumed(), 3u);

    accel.begin(AccelOp::Or, 4096);
    accel.consume(a);
    accel.consume(b);
    EXPECT_EQ(accel.result(), a | b);

    accel.begin(AccelOp::Xor, 4096);
    accel.consume(a);
    accel.consume(b);
    EXPECT_EQ(accel.result(), a ^ b);
}

TEST(IspAcceleratorTest, SingleOperandPassesThrough)
{
    Rng rng = Rng::seeded(2);
    BitVector a(128);
    a.randomize(rng);
    IspAccelerator accel;
    accel.begin(AccelOp::And, 128);
    accel.consume(a);
    EXPECT_EQ(accel.result(), a);
}

TEST(IspAcceleratorTest, SramCapacityEnforced)
{
    IspAccelerator accel(1024); // 1 KiB SRAM
    accel.begin(AccelOp::And, 8192); // exactly fits
    EXPECT_EXIT(accel.begin(AccelOp::And, 8193),
                ::testing::ExitedWithCode(1), "SRAM");
}

TEST(IspAcceleratorTest, TileSizeMismatchPanics)
{
    IspAccelerator accel;
    accel.begin(AccelOp::And, 128);
    BitVector wrong(64);
    EXPECT_DEATH(accel.consume(wrong), "tile size");
}

TEST(IspAcceleratorTest, BeginResetsState)
{
    Rng rng = Rng::seeded(3);
    BitVector a(64), b(64);
    a.randomize(rng);
    b.randomize(rng);
    IspAccelerator accel;
    accel.begin(AccelOp::And, 64);
    accel.consume(a);
    accel.begin(AccelOp::Or, 64);
    accel.consume(b);
    EXPECT_EQ(accel.result(), b);
    EXPECT_EQ(accel.tilesConsumed(), 1u);
}

} // namespace
} // namespace fcos::isp
