/**
 * @file
 * Pins the engine-scaling table (bench/engine_scaling) as a golden and
 * checks the scaling properties the table is supposed to show: every
 * row bit-exact, near-linear die scaling until channel contention,
 * and linear channel scaling past it.
 */

#include <gtest/gtest.h>

#include "engine/report.h"
#include "tests/support/golden.h"

namespace fcos::engine {
namespace {

class ScalingReportTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        points_ = new std::vector<ScalingPoint>();
        table_ = new TablePrinter(scalingReport(
            defaultScalingSweep(), /*and_operands=*/24,
            /*pages_per_column=*/2, /*page_bytes=*/8 * 1024, points_));
    }
    static void TearDownTestSuite()
    {
        delete table_;
        delete points_;
        table_ = nullptr;
        points_ = nullptr;
    }

    static TablePrinter *table_;
    static std::vector<ScalingPoint> *points_;
};

TablePrinter *ScalingReportTest::table_ = nullptr;
std::vector<ScalingPoint> *ScalingReportTest::points_ = nullptr;

TEST_F(ScalingReportTest, TableMatchesGolden)
{
    EXPECT_TRUE(
        test::MatchesGolden(table_->toString(), "golden/engine_scaling.txt"));
}

TEST_F(ScalingReportTest, EveryConfigurationIsBitExact)
{
    ASSERT_EQ(points_->size(), defaultScalingSweep().size());
    for (const ScalingPoint &p : *points_)
        EXPECT_TRUE(p.bitExact)
            << p.config.channels << "x" << p.config.diesPerChannel;
}

TEST_F(ScalingReportTest, ThroughputScalesNearLinearlyThenContends)
{
    // Sweep rows 0..3: 1 channel, 1/2/4/8 dies.
    const auto &pts = *points_;
    ASSERT_GE(pts.size(), 7u);
    // With per-plane facilities even one die is 2-way parallel, so the
    // channel starts contending earlier than in a serialized-per-die
    // model; growth stays monotone until the bus saturates.
    EXPECT_GT(pts[1].throughputGBps, 1.5 * pts[0].throughputGBps);
    EXPECT_GT(pts[2].throughputGBps, pts[1].throughputGBps);
    EXPECT_GT(pts[3].throughputGBps, pts[2].throughputGBps);
    // ...but 8 dies on one channel are channel-bound: per-die
    // efficiency drops well below the 1-die baseline.
    EXPECT_LT(pts[3].perDieGBps, 0.75 * pts[0].perDieGBps);
    EXPECT_GT(pts[3].channelUtilization, 0.9);

    // Rows 3..6: 1/2/4/8 channels at 8 dies each — channels are
    // independent, so throughput scales linearly again.
    EXPECT_GT(pts[4].throughputGBps, 1.9 * pts[3].throughputGBps);
    EXPECT_GT(pts[5].throughputGBps, 1.9 * pts[4].throughputGBps);
    EXPECT_GT(pts[6].throughputGBps, 1.9 * pts[5].throughputGBps);
}

TEST_F(ScalingReportTest, PlaneParallelismNeverSlowerThanSerializedDies)
{
    // The PR 2 engine serialized each die's planes; these are that
    // build's golden makespans (display-rounded, so give each bound
    // the half-unit of rounding slack). Per-plane facilities must
    // never be slower, and must be strictly faster wherever the
    // channel was not already the bottleneck (the 1- and 2-die rows).
    const Time serialized_us[] = {
        usToTime(98.65), usToTime(105.5), usToTime(132.5),
        usToTime(241.5), usToTime(241.5), usToTime(241.5),
        usToTime(241.5)};
    const auto &pts = *points_;
    ASSERT_EQ(pts.size(), 7u);
    for (std::size_t i = 0; i < pts.size(); ++i)
        EXPECT_LE(pts[i].makespan, serialized_us[i]) << "row " << i;
    EXPECT_LT(pts[0].makespan, serialized_us[0]);
    EXPECT_LT(pts[1].makespan, serialized_us[1]);
}

TEST_F(ScalingReportTest, EnergyGrowsWithWork)
{
    const auto &pts = *points_;
    for (std::size_t i = 1; i < pts.size(); ++i)
        EXPECT_GT(pts[i].energyJ, pts[i - 1].energyJ)
            << "row " << i << " books less energy than a smaller farm";
}

} // namespace
} // namespace fcos::engine
