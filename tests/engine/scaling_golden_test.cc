/**
 * @file
 * Pins the engine-scaling table (bench/engine_scaling) as a golden and
 * checks the scaling properties the table is supposed to show: every
 * row bit-exact, near-linear die scaling until channel contention,
 * and linear channel scaling past it.
 */

#include <gtest/gtest.h>

#include "engine/report.h"
#include "tests/support/golden.h"

namespace fcos::engine {
namespace {

class ScalingReportTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        points_ = new std::vector<ScalingPoint>();
        table_ = new TablePrinter(scalingReport(
            defaultScalingSweep(), /*and_operands=*/24,
            /*pages_per_column=*/2, /*page_bytes=*/8 * 1024, points_));
    }
    static void TearDownTestSuite()
    {
        delete table_;
        delete points_;
        table_ = nullptr;
        points_ = nullptr;
    }

    static TablePrinter *table_;
    static std::vector<ScalingPoint> *points_;
};

TablePrinter *ScalingReportTest::table_ = nullptr;
std::vector<ScalingPoint> *ScalingReportTest::points_ = nullptr;

TEST_F(ScalingReportTest, TableMatchesGolden)
{
    EXPECT_TRUE(
        test::MatchesGolden(table_->toString(), "golden/engine_scaling.txt"));
}

TEST_F(ScalingReportTest, EveryConfigurationIsBitExact)
{
    ASSERT_EQ(points_->size(), defaultScalingSweep().size());
    for (const ScalingPoint &p : *points_)
        EXPECT_TRUE(p.bitExact)
            << p.config.channels << "x" << p.config.diesPerChannel;
}

TEST_F(ScalingReportTest, ThroughputScalesNearLinearlyThenContends)
{
    // Sweep rows 0..3: 1 channel, 1/2/4/8 dies.
    const auto &pts = *points_;
    ASSERT_GE(pts.size(), 7u);
    // Near-linear at 2 dies.
    EXPECT_GT(pts[1].throughputGBps, 1.8 * pts[0].throughputGBps);
    // Monotone throughput growth with dies.
    EXPECT_GT(pts[2].throughputGBps, pts[1].throughputGBps);
    EXPECT_GT(pts[3].throughputGBps, pts[2].throughputGBps);
    // ...but 8 dies on one channel are channel-bound: per-die
    // efficiency drops well below the 1-die baseline.
    EXPECT_LT(pts[3].perDieGBps, 0.75 * pts[0].perDieGBps);
    EXPECT_GT(pts[3].channelUtilization, 0.9);

    // Rows 3..6: 1/2/4/8 channels at 8 dies each — channels are
    // independent, so throughput scales linearly again.
    EXPECT_GT(pts[4].throughputGBps, 1.9 * pts[3].throughputGBps);
    EXPECT_GT(pts[5].throughputGBps, 1.9 * pts[4].throughputGBps);
    EXPECT_GT(pts[6].throughputGBps, 1.9 * pts[5].throughputGBps);
}

TEST_F(ScalingReportTest, EnergyGrowsWithWork)
{
    const auto &pts = *points_;
    for (std::size_t i = 1; i < pts.size(); ++i)
        EXPECT_GT(pts[i].energyJ, pts[i - 1].energyJ)
            << "row " << i << " books less energy than a smaller farm";
}

} // namespace
} // namespace fcos::engine
