/**
 * @file
 * Sharded-execution equivalence: for the same workload, the multi-die
 * engine (many dies computing concurrently, event-driven) must produce
 * bit-identical results to the single-die serialized reference drive
 * and to host-side reference evaluation — at every Figure-8 operating
 * point, with the V_TH error model attached (ESP-programmed operands
 * are reliable across the whole grid; that is the paper's central
 * reliability claim, and sharding must not perturb it).
 */

#include <gtest/gtest.h>

#include "core/drive.h"
#include "reliability/error_injector.h"
#include "reliability/vth_model.h"
#include "tests/support/grids.h"
#include "tests/support/random_fixture.h"

namespace fcos::core {
namespace {

using test::GridPoint;

struct Operands
{
    BitVector a, b, c, d;
    Expr ea, eb, ec, ed;
};

/** Write the same four logical vectors into any drive. */
Operands
writeOperands(FlashCosmosDrive &drive, std::size_t bits)
{
    // Same seed regardless of drive shape: identical logical data.
    Rng rng = Rng::seeded(99);
    FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    FlashCosmosDrive::WriteOptions inv_group;
    inv_group.group = 1;
    inv_group.storeInverted = true;

    BitVector a = test::randomVec(rng, bits);
    BitVector b = test::randomVec(rng, bits);
    BitVector c = test::randomVec(rng, bits);
    BitVector d = test::randomVec(rng, bits);
    Expr ea = Expr::leaf(drive.fcWrite(a, group));
    Expr eb = Expr::leaf(drive.fcWrite(b, group));
    // c and d stored inverted: exercises De Morgan OR plans.
    Expr ec = Expr::leaf(drive.fcWrite(c, inv_group));
    Expr ed = Expr::leaf(drive.fcWrite(d, inv_group));
    return Operands{std::move(a), std::move(b), std::move(c),
                    std::move(d), std::move(ea), std::move(eb),
                    std::move(ec), std::move(ed)};
}

class ShardingEquivalenceTest : public ::testing::TestWithParam<GridPoint>
{};

TEST_P(ShardingEquivalenceTest, MultiDieMatchesSingleDieAndReference)
{
    const GridPoint gp = GetParam();
    rel::VthModel model;
    rel::OperatingCondition cond{gp.pec, gp.months, false};

    nand::Geometry geom = nand::Geometry::tiny();
    const std::size_t bits = geom.pageBits() * 6;

    // Reference: one die, one channel — fully serialized execution.
    FlashCosmosDrive::Config serial_cfg;
    serial_cfg.channels = 1;
    serial_cfg.dies = 1;
    serial_cfg.geometry = geom;
    FlashCosmosDrive serial(serial_cfg);
    rel::VthErrorInjector serial_inj(model, cond);
    serial.setErrorInjector(&serial_inj);

    // Sharded: 2 channels x 2 dies, event-driven interleaving.
    FlashCosmosDrive::Config multi_cfg;
    multi_cfg.channels = 2;
    multi_cfg.dies = 2;
    multi_cfg.geometry = geom;
    FlashCosmosDrive multi(multi_cfg);
    rel::VthErrorInjector multi_inj(model, cond);
    multi.setErrorInjector(&multi_inj);

    Operands so = writeOperands(serial, bits);
    Operands mo = writeOperands(multi, bits);

    struct Case
    {
        const char *name;
        Expr serial_expr;
        Expr multi_expr;
        BitVector expected;
    };
    const std::vector<Case> cases = {
        {"and3", Expr::And({so.ea, so.eb, so.ec}),
         Expr::And({mo.ea, mo.eb, mo.ec}), so.a & so.b & so.c},
        {"or2_demorgan", Expr::Or({so.ec, so.ed}),
         Expr::Or({mo.ec, mo.ed}), so.c | so.d},
        {"xor2", Expr::Xor(so.ea, so.eb), Expr::Xor(mo.ea, mo.eb),
         so.a ^ so.b},
        {"nested", Expr::And({so.ea, Expr::Or({so.ec, so.ed})}),
         Expr::And({mo.ea, Expr::Or({mo.ec, mo.ed})}),
         so.a & (so.c | so.d)},
        {"nor", Expr::Nor({so.ec, so.ed}), Expr::Nor({mo.ec, mo.ed}),
         ~(so.c | so.d)},
    };

    for (const Case &c : cases) {
        FlashCosmosDrive::ReadStats s_stats, m_stats;
        BitVector rs = serial.fcRead(c.serial_expr, &s_stats);
        BitVector rm = multi.fcRead(c.multi_expr, &m_stats);
        EXPECT_EQ(rs, c.expected)
            << c.name << " serial drive diverged from reference";
        EXPECT_EQ(rm, c.expected)
            << c.name << " sharded execution diverged from reference";
        EXPECT_EQ(rm, rs) << c.name << " sharding changed the bits";
        // Same plan shape on both drives; the NAND work per column is
        // identical, only the interleaving differs.
        EXPECT_EQ(m_stats.planKind, s_stats.planKind) << c.name;
        EXPECT_EQ(m_stats.mwsCommands, s_stats.mwsCommands) << c.name;
        EXPECT_EQ(m_stats.senses, s_stats.senses) << c.name;
        // Four dies computing concurrently must not be slower than the
        // one-die serialization of the same commands.
        EXPECT_LE(m_stats.makespan, s_stats.makespan) << c.name;
    }

    // fcCompute equivalence: persist a computed vector in-flash on
    // both drives, then read it back.
    FlashCosmosDrive::WriteOptions dst;
    dst.group = 2;
    VectorId vs =
        serial.fcCompute(Expr::And({so.ea, so.eb}), dst, nullptr);
    VectorId vm =
        multi.fcCompute(Expr::And({mo.ea, mo.eb}), dst, nullptr);
    EXPECT_EQ(serial.readVector(vs), so.a & so.b);
    EXPECT_EQ(multi.readVector(vm), mo.a & mo.b);
}

INSTANTIATE_TEST_SUITE_P(Figure8Grid, ShardingEquivalenceTest,
                         ::testing::ValuesIn(test::figure8Grid()),
                         test::gridPointName);

} // namespace
} // namespace fcos::core
