/**
 * @file
 * RequestQueue unit tests: bounded admission depth, conflict-grained
 * serialization in arrival order, WFQ class weights, staged arrivals,
 * and the per-request completion protocol.
 */

#include <gtest/gtest.h>

#include <vector>

#include "engine/admission.h"
#include "engine/chip_farm.h"
#include "engine/scheduler.h"

namespace fcos::engine {
namespace {

FarmConfig
smallFarm(std::uint32_t channels, std::uint32_t dies)
{
    FarmConfig fc;
    fc.channels = channels;
    fc.diesPerChannel = dies;
    fc.geometry = nand::Geometry::tiny();
    return fc;
}

/** Harness: scheduler over a farm plus an event log of request
 *  lifecycles (admission order, timestamps). */
struct Rig
{
    explicit Rig(std::uint32_t dies, RequestQueue::Config cfg = {})
        : farm(smallFarm(1, dies)), sched(farm), rq(sched, cfg)
    {}

    /** Submit a request whose work is one fixed-latency op on
     *  (die, plane 0); logs "<tag>@<admit us>" at admission. */
    RequestId oneOpRequest(RequestClass cls, std::uint32_t die,
                           std::string tag, double us,
                           std::vector<std::uint64_t> reads = {},
                           std::vector<std::uint64_t> writes = {},
                           Time arrival = 0)
    {
        return rq.submit(
            cls, arrival, std::move(reads), std::move(writes),
            [this, die, tag, us](RequestId id) {
                admitted.push_back(tag);
                admit_time.push_back(sched.queue().now());
                rq.addWork(id);
                sched.submitPlaneOp(
                    die, 0, ssd::EnergyComponent::NandRead,
                    [us](nand::NandChip &) {
                        return nand::OpResult{usToTime(us), 0.0};
                    },
                    [this, id] { rq.workDone(id); });
            },
            [this, tag](const RequestQueue::Outcome &oc) {
                completed.push_back(tag);
                outcomes.push_back(oc);
            });
    }

    ChipFarm farm;
    CommandScheduler sched;
    RequestQueue rq;
    std::vector<std::string> admitted;
    std::vector<Time> admit_time;
    std::vector<std::string> completed;
    std::vector<RequestQueue::Outcome> outcomes;
};

TEST(AdmissionTest, IndependentRequestsAdmitImmediatelyAndOverlap)
{
    Rig rig(/*dies=*/4);
    for (int i = 0; i < 4; ++i)
        rig.oneOpRequest(RequestClass::Read, i, "r" + std::to_string(i),
                         10.0);
    // Depth 8 window: all four admitted synchronously at submit.
    EXPECT_EQ(rig.admitted.size(), 4u);
    EXPECT_EQ(rig.rq.inFlightCount(), 4u);
    rig.sched.drain();
    EXPECT_TRUE(rig.rq.idle());
    // Four dies, one 10 us op each, all admitted at t=0: they overlap
    // perfectly, so every completion lands at 10 us.
    ASSERT_EQ(rig.outcomes.size(), 4u);
    for (const RequestQueue::Outcome &oc : rig.outcomes) {
        EXPECT_EQ(oc.admitted, 0u);
        EXPECT_EQ(oc.completed, usToTime(10.0));
    }
}

TEST(AdmissionTest, DepthWindowDefersExcessRequests)
{
    RequestQueue::Config cfg;
    cfg.depth = 2;
    Rig rig(/*dies=*/4, cfg);
    for (int i = 0; i < 4; ++i)
        rig.oneOpRequest(RequestClass::Read, i, "r" + std::to_string(i),
                         10.0);
    // Only the window fits; the rest wait despite touching idle dies.
    EXPECT_EQ(rig.admitted.size(), 2u);
    EXPECT_EQ(rig.rq.pendingCount(), 2u);
    rig.sched.drain();
    ASSERT_EQ(rig.admitted.size(), 4u);
    // r2/r3 entered only when r0/r1 finished at 10 us.
    EXPECT_EQ(rig.admit_time[2], usToTime(10.0));
    EXPECT_EQ(rig.admit_time[3], usToTime(10.0));
    EXPECT_TRUE(rig.rq.idle());
}

TEST(AdmissionTest, WriterSerializesAgainstEveryKeyToucher)
{
    Rig rig(/*dies=*/4);
    // w0 writes key 7; r1 reads key 7; w2 writes key 7. All target
    // *different* dies, so only the keys can serialize them.
    rig.oneOpRequest(RequestClass::Write, 0, "w0", 10.0, {}, {7});
    rig.oneOpRequest(RequestClass::Read, 1, "r1", 10.0, {7}, {});
    rig.oneOpRequest(RequestClass::Write, 2, "w2", 10.0, {}, {7});
    EXPECT_EQ(rig.rq.inFlightCount(), 1u);
    rig.sched.drain();
    // Strict arrival order, back to back on the timeline.
    EXPECT_EQ(rig.admitted,
              (std::vector<std::string>{"w0", "r1", "w2"}));
    EXPECT_EQ(rig.admit_time[1], usToTime(10.0));
    EXPECT_EQ(rig.admit_time[2], usToTime(20.0));
}

TEST(AdmissionTest, ReadersOfOneKeyOverlap)
{
    Rig rig(/*dies=*/4);
    rig.oneOpRequest(RequestClass::Read, 0, "r0", 10.0, {7}, {});
    rig.oneOpRequest(RequestClass::Read, 1, "r1", 10.0, {7}, {});
    // Shared readers: both admitted at once.
    EXPECT_EQ(rig.rq.inFlightCount(), 2u);
    rig.sched.drain();
    EXPECT_EQ(rig.outcomes[0].completed, usToTime(10.0));
    EXPECT_EQ(rig.outcomes[1].completed, usToTime(10.0));
}

TEST(AdmissionTest, LaterIndependentRequestOvertakesBlockedOne)
{
    Rig rig(/*dies=*/4);
    rig.oneOpRequest(RequestClass::Write, 0, "w0", 10.0, {}, {7});
    rig.oneOpRequest(RequestClass::Write, 1, "w1", 10.0, {}, {7});
    rig.oneOpRequest(RequestClass::Read, 2, "r2", 10.0, {9}, {});
    // w1 waits on w0's key, but r2 is independent and overtakes it.
    EXPECT_EQ(rig.admitted,
              (std::vector<std::string>{"w0", "r2"}));
    rig.sched.drain();
    EXPECT_EQ(rig.admitted,
              (std::vector<std::string>{"w0", "r2", "w1"}));
}

TEST(AdmissionTest, QosWeightsProportionAdmissionsUnderContention)
{
    RequestQueue::Config cfg;
    cfg.depth = 1;
    cfg.weights[static_cast<std::size_t>(RequestClass::Read)] = 2;
    cfg.weights[static_cast<std::size_t>(RequestClass::Compute)] = 1;
    Rig rig(/*dies=*/2, cfg);
    // Occupy the window so everything below queues behind it.
    rig.oneOpRequest(RequestClass::Write, 0, "seed", 1.0);
    for (int i = 0; i < 6; ++i)
        rig.oneOpRequest(RequestClass::Compute, 0,
                         "c" + std::to_string(i), 1.0);
    for (int i = 0; i < 6; ++i)
        rig.oneOpRequest(RequestClass::Read, 1,
                         "r" + std::to_string(i), 1.0);
    rig.sched.drain();
    // Integer WFQ at 2:1 admits two reads per compute (the read class
    // reaches each virtual finish tag twice as often; ties break
    // toward the lower class index). Expected pattern after the seed:
    // r r c r r c ... until the reads run dry.
    EXPECT_EQ(rig.admitted,
              (std::vector<std::string>{"seed", "r0", "r1", "c0", "r2",
                                        "r3", "c1", "r4", "r5", "c2",
                                        "c3", "c4", "c5"}));
}

TEST(AdmissionTest, FutureArrivalIsStagedOnTheClock)
{
    Rig rig(/*dies=*/1);
    rig.oneOpRequest(RequestClass::Read, 0, "late", 5.0, {}, {},
                     usToTime(100.0));
    // Not yet arrived: no admission, but the queue is not idle.
    EXPECT_EQ(rig.admitted.size(), 0u);
    EXPECT_EQ(rig.rq.pendingCount(), 0u);
    EXPECT_FALSE(rig.rq.idle());
    rig.sched.drain();
    ASSERT_EQ(rig.admit_time.size(), 1u);
    EXPECT_EQ(rig.admit_time[0], usToTime(100.0));
    EXPECT_EQ(rig.outcomes[0].arrival, usToTime(100.0));
    EXPECT_EQ(rig.outcomes[0].completed, usToTime(105.0));
}

TEST(AdmissionTest, MultiUnitRequestCompletesAtItsLastUnit)
{
    Rig rig(/*dies=*/2);
    RequestId id = rig.rq.submit(
        RequestClass::Compute, 0, {}, {},
        [&rig](RequestId rid) {
            for (std::uint32_t die = 0; die < 2; ++die) {
                rig.rq.addWork(rid);
                rig.sched.submitPlaneOp(
                    die, 0, ssd::EnergyComponent::NandRead,
                    [die](nand::NandChip &) {
                        return nand::OpResult{usToTime(die ? 30.0 : 10.0),
                                              0.0};
                    },
                    [&rig, rid] { rig.rq.workDone(rid); });
            }
        },
        [&rig](const RequestQueue::Outcome &oc) {
            rig.outcomes.push_back(oc);
        });
    (void)id;
    rig.sched.drain();
    ASSERT_EQ(rig.outcomes.size(), 1u);
    EXPECT_EQ(rig.outcomes[0].completed, usToTime(30.0));
    EXPECT_EQ(rig.rq.completedCount(), 1u);
}

TEST(AdmissionTest, ClassCountersTrackAdmissions)
{
    Rig rig(/*dies=*/4);
    rig.oneOpRequest(RequestClass::Read, 0, "r", 1.0);
    rig.oneOpRequest(RequestClass::Write, 1, "w", 1.0);
    rig.oneOpRequest(RequestClass::Compute, 2, "c", 1.0);
    rig.sched.drain();
    EXPECT_EQ(rig.rq.admittedCount(RequestClass::Read), 1u);
    EXPECT_EQ(rig.rq.admittedCount(RequestClass::Write), 1u);
    EXPECT_EQ(rig.rq.admittedCount(RequestClass::Compute), 1u);
    EXPECT_EQ(rig.rq.completedCount(), 3u);
}

} // namespace
} // namespace fcos::engine
