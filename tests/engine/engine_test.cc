/**
 * @file
 * Unit tests of the multi-die compute engine: farm topology, scheduler
 * parallelism/serialization, result readout, replication, and the
 * drive-level sharded paths (multi-channel fcRead, fcReplicate).
 */

#include <gtest/gtest.h>

#include "core/drive.h"
#include "engine/engine.h"
#include "tests/support/random_fixture.h"

namespace fcos::engine {
namespace {

FarmConfig
smallFarm(std::uint32_t channels, std::uint32_t dies)
{
    FarmConfig fc;
    fc.channels = channels;
    fc.diesPerChannel = dies;
    fc.geometry = nand::Geometry::tiny();
    return fc;
}

TEST(ChipFarmTest, TopologyMapsDiesAndColumns)
{
    ChipFarm farm(smallFarm(2, 4));
    EXPECT_EQ(farm.dieCount(), 8u);
    EXPECT_EQ(farm.channelCount(), 2u);
    EXPECT_EQ(farm.channelOfDie(0), 0u);
    EXPECT_EQ(farm.channelOfDie(3), 0u);
    EXPECT_EQ(farm.channelOfDie(4), 1u);
    EXPECT_EQ(farm.channelOfDie(7), 1u);
    // tiny() has 2 planes/die: column = die * 2 + plane.
    EXPECT_EQ(farm.columnCount(), 16u);
    EXPECT_EQ(farm.dieOfColumn(5), 2u);
    EXPECT_EQ(farm.planeOfColumn(5), 1u);
}

TEST(SchedulerTest, IndependentDiesRunInParallel)
{
    ChipFarm farm(smallFarm(2, 1));
    CommandScheduler sched(farm);
    auto op = [](nand::NandChip &) {
        return nand::OpResult{usToTime(10.0), 0.0};
    };
    sched.submitPlaneOp(0, 0, ssd::EnergyComponent::NandRead, op);
    sched.submitPlaneOp(1, 0, ssd::EnergyComponent::NandRead, op);
    EXPECT_EQ(sched.drain(), usToTime(10.0));
    EXPECT_EQ(sched.dieBusyTime(0), usToTime(10.0));
    EXPECT_EQ(sched.dieBusyTime(1), usToTime(10.0));
}

TEST(SchedulerTest, PlanesOfOneDieSenseConcurrently)
{
    // tiny() has 2 planes/die: both planes of a single die must
    // overlap on the timeline (per-plane facilities).
    ChipFarm farm(smallFarm(1, 1));
    CommandScheduler sched(farm);
    auto op = [](nand::NandChip &) {
        return nand::OpResult{usToTime(10.0), 0.0};
    };
    sched.submitPlaneOp(0, 0, ssd::EnergyComponent::NandRead, op);
    sched.submitPlaneOp(0, 1, ssd::EnergyComponent::NandRead, op);
    EXPECT_EQ(sched.drain(), usToTime(10.0));
    EXPECT_EQ(sched.planeBusyTime(0, 0), usToTime(10.0));
    EXPECT_EQ(sched.planeBusyTime(0, 1), usToTime(10.0));
    EXPECT_EQ(sched.dieBusyTime(0), usToTime(10.0));
}

TEST(SchedulerTest, SamePlaneOpsSerializeInSubmissionOrder)
{
    ChipFarm farm(smallFarm(1, 1));
    CommandScheduler sched(farm);
    std::vector<int> order;
    for (int i = 0; i < 3; ++i)
        sched.submitPlaneOp(
            0, 0, ssd::EnergyComponent::NandRead,
            [&order, i](nand::NandChip &) {
                order.push_back(i);
                return nand::OpResult{usToTime(5.0), 0.0};
            });
    EXPECT_EQ(sched.drain(), usToTime(15.0));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerTest, DataInPipelinesBehindCacheLatch)
{
    // Two programs with data-in on one plane: the second transfer
    // streams into the cache latch while the first program occupies
    // the array, so the plane never waits for it.
    FarmConfig fc = smallFarm(1, 1);
    fc.io.channelGBps = 0.001; // 32-B page -> 32 us per transfer
    ChipFarm farm(fc);
    CommandScheduler sched(farm);
    const std::uint64_t bytes = farm.geometry().pageBytes;
    const Time dma = transferTime(bytes, fc.io.channelGBps);
    ASSERT_EQ(dma, usToTime(32.0));
    auto op = [](nand::NandChip &) {
        return nand::OpResult{usToTime(10.0), 0.0};
    };
    sched.submitPlaneOp(0, 0, ssd::EnergyComponent::NandProgram, op, {},
                        bytes);
    sched.submitPlaneOp(0, 0, ssd::EnergyComponent::NandProgram, op, {},
                        bytes);
    // Pipelined: dma1 [0,32], op1 [32,42] with dma2 [32,64] behind the
    // latch, op2 [64,74]. Fully serialized this would be 84 us.
    EXPECT_EQ(sched.drain(), usToTime(74.0));
    EXPECT_LT(sched.makespan(), usToTime(84.0));
}

TEST(SchedulerTest, SharedChannelSerializesDma)
{
    // Two dies on one channel: die work overlaps, channel does not.
    ChipFarm farm(smallFarm(1, 2));
    CommandScheduler sched(farm);
    Time dma = transferTime(farm.geometry().pageBytes,
                            farm.config().io.channelGBps);
    sched.submitDma(0, farm.geometry().pageBytes);
    sched.submitDma(1, farm.geometry().pageBytes);
    EXPECT_EQ(sched.drain(), 2 * dma);
    EXPECT_EQ(sched.channelBusyTime(0), 2 * dma);
}

TEST(ComputeEngineTest, ProgramReadsOutResultPage)
{
    ComputeEngine eng(smallFarm(1, 2));
    Rng rng = Rng::seeded(5);
    BitVector data = test::randomVec(rng, eng.farm().geometry().pageBits());
    eng.farm().chip(1).programPageEsp({0, 0, 0, 3}, data,
                                      nand::EspParams{2.0});

    ColumnProgram prog;
    prog.die = 1;
    prog.plane = 0;
    prog.steps.push_back(ColumnStep{
        StepKind::PageRead,
        [](nand::NandChip &chip) {
            return chip.readPage({0, 0, 0, 3});
        },
        0, 0});
    BitVector out;
    bool complete = false;
    prog.onResult = [&out](BitVector page) { out = std::move(page); };
    prog.onComplete = [&complete] { complete = true; };

    OpStats stats;
    eng.submit(std::move(prog), &stats);
    Time makespan = eng.drain();

    EXPECT_EQ(out, data);
    EXPECT_TRUE(complete);
    EXPECT_EQ(stats.pageReads, 1u);
    EXPECT_EQ(stats.senses, 1u);
    EXPECT_EQ(stats.resultPages, 1u);
    // Sense then channel readout, nothing else on the timeline.
    Time dma = transferTime(eng.farm().geometry().pageBytes,
                            eng.farm().config().io.channelGBps);
    EXPECT_EQ(makespan, usToTime(22.5) + dma);
    EXPECT_GT(eng.energy().get(ssd::EnergyComponent::ChannelDma), 0.0);
}

TEST(ComputeEngineTest, ReplicatePageCopiesAcrossDies)
{
    ComputeEngine eng(smallFarm(2, 2));
    Rng rng = Rng::seeded(6);
    BitVector data = test::randomVec(rng, eng.farm().geometry().pageBits());
    eng.farm().chip(0).programPageEsp({0, 1, 0, 0}, data,
                                      nand::EspParams{2.0});

    OpStats stats;
    eng.replicatePage(0, {0, 1, 0, 0}, 3, {1, 2, 1, 4},
                      nand::EspParams{2.0}, &stats);
    eng.drain();

    eng.farm().chip(3).readPage({1, 2, 1, 4});
    EXPECT_EQ(eng.farm().chip(3).dataOut(1), data);
    EXPECT_EQ(stats.pageReads, 1u);
    EXPECT_EQ(stats.programs, 1u);
    // Channel out of die 0 (channel 0) and into die 3 (channel 1).
    EXPECT_GT(eng.channelBusyTime(0), 0u);
    EXPECT_GT(eng.channelBusyTime(1), 0u);
}

TEST(ComputeEngineTest, BroadcastSensesOnceAndFansOut)
{
    // Four channels x 1 die: the broadcast copies to three other dies
    // with exactly one source sense and one source readout; the
    // destination programs overlap across channels.
    ComputeEngine eng(smallFarm(4, 1));
    Rng rng = Rng::seeded(7);
    BitVector data = test::randomVec(rng, eng.farm().geometry().pageBits());
    eng.farm().chip(0).programPageEsp({0, 1, 0, 0}, data,
                                      nand::EspParams{2.0});

    std::vector<ComputeEngine::BroadcastTarget> targets;
    for (std::uint32_t die : {1u, 2u, 3u})
        targets.push_back({die, {0, 2, 0, 5}});
    OpStats stats;
    eng.broadcastPage(0, {0, 1, 0, 0}, targets, nand::EspParams{2.0},
                      &stats);
    Time broadcast_makespan = eng.drain();

    EXPECT_EQ(stats.pageReads, 1u);
    EXPECT_EQ(stats.programs, 3u);
    for (std::uint32_t die : {1u, 2u, 3u}) {
        eng.farm().chip(die).readPage({0, 2, 0, 5});
        EXPECT_EQ(eng.farm().chip(die).dataOut(0), data) << "die " << die;
    }

    // Reference: the page-by-page loop senses the source once per
    // copy and serializes on the source die; the broadcast fan-out
    // must beat it on a wide farm.
    ComputeEngine serial(smallFarm(4, 1));
    serial.farm().chip(0).programPageEsp({0, 1, 0, 0}, data,
                                         nand::EspParams{2.0});
    OpStats serial_stats;
    for (const auto &t : targets)
        serial.replicatePage(0, {0, 1, 0, 0}, t.die, t.addr,
                             nand::EspParams{2.0}, &serial_stats);
    Time serial_makespan = serial.drain();
    EXPECT_EQ(serial_stats.pageReads, 3u);
    EXPECT_LT(broadcast_makespan, serial_makespan);
}

TEST(ShardedOpTest, PartitionCountsProgramsPerDie)
{
    ShardedOp op;
    for (std::uint32_t die : {0u, 1u, 1u, 3u}) {
        ColumnProgram p;
        p.die = die;
        p.steps.push_back(ColumnStep{
            StepKind::Sense,
            [](nand::NandChip &) { return nand::OpResult{}; }, 0, 0});
        op.add(std::move(p));
    }
    EXPECT_EQ(op.partition(4), (std::vector<std::uint32_t>{1, 2, 0, 1}));
    EXPECT_EQ(op.diesTouched(4), 3u);
}

} // namespace
} // namespace fcos::engine

namespace fcos::core {
namespace {

TEST(MultiDieDriveTest, MultiChannelFcReadMatchesReference)
{
    FlashCosmosDrive::Config cfg;
    cfg.channels = 2;
    cfg.dies = 2;
    FlashCosmosDrive drive(cfg);
    EXPECT_EQ(drive.dieCount(), 4u);

    Rng rng = Rng::seeded(21);
    FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    std::size_t bits =
        cfg.geometry.pageBits() * drive.dieCount() * 3; // 12 pages
    BitVector a = test::randomVec(rng, bits);
    BitVector b = test::randomVec(rng, bits);
    BitVector c = test::randomVec(rng, bits);
    Expr ea = Expr::leaf(drive.fcWrite(a, group));
    Expr eb = Expr::leaf(drive.fcWrite(b, group));
    Expr ec = Expr::leaf(drive.fcWrite(c, group));

    FlashCosmosDrive::ReadStats stats;
    BitVector r = drive.fcRead(Expr::And({ea, eb, ec}), &stats);
    EXPECT_EQ(r, a & b & c);
    EXPECT_EQ(stats.planKind, MwsPlan::Kind::Mws);
    EXPECT_EQ(stats.resultPages, 12u);
    EXPECT_GT(stats.makespan, 0u);
    // All 4 dies computed; the sharded makespan must beat the serial
    // sum of the NAND work.
    EXPECT_LT(stats.makespan, stats.nandTime);
}

TEST(MultiDieDriveTest, FcReplicateTilesAcrossGroupColumns)
{
    FlashCosmosDrive::Config cfg;
    cfg.channels = 2;
    cfg.dies = 2;
    FlashCosmosDrive drive(cfg);

    Rng rng = Rng::seeded(22);
    std::uint64_t page_bits = cfg.geometry.pageBits();
    std::uint64_t pages = 8;
    std::size_t bits = page_bits * pages;

    FlashCosmosDrive::WriteOptions group;
    group.group = 7;
    BitVector a = test::randomVec(rng, bits);
    Expr ea = Expr::leaf(drive.fcWrite(a, group));

    // One-page mask vector, stored outside the group, then replicated
    // into it so Equation-1 co-location holds on every column.
    BitVector mask = test::randomVec(rng, page_bits);
    VectorId mask_id = drive.fcWrite(mask);
    FlashCosmosDrive::ReadStats rstats;
    VectorId tiled = drive.fcReplicate(mask_id, pages, group, &rstats);
    EXPECT_EQ(drive.vectorBits(tiled), bits);
    // Broadcast fan-out: one sense feeds every copy.
    EXPECT_EQ(rstats.pageReads, 1u);
    EXPECT_GT(rstats.makespan, 0u);

    // Reference: the mask page tiled across every page of `a`.
    BitVector tiled_ref(bits);
    for (std::uint64_t j = 0; j < pages; ++j)
        tiled_ref.paste(j * page_bits, mask);
    EXPECT_EQ(drive.readVector(tiled), tiled_ref);

    FlashCosmosDrive::ReadStats stats;
    BitVector r =
        drive.fcRead(Expr::And({ea, Expr::leaf(tiled)}), &stats);
    EXPECT_EQ(stats.planKind, MwsPlan::Kind::Mws);
    EXPECT_EQ(r, a & tiled_ref);
}

TEST(MultiDieDriveTest, WritesShardAcrossAllDies)
{
    FlashCosmosDrive::Config cfg;
    cfg.channels = 2;
    cfg.dies = 4;
    FlashCosmosDrive drive(cfg);
    Rng rng = Rng::seeded(23);
    std::size_t bits = cfg.geometry.pageBits() * 16;
    VectorId id = drive.fcWrite(test::randomVec(rng, bits));
    const auto &pages = drive.vectorPages(id);
    ASSERT_EQ(pages.size(), 16u);
    std::vector<bool> die_used(drive.dieCount(), false);
    for (const auto &p : pages)
        die_used[p.die] = true;
    for (std::uint32_t d = 0; d < drive.dieCount(); ++d)
        EXPECT_TRUE(die_used[d]) << "die " << d << " unused";
}

} // namespace
} // namespace fcos::core
