/**
 * @file
 * OrderedChunkStream: out-of-order column completions must reach the
 * consumer in strictly increasing page order, with the peak number of
 * buffered pages equal to the arrival skew — the invariant that makes
 * streamed (ResultSink) reads O(window) instead of O(result).
 */

#include <gtest/gtest.h>

#include <vector>

#include "engine/result_stream.h"

namespace fcos::engine {
namespace {

BitVector
pageOf(std::uint64_t tag)
{
    BitVector v(64, false);
    v.words()[0] = tag;
    return v;
}

TEST(OrderedChunkStreamTest, InOrderArrivalsEmitImmediately)
{
    std::vector<std::uint64_t> seen;
    OrderedChunkStream s(4, [&](std::uint64_t j, BitVector page) {
        EXPECT_EQ(page.words()[0], j);
        seen.push_back(j);
    });
    for (std::uint64_t j = 0; j < 4; ++j)
        s.push(j, pageOf(j));
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3}));
    EXPECT_EQ(s.peakBufferedPages(), 0u);
}

TEST(OrderedChunkStreamTest, OutOfOrderArrivalsReorder)
{
    std::vector<std::uint64_t> seen;
    OrderedChunkStream s(5, [&](std::uint64_t j, BitVector page) {
        EXPECT_EQ(page.words()[0], j);
        seen.push_back(j);
    });
    // Reverse arrival of a full window, then the unblocking page.
    s.push(4, pageOf(4));
    s.push(2, pageOf(2));
    s.push(3, pageOf(3));
    s.push(1, pageOf(1));
    EXPECT_TRUE(seen.empty());
    EXPECT_EQ(s.peakBufferedPages(), 4u);
    s.push(0, pageOf(0));
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(OrderedChunkStreamTest, HandlerAdaptersBindIndices)
{
    std::vector<std::uint64_t> seen;
    OrderedChunkStream s(3, [&](std::uint64_t j, BitVector) {
        seen.push_back(j);
    });
    auto h2 = s.handler(2);
    auto h0 = s.handler(0);
    auto h1 = s.handler(1);
    h2(pageOf(2));
    h0(pageOf(0));
    h1(pageOf(1));
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.emitted(), 3u);
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2}));
    EXPECT_EQ(s.peakBufferedPages(), 1u);
}

TEST(OrderedChunkStreamTest, PeakTracksWorstSkewNotTotal)
{
    // Interleaved skew of one page: peak must stay 1 regardless of
    // stream length.
    OrderedChunkStream s(100, [](std::uint64_t, BitVector) {});
    for (std::uint64_t j = 0; j + 1 < 100; j += 2) {
        s.push(j + 1, pageOf(j + 1));
        s.push(j, pageOf(j));
    }
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.peakBufferedPages(), 1u);
}

} // namespace
} // namespace fcos::engine
