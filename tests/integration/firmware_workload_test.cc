/**
 * @file
 * Firmware-level workload integration: a miniature BMI query through
 * the full stack (fc_write with placement -> planner -> MWS chains on
 * the dies -> timed result delivery), checking functional results and
 * timing-side invariants against each other.
 */

#include <gtest/gtest.h>

#include "core/firmware.h"
#include "util/rng.h"

namespace fcos {
namespace {

using core::Expr;
using core::FcFirmware;
using core::FlashCosmosDrive;

TEST(FirmwareWorkloadTest, MiniBitmapIndexEndToEnd)
{
    FlashCosmosDrive::Config drive_cfg;
    drive_cfg.dies = 4;
    drive_cfg.geometry.blocksPerPlane = 64;
    FlashCosmosDrive drive(drive_cfg);
    FcFirmware fw(drive, ssd::SsdConfig::table1());

    Rng rng = Rng::seeded(88);
    const std::size_t users = 4000;
    const int days = 16;

    FlashCosmosDrive::WriteOptions group;
    group.group = 1;

    std::vector<BitVector> activity;
    std::vector<Expr> leaves;
    Time writes_done = 0;
    for (int d = 0; d < days; ++d) {
        BitVector day(users);
        day.randomize(rng, 0.95);
        auto w = fw.fcWrite(day, group);
        leaves.push_back(Expr::leaf(w.id));
        activity.push_back(std::move(day));
        EXPECT_GE(w.completedAt, writes_done); // time moves forward
        writes_done = w.completedAt;
    }

    auto r = fw.fcRead(Expr::And(leaves));

    // Functional correctness.
    BitVector expected = activity[0];
    for (int d = 1; d < days; ++d)
        expected &= activity[d];
    EXPECT_EQ(r.data, expected);

    // Timing-side invariants: the query completes after the writes,
    // the command count matches the placement (16 operands over
    // 8-wordline strings = 2 MWS per page), and energy was booked for
    // programs and MWS separately.
    EXPECT_GT(r.completedAt, writes_done);
    EXPECT_EQ(r.stats.mwsCommands, 2 * r.stats.resultPages);
    const auto &meter = fw.sim().energy();
    EXPECT_GT(meter.get(ssd::EnergyComponent::NandProgram),
              meter.get(ssd::EnergyComponent::NandMws));
    EXPECT_GT(meter.get(ssd::EnergyComponent::ExternalLink), 0.0);

    // The result transfer out is far smaller than the operand data
    // shipped in: the in-flash processing value proposition.
    std::uint64_t operand_bytes =
        static_cast<std::uint64_t>(days) * ((users + 7) / 8);
    std::uint64_t result_bytes = (users + 7) / 8;
    EXPECT_LT(result_bytes * 8, operand_bytes);
}

TEST(FirmwareWorkloadTest, RepeatedQueriesReuseStoredOperands)
{
    FlashCosmosDrive::Config drive_cfg;
    drive_cfg.dies = 2;
    drive_cfg.geometry.blocksPerPlane = 32;
    FlashCosmosDrive drive(drive_cfg);
    FcFirmware fw(drive, ssd::SsdConfig::table1());

    Rng rng = Rng::seeded(89);
    FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    BitVector a(1000), b(1000), c(1000);
    a.randomize(rng);
    b.randomize(rng);
    c.randomize(rng);
    auto wa = fw.fcWrite(a, group);
    auto wb = fw.fcWrite(b, group);
    auto wc = fw.fcWrite(c, group);

    // Compute-many: different queries over the same stored vectors.
    auto r1 = fw.fcRead(Expr::And({Expr::leaf(wa.id), Expr::leaf(wb.id)}));
    auto r2 = fw.fcRead(Expr::And(
        {Expr::leaf(wa.id), Expr::leaf(wb.id), Expr::leaf(wc.id)}));
    auto r3 = fw.fcRead(
        Expr::Nand({Expr::leaf(wb.id), Expr::leaf(wc.id)}));

    EXPECT_EQ(r1.data, a & b);
    EXPECT_EQ(r2.data, a & b & c);
    EXPECT_EQ(r3.data, ~(b & c));
    EXPECT_GT(r3.completedAt, r2.completedAt);
    EXPECT_GT(r2.completedAt, r1.completedAt);
}

} // namespace
} // namespace fcos
