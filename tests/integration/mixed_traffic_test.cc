/**
 * @file
 * Mixed-traffic integration test: an open-loop stream of overlapped
 * read / write / compute requests through the admission queue, with
 * the resulting schedule pinned as a golden. The golden is the
 * determinism anchor for concurrent admission — this test also runs
 * in the threads/tsan tiers at 2 and 4 workers, where the identical
 * table proves the concurrent schedule is bit-identical at any worker
 * count.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/drive.h"
#include "tests/support/golden.h"
#include "tests/support/random_fixture.h"

namespace fcos::core {
namespace {

struct MixedRun
{
    std::string table;
    std::vector<BitVector> read_payloads;
    std::vector<BitVector> expected;
};

/** Deterministic mixed workload: 4 stored vectors spread over home
 *  columns, then 12 requests (reads, a conflicting write burst, and a
 *  compute) arriving on a fixed schedule. */
MixedRun
runMixedTraffic()
{
    FlashCosmosDrive::Config cfg;
    cfg.channels = 2;
    cfg.dies = 2;
    cfg.admissionDepth = 4;
    cfg.qosReadWeight = 2;
    cfg.qosWriteWeight = 1;
    cfg.qosComputeWeight = 1;
    FlashCosmosDrive drive(cfg);

    Rng rng = Rng::seeded(20260808);
    const std::uint32_t columns = 2 * 2 * 2; // channels * dies * planes

    // Operand pool: two co-located groups plus two independent
    // vectors on their own home columns.
    std::vector<BitVector> data;
    std::vector<VectorId> ids;
    for (int i = 0; i < 4; ++i) {
        data.push_back(test::randomVec(rng, 1000));
        FlashCosmosDrive::WriteOptions opts;
        opts.group = (i < 2) ? 1 : FlashCosmosDrive::kAutoGroup;
        opts.homeColumn = (i < 2) ? 0 : (i * 2) % columns;
        ids.push_back(drive.fcWrite(data[i], opts));
    }

    const Time t0 = drive.now();
    const Time tick = usToTime(20.0);
    MixedRun run;
    run.read_payloads.resize(6);
    std::vector<DenseCollectSink> sinks(6);
    std::vector<FlashCosmosDrive::ReadStats> stats(6);

    // 6 reads at staggered arrivals, round-robin over the pool.
    for (int i = 0; i < 6; ++i) {
        FlashCosmosDrive::RequestOptions ro;
        ro.arrival = t0 + tick * static_cast<std::uint64_t>(i);
        drive.submitReadVector(ids[i % 4], sinks[i], &stats[i], ro);
        run.expected.push_back(data[i % 4]);
    }
    // A write burst into group 1 (conflicts with the group-1 reads).
    std::vector<BitVector> fresh;
    for (int i = 0; i < 3; ++i) {
        fresh.push_back(test::randomVec(rng, 1000));
        FlashCosmosDrive::WriteOptions opts;
        opts.group = 1;
        FlashCosmosDrive::RequestOptions ro;
        ro.arrival = t0 + tick * static_cast<std::uint64_t>(i);
        drive.submitWrite(fresh[i], opts, ro);
    }
    // One compute over the (conflicted) group and one over the
    // independent vectors, plus a paced advance in between.
    FlashCosmosDrive::WriteOptions dst;
    dst.group = 1;
    FlashCosmosDrive::ReadStats cstats;
    FlashCosmosDrive::RequestOptions ro;
    ro.arrival = t0 + tick;
    FlashCosmosDrive::Submitted comp = drive.submitCompute(
        Expr::leaf(ids[0]) & Expr::leaf(ids[1]), dst, &cstats, ro);
    drive.advanceTo(t0 + tick * 3);
    drive.waitAll();

    // Verify every stream delivered its exact payload.
    for (int i = 0; i < 6; ++i)
        run.read_payloads[i] = sinks[i].take();
    BitVector and01 = drive.readVector(comp.vector);

    std::ostringstream os;
    os << "mixed traffic (2x2 dies, depth 4, qos 2:1:1)\n";
    os << "requests completed  " << drive.admission().completedCount()
       << "\n";
    os << "admitted read/write/compute  "
       << drive.admission().admittedCount(engine::RequestClass::Read)
       << "/"
       << drive.admission().admittedCount(engine::RequestClass::Write)
       << "/"
       << drive.admission().admittedCount(engine::RequestClass::Compute)
       << "\n";
    os << "clock end  " << drive.now() << "\n";
    os << "engine makespan  " << drive.engine().makespan() << "\n";
    char energy[32];
    std::snprintf(energy, sizeof energy, "%.6e",
                  drive.engine().totalEnergyJ());
    os << "energy J  " << energy << "\n";
    for (int i = 0; i < 6; ++i)
        os << "read[" << i << "] makespan  " << stats[i].makespan
           << "\n";
    os << "compute makespan  " << cstats.makespan << "\n";
    os << "and01 ok  " << (and01 == (data[0] & data[1]) ? 1 : 0)
       << "\n";
    run.table = os.str();
    return run;
}

TEST(MixedTrafficTest, PayloadsAreExactUnderConcurrency)
{
    MixedRun run = runMixedTraffic();
    ASSERT_EQ(run.read_payloads.size(), run.expected.size());
    for (std::size_t i = 0; i < run.expected.size(); ++i)
        EXPECT_EQ(run.read_payloads[i], run.expected[i])
            << "read " << i << " payload corrupted by concurrency";
}

TEST(MixedTrafficTest, ScheduleMatchesGolden)
{
    // Pins the full concurrent schedule: per-request makespans, the
    // end-of-run clock, and the energy ledger. Re-run at 2/4 workers
    // by the threads tier against the same golden.
    MixedRun run = runMixedTraffic();
    EXPECT_TRUE(
        test::MatchesGolden(run.table, "golden/mixed_traffic.txt"));
}

TEST(MixedTrafficTest, RunToRunEquality)
{
    MixedRun a = runMixedTraffic();
    MixedRun b = runMixedTraffic();
    EXPECT_EQ(a.table, b.table);
    for (std::size_t i = 0; i < a.read_payloads.size(); ++i)
        EXPECT_EQ(a.read_payloads[i], b.read_payloads[i]);
}

} // namespace
} // namespace fcos::core
