/**
 * @file
 * The Table-1 scale tier: full-geometry drives executing real work
 * inside CTest (label: scale; seconds-fast).
 *
 * Two certifications, both impossible before the sparse page store:
 *
 *  1. A FlashCosmosDrive with the paper's full SSD shape (8 channels x
 *     8 dies of Table-1 geometry: 2048 blocks/plane, 16-KiB pages)
 *     stores procedurally described vectors, executes fc_read through
 *     engine::ComputeEngine, returns bit-exact results, and its
 *     makespan / sense-count / energy land on pinned goldens.
 *
 *  2. The platform runner's functional mode executes a reduced
 *     Figure-7-shaped workload (pure-OR De Morgan, deep AND chains
 *     spanning sub-blocks, and the KCS fusion) at the full Table-1
 *     SsdConfig, bit-exact, with sense accounting equal to the
 *     timing-only driver and the timeline pinned as a golden.
 */

#include <gtest/gtest.h>

#include "core/drive.h"
#include "obs/obs.h"
#include "platforms/runner.h"
#include "tests/support/golden.h"
#include "tests/support/trace_check.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace fcos {
namespace {

using core::Expr;
using core::FlashCosmosDrive;

TEST(Table1ScaleTest, DriveComputesBitExactAtFullGeometry)
{
    FlashCosmosDrive::Config cfg;
    cfg.channels = 8;
    cfg.dies = 8; // per channel: the full 64-die Table-1 SSD
    cfg.geometry = nand::Geometry::table1();
    FlashCosmosDrive drive(cfg);
    ASSERT_EQ(drive.dieCount(), 64u);

    const std::uint64_t page_bits = cfg.geometry.pageBits();
    const std::uint32_t columns =
        cfg.channels * cfg.dies * cfg.geometry.planesPerDie;
    const std::uint64_t pages = 2 * columns; // 2 rows per plane column

    auto gen = [](std::uint64_t vec) {
        return [vec](std::uint64_t j) {
            return nand::PageImage::random(Rng::mix(101 + vec, j));
        };
    };
    const std::uint64_t group = 7;
    core::VectorId a =
        drive.fcWritePages(gen(0), pages, {group, false});
    core::VectorId b =
        drive.fcWritePages(gen(1), pages, {group, false});
    core::VectorId c =
        drive.fcWritePages(gen(2), pages, {group, true}); // inverted

    // AND(a, b, c) with c stored inverted: the planner senses {a, b}
    // as one normal string and folds c through an AND-merged inverse
    // command, so the chain exercises both command polarities.
    FlashCosmosDrive::ReadStats st;
    BitVector out = drive.fcRead(
        Expr::And({Expr::leaf(a), Expr::leaf(b), Expr::leaf(c)}), &st);

    BitVector expected(pages * page_bits);
    for (std::uint64_t j = 0; j < pages; ++j) {
        BitVector ref = gen(0)(j).materialize(page_bits);
        ref &= gen(1)(j).materialize(page_bits);
        ref &= gen(2)(j).materialize(page_bits);
        expected.paste(j * page_bits, ref);
    }
    ASSERT_EQ(out.size(), expected.size());
    EXPECT_EQ(out, expected);
    EXPECT_EQ(st.planKind, core::MwsPlan::Kind::Mws);

    // Pin the engine-backed timeline and energy at real geometry.
    TablePrinter t("Table-1 drive scale run (AND3, 128 plane columns)");
    t.setHeader({"metric", "value"});
    t.addRow({"pages per vector", std::to_string(pages)});
    t.addRow({"MWS commands", std::to_string(st.mwsCommands)});
    t.addRow({"senses", std::to_string(st.senses)});
    t.addRow({"result pages", std::to_string(st.resultPages)});
    t.addRow({"fcRead makespan", formatTime(st.makespan)});
    t.addRow({"NAND busy time", formatTime(st.nandTime)});
    t.addRow({"NAND energy", formatEnergy(st.nandEnergyJ)});
    t.addRow({"engine energy", formatEnergy(drive.engine().totalEnergyJ())});
    EXPECT_TRUE(
        test::MatchesGolden(t.toString(), "golden/table1_drive.txt"));
}

TEST(Table1ScaleTest, TraceAtFullGeometryIsValidAndWorkerInvariant)
{
    // The ISSUE's acceptance gate: a full-geometry run under tracing
    // produces schema-valid Chrome trace JSON whose digest is
    // bit-identical at 1, 2, and 4 host workers.
    auto traced_run = [](std::uint32_t workers) {
        obs::ScopedCapture cap(/*trace=*/true, /*metrics=*/false);
        FlashCosmosDrive::Config cfg;
        cfg.channels = 8;
        cfg.dies = 8;
        cfg.geometry = nand::Geometry::table1();
        cfg.workers = workers;
        FlashCosmosDrive drive(cfg);
        const std::uint64_t pages =
            2 * cfg.channels * cfg.dies * cfg.geometry.planesPerDie;
        auto gen = [](std::uint64_t vec) {
            return [vec](std::uint64_t j) {
                return nand::PageImage::random(Rng::mix(101 + vec, j));
            };
        };
        core::VectorId a = drive.fcWritePages(gen(0), pages, {7, false});
        core::VectorId b = drive.fcWritePages(gen(1), pages, {7, false});
        drive.fcRead(Expr::And({Expr::leaf(a), Expr::leaf(b)}));
        return std::pair<std::uint64_t, std::string>(cap.traceDigest(),
                                                     cap.traceJson());
    };

    auto [serial_digest, serial_json] = traced_run(1);
    ASSERT_FALSE(serial_json.empty());
    EXPECT_TRUE(test::IsValidChromeTrace(serial_json));
    for (std::uint32_t workers : {2u, 4u}) {
        SCOPED_TRACE(std::to_string(workers) + " workers");
        auto [digest, json] = traced_run(workers);
        EXPECT_EQ(digest, serial_digest);
        EXPECT_EQ(json == serial_json, true) << "trace JSON diverged";
    }
}

TEST(Table1ScaleTest, FunctionalFigureWorkloadAtTable1Geometry)
{
    const ssd::SsdConfig cfg = ssd::SsdConfig::table1();
    const plat::PlatformRunner runner(cfg);

    // One result row per plane across the full 256-plane SSD; the
    // three batches exercise the OR/De-Morgan path, an AND chain that
    // spans two sub-blocks, and the KCS fusion.
    const std::uint64_t stripe =
        static_cast<std::uint64_t>(cfg.geometry.pageBytes) *
        cfg.totalPlanes();
    wl::Workload w;
    w.name = "table1";
    w.paramName = "-";
    auto batch = [&](std::uint64_t and_ops, std::uint64_t or_ops) {
        wl::OpBatch b;
        b.andOperands = and_ops;
        b.orOperands = or_ops;
        b.operandBytes = stripe;
        b.resultToHost = true;
        b.hostPostProcess = false;
        return b;
    };
    w.batches = {batch(0, 3), batch(60, 0), batch(4, 2)};

    plat::PlatformRunner::FunctionalRun fr = runner.runFcFunctional(w, 5);
    ASSERT_GT(fr.result.size(), 0u);
    EXPECT_TRUE(fr.bitExact());

    // Sense accounting must equal the timing-only driver's.
    plat::RunResult timing =
        runner.run(plat::PlatformKind::FlashCosmos, w);
    EXPECT_EQ(fr.timing.senseOps, timing.senseOps);
    EXPECT_EQ(fr.timing.makespan, timing.makespan);

    TablePrinter t("Table-1 functional figure run (OR3 / AND60 / KCS)");
    t.setHeader({"metric", "value"});
    t.addRow({"result bits", std::to_string(fr.result.size())});
    t.addRow({"sense ops", std::to_string(fr.timing.senseOps)});
    t.addRow({"makespan", formatTime(fr.timing.makespan)});
    t.addRow({"plane busy", formatTime(fr.timing.planeBusy)});
    t.addRow({"channel busy", formatTime(fr.timing.channelBusy)});
    t.addRow({"external busy", formatTime(fr.timing.externalBusy)});
    t.addRow({"energy", formatEnergy(fr.timing.energyJ)});
    EXPECT_TRUE(test::MatchesGolden(t.toString(),
                                    "golden/table1_functional.txt"));
}

} // namespace
} // namespace fcos
