/**
 * @file
 * Cross-module integration tests: the full Flash-Cosmos story on one
 * stack — application data written through fc_write with ESP, computed
 * in flash under the worst-case error model, compared against host
 * computation, ParaBit, and the ISP accelerator.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/drive.h"
#include "isp/accelerator.h"
#include "parabit/parabit.h"
#include "platforms/runner.h"
#include "reliability/error_injector.h"
#include "util/rng.h"

namespace fcos {
namespace {

using core::Expr;
using core::FlashCosmosDrive;
using core::VectorId;

TEST(EndToEndTest, BitmapIndexQueryInFlash)
{
    // Miniature BMI: daily activity vectors for 2,000 users over 14
    // days; "active every day" = AND of all 14, then a bit-count.
    Rng rng = Rng::seeded(42);
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions day_group;
    day_group.group = 1;

    const std::size_t users = 2000;
    std::vector<BitVector> days;
    std::vector<Expr> leaves;
    for (int d = 0; d < 14; ++d) {
        BitVector day(users);
        day.randomize(rng, 0.9); // users are mostly active
        leaves.push_back(
            Expr::leaf(drive.fcWrite(day, day_group)));
        days.push_back(std::move(day));
    }

    FlashCosmosDrive::ReadStats stats;
    BitVector active = drive.fcRead(Expr::And(leaves), &stats);

    BitVector expected = days[0];
    for (int d = 1; d < 14; ++d)
        expected &= days[d];
    EXPECT_EQ(active, expected);
    EXPECT_EQ(active.popcount(), expected.popcount());
    EXPECT_EQ(stats.planKind, core::MwsPlan::Kind::Mws);
    // 14 operands over 8-wordline strings: 2 commands per column.
    EXPECT_EQ(stats.mwsCommands, 2 * stats.resultPages);
}

TEST(EndToEndTest, KcliqueStarInFlash)
{
    // Miniature KCS: adjacency rows of clique members AND-ed, then
    // OR-ed with the clique-membership vector — one fused command.
    Rng rng = Rng::seeded(43);
    FlashCosmosDrive drive;
    const std::size_t vertices = 512;

    FlashCosmosDrive::WriteOptions adj_group, clique_group;
    adj_group.group = 1;
    clique_group.group = 2;

    std::vector<BitVector> adj;
    std::vector<Expr> members;
    for (int k = 0; k < 4; ++k) {
        BitVector row(vertices);
        row.randomize(rng, 0.3);
        members.push_back(Expr::leaf(drive.fcWrite(row, adj_group)));
        adj.push_back(std::move(row));
    }
    BitVector clique(vertices);
    for (std::size_t v = 100; v < 104; ++v)
        clique.set(v, true);
    Expr clique_leaf = Expr::leaf(drive.fcWrite(clique, clique_group));

    FlashCosmosDrive::ReadStats stats;
    BitVector star =
        drive.fcRead(Expr::Or({Expr::And(members), clique_leaf}),
                     &stats);

    BitVector expected = adj[0] & adj[1] & adj[2] & adj[3];
    expected |= clique;
    EXPECT_EQ(star, expected);
    // The fusion: one MWS command per column (two strings).
    EXPECT_EQ(stats.mwsCommands, stats.resultPages);
}

TEST(EndToEndTest, ImageSegmentationInFlash)
{
    // Miniature IMS: Y/U/V membership masks AND-ed per color.
    Rng rng = Rng::seeded(44);
    FlashCosmosDrive drive;
    const std::size_t pixels = 40 * 30;
    FlashCosmosDrive::WriteOptions group;
    group.group = 5;

    BitVector y(pixels), u(pixels), v(pixels);
    y.randomize(rng, 0.6);
    u.randomize(rng, 0.6);
    v.randomize(rng, 0.6);
    Expr ey = Expr::leaf(drive.fcWrite(y, group));
    Expr eu = Expr::leaf(drive.fcWrite(u, group));
    Expr ev = Expr::leaf(drive.fcWrite(v, group));

    BitVector seg = drive.fcRead(Expr::And({ey, eu, ev}));
    EXPECT_EQ(seg, y & u & v);
}

TEST(EndToEndTest, WorstCaseConditionsStillExact)
{
    // The headline reliability claim: with ESP storage, in-flash
    // results are bit-exact even at 10K P/E cycles, 1-year retention,
    // worst-case patterns — conditions under which regular SLC storage
    // visibly corrupts ParaBit-style computation.
    rel::VthModel model;
    rel::OperatingCondition worst{10000, 12.0, false};
    rel::VthErrorInjector injector(model, worst);

    FlashCosmosDrive::Config cfg;
    nand::Geometry geom = nand::Geometry::tiny();
    geom.pageBytes = 2048;
    cfg.geometry = geom;
    FlashCosmosDrive drive(cfg);
    drive.setErrorInjector(&injector);

    Rng rng = Rng::seeded(45);
    FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    std::vector<BitVector> data;
    std::vector<Expr> leaves;
    for (int i = 0; i < 8; ++i) {
        BitVector v(64000);
        v.randomize(rng);
        leaves.push_back(Expr::leaf(drive.fcWrite(v, group)));
        data.push_back(std::move(v));
    }
    BitVector result = drive.fcRead(Expr::And(leaves));
    BitVector expected = data[0];
    for (int i = 1; i < 8; ++i)
        expected &= data[i];
    EXPECT_EQ(result, expected); // zero bit errors
    EXPECT_GT(injector.sensedBits(), 0u);
}

TEST(EndToEndTest, FlashResultMatchesIspAccelerator)
{
    // The ISP baseline computes the same answer from streamed pages.
    Rng rng = Rng::seeded(46);
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions group;
    group.group = 3;
    std::vector<BitVector> data;
    std::vector<Expr> leaves;
    std::vector<VectorId> ids;
    for (int i = 0; i < 5; ++i) {
        BitVector v(3000);
        v.randomize(rng);
        ids.push_back(drive.fcWrite(v, group));
        leaves.push_back(Expr::leaf(ids.back()));
        data.push_back(std::move(v));
    }
    BitVector in_flash = drive.fcRead(Expr::And(leaves));

    isp::IspAccelerator accel;
    accel.begin(isp::AccelOp::And, 3000);
    for (VectorId id : ids)
        accel.consume(drive.readVector(id));
    EXPECT_EQ(in_flash, accel.result());
}

TEST(EndToEndTest, TimingAndFunctionalPathsAgreeOnSenseCounts)
{
    // The analytic sense count the timing simulator charges must match
    // what the functional drive actually issues.
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    Rng rng = Rng::seeded(47);
    std::vector<Expr> leaves;
    for (int i = 0; i < 20; ++i) {
        BitVector v(256);
        v.randomize(rng);
        leaves.push_back(Expr::leaf(drive.fcWrite(v, group)));
    }
    FlashCosmosDrive::ReadStats stats;
    drive.fcRead(Expr::And(leaves), &stats);

    std::uint64_t analytic = plat::PlatformRunner::fcSensesPerRow(
        20, 0, drive.chip(0).geometry().wordlinesPerSubBlock, 4);
    EXPECT_EQ(stats.mwsCommands / stats.resultPages, analytic);
}

} // namespace
} // namespace fcos
