/**
 * @file
 * The beyond-DRAM scale tier (label: scale): Table-1 workloads whose
 * *dense result* would blow the test suite's 4-MiB footprint budget —
 * the regime the paper's full-capacity drive-level claims are about —
 * executed and verified entirely through the streamed ResultSink path.
 *
 * Two certifications:
 *
 *  1. A full Table-1 FlashCosmosDrive (8 channels x 8 dies) computes
 *     an 8-MiB AND result, verified page-by-page by the sparse
 *     comparator against the procedural PageImage fold while the
 *     re-ordering window (the read's only result-sized state) stays
 *     under the 4-MiB budget. Makespan / energy / stream digest are
 *     golden-pinned.
 *
 *  2. The platform runner's streamed functional mode executes a
 *     10-MiB-result figure workload (an AND batch plus a wide m=5
 *     mixed AND+OR batch — the planner-split shape) at the Table-1
 *     SsdConfig, verified by the same comparator fed from
 *     fcFunctionalExpectedPage, with the timeline pinned.
 */

#include <gtest/gtest.h>

#include "core/drive.h"
#include "core/result_sink.h"
#include "platforms/runner.h"
#include "tests/support/golden.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace fcos {
namespace {

using core::Expr;
using core::FlashCosmosDrive;

/** The suite's pinned memory budget (page_store_test pins the chip
 *  footprint against the same number). */
constexpr std::uint64_t kBudgetBytes = 4_MiB;

TEST(BeyondDramScaleTest, DriveStreamsAnEightMebibyteResult)
{
    FlashCosmosDrive::Config cfg;
    cfg.channels = 8;
    cfg.dies = 8;
    cfg.geometry = nand::Geometry::table1();
    FlashCosmosDrive drive(cfg);

    const std::uint32_t columns =
        cfg.channels * cfg.dies * cfg.geometry.planesPerDie;
    const std::uint64_t pages = 4 * columns; // 4 rows per plane column
    const std::uint64_t dense_bytes = pages * cfg.geometry.pageBytes;
    ASSERT_GT(dense_bytes, kBudgetBytes)
        << "the workload must not fit the dense budget";

    auto gen = [](std::uint64_t vec) {
        return [vec](std::uint64_t j) {
            return nand::PageImage::random(Rng::mix(7100 + vec, j));
        };
    };
    const std::uint64_t group = 3;
    core::VectorId a = drive.fcWritePages(gen(0), pages, {group, false});
    core::VectorId b = drive.fcWritePages(gen(1), pages, {group, false});
    core::VectorId c =
        drive.fcWritePages(gen(2), pages, {group, true}); // inverted

    // Streaming verification: the expected page is the procedural
    // image fold, materialized one page at a time — neither the result
    // nor the reference ever exists densely.
    core::SparseCompareSink cmp(
        [&gen](std::uint64_t j, std::uint64_t bits) {
            BitVector ref = gen(0)(j).materialize(bits);
            ref &= gen(1)(j).materialize(bits);
            ref &= gen(2)(j).materialize(bits);
            return ref;
        });
    core::DigestSink digest;
    core::TeeSink tee({&cmp, &digest});

    FlashCosmosDrive::ReadStats st;
    drive.fcRead(
        Expr::And({Expr::leaf(a), Expr::leaf(b), Expr::leaf(c)}), tee,
        &st);

    EXPECT_EQ(cmp.pagesChecked(), pages);
    EXPECT_EQ(cmp.mismatchedPages(), 0u);
    EXPECT_TRUE(cmp.allMatched());
    EXPECT_EQ(st.streamChunks, pages);
    EXPECT_EQ(st.planKind, core::MwsPlan::Kind::Mws);

    // The streamed read's peak result-side memory — the re-ordering
    // window plus the chunk in flight — stays under the budget the
    // dense result would have blown.
    const std::uint64_t peak_bytes =
        (st.streamPeakPages + 1) * cfg.geometry.pageBytes;
    EXPECT_LT(peak_bytes, kBudgetBytes)
        << st.streamPeakPages << " pages buffered";

    TablePrinter t("Beyond-DRAM drive read (AND3, 4 rows x 128 columns)");
    t.setHeader({"metric", "value"});
    t.addRow({"dense result size", formatBytes(dense_bytes)});
    t.addRow({"stream chunks", std::to_string(st.streamChunks)});
    t.addRow({"stream digest",
              std::to_string(digest.digest())});
    t.addRow({"MWS commands", std::to_string(st.mwsCommands)});
    t.addRow({"senses", std::to_string(st.senses)});
    t.addRow({"fcRead makespan", formatTime(st.makespan)});
    t.addRow({"NAND energy", formatEnergy(st.nandEnergyJ)});
    t.addRow(
        {"engine energy", formatEnergy(drive.engine().totalEnergyJ())});
    EXPECT_TRUE(
        test::MatchesGolden(t.toString(), "golden/beyond_dram_drive.txt"));
}

TEST(BeyondDramScaleTest, StreamedFunctionalWorkloadAtTable1Geometry)
{
    const ssd::SsdConfig cfg = ssd::SsdConfig::table1();
    const plat::PlatformRunner runner(cfg);

    // 20 result rows per plane: per channel slice that is 320 pages
    // (5 MiB) per batch — beyond the dense budget on its own. The
    // second batch is the wide mixed shape (m = 5 > the KCS fusion
    // budget) that exercises the planner's command splitting.
    const std::uint64_t stripe =
        static_cast<std::uint64_t>(cfg.geometry.pageBytes) *
        cfg.totalPlanes();
    wl::Workload w;
    w.name = "beyond-dram";
    w.paramName = "-";
    auto batch = [&](std::uint64_t and_ops, std::uint64_t or_ops) {
        wl::OpBatch b;
        b.andOperands = and_ops;
        b.orOperands = or_ops;
        b.operandBytes = 20 * stripe;
        b.resultToHost = true;
        b.hostPostProcess = false;
        return b;
    };
    w.batches = {batch(3, 0), batch(4, 5)};

    const std::uint64_t seed = 9;
    core::SparseCompareSink cmp(
        [&](std::uint64_t page, std::uint64_t bits) {
            BitVector ref = runner.fcFunctionalExpectedPage(w, seed, page);
            EXPECT_EQ(ref.size(), bits);
            return ref;
        });
    core::DigestSink digest;
    core::TeeSink tee({&cmp, &digest});

    plat::PlatformRunner::StreamStats ss;
    plat::RunResult timing = runner.runFcStreamed(w, seed, tee, &ss);

    const std::uint64_t dense_bytes =
        ss.chunks * cfg.geometry.pageBytes;
    EXPECT_GT(dense_bytes, kBudgetBytes);
    EXPECT_EQ(cmp.pagesChecked(), ss.chunks);
    EXPECT_EQ(cmp.mismatchedPages(), 0u);
    EXPECT_LT((ss.peakBufferedPages + 1) * cfg.geometry.pageBytes,
              kBudgetBytes);

    // The streamed run stays on the timing-only driver's sense count.
    plat::RunResult analytic =
        runner.run(plat::PlatformKind::FlashCosmos, w);
    EXPECT_EQ(timing.senseOps, analytic.senseOps);

    TablePrinter t("Beyond-DRAM streamed functional run (AND3 + m5 mix)");
    t.setHeader({"metric", "value"});
    t.addRow({"dense result size", formatBytes(dense_bytes)});
    t.addRow({"stream chunks", std::to_string(ss.chunks)});
    t.addRow({"stream digest", std::to_string(digest.digest())});
    t.addRow({"sense ops", std::to_string(timing.senseOps)});
    t.addRow({"makespan", formatTime(timing.makespan)});
    t.addRow({"plane busy", formatTime(timing.planeBusy)});
    t.addRow({"channel busy", formatTime(timing.channelBusy)});
    t.addRow({"external busy", formatTime(timing.externalBusy)});
    t.addRow({"energy", formatEnergy(timing.energyJ)});
    EXPECT_TRUE(test::MatchesGolden(
        t.toString(), "golden/beyond_dram_functional.txt"));
}

} // namespace
} // namespace fcos
