/**
 * @file
 * Determinism guarantees: the whole library promises "same seed =>
 * identical results" so every experiment is reproducible. These tests
 * pin that contract across the RNG core, the data randomizer, and the
 * command-codec fuzz generator (whose corpus is additionally pinned on
 * disk under tests/data/).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/drive.h"
#include "nand/command.h"
#include "obs/obs.h"
#include "reliability/error_injector.h"
#include "reliability/randomizer.h"
#include "reliability/vth_model.h"
#include "tests/support/command_corpus.h"
#include "tests/support/random_fixture.h"

namespace fcos {
namespace {

TEST(DeterminismTest, RngSameSeedSameStream)
{
    Rng a = Rng::seeded(2026);
    Rng b = Rng::seeded(2026);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64()) << "diverged at draw " << i;
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(a.nextDouble(), b.nextDouble());
        ASSERT_EQ(a.nextBounded(97), b.nextBounded(97));
        ASSERT_EQ(a.gaussian(0.0, 1.0), b.gaussian(0.0, 1.0));
    }
}

TEST(DeterminismTest, RngForkIsDeterministicAndDecorrelated)
{
    Rng parent1 = Rng::seeded(7);
    Rng parent2 = Rng::seeded(7);
    // Forking never draws from the parent, so fork order/count cannot
    // perturb sibling streams.
    parent1.nextU64();

    Rng c1 = parent1.fork(3);
    Rng c2 = parent2.fork(3);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(c1.nextU64(), c2.nextU64());

    Rng other = parent2.fork(4);
    EXPECT_NE(parent2.fork(3).nextU64(), other.nextU64());
}

TEST(DeterminismTest, BitVectorRandomizeSameSeedSameBits)
{
    Rng a = Rng::seeded(11), b = Rng::seeded(11);
    BitVector va(4096), vb(4096);
    va.randomize(a);
    vb.randomize(b);
    EXPECT_EQ(va, vb);
}

TEST(DeterminismTest, RandomizerKeystreamIsPureFunctionOfSeeds)
{
    rel::Randomizer r1(/*device_seed=*/0xABCDEF);
    rel::Randomizer r2(/*device_seed=*/0xABCDEF);
    for (std::uint64_t page = 0; page < 16; ++page)
        for (std::size_t w = 0; w < 8; ++w)
            ASSERT_EQ(r1.keystreamWord(page, w),
                      r2.keystreamWord(page, w));

    Rng rng = Rng::seeded(1);
    BitVector page = test::randomVec(rng, 2048);
    BitVector copy = page;
    r1.apply(page, 9);
    r2.apply(copy, 9);
    EXPECT_EQ(page, copy);

    rel::Randomizer other(/*device_seed=*/0xABCDF0);
    EXPECT_NE(other.keystreamWord(0, 0), r1.keystreamWord(0, 0));
}

TEST(DeterminismTest, FuzzCommandGeneratorIsSeedStable)
{
    // The codec fuzz suite draws its inputs from randomCommand; if two
    // equal-seeded generators ever diverged, fuzz failures would be
    // unreproducible.
    nand::Geometry geom = nand::Geometry::table1();
    Rng a = Rng::seeded(31), b = Rng::seeded(31);
    for (int i = 0; i < 200; ++i) {
        nand::MwsCommand ca = test::randomCommand(a, geom);
        nand::MwsCommand cb = test::randomCommand(b, geom);
        ASSERT_EQ(ca, cb) << "generator diverged at command " << i;
        ASSERT_EQ(nand::encodeMws(geom, ca), nand::encodeMws(geom, cb));
    }
}

/**
 * One full engine run: write operands, compute three expressions, and
 * return everything an experiment would record — result bits, command
 * counts, the event-driven timeline, and the unified energy ledger.
 */
struct EngineRun
{
    BitVector and_result, or_result, xor_result;
    std::uint64_t mwsCommands = 0;
    Time makespan = 0;
    Time queueTime = 0;
    std::vector<Time> dieBusy;
    std::vector<Time> planeBusy;
    std::vector<Time> channelBusy;
    std::uint64_t events = 0;
    double energyJ = 0.0;
};

EngineRun
runEngineWorkload(std::uint64_t seed, std::uint32_t channels,
                  std::uint32_t dies, std::uint32_t planes_per_die = 2,
                  std::uint32_t workers = 0)
{
    core::FlashCosmosDrive::Config cfg;
    cfg.channels = channels;
    cfg.dies = dies;
    cfg.geometry.planesPerDie = planes_per_die;
    cfg.workers = workers;
    core::FlashCosmosDrive drive(cfg);
    rel::VthModel model;
    rel::VthErrorInjector inj(model,
                              rel::OperatingCondition{3000, 3.0, false});
    drive.setErrorInjector(&inj);

    Rng rng = Rng::seeded(seed);
    core::FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    std::size_t bits = cfg.geometry.pageBits() * 8;
    core::Expr a = core::Expr::leaf(
        drive.fcWrite(test::randomVec(rng, bits), group));
    core::Expr b = core::Expr::leaf(
        drive.fcWrite(test::randomVec(rng, bits), group));
    core::Expr c = core::Expr::leaf(
        drive.fcWrite(test::randomVec(rng, bits), group));

    EngineRun run;
    core::FlashCosmosDrive::ReadStats stats;
    run.and_result = drive.fcRead(core::Expr::And({a, b, c}), &stats);
    run.mwsCommands = stats.mwsCommands;
    run.makespan = stats.makespan;
    run.or_result = drive.fcRead(core::Expr::Nand({a, b}));
    run.xor_result = drive.fcRead(core::Expr::Xor(b, c));

    const engine::ComputeEngine &eng = drive.engine();
    run.queueTime = eng.now();
    for (std::uint32_t d = 0; d < eng.farm().dieCount(); ++d) {
        run.dieBusy.push_back(eng.dieBusyTime(d));
        for (std::uint32_t p = 0; p < planes_per_die; ++p)
            run.planeBusy.push_back(eng.planeBusyTime(d, p));
    }
    for (std::uint32_t ch = 0; ch < eng.farm().channelCount(); ++ch)
        run.channelBusy.push_back(eng.channelBusyTime(ch));
    run.events = eng.scheduler().queue().executed();
    run.energyJ = eng.totalEnergyJ();
    return run;
}

TEST(DeterminismTest, EngineSameSeedSameDieCountSameEverything)
{
    // The multi-die engine promises: same seed + same farm shape =>
    // identical results, identical event-driven timeline, identical
    // energy ledger. Interleaving across dies must be a pure function
    // of the submitted work.
    for (auto [channels, dies] :
         {std::pair<std::uint32_t, std::uint32_t>{1, 2},
          {2, 2},
          {2, 4}}) {
        EngineRun r1 = runEngineWorkload(1234, channels, dies);
        EngineRun r2 = runEngineWorkload(1234, channels, dies);
        ASSERT_EQ(r1.and_result, r2.and_result);
        ASSERT_EQ(r1.or_result, r2.or_result);
        ASSERT_EQ(r1.xor_result, r2.xor_result);
        EXPECT_EQ(r1.mwsCommands, r2.mwsCommands);
        EXPECT_EQ(r1.makespan, r2.makespan);
        EXPECT_EQ(r1.queueTime, r2.queueTime);
        EXPECT_EQ(r1.dieBusy, r2.dieBusy);
        EXPECT_EQ(r1.planeBusy, r2.planeBusy);
        EXPECT_EQ(r1.channelBusy, r2.channelBusy);
        EXPECT_EQ(r1.events, r2.events);
        EXPECT_EQ(r1.energyJ, r2.energyJ);
    }
}

TEST(DeterminismTest, PlaneParallelEngineSameSeedSameTimeline)
{
    // Planes of one die execute concurrently; the interleaving must
    // still be a pure function of the submitted work. Four planes per
    // die stresses the per-plane facilities beyond the default two.
    for (std::uint32_t planes : {2u, 4u}) {
        EngineRun r1 = runEngineWorkload(4321, 2, 2, planes);
        EngineRun r2 = runEngineWorkload(4321, 2, 2, planes);
        ASSERT_EQ(r1.and_result, r2.and_result);
        ASSERT_EQ(r1.or_result, r2.or_result);
        ASSERT_EQ(r1.xor_result, r2.xor_result);
        EXPECT_EQ(r1.makespan, r2.makespan);
        EXPECT_EQ(r1.planeBusy, r2.planeBusy);
        EXPECT_EQ(r1.channelBusy, r2.channelBusy);
        EXPECT_EQ(r1.events, r2.events);
        EXPECT_EQ(r1.energyJ, r2.energyJ);
    }
}

TEST(DeterminismTest, EngineResultsStableAcrossDieCounts)
{
    // Bit results are also farm-shape independent (the sharding
    // contract); only the timeline changes with the layout.
    EngineRun narrow = runEngineWorkload(77, 1, 1);
    EngineRun wide = runEngineWorkload(77, 2, 4);
    EXPECT_EQ(narrow.and_result, wide.and_result);
    EXPECT_EQ(narrow.or_result, wide.or_result);
    EXPECT_EQ(narrow.xor_result, wide.xor_result);
}

TEST(DeterminismTest, EngineResultsStableAcrossPlaneCounts)
{
    // Per-plane sense counters make every plane's error sequence a
    // pure function of its own op order, so plane count cannot
    // perturb the computed bits either.
    EngineRun two = runEngineWorkload(78, 1, 2, 2);
    EngineRun four = runEngineWorkload(78, 1, 2, 4);
    EXPECT_EQ(two.and_result, four.and_result);
    EXPECT_EQ(two.or_result, four.or_result);
    EXPECT_EQ(two.xor_result, four.xor_result);
}

TEST(DeterminismTest, EngineWorkerCountCannotPerturbAnything)
{
    // The parallel scheduler's whole contract: host worker lanes are a
    // throughput knob, not a semantics knob. Every observable — result
    // bits, timeline, per-facility busy times, event count, the energy
    // ledger's FP accumulation — is bit-for-bit identical at 1, 2, 3,
    // and 4 workers.
    EngineRun serial = runEngineWorkload(909, 2, 4, 2, /*workers=*/1);
    for (std::uint32_t workers : {2u, 3u, 4u}) {
        SCOPED_TRACE(std::to_string(workers) + " workers");
        EngineRun run = runEngineWorkload(909, 2, 4, 2, workers);
        ASSERT_EQ(run.and_result, serial.and_result);
        ASSERT_EQ(run.or_result, serial.or_result);
        ASSERT_EQ(run.xor_result, serial.xor_result);
        EXPECT_EQ(run.mwsCommands, serial.mwsCommands);
        EXPECT_EQ(run.makespan, serial.makespan);
        EXPECT_EQ(run.queueTime, serial.queueTime);
        EXPECT_EQ(run.dieBusy, serial.dieBusy);
        EXPECT_EQ(run.planeBusy, serial.planeBusy);
        EXPECT_EQ(run.channelBusy, serial.channelBusy);
        EXPECT_EQ(run.events, serial.events);
        EXPECT_EQ(run.energyJ, serial.energyJ);
    }
}

TEST(DeterminismTest, TraceDigestWorkerCountInvariant)
{
    // The observability layer rides the same contract: spans are
    // recorded only in serial/commit-phase contexts, so the exported
    // trace JSON — certified by its FNV-1a digest — is bit-identical
    // at any worker count. (Queue-shape *metrics* are allowed to vary
    // with workers; that is why the capture is trace-only.)
    std::uint64_t serial_digest = 0;
    {
        obs::ScopedCapture cap(/*trace=*/true, /*metrics=*/false);
        runEngineWorkload(909, 2, 4, 2, /*workers=*/1);
        EXPECT_GT(cap.tracer().events(), 0u);
        serial_digest = cap.traceDigest();
    }
    for (std::uint32_t workers : {2u, 4u}) {
        SCOPED_TRACE(std::to_string(workers) + " workers");
        obs::ScopedCapture cap(/*trace=*/true, /*metrics=*/false);
        runEngineWorkload(909, 2, 4, 2, workers);
        EXPECT_EQ(cap.traceDigest(), serial_digest);
    }
}

/** One streamed read: chunk arrival order plus the stream digest. */
struct StreamedRead
{
    std::vector<std::uint64_t> order;
    std::uint64_t digest = 0;
    std::uint64_t denseDigest = 0; ///< digest of the dense return
    std::uint64_t peakPages = 0;
};

StreamedRead
runStreamedWorkload(std::uint64_t seed, std::uint32_t channels,
                    std::uint32_t dies, std::uint32_t planes_per_die,
                    std::uint32_t workers = 0)
{
    core::FlashCosmosDrive::Config cfg;
    cfg.channels = channels;
    cfg.dies = dies;
    cfg.geometry.planesPerDie = planes_per_die;
    cfg.workers = workers;
    core::FlashCosmosDrive drive(cfg);
    rel::VthModel model;
    rel::VthErrorInjector inj(model,
                              rel::OperatingCondition{3000, 3.0, false});
    drive.setErrorInjector(&inj);

    Rng rng = Rng::seeded(seed);
    core::FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    std::size_t bits = cfg.geometry.pageBits() * 8;
    core::Expr a = core::Expr::leaf(
        drive.fcWrite(test::randomVec(rng, bits), group));
    core::Expr b = core::Expr::leaf(
        drive.fcWrite(test::randomVec(rng, bits), group));
    core::Expr c = core::Expr::leaf(
        drive.fcWrite(test::randomVec(rng, bits), group));
    core::Expr expr = core::Expr::And({a, b, c});

    StreamedRead run;
    core::DigestSink digest;
    core::ChunkCallbackSink watcher(
        [&run](const core::ResultChunk &chunk) {
            run.order.push_back(chunk.index);
        });
    core::TeeSink tee({&digest, &watcher});
    core::FlashCosmosDrive::ReadStats st;
    drive.fcRead(expr, tee, &st);
    run.digest = digest.digest();
    run.peakPages = st.streamPeakPages;

    // Twin drive, same seed: the dense return must carry the same
    // bits the stream delivered.
    core::FlashCosmosDrive::Config cfg2 = cfg;
    core::FlashCosmosDrive twin(cfg2);
    rel::VthModel model2;
    rel::VthErrorInjector inj2(model2,
                               rel::OperatingCondition{3000, 3.0, false});
    twin.setErrorInjector(&inj2);
    Rng rng2 = Rng::seeded(seed);
    core::Expr ta = core::Expr::leaf(
        twin.fcWrite(test::randomVec(rng2, bits), group));
    core::Expr tb = core::Expr::leaf(
        twin.fcWrite(test::randomVec(rng2, bits), group));
    core::Expr tc = core::Expr::leaf(
        twin.fcWrite(test::randomVec(rng2, bits), group));
    run.denseDigest = core::DigestSink::digestOf(
        twin.fcRead(core::Expr::And({ta, tb, tc})),
        cfg.geometry.pageBits());
    return run;
}

TEST(DeterminismTest, StreamedChunkOrderAndDigestAreShapeInvariant)
{
    // The sink contract: chunks arrive in strictly increasing page
    // order, and the stream digest — payload *and* order — is
    // identical across 1/2/4-channel farms and 2/4-plane interleaves,
    // and equal to the dense read's digest on every shape.
    StreamedRead ref = runStreamedWorkload(515, 1, 2, 2);
    for (std::size_t j = 0; j < ref.order.size(); ++j)
        ASSERT_EQ(ref.order[j], j);
    EXPECT_EQ(ref.digest, ref.denseDigest);

    for (auto [channels, dies, planes] :
         {std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{
              2, 2, 2},
          {4, 2, 2},
          {2, 2, 4}}) {
        StreamedRead run =
            runStreamedWorkload(515, channels, dies, planes);
        SCOPED_TRACE(std::to_string(channels) + " channels, " +
                     std::to_string(dies) + " dies, " +
                     std::to_string(planes) + " planes");
        for (std::size_t j = 0; j < run.order.size(); ++j)
            ASSERT_EQ(run.order[j], j);
        EXPECT_EQ(run.digest, ref.digest);
        EXPECT_EQ(run.denseDigest, ref.digest);
    }
}

TEST(DeterminismTest, StreamedReadSameSeedSameStream)
{
    StreamedRead r1 = runStreamedWorkload(616, 2, 4, 2);
    StreamedRead r2 = runStreamedWorkload(616, 2, 4, 2);
    EXPECT_EQ(r1.order, r2.order);
    EXPECT_EQ(r1.digest, r2.digest);
    EXPECT_EQ(r1.peakPages, r2.peakPages);
}

TEST(DeterminismTest, StreamedReadWorkerCountInvariant)
{
    // Chunk delivery rides the same commit-phase order, so streaming
    // (order, digest, and the backpressure high-water mark) is also
    // worker-count invariant.
    StreamedRead serial = runStreamedWorkload(717, 2, 4, 2, 1);
    for (std::uint32_t workers : {2u, 4u}) {
        SCOPED_TRACE(std::to_string(workers) + " workers");
        StreamedRead run = runStreamedWorkload(717, 2, 4, 2, workers);
        EXPECT_EQ(run.order, serial.order);
        EXPECT_EQ(run.digest, serial.digest);
        EXPECT_EQ(run.denseDigest, serial.denseDigest);
        EXPECT_EQ(run.peakPages, serial.peakPages);
    }
}

TEST(DeterminismTest, PinnedCorpusDecodesToDistinctCommands)
{
    // Sanity on the on-disk corpus itself: entries are well-formed and
    // not accidental duplicates of one command.
    nand::Geometry geom = nand::Geometry::table1();
    auto corpus = test::loadCorpus("codec_corpus.txt");
    ASSERT_GE(corpus.size(), 32u);
    std::vector<nand::MwsCommand> decoded;
    for (const auto &bytes : corpus)
        decoded.push_back(nand::decodeMws(geom, bytes));
    int distinct = 0;
    for (std::size_t i = 1; i < decoded.size(); ++i)
        if (!(decoded[i] == decoded[0]))
            ++distinct;
    EXPECT_GT(distinct, 0);
}

} // namespace
} // namespace fcos
