/**
 * @file
 * Bit-serial arithmetic tests: in-flash synthesized addition and
 * comparison against host arithmetic (the Section 10 extension).
 */

#include <gtest/gtest.h>

#include "core/arith.h"
#include "util/log.h"
#include "util/rng.h"

namespace fcos::core {
namespace {

/** A drive roomy enough for arithmetic scratch vectors. */
FlashCosmosDrive::Config
arithConfig()
{
    FlashCosmosDrive::Config cfg;
    cfg.geometry.blocksPerPlane = 512;
    return cfg;
}

std::vector<std::uint64_t>
randomValues(Rng &rng, std::size_t n, unsigned width)
{
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng.nextBounded(1ULL << width);
    return v;
}

TEST(BitSerialTest, StoreLoadRoundTrip)
{
    FlashCosmosDrive drive(arithConfig());
    BitSerialEngine engine(drive);
    Rng rng = Rng::seeded(1);
    auto values = randomValues(rng, 100, 12);
    BitSlicedInt reg = engine.store(values, 12);
    EXPECT_EQ(reg.width(), 12u);
    EXPECT_EQ(engine.load(reg), values);
}

TEST(BitSerialTest, AdditionMatchesHost)
{
    FlashCosmosDrive drive(arithConfig());
    BitSerialEngine engine(drive);
    Rng rng = Rng::seeded(2);
    const unsigned width = 8;
    auto va = randomValues(rng, 200, width);
    auto vb = randomValues(rng, 200, width);
    auto [a, b] = engine.storePair(va, vb, width);

    BitSlicedInt sum = engine.add(a, b);
    auto result = engine.load(sum);
    for (std::size_t e = 0; e < va.size(); ++e)
        EXPECT_EQ(result[e], (va[e] + vb[e]) & 0xFF) << "element " << e;

    // All steps compiled to MWS/XOR chains (no fallback would have
    // produced warnings); the adder issues a bounded number of
    // in-flash programs: width sums + width-1 carries.
    EXPECT_EQ(engine.stats().programs, 2u * width - 1);
    EXPECT_GT(engine.stats().latchXors, 0u);
}

TEST(BitSerialTest, AdditionCarriesRippleFully)
{
    // 0xFF + 1 exercises the full carry chain.
    FlashCosmosDrive drive(arithConfig());
    BitSerialEngine engine(drive);
    std::vector<std::uint64_t> va(64, 0xFF), vb(64, 1);
    auto [a, b] = engine.storePair(va, vb, 8);
    auto result = engine.load(engine.add(a, b));
    for (auto r : result)
        EXPECT_EQ(r, 0u); // wraps modulo 256
}

TEST(BitSerialTest, SingleBitAddIsXor)
{
    FlashCosmosDrive drive(arithConfig());
    BitSerialEngine engine(drive);
    std::vector<std::uint64_t> va{0, 0, 1, 1}, vb{0, 1, 0, 1};
    auto [a, b] = engine.storePair(va, vb, 1);
    auto result = engine.load(engine.add(a, b));
    EXPECT_EQ(result, (std::vector<std::uint64_t>{0, 1, 1, 0}));
}

TEST(BitSerialTest, GreaterThanMatchesHost)
{
    FlashCosmosDrive drive(arithConfig());
    BitSerialEngine engine(drive);
    Rng rng = Rng::seeded(3);
    const unsigned width = 6;
    auto va = randomValues(rng, 150, width);
    auto vb = randomValues(rng, 150, width);
    auto [a, b] = engine.storePair(va, vb, width);

    VectorId gt = engine.greaterThan(a, b);
    BitVector mask = drive.readVector(gt);
    for (std::size_t e = 0; e < va.size(); ++e)
        EXPECT_EQ(mask.get(e), va[e] > vb[e]) << "element " << e;
}

TEST(BitSerialTest, GreaterThanWidthOne)
{
    FlashCosmosDrive drive(arithConfig());
    BitSerialEngine engine(drive);
    std::vector<std::uint64_t> va{0, 0, 1, 1}, vb{0, 1, 0, 1};
    auto [a, b] = engine.storePair(va, vb, 1);
    BitVector mask = drive.readVector(engine.greaterThan(a, b));
    EXPECT_EQ(mask.toString(), "0010");
}

TEST(BitSerialTest, ComputedVectorsAreReusableOperands)
{
    // fcCompute results feed later fcReads — the key property behind
    // multi-step synthesized functions.
    FlashCosmosDrive drive(arithConfig());
    Rng rng = Rng::seeded(4);
    FlashCosmosDrive::WriteOptions group;
    group.group = 9;
    BitVector x(500), y(500);
    x.randomize(rng);
    y.randomize(rng);
    VectorId vx = drive.fcWrite(x, group);
    VectorId vy = drive.fcWrite(y, group);

    FlashCosmosDrive::WriteOptions scratch;
    scratch.group = 10;
    VectorId v_and =
        drive.fcCompute(Expr::And({Expr::leaf(vx), Expr::leaf(vy)}),
                        scratch);
    EXPECT_EQ(drive.readVector(v_and), x & y);

    VectorId v_next = drive.fcCompute(
        Expr::Xor(Expr::leaf(v_and), Expr::leaf(vx)), scratch);
    EXPECT_EQ(drive.readVector(v_next), (x & y) ^ x);
}

TEST(BitSerialTest, FcComputeInvertedStorage)
{
    FlashCosmosDrive drive(arithConfig());
    Rng rng = Rng::seeded(5);
    FlashCosmosDrive::WriteOptions group;
    group.group = 20;
    BitVector x(300), y(300);
    x.randomize(rng);
    y.randomize(rng);
    VectorId vx = drive.fcWrite(x, group);
    VectorId vy = drive.fcWrite(y, group);

    FlashCosmosDrive::WriteOptions inv;
    inv.group = 21;
    inv.storeInverted = true;
    VectorId v =
        drive.fcCompute(Expr::Or({Expr::leaf(vx), Expr::leaf(vy)}),
                        inv);
    EXPECT_TRUE(drive.isStoredInverted(v));
    EXPECT_EQ(drive.readVector(v), x | y);
}

TEST(BitSerialTest, ChainedAdditionsAccumulate)
{
    // (a + b) + a — the output register of one in-flash addition is a
    // first-class operand of the next.
    FlashCosmosDrive drive(arithConfig());
    BitSerialEngine engine(drive);
    Rng rng = Rng::seeded(6);
    auto va = randomValues(rng, 64, 6);
    auto vb = randomValues(rng, 64, 6);
    auto [a, b] = engine.storePair(va, vb, 6);
    BitSlicedInt ab = engine.add(a, b);
    // Mixed placement (scratch + original groups) may route through
    // the fallback path; suppress its warnings for this test.
    bool prev = setQuietWarnings(true);
    BitSlicedInt aba = engine.add(ab, a);
    setQuietWarnings(prev);
    auto result = engine.load(aba);
    for (std::size_t e = 0; e < va.size(); ++e)
        EXPECT_EQ(result[e], (va[e] + vb[e] + va[e]) & 0x3F);
}

TEST(BitSerialTest, MismatchedWidthsPanic)
{
    FlashCosmosDrive drive(arithConfig());
    BitSerialEngine engine(drive);
    auto a = engine.store({1, 2, 3}, 4);
    auto b = engine.store({1, 2, 3}, 5);
    EXPECT_DEATH(engine.add(a, b), "widths");
}

} // namespace
} // namespace fcos::core
