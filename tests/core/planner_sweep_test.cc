/**
 * @file
 * Planner sweep: for AND/OR expressions of every operand count, the
 * compiled command count must match the analytic formula the timing
 * simulator charges (PlatformRunner::fcSensesPerRow) — keeping the
 * functional and timing paths honest against each other.
 */

#include <gtest/gtest.h>

#include "core/planner.h"
#include "platforms/runner.h"
#include "tests/support/scripted_storage.h"

namespace fcos::core {
namespace {

using test::ScriptedStorage;

class AndSweepTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(AndSweepTest, CommandCountMatchesAnalyticModel)
{
    const std::uint32_t operands = GetParam();
    const std::uint32_t string_len = 48;
    ScriptedStorage storage = ScriptedStorage::grouped(string_len, false);
    std::vector<Expr> leaves;
    for (std::uint32_t i = 0; i < operands; ++i)
        leaves.push_back(Expr::leaf(storage.add()));
    Planner planner(storage);
    MwsPlan plan = planner.plan(operands == 1 ? leaves[0]
                                              : Expr::And(leaves));
    ASSERT_EQ(plan.kind, MwsPlan::Kind::Mws);
    std::uint64_t analytic = plat::PlatformRunner::fcSensesPerRow(
        operands, 0, string_len, 4);
    EXPECT_EQ(plan.senseCount(), analytic) << operands << " operands";
}

TEST_P(AndSweepTest, InverseStoredOrMatchesAnalyticModel)
{
    const std::uint32_t operands = GetParam();
    if (operands < 2)
        GTEST_SKIP() << "OR needs two operands";
    const std::uint32_t string_len = 48;
    ScriptedStorage storage = ScriptedStorage::grouped(string_len, true);
    std::vector<Expr> leaves;
    for (std::uint32_t i = 0; i < operands; ++i)
        leaves.push_back(Expr::leaf(storage.add()));
    Planner planner(storage);
    MwsPlan plan = planner.plan(Expr::Or(leaves));
    ASSERT_EQ(plan.kind, MwsPlan::Kind::Mws);
    std::uint64_t analytic = plat::PlatformRunner::fcSensesPerRow(
        0, operands, string_len, 4);
    EXPECT_EQ(plan.senseCount(), analytic) << operands << " operands";
}

INSTANTIATE_TEST_SUITE_P(OperandCounts, AndSweepTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 9u, 16u,
                                           47u, 48u, 49u, 95u, 96u,
                                           97u, 192u, 1095u));

TEST(KcsPlanSweepTest, FusionMatchesAnalyticModelAcrossK)
{
    // KCS: AND(k co-located adjacency rows) OR clique vector.
    const std::uint32_t string_len = 48;
    for (std::uint32_t k : {2u, 8u, 16u, 32u, 48u, 49u, 64u, 96u}) {
        ScriptedStorage storage =
            ScriptedStorage::grouped(string_len, false);
        std::vector<Expr> adj;
        for (std::uint32_t i = 0; i < k; ++i)
            adj.push_back(Expr::leaf(storage.add()));
        // Clique vector explicitly placed in its own (far) string.
        VectorId clique = 1000000;
        storage.place(clique, /*key=*/999999, false);
        Planner planner(storage);
        MwsPlan plan = planner.plan(
            Expr::Or({Expr::And(adj), Expr::leaf(clique)}));
        ASSERT_EQ(plan.kind, MwsPlan::Kind::Mws) << "k=" << k;
        std::uint64_t analytic = plat::PlatformRunner::fcSensesPerRow(
            k, 1, string_len, 4);
        EXPECT_EQ(plan.senseCount(), analytic) << "k=" << k;
    }
}

} // namespace
} // namespace fcos::core
