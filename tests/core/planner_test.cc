/**
 * @file
 * Planner unit tests: expression -> MWS command-chain compilation
 * against a scripted storage layout.
 */

#include <gtest/gtest.h>

#include "core/plan.h"
#include "core/planner.h"
#include "tests/support/scripted_storage.h"

namespace fcos::core {
namespace {

class PlannerTest : public ::testing::Test
{
  protected:
    test::ScriptedStorage storage;

    MwsPlan plan(const Expr &e)
    {
        Planner p(storage);
        return p.plan(e);
    }
};

TEST_F(PlannerTest, SingleLeafPlainIsOneNormalCommand)
{
    storage.place(0, 1, false);
    MwsPlan p = plan(Expr::leaf(0));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 1u);
    EXPECT_FALSE(p.commands[0].inverse);
    ASSERT_EQ(p.commands[0].strings.size(), 1u);
    EXPECT_EQ(p.commands[0].strings[0].members.size(), 1u);
}

TEST_F(PlannerTest, SingleLeafInvertedSensesInverse)
{
    storage.place(0, 1, true);
    MwsPlan p = plan(Expr::leaf(0));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 1u);
    EXPECT_TRUE(p.commands[0].inverse);
}

TEST_F(PlannerTest, AndOfColocatedPlainIsOneIntraBlockMws)
{
    for (VectorId v = 0; v < 10; ++v)
        storage.place(v, /*key=*/7, false);
    std::vector<Expr> leaves;
    for (VectorId v = 0; v < 10; ++v)
        leaves.push_back(Expr::leaf(v));
    MwsPlan p = plan(Expr::And(leaves));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 1u);
    EXPECT_FALSE(p.commands[0].inverse);
    ASSERT_EQ(p.commands[0].strings.size(), 1u);
    EXPECT_EQ(p.commands[0].strings[0].members.size(), 10u);
}

TEST_F(PlannerTest, AndAcrossTwoStringsAccumulatesTwoCommands)
{
    // 96 operands spanning two sub-block chains (Section 6.1:
    // "accumulate the results of multiple intra-block MWS").
    for (VectorId v = 0; v < 96; ++v)
        storage.place(v, v / 48, false);
    std::vector<Expr> leaves;
    for (VectorId v = 0; v < 96; ++v)
        leaves.push_back(Expr::leaf(v));
    MwsPlan p = plan(Expr::And(leaves));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 2u);
    EXPECT_EQ(p.commands[0].merge, MergeMode::Copy);
    EXPECT_EQ(p.commands[1].merge, MergeMode::And);
    for (const auto &c : p.commands) {
        ASSERT_EQ(c.strings.size(), 1u);
        EXPECT_EQ(c.strings[0].members.size(), 48u);
    }
}

TEST_F(PlannerTest, OrOfInverseStoredIsSingleInverseMws)
{
    // Section 6.1: OR of inverse-stored co-located operands is one
    // inverse intra-block MWS via De Morgan.
    for (VectorId v = 0; v < 20; ++v)
        storage.place(v, 3, true);
    std::vector<Expr> leaves;
    for (VectorId v = 0; v < 20; ++v)
        leaves.push_back(Expr::leaf(v));
    MwsPlan p = plan(Expr::Or(leaves));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 1u);
    EXPECT_TRUE(p.commands[0].inverse);
    ASSERT_EQ(p.commands[0].strings.size(), 1u);
    EXPECT_EQ(p.commands[0].strings[0].members.size(), 20u);
}

TEST_F(PlannerTest, OrOfPlainLeavesUsesInterBlockStrings)
{
    for (VectorId v = 0; v < 3; ++v)
        storage.place(v, 10 + v, false);
    MwsPlan p =
        plan(Expr::Or({Expr::leaf(0), Expr::leaf(1), Expr::leaf(2)}));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 1u);
    EXPECT_FALSE(p.commands[0].inverse);
    EXPECT_EQ(p.commands[0].strings.size(), 3u);
}

TEST_F(PlannerTest, WideOrOfPlainLeavesChainsWithOrMerge)
{
    // 9 plain singleton strings -> ceil(9/4) = 3 commands, OR-merged.
    std::vector<Expr> leaves;
    for (VectorId v = 0; v < 9; ++v) {
        storage.place(v, 100 + v, false);
        leaves.push_back(Expr::leaf(v));
    }
    MwsPlan p = plan(Expr::Or(leaves));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 3u);
    EXPECT_EQ(p.commands[0].merge, MergeMode::Copy);
    EXPECT_EQ(p.commands[1].merge, MergeMode::Or);
    EXPECT_EQ(p.commands[2].merge, MergeMode::Or);
}

TEST_F(PlannerTest, Figure16ExpressionTakesTwoCommands)
{
    // {A1 + (B1 B2 B3 B4)} (C1+C3) (D2+D4), with C/D inverse-stored.
    storage.place(0, 0, false); // A1
    for (VectorId v = 1; v <= 4; ++v)
        storage.place(v, 1, false); // B1..B4 co-located
    storage.place(5, 2, true);      // C1
    storage.place(6, 2, true);      // C3
    storage.place(7, 3, true);      // D2
    storage.place(8, 3, true);      // D4

    Expr expr = Expr::And(
        {Expr::Or({Expr::leaf(0),
                   Expr::And({Expr::leaf(1), Expr::leaf(2), Expr::leaf(3),
                              Expr::leaf(4)})}),
         Expr::Or({Expr::leaf(5), Expr::leaf(6)}),
         Expr::Or({Expr::leaf(7), Expr::leaf(8)})});

    MwsPlan p = plan(expr);
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 2u);

    // One inverse command carrying both OR factors as strings, and one
    // normal command with the A1 + B-product strings.
    int inverse_cmds = 0, normal_cmds = 0;
    for (const auto &c : p.commands) {
        if (c.inverse) {
            ++inverse_cmds;
            EXPECT_EQ(c.strings.size(), 2u);
        } else {
            ++normal_cmds;
            ASSERT_EQ(c.strings.size(), 2u);
        }
    }
    EXPECT_EQ(inverse_cmds, 1);
    EXPECT_EQ(normal_cmds, 1);
}

TEST_F(PlannerTest, NandOfColocatedPlainIsSingleInverseCommand)
{
    for (VectorId v = 0; v < 5; ++v)
        storage.place(v, 4, false);
    std::vector<Expr> leaves;
    for (VectorId v = 0; v < 5; ++v)
        leaves.push_back(Expr::leaf(v));
    MwsPlan p = plan(Expr::Nand(leaves));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 1u);
    EXPECT_TRUE(p.commands[0].inverse);
    EXPECT_FALSE(p.finalInvert);
}

TEST_F(PlannerTest, NorOfPlainLeavesIsSingleInverseCommand)
{
    for (VectorId v = 0; v < 3; ++v)
        storage.place(v, 20 + v, false);
    MwsPlan p =
        plan(Expr::Nor({Expr::leaf(0), Expr::leaf(1), Expr::leaf(2)}));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    // NOR = NOT(OR): the single inter-block command flips to inverse.
    ASSERT_EQ(p.commands.size(), 1u);
    EXPECT_TRUE(p.commands[0].inverse);
    EXPECT_EQ(p.commands[0].strings.size(), 3u);
}

TEST_F(PlannerTest, XorOfTwoLeavesUsesLatchXor)
{
    storage.place(0, 0, false);
    storage.place(1, 1, false);
    MwsPlan p = plan(Expr::Xor(Expr::leaf(0), Expr::leaf(1)));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Xor);
    EXPECT_EQ(p.xorMembers.size(), 2u);
    EXPECT_FALSE(p.xorInvert);

    MwsPlan q = plan(Expr::Xnor(Expr::leaf(0), Expr::leaf(1)));
    ASSERT_EQ(q.kind, MwsPlan::Kind::Xor);
    EXPECT_TRUE(q.xorInvert);

    MwsPlan r = plan(Expr::Not(Expr::Xor(Expr::leaf(0), Expr::leaf(1))));
    ASSERT_EQ(r.kind, MwsPlan::Kind::Xor);
    EXPECT_TRUE(r.xorInvert);
}

TEST_F(PlannerTest, NestedXorChainsFlatten)
{
    for (VectorId v = 0; v < 4; ++v)
        storage.place(v, v, false);
    // ((a ^ b) ^ (c ^ d)) -> one 4-member chain, no parity.
    MwsPlan p = plan(
        Expr::Xor(Expr::Xor(Expr::leaf(0), Expr::leaf(1)),
                  Expr::Xor(Expr::leaf(2), Expr::leaf(3))));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Xor);
    EXPECT_EQ(p.xorMembers.size(), 4u);
    EXPECT_FALSE(p.xorInvert);

    // XNOR nesting and negated literals accumulate parity.
    MwsPlan q = plan(Expr::Xnor(
        Expr::Xor(Expr::leaf(0), Expr::Not(Expr::leaf(1))),
        Expr::leaf(2)));
    ASSERT_EQ(q.kind, MwsPlan::Kind::Xor);
    EXPECT_EQ(q.xorMembers.size(), 3u);
    EXPECT_FALSE(q.xorInvert); // XNOR + one negation cancel

    // A non-literal XOR member falls back.
    MwsPlan r = plan(Expr::Xor(
        Expr::And({Expr::leaf(0), Expr::leaf(1)}), Expr::leaf(2)));
    EXPECT_EQ(r.kind, MwsPlan::Kind::Fallback);
}

TEST_F(PlannerTest, KcsFusionAndGroupPlusOrLeafInOneCommand)
{
    // AND of co-located adjacency vectors OR'd with a clique vector in
    // another block: a single two-string command (Section 7, KCS).
    for (VectorId v = 0; v < 8; ++v)
        storage.place(v, 5, false);
    storage.place(8, 6, false); // clique vector, different block
    std::vector<Expr> adj;
    for (VectorId v = 0; v < 8; ++v)
        adj.push_back(Expr::leaf(v));
    MwsPlan p = plan(Expr::Or({Expr::And(adj), Expr::leaf(8)}));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 1u);
    EXPECT_EQ(p.commands[0].strings.size(), 2u);
}

TEST_F(PlannerTest, DeepAndChainFollowedByOrMerge)
{
    // (AND of 96 across two strings) OR clique: AND-chain first, then
    // an OR-merge command (cannot fold into the multi-command chain).
    for (VectorId v = 0; v < 96; ++v)
        storage.place(v, v / 48, false);
    storage.place(96, 9, false);
    std::vector<Expr> adj;
    for (VectorId v = 0; v < 96; ++v)
        adj.push_back(Expr::leaf(v));
    MwsPlan p = plan(Expr::Or({Expr::And(adj), Expr::leaf(96)}));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 3u);
    EXPECT_EQ(p.commands[0].merge, MergeMode::Copy);
    EXPECT_EQ(p.commands[1].merge, MergeMode::And);
    EXPECT_EQ(p.commands[2].merge, MergeMode::Or);
}

TEST_F(PlannerTest, TwoDeepChildrenFallBack)
{
    // Two multi-command subexpressions cannot share the one latch
    // accumulator.
    for (VectorId v = 0; v < 96; ++v)
        storage.place(v, v / 48, false);
    for (VectorId v = 96; v < 192; ++v)
        storage.place(v, 10 + (v - 96) / 48, false);
    std::vector<Expr> a, b;
    for (VectorId v = 0; v < 96; ++v)
        a.push_back(Expr::leaf(v));
    for (VectorId v = 96; v < 192; ++v)
        b.push_back(Expr::leaf(v));
    MwsPlan p = plan(Expr::Or({Expr::And(a), Expr::And(b)}));
    EXPECT_EQ(p.kind, MwsPlan::Kind::Fallback);
    EXPECT_FALSE(p.fallbackReason.empty());
}

TEST_F(PlannerTest, MixedPolarityAndUsesInversePool)
{
    // AND(a, NOT b) with both plain-stored: NOT b realizes in the
    // inverse pool; a stays a normal intra-block string.
    storage.place(0, 0, false);
    storage.place(1, 1, false);
    MwsPlan p =
        plan(Expr::And({Expr::leaf(0), Expr::Not(Expr::leaf(1))}));
    ASSERT_EQ(p.kind, MwsPlan::Kind::Mws);
    ASSERT_EQ(p.commands.size(), 2u);
}

TEST_F(PlannerTest, SenseCountMatchesCommands)
{
    for (VectorId v = 0; v < 4; ++v)
        storage.place(v, 0, false);
    std::vector<Expr> leaves;
    for (VectorId v = 0; v < 4; ++v)
        leaves.push_back(Expr::leaf(v));
    MwsPlan p = plan(Expr::And(leaves));
    EXPECT_EQ(p.senseCount(), 1u);
}

} // namespace
} // namespace fcos::core
