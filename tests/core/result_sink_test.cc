/**
 * @file
 * ResultSink backends and the dense-vs-streamed read certification.
 *
 * The unit half pins each sink's contract (dense collection with a
 * partial tail, order-sensitive digests, popcount folds, the sparse
 * comparator, tee fan-out). The drive half certifies the tentpole
 * claim: over a corpus of expression shapes (AND / OR De Morgan /
 * wide OR / NAND / XOR / KCS fusion / the serial-read fallback), a
 * streamed fcRead on one drive delivers bit-exactly the payload the
 * dense BitVector API returns on an identically seeded twin drive,
 * with identical stats, makespan, and energy — with the V_TH error
 * model attached, so the error-seed path is covered too.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/drive.h"
#include "core/result_sink.h"
#include "reliability/error_injector.h"
#include "reliability/vth_model.h"
#include "tests/support/random_fixture.h"

namespace fcos::core {
namespace {

BitVector
patternVec(std::size_t bits, std::uint64_t seed)
{
    Rng rng = Rng::seeded(seed);
    return test::randomVec(rng, bits);
}

ResultChunk
chunkOf(std::uint64_t index, std::uint64_t page_bits,
        std::uint64_t bits, const BitVector &page)
{
    return ResultChunk{index, index * page_bits, bits, page};
}

TEST(ResultSinkTest, DenseCollectReassemblesWithPartialTail)
{
    const std::uint64_t page_bits = 64;
    BitVector v = patternVec(150, 7); // 2 full pages + 22-bit tail
    DenseCollectSink sink;
    sink.begin(StreamShape{3, page_bits, v.size()});
    for (std::uint64_t j = 0; j < 3; ++j) {
        std::uint64_t len = std::min<std::uint64_t>(
            page_bits, v.size() - j * page_bits);
        BitVector page(page_bits, true); // padding must not leak
        page.paste(0, v.slice(j * page_bits, len));
        sink.consume(chunkOf(j, page_bits, len, page));
    }
    sink.end();
    EXPECT_EQ(sink.result(), v);
}

TEST(ResultSinkTest, DigestIsOrderAndContentSensitive)
{
    const std::uint64_t page_bits = 64;
    BitVector a = patternVec(128, 1);
    BitVector b = patternVec(128, 2);
    EXPECT_EQ(DigestSink::digestOf(a, page_bits),
              DigestSink::digestOf(a, page_bits));
    EXPECT_NE(DigestSink::digestOf(a, page_bits),
              DigestSink::digestOf(b, page_bits));

    // Swapping two chunks changes the digest (order sensitivity).
    BitVector p0 = a.slice(0, 64), p1 = a.slice(64, 64);
    DigestSink in_order, swapped;
    in_order.consume(chunkOf(0, page_bits, 64, p0));
    in_order.consume(chunkOf(1, page_bits, 64, p1));
    swapped.consume(chunkOf(0, page_bits, 64, p1));
    swapped.consume(chunkOf(1, page_bits, 64, p0));
    EXPECT_NE(in_order.digest(), swapped.digest());
    EXPECT_EQ(in_order.digest(), DigestSink::digestOf(a, page_bits));

    // Padding beyond the valid bits must not affect the digest.
    BitVector padded(page_bits, true);
    padded.paste(0, a.slice(0, 22));
    BitVector zeros(page_bits, false);
    zeros.paste(0, a.slice(0, 22));
    DigestSink d1, d2;
    d1.consume(chunkOf(0, page_bits, 22, padded));
    d2.consume(chunkOf(0, page_bits, 22, zeros));
    EXPECT_EQ(d1.digest(), d2.digest());
}

TEST(ResultSinkTest, PopcountFoldsValidBitsOnly)
{
    const std::uint64_t page_bits = 64;
    BitVector v = patternVec(100, 3);
    PopcountSink sink;
    BitVector p0 = v.slice(0, 64);
    BitVector p1(page_bits, true); // tail padding is all-ones
    p1.paste(0, v.slice(64, 36));
    sink.consume(chunkOf(0, page_bits, 64, p0));
    sink.consume(chunkOf(1, page_bits, 36, p1));
    EXPECT_EQ(sink.bits(), 100u);
    EXPECT_EQ(sink.ones(), v.popcount());
}

TEST(ResultSinkTest, SparseCompareFlagsTheFirstMismatch)
{
    const std::uint64_t page_bits = 64;
    auto gen = [](std::uint64_t j) {
        return nand::PageImage::random(Rng::mix(17, j));
    };
    SparseCompareSink sink = SparseCompareSink::fromImages(gen);
    sink.begin(StreamShape{3, page_bits, 3 * page_bits});
    for (std::uint64_t j = 0; j < 3; ++j) {
        BitVector page = gen(j).materialize(page_bits);
        if (j == 1)
            page.set(5, !page.get(5)); // inject one wrong bit
        sink.consume(chunkOf(j, page_bits, page_bits, page));
    }
    sink.end();
    EXPECT_EQ(sink.pagesChecked(), 3u);
    EXPECT_EQ(sink.mismatchedPages(), 1u);
    EXPECT_EQ(sink.firstMismatch(), 1u);
    EXPECT_FALSE(sink.allMatched());
}

TEST(ResultSinkTest, TeeFansOutToEverySink)
{
    const std::uint64_t page_bits = 64;
    BitVector v = patternVec(128, 9);
    DenseCollectSink dense;
    DigestSink digest;
    PopcountSink pop;
    TeeSink tee({&dense, &digest, &pop});
    tee.begin(StreamShape{2, page_bits, v.size()});
    for (std::uint64_t j = 0; j < 2; ++j) {
        BitVector page = v.slice(j * page_bits, page_bits);
        tee.consume(chunkOf(j, page_bits, page_bits, page));
    }
    tee.end();
    EXPECT_EQ(dense.result(), v);
    EXPECT_EQ(digest.digest(), DigestSink::digestOf(v, page_bits));
    EXPECT_EQ(pop.ones(), v.popcount());
}

// ---------------------------------------------------------------------
// Dense vs streamed drive reads.

/** A drive with its own attached error injector, so twin instances
 *  draw identical (page, sense) error seeds independently. */
struct InjectedDrive
{
    rel::VthModel model;
    rel::VthErrorInjector injector;
    FlashCosmosDrive drive;

    explicit InjectedDrive(const FlashCosmosDrive::Config &cfg)
        : injector(model, rel::OperatingCondition{3000, 3.0, false}),
          drive(cfg)
    {
        drive.setErrorInjector(&injector);
    }
};

/** The expression corpus: built identically on every twin drive. */
struct Corpus
{
    std::vector<Expr> exprs;
    std::vector<const char *> names;
    VectorId plain_a = 0; ///< for readVector checks
};

Corpus
buildCorpus(FlashCosmosDrive &drive, std::size_t bits)
{
    Corpus c;
    FlashCosmosDrive::WriteOptions plain;
    plain.group = 1;
    FlashCosmosDrive::WriteOptions inv;
    inv.group = 2;
    inv.storeInverted = true;

    Expr a = Expr::leaf(drive.fcWrite(patternVec(bits, 100), plain));
    Expr b = Expr::leaf(drive.fcWrite(patternVec(bits, 101), plain));
    Expr e = Expr::leaf(drive.fcWrite(patternVec(bits, 102), plain));
    c.plain_a = a.id();

    std::vector<Expr> ors;
    for (std::uint64_t i = 0; i < 12; ++i)
        ors.push_back(Expr::leaf(
            drive.fcWrite(patternVec(bits, 200 + i), inv)));

    // KCS fusion: AND group in group 1, the OR rider in its own group.
    FlashCosmosDrive::WriteOptions rider;
    rider.group = 3;
    Expr clique = Expr::leaf(drive.fcWrite(patternVec(bits, 300), rider));

    // Two deep AND chains (each spans sub-blocks) cannot share the one
    // latch accumulator: the planner falls back to serial reads.
    FlashCosmosDrive::WriteOptions g4, g5;
    g4.group = 4;
    g5.group = 5;
    std::vector<Expr> deep1, deep2;
    for (std::uint64_t i = 0; i < 12; ++i) {
        deep1.push_back(Expr::leaf(
            drive.fcWrite(patternVec(bits, 400 + i), g4)));
        deep2.push_back(Expr::leaf(
            drive.fcWrite(patternVec(bits, 500 + i), g5)));
    }

    c.exprs = {
        Expr::And({a, b, e}),
        Expr::Or({ors[0], ors[1], ors[2]}),
        Expr::Or(std::vector<Expr>(ors.begin(), ors.end())),
        Expr::Nand({a, b}),
        Expr::Xor(b, e),
        Expr::Or({Expr::And({a, b}), clique}),
        Expr::Or({Expr::And(deep1), Expr::And(deep2)}), // fallback
    };
    c.names = {"AND3", "OR3", "OR12", "NAND2", "XOR2", "KCS", "FALLBACK"};
    return c;
}

FlashCosmosDrive::Config
twinConfig()
{
    FlashCosmosDrive::Config cfg;
    cfg.channels = 2;
    cfg.dies = 2;
    return cfg;
}

TEST(StreamedReadEquivalenceTest, CorpusPayloadsAndTimelinesMatch)
{
    const std::size_t bits =
        nand::Geometry::tiny().pageBits() * 8; // 8 pages per vector
    InjectedDrive dense_drive(twinConfig());
    InjectedDrive streamed_drive(twinConfig());
    Corpus dense_corpus = buildCorpus(dense_drive.drive, bits);
    Corpus streamed_corpus = buildCorpus(streamed_drive.drive, bits);
    const std::uint64_t page_bits =
        nand::Geometry::tiny().pageBits();

    for (std::size_t i = 0; i < dense_corpus.exprs.size(); ++i) {
        SCOPED_TRACE(dense_corpus.names[i]);
        FlashCosmosDrive::ReadStats ds, ss;
        BitVector dense =
            dense_drive.drive.fcRead(dense_corpus.exprs[i], &ds);

        DenseCollectSink collect;
        DigestSink digest;
        PopcountSink pop;
        std::vector<std::uint64_t> order;
        ChunkCallbackSink watcher([&order](const ResultChunk &chunk) {
            order.push_back(chunk.index);
        });
        TeeSink tee({&collect, &digest, &pop, &watcher});
        streamed_drive.drive.fcRead(streamed_corpus.exprs[i], tee, &ss);

        // Bit-exact payloads, even through the error model.
        EXPECT_EQ(collect.result(), dense);
        EXPECT_EQ(digest.digest(),
                  DigestSink::digestOf(dense, page_bits));
        EXPECT_EQ(pop.ones(), dense.popcount());

        // Chunks in strictly increasing page order.
        ASSERT_EQ(order.size(), ss.streamChunks);
        for (std::size_t j = 0; j < order.size(); ++j)
            EXPECT_EQ(order[j], j);

        // Identical command accounting and timeline.
        EXPECT_EQ(ds.planKind, ss.planKind);
        EXPECT_EQ(ds.mwsCommands, ss.mwsCommands);
        EXPECT_EQ(ds.senses, ss.senses);
        EXPECT_EQ(ds.pageReads, ss.pageReads);
        EXPECT_EQ(ds.resultPages, ss.resultPages);
        EXPECT_EQ(ds.makespan, ss.makespan);
        EXPECT_EQ(ds.nandEnergyJ, ss.nandEnergyJ);
    }

    // The twin drives executed identical work: one unified ledger.
    EXPECT_EQ(dense_drive.drive.engine().totalEnergyJ(),
              streamed_drive.drive.engine().totalEnergyJ());
    EXPECT_EQ(dense_drive.drive.engine().now(),
              streamed_drive.drive.engine().now());

    // readVector equivalence over the streamed path.
    FlashCosmosDrive::ReadStats rs;
    BitVector direct =
        dense_drive.drive.readVector(dense_corpus.plain_a);
    DenseCollectSink collect;
    streamed_drive.drive.readVector(streamed_corpus.plain_a, collect,
                                    &rs);
    EXPECT_EQ(collect.result(), direct);
    EXPECT_EQ(rs.streamChunks, rs.resultPages);
}

TEST(StreamedReadEquivalenceTest, ComparatorVerifiesProceduralRead)
{
    // fcWritePages + AND through the sparse comparator: the streaming
    // verification path the beyond-DRAM tier uses, here at unit scale
    // (no error injector: ESP at these conditions is exact, but the
    // unit tier keeps the oracle trivial).
    FlashCosmosDrive drive(twinConfig());
    const std::uint64_t pages = 16;
    auto gen = [](std::uint64_t vec) {
        return [vec](std::uint64_t j) {
            return nand::PageImage::random(Rng::mix(600 + vec, j));
        };
    };
    FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    VectorId a = drive.fcWritePages(gen(0), pages, group);
    VectorId b = drive.fcWritePages(gen(1), pages, group);

    SparseCompareSink cmp(
        [&](std::uint64_t j, std::uint64_t bits) {
            BitVector ref = gen(0)(j).materialize(bits);
            ref &= gen(1)(j).materialize(bits);
            return ref;
        });
    FlashCosmosDrive::ReadStats st;
    drive.fcRead(Expr::And({Expr::leaf(a), Expr::leaf(b)}), cmp, &st);
    EXPECT_TRUE(cmp.allMatched());
    EXPECT_EQ(cmp.pagesChecked(), pages);
    EXPECT_EQ(st.streamChunks, pages);
    // The re-ordering window stays far below the result size.
    EXPECT_LT(st.streamPeakPages, pages);
}

} // namespace
} // namespace fcos::core
