/**
 * @file
 * Soak tier: a million closed-loop requests through the concurrent
 * request API at steady state. The drive must *serve* — overwrites
 * and trims continuously invalidate capacity, GC recycles it as real
 * copyback + erase traffic, and every host-side structure stays
 * bounded: live vectors O(working set), admission map O(inflight),
 * process RSS flat no matter how many requests are pushed through.
 *
 * FCOS_SOAK_REQUESTS overrides the request count (the tsan tier and
 * quick local runs use a reduced count); the payload digest is pinned
 * only at the default count. The _w2/_w4 CTest registrations re-run
 * this binary with FCOS_WORKERS=2/4 + FCOS_FORCE_THREADS=1 — the
 * pinned digest passing at every worker count is the soak tier's
 * determinism certificate.
 */

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdlib>

#include "core/traffic.h"

namespace fcos::core {
namespace {

constexpr std::uint64_t kDefaultRequests = 1'000'000;

/** Pinned digest of the default-count run (any worker count). */
constexpr std::uint64_t kSoakDigest = 0xbe3ef5f8b9a9fb31ULL;

std::uint64_t
requestCount()
{
    if (const char *env = std::getenv("FCOS_SOAK_REQUESTS"))
        return std::strtoull(env, nullptr, 10);
    return kDefaultRequests;
}

/** Current process max-RSS in MiB (Linux: ru_maxrss is KiB). */
long
maxRssMib()
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss / 1024;
}

TEST(TrafficSoak, ClosedLoopSteadyState)
{
    ClosedLoopConfig cfg;
    cfg.requests = requestCount();
    const ClosedLoopPoint p = runClosedLoopTraffic(cfg);

    // Every request completed, and completion emptied the per-request
    // bookkeeping — nothing is retained per served request.
    EXPECT_EQ(p.completed, cfg.requests);
    EXPECT_EQ(p.liveRequests, 0u);

    // Live vectors are the working set only: stable pool (8) + churn
    // slots + residents + at most one scratch per chain.
    EXPECT_LE(p.liveVectors,
              8u + cfg.slots + cfg.residents + cfg.inflight);

    // The drive actually recycled: GC ran, erased blocks back onto the
    // free list, and relocated live pages as engine copy traffic.
    EXPECT_GT(p.gcRuns, 0u);
    EXPECT_GT(p.gcBlocksErased, 0u);
    EXPECT_GT(p.gcPageCopies, 0u);
    EXPECT_GT(p.hostPagesWritten, 0u);

    // Latency accounting covered every request, in the 6:3:1 mix.
    const std::uint64_t counted = p.byClass[0].count +
                                  p.byClass[1].count +
                                  p.byClass[2].count;
    EXPECT_EQ(counted, cfg.requests);
    EXPECT_GT(p.byClass[0].count, p.byClass[1].count);
    EXPECT_GT(p.byClass[1].count, p.byClass[2].count);
    EXPECT_GT(p.makespan, Time{0});

    // Streamed reads never buffered more than the single-page stripe.
    EXPECT_LE(p.peakStreamPages, 1u);

    if (cfg.requests == kDefaultRequests && kSoakDigest != 0) {
        EXPECT_EQ(p.digest, kSoakDigest);
    }

    // Bounded memory: a million requests with per-request leaks of
    // even ~100 bytes would blow well past this ceiling.
    EXPECT_LT(maxRssMib(), 256);

    std::printf("soak: %llu reqs, %.0f req/s wall, gc runs %llu, "
                "copies %llu, erases %llu, host pages %llu, "
                "digest %016llx, maxrss %ld MiB\n",
                static_cast<unsigned long long>(p.completed),
                p.requestsPerSecond,
                static_cast<unsigned long long>(p.gcRuns),
                static_cast<unsigned long long>(p.gcPageCopies),
                static_cast<unsigned long long>(p.gcBlocksErased),
                static_cast<unsigned long long>(p.hostPagesWritten),
                static_cast<unsigned long long>(p.digest), maxRssMib());
}

} // namespace
} // namespace fcos::core
