/**
 * @file
 * Per-request bookkeeping leak audit: the drive and admission queue
 * must hold O(inflight) request state and O(working set) vector state
 * no matter how many requests or overwrites have been served — the
 * precondition for the million-request soak tier.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/drive.h"
#include "core/result_sink.h"

namespace fcos::core {
namespace {

FlashCosmosDrive::Config
smallConfig()
{
    FlashCosmosDrive::Config cfg;
    cfg.channels = 2;
    cfg.dies = 2;
    return cfg;
}

TEST(Bookkeeping, RequestMapDrainsAtQuiesce)
{
    FlashCosmosDrive drive(smallConfig());
    EXPECT_EQ(drive.admission().liveRequestCount(), 0u);

    std::vector<DigestSink> sinks(12);
    const auto gen = [](std::uint64_t j) {
        return nand::PageImage::random(j + 1);
    };
    VectorId v = drive.fcWritePages(gen, 4, {});
    for (auto &sink : sinks)
        drive.submitReadVector(v, sink, nullptr, {});
    // Mid-flight the queue tracks every submitted request...
    EXPECT_GT(drive.admission().liveRequestCount(), 0u);
    EXPECT_LE(drive.admission().liveRequestCount(), sinks.size());
    drive.waitAll();
    // ...and at quiesce the per-request map must be empty: completed
    // requests are erased, not retained (the leak this test pins).
    EXPECT_EQ(drive.admission().liveRequestCount(), 0u);
    for (auto &sink : sinks)
        EXPECT_EQ(sink.digest(), sinks.front().digest());
}

TEST(Bookkeeping, OverwriteKeepsVectorCountFlat)
{
    FlashCosmosDrive drive(smallConfig());
    const auto gen = [](std::uint64_t j) {
        return nand::PageImage::random(j + 99);
    };
    FlashCosmosDrive::WriteOptions wo;
    wo.group = 7;
    VectorId v = drive.submitWritePages(gen, 1, wo, {}).vector;
    drive.waitAll();
    const std::size_t baseline = drive.liveVectorCount();
    const std::uint64_t lpns0 = drive.ftl().liveCount();

    // 200 overwrites of one logical vector: the live-vector count and
    // the FTL's live-page count stay flat — old capacity is freed, not
    // accumulated — while GC recycles the invalidated pages.
    for (int i = 0; i < 200; ++i) {
        FlashCosmosDrive::WriteOptions opts;
        opts.group = 7;
        opts.replaces = v;
        v = drive.submitWritePages(gen, 1, opts, {}).vector;
        drive.waitAll();
        ASSERT_EQ(drive.liveVectorCount(), baseline);
        ASSERT_EQ(drive.ftl().liveCount(), lpns0);
    }
    EXPECT_GT(drive.gcTotals().blocksErased, 0u);
    EXPECT_EQ(drive.gcTotals().hostPagesWritten, 201u);
    EXPECT_EQ(drive.admission().liveRequestCount(), 0u);
}

TEST(Bookkeeping, TrimReleasesVectorAndPages)
{
    FlashCosmosDrive drive(smallConfig());
    const std::size_t v0 = drive.liveVectorCount();
    const std::uint64_t lpns0 = drive.ftl().liveCount();
    const auto gen = [](std::uint64_t j) {
        return nand::PageImage::random(j + 5);
    };
    VectorId a = drive.fcWritePages(gen, 3, {});
    VectorId b = drive.fcWritePages(gen, 3, {});
    EXPECT_EQ(drive.liveVectorCount(), v0 + 2);
    EXPECT_EQ(drive.ftl().liveCount(), lpns0 + 6);
    drive.trimVector(a);
    drive.trimVector(b);
    EXPECT_EQ(drive.liveVectorCount(), v0);
    EXPECT_EQ(drive.ftl().liveCount(), lpns0);
    // Trimmed handles are recycled, so the vector table itself also
    // stays O(working set) across write/trim cycles.
    VectorId c = drive.fcWritePages(gen, 3, {});
    EXPECT_EQ(drive.liveVectorCount(), v0 + 1);
    EXPECT_TRUE(c == a || c == b);
}

} // namespace
} // namespace fcos::core
