/**
 * @file
 * Pins the mixed-traffic throughput-vs-latency sweep (the table
 * bench/mixed_traffic prints) as a golden: per-class simulated p50/p99
 * latency, traffic span, energy, and payload digest for every arrival
 * rate x QoS weight point. Also proves the sweep's heaviest point is
 * bit-identical across worker counts via the stream-digest fold.
 */

#include <gtest/gtest.h>

#include "core/traffic.h"
#include "tests/support/golden.h"

namespace fcos::core {
namespace {

TEST(TrafficGoldenTest, SweepTableMatchesGolden)
{
    TablePrinter table = trafficReport(defaultTrafficSweep());
    EXPECT_TRUE(test::MatchesGolden(
        table.toString(), "golden/mixed_traffic_sweep.txt"));
}

TEST(TrafficGoldenTest, DigestIsWorkerCountInvariant)
{
    TrafficConfig heavy;
    heavy.interArrivalUs = 2.0;
    TrafficPoint base;
    for (std::uint32_t workers : {1u, 2u, 4u}) {
        heavy.workers = workers;
        const TrafficPoint p = runMixedTraffic(heavy);
        if (workers == 1) {
            base = p;
            continue;
        }
        EXPECT_EQ(p.digest, base.digest) << workers << " workers";
        EXPECT_EQ(p.makespan, base.makespan) << workers << " workers";
        EXPECT_EQ(p.byClass[0].p99, base.byClass[0].p99)
            << workers << " workers";
        EXPECT_DOUBLE_EQ(p.energyJ, base.energyJ)
            << workers << " workers";
    }
}

} // namespace
} // namespace fcos::core
