/**
 * @file
 * Expression AST and reference-evaluator tests.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/expression.h"
#include "util/rng.h"

namespace fcos::core {
namespace {

class ExpressionTest : public ::testing::Test
{
  protected:
    BitVector vec(const std::string &bits)
    {
        return BitVector::fromString(bits);
    }

    std::map<VectorId, BitVector> vals;

    BitVector eval(const Expr &e)
    {
        return e.evaluate([&](VectorId id) -> const BitVector & {
            return vals.at(id);
        });
    }
};

TEST_F(ExpressionTest, LeafEvaluatesToItsVector)
{
    vals[0] = vec("1010");
    EXPECT_EQ(eval(Expr::leaf(0)), vec("1010"));
}

TEST_F(ExpressionTest, BasicOperators)
{
    vals[0] = vec("1100");
    vals[1] = vec("1010");
    Expr a = Expr::leaf(0), b = Expr::leaf(1);
    EXPECT_EQ(eval(Expr::And({a, b})), vec("1000"));
    EXPECT_EQ(eval(Expr::Or({a, b})), vec("1110"));
    EXPECT_EQ(eval(Expr::Xor(a, b)), vec("0110"));
    EXPECT_EQ(eval(Expr::Nand({a, b})), vec("0111"));
    EXPECT_EQ(eval(Expr::Nor({a, b})), vec("0001"));
    EXPECT_EQ(eval(Expr::Xnor(a, b)), vec("1001"));
    EXPECT_EQ(eval(Expr::Not(a)), vec("0011"));
}

TEST_F(ExpressionTest, MultiOperandAndOr)
{
    vals[0] = vec("1111");
    vals[1] = vec("1110");
    vals[2] = vec("1101");
    Expr e = Expr::And({Expr::leaf(0), Expr::leaf(1), Expr::leaf(2)});
    EXPECT_EQ(eval(e), vec("1100"));
    Expr o = Expr::Or({Expr::leaf(0), Expr::leaf(1), Expr::leaf(2)});
    EXPECT_EQ(eval(o), vec("1111"));
}

TEST_F(ExpressionTest, NestedExpression)
{
    vals[0] = vec("10101010");
    vals[1] = vec("11001100");
    vals[2] = vec("11110000");
    Expr e = Expr::Or({Expr::And({Expr::leaf(0), Expr::leaf(1)}),
                       Expr::Not(Expr::leaf(2))});
    BitVector expected =
        (vals[0] & vals[1]) | ~vals[2];
    EXPECT_EQ(eval(e), expected);
}

TEST_F(ExpressionTest, LeafIdsDeduplicates)
{
    Expr e = Expr::And({Expr::leaf(3), Expr::Or({Expr::leaf(1),
                                                 Expr::leaf(3)})});
    auto ids = e.leafIds();
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], 3u);
    EXPECT_EQ(ids[1], 1u);
}

TEST_F(ExpressionTest, ToStringRendersStructure)
{
    Expr e = Expr::And({Expr::leaf(0), Expr::Not(Expr::leaf(1))});
    EXPECT_EQ(e.toString(), "AND(v0, NOT(v1))");
}

TEST_F(ExpressionTest, OperatorSugarBuildsEquivalentTrees)
{
    vals[0] = vec("1100");
    vals[1] = vec("1010");
    vals[2] = vec("0110");
    Expr a = Expr::leaf(0), b = Expr::leaf(1), c = Expr::leaf(2);
    EXPECT_EQ(eval((a & b) | ~c), eval(Expr::Or(
                                      {Expr::And({a, b}),
                                       Expr::Not(c)})));
    EXPECT_EQ(eval(a ^ b), vals[0] ^ vals[1]);
    // Chained operators nest; the planner flattens same-op nests.
    EXPECT_EQ(eval(a & b & c), vals[0] & vals[1] & vals[2]);
}

TEST_F(ExpressionTest, DeMorganIdentitiesHoldOnRandomData)
{
    Rng rng = Rng::seeded(77);
    for (int round = 0; round < 20; ++round) {
        vals[0] = BitVector(257);
        vals[1] = BitVector(257);
        vals[2] = BitVector(257);
        vals[0].randomize(rng);
        vals[1].randomize(rng);
        vals[2].randomize(rng);
        Expr a = Expr::leaf(0), b = Expr::leaf(1), c = Expr::leaf(2);
        // NOT(a AND b AND c) == (NOT a) OR (NOT b) OR (NOT c)
        EXPECT_EQ(eval(Expr::Not(Expr::And({a, b, c}))),
                  eval(Expr::Or({Expr::Not(a), Expr::Not(b),
                                 Expr::Not(c)})));
        // NOT(a OR b) == NOT a AND NOT b
        EXPECT_EQ(eval(Expr::Not(Expr::Or({a, b}))),
                  eval(Expr::And({Expr::Not(a), Expr::Not(b)})));
    }
}

} // namespace
} // namespace fcos::core
