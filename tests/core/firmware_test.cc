/**
 * @file
 * Firmware tests: the functional + timed request path (Section 6.3).
 */

#include <gtest/gtest.h>

#include "core/firmware.h"
#include "tests/support/random_fixture.h"

namespace fcos::core {
namespace {

class FirmwareTest : public test::RandomTest
{
  protected:
    FirmwareTest()
        : test::RandomTest(/*seed=*/5), drive(driveConfig()),
          fw(drive, ssdConfig())
    {}

    static FlashCosmosDrive::Config driveConfig()
    {
        FlashCosmosDrive::Config cfg;
        cfg.dies = 4;
        return cfg;
    }
    static ssd::SsdConfig ssdConfig()
    {
        return ssd::SsdConfig::table1();
    }

    FlashCosmosDrive drive;
    FcFirmware fw;
};

TEST_F(FirmwareTest, ConfigAdoptsDriveGeometry)
{
    EXPECT_EQ(fw.config().geometry.pageBytes,
              nand::Geometry::tiny().pageBytes);
    EXPECT_EQ(fw.config().channels * fw.config().diesPerChannel, 4u);
}

TEST_F(FirmwareTest, TimedWriteCompletesAfterProgramLatency)
{
    BitVector data = randomVec(200); // one page per column at most
    FlashCosmosDrive::WriteOptions opts;
    opts.group = 1;
    auto w = fw.fcWrite(data, opts);
    // At minimum: external transfer + channel DMA + one ESP program.
    EXPECT_GE(w.completedAt, fw.config().timings.tProgEsp);
    EXPECT_EQ(drive.readVector(w.id), data);
}

TEST_F(FirmwareTest, TimedReadReturnsExactDataAndTime)
{
    FlashCosmosDrive::WriteOptions opts;
    opts.group = 1;
    BitVector a = randomVec(2000), b = randomVec(2000);
    auto wa = fw.fcWrite(a, opts);
    auto wb = fw.fcWrite(b, opts);

    auto r = fw.fcRead(Expr::And({Expr::leaf(wa.id), Expr::leaf(wb.id)}));
    EXPECT_EQ(r.data, a & b);
    EXPECT_GT(r.completedAt, wb.completedAt);
    EXPECT_GT(r.stats.mwsCommands, 0u);
    // Energy was accounted on the timing side too.
    EXPECT_GT(fw.sim().energy().get(ssd::EnergyComponent::NandMws),
              0.0);
    EXPECT_GT(fw.sim().energy().get(ssd::EnergyComponent::ExternalLink),
              0.0);
}

TEST_F(FirmwareTest, MwsReadIsFasterThanOperandStreaming)
{
    // The Figure 7 argument, end to end on the firmware: reading the
    // single AND result takes less link time than shipping all
    // operands out (8 operands of 4 pages each vs 4 result pages).
    FlashCosmosDrive::WriteOptions opts;
    opts.group = 2;
    std::vector<Expr> leaves;
    Time write_done = 0;
    for (int i = 0; i < 8; ++i) {
        auto w = fw.fcWrite(randomVec(1000), opts);
        leaves.push_back(Expr::leaf(w.id));
        write_done = w.completedAt;
    }
    Time before = fw.sim().externalBusyTime();
    auto r = fw.fcRead(Expr::And(leaves));
    Time result_link_time = fw.sim().externalBusyTime() - before;

    // Shipping 8 operands would cost 8x the result's link time.
    EXPECT_LT(result_link_time * 8,
              fw.sim().externalBusyTime() * 8); // sanity
    EXPECT_GT(r.completedAt, write_done);
    EXPECT_EQ(r.stats.mwsCommands, r.stats.resultPages);
}

} // namespace
} // namespace fcos::core
