/**
 * @file
 * Property-based tests: randomly generated expressions over randomly
 * placed vectors must evaluate identically in-flash (through the
 * planner + latch model) and on the reference evaluator — whatever
 * plan shape the planner picks.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/drive.h"
#include "util/log.h"
#include "util/rng.h"

namespace fcos::core {
namespace {

struct Scenario
{
    std::uint64_t seed;
    std::size_t bits;
};

class PlanPropertyTest : public ::testing::TestWithParam<Scenario>
{
};

/** Build a random expression over the given leaves. */
Expr
randomExpr(Rng &rng, const std::vector<VectorId> &ids, int depth)
{
    if (depth == 0 || rng.nextDouble() < 0.3) {
        Expr leaf = Expr::leaf(
            ids[static_cast<std::size_t>(rng.nextBounded(ids.size()))]);
        return rng.nextDouble() < 0.25 ? Expr::Not(leaf) : leaf;
    }
    int arity = 2 + static_cast<int>(rng.nextBounded(3));
    std::vector<Expr> children;
    for (int i = 0; i < arity; ++i)
        children.push_back(randomExpr(rng, ids, depth - 1));
    switch (rng.nextBounded(4)) {
      case 0:
        return Expr::And(std::move(children));
      case 1:
        return Expr::Or(std::move(children));
      case 2:
        return Expr::Nand(std::move(children));
      default:
        return Expr::Nor(std::move(children));
    }
}

TEST_P(PlanPropertyTest, InFlashMatchesReference)
{
    setQuietWarnings(true);
    const Scenario sc = GetParam();
    Rng rng = Rng::seeded(sc.seed);

    FlashCosmosDrive drive;
    std::map<VectorId, BitVector> truth;
    std::vector<VectorId> ids;

    // A few placement groups, mixing plain and inverted storage.
    for (std::uint64_t g = 0; g < 3; ++g) {
        FlashCosmosDrive::WriteOptions opts;
        opts.group = g;
        opts.storeInverted = (g == 1);
        int members = 2 + static_cast<int>(rng.nextBounded(5));
        for (int i = 0; i < members; ++i) {
            BitVector v(sc.bits);
            v.randomize(rng);
            VectorId id = drive.fcWrite(v, opts);
            truth.emplace(id, std::move(v));
            ids.push_back(id);
        }
    }

    for (int round = 0; round < 12; ++round) {
        Expr expr = randomExpr(rng, ids, 2);
        BitVector expected = expr.evaluate(
            [&](VectorId id) -> const BitVector & {
                return truth.at(id);
            });
        FlashCosmosDrive::ReadStats stats;
        BitVector actual = drive.fcRead(expr, &stats);
        ASSERT_EQ(actual, expected)
            << "expr: " << expr.toString() << "\nplan: "
            << stats.planText;
    }
    setQuietWarnings(false);
}

INSTANTIATE_TEST_SUITE_P(
    RandomScenarios, PlanPropertyTest,
    ::testing::Values(Scenario{101, 64}, Scenario{202, 100},
                      Scenario{303, 256}, Scenario{404, 300},
                      Scenario{505, 513}, Scenario{606, 1000},
                      Scenario{707, 31}, Scenario{808, 2048}),
    [](const ::testing::TestParamInfo<Scenario> &info) {
        return "seed" + std::to_string(info.param.seed) + "_bits" +
               std::to_string(info.param.bits);
    });

/** Every supported operator, executed at every size, must match. */
class OperatorSweepTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(OperatorSweepTest, AllOperatorsMatchReference)
{
    std::size_t bits = GetParam();
    Rng rng = Rng::seeded(bits * 31 + 7);
    FlashCosmosDrive drive;

    FlashCosmosDrive::WriteOptions plain, inverted;
    plain.group = 1;
    inverted.group = 2;
    inverted.storeInverted = true;

    BitVector a(bits), b(bits), c(bits), d(bits);
    a.randomize(rng);
    b.randomize(rng);
    c.randomize(rng);
    d.randomize(rng);
    VectorId ia = drive.fcWrite(a, plain);
    VectorId ib = drive.fcWrite(b, plain);
    VectorId ic = drive.fcWrite(c, inverted);
    VectorId id = drive.fcWrite(d, inverted);

    Expr ea = Expr::leaf(ia), eb = Expr::leaf(ib);
    Expr ec = Expr::leaf(ic), ed = Expr::leaf(id);

    EXPECT_EQ(drive.fcRead(Expr::And({ea, eb})), a & b);
    EXPECT_EQ(drive.fcRead(Expr::Or({ec, ed})), c | d);
    EXPECT_EQ(drive.fcRead(Expr::Nand({ea, eb})), ~(a & b));
    EXPECT_EQ(drive.fcRead(Expr::Nor({ec, ed})), ~(c | d));
    EXPECT_EQ(drive.fcRead(Expr::Xor(ea, eb)), a ^ b);
    EXPECT_EQ(drive.fcRead(Expr::Xnor(ea, eb)), ~(a ^ b));
    EXPECT_EQ(drive.fcRead(Expr::Not(ea)), ~a);
    EXPECT_EQ(drive.fcRead(Expr::And({ea, eb, Expr::Or({ec, ed})})),
              a & b & (c | d));
}

INSTANTIATE_TEST_SUITE_P(Sizes, OperatorSweepTest,
                         ::testing::Values(1, 63, 64, 65, 255, 256, 257,
                                           512, 1023));

} // namespace
} // namespace fcos::core
