/**
 * @file
 * FlashCosmosDrive functional tests: fc_write / fc_read end to end on
 * the NAND model, validated against reference evaluation.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/drive.h"
#include "tests/support/random_fixture.h"

namespace fcos::core {
namespace {

class DriveTest : public test::RandomTest
{
};

TEST_F(DriveTest, WriteAndReadBackSingleVector)
{
    FlashCosmosDrive drive;
    BitVector data = randomVec(1000);
    VectorId id = drive.fcWrite(data);
    EXPECT_EQ(drive.readVector(id), data);
    EXPECT_EQ(drive.vectorBits(id), 1000u);
}

TEST_F(DriveTest, InvertedStorageReadsBackOriginal)
{
    FlashCosmosDrive drive;
    BitVector data = randomVec(500);
    FlashCosmosDrive::WriteOptions opts;
    opts.storeInverted = true;
    VectorId id = drive.fcWrite(data, opts);
    EXPECT_TRUE(drive.isStoredInverted(id));
    // readVector uses inverse-read mode to recover the logical value.
    EXPECT_EQ(drive.readVector(id), data);
}

TEST_F(DriveTest, AndOfGroupedVectorsIsOneMwsPerColumnChunk)
{
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions opts;
    opts.group = 1;
    std::vector<BitVector> data;
    std::vector<Expr> leaves;
    for (int i = 0; i < 6; ++i) {
        data.push_back(randomVec(2000));
        leaves.push_back(Expr::leaf(drive.fcWrite(data.back(), opts)));
    }
    FlashCosmosDrive::ReadStats stats;
    BitVector result = drive.fcRead(Expr::And(leaves), &stats);

    BitVector expected = data[0];
    for (int i = 1; i < 6; ++i)
        expected &= data[i];
    EXPECT_EQ(result, expected);
    EXPECT_EQ(stats.planKind, MwsPlan::Kind::Mws);
    // 2000 bits over 32-byte pages = 8 pages; one MWS command each.
    EXPECT_EQ(stats.mwsCommands, stats.resultPages);
}

TEST_F(DriveTest, OrOfInverseStoredGroup)
{
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions opts;
    opts.group = 2;
    opts.storeInverted = true;
    std::vector<BitVector> data;
    std::vector<Expr> leaves;
    for (int i = 0; i < 5; ++i) {
        data.push_back(randomVec(777));
        leaves.push_back(Expr::leaf(drive.fcWrite(data.back(), opts)));
    }
    FlashCosmosDrive::ReadStats stats;
    BitVector result = drive.fcRead(Expr::Or(leaves), &stats);

    BitVector expected = data[0];
    for (int i = 1; i < 5; ++i)
        expected |= data[i];
    EXPECT_EQ(result, expected);
    EXPECT_EQ(stats.planKind, MwsPlan::Kind::Mws);
}

TEST_F(DriveTest, NandAndNorWork)
{
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions opts;
    opts.group = 3;
    BitVector a = randomVec(300), b = randomVec(300);
    VectorId ia = drive.fcWrite(a, opts);
    VectorId ib = drive.fcWrite(b, opts);

    EXPECT_EQ(drive.fcRead(Expr::Nand({Expr::leaf(ia), Expr::leaf(ib)})),
              ~(a & b));
    EXPECT_EQ(drive.fcRead(Expr::Nor({Expr::leaf(ia), Expr::leaf(ib)})),
              ~(a | b));
    EXPECT_EQ(drive.fcRead(Expr::Not(Expr::leaf(ia))), ~a);
}

TEST_F(DriveTest, XorAndXnorUseLatchXor)
{
    FlashCosmosDrive drive;
    BitVector a = randomVec(256), b = randomVec(256);
    // XOR needs no co-location: separate auto groups.
    VectorId ia = drive.fcWrite(a);
    VectorId ib = drive.fcWrite(b);

    FlashCosmosDrive::ReadStats stats;
    EXPECT_EQ(drive.fcRead(Expr::Xor(Expr::leaf(ia), Expr::leaf(ib)),
                           &stats),
              a ^ b);
    EXPECT_EQ(stats.planKind, MwsPlan::Kind::Xor);
    EXPECT_GT(stats.latchXors, 0u);

    EXPECT_EQ(drive.fcRead(Expr::Xnor(Expr::leaf(ia), Expr::leaf(ib))),
              ~(a ^ b));
}

TEST_F(DriveTest, Figure16CombinedExpression)
{
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions plain_a, plain_b, inv_c, inv_d;
    plain_a.group = 10;
    plain_b.group = 11;
    inv_c.group = 12;
    inv_c.storeInverted = true;
    inv_d.group = 13;
    inv_d.storeInverted = true;

    BitVector A1 = randomVec(640);
    std::vector<BitVector> B, C, D;
    VectorId a1 = drive.fcWrite(A1, plain_a);
    std::vector<VectorId> bi, ci, di;
    for (int i = 0; i < 4; ++i) {
        B.push_back(randomVec(640));
        bi.push_back(drive.fcWrite(B.back(), plain_b));
        C.push_back(randomVec(640));
        ci.push_back(drive.fcWrite(C.back(), inv_c));
        D.push_back(randomVec(640));
        di.push_back(drive.fcWrite(D.back(), inv_d));
    }

    // {A1 + (B1 B2 B3 B4)} (C1 + C3) (D2 + D4)  (Equation 4)
    Expr expr = Expr::And(
        {Expr::Or({Expr::leaf(a1),
                   Expr::And({Expr::leaf(bi[0]), Expr::leaf(bi[1]),
                              Expr::leaf(bi[2]), Expr::leaf(bi[3])})}),
         Expr::Or({Expr::leaf(ci[0]), Expr::leaf(ci[2])}),
         Expr::Or({Expr::leaf(di[1]), Expr::leaf(di[3])})});

    BitVector expected =
        (A1 | (B[0] & B[1] & B[2] & B[3])) & (C[0] | C[2]) &
        (D[1] | D[3]);

    FlashCosmosDrive::ReadStats stats;
    BitVector result = drive.fcRead(expr, &stats);
    EXPECT_EQ(result, expected);
    EXPECT_EQ(stats.planKind, MwsPlan::Kind::Mws);
    // Two MWS commands per page column (Figure 16).
    EXPECT_EQ(stats.mwsCommands, 2 * stats.resultPages);
}

TEST_F(DriveTest, WideAndAccumulatesAcrossSubBlocks)
{
    // More operands than a NAND string holds (tiny geometry: 8 WLs per
    // sub-block) forces multi-command accumulation.
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions opts;
    opts.group = 20;
    std::vector<BitVector> data;
    std::vector<Expr> leaves;
    for (int i = 0; i < 20; ++i) {
        data.push_back(randomVec(333));
        leaves.push_back(Expr::leaf(drive.fcWrite(data.back(), opts)));
    }
    FlashCosmosDrive::ReadStats stats;
    BitVector result = drive.fcRead(Expr::And(leaves), &stats);
    BitVector expected = data[0];
    for (int i = 1; i < 20; ++i)
        expected &= data[i];
    EXPECT_EQ(result, expected);
    // ceil(20 / 8) = 3 commands per column.
    EXPECT_EQ(stats.mwsCommands, 3 * stats.resultPages);
}

TEST_F(DriveTest, FallbackStillComputesCorrectly)
{
    setQuietWarnings(true);
    FlashCosmosDrive drive;
    // Two wide ANDs OR'd together: two deep chains -> fallback.
    FlashCosmosDrive::WriteOptions g1, g2;
    g1.group = 30;
    g2.group = 31;
    std::vector<BitVector> data;
    std::vector<Expr> a, b;
    for (int i = 0; i < 10; ++i) {
        data.push_back(randomVec(200));
        a.push_back(Expr::leaf(drive.fcWrite(data.back(), g1)));
    }
    for (int i = 0; i < 10; ++i) {
        data.push_back(randomVec(200));
        b.push_back(Expr::leaf(drive.fcWrite(data.back(), g2)));
    }
    Expr expr = Expr::Or({Expr::And(a), Expr::And(b)});
    FlashCosmosDrive::ReadStats stats;
    BitVector result = drive.fcRead(expr, &stats);

    BitVector ea = data[0];
    for (int i = 1; i < 10; ++i)
        ea &= data[i];
    BitVector eb = data[10];
    for (int i = 11; i < 20; ++i)
        eb &= data[i];
    EXPECT_EQ(result, ea | eb);
    EXPECT_EQ(stats.planKind, MwsPlan::Kind::Fallback);
    EXPECT_GT(stats.pageReads, 0u);
    setQuietWarnings(false);
}

TEST_F(DriveTest, GroupsRequireEqualSizes)
{
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions opts;
    opts.group = 40;
    drive.fcWrite(randomVec(1000), opts);
    EXPECT_DEATH(drive.fcWrite(randomVec(5000), opts), "equal page");
}

TEST_F(DriveTest, MultiPageVectorsSpanDiesAndPlanes)
{
    FlashCosmosDrive::Config cfg;
    cfg.dies = 4;
    FlashCosmosDrive drive(cfg);
    FlashCosmosDrive::WriteOptions opts;
    opts.group = 50;
    // tiny geometry: 32-byte pages, 8 columns => 4096 bits = 16 pages.
    BitVector a = randomVec(4096), b = randomVec(4096);
    VectorId ia = drive.fcWrite(a, opts);
    VectorId ib = drive.fcWrite(b, opts);
    EXPECT_EQ(drive.fcRead(Expr::And({Expr::leaf(ia), Expr::leaf(ib)})),
              a & b);

    // Pages should spread across all 8 columns.
    const auto &pages = drive.vectorPages(ia);
    ASSERT_EQ(pages.size(), 16u);
    std::set<std::pair<std::uint32_t, std::uint32_t>> columns;
    for (const auto &p : pages)
        columns.insert({p.die, p.addr.plane});
    EXPECT_EQ(columns.size(), 8u);
}

} // namespace
} // namespace fcos::core
