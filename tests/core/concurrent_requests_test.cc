/**
 * @file
 * Drive-level concurrent request tests: the async submit/waitAll API,
 * overlap of independent requests on the shared timeline, conflict
 * serialization, per-request stats isolation, paced arrivals, and
 * bit-identity of serial submission with the synchronous wrappers.
 */

#include <gtest/gtest.h>

#include "core/drive.h"
#include "tests/support/random_fixture.h"

namespace fcos::core {
namespace {

class ConcurrentRequestsTest : public test::RandomTest
{
  protected:
    static FlashCosmosDrive::Config twoDies()
    {
        FlashCosmosDrive::Config cfg;
        cfg.channels = 1;
        cfg.dies = 2;
        return cfg;
    }

    /** Columns of one die under tiny geometry (2 planes/die). */
    static std::uint32_t columnsPerDie()
    {
        return nand::Geometry::tiny().planesPerDie;
    }
};

TEST_F(ConcurrentRequestsTest, SubmitWaitReturnsSameResultsAsSyncCalls)
{
    BitVector a = randomVec(900), b = randomVec(900);

    FlashCosmosDrive sync_drive(twoDies());
    FlashCosmosDrive::WriteOptions g1;
    g1.group = 1;
    VectorId sa = sync_drive.fcWrite(a, g1);
    VectorId sb = sync_drive.fcWrite(b, g1);
    FlashCosmosDrive::ReadStats sync_stats;
    BitVector sync_result =
        sync_drive.fcRead(Expr::leaf(sa) & Expr::leaf(sb), &sync_stats);

    FlashCosmosDrive async_drive(twoDies());
    FlashCosmosDrive::Submitted wa = async_drive.submitWrite(a, g1);
    async_drive.waitAll();
    FlashCosmosDrive::Submitted wb = async_drive.submitWrite(b, g1);
    async_drive.waitAll();
    DenseCollectSink dense;
    FlashCosmosDrive::ReadStats async_stats;
    async_drive.submitRead(
        Expr::leaf(wa.vector) & Expr::leaf(wb.vector), dense,
        &async_stats);
    async_drive.waitAll();

    // Serial submission degenerates to the historical drain-per-op
    // schedule: identical payloads, timings, and energy ledger.
    EXPECT_EQ(dense.take(), sync_result);
    EXPECT_EQ(async_stats.makespan, sync_stats.makespan);
    EXPECT_EQ(async_stats.streamChunks, sync_stats.streamChunks);
    EXPECT_EQ(async_stats.streamPeakPages, sync_stats.streamPeakPages);
    EXPECT_EQ(async_drive.engine().makespan(),
              sync_drive.engine().makespan());
    EXPECT_EQ(async_drive.engine().totalEnergyJ(),
              sync_drive.engine().totalEnergyJ());
}

TEST_F(ConcurrentRequestsTest, IndependentReadsOnDifferentDiesOverlap)
{
    // The ISSUE acceptance test: two single-die requests on different
    // dies must overlap — combined makespan strictly below 2x a single
    // request's.
    BitVector a = randomVec(200), b = randomVec(200);
    FlashCosmosDrive::WriteOptions die0, die1;
    die0.homeColumn = 0;
    die1.homeColumn = columnsPerDie(); // first column of die 1

    // Baseline: the same reads, serial.
    FlashCosmosDrive serial(twoDies());
    VectorId s0 = serial.fcWrite(a, die0);
    VectorId s1 = serial.fcWrite(b, die1);
    FlashCosmosDrive::ReadStats m0, m1;
    BitVector r0 = serial.readVector(s0, &m0);
    BitVector r1 = serial.readVector(s1, &m1);
    ASSERT_GT(m0.makespan, 0u);

    FlashCosmosDrive conc(twoDies());
    VectorId c0 = conc.fcWrite(a, die0);
    VectorId c1 = conc.fcWrite(b, die1);
    Time t0 = conc.now();
    DenseCollectSink d0, d1;
    FlashCosmosDrive::ReadStats cm0, cm1;
    conc.submitReadVector(c0, d0, &cm0);
    conc.submitReadVector(c1, d1, &cm1);
    conc.waitAll();
    Time combined = conc.now() - t0;

    EXPECT_EQ(d0.take(), r0);
    EXPECT_EQ(d1.take(), r1);
    // Overlap: strictly better than back-to-back, never better than
    // the slower of the two alone.
    EXPECT_LT(combined, m0.makespan + m1.makespan);
    EXPECT_GE(combined, std::max(m0.makespan, m1.makespan));
    EXPECT_EQ(conc.admission().completedCount(), 4u);
}

TEST_F(ConcurrentRequestsTest, OverlappingReadsKeepSeparateStats)
{
    // Two concurrent streamed reads must each report their *own*
    // chunk/peak/makespan numbers (per-request accounting, not
    // last-writer-wins into shared state).
    BitVector a = randomVec(600), b = randomVec(200);
    FlashCosmosDrive::WriteOptions die0, die1;
    die0.homeColumn = 0;
    die1.homeColumn = columnsPerDie();

    FlashCosmosDrive drive(twoDies());
    VectorId va = drive.fcWrite(a, die0); // 600 bits / 256 = 3 pages
    VectorId vb = drive.fcWrite(b, die1); // 1 page
    ASSERT_EQ(drive.vectorPages(va).size(), 3u);
    ASSERT_EQ(drive.vectorPages(vb).size(), 1u);

    DenseCollectSink da, db;
    FlashCosmosDrive::ReadStats sa, sb;
    drive.submitReadVector(va, da, &sa);
    drive.submitReadVector(vb, db, &sb);
    drive.waitAll();

    EXPECT_EQ(da.take(), a);
    EXPECT_EQ(db.take(), b);
    EXPECT_EQ(sa.streamChunks, 3u);
    EXPECT_EQ(sa.resultPages, 3u);
    EXPECT_EQ(sb.streamChunks, 1u);
    EXPECT_EQ(sb.resultPages, 1u);
    EXPECT_GT(sa.makespan, 0u);
    EXPECT_GT(sb.makespan, 0u);
}

TEST_F(ConcurrentRequestsTest, ConflictingRequestsSerializeByBlock)
{
    // A write into the group's sub-block conflicts with a read of a
    // vector stored there; the admission queue must serialize them.
    // Against a baseline where the write goes to a disjoint group,
    // the conflicting schedule is strictly longer.
    BitVector a = randomVec(300), b = randomVec(300);
    FlashCosmosDrive::WriteOptions g1;
    g1.group = 1;

    auto span = [&](bool conflict) {
        FlashCosmosDrive drive(twoDies());
        VectorId va = drive.fcWrite(a, g1);
        FlashCosmosDrive::WriteOptions wopts;
        if (conflict)
            wopts.group = 1; // same sub-block => same blocks as va
        Time t0 = drive.now();
        DenseCollectSink sink;
        drive.submitReadVector(va, sink);
        drive.submitWrite(b, wopts);
        drive.waitAll();
        EXPECT_EQ(sink.take(), a);
        return drive.now() - t0;
    };

    Time conflicting = span(true);
    Time independent = span(false);
    EXPECT_GT(conflicting, independent);
}

TEST_F(ConcurrentRequestsTest, FutureArrivalsAndPacingAdvanceTheClock)
{
    BitVector a = randomVec(128);
    FlashCosmosDrive drive(twoDies());
    VectorId va = drive.fcWrite(a);

    Time start = drive.now();
    Time arrival = start + usToTime(500.0);
    DenseCollectSink sink;
    FlashCosmosDrive::RequestOptions ro;
    ro.arrival = arrival;
    drive.submitReadVector(va, sink, nullptr, ro);

    // advanceTo before the arrival: nothing admitted yet, but the
    // request is staged (the queue is not idle) and the clock moved.
    Time mid = drive.advanceTo(start + usToTime(100.0));
    EXPECT_EQ(mid, start + usToTime(100.0));
    EXPECT_EQ(drive.admission().completedCount(), 1u); // the write only
    EXPECT_FALSE(drive.admission().idle());

    drive.waitAll();
    EXPECT_GE(drive.now(), arrival);
    EXPECT_EQ(sink.take(), a);
    EXPECT_EQ(drive.admission().completedCount(), 2u);
}

TEST_F(ConcurrentRequestsTest, ConcurrentComputeAndReadProduceExactResults)
{
    // Mixed compute + I/O concurrency: a compute over group 1 and a
    // read over group 2 are independent and overlap, and both results
    // stay bit-exact.
    BitVector a = randomVec(512), b = randomVec(512), c = randomVec(512);
    FlashCosmosDrive::WriteOptions g1, g2;
    g1.group = 1;
    g2.group = 2;

    FlashCosmosDrive drive(twoDies());
    VectorId va = drive.fcWrite(a, g1);
    VectorId vb = drive.fcWrite(b, g1);
    VectorId vc = drive.fcWrite(c, g2);

    FlashCosmosDrive::WriteOptions dst;
    dst.group = 3;
    FlashCosmosDrive::Submitted comp =
        drive.submitCompute(Expr::leaf(va) & Expr::leaf(vb), dst);
    DenseCollectSink sink;
    drive.submitReadVector(vc, sink);
    drive.waitAll();

    EXPECT_EQ(sink.take(), c);
    EXPECT_EQ(drive.readVector(comp.vector), a & b);
}

} // namespace
} // namespace fcos::core
