/**
 * @file
 * MWS command corpus helpers: the random well-formed command generator
 * shared by the codec fuzz and determinism suites, plus loading of the
 * pinned corpus under tests/data/ that keeps CI runs reproducible.
 */

#ifndef FCOS_TESTS_SUPPORT_COMMAND_CORPUS_H
#define FCOS_TESTS_SUPPORT_COMMAND_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

#include "nand/command.h"
#include "util/rng.h"

namespace fcos::test {

/** Draw a random well-formed MWS command for @p geom from @p rng. */
nand::MwsCommand randomCommand(Rng &rng, const nand::Geometry &geom);

/** Lower-case hex of @p bytes, e.g. {0x0a, 0xff} -> "0aff". */
std::string toHex(const std::vector<std::uint8_t> &bytes);

/** Inverse of toHex; fails the calling test on malformed input. */
std::vector<std::uint8_t> fromHex(const std::string &hex);

/**
 * Load a pinned corpus file: one hex-encoded command per line, '#'
 * comments and blank lines ignored. @p rel is relative to tests/data.
 */
std::vector<std::vector<std::uint8_t>>
loadCorpus(const std::string &rel);

} // namespace fcos::test

#endif // FCOS_TESTS_SUPPORT_COMMAND_CORPUS_H
