/**
 * @file
 * Shared reliability sweep grids (the paper's Figure 8 measurement
 * grid), so the calibration guardrail and the structural RBER sweeps
 * agree on the operating points they cover.
 */

#ifndef FCOS_TESTS_SUPPORT_GRIDS_H
#define FCOS_TESTS_SUPPORT_GRIDS_H

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace fcos::test {

/** One (P/E cycles, retention months) operating point. */
struct GridPoint
{
    std::uint32_t pec;
    double months;
};

/** The Figure 8 P/E-cycle axis. */
const std::vector<std::uint32_t> &figure8Pecs();

/** The Figure 8 retention axis (months). */
const std::vector<double> &figure8Months();

/** Full cross product of the Figure 8 axes. */
std::vector<GridPoint> figure8Grid();

/**
 * Coarser grid for structural property sweeps (every pec, a subset of
 * retention points) — keeps parameterized suites fast while still
 * covering the corners.
 */
std::vector<GridPoint> figure8SweepGrid();

/** Readable parameterized-test name for a GridPoint. */
std::string gridPointName(
    const ::testing::TestParamInfo<GridPoint> &info);

} // namespace fcos::test

#endif // FCOS_TESTS_SUPPORT_GRIDS_H
