#include "tests/support/nand_builders.h"

#include "util/log.h"

namespace fcos::test {

ProgrammedChip::ProgrammedChip(const nand::Geometry &geom,
                               std::uint64_t seed)
    : chip_(geom), rng_(Rng::seeded(seed))
{}

const BitVector &
ProgrammedChip::programRandom(const nand::WordlineAddr &addr)
{
    BitVector v(chip_.geometry().pageBits());
    v.randomize(rng_);
    return program(addr, std::move(v));
}

const BitVector &
ProgrammedChip::program(const nand::WordlineAddr &addr, BitVector data)
{
    chip_.programPage(addr, data);
    auto [it, _] = shadow_.insert_or_assign(addr, std::move(data));
    return it->second;
}

const BitVector &
ProgrammedChip::written(const nand::WordlineAddr &addr) const
{
    auto it = shadow_.find(addr);
    if (it == shadow_.end())
        fcos_fatal("ProgrammedChip::written: page never programmed");
    return it->second;
}

BitVector
ProgrammedChip::referenceMws(const nand::MwsCommand &cmd) const
{
    const nand::Geometry &geom = chip_.geometry();
    BitVector result(geom.pageBits(), false);
    for (const nand::WlSelection &sel : cmd.selections) {
        BitVector conj(geom.pageBits(), true);
        for (std::uint32_t w = 0; w < geom.wordlinesPerSubBlock; ++w) {
            if (!(sel.wlMask & (1ULL << w)))
                continue;
            nand::WordlineAddr addr{cmd.plane, sel.block, sel.subBlock,
                                    w};
            auto it = shadow_.find(addr);
            if (it != shadow_.end())
                conj &= it->second;
            // Erased wordlines read all-ones in SLC MWS and leave the
            // conjunction unchanged.
        }
        result |= conj;
    }
    return result;
}

} // namespace fcos::test
