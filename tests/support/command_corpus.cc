#include "tests/support/command_corpus.h"

#include <gtest/gtest.h>

#include <sstream>

#include "tests/support/golden.h"

namespace fcos::test {

nand::MwsCommand
randomCommand(Rng &rng, const nand::Geometry &geom)
{
    nand::MwsCommand cmd;
    cmd.plane =
        static_cast<std::uint32_t>(rng.nextBounded(geom.planesPerDie));
    cmd.flags = nand::IscmFlags::fromByte(
        static_cast<std::uint8_t>(rng.nextBounded(16)));
    std::size_t slots =
        1 + rng.nextBounded(nand::MwsCommand::kMaxSelections);
    for (std::size_t s = 0; s < slots; ++s) {
        nand::WlSelection sel;
        sel.block = static_cast<std::uint32_t>(
            rng.nextBounded(geom.blocksPerPlane));
        sel.subBlock = static_cast<std::uint32_t>(
            rng.nextBounded(geom.subBlocksPerBlock));
        do {
            sel.wlMask = rng.nextU64() &
                         ((1ULL << geom.wordlinesPerSubBlock) - 1);
        } while (sel.wlMask == 0);
        cmd.selections.push_back(sel);
    }
    return cmd;
}

std::string
toHex(const std::vector<std::uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string hex;
    hex.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        hex.push_back(digits[b >> 4]);
        hex.push_back(digits[b & 0xF]);
    }
    return hex;
}

std::vector<std::uint8_t>
fromHex(const std::string &hex)
{
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    };
    std::vector<std::uint8_t> bytes;
    if (hex.size() % 2 != 0) {
        ADD_FAILURE() << "odd-length hex string: " << hex;
        return bytes;
    }
    bytes.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0) {
            ADD_FAILURE() << "bad hex byte in: " << hex;
            return bytes;
        }
        bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return bytes;
}

std::vector<std::vector<std::uint8_t>>
loadCorpus(const std::string &rel)
{
    std::vector<std::vector<std::uint8_t>> corpus;
    std::istringstream in(readFileOrFail(testDataPath(rel)));
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back(); // tolerate CRLF checkouts
        if (line.empty() || line[0] == '#')
            continue;
        std::vector<std::uint8_t> bytes = fromHex(line);
        if (bytes.empty()) {
            // fromHex already ADD_FAILUREd; skip the entry rather than
            // feed an empty frame into decodeMws (which would abort).
            ADD_FAILURE() << rel << ":" << lineno << ": bad corpus line";
            continue;
        }
        corpus.push_back(std::move(bytes));
    }
    return corpus;
}

} // namespace fcos::test
