/**
 * @file
 * Deterministic RNG fixture.
 *
 * Every test that needs random payloads derives from RandomTest (or
 * instantiates SeededRng directly) instead of hand-rolling its own
 * seeded Rng + randomVec helper. Fixed seeds keep failures
 * reproducible; tests that need a distinct stream pass their own seed.
 */

#ifndef FCOS_TESTS_SUPPORT_RANDOM_FIXTURE_H
#define FCOS_TESTS_SUPPORT_RANDOM_FIXTURE_H

#include <gtest/gtest.h>

#include "nand/geometry.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace fcos::test {

/** Default seed for test randomness; change only deliberately. */
inline constexpr std::uint64_t kDefaultTestSeed = 123;

/** Build a random BitVector of @p bits from @p rng. */
inline BitVector randomVec(Rng &rng, std::size_t bits)
{
    BitVector v(bits);
    v.randomize(rng);
    return v;
}

/** Build a random page-sized BitVector for @p geom. */
inline BitVector randomPage(Rng &rng, const nand::Geometry &geom)
{
    return randomVec(rng, geom.pageBits());
}

/** gtest fixture carrying a deterministically seeded Rng. */
class RandomTest : public ::testing::Test
{
  protected:
    explicit RandomTest(std::uint64_t seed = kDefaultTestSeed)
        : rng(Rng::seeded(seed))
    {}

    BitVector randomVec(std::size_t bits)
    {
        return test::randomVec(rng, bits);
    }

    BitVector randomPage(const nand::Geometry &geom)
    {
        return test::randomPage(rng, geom);
    }

    Rng rng;
};

} // namespace fcos::test

#endif // FCOS_TESTS_SUPPORT_RANDOM_FIXTURE_H
