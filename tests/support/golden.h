/**
 * @file
 * Golden-file comparator for text artifacts (bench tables, encoded
 * command corpora, ...).
 *
 * Goldens live under tests/data/. A mismatch reports a line-level
 * diff; set FCOS_UPDATE_GOLDEN=1 in the environment to rewrite the
 * golden in the source tree instead of failing (then review the diff
 * with git).
 */

#ifndef FCOS_TESTS_SUPPORT_GOLDEN_H
#define FCOS_TESTS_SUPPORT_GOLDEN_H

#include <gtest/gtest.h>

#include <string>

namespace fcos::test {

/** Absolute path of @p rel inside the source-tree tests/data dir. */
std::string testDataPath(const std::string &rel);

/** Whole-file read; fails the calling test if @p path is unreadable. */
std::string readFileOrFail(const std::string &path);

/**
 * Compare @p actual against the golden file tests/data/@p golden_rel.
 * Use as: EXPECT_TRUE(MatchesGolden(table.toString(), "golden/t1.txt"))
 */
::testing::AssertionResult MatchesGolden(const std::string &actual,
                                         const std::string &golden_rel);

} // namespace fcos::test

#endif // FCOS_TESTS_SUPPORT_GOLDEN_H
