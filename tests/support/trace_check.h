/**
 * @file
 * Schema validator for the tracer's Chrome trace_event JSON.
 *
 * The obs::Tracer emits one event object per line, which keeps this
 * checker a line parser instead of a JSON library. Validated schema:
 *
 *  - the document is `{"displayTimeUnit":...,"traceEvents":[ ... ]}`;
 *  - every event has ph/pid/tid; B and X carry name and ts, X carries
 *    dur, M carries args.name;
 *  - per (pid, tid) track: every B has a matching E (properly nested),
 *    and begin timestamps are non-decreasing in record order;
 *  - B/E pairs on one track never overlap (facility FIFO invariant);
 *  - every event's pid/tid was announced by a metadata record.
 */

#ifndef FCOS_TESTS_SUPPORT_TRACE_CHECK_H
#define FCOS_TESTS_SUPPORT_TRACE_CHECK_H

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fcos::test {

namespace trace_detail {

/** Extract the raw text after `"key":` (up to , or }); "" if absent. */
inline std::string
rawField(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return "";
    at += needle.size();
    std::size_t end = at;
    if (line[at] == '"') {
        end = line.find('"', at + 1);
        return line.substr(at + 1, end - at - 1);
    }
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    return line.substr(at, end - at);
}

} // namespace trace_detail

/**
 * Validate @p json against the schema above. Returns success or a
 * failure naming the first offending line.
 */
inline ::testing::AssertionResult
IsValidChromeTrace(const std::string &json)
{
    using trace_detail::rawField;

    if (json.find("\"traceEvents\":[") == std::string::npos)
        return ::testing::AssertionFailure()
               << "missing traceEvents array";
    if (json.find("]}") == std::string::npos)
        return ::testing::AssertionFailure() << "unterminated document";

    struct TrackState
    {
        std::vector<double> stack; ///< open B timestamps
        double last_begin = -1.0;  ///< monotonicity check
        double last_end = 0.0;     ///< B/E non-overlap check
    };
    std::map<std::pair<long, long>, TrackState> tracks;
    std::set<std::pair<long, long>> announced;
    std::set<long> announced_pids;

    std::istringstream in(json);
    std::string line;
    std::uint64_t events = 0;
    while (std::getline(in, line)) {
        if (line.find("\"ph\"") == std::string::npos)
            continue;
        ++events;
        const std::string ph = rawField(line, "ph");
        const std::string pid_s = rawField(line, "pid");
        const std::string tid_s = rawField(line, "tid");
        if (pid_s.empty() || tid_s.empty())
            return ::testing::AssertionFailure()
                   << "event without pid/tid: " << line;
        const long pid = std::stol(pid_s);
        const long tid = std::stol(tid_s);

        if (ph == "M") {
            const std::string what = rawField(line, "name");
            if (rawField(line, "args").empty() &&
                line.find("\"args\"") == std::string::npos)
                return ::testing::AssertionFailure()
                       << "metadata without args: " << line;
            if (what == "process_name")
                announced_pids.insert(pid);
            else if (what == "thread_name")
                announced.insert({pid, tid});
            continue;
        }

        if (!announced_pids.count(pid))
            return ::testing::AssertionFailure()
                   << "event on unannounced pid: " << line;

        TrackState &t = tracks[{pid, tid}];
        if (ph == "B" || ph == "X") {
            if (rawField(line, "name").empty())
                return ::testing::AssertionFailure()
                       << "unnamed " << ph << " event: " << line;
            const std::string ts_s = rawField(line, "ts");
            if (ts_s.empty())
                return ::testing::AssertionFailure()
                       << "event without ts: " << line;
            const double ts = std::stod(ts_s);
            if (ts < t.last_begin)
                return ::testing::AssertionFailure()
                       << "timestamps decrease on track (" << pid << ", "
                       << tid << "): " << ts << " after " << t.last_begin
                       << ": " << line;
            t.last_begin = ts;
            if (ph == "B") {
                if (!t.stack.empty())
                    return ::testing::AssertionFailure()
                           << "nested B on a serialized track: " << line;
                if (ts < t.last_end)
                    return ::testing::AssertionFailure()
                           << "overlapping spans on track (" << pid
                           << ", " << tid << "): " << line;
                t.stack.push_back(ts);
            } else if (rawField(line, "dur").empty()) {
                return ::testing::AssertionFailure()
                       << "X event without dur: " << line;
            }
        } else if (ph == "E") {
            const std::string ts_s = rawField(line, "ts");
            if (ts_s.empty())
                return ::testing::AssertionFailure()
                       << "E without ts: " << line;
            if (t.stack.empty())
                return ::testing::AssertionFailure()
                       << "E without a matching B: " << line;
            const double ts = std::stod(ts_s);
            if (ts < t.stack.back())
                return ::testing::AssertionFailure()
                       << "span ends before it begins: " << line;
            t.stack.pop_back();
            t.last_end = ts;
        } else {
            return ::testing::AssertionFailure()
                   << "unknown phase '" << ph << "': " << line;
        }
    }

    for (const auto &[key, t] : tracks) {
        if (!t.stack.empty())
            return ::testing::AssertionFailure()
                   << "track (" << key.first << ", " << key.second
                   << ") has " << t.stack.size() << " unclosed B events";
    }
    if (events == 0)
        return ::testing::AssertionFailure() << "trace has no events";
    return ::testing::AssertionSuccess();
}

} // namespace fcos::test

#endif // FCOS_TESTS_SUPPORT_TRACE_CHECK_H
