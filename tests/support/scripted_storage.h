/**
 * @file
 * Scripted StorageResolver for planner tests.
 *
 * Replaces the per-test fakes (FakeStorage, GroupedStorage,
 * CliqueStorage) with one resolver that supports both explicit
 * placement and group-style auto-placement, so planner tests describe
 * layouts instead of re-implementing the resolver contract.
 */

#ifndef FCOS_TESTS_SUPPORT_SCRIPTED_STORAGE_H
#define FCOS_TESTS_SUPPORT_SCRIPTED_STORAGE_H

#include <cstdint>
#include <map>

#include "core/planner.h"
#include "util/log.h"

namespace fcos::test {

class ScriptedStorage : public core::StorageResolver
{
  public:
    /** Explicit-placement resolver: script every vector with place(). */
    ScriptedStorage() = default;

    /**
     * Group-style resolver: add() assigns ids 0,1,2,... and packs
     * @p string_len consecutive vectors onto one string key, mimicking
     * the drive's group allocator. Explicit place() still wins.
     */
    static ScriptedStorage grouped(std::uint32_t string_len,
                                   bool inverted)
    {
        ScriptedStorage s;
        s.grouped_ = true;
        s.string_len_ = string_len;
        s.default_inverted_ = inverted;
        return s;
    }

    /** Script vector @p id onto string @p key. */
    void place(core::VectorId id, std::uint64_t key, bool inverted)
    {
        facts_[id] = Fact{key, inverted};
        if (id >= next_)
            next_ = id + 1;
    }

    /** Auto-place the next vector (grouped mode). */
    core::VectorId add()
    {
        return next_++;
    }

    /** Auto-assign an id on an explicit string. */
    core::VectorId addAt(std::uint64_t key, bool inverted)
    {
        core::VectorId id = next_++;
        facts_[id] = Fact{key, inverted};
        return id;
    }

    bool isStoredInverted(core::VectorId id) const override
    {
        auto it = facts_.find(id);
        if (it != facts_.end())
            return it->second.inverted;
        requireGrouped(id);
        return default_inverted_;
    }

    std::uint64_t stringKey(core::VectorId id) const override
    {
        auto it = facts_.find(id);
        if (it != facts_.end())
            return it->second.key;
        requireGrouped(id);
        return id / string_len_;
    }

  private:
    struct Fact
    {
        std::uint64_t key;
        bool inverted;
    };

    /** Explicit-placement mode must fail loudly on unscripted ids. */
    void requireGrouped(core::VectorId id) const
    {
        if (!grouped_)
            fcos_fatal("ScriptedStorage: vector %llu was never place()d",
                       static_cast<unsigned long long>(id));
    }

    std::map<core::VectorId, Fact> facts_;
    bool grouped_ = false;
    std::uint32_t string_len_ = 1;
    bool default_inverted_ = false;
    core::VectorId next_ = 0;
};

} // namespace fcos::test

#endif // FCOS_TESTS_SUPPORT_SCRIPTED_STORAGE_H
