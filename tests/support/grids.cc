#include "tests/support/grids.h"

namespace fcos::test {

const std::vector<std::uint32_t> &
figure8Pecs()
{
    static const std::vector<std::uint32_t> pecs{0,    1000, 2000,
                                                 3000, 6000, 10000};
    return pecs;
}

const std::vector<double> &
figure8Months()
{
    static const std::vector<double> months{0, 1, 2, 3, 6, 12};
    return months;
}

std::vector<GridPoint>
figure8Grid()
{
    std::vector<GridPoint> grid;
    for (std::uint32_t pec : figure8Pecs())
        for (double mo : figure8Months())
            grid.push_back({pec, mo});
    return grid;
}

std::vector<GridPoint>
figure8SweepGrid()
{
    static const std::vector<double> months{0, 1, 3, 12};
    std::vector<GridPoint> grid;
    for (std::uint32_t pec : figure8Pecs())
        for (double mo : months)
            grid.push_back({pec, mo});
    return grid;
}

std::string
gridPointName(const ::testing::TestParamInfo<GridPoint> &info)
{
    return "pec" + std::to_string(info.param.pec) + "_mo" +
           std::to_string(static_cast<int>(info.param.months));
}

} // namespace fcos::test
