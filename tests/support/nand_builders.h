/**
 * @file
 * Geometry and chip builders for NAND-level tests.
 *
 * GeometryBuilder gives tests a fluent way to derive small geometries
 * from Geometry::tiny() without mutating struct fields inline;
 * ProgrammedChip programs deterministic random pages, remembers what
 * it wrote, and evaluates the Equation 1 reference (OR across strings
 * of AND across wordlines) so MWS tests compare against one shared
 * oracle instead of re-deriving it.
 */

#ifndef FCOS_TESTS_SUPPORT_NAND_BUILDERS_H
#define FCOS_TESTS_SUPPORT_NAND_BUILDERS_H

#include <map>
#include <tuple>
#include <vector>

#include "nand/chip.h"
#include "util/rng.h"

namespace fcos::test {

/** Fluent geometry factory rooted at the test-scale Geometry::tiny(). */
class GeometryBuilder
{
  public:
    GeometryBuilder() : geom_(nand::Geometry::tiny()) {}
    explicit GeometryBuilder(nand::Geometry base) : geom_(base) {}

    GeometryBuilder &planes(std::uint32_t n)
    {
        geom_.planesPerDie = n;
        return *this;
    }
    GeometryBuilder &blocks(std::uint32_t n)
    {
        geom_.blocksPerPlane = n;
        return *this;
    }
    GeometryBuilder &subBlocks(std::uint32_t n)
    {
        geom_.subBlocksPerBlock = n;
        return *this;
    }
    GeometryBuilder &wordlines(std::uint32_t n)
    {
        geom_.wordlinesPerSubBlock = n;
        return *this;
    }
    GeometryBuilder &pageBytes(std::uint32_t n)
    {
        geom_.pageBytes = n;
        return *this;
    }

    nand::Geometry build() const { return geom_; }

  private:
    nand::Geometry geom_;
};

/**
 * A NandChip plus a shadow map of every page programmed through the
 * helper, with the Equation 1 reference evaluator.
 */
class ProgrammedChip
{
  public:
    explicit ProgrammedChip(const nand::Geometry &geom,
                            std::uint64_t seed = 1);

    nand::NandChip &chip() { return chip_; }
    const nand::Geometry &geometry() const { return chip_.geometry(); }

    /** Program a fresh random page at @p addr and return what was written. */
    const BitVector &programRandom(const nand::WordlineAddr &addr);

    /** Program caller-supplied data at @p addr (still shadow-tracked). */
    const BitVector &program(const nand::WordlineAddr &addr,
                             BitVector data);

    /** Shadow copy of the page at @p addr; dies if never programmed. */
    const BitVector &written(const nand::WordlineAddr &addr) const;

    /**
     * Equation 1 reference for @p cmd over the shadow pages: OR across
     * selections of AND across selected wordlines. Unprogrammed
     * wordlines count as erased (all ones, SLC convention).
     */
    BitVector referenceMws(const nand::MwsCommand &cmd) const;

  private:
    struct AddrLess
    {
        bool operator()(const nand::WordlineAddr &a,
                        const nand::WordlineAddr &b) const
        {
            return std::tie(a.plane, a.block, a.subBlock, a.wordline) <
                   std::tie(b.plane, b.block, b.subBlock, b.wordline);
        }
    };

    nand::NandChip chip_;
    Rng rng_;
    std::map<nand::WordlineAddr, BitVector, AddrLess> shadow_;
};

} // namespace fcos::test

#endif // FCOS_TESTS_SUPPORT_NAND_BUILDERS_H
