#include "tests/support/golden.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace fcos::test {
namespace {

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

} // namespace

std::string
testDataPath(const std::string &rel)
{
#ifndef FCOS_TEST_DATA_DIR
#error "FCOS_TEST_DATA_DIR must be defined by the build system"
#endif
    return std::string(FCOS_TEST_DATA_DIR) + "/" + rel;
}

std::string
readFileOrFail(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ADD_FAILURE() << "cannot open " << path;
        return {};
    }
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

::testing::AssertionResult
MatchesGolden(const std::string &actual, const std::string &golden_rel)
{
    const std::string path = testDataPath(golden_rel);

    const char *update = std::getenv("FCOS_UPDATE_GOLDEN");
    if (update != nullptr && update[0] != '\0' && update[0] != '0') {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out)
            return ::testing::AssertionFailure()
                   << "FCOS_UPDATE_GOLDEN: cannot write " << path;
        out << actual;
        return ::testing::AssertionSuccess();
    }

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return ::testing::AssertionFailure()
               << "missing golden " << path
               << " (run with FCOS_UPDATE_GOLDEN=1 to create it)";
    std::ostringstream golden;
    golden << in.rdbuf();
    if (golden.str() == actual)
        return ::testing::AssertionSuccess();

    // Report the first divergence with context rather than a
    // positionally-aligned full diff (one inserted line would otherwise
    // mark everything after it as changed).
    auto want = splitLines(golden.str());
    auto got = splitLines(actual);
    std::size_t first = 0;
    while (first < want.size() && first < got.size() &&
           want[first] == got[first])
        ++first;
    constexpr std::size_t kContext = 3;
    std::ostringstream diff;
    diff << "golden mismatch vs " << path << " (golden " << want.size()
         << " lines, actual " << got.size()
         << " lines; first difference at line " << (first + 1) << ")\n";
    for (std::size_t i = first;
         i < std::min(want.size(), first + kContext); ++i)
        diff << "    - " << want[i] << "\n";
    for (std::size_t i = first; i < std::min(got.size(), first + kContext);
         ++i)
        diff << "    + " << got[i] << "\n";
    diff << "(set FCOS_UPDATE_GOLDEN=1 to accept the new output)";
    return ::testing::AssertionFailure() << diff.str();
}

} // namespace fcos::test
