/**
 * @file
 * Observability layer tests: the metric primitives, the registry's
 * deterministic render (pinned as a golden), the tracer's Chrome
 * trace_event JSON (schema-checked by tests/support/trace_check.h),
 * the epoch guard, and an end-to-end drive capture.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/drive.h"
#include "obs/obs.h"
#include "reliability/error_injector.h"
#include "reliability/vth_model.h"
#include "tests/support/golden.h"
#include "tests/support/random_fixture.h"
#include "tests/support/trace_check.h"

namespace fcos {
namespace {

// ---------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------

TEST(ObsMetricsTest, CounterAccumulates)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(ObsMetricsTest, GaugeTracksValueAndHighWaterMark)
{
    obs::Gauge g;
    g.set(3.0);
    g.set(1.0);
    EXPECT_EQ(g.value(), 1.0);
    EXPECT_EQ(g.max(), 3.0);
    g.noteMax(2.0); // below the mark: no change
    EXPECT_EQ(g.max(), 3.0);
    g.noteMax(5.0);
    EXPECT_EQ(g.max(), 5.0);
}

TEST(ObsMetricsTest, HistogramLogBucketsAndStats)
{
    obs::Histogram h;
    EXPECT_EQ(h.quantile(0.5), 0u);

    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(1000);

    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1006u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);

    // Zero gets its own bucket; v lands in bucket bit_width(v).
    EXPECT_EQ(h.bucket(0), 1u); // 0
    EXPECT_EQ(h.bucket(1), 1u); // 1
    EXPECT_EQ(h.bucket(2), 2u); // 2, 3
    EXPECT_EQ(h.bucket(10), 1u); // 1000 in [512, 1024)

    // Quantiles are bucket upper bounds; p99 is clamped to max().
    EXPECT_EQ(h.quantile(0.2), 0u);
    EXPECT_EQ(h.quantile(0.4), 1u);
    EXPECT_EQ(h.quantile(0.8), 3u);
    EXPECT_EQ(h.quantile(0.99), 1000u);
}

TEST(ObsMetricsTest, RegistryFindOrCreateReturnsStableRefs)
{
    obs::Registry r;
    EXPECT_TRUE(r.empty());
    obs::Counter &a = r.counter("x");
    obs::Counter &b = r.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(r.counter("x").value(), 7u);
    EXPECT_FALSE(r.empty());
}

TEST(ObsMetricsTest, DeterministicRenderExcludesHostMetrics)
{
    obs::Registry r;
    r.counter("sim.good").add(3);
    r.counter("host.pool.lane0.busy_ns").add(12345);
    r.gauge("host.pool.lane0.busy_frac").set(0.5);
    const std::string det = r.renderDeterministic();
    EXPECT_NE(det.find("sim.good"), std::string::npos);
    EXPECT_EQ(det.find("host."), std::string::npos);
    // The full report keeps everything.
    const std::string full = r.renderReport();
    EXPECT_NE(full.find("host.pool.lane0.busy_ns"), std::string::npos);
}

TEST(ObsMetricsTest, FacilityTableRanksByBusyTime)
{
    obs::Registry r;
    r.recordFacility("quiet", 10, 1, 1000);
    r.recordFacility("busy", 900, 5, 1000);
    const std::string top1 = r.renderFacilityTable(1);
    EXPECT_NE(top1.find("busy"), std::string::npos);
    EXPECT_EQ(top1.find("quiet"), std::string::npos);
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(ObsTraceTest, JsonIsSchemaValidAndDigestStable)
{
    obs::Tracer t;
    const std::uint32_t pid = t.newProcess("channel0");
    const std::uint32_t bus = t.newTrack(pid, "bus");
    const std::uint32_t plane = t.newTrack(pid, "die0.plane0");
    const std::uint32_t wait = t.newTrack(pid, "die0.plane0.wait");

    t.span(bus, "dma", 100, 250);
    t.span(plane, "mws", 250, 1250);
    t.span(plane, "read", 1250, 2000);
    // Overlapping queue-wait windows ride the overlay track.
    t.overlay(wait, "wait", 100, 900);
    t.overlay(wait, "wait", 100, 1250);

    EXPECT_EQ(t.events(), 5u);
    EXPECT_EQ(t.tracks(), 3u);

    const std::string json = t.toJson();
    EXPECT_TRUE(test::IsValidChromeTrace(json));
    EXPECT_EQ(t.digest(), obs::fnv1a(json));

    // Same recording => same JSON => same digest.
    obs::Tracer u;
    const std::uint32_t upid = u.newProcess("channel0");
    const std::uint32_t ubus = u.newTrack(upid, "bus");
    const std::uint32_t uplane = u.newTrack(upid, "die0.plane0");
    const std::uint32_t uwait = u.newTrack(upid, "die0.plane0.wait");
    u.span(ubus, "dma", 100, 250);
    u.span(uplane, "mws", 250, 1250);
    u.span(uplane, "read", 1250, 2000);
    u.overlay(uwait, "wait", 100, 900);
    u.overlay(uwait, "wait", 100, 1250);
    EXPECT_EQ(u.digest(), t.digest());
}

TEST(ObsTraceTest, TimestampsSerializeAsFractionalMicroseconds)
{
    obs::Tracer t;
    const std::uint32_t pid = t.newProcess("p");
    const std::uint32_t tr = t.newTrack(pid, "t");
    t.span(tr, "op", 1500, 2003); // 1.500 us .. 2.003 us
    const std::string json = t.toJson();
    EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":2.003"), std::string::npos);
}

TEST(ObsTraceTest, StaleTrackHandleIsDropped)
{
    obs::Tracer t;
    // A handle minted by a previous session must not crash or record.
    t.span(99, "ghost", 0, 1);
    EXPECT_EQ(t.events(), 0u);
}

// ---------------------------------------------------------------------
// Epoch guard + ScopedCapture
// ---------------------------------------------------------------------

TEST(ObsSessionTest, EpochGuardDistinguishesSessions)
{
    ASSERT_FALSE(obs::traceOn()); // tests run with obs off by default
    EXPECT_FALSE(obs::traceLive(0));

    std::uint64_t first = 0;
    {
        obs::ScopedCapture cap(/*trace=*/true, /*metrics=*/true);
        first = obs::traceEpoch();
        EXPECT_NE(first, 0u);
        EXPECT_TRUE(obs::traceLive(first));
        EXPECT_TRUE(obs::metricsLive(obs::metricsEpoch()));
    }
    // Outside the scope the old epoch is dead.
    EXPECT_FALSE(obs::traceLive(first));
    EXPECT_FALSE(obs::traceOn());
    EXPECT_FALSE(obs::metricsOn());

    // A later session never reuses an epoch.
    obs::ScopedCapture cap2(/*trace=*/true, /*metrics=*/false);
    EXPECT_NE(obs::traceEpoch(), first);
    EXPECT_FALSE(obs::traceLive(first));
    EXPECT_FALSE(obs::metricsOn());
}

// ---------------------------------------------------------------------
// End-to-end drive capture
// ---------------------------------------------------------------------

/** The golden workload: one small drive, three writes, two reads. */
void
runSmallWorkload(std::uint32_t workers)
{
    core::FlashCosmosDrive::Config cfg;
    cfg.channels = 2;
    cfg.dies = 2;
    cfg.geometry.planesPerDie = 2;
    cfg.workers = workers;
    core::FlashCosmosDrive drive(cfg);
    rel::VthModel model;
    rel::VthErrorInjector inj(model,
                              rel::OperatingCondition{3000, 3.0, false});
    drive.setErrorInjector(&inj);

    Rng rng = Rng::seeded(515);
    core::FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    std::size_t bits = cfg.geometry.pageBits() * 8;
    core::Expr a = core::Expr::leaf(
        drive.fcWrite(test::randomVec(rng, bits), group));
    core::Expr b = core::Expr::leaf(
        drive.fcWrite(test::randomVec(rng, bits), group));
    core::Expr c = core::Expr::leaf(
        drive.fcWrite(test::randomVec(rng, bits), group));
    drive.fcRead(core::Expr::And({a, b, c}));
    drive.fcRead(core::Expr::Xor(b, c));
}

TEST(ObsEndToEndTest, DriveTraceIsSchemaValid)
{
    obs::ScopedCapture cap(/*trace=*/true, /*metrics=*/false);
    runSmallWorkload(/*workers=*/1);
    EXPECT_GT(cap.tracer().events(), 0u);
    EXPECT_TRUE(test::IsValidChromeTrace(cap.traceJson()));
}

TEST(ObsEndToEndTest, MetricsSnapshotMatchesGolden)
{
    // Pins the deterministic metrics render for the small workload.
    // Regenerate with FCOS_UPDATE_GOLDEN=1 after an intentional change
    // to metric names, table layout, or scheduler behaviour.
    obs::ScopedCapture cap(/*trace=*/false, /*metrics=*/true);
    runSmallWorkload(/*workers=*/1);
    EXPECT_TRUE(
        test::MatchesGolden(cap.metricsText(), "golden/obs_metrics.txt"));
}

TEST(ObsEndToEndTest, DisabledHooksRecordNothing)
{
    ASSERT_FALSE(obs::traceOn());
    ASSERT_FALSE(obs::metricsOn());
    runSmallWorkload(/*workers=*/1); // must not crash or record
    {
        obs::ScopedCapture cap(/*trace=*/true, /*metrics=*/true);
        // Nothing was constructed inside the scope: both stay empty.
        EXPECT_EQ(cap.tracer().events(), 0u);
        EXPECT_TRUE(cap.metricsRegistry().empty());
    }
}

} // namespace
} // namespace fcos
