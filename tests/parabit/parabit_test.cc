/**
 * @file
 * ParaBit baseline tests (Figure 6 flows) and the comparison points
 * the paper draws against it.
 */

#include <gtest/gtest.h>

#include "nand/timing_model.h"
#include "parabit/parabit.h"
#include "reliability/error_injector.h"
#include "util/rng.h"

namespace fcos::pb {
namespace {

class ParaBitTest : public ::testing::Test
{
  protected:
    ParaBitTest() : chip(nand::Geometry::tiny()) {}

    BitVector randomPage(Rng &rng)
    {
        BitVector v(chip.geometry().pageBits());
        v.randomize(rng);
        return v;
    }

    nand::NandChip chip;
};

TEST_F(ParaBitTest, BulkAndMatchesReference)
{
    Rng rng = Rng::seeded(1);
    std::vector<nand::WordlineAddr> ops;
    BitVector expected(chip.geometry().pageBits(), true);
    for (std::uint32_t i = 0; i < 6; ++i) {
        BitVector v = randomPage(rng);
        nand::WordlineAddr a{0, i / 2, i % 2, i};
        chip.programPage(a, v);
        ops.push_back(a);
        expected &= v;
    }
    ParaBitEngine pb(chip);
    pb.bulkAnd(ops);
    EXPECT_EQ(pb.result(0), expected);
    EXPECT_EQ(pb.senseCount(), 6u);
}

TEST_F(ParaBitTest, BulkOrMatchesReference)
{
    Rng rng = Rng::seeded(2);
    std::vector<nand::WordlineAddr> ops;
    BitVector expected(chip.geometry().pageBits(), false);
    for (std::uint32_t i = 0; i < 5; ++i) {
        BitVector v = randomPage(rng);
        nand::WordlineAddr a{1, i, 0, 0};
        chip.programPage(a, v);
        ops.push_back(a);
        expected |= v;
    }
    ParaBitEngine pb(chip);
    pb.bulkOr(ops);
    EXPECT_EQ(pb.result(1), expected);
}

TEST_F(ParaBitTest, LatencyScalesLinearlyWithOperands)
{
    // The Section 3.2 bottleneck: one full tR per operand.
    Rng rng = Rng::seeded(3);
    std::vector<nand::WordlineAddr> ops;
    for (std::uint32_t i = 0; i < 8; ++i) {
        nand::WordlineAddr a{0, 0, 0, i};
        chip.programPage(a, randomPage(rng));
        ops.push_back(a);
    }
    ParaBitEngine pb(chip);
    nand::OpResult r = pb.bulkAnd(ops);
    EXPECT_EQ(r.latency, 8 * usToTime(22.5));
}

TEST_F(ParaBitTest, MwsBeatsParaBitOnLatency)
{
    // Same 8-operand AND: ParaBit needs 8 tR; one intra-block MWS
    // needs ~1.008 tR (Figures 12 / Section 8.1).
    Rng rng = Rng::seeded(4);
    std::vector<nand::WordlineAddr> ops;
    std::uint64_t mask = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
        nand::WordlineAddr a{0, 0, 0, i};
        chip.programPage(a, randomPage(rng));
        ops.push_back(a);
        mask |= 1ULL << i;
    }
    ParaBitEngine pb(chip);
    Time pb_latency = pb.bulkAnd(ops).latency;
    BitVector pb_result = pb.result(0);

    nand::MwsCommand cmd;
    cmd.plane = 0;
    cmd.selections.push_back(nand::WlSelection{0, 0, mask});
    Time mws_latency = chip.executeMws(cmd).latency;

    EXPECT_EQ(chip.dataOut(0), pb_result); // identical result
    EXPECT_GT(pb_latency, 7 * mws_latency); // ~8x slower
}

TEST_F(ParaBitTest, OperandsMustSharePlane)
{
    ParaBitEngine pb(chip);
    std::vector<nand::WordlineAddr> ops{{0, 0, 0, 0}, {1, 0, 0, 0}};
    EXPECT_DEATH(pb.bulkAnd(ops), "share a plane");
    EXPECT_DEATH(pb.bulkAnd({}), "at least one");
}

TEST_F(ParaBitTest, InheritsRawBitErrorsUnlikeEsp)
{
    // Section 3.2: ParaBit reads raw (regular-SLC) cells and cannot
    // use ECC, so multi-operand ANDs accumulate errors; the same data
    // stored with ESP computes without error.
    rel::VthModel model;
    rel::OperatingCondition worst{10000, 12.0, false};
    rel::VthErrorInjector inj(model, worst);
    nand::Geometry geom = nand::Geometry::tiny();
    geom.pageBytes = 8192;
    nand::NandChip echip(geom, nand::Timings{}, &inj);

    Rng rng = Rng::seeded(5);
    BitVector expected(geom.pageBits(), true);
    std::vector<nand::WordlineAddr> slc_ops, esp_ops;
    for (std::uint32_t i = 0; i < 8; ++i) {
        BitVector v(geom.pageBits());
        v.randomize(rng);
        expected &= v;
        nand::WordlineAddr slc_a{0, 0, 0, i};
        nand::WordlineAddr esp_a{0, 1, 0, i};
        echip.programPage(slc_a, v, nand::ProgramMode::SlcRegular);
        echip.programPageEsp(esp_a, v, nand::EspParams{2.0});
        slc_ops.push_back(slc_a);
        esp_ops.push_back(esp_a);
    }
    ParaBitEngine pb(echip);
    pb.bulkAnd(slc_ops);
    std::size_t parabit_errors =
        pb.result(0).hammingDistance(expected);
    pb.bulkAnd(esp_ops);
    std::size_t esp_errors = pb.result(0).hammingDistance(expected);
    EXPECT_GT(parabit_errors, 0u);
    EXPECT_EQ(esp_errors, 0u);
}

} // namespace
} // namespace fcos::pb
