/**
 * @file
 * K-clique star listing example (the paper's KCS workload, Section 7,
 * at desk scale).
 *
 * Given a graph as per-vertex adjacency bit vectors and a set of
 * k-cliques, a k-clique star is the clique plus every vertex adjacent
 * to all clique members:
 *
 *   star(C) = (AND over v in C of adjacency[v]) OR membership(C)
 *
 * Flash-Cosmos computes the whole expression with a single fused MWS
 * command when the adjacency rows are co-located and the membership
 * vector sits in a different block (Section 7, KCS).
 */

#include <cstdio>

#include "core/drive.h"
#include "util/rng.h"

using namespace fcos;
using core::Expr;
using core::FlashCosmosDrive;
using core::VectorId;

namespace {

/** Undirected random graph with planted cliques. */
struct Graph
{
    std::size_t n;
    std::vector<BitVector> adj;

    explicit Graph(std::size_t vertices)
        : n(vertices), adj(vertices, BitVector(vertices))
    {
    }

    void addEdge(std::size_t a, std::size_t b)
    {
        adj[a].set(b, true);
        adj[b].set(a, true);
    }
};

} // namespace

int
main()
{
    std::printf("K-clique star listing (KCS) example\n");
    std::printf("===================================\n\n");

    const std::size_t vertices = 600;
    const int k = 5;
    Rng rng = Rng::seeded(99);

    // Random background graph...
    Graph g(vertices);
    for (std::size_t i = 0; i < vertices * 8; ++i) {
        auto a = static_cast<std::size_t>(rng.nextBounded(vertices));
        auto b = static_cast<std::size_t>(rng.nextBounded(vertices));
        if (a != b)
            g.addEdge(a, b);
    }
    // ...with one planted k-clique at vertices 10..14 and a planted
    // "star" hub 500 adjacent to all clique members.
    std::vector<std::size_t> clique;
    for (int i = 0; i < k; ++i)
        clique.push_back(10 + static_cast<std::size_t>(i));
    for (std::size_t a : clique)
        for (std::size_t b : clique)
            if (a != b)
                g.addEdge(a, b);
    for (std::size_t a : clique)
        g.addEdge(a, 500);

    // Store adjacency rows of the clique members in one group and the
    // membership vector in another block.
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions adj_group, clique_group;
    adj_group.group = 1;
    clique_group.group = 2;

    std::vector<Expr> members;
    for (std::size_t v : clique)
        members.push_back(Expr::leaf(drive.fcWrite(g.adj[v], adj_group)));

    BitVector membership(vertices);
    for (std::size_t v : clique)
        membership.set(v, true);
    Expr clique_leaf =
        Expr::leaf(drive.fcWrite(membership, clique_group));

    // star(C) in one fused in-flash operation.
    Expr star_expr = Expr::Or({Expr::And(members), clique_leaf});
    FlashCosmosDrive::ReadStats stats;
    BitVector star = drive.fcRead(star_expr, &stats);

    // Host-side reference.
    BitVector expected = g.adj[clique[0]];
    for (int i = 1; i < k; ++i)
        expected &= g.adj[clique[static_cast<std::size_t>(i)]];
    expected |= membership;

    std::printf("graph: %zu vertices; clique {10..%d}\n", vertices,
                10 + k - 1);
    std::printf("star size: %zu vertices (expected %zu)\n",
                star.popcount(), expected.popcount());
    std::printf("hub vertex 500 in star: %s\n",
                star.get(500) ? "yes" : "no");
    std::printf("plan: %s\n", stats.planText.c_str());
    std::printf("MWS commands per result page: %llu "
                "(the AND(k) OR clique fusion)\n",
                (unsigned long long)(stats.mwsCommands /
                                     stats.resultPages));
    std::printf("result %s\n",
                star == expected ? "bit-exact" : "INCORRECT");
    return star == expected ? 0 : 1;
}
