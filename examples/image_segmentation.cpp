/**
 * @file
 * Image segmentation example (the paper's IMS workload, Section 7, at
 * desk scale): YUV color segmentation via in-flash bulk AND.
 *
 * Each pixel belongs to color C when its Y, U and V components fall
 * inside C's ranges; the three membership masks are bit vectors and
 * the segmented mask is their AND (one MWS per page column).
 */

#include <cstdio>

#include "core/drive.h"
#include "util/rng.h"

using namespace fcos;
using core::Expr;
using core::FlashCosmosDrive;

namespace {

struct Image
{
    std::size_t w, h;
    std::vector<std::uint8_t> y, u, v;

    Image(std::size_t width, std::size_t height, Rng &rng)
        : w(width), h(height), y(w * h), u(w * h), v(w * h)
    {
        // Noise background with a colored rectangle in the middle.
        for (std::size_t i = 0; i < w * h; ++i) {
            y[i] = static_cast<std::uint8_t>(rng.nextBounded(256));
            u[i] = static_cast<std::uint8_t>(rng.nextBounded(256));
            v[i] = static_cast<std::uint8_t>(rng.nextBounded(256));
        }
        for (std::size_t r = h / 4; r < 3 * h / 4; ++r) {
            for (std::size_t c = w / 4; c < 3 * w / 4; ++c) {
                std::size_t i = r * w + c;
                y[i] = 180;
                u[i] = 90;
                v[i] = 200;
            }
        }
    }

    std::size_t pixels() const { return w * h; }
};

/** Membership mask: component within [lo, hi] (the pre-processing the
 *  paper cites from the YUV color-recognition kernel). */
BitVector
rangeMask(const std::vector<std::uint8_t> &comp, std::uint8_t lo,
          std::uint8_t hi)
{
    BitVector mask(comp.size());
    for (std::size_t i = 0; i < comp.size(); ++i)
        mask.set(i, comp[i] >= lo && comp[i] <= hi);
    return mask;
}

} // namespace

int
main()
{
    std::printf("Image segmentation (IMS) example\n");
    std::printf("================================\n\n");

    Rng rng = Rng::seeded(31);
    Image img(64, 48, rng);

    BitVector ym = rangeMask(img.y, 160, 200);
    BitVector um = rangeMask(img.u, 70, 110);
    BitVector vm = rangeMask(img.v, 180, 220);

    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    Expr ey = Expr::leaf(drive.fcWrite(ym, group));
    Expr eu = Expr::leaf(drive.fcWrite(um, group));
    Expr ev = Expr::leaf(drive.fcWrite(vm, group));

    FlashCosmosDrive::ReadStats stats;
    BitVector seg = drive.fcRead(Expr::And({ey, eu, ev}), &stats);
    BitVector expected = ym & um & vm;

    std::printf("image: %zux%zu, target color Y[160,200] U[70,110] "
                "V[180,220]\n",
                img.w, img.h);
    std::printf("segmented pixels: %zu of %zu (expected %zu)\n",
                seg.popcount(), img.pixels(), expected.popcount());
    std::printf("MWS commands: %llu (one per page column; ParaBit "
                "would sense 3x)\n",
                (unsigned long long)stats.mwsCommands);
    std::printf("result %s\n\n",
                seg == expected ? "bit-exact" : "INCORRECT");

    // Render the central rows as ASCII art.
    std::printf("segmentation mask (rows %zu..%zu):\n", img.h / 2 - 4,
                img.h / 2 + 4);
    for (std::size_t r = img.h / 2 - 4; r < img.h / 2 + 4; ++r) {
        for (std::size_t c = 0; c < img.w; ++c)
            std::printf("%c", seg.get(r * img.w + c) ? '#' : '.');
        std::printf("\n");
    }
    return seg == expected ? 0 : 1;
}
