/**
 * @file
 * Bitmap-index example (the paper's BMI workload, Section 7, at
 * desk scale): a database tracks daily log-in activity of u users;
 * the query "how many users were active every day of the last m
 * months?" is an m*30-operand bulk AND plus a bit-count.
 *
 * The example runs the query functionally on the Flash-Cosmos drive
 * (bit-exact, through the latch model) and then compares the four
 * platforms' projected time and energy at the paper's full scale
 * using the SSD timing simulator.
 */

#include <cstdio>

#include "core/drive.h"
#include "platforms/runner.h"
#include "util/rng.h"
#include "util/table.h"
#include "workloads/workload.h"

using namespace fcos;
using core::Expr;
using core::FlashCosmosDrive;

int
main()
{
    std::printf("Bitmap index (BMI) example\n");
    std::printf("==========================\n\n");

    // ---- Functional run: 3,000 users, 60 days --------------------
    const std::size_t users = 3000;
    const int days = 60;

    // 60 co-located daily vectors need more sub-blocks than the tiny
    // test geometry offers; size the drive accordingly.
    FlashCosmosDrive::Config drive_cfg;
    drive_cfg.dies = 4;
    drive_cfg.geometry.blocksPerPlane = 64;
    drive_cfg.geometry.pageBytes = 128;
    FlashCosmosDrive drive(drive_cfg);
    FlashCosmosDrive::WriteOptions group;
    group.group = 1;

    Rng rng = Rng::seeded(7);
    std::vector<BitVector> activity;
    std::vector<Expr> leaves;
    for (int d = 0; d < days; ++d) {
        BitVector day(users);
        day.randomize(rng, 0.97); // 97% daily activity
        leaves.push_back(Expr::leaf(drive.fcWrite(day, group)));
        activity.push_back(std::move(day));
    }

    FlashCosmosDrive::ReadStats stats;
    BitVector everyday = drive.fcRead(Expr::And(leaves), &stats);
    std::size_t count = everyday.popcount();

    BitVector expected = activity[0];
    for (int d = 1; d < days; ++d)
        expected &= activity[d];

    std::printf("query: users active on every one of %d days\n", days);
    std::printf("  answer: %zu of %zu users (host check: %zu)\n", count,
                users, expected.popcount());
    std::printf("  in-flash senses per result page: %llu "
                "(ParaBit would need %d)\n",
                (unsigned long long)(stats.mwsCommands /
                                     stats.resultPages),
                days);
    std::printf("  result %s\n\n",
                everyday == expected ? "bit-exact" : "INCORRECT");

    // ---- Full-scale projection: 800M users, m months -------------
    std::printf("Projected full-scale query (800M users, Table 1 "
                "SSD):\n\n");
    plat::PlatformRunner runner;
    TablePrinter table("BMI: time and energy by platform");
    table.setHeader({"m", "days", "OSP", "ISP", "PB", "FC",
                     "FC speedup", "FC energy x"});
    for (std::uint32_t m : {1u, 6u, 12u}) {
        wl::Workload w = wl::makeBmi(m);
        auto osp = runner.run(plat::PlatformKind::Osp, w);
        auto isp = runner.run(plat::PlatformKind::Isp, w);
        auto pb = runner.run(plat::PlatformKind::ParaBit, w);
        auto fc = runner.run(plat::PlatformKind::FlashCosmos, w);
        table.addRow(
            {TablePrinter::cellInt(m),
             TablePrinter::cellInt(
                 static_cast<long long>(w.batches[0].andOperands)),
             formatTime(osp.makespan), formatTime(isp.makespan),
             formatTime(pb.makespan), formatTime(fc.makespan),
             TablePrinter::cell(static_cast<double>(osp.makespan) /
                                    static_cast<double>(fc.makespan),
                                1) +
                 "x",
             TablePrinter::cell(osp.energyJ / fc.energyJ, 1) + "x"});
    }
    table.print();
    std::printf("\n(regenerate the full Figure 17/18 sweeps with "
                "bench/fig17_performance and bench/fig18_energy)\n");
    return 0;
}
