/**
 * @file
 * Quickstart: store bit vectors on a Flash-Cosmos drive and compute
 * bulk bitwise operations inside the (simulated) NAND dies.
 *
 *   ./quickstart
 *
 * Walks through fc_write placement hints, fc_read expressions, the
 * plan the compiler chose, and verifies everything against host-side
 * evaluation.
 */

#include <cstdio>

#include "core/drive.h"
#include "util/rng.h"
#include "util/units.h"

using namespace fcos;
using core::Expr;
using core::FlashCosmosDrive;
using core::VectorId;

int
main()
{
    std::printf("Flash-Cosmos quickstart\n");
    std::printf("=======================\n\n");

    // A drive with four dies in the test geometry. Real-scale geometry
    // (Table 1) works the same way, just bigger.
    FlashCosmosDrive::Config cfg;
    cfg.dies = 4;
    FlashCosmosDrive drive(cfg);

    Rng rng = Rng::seeded(2024);
    const std::size_t bits = 8192;

    // 1. Store operands. Vectors that will be combined must share a
    //    placement *group* so they land in the same NAND strings;
    //    OR-heavy data is stored inverted (De Morgan, paper §6.1).
    FlashCosmosDrive::WriteOptions and_group;
    and_group.group = 1;
    FlashCosmosDrive::WriteOptions or_group;
    or_group.group = 2;
    or_group.storeInverted = true;

    BitVector a(bits), b(bits), c(bits), d(bits), e(bits);
    a.randomize(rng);
    b.randomize(rng);
    c.randomize(rng);
    d.randomize(rng);
    e.randomize(rng);

    VectorId va = drive.fcWrite(a, and_group);
    VectorId vb = drive.fcWrite(b, and_group);
    VectorId vc = drive.fcWrite(c, and_group);
    VectorId vd = drive.fcWrite(d, or_group);
    VectorId ve = drive.fcWrite(e, or_group);
    std::printf("stored 5 vectors of %zu bits (ESP programming, "
                "tPROG x2)\n\n",
                bits);

    // 2. AND of three co-located vectors: ONE multi-wordline sensing
    //    operation per page column, not three serial reads.
    Expr and_expr =
        Expr::And({Expr::leaf(va), Expr::leaf(vb), Expr::leaf(vc)});
    FlashCosmosDrive::ReadStats stats;
    BitVector and_result = drive.fcRead(and_expr, &stats);
    std::printf("fcRead(%s)\n", and_expr.toString().c_str());
    std::printf("  plan: %s\n", stats.planText.c_str());
    std::printf("  MWS commands: %llu for %llu result pages\n",
                (unsigned long long)stats.mwsCommands,
                (unsigned long long)stats.resultPages);
    std::printf("  NAND busy time: %s\n",
                formatTime(stats.nandTime).c_str());
    std::printf("  correct: %s\n\n",
                and_result == (a & b & c) ? "yes" : "NO");

    // 3. OR of the inverse-stored pair: a single *inverse* MWS.
    Expr or_expr = Expr::Or({Expr::leaf(vd), Expr::leaf(ve)});
    FlashCosmosDrive::ReadStats or_stats;
    BitVector or_result = drive.fcRead(or_expr, &or_stats);
    std::printf("fcRead(%s)\n", or_expr.toString().c_str());
    std::printf("  plan: %s\n", or_stats.planText.c_str());
    std::printf("  correct: %s\n\n",
                or_result == (d | e) ? "yes" : "NO");

    // 4. A combined expression (the paper's Figure 16 pattern):
    //    (a AND b) AND (d OR e) — still a short command chain.
    Expr combined = Expr::And(
        {Expr::leaf(va), Expr::leaf(vb), Expr::Or({Expr::leaf(vd),
                                                   Expr::leaf(ve)})});
    FlashCosmosDrive::ReadStats comb_stats;
    BitVector comb_result = drive.fcRead(combined, &comb_stats);
    std::printf("fcRead(%s)\n", combined.toString().c_str());
    std::printf("  plan: %s\n", comb_stats.planText.c_str());
    std::printf("  correct: %s\n\n",
                comb_result == ((a & b) & (d | e)) ? "yes" : "NO");

    // 5. XOR via the on-chip latch XOR.
    BitVector xor_result =
        drive.fcRead(Expr::Xor(Expr::leaf(va), Expr::leaf(vb)));
    std::printf("fcRead(XOR(v%u, v%u)): correct: %s\n", va, vb,
                xor_result == (a ^ b) ? "yes" : "NO");

    std::printf("\nDone. See examples/bitmap_index.cpp for a full "
                "application.\n");
    return 0;
}
