/**
 * @file
 * Reliability explorer: interactively sweep the V_TH error model the
 * way the paper's Section 5 characterization does.
 *
 *   ./reliability_explorer [pec] [retention_months]
 *
 * Prints, for the chosen wear/retention point: the RBER of every
 * programming mode with and without randomization, the ESP
 * latency-reliability trade-off, and a Monte-Carlo error-count
 * campaign over the simulated 160-chip farm.
 */

#include <cstdio>
#include <cstdlib>

#include "reliability/chip_farm.h"
#include "util/table.h"

using namespace fcos;
using namespace fcos::rel;

int
main(int argc, char **argv)
{
    std::uint32_t pec = argc > 1
                            ? static_cast<std::uint32_t>(
                                  std::strtoul(argv[1], nullptr, 10))
                            : 10000;
    double months = argc > 2 ? std::strtod(argv[2], nullptr) : 12.0;

    std::printf("Reliability explorer: %u P/E cycles, %.1f months "
                "retention\n\n",
                pec, months);

    VthModel model;

    TablePrinter modes("RBER by programming mode");
    modes.setHeader({"mode", "randomized", "raw bit error rate"});
    for (bool r : {true, false}) {
        OperatingCondition c{pec, months, r};
        modes.addRow({"SLC", r ? "yes" : "no",
                      TablePrinter::cellSci(model.rberSlc(c))});
        modes.addRow({"MLC", r ? "yes" : "no",
                      TablePrinter::cellSci(model.rberMlc(c))});
    }
    {
        OperatingCondition c{pec, months, false};
        modes.addRow({"ESP (tESP=2.0x)", "no",
                      TablePrinter::cellSci(model.rberEsp(2.0, c))});
    }
    modes.print();

    std::printf("\n");
    TablePrinter esp("ESP latency-reliability trade-off");
    esp.setHeader({"tESP/tPROG", "tESP", "median-block RBER"});
    OperatingCondition worst{pec, months, false};
    for (double f = 1.0; f <= 2.001; f += 0.1) {
        char t[32];
        std::snprintf(t, sizeof(t), "%.0f us", 200.0 * f);
        esp.addRow({TablePrinter::cell(f, 1), t,
                    TablePrinter::cellSci(model.rberEsp(f, worst))});
    }
    esp.print();

    std::printf("\n");
    ChipFarm farm;
    nand::PageMeta esp_meta;
    esp_meta.mode = nand::ProgramMode::SlcEsp;
    esp_meta.espFactor = 2.0;
    nand::PageMeta slc_meta;
    slc_meta.mode = nand::ProgramMode::SlcRegular;
    slc_meta.randomized = false;

    const std::uint64_t bits = 483000000000ULL; // the paper's campaign
    auto esp_campaign = farm.runCampaign(esp_meta, worst, bits);
    auto slc_campaign = farm.runCampaign(slc_meta, worst, bits);

    TablePrinter camp("Error-count campaign over 160 chips, 4.83e11 bits");
    camp.setHeader({"storage", "observed errors", "expected",
                    "RBER bound"});
    camp.addRow({"regular SLC",
                 TablePrinter::cellInt(
                     static_cast<long long>(slc_campaign.errors)),
                 TablePrinter::cellSci(slc_campaign.expectedErrors),
                 "-"});
    camp.addRow({"ESP (2.0x)",
                 TablePrinter::cellInt(
                     static_cast<long long>(esp_campaign.errors)),
                 TablePrinter::cellSci(esp_campaign.expectedErrors),
                 esp_campaign.errors == 0
                     ? "< " + TablePrinter::cellSci(
                                  esp_campaign.rberBound())
                     : "-"});
    camp.print();

    if (esp_campaign.errors == 0) {
        std::printf("\nESP: zero bit errors across %llu bits — the "
                    "paper's Section 5.2 result.\n",
                    (unsigned long long)bits);
    }
    return 0;
}
