/**
 * @file
 * End-to-end SSD example: the firmware path (paper Section 6.3).
 *
 * Uses FcFirmware, which executes every request both functionally
 * (bit-exact through the latch models) and on the event-driven timing
 * simulator, so each call returns its data *and* its completion time
 * and energy on the configured SSD.
 */

#include <cstdio>

#include "core/firmware.h"
#include "util/rng.h"

using namespace fcos;
using core::Expr;
using core::FcFirmware;
using core::FlashCosmosDrive;

int
main()
{
    std::printf("End-to-end SSD (firmware) example\n");
    std::printf("=================================\n\n");

    FlashCosmosDrive::Config drive_cfg;
    drive_cfg.dies = 8;
    FlashCosmosDrive drive(drive_cfg);
    FcFirmware fw(drive, ssd::SsdConfig::table1());

    Rng rng = Rng::seeded(1);
    const std::size_t bits = 16000;

    FlashCosmosDrive::WriteOptions group;
    group.group = 1;

    std::printf("writing 12 operand vectors (%zu bits each, ESP)...\n",
                bits);
    std::vector<BitVector> data;
    std::vector<Expr> leaves;
    Time last_write = 0;
    for (int i = 0; i < 12; ++i) {
        BitVector v(bits);
        v.randomize(rng);
        auto w = fw.fcWrite(v, group);
        leaves.push_back(Expr::leaf(w.id));
        data.push_back(std::move(v));
        last_write = w.completedAt;
    }
    std::printf("  all writes complete at t = %s\n\n",
                formatTime(last_write).c_str());

    std::printf("fc_read: AND of all 12 operands...\n");
    auto r = fw.fcRead(Expr::And(leaves));

    BitVector expected = data[0];
    for (int i = 1; i < 12; ++i)
        expected &= data[i];

    std::printf("  result %s\n",
                r.data == expected ? "bit-exact" : "INCORRECT");
    std::printf("  completed at t = %s (query latency %s)\n",
                formatTime(r.completedAt).c_str(),
                formatTime(r.completedAt - last_write).c_str());
    std::printf("  MWS commands issued: %llu (%llu result pages)\n",
                (unsigned long long)r.stats.mwsCommands,
                (unsigned long long)r.stats.resultPages);
    std::printf("\nSSD-side energy breakdown:\n%s",
                fw.sim().energy().breakdown().c_str());
    return r.data == expected ? 0 : 1;
}
