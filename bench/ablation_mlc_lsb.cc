/**
 * @file
 * Ablation — Flash-Cosmos on MLC parts via LSB pages (Section 9,
 * footnote 15): an LSB-page read senses a single V_TH boundary, so
 * MWS works mechanically on MLC chips when operands live in LSB
 * pages; reliability then matches regular-SLC (ParaBit-level), not
 * ESP's zero-error level.
 *
 * The bench compares the operand-storage options for in-flash
 * processing at the worst-case operating point, plus their capacity
 * cost per stored operand bit.
 */

#include "bench/bench_util.h"
#include "reliability/vth_model.h"

using namespace fcos;
using namespace fcos::rel;

int
main()
{
    bench::header("Ablation: operand storage mode for in-flash compute",
                  "ESP vs regular SLC vs MLC-LSB vs MLC (10K PEC, "
                  "1 year, worst pattern)");

    VthModel model;
    OperatingCondition worst{10000, 12.0, false};

    TablePrinter t("Operand-storage comparison");
    t.setHeader({"storage", "RBER", "errors per 16-KiB page",
                 "capacity vs MLC", "usable for error-intolerant apps"});
    auto row = [&](const char *name, double rber, const char *capacity) {
        double per_page = rber * 16 * 1024 * 8;
        t.addRow({name, TablePrinter::cellSci(rber),
                  TablePrinter::cell(per_page, per_page < 0.01 ? 6 : 1),
                  capacity, rber < 1e-11 ? "yes" : "no"});
    };
    row("ESP (tESP = 2x)", model.rberEsp(2.0, worst), "0.5x");
    row("regular SLC", model.rberSlc(worst), "0.5x");
    row("MLC, LSB pages only", model.rberMlcLsb(worst), "0.5x");
    row("MLC, both pages", model.rberMlc(worst), "1.0x");
    t.print();
    std::printf("\n");

    double lsb = model.rberMlcLsb(worst);
    double mlc = model.rberMlc(worst);
    // The footnote's claim is mechanical: an LSB read senses a single
    // V_TH boundary exactly like an SLC read, so MWS works unchanged;
    // reliability stays MLC-class (ParaBit's raw-RBER level), far from
    // ESP's zero-error regime.
    bench::anchor("LSB read senses a single boundary", "yes (SLC-like)",
                  "yes (V_REF2 only)");
    bench::anchor("MLC-LSB reliability class", "raw MLC-class RBER",
                  TablePrinter::cell(lsb / mlc, 2) +
                      "x of full-MLC RBER");
    bench::anchor("only ESP reaches zero errors", "yes",
                  (model.rberEsp(2.0, worst) < 1e-11 && lsb > 1e-6)
                      ? "yes"
                      : "NO");
    std::printf("\nConclusion: LSB-page placement lets Flash-Cosmos "
                "run on MLC chips without the\nSLC-mode capacity "
                "sacrifice, but only for error-tolerant applications; "
                "error-\nintolerant workloads (BMI, KCS) still need "
                "ESP.\n");
    return 0;
}
