/**
 * @file
 * Ablation — Flash-Cosmos on MLC parts via LSB pages (Section 9,
 * footnote 15): an LSB-page read senses a single V_TH boundary, so
 * MWS works mechanically on MLC chips when operands live in LSB
 * pages; reliability then matches regular-SLC (ParaBit-level), not
 * ESP's zero-error level.
 *
 * The operand-storage comparison table comes from the shared plat::
 * builder (golden-pinned); this driver adds the paper-vs-measured
 * anchors.
 */

#include "bench/bench_util.h"
#include "platforms/reports.h"
#include "reliability/vth_model.h"

using namespace fcos;
using namespace fcos::rel;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Ablation: operand storage mode for in-flash compute",
                  "ESP vs regular SLC vs MLC-LSB vs MLC (10K PEC, "
                  "1 year, worst pattern)");

    plat::ablationMlcLsbTable().print();
    std::printf("\n");

    VthModel model;
    OperatingCondition worst{10000, 12.0, false};
    double lsb = model.rberMlcLsb(worst);
    double mlc = model.rberMlc(worst);
    // The footnote's claim is mechanical: an LSB read senses a single
    // V_TH boundary exactly like an SLC read, so MWS works unchanged;
    // reliability stays MLC-class (ParaBit's raw-RBER level), far from
    // ESP's zero-error regime.
    bench::anchor("LSB read senses a single boundary", "yes (SLC-like)",
                  "yes (V_REF2 only)");
    bench::anchor("MLC-LSB reliability class", "raw MLC-class RBER",
                  TablePrinter::cell(lsb / mlc, 2) +
                      "x of full-MLC RBER");
    bench::anchor("only ESP reaches zero errors", "yes",
                  (model.rberEsp(2.0, worst) < 1e-11 && lsb > 1e-6)
                      ? "yes"
                      : "NO");
    std::printf("\nConclusion: LSB-page placement lets Flash-Cosmos "
                "run on MLC chips without the\nSLC-mode capacity "
                "sacrifice, but only for error-tolerant applications; "
                "error-\nintolerant workloads (BMI, KCS) still need "
                "ESP.\n");
    return 0;
}
