/**
 * @file
 * Section 8.3 — sequential write bandwidth by programming mode,
 * measured on the SSD timing simulator (data-in over the channels,
 * programming on the planes, one page per program operation).
 *
 * Paper anchors: regular SLC / MLC / TLC = 6.4 / 3.87 / 2.82 GB/s and
 * ESP = 4.7 GB/s — i.e. ESP costs write bandwidth vs regular SLC but
 * still beats MLC- and TLC-mode programming, so storing Flash-Cosmos
 * operands never becomes the SSD's write bottleneck.
 */

#include "bench/bench_util.h"
#include "host/host_model.h"
#include "nand/power_model.h"
#include "platforms/runner.h"
#include "ssd/ssd_sim.h"

using namespace fcos;

namespace {

/** Sequentially write @p total_bytes in @p mode; return GB/s. */
double
measure(nand::ProgramMode mode, std::uint64_t total_bytes)
{
    // Per-channel symmetric simulation, like the platform runner.
    ssd::SsdConfig cfg = ssd::SsdConfig::table1();
    ssd::SsdConfig chan = cfg;
    chan.channels = 1;
    chan.io.externalGBps = cfg.io.externalGBps / cfg.channels;

    ssd::SsdSim sim(chan);
    const std::uint64_t page = cfg.geometry.pageBytes;
    const std::uint32_t planes = chan.totalPlanes();
    Time t_prog = cfg.timings.programLatency(mode);
    double e_prog = nand::PowerModel::energy(
        nand::PowerModel::kProgramPower, t_prog);

    std::uint64_t pages =
        total_bytes / cfg.channels / page; // this channel's share
    for (std::uint64_t i = 0; i < pages; ++i) {
        std::uint32_t p = static_cast<std::uint32_t>(i % planes);
        // Host -> SSD -> die data-in, then the program pulse.
        sim.externalTransfer(page, [&sim, p, page, t_prog, e_prog] {
            sim.dmaToDie(p, page, [&sim, p, t_prog, e_prog] {
                sim.planeOp(p, t_prog, e_prog,
                            ssd::EnergyComponent::NandProgram, [&sim] {
                                sim.noteCompletion(sim.queue().now());
                            });
            });
        });
    }
    Time makespan = sim.drain();
    return static_cast<double>(pages * page * cfg.channels) /
           static_cast<double>(makespan); // bytes/ns == GB/s
}

} // namespace

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Section 8.3",
                  "sequential write bandwidth by programming mode");

    const std::uint64_t total = 2ULL << 30; // 2 GiB written

    struct Row
    {
        const char *name;
        nand::ProgramMode mode;
        const char *paper;
    };
    double slc_bw = 0, esp_bw = 0, mlc_bw = 0, tlc_bw = 0;

    TablePrinter t("Sequential write bandwidth");
    t.setHeader({"mode", "tPROG", "measured", "paper"});
    for (const Row &r :
         {Row{"SLC (regular)", nand::ProgramMode::SlcRegular,
              "6.4 GB/s"},
          Row{"ESP", nand::ProgramMode::SlcEsp, "4.7 GB/s"},
          Row{"MLC", nand::ProgramMode::Mlc, "3.87 GB/s"},
          Row{"TLC", nand::ProgramMode::Tlc, "2.82 GB/s"}}) {
        double bw = measure(r.mode, total);
        if (r.mode == nand::ProgramMode::SlcRegular)
            slc_bw = bw;
        if (r.mode == nand::ProgramMode::SlcEsp)
            esp_bw = bw;
        if (r.mode == nand::ProgramMode::Mlc)
            mlc_bw = bw;
        if (r.mode == nand::ProgramMode::Tlc)
            tlc_bw = bw;
        ssd::SsdConfig cfg;
        t.addRow({r.name,
                  formatTime(cfg.timings.programLatency(r.mode)),
                  TablePrinter::cell(bw, 2) + " GB/s", r.paper});
    }
    t.print();
    std::printf("\n");

    bench::anchor("ESP / SLC write bandwidth", "73.4%",
                  TablePrinter::cell(esp_bw / slc_bw * 100, 1) + "%");
    bench::anchor("ESP / MLC", "121.4%",
                  TablePrinter::cell(esp_bw / mlc_bw * 100, 1) + "%");
    bench::anchor("ESP / TLC", "166.7%",
                  TablePrinter::cell(esp_bw / tlc_bw * 100, 1) + "%");
    bench::anchor("ordering", "TLC < MLC < ESP < SLC",
                  (tlc_bw < mlc_bw && mlc_bw < esp_bw &&
                   esp_bw < slc_bw)
                      ? "TLC < MLC < ESP < SLC"
                      : "MISMATCH");
    std::printf("\nNote: absolute SLC bandwidth is limited here by the "
                "modelled external link;\nthe paper's testbed includes "
                "additional per-program overheads (EXPERIMENTS.md).\n");
    return 0;
}
