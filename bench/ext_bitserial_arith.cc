/**
 * @file
 * Extension — synthesized arithmetic from bulk bitwise operations
 * (Section 10: the operation set is logically complete; follow-up
 * frameworks like SIMDRAM build arithmetic on such substrates).
 *
 * Demonstrates an element-wise ripple-carry adder and an unsigned
 * comparator running entirely in flash: every intermediate (carry,
 * equal-so-far mask) is computed with MWS / latch-XOR chains and
 * persisted with program-from-latch, never crossing the channel.
 */

#include "bench/bench_util.h"
#include "core/arith.h"
#include "util/rng.h"

using namespace fcos;
using namespace fcos::core;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Extension: in-flash bit-serial arithmetic",
                  "element-wise ADD and GREATER-THAN synthesized from "
                  "MWS + latch XOR");

    FlashCosmosDrive::Config cfg;
    cfg.geometry.blocksPerPlane = 512;
    FlashCosmosDrive drive(cfg);
    BitSerialEngine engine(drive);

    Rng rng = Rng::seeded(10);
    const unsigned width = 16;
    const std::size_t elements = 1000;
    std::vector<std::uint64_t> va(elements), vb(elements);
    for (std::size_t e = 0; e < elements; ++e) {
        va[e] = rng.nextBounded(1ULL << width);
        vb[e] = rng.nextBounded(1ULL << width);
    }
    auto [a, b] = engine.storePair(va, vb, width);

    // ---- ADD -------------------------------------------------------
    BitSlicedInt sum = engine.add(a, b);
    auto result = engine.load(sum);
    std::size_t wrong = 0;
    for (std::size_t e = 0; e < elements; ++e) {
        if (result[e] != ((va[e] + vb[e]) & ((1ULL << width) - 1)))
            ++wrong;
    }
    auto add_stats = engine.stats();

    TablePrinter t("16-bit element-wise ADD of 1,000 elements");
    t.setHeader({"metric", "value"});
    t.addRow({"incorrect elements", std::to_string(wrong)});
    t.addRow({"in-flash MWS commands",
              std::to_string(add_stats.mwsCommands)});
    t.addRow({"on-chip latch XORs",
              std::to_string(add_stats.latchXors)});
    t.addRow({"program-from-latch writes",
              std::to_string(add_stats.programs)});
    t.addRow({"NAND busy time", formatTime(add_stats.nandTime)});
    t.print();
    std::printf("\n");

    // ---- GREATER-THAN ----------------------------------------------
    VectorId gt = engine.greaterThan(a, b);
    BitVector mask = drive.readVector(gt);
    std::size_t gt_wrong = 0;
    for (std::size_t e = 0; e < elements; ++e) {
        if (mask.get(e) != (va[e] > vb[e]))
            ++gt_wrong;
    }

    bench::anchor("ADD results vs host arithmetic", "bit-exact",
                  wrong == 0 ? "bit-exact" : "INCORRECT");
    bench::anchor("GREATER-THAN mask vs host", "bit-exact",
                  gt_wrong == 0 ? "bit-exact" : "INCORRECT");
    bench::anchor("operation set logically complete (Section 10)",
                  "AND/OR/NOT/XOR suffice",
                  "adder + comparator synthesized");
    std::printf("\nNote: each adder level costs ~3 MWS + 1 program; "
                "full frameworks would\npipeline levels across planes "
                "(future work in the paper, and here).\n");
    return 0;
}
