/**
 * @file
 * Figure 12 — intra-block MWS latency (tMWS as a multiple of tR) vs
 * number of simultaneously read wordlines, validated for correctness
 * on the functional chip at every point.
 *
 * Paper anchors: <1% extra latency up to 8 wordlines; +3.3% at 48.
 */

#include "bench/bench_util.h"
#include "nand/chip.h"
#include "nand/timing_model.h"
#include "platforms/reports.h"
#include "reliability/error_injector.h"
#include "reliability/patterns.h"
#include "util/rng.h"

using namespace fcos;
using nand::TimingModel;

namespace {

/**
 * Functional validation at one sweep point, following the Section 5.2
 * methodology: program the string with the MWS *worst-case* pattern
 * (maximum string resistance: < 2 '1' cells per string, all on target
 * wordlines) using ESP, sense via MWS under worst-case wear/retention,
 * and compare with the reference AND.
 */
bool
validate(std::uint32_t n, Rng &rng)
{
    rel::VthModel model;
    rel::OperatingCondition worst{10000, 12.0, false};
    rel::VthErrorInjector inj(model, worst);
    nand::Geometry geom = nand::Geometry::tiny();
    geom.wordlinesPerSubBlock = 48;
    nand::NandChip chip(geom, nand::Timings{}, &inj);

    std::uint64_t mask = (n >= 64) ? ~0ULL : ((1ULL << n) - 1);
    auto pages = rel::worstCaseMwsPattern(48, geom.pageBits(), mask, rng);
    fcos_assert(rel::satisfiesWorstCaseConstraints(pages, mask),
                "pattern generator violated its own constraints");

    BitVector expected(geom.pageBits(), true);
    for (std::uint32_t wl = 0; wl < 48; ++wl) {
        chip.programPageEsp({0, 0, 0, wl}, pages[wl],
                            nand::EspParams{2.0});
        if (mask & (1ULL << wl))
            expected &= pages[wl];
    }
    nand::MwsCommand cmd;
    cmd.plane = 0;
    cmd.selections.push_back(nand::WlSelection{0, 0, mask});
    chip.executeMws(cmd);
    return chip.dataOut(0) == expected;
}

} // namespace

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Figure 12",
                  "intra-block MWS latency vs number of read "
                  "wordlines (zero-error operating points)");

    Rng rng = Rng::seeded(12);

    // The latency table is shared with the golden test that pins it;
    // the worst-case functional validation stays here (it needs the
    // reliability stack).
    plat::fig12MwsLatencyTable().print();
    std::printf("\n");
    for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 40u, 48u})
        bench::anchor("zero errors at " + std::to_string(n) +
                          " wordlines (worst-case pattern)",
                      "yes", validate(n, rng) ? "yes" : "NO");
    std::printf("\n");

    bench::anchor("tMWS at 8 wordlines", "< 1% over tR",
                  TablePrinter::cell(
                      (TimingModel::intraBlockFactor(8) - 1) * 100, 2) +
                      "% over tR");
    bench::anchor("tMWS at 48 wordlines", "+3.3%",
                  TablePrinter::cell(
                      (TimingModel::intraBlockFactor(48) - 1) * 100,
                      2) +
                      "%");
    bench::anchor(
        "48-operand AND vs serial reads", "~46x fewer sensing time",
        bench::ratioStr(48.0 / TimingModel::intraBlockFactor(48)));
    return 0;
}
