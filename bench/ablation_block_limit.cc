/**
 * @file
 * Ablation — why cap inter-block MWS at four blocks? (Sections 5.2
 * and 6.1.) Sweeps the cap for a 32-operand bulk OR executed with
 * inter-block MWS only, reporting sensing latency, peak chip power,
 * and sensing energy per result page. The cap-sweep table comes from
 * the shared plat:: builder, so the golden test pins exactly what
 * this bench prints.
 *
 * The paper's design point: power must stay below the erase ceiling
 * (the SSD's provisioned worst case), which caps the fan-in at 4; the
 * latency loss vs larger fan-ins is modest because the latency curve
 * (Fig. 13) is flat until 8 blocks.
 */

#include "bench/bench_util.h"
#include "nand/power_model.h"
#include "nand/timing_model.h"
#include "platforms/reports.h"

using namespace fcos;
using nand::PowerModel;
using nand::TimingModel;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Ablation: inter-block MWS fan-in cap",
                  "32-operand bulk OR via inter-block MWS only");

    plat::ablationBlockLimitTable().print();
    std::printf("\n");

    const std::uint32_t operands = 32;
    TimingModel tm;
    Time serial = operands * tm.timings().tReadSlc;
    Time capped4 = 8 * tm.mwsLatency(1, 4);
    bench::anchor("serial reads (ParaBit) for the same OR", "32 tR",
                  formatTime(serial));
    bench::anchor("cap=4 total sensing", "(design point)",
                  formatTime(capped4));
    bench::anchor("cap=4 within the erase power budget", "yes",
                  PowerModel::interBlockMwsPower(4) <=
                          PowerModel::kErasePower
                      ? "yes"
                      : "NO");
    bench::anchor("cap=8 within the erase power budget", "no",
                  PowerModel::interBlockMwsPower(8) <=
                          PowerModel::kErasePower
                      ? "YES (unexpected)"
                      : "no");
    std::printf("\nConclusion: cap=4 cuts sensing 4x vs serial reads "
                "while staying inside the\npower envelope; larger "
                "fan-ins violate it for <2x further gain — and the\n"
                "inverse-storage path (ablation_demorgan) removes the "
                "cap entirely.\n");
    return 0;
}
