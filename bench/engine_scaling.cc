/**
 * @file
 * Engine scaling — simulated bulk-bitwise throughput vs die count.
 *
 * Weak-scaling sweep of the multi-die compute engine: every (die,
 * plane) column computes the same number of result pages (one
 * intra-block MWS AND per page), so the logical work grows with the
 * farm. Throughput scales near-linearly with dies until the one-page-
 * per-MWS result readout saturates the channel bus; adding channels
 * restores linear scaling. Every result page is validated against the
 * reference AND, so the table certifies bit-exactness and the timeline
 * in one run. The table is pinned as a golden by
 * tests/engine/scaling_golden_test.cc.
 */

#include "bench/bench_util.h"
#include "engine/report.h"

using namespace fcos;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Engine scaling",
                  "sharded bulk bitwise throughput vs die count "
                  "(weak scaling, deterministic timeline)");

    std::vector<engine::ScalingPoint> points;
    TablePrinter table =
        engine::scalingReport(engine::defaultScalingSweep(),
                              /*and_operands=*/24,
                              /*pages_per_column=*/2,
                              /*page_bytes=*/8 * 1024, &points);
    table.print();
    std::printf("\n");

    if (points.size() >= 4) {
        const auto &one = points[0];  // 1 x 1
        const auto &two = points[1];  // 1 x 2
        const auto &eight = points[3]; // 1 x 8
        bench::anchor("2-die speedup over 1 die", "~2x (near-linear)",
                      bench::ratioStr(two.throughputGBps /
                                      one.throughputGBps));
        bench::anchor("8 dies on one channel", "channel-bound",
                      bench::ratioStr(eight.throughputGBps /
                                      one.throughputGBps) +
                          " at " +
                          TablePrinter::cell(
                              eight.channelUtilization * 100.0, 1) +
                          "% channel util");
    }
    if (points.size() >= 7) {
        const auto &c1 = points[3]; // 1 x 8
        const auto &c8 = points[6]; // 8 x 8
        bench::anchor("8 channels vs 1 (8 dies each)", "~8x",
                      bench::ratioStr(c8.throughputGBps /
                                      c1.throughputGBps));
    }
    return 0;
}
