/**
 * @file
 * Mixed traffic — overlapped read / write / compute requests through
 * the drive's admission queue (the concurrent request API).
 *
 * Two tables. The first is the deterministic throughput-vs-latency
 * sweep over arrival rates and QoS weight settings: per-class
 * simulated p50/p99 end-to-end latency (arrival to completion, queue
 * wait included), traffic span, energy, and the payload digest — all
 * bit-identical at any worker count, and pinned as a golden by
 * tests/core/traffic_golden_test.cc. The second measures the host
 * simulator itself: wall-clock requests/second of the heaviest sweep
 * point at 1, 2, and 4 workers, with the digest certifying that the
 * worker count never perturbed the simulated schedule.
 */

#include "bench/bench_util.h"
#include "core/traffic.h"
#include "util/units.h"

using namespace fcos;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Mixed traffic",
                  "overlapped I/O + compute through conflict-grained "
                  "admission (throughput vs latency)");

    std::vector<core::TrafficPoint> points;
    TablePrinter table =
        core::trafficReport(core::defaultTrafficSweep(), &points);
    table.print();
    std::printf("\n");

    if (points.size() >= 6) {
        // Rows alternate 1:1:1 / 4:2:1 per arrival rate; the last
        // pair is the 2us (most contended) rate.
        const core::TrafficPoint &flat = points[4];
        const core::TrafficPoint &qos = points[5];
        bench::anchor("read p99, 2us arrivals, qos 4:2:1 vs 1:1:1",
                      "lower (reads favored)",
                      bench::ratioStr(
                          timeToUs(qos.byClass[0].p99) /
                          timeToUs(flat.byClass[0].p99)));
        bench::anchor("span, 2us arrivals, qos 4:2:1 vs 1:1:1",
                      "~1x (work conserving)",
                      bench::ratioStr(timeToUs(qos.makespan) /
                                      timeToUs(flat.makespan)));
    }

    // Host-simulator throughput of the most contended point at 1/2/4
    // worker lanes. The digest column is the determinism certificate:
    // identical digests mean identical simulated schedules.
    TablePrinter wall("host simulator: wall-clock requests/second");
    wall.setHeader({"workers", "reqs", "wall s", "req/s", "digest ok"});
    core::TrafficConfig heavy;
    heavy.interArrivalUs = 2.0;
    std::uint64_t base_digest = 0;
    for (std::uint32_t workers : {1u, 2u, 4u}) {
        heavy.workers = workers;
        const core::TrafficPoint p = core::runMixedTraffic(heavy);
        if (workers == 1)
            base_digest = p.digest;
        wall.addRow({TablePrinter::cellInt(workers),
                     TablePrinter::cellInt(heavy.requests),
                     TablePrinter::cell(p.wallSeconds, 4),
                     TablePrinter::cell(p.requestsPerSecond, 1),
                     p.digest == base_digest ? "yes" : "NO"});
    }
    wall.print();
    return 0;
}
