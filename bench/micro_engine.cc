/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrate:
 * event-queue throughput, bulk bit-vector operations, MWS execution on
 * the functional chip, BCH coding, and plan compilation. These bound
 * how large a workload the timing/functional simulators can sustain.
 */

#include "bench/minibench.h"

#include "core/drive.h"
#include "nand/chip.h"
#include "reliability/bch.h"
#include "sim/event_queue.h"
#include "util/rng.h"

using namespace fcos;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue q;
        int sink = 0;
        for (int i = 0; i < n; ++i)
            q.schedule(static_cast<Time>(i), [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void
BM_BitVectorAnd(benchmark::State &state)
{
    const std::size_t bits = static_cast<std::size_t>(state.range(0));
    Rng rng = Rng::seeded(1);
    BitVector a(bits), b(bits);
    a.randomize(rng);
    b.randomize(rng);
    for (auto _ : state) {
        a &= b;
        benchmark::DoNotOptimize(a.words().data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_BitVectorAnd)->Arg(16 * 1024 * 8)->Arg(1024 * 1024 * 8);

void
BM_ChipMws48(benchmark::State &state)
{
    nand::Geometry geom = nand::Geometry::tiny();
    geom.wordlinesPerSubBlock = 48;
    geom.pageBytes = 16 * 1024;
    nand::NandChip chip(geom);
    Rng rng = Rng::seeded(2);
    std::uint64_t mask = 0;
    for (std::uint32_t wl = 0; wl < 48; ++wl) {
        BitVector v(geom.pageBits());
        v.randomize(rng);
        chip.programPage({0, 0, 0, wl}, v);
        mask |= 1ULL << wl;
    }
    nand::MwsCommand cmd;
    cmd.plane = 0;
    cmd.selections.push_back(nand::WlSelection{0, 0, mask});
    for (auto _ : state) {
        chip.executeMws(cmd);
        benchmark::DoNotOptimize(chip.dataOut(0).words().data());
    }
    state.SetItemsProcessed(state.iterations() * 48);
}
BENCHMARK(BM_ChipMws48);

void
BM_BchEncode(benchmark::State &state)
{
    rel::BchCode code(10, 4);
    Rng rng = Rng::seeded(3);
    BitVector data(code.k());
    data.randomize(rng);
    for (auto _ : state) {
        BitVector cw = code.encode(data);
        benchmark::DoNotOptimize(cw.words().data());
    }
    state.SetBytesProcessed(state.iterations() * code.k() / 8);
}
BENCHMARK(BM_BchEncode);

void
BM_BchDecodeWithErrors(benchmark::State &state)
{
    rel::BchCode code(10, 4);
    Rng rng = Rng::seeded(4);
    BitVector data(code.k());
    data.randomize(rng);
    BitVector cw = code.encode(data);
    for (auto _ : state) {
        BitVector corrupted = cw;
        for (int e = 0; e < 4; ++e) {
            auto p =
                static_cast<std::size_t>(rng.nextBounded(code.n()));
            corrupted.set(p, !corrupted.get(p));
        }
        auto r = code.decode(corrupted);
        benchmark::DoNotOptimize(r.ok);
    }
}
BENCHMARK(BM_BchDecodeWithErrors);

void
BM_PlannerFig16(benchmark::State &state)
{
    core::FlashCosmosDrive drive;
    core::FlashCosmosDrive::WriteOptions pa, pb, ic, id;
    pa.group = 1;
    pb.group = 2;
    ic.group = 3;
    ic.storeInverted = true;
    id.group = 4;
    id.storeInverted = true;
    Rng rng = Rng::seeded(5);
    auto mk = [&](core::FlashCosmosDrive::WriteOptions &o) {
        BitVector v(256);
        v.randomize(rng);
        return core::Expr::leaf(drive.fcWrite(v, o));
    };
    core::Expr a1 = mk(pa);
    core::Expr b1 = mk(pb), b2 = mk(pb), b3 = mk(pb), b4 = mk(pb);
    core::Expr c1 = mk(ic), c3 = mk(ic);
    core::Expr d2 = mk(id), d4 = mk(id);
    core::Expr expr = core::Expr::And(
        {core::Expr::Or({a1, core::Expr::And({b1, b2, b3, b4})}),
         core::Expr::Or({c1, c3}), core::Expr::Or({d2, d4})});
    for (auto _ : state) {
        core::MwsPlan plan = drive.planFor(expr);
        benchmark::DoNotOptimize(plan.commands.size());
    }
}
BENCHMARK(BM_PlannerFig16);

void
BM_DriveFcReadAnd8(benchmark::State &state)
{
    core::FlashCosmosDrive drive;
    core::FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    Rng rng = Rng::seeded(6);
    std::vector<core::Expr> leaves;
    for (int i = 0; i < 8; ++i) {
        BitVector v(8192);
        v.randomize(rng);
        leaves.push_back(core::Expr::leaf(drive.fcWrite(v, group)));
    }
    core::Expr expr = core::Expr::And(leaves);
    for (auto _ : state) {
        BitVector r = drive.fcRead(expr);
        benchmark::DoNotOptimize(r.words().data());
    }
    state.SetBytesProcessed(state.iterations() * 8192 / 8);
}
BENCHMARK(BM_DriveFcReadAnd8);

} // namespace

BENCHMARK_MAIN();
