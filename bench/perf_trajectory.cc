/**
 * @file
 * Per-PR perf trajectory: replays the two scale-tier workloads — the
 * Table-1 figure read (dense AND3 across the full 8x8-die SSD) and the
 * beyond-DRAM streamed read — at 1/2/4 host workers and writes
 * BENCH_pr.json (schema documented in README.md, "Perf trajectory").
 *
 * Every later PR reruns this bench, so speedup claims ride on recorded
 * numbers instead of assertions. The bench cross-checks the stream
 * digest across worker counts before reporting: a perf number from a
 * run that broke bit-identity would be worse than no number.
 *
 * Usage: bench_perf_trajectory [output.json]
 *   FCOS_BENCH_REPS   repetitions per (workload, workers) cell; the
 *                     best wall time wins (default 3)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench/bench_util.h"
#include "core/drive.h"
#include "core/result_sink.h"
#include "core/traffic.h"
#include "obs/obs.h"
#include "util/rng.h"
#include "util/units.h"

namespace {

using namespace fcos;
using core::Expr;
using core::FlashCosmosDrive;

constexpr std::uint32_t kWorkerCounts[] = {1, 2, 4};

double
wallSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<std::uint64_t>(ru.ru_maxrss); // bytes
#else
        return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024; // KiB
#endif
    }
#endif
    return 0;
}

/** One timed replay: returns wall seconds; fills digest + page count. */
struct Replay
{
    double wallSeconds = 0.0;
    std::uint64_t resultPages = 0;
    std::uint64_t pagesSimulated = 0; ///< programs + result pages
    std::uint64_t digest = 0;
};

/** Common body of both workloads: a full Table-1 drive computing
 *  AND(a, b, c) with c stored inverted, @p rows pages per plane
 *  column, streamed through a DigestSink. @p rows = 2 reproduces the
 *  Table-1 figure tier's shape, @p rows = 4 the beyond-DRAM tier's. */
Replay
replayAnd3(std::uint32_t workers, std::uint64_t rows, std::uint64_t seed)
{
    FlashCosmosDrive::Config cfg;
    cfg.channels = 8;
    cfg.dies = 8;
    cfg.geometry = nand::Geometry::table1();
    cfg.workers = workers;

    const std::uint32_t columns =
        cfg.channels * cfg.dies * cfg.geometry.planesPerDie;
    const std::uint64_t pages = rows * columns;
    auto gen = [seed](std::uint64_t vec) {
        return [seed, vec](std::uint64_t j) {
            return nand::PageImage::random(Rng::mix(seed + vec, j));
        };
    };

    const auto t0 = std::chrono::steady_clock::now();
    FlashCosmosDrive drive(cfg);
    const std::uint64_t group = 7;
    core::VectorId a = drive.fcWritePages(gen(0), pages, {group, false});
    core::VectorId b = drive.fcWritePages(gen(1), pages, {group, false});
    core::VectorId c =
        drive.fcWritePages(gen(2), pages, {group, true}); // inverted

    core::DigestSink digest;
    FlashCosmosDrive::ReadStats st;
    drive.fcRead(
        Expr::And({Expr::leaf(a), Expr::leaf(b), Expr::leaf(c)}), digest,
        &st);

    Replay r;
    r.wallSeconds = wallSeconds(t0);
    r.resultPages = st.streamChunks;
    r.pagesSimulated = 3 * pages + st.streamChunks;
    r.digest = digest.digest();
    return r;
}

struct Cell
{
    std::uint32_t workers = 1;
    Replay best;
};

struct WorkloadResult
{
    std::string name;
    std::vector<Cell> cells;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    const char *out_path =
        (argc > 1 && argv[1][0] != '-') ? argv[1] : "BENCH_pr.json";
    int reps = 5;
    if (const char *s = std::getenv("FCOS_BENCH_REPS"))
        reps = std::max(1, std::atoi(s));

    bench::header("Perf trajectory",
                  "scale-tier workloads at 1/2/4 host workers");

    struct Workload
    {
        const char *name;
        std::uint64_t rows;
        std::uint64_t seed;
    };
    const Workload workloads[] = {
        {"table1_and3", 2, 101},      // the Table-1 figure tier shape
        {"beyond_dram_and3", 4, 7100} // the streamed beyond-DRAM shape
    };

    std::vector<WorkloadResult> results;
    for (const Workload &w : workloads) {
        WorkloadResult wr;
        wr.name = w.name;
        for (std::uint32_t workers : kWorkerCounts)
            wr.cells.push_back({workers, {}});
        // One untimed warmup so the first timed cell doesn't pay the
        // allocator / page-cache cold start for everyone.
        (void)replayAnd3(1, w.rows, w.seed);
        // Interleave repetitions round-robin across worker counts so
        // slow host phases (page cache, frequency, noisy neighbours)
        // spread evenly instead of biasing one cell.
        for (int rep = 0; rep < reps; ++rep) {
            for (Cell &cell : wr.cells) {
                Replay r = replayAnd3(cell.workers, w.rows, w.seed);
                if (cell.best.resultPages == 0 ||
                    r.wallSeconds < cell.best.wallSeconds) {
                    const std::uint64_t prev = cell.best.digest;
                    if (prev != 0 && prev != r.digest) {
                        std::fprintf(stderr,
                                     "FATAL: digest changed between "
                                     "reps of %s @%u workers\n",
                                     w.name, cell.workers);
                        return 1;
                    }
                    cell.best = r;
                }
            }
        }
        // Bit-identity across worker counts gates the report.
        for (const Cell &cell : wr.cells) {
            if (cell.best.digest != wr.cells.front().best.digest) {
                std::fprintf(stderr,
                             "FATAL: %s digest diverges at %u workers\n",
                             w.name, cell.workers);
                return 1;
            }
        }
        for (const Cell &cell : wr.cells) {
            const double pps = static_cast<double>(
                                   cell.best.pagesSimulated) /
                               cell.best.wallSeconds;
            std::printf("  %-18s %u worker(s): %8.3f s   %s\n", w.name,
                        cell.workers, cell.best.wallSeconds,
                        bench::rateStr(pps, "pages").c_str());
        }
        results.push_back(std::move(wr));
    }

    // ---- Observability overhead ---------------------------------------
    // The Table-1 shape again at 1 worker, best of `reps` each way:
    // (a) obs layer left disabled — every hook is one dormant branch,
    //     the state every other cell in this file runs in — and
    // (b) trace + metrics fully enabled, captured in memory.
    // The disabled run must stay within 2% of the main table1_and3
    // 1-worker cell (same code path, so this certifies the dormant
    // hooks cost nothing measurable); the enabled delta is recorded
    // for the trajectory but not gated.
    Replay best_off, best_on;
    for (int rep = 0; rep < reps; ++rep) {
        Replay off = replayAnd3(1, 2, 101);
        if (best_off.resultPages == 0 ||
            off.wallSeconds < best_off.wallSeconds)
            best_off = off;
        obs::ScopedCapture cap(/*trace=*/true, /*metrics=*/true);
        Replay on = replayAnd3(1, 2, 101);
        if (best_on.resultPages == 0 ||
            on.wallSeconds < best_on.wallSeconds)
            best_on = on;
    }
    if (best_on.digest != best_off.digest) {
        std::fprintf(stderr, "FATAL: enabling observability changed the "
                             "stream digest\n");
        return 1;
    }
    auto pps_of = [](const Replay &r) {
        return static_cast<double>(r.pagesSimulated) / r.wallSeconds;
    };
    const double base_pps =
        pps_of(results.front().cells.front().best); // table1_and3 @1w
    const double off_pps = pps_of(best_off);
    const double on_pps = pps_of(best_on);
    const double off_overhead_pct = (1.0 - off_pps / base_pps) * 100.0;
    const double on_overhead_pct = (1.0 - on_pps / off_pps) * 100.0;
    std::printf("\n  observability: disabled %s (%+.2f%% vs baseline), "
                "enabled %s (%+.2f%% vs disabled)\n",
                bench::rateStr(off_pps, "pages").c_str(),
                off_overhead_pct,
                bench::rateStr(on_pps, "pages").c_str(), on_overhead_pct);
    if (off_overhead_pct > 2.0) {
        std::fprintf(stderr,
                     "FATAL: disabled-observability overhead %.2f%% "
                     "exceeds the 2%% gate\n",
                     off_overhead_pct);
        return 1;
    }

    // ---- Mixed traffic (concurrent request API) ------------------------
    // The heaviest bench/mixed_traffic sweep point — 2us arrivals, flat
    // QoS — at 1/2/4 workers. Requests/second measures the host cost of
    // the admission + overlap machinery; the digest and the (worker-
    // invariant) latency quantiles gate the report the same way the
    // scale workloads do.
    core::TrafficConfig mixed_cfg;
    mixed_cfg.interArrivalUs = 2.0;
    struct MixedCell
    {
        std::uint32_t workers = 1;
        core::TrafficPoint best;
        bool set = false;
    };
    std::vector<MixedCell> mixed;
    for (std::uint32_t workers : kWorkerCounts)
        mixed.push_back({workers, {}, false});
    mixed_cfg.workers = 1;
    (void)core::runMixedTraffic(mixed_cfg); // warmup
    for (int rep = 0; rep < reps; ++rep) {
        for (MixedCell &cell : mixed) {
            mixed_cfg.workers = cell.workers;
            core::TrafficPoint p = core::runMixedTraffic(mixed_cfg);
            if (cell.set && cell.best.digest != p.digest) {
                std::fprintf(stderr,
                             "FATAL: mixed-traffic digest changed "
                             "between reps @%u workers\n",
                             cell.workers);
                return 1;
            }
            if (!cell.set || p.wallSeconds < cell.best.wallSeconds)
                cell.best = p;
            cell.set = true;
        }
    }
    std::printf("\n");
    for (const MixedCell &cell : mixed) {
        if (cell.best.digest != mixed.front().best.digest) {
            std::fprintf(stderr,
                         "FATAL: mixed-traffic digest diverges at %u "
                         "workers\n",
                         cell.workers);
            return 1;
        }
        std::printf("  %-18s %u worker(s): %8.3f s   %9.1f req/s\n",
                    "mixed_traffic", cell.workers,
                    cell.best.wallSeconds,
                    cell.best.requestsPerSecond);
    }
    {
        const core::TrafficPoint &p = mixed.front().best;
        std::printf("  mixed_traffic p99 us: read %.1f  write %.1f  "
                    "compute %.1f (%s, %u requests)\n",
                    timeToUs(p.byClass[0].p99),
                    timeToUs(p.byClass[1].p99),
                    timeToUs(p.byClass[2].p99), mixed_cfg.label().c_str(),
                    mixed_cfg.requests);
    }

    // ---- Closed-loop soak (capacity recycling) -------------------------
    // A bench-sized slice of the soak tier: 200k closed-loop requests
    // with overwrite/trim churn, so GC copyback + erase traffic is on
    // the timeline the whole run. Requests/second measures the host
    // cost of serving at steady state; the digest gates the report
    // across reps and worker counts; GC write amplification is the
    // recycling trajectory number.
    core::ClosedLoopConfig soak_cfg;
    soak_cfg.requests = 200'000;
    struct SoakCell
    {
        std::uint32_t workers = 1;
        core::ClosedLoopPoint best;
        bool set = false;
    };
    std::vector<SoakCell> soak;
    for (std::uint32_t workers : kWorkerCounts)
        soak.push_back({workers, {}, false});
    for (int rep = 0; rep < reps; ++rep) {
        for (SoakCell &cell : soak) {
            soak_cfg.workers = cell.workers;
            core::ClosedLoopPoint p = core::runClosedLoopTraffic(soak_cfg);
            if (cell.set && cell.best.digest != p.digest) {
                std::fprintf(stderr,
                             "FATAL: soak digest changed between reps "
                             "@%u workers\n",
                             cell.workers);
                return 1;
            }
            if (!cell.set || p.wallSeconds < cell.best.wallSeconds)
                cell.best = p;
            cell.set = true;
        }
    }
    std::printf("\n");
    for (const SoakCell &cell : soak) {
        if (cell.best.digest != soak.front().best.digest) {
            std::fprintf(stderr,
                         "FATAL: soak digest diverges at %u workers\n",
                         cell.workers);
            return 1;
        }
        std::printf("  %-18s %u worker(s): %8.3f s   %9.1f req/s\n",
                    "closed_loop_soak", cell.workers,
                    cell.best.wallSeconds,
                    cell.best.requestsPerSecond);
    }
    {
        const core::ClosedLoopPoint &p = soak.front().best;
        std::printf("  closed_loop_soak gc: %llu runs, %llu copies, "
                    "%llu erases, write amplification %.3f\n",
                    (unsigned long long)p.gcRuns,
                    (unsigned long long)p.gcPageCopies,
                    (unsigned long long)p.gcBlocksErased,
                    1.0 + static_cast<double>(p.gcPageCopies) /
                              static_cast<double>(p.hostPagesWritten));
    }

    // ---- BENCH_pr.json -------------------------------------------------
    FILE *f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"fcos-perf-trajectory-v1\",\n");
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
                 (unsigned long long)peakRssBytes());
    std::fprintf(f, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &wr = results[i];
        std::fprintf(f, "    {\n      \"name\": \"%s\",\n",
                     wr.name.c_str());
        std::fprintf(f, "      \"result_pages\": %llu,\n",
                     (unsigned long long)wr.cells.front().best.resultPages);
        std::fprintf(f, "      \"pages_simulated\": %llu,\n",
                     (unsigned long long)
                         wr.cells.front()
                             .best.pagesSimulated);
        std::fprintf(f, "      \"stream_digest\": %llu,\n",
                     (unsigned long long)wr.cells.front().best.digest);
        std::fprintf(f, "      \"runs\": [\n");
        for (std::size_t j = 0; j < wr.cells.size(); ++j) {
            const Cell &cell = wr.cells[j];
            const double pps = static_cast<double>(
                                   cell.best.pagesSimulated) /
                               cell.best.wallSeconds;
            std::fprintf(f,
                         "        {\"workers\": %u, \"wall_seconds\": "
                         "%.6f, \"pages_per_second\": %.1f}%s\n",
                         cell.workers, cell.best.wallSeconds, pps,
                         j + 1 < wr.cells.size() ? "," : "");
        }
        std::fprintf(f, "      ]\n    }%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"observability\": {\n"
                 "    \"workload\": \"table1_and3\", \"workers\": 1,\n"
                 "    \"disabled_pages_per_second\": %.1f,\n"
                 "    \"enabled_pages_per_second\": %.1f,\n"
                 "    \"disabled_overhead_pct\": %.3f,\n"
                 "    \"enabled_overhead_pct\": %.3f\n  },\n",
                 off_pps, on_pps, off_overhead_pct, on_overhead_pct);
    {
        const core::TrafficPoint &p = mixed.front().best;
        static const char *const kClassNames[] = {"read", "write",
                                                  "compute"};
        std::fprintf(f,
                     "  \"mixed_traffic\": {\n"
                     "    \"config\": \"%s\", \"requests\": %u,\n"
                     "    \"stream_digest\": %llu,\n",
                     mixed_cfg.label().c_str(), mixed_cfg.requests,
                     (unsigned long long)p.digest);
        std::fprintf(f, "    \"latency_us\": {\n");
        for (int c = 0; c < 3; ++c)
            std::fprintf(
                f, "      \"%s\": {\"p50\": %.1f, \"p99\": %.1f}%s\n",
                kClassNames[c], timeToUs(p.byClass[c].p50),
                timeToUs(p.byClass[c].p99), c < 2 ? "," : "");
        std::fprintf(f, "    },\n    \"runs\": [\n");
        for (std::size_t j = 0; j < mixed.size(); ++j)
            std::fprintf(
                f,
                "      {\"workers\": %u, \"wall_seconds\": %.6f, "
                "\"requests_per_second\": %.1f}%s\n",
                mixed[j].workers, mixed[j].best.wallSeconds,
                mixed[j].best.requestsPerSecond,
                j + 1 < mixed.size() ? "," : "");
        std::fprintf(f, "    ]\n  },\n");
    }
    {
        const core::ClosedLoopPoint &p = soak.front().best;
        static const char *const kClassNames[] = {"read", "write",
                                                  "compute"};
        std::fprintf(f,
                     "  \"soak\": {\n"
                     "    \"config\": \"%s\", \"requests\": %llu,\n"
                     "    \"stream_digest\": %llu,\n"
                     "    \"gc_runs\": %llu,\n"
                     "    \"gc_page_copies\": %llu,\n"
                     "    \"gc_blocks_erased\": %llu,\n"
                     "    \"host_pages_written\": %llu,\n"
                     "    \"write_amplification\": %.4f,\n",
                     soak_cfg.label().c_str(),
                     (unsigned long long)soak_cfg.requests,
                     (unsigned long long)p.digest,
                     (unsigned long long)p.gcRuns,
                     (unsigned long long)p.gcPageCopies,
                     (unsigned long long)p.gcBlocksErased,
                     (unsigned long long)p.hostPagesWritten,
                     1.0 + static_cast<double>(p.gcPageCopies) /
                               static_cast<double>(p.hostPagesWritten));
        std::fprintf(f, "    \"latency_us\": {\n");
        for (int c = 0; c < 3; ++c)
            std::fprintf(
                f, "      \"%s\": {\"p50\": %.1f, \"p99\": %.1f}%s\n",
                kClassNames[c], timeToUs(p.byClass[c].p50),
                timeToUs(p.byClass[c].p99), c < 2 ? "," : "");
        std::fprintf(f, "    },\n    \"runs\": [\n");
        for (std::size_t j = 0; j < soak.size(); ++j)
            std::fprintf(
                f,
                "      {\"workers\": %u, \"wall_seconds\": %.6f, "
                "\"requests_per_second\": %.1f}%s\n",
                soak[j].workers, soak[j].best.wallSeconds,
                soak[j].best.requestsPerSecond,
                j + 1 < soak.size() ? "," : "");
        std::fprintf(f, "    ]\n  },\n");
    }
    // Scale-tier wall time per worker count: the sum over both
    // workloads, i.e. what the CTest scale label costs at that setting.
    std::fprintf(f, "  \"scale_tier\": [\n");
    for (std::size_t k = 0; k < std::size(kWorkerCounts); ++k) {
        double total = 0.0;
        for (const WorkloadResult &wr : results)
            total += wr.cells[k].best.wallSeconds;
        std::fprintf(f,
                     "    {\"workers\": %u, \"wall_seconds\": %.6f}%s\n",
                     kWorkerCounts[k], total,
                     k + 1 < std::size(kWorkerCounts) ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Headline ratio: total pages/sec at 4 workers over 1 worker.
    double t1 = 0.0, t4 = 0.0, pages_total = 0.0;
    for (const WorkloadResult &wr : results) {
        t1 += wr.cells.front().best.wallSeconds;
        t4 += wr.cells.back().best.wallSeconds;
        pages_total +=
            static_cast<double>(wr.cells.front().best.pagesSimulated);
    }
    std::fprintf(f, "  \"throughput_ratio_4w_over_1w\": %.4f\n", t1 / t4);
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::printf("\n  4-worker/1-worker throughput: %s   (peak RSS %.1f "
                "MiB)\n",
                bench::ratioStr(t1 / t4).c_str(),
                static_cast<double>(peakRssBytes()) / (1024.0 * 1024.0));
    std::printf("  wrote %s (%.0f pages simulated per workload set)\n",
                out_path, pages_total);
    return 0;
}
