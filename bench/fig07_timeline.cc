/**
 * @file
 * Figure 7 — channel execution timelines of OSP, ISP and in-flash
 * processing for a bulk bitwise OR of three 1-MiB vectors on the
 * illustrative SSD (8 channels x 4 two-plane dies, tR = 60 us,
 * tDMA = 27 us per 32-KiB die batch, tEXT = 4 us).
 *
 * The table comes from the shared plat::fig07TimelineTable builder
 * (golden-pinned in tests/platforms/report_golden_test.cc) and runs
 * through the compute engine by default; the analytic path is printed
 * alongside for cross-validation.
 *
 * Paper anchors: OSP 471 us (external-I/O bound), ISP 431 us
 * (internal-I/O bound), IFP 335 us (sensing bound).
 */

#include "bench/bench_util.h"
#include "platforms/reports.h"

using namespace fcos;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Figure 7",
                  "execution timelines: OSP vs ISP vs in-flash (OR of "
                  "three 1-MiB vectors)");

    ssd::SsdConfig cfg = ssd::SsdConfig::figure7();
    plat::PlatformRunner engine_runner(cfg);
    plat::PlatformRunner analytic_runner(cfg, host::HostConfig{},
                                         plat::RunnerMode::Analytic);

    plat::fig07TimelineTable(engine_runner).print();
    std::printf("\n");
    plat::fig07TimelineTable(analytic_runner).print();
    std::printf("\n");

    wl::Workload w = plat::figure7Workload();
    plat::RunResult osp = engine_runner.run(plat::PlatformKind::Osp, w);
    plat::RunResult isp = engine_runner.run(plat::PlatformKind::Isp, w);
    plat::RunResult ifp =
        engine_runner.run(plat::PlatformKind::ParaBit, w);
    bench::anchor("OSP execution time", "471 us",
                  formatTime(osp.makespan));
    bench::anchor("ISP execution time", "431 us",
                  formatTime(isp.makespan));
    bench::anchor("IFP execution time", "335 us",
                  formatTime(ifp.makespan));
    bench::anchor("ordering", "OSP > ISP > IFP",
                  (osp.makespan > isp.makespan &&
                   isp.makespan > ifp.makespan)
                      ? "OSP > ISP > IFP"
                      : "MISMATCH");
    return 0;
}
