/**
 * @file
 * Figure 7 — channel execution timelines of OSP, ISP and in-flash
 * processing for a bulk bitwise OR of three 1-MiB vectors on the
 * illustrative SSD (8 channels x 4 two-plane dies, tR = 60 us,
 * tDMA = 27 us per 32-KiB die batch, tEXT = 4 us).
 *
 * Paper anchors: OSP 471 us (external-I/O bound), ISP 431 us
 * (internal-I/O bound), IFP 335 us (sensing bound).
 */

#include "bench/bench_util.h"
#include "platforms/runner.h"

using namespace fcos;

int
main()
{
    bench::header("Figure 7",
                  "execution timelines: OSP vs ISP vs in-flash (OR of "
                  "three 1-MiB vectors)");

    ssd::SsdConfig cfg = ssd::SsdConfig::figure7();
    plat::PlatformRunner runner(cfg);

    wl::Workload w;
    w.name = "fig7";
    w.paramName = "-";
    wl::OpBatch b;
    b.andOperands = 0;
    b.orOperands = 3;
    b.operandBytes = 1ULL << 20;
    b.resultToHost = true;
    b.hostPostProcess = false;
    w.batches.push_back(b);

    TablePrinter t("Per-channel execution timeline");
    t.setHeader({"platform", "exec time", "paper", "plane busy",
                 "channel busy", "external busy", "bottleneck"});

    struct Row
    {
        plat::PlatformKind kind;
        const char *paper;
    };
    for (const Row &r :
         {Row{plat::PlatformKind::Osp, "471 us"},
          Row{plat::PlatformKind::Isp, "431 us"},
          Row{plat::PlatformKind::ParaBit, "335 us"}}) {
        plat::RunResult res = runner.run(r.kind, w);
        const char *bottleneck = "sensing";
        if (res.externalBusy >= res.channelBusy &&
            res.externalBusy >= res.planeBusy)
            bottleneck = "external I/O";
        else if (res.channelBusy >= res.planeBusy)
            bottleneck = "internal I/O";
        t.addRow({plat::platformName(r.kind), formatTime(res.makespan),
                  r.paper, formatTime(res.planeBusy),
                  formatTime(res.channelBusy),
                  formatTime(res.externalBusy), bottleneck});
    }
    t.print();

    std::printf("\n");
    plat::RunResult osp = runner.run(plat::PlatformKind::Osp, w);
    plat::RunResult isp = runner.run(plat::PlatformKind::Isp, w);
    plat::RunResult ifp = runner.run(plat::PlatformKind::ParaBit, w);
    bench::anchor("OSP execution time", "471 us",
                  formatTime(osp.makespan));
    bench::anchor("ISP execution time", "431 us",
                  formatTime(isp.makespan));
    bench::anchor("IFP execution time", "335 us",
                  formatTime(ifp.makespan));
    bench::anchor("ordering", "OSP > ISP > IFP",
                  (osp.makespan > isp.makespan &&
                   isp.makespan > ifp.makespan)
                      ? "OSP > ISP > IFP"
                      : "MISMATCH");
    return 0;
}
