/**
 * @file
 * Ablation — the Section 6.1 De Morgan trick: executing a bulk OR of
 * N operands three ways and comparing sensing cost, functionally
 * validated on the drive:
 *
 *  (a) ParaBit-style serial sensing (one tR per operand);
 *  (b) inter-block MWS with the 4-block power cap;
 *  (c) operands stored *inverted*, one inverse intra-block MWS per
 *      48-operand string — the Flash-Cosmos preferred layout.
 *
 * The strategy-cost table comes from the shared plat:: builder
 * (golden-pinned); the functional validation of strategy (c) stays
 * here because it needs the drive end to end.
 */

#include "bench/bench_util.h"
#include "core/drive.h"
#include "platforms/reports.h"
#include "util/rng.h"

using namespace fcos;
using core::Expr;
using core::FlashCosmosDrive;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Ablation: OR via De Morgan inverse storage",
                  "bulk OR cost by execution strategy");

    plat::ablationDeMorganTable().print();

    // Functional validation of strategy (c) on the drive.
    std::printf("\nFunctional check (16-operand OR, inverse storage):\n");
    FlashCosmosDrive drive;
    FlashCosmosDrive::WriteOptions inv;
    inv.group = 1;
    inv.storeInverted = true;
    Rng rng = Rng::seeded(61);
    std::vector<BitVector> data;
    std::vector<Expr> leaves;
    for (int i = 0; i < 16; ++i) {
        BitVector v(2048);
        v.randomize(rng);
        leaves.push_back(Expr::leaf(drive.fcWrite(v, inv)));
        data.push_back(std::move(v));
    }
    FlashCosmosDrive::ReadStats stats;
    BitVector result = drive.fcRead(Expr::Or(leaves), &stats);
    BitVector expected = data[0];
    for (int i = 1; i < 16; ++i)
        expected |= data[i];

    bench::anchor("16-operand OR result", "bit-exact",
                  result == expected ? "bit-exact" : "INCORRECT");
    bench::anchor("MWS commands per result page (tiny geometry, "
                  "8-WL strings)",
                  "ceil(16/8) = 2",
                  std::to_string(stats.mwsCommands / stats.resultPages));
    bench::anchor("48-operand OR, one command?", "yes (Section 6.1)",
                  (48u + 47u) / 48u == 1 ? "yes" : "no");
    std::printf("\nConclusion: inverse storage turns OR into intra-"
                "block MWS — no fan-in cap,\nlower power than "
                "inter-block activation, and 48 operands per sensing "
                "operation.\n");
    return 0;
}
