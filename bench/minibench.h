/**
 * @file
 * Drop-in timing harness for the microbenchmarks: uses Google
 * Benchmark when the build found it (FCOS_HAVE_GOOGLE_BENCHMARK),
 * otherwise provides a minimal vendored implementation of the subset
 * the benches use — State with `for (auto _ : state)`, range(),
 * SetItemsProcessed / SetBytesProcessed, DoNotOptimize, BENCHMARK()
 * with ->Arg() chaining, and BENCHMARK_MAIN().
 *
 * The fallback keeps bench_micro_engine building and running
 * everywhere instead of silently disappearing from the build (ROADMAP
 * open item). It is a measurement convenience, not a statistics
 * engine: each benchmark runs for a fixed wall-clock budget and
 * reports mean ns/iteration plus derived items/bytes rates.
 */

#ifndef FCOS_BENCH_MINIBENCH_H
#define FCOS_BENCH_MINIBENCH_H

#if defined(FCOS_HAVE_GOOGLE_BENCHMARK)

#include <benchmark/benchmark.h>

#else // vendored fallback

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace benchmark {

class State
{
  public:
    explicit State(std::vector<std::int64_t> args)
        : args_(std::move(args))
    {}

    /** Argument @p i of the ->Arg() chain. */
    std::int64_t range(std::size_t i = 0) const
    {
        return i < args_.size() ? args_[i] : 0;
    }

    std::uint64_t iterations() const { return iters_; }

    void SetItemsProcessed(std::int64_t n) { items_ = n; }
    void SetBytesProcessed(std::int64_t n) { bytes_ = n; }

    // --- `for (auto _ : state)` support ---
    struct Value
    {
        ~Value() {} // non-trivial: silences unused-variable warnings
    };
    struct Iterator
    {
        State *state;
        bool operator!=(const Iterator &) const
        {
            return state->keepRunning();
        }
        void operator++() {}
        Value operator*() const { return Value{}; }
    };
    Iterator begin()
    {
        start_ = Clock::now();
        iters_ = 0;
        return Iterator{this};
    }
    Iterator end() { return Iterator{this}; }

    double elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }
    std::int64_t itemsProcessed() const { return items_; }
    std::int64_t bytesProcessed() const { return bytes_; }

  private:
    using Clock = std::chrono::steady_clock;

    bool keepRunning()
    {
        if (iters_ == 0) {
            ++iters_;
            return true;
        }
        // Re-check the clock only every few iterations once fast.
        if ((iters_ & check_mask_) == 0) {
            double s = elapsedSeconds();
            if (s >= kBudgetSeconds || iters_ >= kMaxIterations)
                return false;
            if (s < kBudgetSeconds / 8 && check_mask_ < 0xFF)
                check_mask_ = (check_mask_ << 1) | 1;
        }
        ++iters_;
        return true;
    }

    static constexpr double kBudgetSeconds = 0.1;
    static constexpr std::uint64_t kMaxIterations = 50'000'000;

    std::vector<std::int64_t> args_;
    std::uint64_t iters_ = 0;
    std::uint64_t check_mask_ = 0;
    std::int64_t items_ = 0;
    std::int64_t bytes_ = 0;
    Clock::time_point start_{};
};

template <typename T>
inline void
DoNotOptimize(T const &value)
{
    asm volatile("" : : "r,m"(value) : "memory");
}

namespace detail {

struct Registration
{
    std::string name;
    void (*fn)(State &);
    std::vector<std::vector<std::int64_t>> argSets;

    Registration *Arg(std::int64_t a)
    {
        argSets.push_back({a});
        return this;
    }
};

inline std::vector<Registration> &
registry()
{
    static std::vector<Registration> r;
    return r;
}

inline Registration *
registerBenchmark(const char *name, void (*fn)(State &))
{
    registry().push_back(Registration{name, fn, {}});
    return &registry().back();
}

inline void
runOne(const Registration &reg, const std::vector<std::int64_t> &args)
{
    State state(args);
    reg.fn(state);
    double seconds = state.elapsedSeconds();
    double per_iter_ns = seconds * 1e9 /
                         static_cast<double>(
                             state.iterations() ? state.iterations() : 1);
    std::string label = reg.name;
    for (std::int64_t a : args)
        label += "/" + std::to_string(a);
    std::printf("%-40s %12.1f ns/iter %10llu iters", label.c_str(),
                per_iter_ns,
                static_cast<unsigned long long>(state.iterations()));
    if (state.itemsProcessed() > 0)
        std::printf("  %s",
                    ::fcos::bench::rateStr(
                        static_cast<double>(state.itemsProcessed()) /
                             seconds,
                         "items")
                        .c_str());
    if (state.bytesProcessed() > 0)
        std::printf("  %s",
                    ::fcos::bench::rateStr(
                        static_cast<double>(state.bytesProcessed()) /
                             seconds,
                         "B")
                        .c_str());
    std::printf("\n");
}

inline int
runAll()
{
    std::printf("minibench (vendored fallback; install Google Benchmark "
                "for calibrated statistics)\n");
    std::printf("--------------------------------------------------------"
                "----------------------\n");
    for (const Registration &reg : registry()) {
        if (reg.argSets.empty()) {
            runOne(reg, {});
        } else {
            for (const auto &args : reg.argSets)
                runOne(reg, args);
        }
    }
    return 0;
}

} // namespace detail

} // namespace benchmark

#define BENCHMARK(fn)                                                       \
    static ::benchmark::detail::Registration *fcos_minibench_##fn =         \
        ::benchmark::detail::registerBenchmark(#fn, fn)

#define BENCHMARK_MAIN()                                                    \
    int main(int argc, char **argv)                                         \
    {                                                                       \
        ::fcos::bench::initObs(argc, argv);                                 \
        return ::benchmark::detail::runAll();                               \
    }

#endif // FCOS_HAVE_GOOGLE_BENCHMARK

#endif // FCOS_BENCH_MINIBENCH_H
