/**
 * @file
 * Figure 11 — RBER vs tESP for the worst / median / best block, plus
 * the Section 5.2 zero-error validation campaign.
 *
 * Paper anchors: +60% tESP buys an order of magnitude for the median
 * block; tESP >= 1.9x shows zero errors across > 4.83e11 bits
 * (statistical RBER < 2.07e-12).
 */

#include <cmath>

#include "bench/bench_util.h"
#include "platforms/reports.h"
#include "reliability/chip_farm.h"

using namespace fcos;
using namespace fcos::rel;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Figure 11",
                  "RBER vs tESP (worst / median / best block), "
                  "10K P/E cycles, 1-year retention, worst-case "
                  "pattern");

    ChipFarm farm; // full 160-chip population
    OperatingCondition worst{10000, 12.0, false};

    // Shared table builders (platforms/reports): the golden test pins
    // the same tables over a reduced population.
    plat::fig11EspTable(farm, worst).print();

    // The validation campaign: every page of 120 blocks on each of 160
    // chips (> 4.83e11 bits), Poisson-sampled error counts.
    std::printf("\nZero-error validation campaigns (4.83e11 bits):\n");
    plat::fig11CampaignTable(farm, worst, 483000000000ULL).print();
    std::printf("\n");

    auto base = farm.espRber(1.0, worst);
    auto at16 = farm.espRber(1.6, worst);
    auto at19 = farm.espRber(1.9, worst);
    nand::PageMeta meta19;
    meta19.mode = nand::ProgramMode::SlcEsp;
    meta19.espFactor = 1.9;
    auto camp19 = farm.runCampaign(meta19, worst, 483000000000ULL);

    bench::anchor("median-block gain at tESP = 1.6x",
                  "~1 order of magnitude",
                  TablePrinter::cell(std::log10(base.median /
                                                at16.median),
                                     2) +
                      " orders");
    bench::anchor("errors at tESP >= 1.9x over 4.83e11 bits", "0",
                  std::to_string(camp19.errors));
    bench::anchor("statistical RBER bound at 1.9x", "< 2.07e-12",
                  camp19.errors == 0
                      ? "< " + TablePrinter::cellSci(camp19.rberBound())
                      : "n/a");
    bench::anchor("worst-block RBER at 1.9x", "(below bound)",
                  TablePrinter::cellSci(at19.worst));
    return 0;
}
