/**
 * @file
 * Ablation — image encryption (XOR-only workload, Section 7
 * footnote 13): the paper *excludes* this ParaBit workload because
 * XOR is computed by the latch logic that commodity chips already
 * have, so neither ParaBit nor Flash-Cosmos adds anything — every
 * XOR operand still costs one full sensing operation.
 *
 * The encryption run and its table live in the shared plat:: builder
 * (golden-pinned); the builder reports the outcome counters back so
 * the anchors below print the same execution.
 */

#include "bench/bench_util.h"
#include "platforms/reports.h"

using namespace fcos;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Ablation: XOR-only workloads (image encryption)",
                  "why the paper's evaluation excludes them");

    plat::AblationXorStats stats;
    plat::ablationXorEncryptionTable(&stats).print();
    std::printf("\n");

    bench::anchor("XOR result correctness", "bit-exact",
                  stats.roundTrips ? "bit-exact" : "INCORRECT");
    bench::anchor("XOR changes the stored image", "yes",
                  stats.encryptChanges ? "yes" : "NO");
    bench::anchor("sensing advantage of MWS for XOR", "none (1 sense "
                  "per operand)",
                  stats.sensesPerPage == 2
                      ? "none (2 senses for 2 operands)"
                      : "UNEXPECTED");
    std::printf("\nConclusion: XOR folds through the latch pair one "
                "operand at a time, so the\nMWS one-shot multi-operand "
                "advantage does not apply — exactly why footnote 13\n"
                "drops the encryption workload from the comparison.\n");
    return 0;
}
