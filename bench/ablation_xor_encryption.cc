/**
 * @file
 * Ablation — image encryption (XOR-only workload, Section 7
 * footnote 13): the paper *excludes* this ParaBit workload because
 * XOR is computed by the latch logic that commodity chips already
 * have, so neither ParaBit nor Flash-Cosmos adds anything — every
 * XOR operand still costs one full sensing operation.
 *
 * This bench makes that reasoning executable: an in-flash XOR
 * encryption pass is bit-exact, but its sensing count equals the
 * serial-read count, so Flash-Cosmos's advantage (many operands per
 * sense) never materializes.
 */

#include "bench/bench_util.h"
#include "core/drive.h"
#include "util/rng.h"

using namespace fcos;
using core::Expr;
using core::FlashCosmosDrive;

int
main()
{
    bench::header("Ablation: XOR-only workloads (image encryption)",
                  "why the paper's evaluation excludes them");

    // 16-Kib vectors need more room than the tiny test geometry.
    FlashCosmosDrive::Config cfg;
    cfg.geometry.pageBytes = 512;
    cfg.geometry.blocksPerPlane = 64;
    FlashCosmosDrive drive(cfg);
    Rng rng = Rng::seeded(21);

    // "Encrypt" an image by XOR-ing with a key stream (the optical
    // image-encryption scheme ParaBit evaluates).
    const std::size_t bits = 16384;
    BitVector image(bits), key(bits);
    image.randomize(rng);
    key.randomize(rng);
    core::VectorId vi = drive.fcWrite(image);
    core::VectorId vk = drive.fcWrite(key);

    FlashCosmosDrive::ReadStats enc_stats;
    BitVector cipher = drive.fcRead(
        Expr::Xor(Expr::leaf(vi), Expr::leaf(vk)), &enc_stats);

    // Decrypt: XOR with the key again.
    core::VectorId vc = drive.fcWrite(cipher);
    BitVector plain =
        drive.fcRead(Expr::Xor(Expr::leaf(vc), Expr::leaf(vk)));

    TablePrinter t("XOR encryption in flash");
    t.setHeader({"metric", "value"});
    t.addRow({"cipher != plaintext",
              cipher != image ? "yes" : "NO"});
    t.addRow({"decrypt(encrypt(x)) == x",
              plain == image ? "yes" : "NO"});
    t.addRow({"senses per result page",
              std::to_string(enc_stats.senses / enc_stats.resultPages)});
    t.addRow({"serial reads ParaBit would need per page", "2"});
    t.print();
    std::printf("\n");

    bench::anchor("XOR result correctness", "bit-exact",
                  plain == image ? "bit-exact" : "INCORRECT");
    bench::anchor("sensing advantage of MWS for XOR", "none (1 sense "
                  "per operand)",
                  enc_stats.senses / enc_stats.resultPages == 2
                      ? "none (2 senses for 2 operands)"
                      : "UNEXPECTED");
    std::printf("\nConclusion: XOR folds through the latch pair one "
                "operand at a time, so the\nMWS one-shot multi-operand "
                "advantage does not apply — exactly why footnote 13\n"
                "drops the encryption workload from the comparison.\n");
    return 0;
}
