/**
 * @file
 * Shared helpers for the figure/table regeneration benches.
 *
 * Every bench prints (i) the paper's quoted anchor values and (ii) the
 * values this reproduction measures, so EXPERIMENTS.md rows can be
 * checked straight from bench output.
 */

#ifndef FCOS_BENCH_BENCH_UTIL_H
#define FCOS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <string_view>

#include "obs/obs.h"
#include "util/table.h"

namespace fcos::bench {

/**
 * Parse the shared observability flags — `--trace=<file>` and
 * `--metrics=<file>` — and enable the corresponding obs sessions, so
 * any bench can emit a Perfetto-loadable timeline or a metrics report
 * without code changes. Call first thing in main(), before the bench
 * constructs drives/engines (components capture the obs epoch at
 * construction). Unrecognized arguments are ignored. The files are
 * written at process exit, like the FCOS_TRACE / FCOS_METRICS env
 * knobs.
 */
inline void
initObs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view a(argv[i]);
        if (a.rfind("--trace=", 0) == 0)
            obs::enableTrace(std::string(a.substr(8)));
        else if (a.rfind("--metrics=", 0) == 0)
            obs::enableMetrics(std::string(a.substr(10)));
    }
}

/** Standard bench header naming the paper artifact. */
inline void
header(const std::string &artifact, const std::string &description)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", artifact.c_str(), description.c_str());
    std::printf("================================================="
                "=============\n\n");
}

/** One paper-vs-measured comparison line. */
inline void
anchor(const std::string &what, const std::string &paper,
       const std::string &measured)
{
    std::printf("  anchor: %-44s paper: %-12s here: %s\n", what.c_str(),
                paper.c_str(), measured.c_str());
}

inline std::string
ratioStr(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", v);
    return buf;
}

/** "1.23G items/s"-style rate formatting (shared with the vendored
 *  minibench harness so there is exactly one rate formatter). */
inline std::string
rateStr(double per_second, const char *unit)
{
    char buf[64];
    if (per_second >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.2fG %s/s", per_second / 1e9,
                      unit);
    else if (per_second >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM %s/s", per_second / 1e6,
                      unit);
    else
        std::snprintf(buf, sizeof(buf), "%.2fk %s/s", per_second / 1e3,
                      unit);
    return buf;
}

} // namespace fcos::bench

#endif // FCOS_BENCH_BENCH_UTIL_H
