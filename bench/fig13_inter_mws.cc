/**
 * @file
 * Figure 13 — inter-block MWS latency vs number of simultaneously
 * activated blocks, validated functionally at every point.
 *
 * Paper anchors: the extra wordline-precharge time hides under the
 * bitline precharge until 8 blocks; +36.3% at 32 blocks; still far
 * cheaper than serial reads.
 */

#include "bench/bench_util.h"
#include "nand/chip.h"
#include "nand/timing_model.h"
#include "reliability/error_injector.h"
#include "util/rng.h"

using namespace fcos;
using nand::TimingModel;

namespace {

/** OR of n blocks' wordline 0 via one inter-block MWS, checked. */
bool
validate(std::uint32_t n, Rng &rng)
{
    rel::VthModel model;
    rel::OperatingCondition worst{10000, 12.0, false};
    rel::VthErrorInjector inj(model, worst);
    nand::Geometry geom = nand::Geometry::tiny();
    geom.blocksPerPlane = 32;
    nand::NandChip chip(geom, nand::Timings{}, &inj);

    BitVector expected(geom.pageBits(), false);
    nand::MwsCommand cmd;
    cmd.plane = 0;
    for (std::uint32_t b = 0; b < n; ++b) {
        BitVector v(geom.pageBits());
        v.randomize(rng, 0.2);
        chip.programPageEsp({0, b, 0, 0}, v, nand::EspParams{2.0});
        expected |= v;
        cmd.selections.push_back(nand::WlSelection{b, 0, 1});
    }
    chip.executeMws(cmd);
    return chip.dataOut(0) == expected;
}

} // namespace

int
main()
{
    bench::header("Figure 13",
                  "inter-block MWS latency vs activated blocks "
                  "(zero-error operating points)");

    Rng rng = Rng::seeded(13);
    TimingModel tm;

    TablePrinter t("tMWS / tR vs activated blocks");
    t.setHeader({"blocks", "tMWS/tR", "tMWS", "serial reads",
                 "zero errors"});
    for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
        double factor = TimingModel::interBlockFactor(n);
        t.addRow({std::to_string(n), TablePrinter::cell(factor, 4),
                  formatTime(tm.mwsLatency(1, n)),
                  formatTime(n * tm.timings().tReadSlc),
                  validate(n, rng) ? "yes" : "NO"});
    }
    t.print();
    std::printf("\n");

    bench::anchor("latency at 8 blocks", "mostly hidden (+3.3%)",
                  TablePrinter::cell(
                      (TimingModel::interBlockFactor(8) - 1) * 100, 2) +
                      "%");
    bench::anchor("latency at 32 blocks", "+36.3%",
                  TablePrinter::cell(
                      (TimingModel::interBlockFactor(32) - 1) * 100,
                      2) +
                      "%");
    bench::anchor(
        "32-block MWS vs 32 serial reads", "1.363 tR vs 32 tR",
        bench::ratioStr(32.0 / TimingModel::interBlockFactor(32)) +
            " faster");
    bench::anchor("fixed tMWS with the 4-block cap", "25 us (+3.3%)",
                  formatTime(tm.mwsLatencyFixed()));
    return 0;
}
