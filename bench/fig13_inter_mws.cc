/**
 * @file
 * Figure 13 — inter-block MWS latency vs number of simultaneously
 * activated blocks, validated functionally at every point.
 *
 * Paper anchors: the extra wordline-precharge time hides under the
 * bitline precharge until 8 blocks; +36.3% at 32 blocks; still far
 * cheaper than serial reads.
 */

#include "bench/bench_util.h"
#include "nand/timing_model.h"
#include "platforms/reports.h"

using namespace fcos;
using nand::TimingModel;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Figure 13",
                  "inter-block MWS latency vs activated blocks "
                  "(zero-error operating points)");

    TimingModel tm;

    // Shared builder (platforms/reports): each row is functionally
    // validated; the golden test pins the identical table.
    plat::fig13InterMwsTable().print();
    std::printf("\n");

    bench::anchor("latency at 8 blocks", "mostly hidden (+3.3%)",
                  TablePrinter::cell(
                      (TimingModel::interBlockFactor(8) - 1) * 100, 2) +
                      "%");
    bench::anchor("latency at 32 blocks", "+36.3%",
                  TablePrinter::cell(
                      (TimingModel::interBlockFactor(32) - 1) * 100,
                      2) +
                      "%");
    bench::anchor(
        "32-block MWS vs 32 serial reads", "1.363 tR vs 32 tR",
        bench::ratioStr(32.0 / TimingModel::interBlockFactor(32)) +
            " faster");
    bench::anchor("fixed tMWS with the 4-block cap", "25 us (+3.3%)",
                  formatTime(tm.mwsLatencyFixed()));
    return 0;
}
