/**
 * @file
 * Ablation — why ParaBit cannot keep ECC or data randomization, and
 * why ESP replaces both (Section 3.2), executed end to end:
 *
 *  (1) bitwise AND of two valid BCH codewords is not a codeword: the
 *      decoder rejects or miscorrects it;
 *  (2) bitwise AND of two randomized pages cannot be de-randomized;
 *  (3) the Flash-Cosmos path (ESP storage, no ECC, no randomization)
 *      computes bit-exactly under worst-case wear and retention.
 *
 * The (1)/(2) trial tables live in the shared plat:: builders
 * (golden-pinned) and hand their outcome counters back for the
 * anchors; the (3) end-to-end drive check stays here because it needs
 * the error-injected drive.
 */

#include "bench/bench_util.h"
#include "core/drive.h"
#include "platforms/reports.h"
#include "reliability/error_injector.h"
#include "util/rng.h"

using namespace fcos;
using namespace fcos::rel;
using core::Expr;
using core::FlashCosmosDrive;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Ablation: ECC / randomization vs in-flash compute",
                  "the Section 3.2 incompatibility, executed");

    // ---- (1) ECC ---------------------------------------------------
    plat::AblationEccStats ecc;
    plat::ablationEccTable(&ecc).print();
    std::printf("\n");

    // ---- (2) Randomization ----------------------------------------
    int derand_ok = 0;
    plat::ablationRandomizationTable(&derand_ok).print();
    std::printf("\n");

    // ---- (3) The Flash-Cosmos answer -------------------------------
    Rng rng = Rng::seeded(97);
    VthModel model;
    OperatingCondition worst{10000, 12.0, false};
    VthErrorInjector injector(model, worst);
    FlashCosmosDrive drive;
    drive.setErrorInjector(&injector);
    FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    BitVector a(4096), b(4096);
    a.randomize(rng);
    b.randomize(rng);
    Expr ea = Expr::leaf(drive.fcWrite(a, group));
    Expr eb = Expr::leaf(drive.fcWrite(b, group));
    BitVector in_flash = drive.fcRead(Expr::And({ea, eb}));

    bench::anchor("ECC survives in-flash AND", "never",
                  ecc.acceptedCorrect == 0 ? "never" : "SOMETIMES");
    bench::anchor("randomization survives in-flash AND", "never",
                  derand_ok == 0 ? "never" : "SOMETIMES");
    bench::anchor("ESP path exact at 10K PEC / 1 year / worst pattern",
                  "yes (zero bit errors)",
                  in_flash == (a & b) ? "yes (zero bit errors)"
                                      : "NO");
    std::printf("\nConclusion: in-flash AND/OR destroys both ECC and "
                "randomization, so reliable\nin-flash processing needs "
                "storage that is error-free *without* them — which "
                "is\nexactly what ESP provides.\n");
    return 0;
}
