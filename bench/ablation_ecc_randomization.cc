/**
 * @file
 * Ablation — why ParaBit cannot keep ECC or data randomization, and
 * why ESP replaces both (Section 3.2), executed end to end:
 *
 *  (1) bitwise AND of two valid BCH codewords is not a codeword: the
 *      decoder rejects or miscorrects it;
 *  (2) bitwise AND of two randomized pages cannot be de-randomized;
 *  (3) the Flash-Cosmos path (ESP storage, no ECC, no randomization)
 *      computes bit-exactly under worst-case wear and retention.
 */

#include "bench/bench_util.h"
#include "core/drive.h"
#include "reliability/bch.h"
#include "reliability/error_injector.h"
#include "reliability/randomizer.h"
#include "util/rng.h"

using namespace fcos;
using namespace fcos::rel;
using core::Expr;
using core::FlashCosmosDrive;

int
main()
{
    bench::header("Ablation: ECC / randomization vs in-flash compute",
                  "the Section 3.2 incompatibility, executed");

    Rng rng = Rng::seeded(99);

    // ---- (1) ECC ---------------------------------------------------
    BchCode code(10, 4);
    int rejected = 0, miscorrected = 0, accepted_correct = 0;
    const int trials = 50;
    for (int i = 0; i < trials; ++i) {
        BitVector d1(code.k()), d2(code.k());
        d1.randomize(rng);
        d2.randomize(rng);
        BitVector cw = code.encode(d1) & code.encode(d2);
        BchDecodeResult r = code.decode(cw);
        if (!r.ok)
            ++rejected;
        else if (code.extractData(cw) != (d1 & d2))
            ++miscorrected;
        else
            ++accepted_correct;
    }
    TablePrinter ecc("AND of two valid BCH(1023, k, t=4) codewords");
    ecc.setHeader({"outcome", "count"});
    ecc.addRow({"decode failure", std::to_string(rejected)});
    ecc.addRow({"decodes to WRONG data", std::to_string(miscorrected)});
    ecc.addRow({"decodes to AND of payloads",
                std::to_string(accepted_correct)});
    ecc.print();
    std::printf("\n");

    // ---- (2) Randomization ----------------------------------------
    Randomizer randomizer;
    int derand_ok = 0;
    std::size_t total_damage = 0;
    for (int i = 0; i < trials; ++i) {
        BitVector a(4096), b(4096);
        a.randomize(rng);
        b.randomize(rng);
        BitVector sa = a, sb = b;
        randomizer.apply(sa, 2 * static_cast<std::uint64_t>(i));
        randomizer.apply(sb, 2 * static_cast<std::uint64_t>(i) + 1);
        BitVector sensed = sa & sb; // what in-flash AND would return
        randomizer.apply(sensed, 2 * static_cast<std::uint64_t>(i));
        if (sensed == (a & b))
            ++derand_ok;
        total_damage += sensed.hammingDistance(a & b);
    }
    TablePrinter rnd("AND of two randomized 4-Kib pages, de-randomized");
    rnd.setHeader({"outcome", "value"});
    rnd.addRow({"trials recovering AND of payloads",
                std::to_string(derand_ok) + " / " +
                    std::to_string(trials)});
    rnd.addRow({"average corrupted bits per page",
                std::to_string(total_damage / trials) + " / 4096"});
    rnd.print();
    std::printf("\n");

    // ---- (3) The Flash-Cosmos answer -------------------------------
    VthModel model;
    OperatingCondition worst{10000, 12.0, false};
    VthErrorInjector injector(model, worst);
    FlashCosmosDrive drive;
    drive.setErrorInjector(&injector);
    FlashCosmosDrive::WriteOptions group;
    group.group = 1;
    BitVector a(4096), b(4096);
    a.randomize(rng);
    b.randomize(rng);
    Expr ea = Expr::leaf(drive.fcWrite(a, group));
    Expr eb = Expr::leaf(drive.fcWrite(b, group));
    BitVector in_flash = drive.fcRead(Expr::And({ea, eb}));

    bench::anchor("ECC survives in-flash AND", "never",
                  accepted_correct == 0 ? "never" : "SOMETIMES");
    bench::anchor("randomization survives in-flash AND", "never",
                  derand_ok == 0 ? "never" : "SOMETIMES");
    bench::anchor("ESP path exact at 10K PEC / 1 year / worst pattern",
                  "yes (zero bit errors)",
                  in_flash == (a & b) ? "yes (zero bit errors)"
                                      : "NO");
    std::printf("\nConclusion: in-flash AND/OR destroys both ECC and "
                "randomization, so reliable\nin-flash processing needs "
                "storage that is error-free *without* them — which "
                "is\nexactly what ESP provides.\n");
    return 0;
}
