/**
 * @file
 * Figure 8 — RBER of SLC- and MLC-mode programming across P/E cycles
 * and retention age, with and without data randomization, over the
 * simulated 160-chip population.
 *
 * Paper anchors: disabling randomization costs 1.91x (SLC) and 4.92x
 * (MLC); MLC reaches up to ~4x the SLC RBER; the Figure 8(b) range is
 * 8.6e-4 .. 1.6e-2.
 */

#include <vector>

#include "bench/bench_util.h"
#include "platforms/reports.h"
#include "reliability/chip_farm.h"

using namespace fcos;
using namespace fcos::rel;

namespace {

double
gridAverage(const ChipFarm &farm, nand::ProgramMode mode,
            bool randomized)
{
    double sum = 0.0;
    int n = 0;
    for (std::uint32_t pec : {0u, 1000u, 2000u, 3000u, 6000u, 10000u}) {
        for (double mo : {0.0, 1.0, 2.0, 3.0, 6.0, 12.0}) {
            sum += farm.averageRber(
                mode, OperatingCondition{pec, mo, randomized});
            ++n;
        }
    }
    return sum / n;
}

} // namespace

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Figure 8",
                  "RBER vs P/E cycles, retention age, programming "
                  "mode, and randomization (3,686,400 wordlines)");

    // A reduced farm keeps the bench quick; statistics are analytic
    // per block, so the population size only affects the variance of
    // the process-variation average. The golden test pins the exact
    // same panels through the same builder and farm config.
    ChipFarm farm(plat::fig08FarmConfig());

    std::printf("%s\n", plat::fig08RberReport(farm).c_str());

    double slc_r = gridAverage(farm, nand::ProgramMode::SlcRegular, true);
    double slc_nr =
        gridAverage(farm, nand::ProgramMode::SlcRegular, false);
    double mlc_r = gridAverage(farm, nand::ProgramMode::Mlc, true);
    double mlc_nr = gridAverage(farm, nand::ProgramMode::Mlc, false);

    OperatingCondition worst{10000, 12.0, true};
    double slc_worst =
        farm.averageRber(nand::ProgramMode::SlcRegular, worst);
    double mlc_worst = farm.averageRber(nand::ProgramMode::Mlc, worst);

    double lo = 1e9, hi = 0.0;
    for (std::uint32_t pec : {0u, 1000u, 2000u, 3000u, 6000u, 10000u}) {
        for (double mo : {0.0, 1.0, 2.0, 3.0, 6.0, 12.0}) {
            for (bool r : {true, false}) {
                double v = farm.averageRber(
                    nand::ProgramMode::Mlc,
                    OperatingCondition{pec, mo, r});
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
        }
    }

    bench::anchor("SLC randomization-off factor", "1.91x",
                  bench::ratioStr(slc_nr / slc_r));
    bench::anchor("MLC randomization-off factor", "4.92x",
                  bench::ratioStr(mlc_nr / mlc_r));
    bench::anchor("MLC / SLC at worst point", "up to 4x",
                  bench::ratioStr(mlc_worst / slc_worst));
    bench::anchor("Figure 8(b) RBER range", "8.6e-4 .. 1.6e-2",
                  TablePrinter::cellSci(lo) + " .. " +
                      TablePrinter::cellSci(hi));
    bench::anchor("SLC+rand RBER vs UBER target 1e-15",
                  "~12 orders above",
                  TablePrinter::cell(
                      std::log10(slc_r / 1e-15), 1) +
                      " orders above");
    return 0;
}
