/**
 * @file
 * Ablation — operand placement (Section 6.3): the same bulk AND
 * executed with co-located operands (one group, single intra-block
 * MWS per string) vs scattered operands (each vector in its own
 * sub-block, one command per operand), on the functional drive.
 *
 * The comparison table and the per-query cost probe both live in the
 * shared plat:: builders (golden-pinned), so this driver and the
 * golden test cannot drift apart.
 *
 * This quantifies why the application-level placement contract exists:
 * without co-location, Flash-Cosmos degenerates to ParaBit-like
 * serial sensing.
 */

#include "bench/bench_util.h"
#include "platforms/reports.h"

using namespace fcos;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Ablation: operand placement",
                  "co-located vs scattered operands for bulk AND "
                  "(tiny geometry: 8-wordline strings)");

    plat::ablationPlacementTable().print();
    std::printf("\n");

    plat::AblationPlacementCost coloc =
        plat::ablationPlacementQuery(true, 8);
    plat::AblationPlacementCost scattered =
        plat::ablationPlacementQuery(false, 8);
    bench::anchor("8-operand AND, co-located", "1 command/page",
                  std::to_string(coloc.commandsPerPage) +
                      " command/page");
    bench::anchor("8-operand AND, scattered", "8 commands/page",
                  std::to_string(scattered.commandsPerPage) +
                      " commands/page");
    bench::anchor(
        "sensing-time penalty of bad placement", "~Nx",
        bench::ratioStr(static_cast<double>(scattered.nandTime) /
                        static_cast<double>(coloc.nandTime)));
    std::printf("\nConclusion: co-location is what converts N serial "
                "senses into one MWS; the\nfc_write group hint "
                "(Section 6.3) is therefore part of the API "
                "contract.\n");
    return 0;
}
