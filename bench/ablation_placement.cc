/**
 * @file
 * Ablation — operand placement (Section 6.3): the same bulk AND
 * executed with co-located operands (one group, single intra-block
 * MWS per string) vs scattered operands (each vector in its own
 * sub-block, one command per operand), on the functional drive.
 *
 * This quantifies why the application-level placement contract exists:
 * without co-location, Flash-Cosmos degenerates to ParaBit-like
 * serial sensing.
 */

#include "bench/bench_util.h"
#include "core/drive.h"
#include "util/rng.h"

using namespace fcos;
using core::Expr;
using core::FlashCosmosDrive;

namespace {

struct Cost
{
    std::uint64_t commands_per_page;
    Time nand_time;
    double energy;
    bool correct;
};

Cost
runQuery(bool colocated, int operands)
{
    // Scattered placement burns one sub-block per operand; give the
    // drive enough blocks for the 16-operand case.
    FlashCosmosDrive::Config cfg;
    cfg.geometry.blocksPerPlane = 32;
    FlashCosmosDrive drive(cfg);
    Rng rng = Rng::seeded(77);
    std::vector<BitVector> data;
    std::vector<Expr> leaves;
    for (int i = 0; i < operands; ++i) {
        FlashCosmosDrive::WriteOptions opts;
        if (colocated)
            opts.group = 1; // same NAND strings
        // else: default auto group — every vector in its own sub-block
        BitVector v(1024);
        v.randomize(rng);
        leaves.push_back(Expr::leaf(drive.fcWrite(v, opts)));
        data.push_back(std::move(v));
    }
    FlashCosmosDrive::ReadStats stats;
    BitVector result = drive.fcRead(Expr::And(leaves), &stats);
    BitVector expected = data[0];
    for (int i = 1; i < operands; ++i)
        expected &= data[i];
    return Cost{stats.mwsCommands / stats.resultPages, stats.nandTime,
                stats.nandEnergyJ, result == expected};
}

} // namespace

int
main()
{
    bench::header("Ablation: operand placement",
                  "co-located vs scattered operands for bulk AND "
                  "(tiny geometry: 8-wordline strings)");

    TablePrinter t("Placement comparison");
    t.setHeader({"operands", "layout", "MWS/page", "NAND time",
                 "NAND energy", "correct"});
    for (int n : {4, 8, 16}) {
        for (bool coloc : {true, false}) {
            Cost c = runQuery(coloc, n);
            t.addRow({std::to_string(n),
                      coloc ? "co-located group" : "scattered",
                      std::to_string(c.commands_per_page),
                      formatTime(c.nand_time), formatEnergy(c.energy),
                      c.correct ? "yes" : "NO"});
        }
    }
    t.print();
    std::printf("\n");

    Cost coloc = runQuery(true, 8);
    Cost scattered = runQuery(false, 8);
    bench::anchor("8-operand AND, co-located", "1 command/page",
                  std::to_string(coloc.commands_per_page) +
                      " command/page");
    bench::anchor("8-operand AND, scattered", "8 commands/page",
                  std::to_string(scattered.commands_per_page) +
                      " commands/page");
    bench::anchor(
        "sensing-time penalty of bad placement", "~Nx",
        bench::ratioStr(static_cast<double>(scattered.nand_time) /
                        static_cast<double>(coloc.nand_time)));
    std::printf("\nConclusion: co-location is what converts N serial "
                "senses into one MWS; the\nfc_write group hint "
                "(Section 6.3) is therefore part of the API "
                "contract.\n");
    return 0;
}
