/**
 * @file
 * Table 1 — evaluated system configurations. Prints every configured
 * parameter from the live config objects, so any drift between code
 * and paper is visible.
 */

#include "bench/bench_util.h"
#include "host/host_model.h"
#include "ssd/config.h"

using namespace fcos;

int
main()
{
    bench::header("Table 1", "evaluated system configurations");

    ssd::SsdConfig c = ssd::SsdConfig::table1();
    host::HostConfig h;

    TablePrinter ssd_table("Simulated SSD");
    ssd_table.setHeader({"parameter", "paper", "this build"});
    auto row = [&](const char *name, const char *paper,
                   std::string val) {
        ssd_table.addRow({name, paper, std::move(val)});
    };
    row("channels", "8", std::to_string(c.channels));
    row("dies/channel", "8", std::to_string(c.diesPerChannel));
    row("planes/die", "2", std::to_string(c.geometry.planesPerDie));
    row("blocks/plane", "2048",
        std::to_string(c.geometry.blocksPerPlane));
    row("WLs/block", "192 (4x48)",
        std::to_string(c.geometry.wordlinesPerBlock()) + " (" +
            std::to_string(c.geometry.subBlocksPerBlock) + "x" +
            std::to_string(c.geometry.wordlinesPerSubBlock) + ")");
    row("page size", "16 KiB", formatBytes(c.geometry.pageBytes));
    row("external I/O", "8 GB/s (PCIe Gen4 x4)",
        TablePrinter::cell(c.externalGBps, 1) + " GB/s");
    row("channel I/O rate", "1.2 GB/s",
        TablePrinter::cell(c.channelGBps, 1) + " GB/s");
    row("tR (SLC)", "22.5 us", formatTime(c.timings.tReadSlc));
    row("tMWS (max 4 blocks)", "25 us", formatTime(c.timings.tMwsFixed));
    row("tPROG SLC/MLC/TLC", "200/500/700 us",
        formatTime(c.timings.tProgSlc) + " / " +
            formatTime(c.timings.tProgMlc) + " / " +
            formatTime(c.timings.tProgTlc));
    row("tESP", "400 us", formatTime(c.timings.tProgEsp));
    row("tBERS", "3-5 ms", formatTime(c.timings.tErase));
    row("ISP accel energy", "93 pJ / 64 B",
        TablePrinter::cell(c.accelPjPer64B, 0) + " pJ / 64 B");
    row("inter-block MWS cap", "4 blocks",
        std::to_string(c.maxInterBlockMws));
    ssd_table.print();

    std::printf("\n");
    TablePrinter host_table("Real host system (modelled)");
    host_table.setHeader({"parameter", "paper", "this build"});
    host_table.addRow({"CPU", "i7-11700K, 8 cores, 3.6 GHz",
                       "throughput model (see host/host_model.h)"});
    host_table.addRow({"main memory", "64 GB DDR4-3600 x4",
                       TablePrinter::cell(h.dramGBps, 1) + " GB/s peak"});
    host_table.addRow({"bitwise stream rate", "(measured)",
                       TablePrinter::cell(h.streamGBps, 1) + " GB/s"});
    host_table.addRow({"package power (streaming)", "(RAPL)",
                       TablePrinter::cell(h.cpuActiveWatts, 0) + " W"});
    host_table.print();

    std::printf("\nDerived totals: %u dies, %u planes, SLC die "
                "capacity %s\n",
                c.totalDies(), c.totalPlanes(),
                formatBytes(c.geometry.dieBytesSlc()).c_str());
    return 0;
}
