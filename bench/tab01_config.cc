/**
 * @file
 * Table 1 — evaluated system configurations. Prints every configured
 * parameter from the live config objects, so any drift between code
 * and paper is visible. The tables come from platforms/reports and are
 * pinned as goldens by tests/platforms/report_golden_test.cc.
 */

#include "bench/bench_util.h"
#include "platforms/reports.h"

using namespace fcos;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Table 1", "evaluated system configurations");

    ssd::SsdConfig c = ssd::SsdConfig::table1();
    host::HostConfig h;

    plat::tab01SsdTable(c).print();
    std::printf("\n");
    plat::tab01HostTable(h).print();

    std::printf("\nDerived totals: %u dies, %u planes, SLC die "
                "capacity %s\n",
                c.totalDies(), c.totalPlanes(),
                formatBytes(c.geometry.dieBytesSlc()).c_str());
    return 0;
}
