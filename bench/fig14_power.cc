/**
 * @file
 * Figure 14 — chip power during inter-block MWS vs number of
 * activated blocks, against the read / program / erase references.
 *
 * Paper anchors: +34% from one to two blocks; four blocks stay below
 * erase power (hence the cap); four-block MWS still saves ~53% energy
 * vs serial reads.
 */

#include "bench/bench_util.h"
#include "nand/power_model.h"
#include "nand/timing_model.h"
#include "platforms/reports.h"

using namespace fcos;
using nand::PowerModel;
using nand::TimingModel;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Figure 14",
                  "normalized chip power of inter-block MWS vs "
                  "activated blocks");

    // Shared builder (platforms/reports), pinned by the golden test.
    plat::fig14PowerTable().print();

    std::printf("\nreference lines: read = %.2f, program = %.2f, "
                "erase = %.2f\n\n",
                PowerModel::kReadPower, PowerModel::kProgramPower,
                PowerModel::kErasePower);

    TimingModel tm;
    double mws4_energy = PowerModel::energy(
        PowerModel::interBlockMwsPower(4), tm.mwsLatency(1, 4));
    double serial4_energy =
        4.0 *
        PowerModel::energy(PowerModel::kReadPower,
                           tm.timings().tReadSlc);

    bench::anchor("power increase 1 -> 2 blocks", "+34%",
                  TablePrinter::cell(
                      (PowerModel::interBlockMwsPower(2) - 1.0) * 100,
                      1) +
                      "%");
    bench::anchor("power at 4 blocks vs read", "~+80%",
                  TablePrinter::cell(
                      (PowerModel::interBlockMwsPower(4) - 1.0) * 100,
                      1) +
                      "%");
    bench::anchor("4 blocks below erase power", "yes",
                  PowerModel::interBlockMwsPower(4) <
                          PowerModel::kErasePower
                      ? "yes"
                      : "NO");
    bench::anchor("5 blocks above erase power", "yes",
                  PowerModel::interBlockMwsPower(5) >
                          PowerModel::kErasePower
                      ? "yes"
                      : "NO");
    bench::anchor("energy saving of 4-block MWS vs 4 serial reads",
                  "~53%",
                  TablePrinter::cell(
                      (1.0 - mws4_energy / serial4_energy) * 100, 1) +
                      "%");
    return 0;
}
