/**
 * @file
 * Figure 18 — energy efficiency (bits computed per joule) of ISP,
 * ParaBit and Flash-Cosmos, normalized to OSP, across the three
 * workload sweeps (via the plat::EvaluationSweep library).
 *
 * Paper anchors (averages): FC is 95x over OSP, 13.4x over ISP, 3.3x
 * over PB; maxima 1839x / 222x / 35.5x at BMI m=36; for IMS the
 * FC-vs-PB saving shrinks to a few percent.
 */

#include <vector>

#include "bench/bench_util.h"
#include "platforms/reports.h"
#include "util/mathutil.h"

using namespace fcos;
using plat::EvaluationSweep;
using plat::PlatformKind;
using plat::SweepSeries;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Figure 18",
                  "energy efficiency (bits per joule) normalized to "
                  "OSP (BMI / IMS / KCS sweeps)");

    EvaluationSweep sweep;
    SweepSeries bmi = sweep.bmiSeries();
    SweepSeries ims = sweep.imsSeries();
    SweepSeries kcs = sweep.kcsSeries();

    // Shared builder: the golden test pins the same table over a
    // reduced grid, so formatting/arithmetic drift fails CI.
    plat::fig18EnergyTable({bmi, ims, kcs}).print();
    std::printf("\n");

    std::vector<SweepSeries> all{bmi, ims, kcs};

    double max_fc_osp = 0, max_fc_isp = 0, max_fc_pb = 0;
    std::vector<double> fc_isp, fc_pb;
    for (const auto &s : all) {
        for (const auto &p : s.points) {
            double fo = p.energyRatio(PlatformKind::FlashCosmos);
            double fi = fo / p.energyRatio(PlatformKind::Isp);
            double fp = fo / p.energyRatio(PlatformKind::ParaBit);
            max_fc_osp = std::max(max_fc_osp, fo);
            max_fc_isp = std::max(max_fc_isp, fi);
            max_fc_pb = std::max(max_fc_pb, fp);
            fc_isp.push_back(fi);
            fc_pb.push_back(fp);
        }
    }

    bench::anchor("FC vs OSP energy efficiency (avg)", "95x",
                  bench::ratioStr(EvaluationSweep::meanEnergyRatio(
                      all, PlatformKind::FlashCosmos)));
    bench::anchor("FC vs ISP (avg)", "13.4x",
                  bench::ratioStr(geomean(fc_isp)));
    bench::anchor("FC vs PB (avg)", "3.3x",
                  bench::ratioStr(geomean(fc_pb)));
    bench::anchor("FC vs OSP maximum (BMI m=36)", "1839x",
                  bench::ratioStr(max_fc_osp));
    bench::anchor("FC vs ISP maximum", "222x",
                  bench::ratioStr(max_fc_isp));
    bench::anchor("FC vs PB maximum", "35.5x",
                  bench::ratioStr(max_fc_pb));
    double ims_fc_pb = 0.0;
    for (const auto &p : ims.points) {
        ims_fc_pb = std::max(
            ims_fc_pb, p.energyRatio(PlatformKind::FlashCosmos) /
                           p.energyRatio(PlatformKind::ParaBit));
    }
    bench::anchor("FC vs PB on IMS", "~2.3% savings",
                  TablePrinter::cell((ims_fc_pb - 1.0) * 100.0, 1) +
                      "% savings");
    return 0;
}
