/**
 * @file
 * Figure 17 — speedup of ISP, ParaBit and Flash-Cosmos over OSP on
 * the three real-world workloads (BMI, IMS, KCS) across the paper's
 * parameter sweeps (via the plat::EvaluationSweep library).
 *
 * Paper anchors (averages over all workloads and inputs): FC is 32x
 * over OSP, 25x over ISP, 3.5x over PB; for BMI specifically FC
 * reaches 198.4x/150.5x over OSP/ISP while PB stays at 14x/10.7x;
 * for IMS FC and PB nearly tie.
 */

#include <vector>

#include "bench/bench_util.h"
#include "platforms/reports.h"
#include "util/mathutil.h"

using namespace fcos;
using plat::EvaluationSweep;
using plat::PlatformKind;
using plat::SweepSeries;

int
main(int argc, char **argv)
{
    fcos::bench::initObs(argc, argv);
    bench::header("Figure 17",
                  "speedup over OSP: ISP vs ParaBit vs Flash-Cosmos "
                  "(BMI / IMS / KCS sweeps)");

    EvaluationSweep sweep;
    SweepSeries bmi = sweep.bmiSeries();
    SweepSeries ims = sweep.imsSeries();
    SweepSeries kcs = sweep.kcsSeries();

    // Shared builder: the golden test pins the same table over a
    // reduced grid, so formatting/arithmetic drift fails CI.
    plat::fig17SpeedupTable({bmi, ims, kcs}).print();
    std::printf("\n");

    std::vector<SweepSeries> all{bmi, ims, kcs};
    std::vector<SweepSeries> bmi_only{bmi};

    auto mean_vs = [&](const std::vector<SweepSeries> &series,
                       PlatformKind num, PlatformKind den) {
        std::vector<double> values;
        for (const auto &s : series) {
            for (const auto &p : s.points)
                values.push_back(p.speedup(num) / p.speedup(den));
        }
        return geomean(values);
    };

    bench::anchor(
        "FC vs OSP (avg all workloads)", "32x",
        bench::ratioStr(EvaluationSweep::meanSpeedup(
            all, PlatformKind::FlashCosmos)));
    bench::anchor("FC vs ISP (avg)", "25x",
                  bench::ratioStr(mean_vs(all,
                                          PlatformKind::FlashCosmos,
                                          PlatformKind::Isp)));
    bench::anchor("FC vs PB (avg)", "3.5x",
                  bench::ratioStr(mean_vs(all,
                                          PlatformKind::FlashCosmos,
                                          PlatformKind::ParaBit)));
    bench::anchor("PB vs OSP (avg)", "9.4x",
                  bench::ratioStr(EvaluationSweep::meanSpeedup(
                      all, PlatformKind::ParaBit)));
    bench::anchor("FC vs OSP on BMI", "198.4x",
                  bench::ratioStr(EvaluationSweep::meanSpeedup(
                      bmi_only, PlatformKind::FlashCosmos)));
    bench::anchor("FC vs ISP on BMI", "150.5x",
                  bench::ratioStr(mean_vs(bmi_only,
                                          PlatformKind::FlashCosmos,
                                          PlatformKind::Isp)));
    bench::anchor("PB vs OSP on BMI", "14x",
                  bench::ratioStr(EvaluationSweep::meanSpeedup(
                      bmi_only, PlatformKind::ParaBit)));
    double ims_fc_pb_max = 0.0;
    for (const auto &p : ims.points) {
        ims_fc_pb_max =
            std::max(ims_fc_pb_max,
                     p.speedup(PlatformKind::FlashCosmos) /
                         p.speedup(PlatformKind::ParaBit));
    }
    bench::anchor("FC vs PB on IMS", "~1x (transfer-bound)",
                  bench::ratioStr(ims_fc_pb_max) + " max");
    return 0;
}
