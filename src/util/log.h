/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * - panic():  something happened that should never happen regardless of
 *             what the user does (a library bug). Aborts.
 * - fatal():  the run cannot continue due to a user-level error (bad
 *             configuration, invalid arguments). Exits with code 1.
 * - warn():   functionality is approximated; results may still be useful.
 * - inform(): normal operating status the user should see.
 */

#ifndef FCOS_UTIL_LOG_H
#define FCOS_UTIL_LOG_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace fcos {

namespace detail {

[[noreturn]] void logAbort(const char *kind, const char *file, int line,
                           const std::string &msg);
[[noreturn]] void logExit(const char *kind, const char *file, int line,
                          const std::string &msg);
void logPrint(const char *kind, const std::string &msg);

/** Minimal printf-style formatter returning std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** True once warn() output is suppressed (used by tests and benches).
 *  Safe to call from worker threads (relaxed atomic read). */
bool quietWarnings();

/** Enable/disable warn() output. Returns the previous setting.
 *  Thread-safe (atomic exchange), though toggling normally happens
 *  from the main thread. */
bool setQuietWarnings(bool quiet);

} // namespace fcos

#define fcos_panic(...)                                                     \
    ::fcos::detail::logAbort("panic", __FILE__, __LINE__,                   \
                             ::fcos::detail::format(__VA_ARGS__))

#define fcos_fatal(...)                                                     \
    ::fcos::detail::logExit("fatal", __FILE__, __LINE__,                    \
                            ::fcos::detail::format(__VA_ARGS__))

#define fcos_warn(...)                                                      \
    do {                                                                    \
        if (!::fcos::quietWarnings())                                       \
            ::fcos::detail::logPrint("warn",                                \
                                     ::fcos::detail::format(__VA_ARGS__));  \
    } while (0)

#define fcos_inform(...)                                                    \
    ::fcos::detail::logPrint("info", ::fcos::detail::format(__VA_ARGS__))

/**
 * Invariant check that stays on in release builds. Use for conditions
 * that indicate a library bug, not user error.
 */
#define fcos_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::fcos::detail::logAbort(                                       \
                "panic", __FILE__, __LINE__,                                \
                std::string("assertion failed: ") + #cond + "; " +          \
                    ::fcos::detail::format(__VA_ARGS__));                   \
    } while (0)

#endif // FCOS_UTIL_LOG_H
