/**
 * @file
 * Dense, word-packed bit vector with bulk bitwise operations.
 *
 * BitVector is the fundamental data type of this library: NAND flash
 * pages, wordline contents, latch arrays, and application bit vectors
 * (bitmap-index columns, adjacency rows, segmentation masks) are all
 * BitVectors. All bulk operators work 64 bits at a time.
 *
 * Bit i of the vector models the cell on bitline i. Following the NAND
 * sensing convention used throughout the paper, a '1' bit is an *erased*
 * (conducting) cell and a '0' bit a *programmed* (blocking) cell.
 */

#ifndef FCOS_UTIL_BITVECTOR_H
#define FCOS_UTIL_BITVECTOR_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fcos {

class Rng;

class BitVector
{
  public:
    /** Construct an empty vector. */
    BitVector() = default;

    /** Construct @p n bits, all set to @p value. */
    explicit BitVector(std::size_t n, bool value = false);

    /** Construct from a string of '0'/'1' characters (bit 0 first). */
    static BitVector fromString(const std::string &bits);

    /** Number of bits. */
    std::size_t size() const { return nbits_; }

    bool empty() const { return nbits_ == 0; }

    /** Read bit @p i. */
    bool get(std::size_t i) const;

    /** Write bit @p i. */
    void set(std::size_t i, bool value);

    /** Set all bits to @p value. */
    void fill(bool value);

    /** Resize to @p n bits; new bits take @p value. */
    void resize(std::size_t n, bool value = false);

    /** Number of '1' bits. */
    std::size_t popcount() const;

    /** Number of '0' bits. */
    std::size_t zeroCount() const { return size() - popcount(); }

    /** True if every bit is '1'. */
    bool allOnes() const;

    /** True if every bit is '0'. */
    bool allZeros() const { return popcount() == 0; }

    /** In-place bitwise ops. Sizes must match. */
    BitVector &operator&=(const BitVector &o);
    BitVector &operator|=(const BitVector &o);
    BitVector &operator^=(const BitVector &o);

    /** Flip every bit in place. */
    void invert();

    /** Out-of-place bitwise NOT. */
    BitVector operator~() const;

    friend BitVector operator&(BitVector a, const BitVector &b)
    {
        a &= b;
        return a;
    }
    friend BitVector operator|(BitVector a, const BitVector &b)
    {
        a |= b;
        return a;
    }
    friend BitVector operator^(BitVector a, const BitVector &b)
    {
        a ^= b;
        return a;
    }

    bool operator==(const BitVector &o) const;
    bool operator!=(const BitVector &o) const { return !(*this == o); }

    /** Number of positions where this and @p o differ (sizes must match). */
    std::size_t hammingDistance(const BitVector &o) const;

    /**
     * Fill with independent Bernoulli(p) bits.
     * @param rng    random source
     * @param p_one  probability that a bit is '1'
     */
    void randomize(Rng &rng, double p_one = 0.5);

    /**
     * Program the "checkered" worst-case pattern from Section 5.1: any
     * two adjacent cells alternate between the highest and lowest V_TH
     * state, i.e. bits alternate 1,0,1,0,... starting with @p first.
     */
    void fillCheckered(bool first = true);

    /** Extract bits [begin, begin+len) into a new vector. */
    BitVector slice(std::size_t begin, std::size_t len) const;

    /** Copy @p src into this vector starting at @p begin. */
    void paste(std::size_t begin, const BitVector &src);

    /** Render as a '0'/'1' string (bit 0 first); for tests/debugging. */
    std::string toString() const;

    /** Raw word access (low word first; trailing bits are kept zero). */
    const std::vector<std::uint64_t> &words() const { return words_; }
    std::vector<std::uint64_t> &words() { return words_; }

    /** Words required for @p n bits. */
    static std::size_t wordsFor(std::size_t n) { return (n + 63) / 64; }

  private:
    /** Zero any bits beyond nbits_ in the last word. */
    void clearTail();

    std::size_t nbits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace fcos

#endif // FCOS_UTIL_BITVECTOR_H
