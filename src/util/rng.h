/**
 * @file
 * Deterministic random number generation for simulation and Monte Carlo.
 *
 * All randomness in the library flows through Rng so that every
 * experiment is reproducible from a single seed. Child generators can be
 * forked deterministically per component (per chip, per block, ...).
 */

#ifndef FCOS_UTIL_RNG_H
#define FCOS_UTIL_RNG_H

#include <cstdint>
#include <random>

namespace fcos {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

    /** Uniform 64-bit word. */
    std::uint64_t nextU64() { return engine_(); }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound)
    {
        return std::uniform_int_distribution<std::uint64_t>(
            0, bound - 1)(engine_);
    }

    /** Uniform double in [0, 1). */
    double nextDouble()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Bernoulli trial. */
    bool bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /** Normal sample. */
    double gaussian(double mean, double sigma)
    {
        return std::normal_distribution<double>(mean, sigma)(engine_);
    }

    /** Lognormal sample (parameters of the underlying normal). */
    double lognormal(double mu, double sigma)
    {
        return std::lognormal_distribution<double>(mu, sigma)(engine_);
    }

    /**
     * Poisson sample. Used to draw per-wordline raw bit-error *counts*
     * from an analytic error rate without materializing individual cells
     * (see DESIGN.md "Scale strategy").
     */
    std::uint64_t poisson(double mean)
    {
        if (mean <= 0.0)
            return 0;
        return std::poisson_distribution<std::uint64_t>(mean)(engine_);
    }

    /** Binomial sample: number of successes among n Bernoulli(p) trials. */
    std::uint64_t binomial(std::uint64_t n, double p)
    {
        if (n == 0 || p <= 0.0)
            return 0;
        if (p >= 1.0)
            return n;
        return std::binomial_distribution<std::uint64_t>(
            static_cast<long long>(n), p)(engine_);
    }

    /**
     * Splitmix64 mixing of (seed, stream): the scalar seed a fork()ed
     * child is constructed from. Exposed so descriptors that carry a
     * single seed word (nand::PageImage) can reproduce the same
     * decorrelated per-stream sequences.
     */
    static std::uint64_t mix(std::uint64_t seed, std::uint64_t stream_id)
    {
        std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream_id + 1);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /**
     * Deterministically derive a child generator. Mixes the stream id via
     * splitmix64 so children with adjacent ids are decorrelated.
     */
    Rng fork(std::uint64_t stream_id) const
    {
        return Rng(mix(seed_mix_, stream_id));
    }

    /** Remember the construction seed for fork() mixing. */
    static Rng seeded(std::uint64_t seed)
    {
        Rng r(seed);
        r.seed_mix_ = seed;
        return r;
    }

  private:
    std::mt19937_64 engine_;
    std::uint64_t seed_mix_ = 0x6A09E667F3BCC908ULL;
};

} // namespace fcos

#endif // FCOS_UTIL_RNG_H
