#include "util/bitvector.h"

#include <algorithm>
#include <bit>

#include "util/log.h"
#include "util/rng.h"

namespace fcos {

namespace {

// ---------------------------------------------------------------------
// Explicitly vectorized dense folds.
//
// The AND/OR/XOR folds are the controller-side hot loop of every
// fallback evaluation and host-baseline run, so they must not depend on
// the optimizer's mood: with GCC/Clang vector extensions each iteration
// processes a 256-bit lane (4 x u64 — one AVX2 register, two SSE/NEON
// ops after legalization) through unaligned loads, with a scalar tail.
// The property tests drive every 64-bit alignment against bit-at-a-time
// references, so the lane split is covered at all sizes.
// ---------------------------------------------------------------------
#if defined(__GNUC__) || defined(__clang__)
#define FCOS_BITVECTOR_SIMD 1
typedef std::uint64_t V4u64 __attribute__((vector_size(32), aligned(8)));

template <typename WordOp>
inline void
foldWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n,
          WordOp op)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        V4u64 a, b;
        __builtin_memcpy(&a, dst + i, sizeof(a));
        __builtin_memcpy(&b, src + i, sizeof(b));
        op(a, b);
        __builtin_memcpy(dst + i, &a, sizeof(a));
    }
    for (; i < n; ++i)
        op(dst[i], src[i]);
}
#else
template <typename WordOp>
inline void
foldWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n,
          WordOp op)
{
    for (std::size_t i = 0; i < n; ++i)
        op(dst[i], src[i]);
}
#endif

} // namespace

BitVector::BitVector(std::size_t n, bool value)
    : nbits_(n), words_(wordsFor(n), value ? ~0ULL : 0ULL)
{
    clearTail();
}

BitVector
BitVector::fromString(const std::string &bits)
{
    BitVector v(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        fcos_assert(bits[i] == '0' || bits[i] == '1',
                    "bad bit char '%c'", bits[i]);
        v.set(i, bits[i] == '1');
    }
    return v;
}

bool
BitVector::get(std::size_t i) const
{
    fcos_assert(i < nbits_, "bit index %zu out of range %zu", i, nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
}

void
BitVector::set(std::size_t i, bool value)
{
    fcos_assert(i < nbits_, "bit index %zu out of range %zu", i, nbits_);
    std::uint64_t mask = 1ULL << (i & 63);
    if (value)
        words_[i >> 6] |= mask;
    else
        words_[i >> 6] &= ~mask;
}

void
BitVector::fill(bool value)
{
    for (auto &w : words_)
        w = value ? ~0ULL : 0ULL;
    clearTail();
}

void
BitVector::resize(std::size_t n, bool value)
{
    std::size_t old_bits = nbits_;
    nbits_ = n;
    words_.resize(wordsFor(n), value ? ~0ULL : 0ULL);
    if (value && old_bits < n && (old_bits & 63)) {
        // Fill the partial old tail word's new bits.
        std::uint64_t mask = ~0ULL << (old_bits & 63);
        words_[old_bits >> 6] |= mask;
    }
    clearTail();
}

std::size_t
BitVector::popcount() const
{
    // Four accumulators break the add dependency chain so the per-word
    // popcnt issues back to back.
    const std::uint64_t *p = words_.data();
    std::size_t n = words_.size();
    std::size_t a = 0, b = 0, c = 0, d = 0;
    for (; n >= 4; n -= 4, p += 4) {
        a += static_cast<std::size_t>(std::popcount(p[0]));
        b += static_cast<std::size_t>(std::popcount(p[1]));
        c += static_cast<std::size_t>(std::popcount(p[2]));
        d += static_cast<std::size_t>(std::popcount(p[3]));
    }
    for (std::size_t i = 0; i < n; ++i)
        a += static_cast<std::size_t>(std::popcount(p[i]));
    return a + b + c + d;
}

bool
BitVector::allOnes() const
{
    if (nbits_ == 0)
        return true;
    std::size_t full = nbits_ / 64;
    for (std::size_t i = 0; i < full; ++i) {
        if (words_[i] != ~0ULL)
            return false;
    }
    if (nbits_ & 63) {
        std::uint64_t mask = (~0ULL) >> (64 - (nbits_ & 63));
        if ((words_[full] & mask) != mask)
            return false;
    }
    return true;
}

BitVector &
BitVector::operator&=(const BitVector &o)
{
    fcos_assert(nbits_ == o.nbits_, "size mismatch %zu vs %zu", nbits_,
                o.nbits_);
    foldWords(words_.data(), o.words_.data(), words_.size(),
              [](auto &a, const auto &b) { a &= b; });
    return *this;
}

BitVector &
BitVector::operator|=(const BitVector &o)
{
    fcos_assert(nbits_ == o.nbits_, "size mismatch %zu vs %zu", nbits_,
                o.nbits_);
    foldWords(words_.data(), o.words_.data(), words_.size(),
              [](auto &a, const auto &b) { a |= b; });
    return *this;
}

BitVector &
BitVector::operator^=(const BitVector &o)
{
    fcos_assert(nbits_ == o.nbits_, "size mismatch %zu vs %zu", nbits_,
                o.nbits_);
    foldWords(words_.data(), o.words_.data(), words_.size(),
              [](auto &a, const auto &b) { a ^= b; });
    return *this;
}

void
BitVector::invert()
{
    for (auto &w : words_)
        w = ~w;
    clearTail();
}

BitVector
BitVector::operator~() const
{
    BitVector v = *this;
    v.invert();
    return v;
}

bool
BitVector::operator==(const BitVector &o) const
{
    return nbits_ == o.nbits_ && words_ == o.words_;
}

std::size_t
BitVector::hammingDistance(const BitVector &o) const
{
    fcos_assert(nbits_ == o.nbits_, "size mismatch %zu vs %zu", nbits_,
                o.nbits_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
        n += static_cast<std::size_t>(std::popcount(words_[i] ^ o.words_[i]));
    return n;
}

void
BitVector::randomize(Rng &rng, double p_one)
{
    if (p_one == 0.5) {
        for (auto &w : words_)
            w = rng.nextU64();
    } else {
        // One Bernoulli draw per bit, in ascending bit order — the draw
        // stream is part of the reproducibility contract (goldens seed
        // pages through here) — but accumulated in a register so the
        // vector is written one word at a time, not read-modify-write
        // per bit.
        const std::size_t full = nbits_ >> 6;
        for (std::size_t wi = 0; wi < full; ++wi) {
            std::uint64_t w = 0;
            for (unsigned j = 0; j < 64; ++j)
                w |= std::uint64_t{rng.bernoulli(p_one)} << j;
            words_[wi] = w;
        }
        const unsigned tail = nbits_ & 63;
        if (tail) {
            std::uint64_t w = 0;
            for (unsigned j = 0; j < tail; ++j)
                w |= std::uint64_t{rng.bernoulli(p_one)} << j;
            words_[full] = w;
        }
    }
    clearTail();
}

void
BitVector::fillCheckered(bool first)
{
    // 0101.. pattern: even bits take `first`.
    std::uint64_t even = 0x5555555555555555ULL;
    std::uint64_t w = first ? even : ~even;
    for (auto &word : words_)
        word = w;
    clearTail();
}

BitVector
BitVector::slice(std::size_t begin, std::size_t len) const
{
    fcos_assert(begin + len <= nbits_, "slice [%zu,+%zu) out of %zu bits",
                begin, len, nbits_);
    BitVector v(len);
    if (len == 0)
        return v;
    const std::size_t w0 = begin >> 6;
    const unsigned off = begin & 63;
    const std::size_t out_words = v.words_.size();
    if (off == 0) {
        for (std::size_t i = 0; i < out_words; ++i)
            v.words_[i] = words_[w0 + i];
    } else {
        // Funnel shift: each output word is the tail of one source
        // word joined with the head of the next. The last source word
        // may not exist when the slice ends inside words_[w0 + i].
        for (std::size_t i = 0; i < out_words; ++i) {
            std::uint64_t w = words_[w0 + i] >> off;
            if (w0 + i + 1 < words_.size())
                w |= words_[w0 + i + 1] << (64 - off);
            v.words_[i] = w;
        }
    }
    v.clearTail();
    return v;
}

void
BitVector::paste(std::size_t begin, const BitVector &src)
{
    fcos_assert(begin + src.size() <= nbits_,
                "paste [%zu,+%zu) out of %zu bits", begin, src.size(),
                nbits_);
    const std::size_t n = src.size();
    if (n == 0)
        return;
    const std::size_t w = begin >> 6;
    const unsigned off = begin & 63;
    if (off == 0) {
        const std::size_t full = n >> 6;
        for (std::size_t i = 0; i < full; ++i)
            words_[w + i] = src.words_[i];
        const unsigned tail = n & 63;
        if (tail) {
            const std::uint64_t mask = (~0ULL) >> (64 - tail);
            words_[w + full] =
                (words_[w + full] & ~mask) | (src.words_[full] & mask);
        }
        return;
    }
    // Each source word lands as a masked merge into one or two
    // destination words. c is the bit count this source word carries;
    // src's tail bits beyond n are zero by invariant, so the shifted
    // payload never strays outside its mask.
    for (std::size_t i = 0, sw = src.words_.size(); i < sw; ++i) {
        const std::size_t c = std::min<std::size_t>(64, n - 64 * i);
        const std::uint64_t si = src.words_[i];
        const std::uint64_t lo_mask = (c + off >= 64)
                                          ? (~0ULL << off)
                                          : (((1ULL << c) - 1) << off);
        words_[w + i] = (words_[w + i] & ~lo_mask) | (si << off);
        if (c + off > 64) {
            const unsigned hi_bits = static_cast<unsigned>(c + off - 64);
            const std::uint64_t hi_mask = (1ULL << hi_bits) - 1;
            words_[w + i + 1] =
                (words_[w + i + 1] & ~hi_mask) | (si >> (64 - off));
        }
    }
}

std::string
BitVector::toString() const
{
    std::string s(nbits_, '0');
    for (std::size_t i = 0; i < nbits_; ++i) {
        if (get(i))
            s[i] = '1';
    }
    return s;
}

void
BitVector::clearTail()
{
    if (nbits_ & 63)
        words_[nbits_ >> 6] &= (~0ULL) >> (64 - (nbits_ & 63));
}

} // namespace fcos
