#include "util/bitvector.h"

#include <bit>

#include "util/log.h"
#include "util/rng.h"

namespace fcos {

BitVector::BitVector(std::size_t n, bool value)
    : nbits_(n), words_(wordsFor(n), value ? ~0ULL : 0ULL)
{
    clearTail();
}

BitVector
BitVector::fromString(const std::string &bits)
{
    BitVector v(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        fcos_assert(bits[i] == '0' || bits[i] == '1',
                    "bad bit char '%c'", bits[i]);
        v.set(i, bits[i] == '1');
    }
    return v;
}

bool
BitVector::get(std::size_t i) const
{
    fcos_assert(i < nbits_, "bit index %zu out of range %zu", i, nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
}

void
BitVector::set(std::size_t i, bool value)
{
    fcos_assert(i < nbits_, "bit index %zu out of range %zu", i, nbits_);
    std::uint64_t mask = 1ULL << (i & 63);
    if (value)
        words_[i >> 6] |= mask;
    else
        words_[i >> 6] &= ~mask;
}

void
BitVector::fill(bool value)
{
    for (auto &w : words_)
        w = value ? ~0ULL : 0ULL;
    clearTail();
}

void
BitVector::resize(std::size_t n, bool value)
{
    std::size_t old_bits = nbits_;
    nbits_ = n;
    words_.resize(wordsFor(n), value ? ~0ULL : 0ULL);
    if (value && old_bits < n && (old_bits & 63)) {
        // Fill the partial old tail word's new bits.
        std::uint64_t mask = ~0ULL << (old_bits & 63);
        words_[old_bits >> 6] |= mask;
    }
    clearTail();
}

std::size_t
BitVector::popcount() const
{
    std::size_t n = 0;
    for (auto w : words_)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool
BitVector::allOnes() const
{
    if (nbits_ == 0)
        return true;
    std::size_t full = nbits_ / 64;
    for (std::size_t i = 0; i < full; ++i) {
        if (words_[i] != ~0ULL)
            return false;
    }
    if (nbits_ & 63) {
        std::uint64_t mask = (~0ULL) >> (64 - (nbits_ & 63));
        if ((words_[full] & mask) != mask)
            return false;
    }
    return true;
}

BitVector &
BitVector::operator&=(const BitVector &o)
{
    fcos_assert(nbits_ == o.nbits_, "size mismatch %zu vs %zu", nbits_,
                o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] &= o.words_[i];
    return *this;
}

BitVector &
BitVector::operator|=(const BitVector &o)
{
    fcos_assert(nbits_ == o.nbits_, "size mismatch %zu vs %zu", nbits_,
                o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] |= o.words_[i];
    return *this;
}

BitVector &
BitVector::operator^=(const BitVector &o)
{
    fcos_assert(nbits_ == o.nbits_, "size mismatch %zu vs %zu", nbits_,
                o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] ^= o.words_[i];
    return *this;
}

void
BitVector::invert()
{
    for (auto &w : words_)
        w = ~w;
    clearTail();
}

BitVector
BitVector::operator~() const
{
    BitVector v = *this;
    v.invert();
    return v;
}

bool
BitVector::operator==(const BitVector &o) const
{
    return nbits_ == o.nbits_ && words_ == o.words_;
}

std::size_t
BitVector::hammingDistance(const BitVector &o) const
{
    fcos_assert(nbits_ == o.nbits_, "size mismatch %zu vs %zu", nbits_,
                o.nbits_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
        n += static_cast<std::size_t>(std::popcount(words_[i] ^ o.words_[i]));
    return n;
}

void
BitVector::randomize(Rng &rng, double p_one)
{
    if (p_one == 0.5) {
        for (auto &w : words_)
            w = rng.nextU64();
    } else {
        for (std::size_t i = 0; i < nbits_; ++i)
            set(i, rng.bernoulli(p_one));
    }
    clearTail();
}

void
BitVector::fillCheckered(bool first)
{
    // 0101.. pattern: even bits take `first`.
    std::uint64_t even = 0x5555555555555555ULL;
    std::uint64_t w = first ? even : ~even;
    for (auto &word : words_)
        word = w;
    clearTail();
}

BitVector
BitVector::slice(std::size_t begin, std::size_t len) const
{
    fcos_assert(begin + len <= nbits_, "slice [%zu,+%zu) out of %zu bits",
                begin, len, nbits_);
    BitVector v(len);
    for (std::size_t i = 0; i < len; ++i)
        v.set(i, get(begin + i));
    return v;
}

void
BitVector::paste(std::size_t begin, const BitVector &src)
{
    fcos_assert(begin + src.size() <= nbits_,
                "paste [%zu,+%zu) out of %zu bits", begin, src.size(),
                nbits_);
    for (std::size_t i = 0; i < src.size(); ++i)
        set(begin + i, src.get(i));
}

std::string
BitVector::toString() const
{
    std::string s(nbits_, '0');
    for (std::size_t i = 0; i < nbits_; ++i) {
        if (get(i))
            s[i] = '1';
    }
    return s;
}

void
BitVector::clearTail()
{
    if (nbits_ & 63)
        words_[nbits_ >> 6] &= (~0ULL) >> (64 - (nbits_ & 63));
}

} // namespace fcos
