/**
 * @file
 * SmallFn — a move-only callable with small-buffer optimization.
 *
 * The simulator's hot path creates and destroys one sim::Event per
 * scheduled callback; with std::function payloads every capture larger
 * than libstdc++'s 16-byte SBO window costs a heap allocation both at
 * construction and again when the event moves through the heap's swap
 * chain. SmallFn widens the inline window to kSmallFnCapacity bytes —
 * enough for every closure the engine schedules ([this, die, col,
 * shared_ptr<op>] and friends) — so the steady-state event loop
 * allocates nothing (asserted by the event-queue alloc-count test).
 *
 * Semantics relative to std::function:
 *  - move-only (events are moved, never copied; this also admits
 *    move-only captures like std::unique_ptr);
 *  - captures larger than the inline window or over-aligned fall back
 *    to the heap transparently;
 *  - invoking an empty SmallFn is a fatal error in debug builds and
 *    undefined otherwise (callers gate on operator bool, as the event
 *    loop does for Event::work).
 */

#ifndef FCOS_UTIL_SMALL_FN_H
#define FCOS_UTIL_SMALL_FN_H

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace fcos {

/** Inline capture window. 56 bytes of storage + the 8-byte dispatch
 *  pointer keep sizeof(SmallFn) at one cache line. */
inline constexpr std::size_t kSmallFnCapacity = 56;

template <typename Sig> class SmallFn;

template <typename R, typename... Args> class SmallFn<R(Args...)>
{
  public:
    SmallFn() = default;
    SmallFn(std::nullptr_t) {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallFn> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    SmallFn(F &&f)
    {
        construct<D>(std::forward<F>(f));
    }

    SmallFn(SmallFn &&o) noexcept { moveFrom(o); }

    SmallFn &operator=(SmallFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallFn> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    SmallFn &operator=(F &&f)
    {
        reset();
        construct<D>(std::forward<F>(f));
        return *this;
    }

    SmallFn &operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }
    friend bool operator==(const SmallFn &f, std::nullptr_t)
    {
        return !f;
    }
    friend bool operator!=(const SmallFn &f, std::nullptr_t)
    {
        return static_cast<bool>(f);
    }

    /** Invoke. The target may mutate its captures (mutable lambdas),
     *  matching std::function's const-invocation semantics. */
    R operator()(Args... args) const
    {
        return ops_->invoke(storage(), std::forward<Args>(args)...);
    }

    /** True when the current target lives in the inline buffer (no
     *  heap allocation); empty SmallFns report true. */
    bool isInline() const { return !ops_ || ops_->inlineStored; }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        /** Move-construct into @p dst from @p src, then destroy the
         *  source — the single primitive event-heap swaps need. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool inlineStored;
    };

    template <typename D> static constexpr bool fitsInline()
    {
        return sizeof(D) <= kSmallFnCapacity &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D> struct InlineOps
    {
        static R invoke(void *p, Args &&...args)
        {
            return (*static_cast<D *>(p))(std::forward<Args>(args)...);
        }
        static void relocate(void *dst, void *src) noexcept
        {
            ::new (dst) D(std::move(*static_cast<D *>(src)));
            static_cast<D *>(src)->~D();
        }
        static void destroy(void *p) noexcept
        {
            static_cast<D *>(p)->~D();
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy, true};
    };

    template <typename D> struct HeapOps
    {
        static D *&slot(void *p) { return *static_cast<D **>(p); }
        static R invoke(void *p, Args &&...args)
        {
            return (*slot(p))(std::forward<Args>(args)...);
        }
        static void relocate(void *dst, void *src) noexcept
        {
            // Pointer hand-off: the heap target itself never moves.
            ::new (dst) (D *)(slot(src));
        }
        static void destroy(void *p) noexcept { delete slot(p); }
        static constexpr Ops ops{&invoke, &relocate, &destroy, false};
    };

    template <typename D, typename F> void construct(F &&f)
    {
        if constexpr (fitsInline<D>()) {
            ::new (storage()) D(std::forward<F>(f));
            ops_ = &InlineOps<D>::ops;
        } else {
            ::new (storage()) (D *)(new D(std::forward<F>(f)));
            ops_ = &HeapOps<D>::ops;
        }
    }

    void moveFrom(SmallFn &o) noexcept
    {
        ops_ = o.ops_;
        if (ops_) {
            ops_->relocate(storage(), o.storage());
            o.ops_ = nullptr;
        }
    }

    void reset()
    {
        if (ops_) {
            ops_->destroy(storage());
            ops_ = nullptr;
        }
    }

    void *storage() const { return const_cast<std::byte *>(buf_); }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) std::byte buf_[kSmallFnCapacity];
};

} // namespace fcos

#endif // FCOS_UTIL_SMALL_FN_H
