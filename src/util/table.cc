#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/log.h"

namespace fcos {

void
TablePrinter::setHeader(std::vector<std::string> names)
{
    fcos_assert(rows_.empty(), "setHeader after rows were added");
    header_ = std::move(names);
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    fcos_assert(header_.empty() || cells.size() == header_.size(),
                "row width %zu != header width %zu", cells.size(),
                header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::cell(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::cellSci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

std::string
TablePrinter::cellInt(long long v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

std::string
TablePrinter::toString() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::string out;
    out += "== " + title_ + " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::size_t pad = widths[i] - cells[i].size();
            out += cells[i];
            out.append(pad, ' ');
            out += (i + 1 < cells.size()) ? "  " : "";
        }
        out += "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out.append(total, '-');
        out += "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    return out;
}

void
TablePrinter::print(std::FILE *out) const
{
    std::string s = toString();
    std::fwrite(s.data(), 1, s.size(), out);
    std::fflush(out);
}

void
printBanner(const std::string &text, std::FILE *out)
{
    std::fprintf(out, "\n############ %s ############\n\n", text.c_str());
    std::fflush(out);
}

} // namespace fcos
