/**
 * @file
 * Numerics shared by the reliability models.
 */

#ifndef FCOS_UTIL_MATHUTIL_H
#define FCOS_UTIL_MATHUTIL_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace fcos {

/**
 * Gaussian upper-tail probability Q(x) = P(N(0,1) > x).
 *
 * Numerically stable for the large arguments (x ~ 7) that arise when
 * showing ESP's "zero bit errors" regime (RBER < 2.07e-12).
 */
inline double
gaussianQ(double x)
{
    return 0.5 * std::erfc(x / std::sqrt(2.0));
}

/** Inverse of gaussianQ via bisection; valid for p in (0, 0.5]. */
double gaussianQInv(double p);

/** Clamp helper. */
template <typename T>
T
clampVal(T v, T lo, T hi)
{
    return std::min(std::max(v, lo), hi);
}

/**
 * Linear interpolation of y at @p x over sorted sample points (xs, ys).
 * Extrapolates flat beyond the ends.
 */
double interpolate(const std::vector<double> &xs,
                   const std::vector<double> &ys, double x);

/** Percentile (0..100) of a sample set, linear interpolation. */
double percentile(std::vector<double> values, double pct);

/** Geometric mean of positive values; returns 0 for an empty set. */
double geomean(const std::vector<double> &values);

} // namespace fcos

#endif // FCOS_UTIL_MATHUTIL_H
