#include "util/mathutil.h"

#include "util/log.h"

namespace fcos {

double
gaussianQInv(double p)
{
    fcos_assert(p > 0.0 && p <= 0.5, "QInv domain: p=%g", p);
    double lo = 0.0, hi = 40.0;
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (gaussianQ(mid) > p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
interpolate(const std::vector<double> &xs, const std::vector<double> &ys,
            double x)
{
    fcos_assert(xs.size() == ys.size() && !xs.empty(),
                "interpolate needs matching non-empty tables");
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    for (std::size_t i = 1; i < xs.size(); ++i) {
        if (x <= xs[i]) {
            double t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
            return ys[i - 1] + t * (ys[i] - ys[i - 1]);
        }
    }
    return ys.back();
}

double
percentile(std::vector<double> values, double pct)
{
    fcos_assert(!values.empty(), "percentile of empty set");
    fcos_assert(pct >= 0.0 && pct <= 100.0, "pct=%g", pct);
    std::sort(values.begin(), values.end());
    double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        fcos_assert(v > 0.0, "geomean needs positive values, got %g", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace fcos
