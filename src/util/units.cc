#include "util/units.h"

#include <cstdio>

namespace fcos {

namespace {

std::string
formatWith(double v, const char *unit)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3g %s", v, unit);
    return buf;
}

} // namespace

std::string
formatTime(Time t)
{
    double ns = static_cast<double>(t);
    if (ns < 1e3)
        return formatWith(ns, "ns");
    if (ns < 1e6)
        return formatWith(ns / 1e3, "us");
    if (ns < 1e9)
        return formatWith(ns / 1e6, "ms");
    return formatWith(ns / 1e9, "s");
}

std::string
formatBytes(std::uint64_t bytes)
{
    double b = static_cast<double>(bytes);
    if (b < 1024.0)
        return formatWith(b, "B");
    if (b < 1024.0 * 1024.0)
        return formatWith(b / 1024.0, "KiB");
    if (b < 1024.0 * 1024.0 * 1024.0)
        return formatWith(b / (1024.0 * 1024.0), "MiB");
    return formatWith(b / (1024.0 * 1024.0 * 1024.0), "GiB");
}

std::string
formatEnergy(double joules)
{
    if (joules < 1e-6)
        return formatWith(joules * 1e9, "nJ");
    if (joules < 1e-3)
        return formatWith(joules * 1e6, "uJ");
    if (joules < 1.0)
        return formatWith(joules * 1e3, "mJ");
    return formatWith(joules, "J");
}

} // namespace fcos
