#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace fcos {

namespace {
// Relaxed atomic: fcos_warn fires from worker-phase code, so the flag
// is read concurrently with a test/bench toggling it. It only gates
// log output — no ordering is needed, just a data-race-free load.
std::atomic<bool> quiet_warnings{false};
} // namespace

bool
quietWarnings()
{
    return quiet_warnings.load(std::memory_order_relaxed);
}

bool
setQuietWarnings(bool quiet)
{
    return quiet_warnings.exchange(quiet, std::memory_order_relaxed);
}

namespace detail {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

void
logPrint(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", kind, msg.c_str());
}

void
logAbort(const char *kind, const char *file, int line,
         const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", kind, file, line, msg.c_str());
    std::abort();
}

void
logExit(const char *kind, const char *file, int line,
        const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", kind, file, line, msg.c_str());
    std::exit(1);
}

} // namespace detail
} // namespace fcos
