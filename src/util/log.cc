#include "util/log.h"

#include <cstdarg>
#include <cstdio>

namespace fcos {

namespace {
bool quiet_warnings = false;
} // namespace

bool
quietWarnings()
{
    return quiet_warnings;
}

bool
setQuietWarnings(bool quiet)
{
    bool prev = quiet_warnings;
    quiet_warnings = quiet;
    return prev;
}

namespace detail {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

void
logPrint(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", kind, msg.c_str());
}

void
logAbort(const char *kind, const char *file, int line,
         const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", kind, file, line, msg.c_str());
    std::abort();
}

void
logExit(const char *kind, const char *file, int line,
        const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", kind, file, line, msg.c_str());
    std::exit(1);
}

} // namespace detail
} // namespace fcos
