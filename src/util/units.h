/**
 * @file
 * Time, size, bandwidth, and energy unit helpers.
 *
 * The simulator's master clock is an unsigned 64-bit count of nanoseconds
 * (Time). All NAND latencies in the paper are exact multiples of 0.5 us,
 * so nanoseconds represent them without rounding.
 *
 * Bandwidth uses the convenient identity 1 GB/s == 1 byte/ns (decimal GB,
 * matching how the paper quotes "8 GB/s" PCIe and "1.2 GB/s" channels).
 */

#ifndef FCOS_UTIL_UNITS_H
#define FCOS_UTIL_UNITS_H

#include <cstdint>
#include <string>

namespace fcos {

/** Simulated time in nanoseconds. */
using Time = std::uint64_t;

/** Sentinel for "no deadline". */
inline constexpr Time kTimeMax = ~Time{0};

inline constexpr Time operator""_ns(unsigned long long v) { return v; }
inline constexpr Time operator""_us(unsigned long long v)
{
    return v * 1000ULL;
}
inline constexpr Time operator""_ms(unsigned long long v)
{
    return v * 1000000ULL;
}
inline constexpr Time operator""_s(unsigned long long v)
{
    return v * 1000000000ULL;
}

/** Sizes in bytes. */
inline constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v * 1024ULL;
}
inline constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v * 1024ULL * 1024ULL;
}
inline constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v * 1024ULL * 1024ULL * 1024ULL;
}

/** Convert a time expressed in (possibly fractional) microseconds. */
constexpr Time
usToTime(double us)
{
    return static_cast<Time>(us * 1000.0 + 0.5);
}

/** Time -> microseconds as a double (for reporting). */
constexpr double
timeToUs(Time t)
{
    return static_cast<double>(t) / 1000.0;
}

/** Time -> milliseconds as a double (for reporting). */
constexpr double
timeToMs(Time t)
{
    return static_cast<double>(t) / 1e6;
}

/** Time -> seconds as a double (for reporting). */
constexpr double
timeToSec(Time t)
{
    return static_cast<double>(t) / 1e9;
}

/**
 * Transfer duration for @p bytes at @p gbPerSec (decimal GB/s).
 * 1 GB/s == 1 byte/ns, so duration_ns = bytes / gbPerSec.
 */
constexpr Time
transferTime(std::uint64_t bytes, double gb_per_sec)
{
    return static_cast<Time>(static_cast<double>(bytes) / gb_per_sec + 0.5);
}

/** Pretty-print a duration with an auto-selected unit. */
std::string formatTime(Time t);

/** Pretty-print a byte count with an auto-selected binary unit. */
std::string formatBytes(std::uint64_t bytes);

/** Pretty-print an energy in joules with an auto-selected unit. */
std::string formatEnergy(double joules);

} // namespace fcos

#endif // FCOS_UTIL_UNITS_H
