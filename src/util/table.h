/**
 * @file
 * Aligned text tables for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures as
 * a text table; TablePrinter keeps that output consistent and legible.
 */

#ifndef FCOS_UTIL_TABLE_H
#define FCOS_UTIL_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace fcos {

class TablePrinter
{
  public:
    /** @param title   heading printed above the table. */
    explicit TablePrinter(std::string title) : title_(std::move(title)) {}

    /** Set column headers; must be called before rows are added. */
    void setHeader(std::vector<std::string> names);

    /** Append a row of pre-formatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Convenience cell formatters. */
    static std::string cell(double v, int precision = 3);
    static std::string cellSci(double v, int precision = 2);
    static std::string cellInt(long long v);

    /** Render to @p out (default stdout). */
    void print(std::FILE *out = stdout) const;

    /** Render to a string (used by tests). */
    std::string toString() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner used between experiment phases. */
void printBanner(const std::string &text, std::FILE *out = stdout);

} // namespace fcos

#endif // FCOS_UTIL_TABLE_H
