#include "engine/chip_farm.h"

#include "util/log.h"

namespace fcos::engine {

ChipFarm::ChipFarm(const FarmConfig &cfg) : cfg_(cfg)
{
    fcos_assert(cfg.channels > 0, "farm needs at least one channel");
    fcos_assert(cfg.diesPerChannel > 0,
                "farm needs at least one die per channel");
    chips_.reserve(cfg.dieCount());
    for (std::uint32_t d = 0; d < cfg.dieCount(); ++d)
        chips_.push_back(std::make_unique<nand::NandChip>(
            cfg.geometry, cfg.timings, nullptr, cfg.pageStore));
}

std::uint32_t
ChipFarm::channelOfDie(std::uint32_t die) const
{
    fcos_assert(die < dieCount(), "die %u out of range", die);
    return die / cfg_.diesPerChannel;
}

nand::NandChip &
ChipFarm::chip(std::uint32_t die)
{
    fcos_assert(die < dieCount(), "die %u out of range", die);
    return *chips_[die];
}

const nand::NandChip &
ChipFarm::chip(std::uint32_t die) const
{
    fcos_assert(die < dieCount(), "die %u out of range", die);
    return *chips_[die];
}

void
ChipFarm::setErrorInjector(nand::ErrorInjector *injector)
{
    for (auto &c : chips_)
        c->setErrorInjector(injector);
}

} // namespace fcos::engine
