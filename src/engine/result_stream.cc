#include "engine/result_stream.h"

#include "util/log.h"

namespace fcos::engine {

OrderedChunkStream::OrderedChunkStream(std::uint64_t pages, Emit emit)
    : pages_(pages), emit_(std::move(emit))
{
    fcos_assert(pages_ > 0, "empty result stream");
    fcos_assert(emit_ != nullptr, "result stream without a consumer");
    if (obs::metricsOn()) {
        m_epoch_ = obs::metricsEpoch();
        obs::Registry &m = obs::metrics();
        chunk_counter_ = &m.counter("stream.chunks_emitted");
        peak_gauge_ = &m.gauge("stream.peak_buffered_pages");
    }
}

void
OrderedChunkStream::push(std::uint64_t index, BitVector page)
{
    fcos_assert(index < pages_, "result page %llu beyond the stream",
                (unsigned long long)index);
    fcos_assert(index >= next_ && !pending_.count(index),
                "result page %llu delivered twice",
                (unsigned long long)index);
    if (index != next_) {
        pending_.emplace(index, std::move(page));
        peak_ = std::max<std::uint64_t>(peak_, pending_.size());
        if (obs::metricsLive(m_epoch_))
            peak_gauge_->noteMax(static_cast<double>(peak_));
        return;
    }
    const std::uint64_t before = next_;
    emit_(next_++, std::move(page));
    // Flush the contiguous prefix the arrival unblocked.
    for (auto it = pending_.begin();
         it != pending_.end() && it->first == next_;
         it = pending_.erase(it))
        emit_(next_++, std::move(it->second));
    if (obs::metricsLive(m_epoch_))
        chunk_counter_->add(next_ - before);
}

} // namespace fcos::engine
