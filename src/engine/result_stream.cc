#include "engine/result_stream.h"

#include "util/log.h"

namespace fcos::engine {

OrderedChunkStream::OrderedChunkStream(std::uint64_t pages, Emit emit)
    : pages_(pages), emit_(std::move(emit))
{
    fcos_assert(pages_ > 0, "empty result stream");
    fcos_assert(emit_ != nullptr, "result stream without a consumer");
}

void
OrderedChunkStream::push(std::uint64_t index, BitVector page)
{
    fcos_assert(index < pages_, "result page %llu beyond the stream",
                (unsigned long long)index);
    fcos_assert(index >= next_ && !pending_.count(index),
                "result page %llu delivered twice",
                (unsigned long long)index);
    if (index != next_) {
        pending_.emplace(index, std::move(page));
        peak_ = std::max<std::uint64_t>(peak_, pending_.size());
        return;
    }
    emit_(next_++, std::move(page));
    // Flush the contiguous prefix the arrival unblocked.
    for (auto it = pending_.begin();
         it != pending_.end() && it->first == next_;
         it = pending_.erase(it))
        emit_(next_++, std::move(it->second));
}

} // namespace fcos::engine
