/**
 * @file
 * Ordered chunk emission for sharded result streams.
 *
 * A sharded operation's column programs complete in simulated-time
 * order, which is *not* page order: planes race, channels serialize,
 * and with ColumnProgram::resultAtCapture the payload leaves the
 * engine at the sense-completion instant rather than DMA completion.
 * Streaming consumers (core::ResultSink) are promised strictly
 * increasing page indices, so OrderedChunkStream sits between the two:
 * it buffers out-of-order arrivals and flushes the in-order prefix as
 * soon as it exists.
 *
 * The buffer is the stream's only O(>chunk) state, and its peak is the
 * arrival skew — for round-robin-striped vectors that is about one
 * page stripe (one page per column), not the whole result. The peak is
 * tracked so scale tests can pin the memory bound.
 */

#ifndef FCOS_ENGINE_RESULT_STREAM_H
#define FCOS_ENGINE_RESULT_STREAM_H

#include <cstdint>
#include <functional>
#include <map>

#include "obs/obs.h"
#include "util/bitvector.h"

namespace fcos::engine {

class OrderedChunkStream
{
  public:
    /** Receives page @p index's payload, indices strictly 0,1,2,... */
    using Emit = std::function<void(std::uint64_t index, BitVector page)>;

    OrderedChunkStream(std::uint64_t pages, Emit emit);

    /**
     * Deliver page @p index (any arrival order; each index exactly
     * once). Emits the contiguous ready prefix synchronously.
     */
    void push(std::uint64_t index, BitVector page);

    /** onResult adapter for the program computing page @p index. */
    std::function<void(BitVector)> handler(std::uint64_t index)
    {
        return [this, index](BitVector page) {
            push(index, std::move(page));
        };
    }

    bool complete() const { return next_ == pages_; }
    std::uint64_t emitted() const { return next_; }

    /** Most pages ever buffered while waiting for a predecessor —
     *  the stream's memory high-water mark in pages. */
    std::uint64_t peakBufferedPages() const { return peak_; }

  private:
    std::uint64_t pages_;
    Emit emit_;
    std::uint64_t next_ = 0;           ///< lowest index not yet emitted
    std::map<std::uint64_t, BitVector> pending_;
    std::uint64_t peak_ = 0;

    /** Metric handles resolved at construction (a serial context);
     *  push() runs in commit phase, so updates are serial too. */
    std::uint64_t m_epoch_ = 0;
    obs::Counter *chunk_counter_ = nullptr;
    obs::Gauge *peak_gauge_ = nullptr;
};

} // namespace fcos::engine

#endif // FCOS_ENGINE_RESULT_STREAM_H
