/**
 * @file
 * A farm of functional NAND dies arranged as channels x dies — the
 * physical substrate of the multi-die compute engine.
 *
 * The farm owns one NandChip per die plus the channel topology the
 * scheduler books time on. It is purely structural: which die sits on
 * which channel, how (die, plane) columns are numbered, and where the
 * chips live. All timing lives in the scheduler; all data lives in the
 * chips.
 *
 * Column numbering matches the FTL's striping order so that page j of
 * a striped vector lands on column (j mod columnCount()):
 *
 *   column = die * planesPerDie + plane
 */

#ifndef FCOS_ENGINE_CHIP_FARM_H
#define FCOS_ENGINE_CHIP_FARM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "nand/chip.h"
#include "nand/geometry.h"
#include "ssd/config.h"

namespace fcos::engine {

/** Shape and rates of the die farm (a Table 1 subset). */
struct FarmConfig
{
    std::uint32_t channels = 1;
    std::uint32_t diesPerChannel = 2;
    nand::Geometry geometry = nand::Geometry::tiny();
    nand::Timings timings{};

    /** Page-payload backend of every die. Sparse keeps descriptors
     *  instead of materialized pages, so Table-1 farms fit in tests;
     *  the two backends are bit-for-bit equivalent (page_store.h). */
    nand::PageStoreKind pageStore = nand::PageStoreKind::Sparse;

    /** I/O-rate/energy constants, shared with ssd::SsdConfig so the
     *  engine and the analytic simulator cannot drift. */
    ssd::IoParams io{};

    /** Host worker lanes sharding die functions during drain().
     *  0 = take the FCOS_WORKERS environment default, 1 = serial;
     *  any count yields bit-identical results (scheduler.h). */
    std::uint32_t workers = 0;

    std::uint32_t dieCount() const { return channels * diesPerChannel; }
    std::uint32_t columnCount() const
    {
        return dieCount() * geometry.planesPerDie;
    }

    /** The engine view of an SSD configuration — the one conversion
     *  point between the platforms layer and the chip farm. */
    static FarmConfig fromSsd(const ssd::SsdConfig &ssd)
    {
        FarmConfig fc;
        fc.channels = ssd.channels;
        fc.diesPerChannel = ssd.diesPerChannel;
        fc.geometry = ssd.geometry;
        fc.timings = ssd.timings;
        fc.pageStore = ssd.pageStore;
        fc.io = ssd.io;
        fc.workers = ssd.engineWorkers;
        return fc;
    }
};

class ChipFarm
{
  public:
    explicit ChipFarm(const FarmConfig &cfg);

    const FarmConfig &config() const { return cfg_; }
    const nand::Geometry &geometry() const { return cfg_.geometry; }

    std::uint32_t dieCount() const
    {
        return static_cast<std::uint32_t>(chips_.size());
    }
    std::uint32_t channelCount() const { return cfg_.channels; }

    /** Channel a die's I/O serializes on. */
    std::uint32_t channelOfDie(std::uint32_t die) const;

    nand::NandChip &chip(std::uint32_t die);
    const nand::NandChip &chip(std::uint32_t die) const;

    /** Attach/detach the error model on every die. */
    void setErrorInjector(nand::ErrorInjector *injector);

    // --- (die, plane) column numbering (matches ssd::Ftl striping) ---
    std::uint32_t columnCount() const { return cfg_.columnCount(); }
    std::uint32_t dieOfColumn(std::uint32_t column) const
    {
        return column / cfg_.geometry.planesPerDie;
    }
    std::uint32_t planeOfColumn(std::uint32_t column) const
    {
        return column % cfg_.geometry.planesPerDie;
    }

  private:
    FarmConfig cfg_;
    std::vector<std::unique_ptr<nand::NandChip>> chips_;
};

} // namespace fcos::engine

#endif // FCOS_ENGINE_CHIP_FARM_H
