#include "engine/scheduler.h"

#include <algorithm>

#include "util/log.h"

namespace fcos::engine {

namespace {

/** Span label of a plane op, keyed by its energy component. */
const char *
spanName(ssd::EnergyComponent comp)
{
    switch (comp) {
    case ssd::EnergyComponent::NandMws:
        return "mws";
    case ssd::EnergyComponent::NandRead:
        return "read";
    case ssd::EnergyComponent::NandProgram:
        return "program";
    case ssd::EnergyComponent::NandErase:
        return "erase";
    default:
        return ssd::energyComponentName(comp);
    }
}

} // namespace

CommandScheduler::CommandScheduler(ChipFarm &farm)
    : farm_(farm), planes_per_die_(farm.geometry().planesPerDie),
      external_("external"), states_(farm.columnCount())
{
    const std::uint32_t workers =
        WorkerPool::resolveCount(farm.config().workers);
    if (workers > 1)
        pool_ = std::make_unique<WorkerPool>(workers);
    planes_.reserve(farm.columnCount());
    for (std::uint32_t d = 0; d < farm.dieCount(); ++d)
        for (std::uint32_t p = 0; p < planes_per_die_; ++p)
            planes_.emplace_back("die" + std::to_string(d) + ".plane" +
                                 std::to_string(p));
    channels_.reserve(farm.channelCount());
    accel_ports_.reserve(farm.channelCount());
    for (std::uint32_t c = 0; c < farm.channelCount(); ++c) {
        channels_.emplace_back("channel" + std::to_string(c));
        accel_ports_.emplace_back("accel" + std::to_string(c));
    }

    // Register the trace topology once: one process per channel (its
    // bus, accelerator port, and plane tracks), one for the drive
    // (external link; the owning drive adds its request track). Hooks
    // elsewhere cost one epoch branch when tracing is off.
    if (obs::traceOn()) {
        trace_epoch_ = obs::traceEpoch();
        obs::Tracer &tr = obs::trace();
        std::vector<std::uint32_t> chan_pids;
        chan_pids.reserve(farm.channelCount());
        for (std::uint32_t c = 0; c < farm.channelCount(); ++c) {
            std::uint32_t pid =
                tr.newProcess("channel" + std::to_string(c));
            chan_pids.push_back(pid);
            channel_tracks_.push_back(tr.newTrack(pid, "bus"));
            accel_tracks_.push_back(tr.newTrack(pid, "accel"));
        }
        plane_tracks_.reserve(farm.columnCount());
        wait_tracks_.reserve(farm.columnCount());
        for (std::uint32_t d = 0; d < farm.dieCount(); ++d) {
            const std::uint32_t pid = chan_pids[farm.channelOfDie(d)];
            for (std::uint32_t p = 0; p < planes_per_die_; ++p) {
                const std::string name = "die" + std::to_string(d) +
                                         ".plane" + std::to_string(p);
                plane_tracks_.push_back(tr.newTrack(pid, name));
                wait_tracks_.push_back(tr.newTrack(pid, name + ".wait"));
            }
        }
        drive_pid_ = tr.newProcess("drive");
        external_track_ = tr.newTrack(drive_pid_, "external");
    }
    if (obs::metricsOn())
        m_epoch_ = obs::metricsEpoch();
}

void
CommandScheduler::submitPlaneOp(std::uint32_t die, std::uint32_t plane,
                                ssd::EnergyComponent comp, DieFn fn,
                                Callback done,
                                std::uint64_t pre_dma_bytes,
                                ExecutedFn executed)
{
    fcos_assert(die < farm_.dieCount(), "die %u out of range", die);
    fcos_assert(plane < planes_per_die_, "plane %u out of range", plane);
    fcos_assert(fn != nullptr, "plane op without a function");
    const std::uint32_t col = columnOf(die, plane);
    auto op = std::make_shared<PendingOp>();
    op->comp = comp;
    op->fn = std::move(fn);
    op->executed = std::move(executed);
    op->done = std::move(done);
    op->preDmaBytes = pre_dma_bytes;
    op->submitted = queue_.now();
    states_[col].pending.push_back(std::move(op));
    prefetchDataIn(die, col);
    pump(die, col);
}

void
CommandScheduler::prefetchDataIn(std::uint32_t die, std::uint32_t col)
{
    // The head op's program data streams into the plane's cache latch
    // while the previous op still occupies the array; the latch is the
    // one-deep buffer that makes this pipelining legal.
    PlaneState &st = states_[col];
    if (st.pending.empty())
        return;
    const std::shared_ptr<PendingOp> &head = st.pending.front();
    if (head->preDmaBytes == 0 || head->dmaIssued)
        return;
    head->dmaIssued = true;
    const std::uint32_t ch = farm_.channelOfDie(die);
    const ssd::IoParams &io = farm_.config().io;
    energy_.add(ssd::EnergyComponent::ChannelDma,
                io.channelEnergyJ(head->preDmaBytes));
    const Time dur = io.channelTime(head->preDmaBytes);
    Time finish = channels_[ch].acquire(queue_.now(), dur);
    ++dma_ops_;
    if (obs::traceLive(trace_epoch_))
        obs::trace().span(channel_tracks_[ch], "data-in", finish - dur,
                          finish);
    queue_.schedule(finish, [this, die, col, op = head] {
        op->dmaDone = true;
        pump(die, col);
    });
}

void
CommandScheduler::pump(std::uint32_t die, std::uint32_t col)
{
    PlaneState &st = states_[col];
    if (st.running || st.pending.empty())
        return;
    const std::shared_ptr<PendingOp> &head = st.pending.front();
    if (head->preDmaBytes != 0 && !head->dmaDone)
        return; // the data-in completion will pump again
    st.running = true;
    // Defer to the event queue even for an idle plane so that execution
    // order is decided purely by simulated time + FIFO tie-breaking,
    // never by the C++ call stack. The die function is the sharded work
    // phase (shard = die), everything else commits serially.
    queue_.scheduleSharded(
        queue_.now(), die, [this, die, col] { computeOp(die, col); },
        [this, die, col] { commitOp(die, col); });
}

void
CommandScheduler::computeOp(std::uint32_t die, std::uint32_t col)
{
    // Worker phase: may run concurrently with other dies' computeOps.
    // Only the die's chip and this op's private result are touched; the
    // op stays at the queue head (popping belongs to the commit phase,
    // where earlier-seq commits must still observe it as the head).
    PlaneState &st = states_[col];
    fcos_assert(!st.pending.empty(), "plane worker woke without work");
    PendingOp &op = *st.pending.front();
    op.result = op.fn(farm_.chip(die));
}

void
CommandScheduler::commitOp(std::uint32_t die, std::uint32_t col)
{
    PlaneState &st = states_[col];
    fcos_assert(!st.pending.empty(), "plane commit woke without work");
    std::shared_ptr<PendingOp> op = std::move(st.pending.front());
    st.pending.pop_front();

    // The plane just freed its cache latch for the *next* op's data-in;
    // start that transfer so it overlaps this op's array time.
    prefetchDataIn(die, col);

    if (op->executed)
        op->executed(op->result);
    energy_.add(op->comp, op->result.energyJ);
    Time finish = planes_[col].acquire(queue_.now(), op->result.latency);
    ++die_ops_;
    const Time start = finish - op->result.latency;
    if (obs::traceLive(trace_epoch_)) {
        obs::trace().span(plane_tracks_[col], spanName(op->comp), start,
                          finish);
        // Queue-wait windows of ops stacked behind one plane overlap,
        // so they live on the plane's ".wait" track as X overlays.
        if (start > op->submitted)
            obs::trace().overlay(wait_tracks_[col], "wait",
                                 op->submitted, start);
    }
    if (obs::metricsLive(m_epoch_)) {
        obs::Histogram *&h =
            op_hist_[static_cast<std::size_t>(op->comp)];
        if (!h)
            h = &obs::metrics().histogram(
                std::string("engine.op_latency.") +
                ssd::energyComponentName(op->comp));
        h->record(op->result.latency);
        if (!wait_hist_)
            wait_hist_ = &obs::metrics().histogram("engine.queue_wait");
        wait_hist_->record(start - op->submitted);
    }
    // Capturing the shared op (16 bytes) instead of moving its `done`
    // callable (64) keeps this closure inside the SmallFn inline
    // window — the completion event is the hottest allocation site.
    queue_.schedule(finish, [this, die, col, op = std::move(op)] {
        // The completion callback observes the plane's latches before
        // any later op on this plane mutates them.
        if (op->done)
            op->done();
        states_[col].running = false;
        pump(die, col);
    });
}

void
CommandScheduler::submitDma(std::uint32_t die, std::uint64_t bytes,
                            Callback done)
{
    std::uint32_t ch = farm_.channelOfDie(die);
    const ssd::IoParams &io = farm_.config().io;
    energy_.add(ssd::EnergyComponent::ChannelDma, io.channelEnergyJ(bytes));
    const Time dur = io.channelTime(bytes);
    Time finish = channels_[ch].acquire(queue_.now(), dur);
    ++dma_ops_;
    if (obs::traceLive(trace_epoch_))
        obs::trace().span(channel_tracks_[ch], "dma", finish - dur,
                          finish);
    if (done)
        queue_.schedule(finish, std::move(done));
    else
        queue_.schedule(finish, [] {});
}

void
CommandScheduler::submitExternal(std::uint64_t bytes, Callback done)
{
    const ssd::IoParams &io = farm_.config().io;
    energy_.add(ssd::EnergyComponent::ExternalLink,
                io.externalEnergyJ(bytes));
    const Time dur = io.externalTime(bytes);
    Time finish = external_.acquire(queue_.now(), dur);
    if (obs::traceLive(trace_epoch_))
        obs::trace().span(external_track_, "ext", finish - dur, finish);
    if (done)
        queue_.schedule(finish, std::move(done));
    else
        queue_.schedule(finish, [] {});
}

void
CommandScheduler::submitAccel(std::uint32_t channel, std::uint64_t bytes,
                              Callback done)
{
    fcos_assert(channel < accel_ports_.size(), "channel %u out of range",
                channel);
    const ssd::IoParams &io = farm_.config().io;
    energy_.add(ssd::EnergyComponent::IspAccel, io.accelEnergyJ(bytes));
    // The accelerator streams at channel rate; its port is per channel,
    // so accelerator work never outruns its input.
    const Time dur = io.channelTime(bytes);
    Time finish = accel_ports_[channel].acquire(queue_.now(), dur);
    if (obs::traceLive(trace_epoch_))
        obs::trace().span(accel_tracks_[channel], "accel", finish - dur,
                          finish);
    if (done)
        queue_.schedule(finish, std::move(done));
    else
        queue_.schedule(finish, [] {});
}

Time
CommandScheduler::runUntil(Time deadline)
{
    if (pool_)
        return queue_.runUntil(deadline, *pool_);
    return queue_.runUntil(deadline);
}

Time
CommandScheduler::drain()
{
    if (pool_)
        queue_.run(*pool_);
    else
        queue_.run();
    makespan_ = std::max(makespan_, queue_.now());

    queue_.publishMetrics();
    if (pool_)
        pool_->publishMetrics();
    if (obs::metricsLive(m_epoch_)) {
        obs::Registry &m = obs::metrics();
        m.counter("engine.die_ops").add(die_ops_ - pub_die_ops_);
        pub_die_ops_ = die_ops_;
        m.counter("engine.dma_transfers").add(dma_ops_ - pub_dma_ops_);
        pub_dma_ops_ = dma_ops_;
        // Facility utilization is cumulative, so overwriting per drain
        // leaves the registry with the end-of-run totals.
        for (const Facility &f : planes_)
            m.recordFacility(f.name(), f.busyTime(), f.grants(),
                             makespan_);
        for (const Facility &f : channels_)
            m.recordFacility(f.name(), f.busyTime(), f.grants(),
                             makespan_);
        for (const Facility &f : accel_ports_) {
            if (f.grants() > 0)
                m.recordFacility(f.name(), f.busyTime(), f.grants(),
                                 makespan_);
        }
        if (external_.grants() > 0)
            m.recordFacility(external_.name(), external_.busyTime(),
                             external_.grants(), makespan_);
    }
    return makespan_;
}

Time
CommandScheduler::planeBusyTime(std::uint32_t die, std::uint32_t plane) const
{
    fcos_assert(die < farm_.dieCount() && plane < planes_per_die_,
                "plane (%u, %u) out of range", die, plane);
    return planes_[die * planes_per_die_ + plane].busyTime();
}

Time
CommandScheduler::dieBusyTime(std::uint32_t die) const
{
    fcos_assert(die < farm_.dieCount(), "die %u out of range", die);
    Time m = 0;
    for (std::uint32_t p = 0; p < planes_per_die_; ++p)
        m = std::max(m, planes_[die * planes_per_die_ + p].busyTime());
    return m;
}

Time
CommandScheduler::channelBusyTime(std::uint32_t channel) const
{
    fcos_assert(channel < channels_.size(), "channel %u out of range",
                channel);
    return channels_[channel].busyTime();
}

Time
CommandScheduler::accelBusyTime(std::uint32_t channel) const
{
    fcos_assert(channel < accel_ports_.size(), "channel %u out of range",
                channel);
    return accel_ports_[channel].busyTime();
}

Time
CommandScheduler::maxDieBusyTime() const
{
    Time m = 0;
    for (std::uint32_t d = 0; d < farm_.dieCount(); ++d)
        m = std::max(m, dieBusyTime(d));
    return m;
}

Time
CommandScheduler::maxPlaneBusyTime() const
{
    Time m = 0;
    for (const auto &p : planes_)
        m = std::max(m, p.busyTime());
    return m;
}

} // namespace fcos::engine
