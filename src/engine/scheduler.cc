#include "engine/scheduler.h"

#include <algorithm>

#include "util/log.h"

namespace fcos::engine {

CommandScheduler::CommandScheduler(ChipFarm &farm)
    : farm_(farm), states_(farm.dieCount())
{
    dies_.reserve(farm.dieCount());
    for (std::uint32_t d = 0; d < farm.dieCount(); ++d)
        dies_.emplace_back("die" + std::to_string(d));
    channels_.reserve(farm.channelCount());
    for (std::uint32_t c = 0; c < farm.channelCount(); ++c)
        channels_.emplace_back("channel" + std::to_string(c));
}

void
CommandScheduler::submitDieOp(std::uint32_t die, ssd::EnergyComponent comp,
                              DieFn fn, Callback done,
                              std::uint64_t pre_dma_bytes)
{
    fcos_assert(die < states_.size(), "die %u out of range", die);
    fcos_assert(fn != nullptr, "die op without a function");
    states_[die].pending.push_back(
        PendingOp{comp, std::move(fn), std::move(done), pre_dma_bytes});
    pump(die);
}

void
CommandScheduler::pump(std::uint32_t die)
{
    DieState &st = states_[die];
    if (st.running || st.pending.empty())
        return;
    st.running = true;
    // Defer to the event queue even for an idle die so that execution
    // order is decided purely by simulated time + FIFO tie-breaking,
    // never by the C++ call stack.
    queue_.scheduleAfter(0, [this, die] { execute(die); });
}

void
CommandScheduler::execute(std::uint32_t die)
{
    DieState &st = states_[die];
    fcos_assert(!st.pending.empty(), "die worker woke without work");
    PendingOp op = std::move(st.pending.front());
    st.pending.pop_front();

    if (op.preDmaBytes > 0) {
        // Data-in: the die waits for its channel slot, then for the
        // transfer, before the operation proper starts.
        std::uint64_t bytes = op.preDmaBytes;
        op.preDmaBytes = 0;
        st.pending.push_front(std::move(op));
        std::uint32_t ch = farm_.channelOfDie(die);
        energy_.add(ssd::EnergyComponent::ChannelDma,
                    farm_.config().channelPjPerBit * 1e-12 *
                        static_cast<double>(bytes) * 8.0);
        Time dur = transferTime(bytes, farm_.config().channelGBps);
        Time finish = channels_[ch].acquire(queue_.now(), dur);
        ++dma_ops_;
        queue_.schedule(finish, [this, die] { execute(die); });
        return;
    }

    nand::OpResult r = op.fn(farm_.chip(die));
    energy_.add(op.comp, r.energyJ);
    Time finish = dies_[die].acquire(queue_.now(), r.latency);
    ++die_ops_;
    queue_.schedule(finish, [this, die, done = std::move(op.done)] {
        // The completion callback observes the die's latches before
        // any later op on this die mutates them.
        if (done)
            done();
        DieState &s = states_[die];
        s.running = false;
        pump(die);
    });
}

void
CommandScheduler::submitDma(std::uint32_t die, std::uint64_t bytes,
                            Callback done)
{
    std::uint32_t ch = farm_.channelOfDie(die);
    energy_.add(ssd::EnergyComponent::ChannelDma,
                farm_.config().channelPjPerBit * 1e-12 *
                    static_cast<double>(bytes) * 8.0);
    Time dur = transferTime(bytes, farm_.config().channelGBps);
    Time finish = channels_[ch].acquire(queue_.now(), dur);
    ++dma_ops_;
    if (done)
        queue_.schedule(finish, std::move(done));
    else
        queue_.schedule(finish, [] {});
}

Time
CommandScheduler::drain()
{
    queue_.run();
    makespan_ = std::max(makespan_, queue_.now());
    return makespan_;
}

Time
CommandScheduler::dieBusyTime(std::uint32_t die) const
{
    fcos_assert(die < dies_.size(), "die %u out of range", die);
    return dies_[die].busyTime();
}

Time
CommandScheduler::channelBusyTime(std::uint32_t channel) const
{
    fcos_assert(channel < channels_.size(), "channel %u out of range",
                channel);
    return channels_[channel].busyTime();
}

Time
CommandScheduler::maxDieBusyTime() const
{
    Time m = 0;
    for (const auto &d : dies_)
        m = std::max(m, d.busyTime());
    return m;
}

} // namespace fcos::engine
