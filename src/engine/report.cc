#include "engine/report.h"

#include <algorithm>

#include "engine/engine.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/units.h"

namespace fcos::engine {

std::vector<ScalingConfig>
defaultScalingSweep()
{
    // Dies-per-channel growth exposes the channel-contention knee;
    // channel growth on top shows the independent-channel scaling.
    return {{1, 1}, {1, 2}, {1, 4}, {1, 8}, {2, 8}, {4, 8}, {8, 8}};
}

namespace {

/** Deterministic operand payload for (column, row, operand). */
BitVector
operandData(std::uint64_t page_bits, std::uint32_t col, std::uint32_t row,
            std::uint32_t op)
{
    Rng rng = Rng::seeded(0x5CA1E000ULL + (static_cast<std::uint64_t>(col)
                                           << 20) +
                          (static_cast<std::uint64_t>(row) << 8) + op);
    BitVector v(page_bits);
    v.randomize(rng);
    return v;
}

} // namespace

TablePrinter
scalingReport(const std::vector<ScalingConfig> &configs,
              std::uint64_t and_operands, std::uint32_t pages_per_column,
              std::uint32_t page_bytes, std::vector<ScalingPoint> *points)
{
    fcos_assert(and_operands >= 2 && and_operands < 64,
                "operand count must fit one PBM");
    fcos_assert(pages_per_column >= 1, "need at least one result page");

    const wl::Workload shape = wl::makeEngineScaling(
        and_operands, static_cast<std::uint64_t>(page_bytes) *
                          pages_per_column);

    nand::Geometry geom;
    geom.planesPerDie = 2;
    geom.blocksPerPlane = std::max<std::uint32_t>(2, pages_per_column);
    geom.subBlocksPerBlock = 1;
    geom.wordlinesPerSubBlock = static_cast<std::uint32_t>(and_operands);
    geom.pageBytes = page_bytes;
    const std::uint64_t wl_mask = (1ULL << and_operands) - 1;

    TablePrinter table(
        "Engine scaling — weak-scaling bulk AND of " +
        std::to_string(and_operands) + " operands (" + shape.name +
        "), one intra-block MWS per result page");
    table.setHeader({"channels", "dies/ch", "dies", "columns",
                     "operand data", "makespan", "GB/s", "GB/s/die",
                     "ch util", "bit-exact"});

    for (const ScalingConfig &sc : configs) {
        FarmConfig fc;
        fc.channels = sc.channels;
        fc.diesPerChannel = sc.diesPerChannel;
        fc.geometry = geom;
        ComputeEngine eng(fc);
        const std::uint32_t cols = eng.farm().columnCount();
        const std::uint64_t page_bits = geom.pageBits();

        // Operands in place (instant functional programming), plus the
        // per-page reference AND the engine's results must reproduce.
        std::vector<BitVector> expected;
        expected.reserve(static_cast<std::size_t>(cols) *
                         pages_per_column);
        ShardedOp op;
        std::vector<BitVector> results(
            static_cast<std::size_t>(cols) * pages_per_column);
        std::vector<bool> arrived(results.size(), false);
        for (std::uint32_t col = 0; col < cols; ++col) {
            std::uint32_t die = eng.farm().dieOfColumn(col);
            std::uint32_t plane = eng.farm().planeOfColumn(col);
            for (std::uint32_t row = 0; row < pages_per_column; ++row) {
                BitVector ref(page_bits, true);
                for (std::uint32_t i = 0; i < and_operands; ++i) {
                    BitVector data = operandData(page_bits, col, row, i);
                    eng.farm().chip(die).programPageEsp(
                        {plane, row, 0, i}, data, nand::EspParams{2.0});
                    ref &= data;
                }
                expected.push_back(std::move(ref));

                nand::MwsCommand cmd;
                cmd.plane = plane;
                cmd.selections.push_back(
                    nand::WlSelection{row, 0, wl_mask});
                ColumnProgram prog;
                prog.die = die;
                prog.plane = plane;
                prog.steps.push_back(ColumnStep{
                    StepKind::Sense,
                    [cmd](nand::NandChip &chip) {
                        return chip.executeMws(cmd);
                    },
                    0, 0});
                std::size_t slot =
                    static_cast<std::size_t>(col) * pages_per_column +
                    row;
                prog.onResult = [&results, &arrived,
                                 slot](BitVector page) {
                    results[slot] = std::move(page);
                    arrived[slot] = true;
                };
                op.add(std::move(prog));
            }
        }

        OpStats stats;
        eng.submit(std::move(op), &stats);
        Time makespan = eng.drain();

        bool exact = true;
        for (std::size_t i = 0; i < results.size(); ++i)
            exact = exact && arrived[i] && results[i] == expected[i];

        const double bytes =
            static_cast<double>(and_operands) * pages_per_column * cols *
            page_bytes;
        const double gbps = bytes / static_cast<double>(makespan);
        const double per_die = gbps / fc.dieCount();
        Time busiest = 0;
        for (std::uint32_t c = 0; c < fc.channels; ++c)
            busiest = std::max(busiest, eng.channelBusyTime(c));
        const double util = static_cast<double>(busiest) /
                            static_cast<double>(makespan);

        table.addRow(
            {std::to_string(sc.channels),
             std::to_string(sc.diesPerChannel),
             std::to_string(fc.dieCount()), std::to_string(cols),
             formatBytes(static_cast<std::uint64_t>(bytes)),
             formatTime(makespan), TablePrinter::cell(gbps, 2),
             TablePrinter::cell(per_die, 2),
             TablePrinter::cell(util * 100.0, 1) + "%",
             exact ? "yes" : "NO"});

        if (points) {
            ScalingPoint p;
            p.config = sc;
            p.makespan = makespan;
            p.throughputGBps = gbps;
            p.perDieGBps = per_die;
            p.channelUtilization = util;
            p.energyJ = eng.totalEnergyJ();
            p.bitExact = exact;
            points->push_back(p);
        }
    }
    return table;
}

} // namespace fcos::engine
