/**
 * @file
 * Sharded bulk bitwise operations: how one logical operation is
 * partitioned across the farm's dies and merged back together.
 *
 * A bulk operation over page-striped vectors decomposes into
 * independent *column programs* — one per (die, plane) page column —
 * because every NAND-side primitive (MWS sense, latch XOR, program-
 * from-latch) touches exactly one plane's latch pair. The sharding
 * rules are:
 *
 *  - page j of a striped vector lives on column (j mod columns), so a
 *    vector of P pages shards into P column programs spread round-robin
 *    over every die — all dies compute at once;
 *
 *  - operands combined by one program must be co-located on the
 *    column's die (Equation 1: only wordlines of the same plane's
 *    strings can be sensed together). Operands that are not — e.g. a
 *    single-page vector combined against striped ones — must first be
 *    *replicated* to each target column (ComputeEngine::replicatePage),
 *    paying channel time for the copies;
 *
 *  - per-die results are merged by the submitter: each program's
 *    result page returns through its onResult callback (after channel
 *    readout), and the caller pastes pages back into the logical
 *    result vector.
 *
 * Within a program, steps execute in order on the die; across
 * programs, the scheduler interleaves dies by simulated time. A
 * program's steps never interleave with another program on the same
 * die (the per-die FIFO keeps latch state coherent).
 */

#ifndef FCOS_ENGINE_SHARDED_OP_H
#define FCOS_ENGINE_SHARDED_OP_H

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/chip_farm.h"
#include "util/bitvector.h"

namespace fcos::engine {

/** What a step does — drives stats and energy classification. */
enum class StepKind : std::uint8_t
{
    Sense,    ///< MWS sense command
    LatchXor, ///< on-chip C := S XOR C
    PageRead, ///< regular serial page read (fallback path)
    Program,  ///< page program (data-in or program-from-latch)
    OrDump,   ///< legacy cache-read OR transfer (no array activity)
    Copyback, ///< in-plane read + program (GC relocation; no channel)
    Erase,    ///< block erase (GC capacity reclaim)
};

/** One die-local step of a column program. */
struct ColumnStep
{
    StepKind kind = StepKind::Sense;
    /** Functional mutation; returns the op's latency and energy. */
    std::function<nand::OpResult(nand::NandChip &)> run;
    /** Channel bytes shipped die -> controller after this step
     *  (fallback page readout; pipelined with later steps). */
    std::uint64_t dmaAfterBytes = 0;
    /** Channel bytes shipped controller -> die before this step
     *  (program data-in; the die waits for the transfer). */
    std::uint64_t dmaBeforeBytes = 0;
};

/**
 * The unit of sharded execution: an ordered step list against one
 * (die, plane) column, with optional result readout.
 */
struct ColumnProgram
{
    std::uint32_t die = 0;
    std::uint32_t plane = 0;
    std::vector<ColumnStep> steps;

    /** Read the cache latch out over the channel after the last step
     *  and hand it to onResult. False for compute-in-place programs
     *  (program-from-latch) where data never leaves the die. */
    bool readOutResult = true;
    /**
     * Deliver the payload to onResult at the latch-capture instant
     * (last step's completion) instead of holding it inside the DMA
     * completion closure. The readout DMA is still booked — timing and
     * energy are identical — but the engine never buffers in-flight
     * pages, which is what keeps streamed (ResultSink) reads O(chunk)
     * when channels back up behind fast senses. onComplete still fires
     * at DMA completion.
     */
    bool resultAtCapture = false;
    /** Receives the result page (at DMA completion by default, at
     *  capture when resultAtCapture is set). */
    std::function<void(BitVector)> onResult;
    /** Fires once every step (and result readout) completed. */
    std::function<void()> onComplete;
};

/** Execution counters in FlashCosmosDrive::ReadStats terms. */
struct OpStats
{
    std::uint64_t mwsCommands = 0; ///< MWS sense commands issued
    std::uint64_t senses = 0;      ///< total sensing operations
    std::uint64_t latchXors = 0;   ///< on-chip XOR ops
    std::uint64_t pageReads = 0;   ///< fallback serial page reads
    std::uint64_t programs = 0;    ///< page programs
    std::uint64_t resultPages = 0; ///< pages read out of the chips
    std::uint64_t copybacks = 0;   ///< GC in-plane page relocations
    std::uint64_t erases = 0;      ///< GC block erases
    Time nandTime = 0;             ///< summed NAND busy time
    double nandEnergyJ = 0.0;      ///< summed NAND energy

    void tally(StepKind kind, const nand::OpResult &op);
};

/** A bulk operation sharded into per-column programs. */
class ShardedOp
{
  public:
    ShardedOp() = default;

    void add(ColumnProgram program)
    {
        programs_.push_back(std::move(program));
    }

    std::vector<ColumnProgram> &programs() { return programs_; }
    const std::vector<ColumnProgram> &programs() const
    {
        return programs_;
    }

    std::size_t columnCount() const { return programs_.size(); }

    /** Programs per die — the partition the sharding produced. */
    std::vector<std::uint32_t>
    partition(std::uint32_t die_count) const;

    /** Number of distinct dies this op computes on. */
    std::uint32_t diesTouched(std::uint32_t die_count) const;

  private:
    std::vector<ColumnProgram> programs_;
};

} // namespace fcos::engine

#endif // FCOS_ENGINE_SHARDED_OP_H
