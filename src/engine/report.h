/**
 * @file
 * Engine-scaling report: simulated bulk-bitwise throughput vs die
 * count, as a util/table.
 *
 * The sweep is weak-scaling: every (die, plane) column computes the
 * same number of result pages (one intra-block MWS AND over
 * `andOperands` co-located operands per result page), so doubling the
 * die count doubles the logical work. Throughput therefore scales
 * near-linearly with dies until the per-channel result readout — one
 * page DMA per MWS — saturates the channel bus, exactly the knee the
 * paper's SSD-level evaluation shows.
 *
 * The report runs the *functional* engine: every result page is also
 * checked against the reference AND, so one table certifies both the
 * timeline and bit-exactness. Shared between bench/engine_scaling and
 * the golden test that pins its output.
 */

#ifndef FCOS_ENGINE_REPORT_H
#define FCOS_ENGINE_REPORT_H

#include <cstdint>
#include <vector>

#include "util/table.h"
#include "util/units.h"
#include "workloads/workload.h"

namespace fcos::engine {

/** One row of the sweep: a farm shape. */
struct ScalingConfig
{
    std::uint32_t channels;
    std::uint32_t diesPerChannel;
};

/** The default sweep: dies-per-channel growth, then channel growth. */
std::vector<ScalingConfig> defaultScalingSweep();

/** Measured numbers behind one table row (for tests). */
struct ScalingPoint
{
    ScalingConfig config{};
    Time makespan = 0;
    double throughputGBps = 0.0;
    double perDieGBps = 0.0;
    double channelUtilization = 0.0; ///< busiest channel / makespan
    double energyJ = 0.0;
    bool bitExact = false;
};

/**
 * Run the sweep and render the table. The workload shape comes from
 * wl::makeEngineScaling (operand count per result page); operand size
 * is fixed per column (@p pages_per_column pages of @p page_bytes), so
 * total work grows with the farm.
 *
 * @param points  when non-null, receives one ScalingPoint per row
 */
TablePrinter scalingReport(const std::vector<ScalingConfig> &configs,
                           std::uint64_t and_operands = 24,
                           std::uint32_t pages_per_column = 2,
                           std::uint32_t page_bytes = 8 * 1024,
                           std::vector<ScalingPoint> *points = nullptr);

} // namespace fcos::engine

#endif // FCOS_ENGINE_REPORT_H
