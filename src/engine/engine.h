/**
 * @file
 * The multi-die compute engine: event-driven, sharded execution of
 * bulk bitwise work over a farm of functional NAND dies.
 *
 * This is the layer that unifies the repository's two previously
 * disjoint halves. The *functional* path (core/drive + nand/chip)
 * computed bit-exact results but executed every command serially with
 * no notion of time; the *timing* path (ssd/ssd_sim) modelled channel
 * and plane contention but moved no data. The engine executes real
 * commands against real chips **through** the deterministic Facility
 * model, so a single run yields bit-exact result vectors *and* a
 * contention-accurate timeline and energy ledger. The platform
 * drivers (platforms/runner) run the paper's Figure 7/17/18 workloads
 * over the same scheduler, making the engine the single source of
 * truth for functional results, timing, and energy.
 *
 * Async API: callers submit() column programs (or whole ShardedOps)
 * and drain(); completion callbacks deliver result pages at their
 * simulated readout times. Per-plane ordering follows submission
 * order; planes — including planes of one die — execute concurrently;
 * cross-plane interleaving follows simulated time with FIFO
 * tie-breaking, so every run is bit-reproducible.
 *
 * Replication: operands that Equation-1 locality requires on a die
 * where they are not stored (e.g. a one-page vector combined against
 * striped ones) are copied die-to-die through the controller with
 * broadcastPage() — one sense, one channel readout, then a data-in
 * transfer plus ESP program per destination — paying the realistic
 * time and energy for the copies while sensing the source only once.
 */

#ifndef FCOS_ENGINE_ENGINE_H
#define FCOS_ENGINE_ENGINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/chip_farm.h"
#include "engine/scheduler.h"
#include "engine/sharded_op.h"

namespace fcos::engine {

class ComputeEngine
{
  public:
    explicit ComputeEngine(const FarmConfig &cfg);

    ChipFarm &farm() { return farm_; }
    const ChipFarm &farm() const { return farm_; }
    CommandScheduler &scheduler() { return scheduler_; }
    const CommandScheduler &scheduler() const { return scheduler_; }

    /** Current simulated time (start-of-op timestamps for spans). */
    Time now() const { return scheduler_.queue().now(); }

    /**
     * Submit one column program. Steps execute in order on the
     * program's (die, plane) column; the result page (if
     * readOutResult) arrives at onResult after its channel readout
     * completes.
     */
    void submit(ColumnProgram program, OpStats *stats = nullptr);

    /** Submit every column program of a sharded op. */
    void submit(ShardedOp op, OpStats *stats = nullptr);

    /** Run all submitted work; @return cumulative makespan. */
    Time drain() { return scheduler_.drain(); }

    /** One destination of a broadcast replication. */
    struct BroadcastTarget
    {
        std::uint32_t die = 0;
        nand::WordlineAddr addr;
    };

    /**
     * Broadcast the stored bits of one page to any number of
     * destination pages through the controller: *one* sense on the
     * source die, one channel readout, then a per-destination data-in
     * transfer and ESP program (fan-out over the destination
     * channels, pipelined behind each plane's cache latch). This is
     * the input-replication primitive sharding uses to satisfy
     * Equation-1 co-location; the single sense is what makes
     * replication scale on wide farms.
     *
     * @p on_target_done (optional) fires once per destination at its
     * program's simulated completion — the per-unit completion hook
     * request-tracking callers need.
     */
    void broadcastPage(std::uint32_t src_die, const nand::WordlineAddr &src,
                       const std::vector<BroadcastTarget> &targets,
                       const nand::EspParams &esp = nand::EspParams{},
                       OpStats *stats = nullptr,
                       std::function<void()> on_target_done = {});

    /** Single-destination convenience wrapper over broadcastPage(). */
    void replicatePage(std::uint32_t src_die, const nand::WordlineAddr &src,
                       std::uint32_t dst_die, const nand::WordlineAddr &dst,
                       const nand::EspParams &esp = nand::EspParams{},
                       OpStats *stats = nullptr);

    // --- unified timeline / energy ledger ---
    Time makespan() const { return scheduler_.makespan(); }
    Time dieBusyTime(std::uint32_t die) const
    {
        return scheduler_.dieBusyTime(die);
    }
    Time planeBusyTime(std::uint32_t die, std::uint32_t plane) const
    {
        return scheduler_.planeBusyTime(die, plane);
    }
    Time channelBusyTime(std::uint32_t channel) const
    {
        return scheduler_.channelBusyTime(channel);
    }
    const ssd::EnergyMeter &energy() const
    {
        return scheduler_.energy();
    }
    double totalEnergyJ() const { return scheduler_.energy().total(); }

  private:
    void finishProgram(const std::shared_ptr<ColumnProgram> &state,
                       OpStats *stats);

    ChipFarm farm_;
    CommandScheduler scheduler_;
};

/** Energy-ledger component a step's joules are booked against. */
ssd::EnergyComponent energyComponentFor(StepKind kind);

} // namespace fcos::engine

#endif // FCOS_ENGINE_ENGINE_H
