/**
 * @file
 * Asynchronous, deterministic command scheduler over the chip farm.
 *
 * The scheduler is the engine's event-driven spine: callers submit
 * plane operations (a functional chip mutation that reports its own
 * latency and energy) and channel/external transfers; the scheduler
 * books them on the shared Facility resources of sim/event_queue and
 * fires completion callbacks at the simulated completion times.
 *
 * Execution model:
 *
 *  - each (die, plane) is one Facility; operations submitted to a
 *    plane execute in submission order (FIFO), the functional mutation
 *    running at the simulated instant the plane becomes free — so
 *    per-plane sense sequences (which seed the error model) are
 *    identical to a fully serialized run. Planes of one die are
 *    independent: they sense concurrently, exactly like the per-plane
 *    facilities of ssd/ssd_sim;
 *
 *  - each channel is one Facility shared by its dies; result readout
 *    and data-in transfers serialize on it in arrival order — this is
 *    where multi-die scaling bends over (the contention the
 *    engine-scaling bench measures);
 *
 *  - a plane op may require a data-in transfer first (`preDmaBytes`,
 *    program data moving controller -> die). The transfer lands in the
 *    plane's cache latch, so it *pipelines behind the latch*: while
 *    the current operation occupies the plane's array, the next
 *    queued operation's data streams in over the channel. Only when
 *    the plane is idle does the op wait for its transfer;
 *
 *  - the external (PCIe) link and the per-channel ISP accelerator
 *    ports are additional facilities so platform drivers (OSP/ISP
 *    paths) run on the same unified timeline and energy ledger;
 *
 *  - the event queue's FIFO tie-breaking makes every run
 *    bit-reproducible: same submissions => same interleaving, same
 *    timeline, same energy ledger.
 *
 * Energy is booked into a ssd::EnergyMeter per activity, giving one
 * ledger spanning NAND ops, channel movement, the external link, and
 * accelerator work.
 */

#ifndef FCOS_ENGINE_SCHEDULER_H
#define FCOS_ENGINE_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "engine/chip_farm.h"
#include "sim/event_queue.h"
#include "ssd/energy.h"

namespace fcos::engine {

class CommandScheduler
{
  public:
    using Callback = std::function<void()>;
    /** A functional die mutation reporting its latency and energy. */
    using DieFn = std::function<nand::OpResult(nand::NandChip &)>;

    explicit CommandScheduler(ChipFarm &farm);

    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }
    ssd::EnergyMeter &energy() { return energy_; }
    const ssd::EnergyMeter &energy() const { return energy_; }

    /**
     * Submit one plane operation. @p fn runs against the die's chip
     * when plane @p plane of die @p die becomes free; @p done fires at
     * the op's simulated completion, before any later op on the same
     * plane starts.
     *
     * An optional @p pre_dma_bytes data-in transfer (controller -> die)
     * precedes the op. The transfer is issued as soon as the op is
     * next in the plane's queue, overlapping the previous op on the
     * plane (cache-latch pipelining); the op itself starts at
     * max(plane free, transfer complete).
     *
     * @param comp  energy component the op's joules are booked against
     */
    void submitPlaneOp(std::uint32_t die, std::uint32_t plane,
                       ssd::EnergyComponent comp, DieFn fn,
                       Callback done = {},
                       std::uint64_t pre_dma_bytes = 0);

    /**
     * Move @p bytes between die and controller over the die's channel;
     * @p done fires at transfer completion. The plane itself is not
     * occupied (cache-read pipelining: the latch is free to move data
     * while the next sense proceeds).
     */
    void submitDma(std::uint32_t die, std::uint64_t bytes,
                   Callback done = {});

    /** Move @p bytes across the external (PCIe) link. */
    void submitExternal(std::uint64_t bytes, Callback done = {});

    /** Book ISP-accelerator time on @p channel for @p bytes of bitwise
     *  work (streams at channel rate; Table 1 energy: 93 pJ / 64 B). */
    void submitAccel(std::uint32_t channel, std::uint64_t bytes,
                     Callback done = {});

    /** Run all submitted work to completion; @return the makespan. */
    Time drain();

    /** Simulated completion time of the last drain(). */
    Time makespan() const { return makespan_; }

    /** Accumulated busy time of one plane of one die. */
    Time planeBusyTime(std::uint32_t die, std::uint32_t plane) const;
    /** Busiest-plane busy time of one die (its occupancy proxy). */
    Time dieBusyTime(std::uint32_t die) const;
    /** Accumulated busy time of one channel bus. */
    Time channelBusyTime(std::uint32_t channel) const;
    /** Busy time of the external link. */
    Time externalBusyTime() const { return external_.busyTime(); }
    /** Busy time of one channel's accelerator port. */
    Time accelBusyTime(std::uint32_t channel) const;
    /** Maximum die busy time across the farm. */
    Time maxDieBusyTime() const;
    /** Maximum plane busy time across the farm. */
    Time maxPlaneBusyTime() const;

    std::uint64_t dieOpsExecuted() const { return die_ops_; }
    std::uint64_t dmaTransfers() const { return dma_ops_; }

  private:
    struct PendingOp
    {
        ssd::EnergyComponent comp;
        DieFn fn;
        Callback done;
        std::uint64_t preDmaBytes = 0;
        bool dmaIssued = false;
        bool dmaDone = false;
    };

    struct PlaneState
    {
        std::deque<std::shared_ptr<PendingOp>> pending;
        bool running = false;
    };

    std::uint32_t columnOf(std::uint32_t die, std::uint32_t plane) const
    {
        return die * planes_per_die_ + plane;
    }

    /** Issue the head op's data-in transfer if it has not started. */
    void prefetchDataIn(std::uint32_t die, std::uint32_t col);
    /** Start the next queued op of column @p col, if it is ready. */
    void pump(std::uint32_t die, std::uint32_t col);
    void execute(std::uint32_t die, std::uint32_t col);

    ChipFarm &farm_;
    EventQueue queue_;
    ssd::EnergyMeter energy_;
    std::uint32_t planes_per_die_;
    std::vector<Facility> planes_;   ///< one per (die, plane) column
    std::vector<Facility> channels_;
    std::vector<Facility> accel_ports_;
    Facility external_;
    std::vector<PlaneState> states_; ///< one per column
    Time makespan_ = 0;
    std::uint64_t die_ops_ = 0;
    std::uint64_t dma_ops_ = 0;
};

} // namespace fcos::engine

#endif // FCOS_ENGINE_SCHEDULER_H
