/**
 * @file
 * Asynchronous, deterministic command scheduler over the chip farm.
 *
 * The scheduler is the engine's event-driven spine: callers submit die
 * operations (a functional chip mutation that reports its own latency
 * and energy) and channel transfers; the scheduler books them on the
 * shared Facility resources of sim/event_queue and fires completion
 * callbacks at the simulated completion times.
 *
 * Execution model:
 *
 *  - each die is one Facility; operations submitted to a die execute
 *    in submission order (FIFO), the functional mutation running at
 *    the simulated instant the die becomes free — so per-die sense
 *    sequences (which seed the error model) are identical to a fully
 *    serialized run;
 *
 *  - each channel is one Facility shared by its dies; result readout
 *    and data-in transfers serialize on it in arrival order — this is
 *    where multi-die scaling bends over (the contention the
 *    engine-scaling bench measures);
 *
 *  - a die op may require a data-in transfer first (`preDmaBytes`,
 *    program data moving controller -> die); the die then waits for
 *    its channel slot before starting;
 *
 *  - the event queue's FIFO tie-breaking makes every run
 *    bit-reproducible: same submissions => same interleaving, same
 *    timeline, same energy ledger.
 *
 * Energy is booked into a ssd::EnergyMeter per activity, giving one
 * ledger spanning NAND ops and channel movement.
 */

#ifndef FCOS_ENGINE_SCHEDULER_H
#define FCOS_ENGINE_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "engine/chip_farm.h"
#include "sim/event_queue.h"
#include "ssd/energy.h"

namespace fcos::engine {

class CommandScheduler
{
  public:
    using Callback = std::function<void()>;
    /** A functional die mutation reporting its latency and energy. */
    using DieFn = std::function<nand::OpResult(nand::NandChip &)>;

    explicit CommandScheduler(ChipFarm &farm);

    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }
    ssd::EnergyMeter &energy() { return energy_; }
    const ssd::EnergyMeter &energy() const { return energy_; }

    /**
     * Submit one die operation. @p fn runs against the die's chip when
     * the die becomes free (after an optional @p pre_dma_bytes data-in
     * transfer over the die's channel); @p done fires at the op's
     * simulated completion, before any later op on the same die starts.
     *
     * @param comp  energy component the op's joules are booked against
     */
    void submitDieOp(std::uint32_t die, ssd::EnergyComponent comp,
                     DieFn fn, Callback done = {},
                     std::uint64_t pre_dma_bytes = 0);

    /**
     * Move @p bytes between die and controller over the die's channel;
     * @p done fires at transfer completion. The die itself is not
     * occupied (cache-read pipelining: the latch is free to move data
     * while the next sense proceeds).
     */
    void submitDma(std::uint32_t die, std::uint64_t bytes,
                   Callback done = {});

    /** Run all submitted work to completion; @return the makespan. */
    Time drain();

    /** Simulated completion time of the last drain(). */
    Time makespan() const { return makespan_; }

    /** Accumulated busy time of one die. */
    Time dieBusyTime(std::uint32_t die) const;
    /** Accumulated busy time of one channel bus. */
    Time channelBusyTime(std::uint32_t channel) const;
    /** Maximum die busy time across the farm. */
    Time maxDieBusyTime() const;

    std::uint64_t dieOpsExecuted() const { return die_ops_; }
    std::uint64_t dmaTransfers() const { return dma_ops_; }

  private:
    struct PendingOp
    {
        ssd::EnergyComponent comp;
        DieFn fn;
        Callback done;
        std::uint64_t preDmaBytes = 0;
    };

    struct DieState
    {
        std::deque<PendingOp> pending;
        bool running = false;
    };

    /** Start the next queued op of @p die, if any. */
    void pump(std::uint32_t die);
    void execute(std::uint32_t die);

    ChipFarm &farm_;
    EventQueue queue_;
    ssd::EnergyMeter energy_;
    std::vector<Facility> dies_;
    std::vector<Facility> channels_;
    std::vector<DieState> states_;
    Time makespan_ = 0;
    std::uint64_t die_ops_ = 0;
    std::uint64_t dma_ops_ = 0;
};

} // namespace fcos::engine

#endif // FCOS_ENGINE_SCHEDULER_H
