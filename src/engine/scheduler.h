/**
 * @file
 * Asynchronous, deterministic command scheduler over the chip farm.
 *
 * The scheduler is the engine's event-driven spine: callers submit
 * plane operations (a functional chip mutation that reports its own
 * latency and energy) and channel/external transfers; the scheduler
 * books them on the shared Facility resources of sim/event_queue and
 * fires completion callbacks at the simulated completion times.
 *
 * Execution model:
 *
 *  - each (die, plane) is one Facility; operations submitted to a
 *    plane execute in submission order (FIFO), the functional mutation
 *    running at the simulated instant the plane becomes free — so
 *    per-plane sense sequences (which seed the error model) are
 *    identical to a fully serialized run. Planes of one die are
 *    independent: they sense concurrently, exactly like the per-plane
 *    facilities of ssd/ssd_sim;
 *
 *  - each channel is one Facility shared by its dies; result readout
 *    and data-in transfers serialize on it in arrival order — this is
 *    where multi-die scaling bends over (the contention the
 *    engine-scaling bench measures);
 *
 *  - a plane op may require a data-in transfer first (`preDmaBytes`,
 *    program data moving controller -> die). The transfer lands in the
 *    plane's cache latch, so it *pipelines behind the latch*: while
 *    the current operation occupies the plane's array, the next
 *    queued operation's data streams in over the channel. Only when
 *    the plane is idle does the op wait for its transfer;
 *
 *  - the external (PCIe) link and the per-channel ISP accelerator
 *    ports are additional facilities so platform drivers (OSP/ISP
 *    paths) run on the same unified timeline and energy ledger;
 *
 *  - the event queue's FIFO tie-breaking makes every run
 *    bit-reproducible: same submissions => same interleaving, same
 *    timeline, same energy ledger.
 *
 * Parallel host execution (FarmConfig::workers > 1) shards the die
 * functions across a WorkerPool: a plane op's functional mutation is
 * the *work* phase of a sharded two-phase event (shard = die, so one
 * die's mutations never reorder or run concurrently), while everything
 * that touches shared simulation state — facility bookings, the energy
 * ledger, completion callbacks, new events — stays in the serial
 * commit phase, executed in (when, seq) order. Die functions must
 * therefore touch only their die's state (chip, latches, per-plane
 * sense counters) plus op-private buffers; cross-die and host-shared
 * effects belong in the `executed`/`done` callbacks. This is what
 * keeps 2- and 4-worker runs bit-for-bit identical to a serial run.
 *
 * Energy is booked into a ssd::EnergyMeter per activity, giving one
 * ledger spanning NAND ops, channel movement, the external link, and
 * accelerator work.
 */

#ifndef FCOS_ENGINE_SCHEDULER_H
#define FCOS_ENGINE_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "engine/chip_farm.h"
#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/worker_pool.h"
#include "ssd/energy.h"

namespace fcos::engine {

class CommandScheduler
{
  public:
    /** Completion callback. Same SBO callable as the event queue's
     *  payloads, so submitting a lambda here never heap-allocates on
     *  its way into a sim::Event. */
    using Callback = EventQueue::Callback;
    /** A functional die mutation reporting its latency and energy.
     *  Runs in the (possibly parallel) worker phase: it must only
     *  touch its die's state and op-private buffers. */
    using DieFn = std::function<nand::OpResult(nand::NandChip &)>;
    /** Commit-phase observer of a die op's result (runs serially in
     *  deterministic order; may touch shared state). */
    using ExecutedFn = std::function<void(const nand::OpResult &)>;

    explicit CommandScheduler(ChipFarm &farm);

    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }
    ssd::EnergyMeter &energy() { return energy_; }
    const ssd::EnergyMeter &energy() const { return energy_; }

    /** Host worker lanes sharding the die functions (1 = serial). */
    std::uint32_t workerCount() const
    {
        return pool_ ? pool_->workerCount() : 1;
    }

    /**
     * Submit one plane operation. @p fn runs against the die's chip
     * when plane @p plane of die @p die becomes free; @p done fires at
     * the op's simulated completion, before any later op on the same
     * plane starts.
     *
     * An optional @p pre_dma_bytes data-in transfer (controller -> die)
     * precedes the op. The transfer is issued as soon as the op is
     * next in the plane's queue, overlapping the previous op on the
     * plane (cache-latch pipelining); the op itself starts at
     * max(plane free, transfer complete).
     *
     * @param comp      energy component the op's joules are booked
     *                  against
     * @param executed  commit-phase hook receiving the op's OpResult
     *                  (shared-state accounting such as stats tallies
     *                  belongs here, not inside @p fn)
     */
    void submitPlaneOp(std::uint32_t die, std::uint32_t plane,
                       ssd::EnergyComponent comp, DieFn fn,
                       Callback done = {},
                       std::uint64_t pre_dma_bytes = 0,
                       ExecutedFn executed = {});

    /**
     * Move @p bytes between die and controller over the die's channel;
     * @p done fires at transfer completion. The plane itself is not
     * occupied (cache-read pipelining: the latch is free to move data
     * while the next sense proceeds).
     */
    void submitDma(std::uint32_t die, std::uint64_t bytes,
                   Callback done = {});

    /** Move @p bytes across the external (PCIe) link. */
    void submitExternal(std::uint64_t bytes, Callback done = {});

    /** Book ISP-accelerator time on @p channel for @p bytes of bitwise
     *  work (streams at channel rate; Table 1 energy: 93 pJ / 64 B). */
    void submitAccel(std::uint32_t channel, std::uint64_t bytes,
                     Callback done = {});

    /** Run all submitted work to completion; @return the makespan. */
    Time drain();

    /** Run the timeline up to (and including) @p deadline, leaving
     *  later work queued — the pacing primitive a paced submitter uses
     *  to bound its staged-request window. Bit-identical at any worker
     *  count. @return the clock (== max(now, deadline)). */
    Time runUntil(Time deadline);

    /** Simulated completion time of the last drain(). */
    Time makespan() const { return makespan_; }

    /** Accumulated busy time of one plane of one die. */
    Time planeBusyTime(std::uint32_t die, std::uint32_t plane) const;
    /** Busiest-plane busy time of one die (its occupancy proxy). */
    Time dieBusyTime(std::uint32_t die) const;
    /** Accumulated busy time of one channel bus. */
    Time channelBusyTime(std::uint32_t channel) const;
    /** Busy time of the external link. */
    Time externalBusyTime() const { return external_.busyTime(); }
    /** Busy time of one channel's accelerator port. */
    Time accelBusyTime(std::uint32_t channel) const;
    /** Maximum die busy time across the farm. */
    Time maxDieBusyTime() const;
    /** Maximum plane busy time across the farm. */
    Time maxPlaneBusyTime() const;

    std::uint64_t dieOpsExecuted() const { return die_ops_; }
    std::uint64_t dmaTransfers() const { return dma_ops_; }

    /**
     * Trace process (pid) of the drive-level tracks. The scheduler
     * registers it with the "external" link track at construction;
     * the owning drive adds its "requests" track under the same pid.
     * Meaningful only while tracing is live for this scheduler.
     */
    std::uint32_t tracePid() const { return drive_pid_; }
    /** Trace epoch this scheduler's tracks were registered against. */
    std::uint64_t traceEpoch() const { return trace_epoch_; }

  private:
    struct PendingOp
    {
        ssd::EnergyComponent comp;
        DieFn fn;
        ExecutedFn executed;
        Callback done;
        std::uint64_t preDmaBytes = 0;
        bool dmaIssued = false;
        bool dmaDone = false;
        /** Submission instant, for queue-wait spans/histograms. */
        Time submitted = 0;
        /** Filled by the worker phase, consumed by the commit phase
         *  (the pool barrier orders the two). */
        nand::OpResult result;
    };

    struct PlaneState
    {
        std::deque<std::shared_ptr<PendingOp>> pending;
        bool running = false;
    };

    std::uint32_t columnOf(std::uint32_t die, std::uint32_t plane) const
    {
        return die * planes_per_die_ + plane;
    }

    /** Issue the head op's data-in transfer if it has not started. */
    void prefetchDataIn(std::uint32_t die, std::uint32_t col);
    /** Start the next queued op of column @p col, if it is ready. */
    void pump(std::uint32_t die, std::uint32_t col);
    /** Worker phase: run the head op's die function (die-local). */
    void computeOp(std::uint32_t die, std::uint32_t col);
    /** Commit phase: book time/energy and schedule the completion. */
    void commitOp(std::uint32_t die, std::uint32_t col);

    ChipFarm &farm_;
    EventQueue queue_;
    std::unique_ptr<WorkerPool> pool_; ///< non-null when workers > 1
    ssd::EnergyMeter energy_;
    std::uint32_t planes_per_die_;
    std::vector<Facility> planes_;   ///< one per (die, plane) column
    std::vector<Facility> channels_;
    std::vector<Facility> accel_ports_;
    Facility external_;
    std::vector<PlaneState> states_; ///< one per column
    Time makespan_ = 0;
    std::uint64_t die_ops_ = 0;
    std::uint64_t dma_ops_ = 0;

    /** Observability state, captured at construction (tracks resolved
     *  once; every hot-path hook is one epoch branch when disabled).
     *  All recording below happens in serial commit contexts, so the
     *  trace is bit-identical at any worker count. */
    std::uint64_t trace_epoch_ = 0;
    std::uint64_t m_epoch_ = 0;
    std::uint32_t drive_pid_ = 0;
    std::vector<std::uint32_t> plane_tracks_;   ///< per column
    std::vector<std::uint32_t> wait_tracks_;    ///< per column (X overlays)
    std::vector<std::uint32_t> channel_tracks_; ///< per channel bus
    std::vector<std::uint32_t> accel_tracks_;   ///< per channel port
    std::uint32_t external_track_ = 0;
    /** Lazily resolved per-op-kind latency histograms + queue wait
     *  (commit phase is serial, so registration there is safe). */
    obs::Histogram *
        op_hist_[static_cast<std::size_t>(ssd::EnergyComponent::kCount)] =
            {};
    obs::Histogram *wait_hist_ = nullptr;
    std::uint64_t pub_die_ops_ = 0;
    std::uint64_t pub_dma_ops_ = 0;
};

} // namespace fcos::engine

#endif // FCOS_ENGINE_SCHEDULER_H
