#include "engine/engine.h"

#include "util/log.h"

namespace fcos::engine {

ssd::EnergyComponent
energyComponentFor(StepKind kind)
{
    switch (kind) {
      case StepKind::Sense:
      case StepKind::LatchXor:
        return ssd::EnergyComponent::NandMws;
      case StepKind::PageRead:
      case StepKind::OrDump:
        return ssd::EnergyComponent::NandRead;
      case StepKind::Program:
      case StepKind::Copyback:
        return ssd::EnergyComponent::NandProgram;
      case StepKind::Erase:
        return ssd::EnergyComponent::NandErase;
    }
    return ssd::EnergyComponent::NandRead;
}

ComputeEngine::ComputeEngine(const FarmConfig &cfg)
    : farm_(cfg), scheduler_(farm_)
{}

void
ComputeEngine::submit(ColumnProgram program, OpStats *stats)
{
    fcos_assert(!program.steps.empty(), "empty column program");
    fcos_assert(program.die < farm_.dieCount(),
                "program targets die %u beyond the farm", program.die);
    fcos_assert(program.plane < farm_.geometry().planesPerDie,
                "program targets plane %u beyond the die", program.plane);

    auto state = std::make_shared<ColumnProgram>(std::move(program));
    const std::uint32_t die = state->die;
    const std::uint32_t plane = state->plane;
    const std::size_t n = state->steps.size();
    for (std::size_t i = 0; i < n; ++i) {
        ColumnStep &step = state->steps[i];
        const bool last = (i + 1 == n);
        const std::uint64_t dma_after = step.dmaAfterBytes;

        CommandScheduler::DieFn fn = std::move(step.run);
        // Stats are shared across dies, so the tally happens in the
        // commit phase, never inside the (possibly parallel) die fn.
        CommandScheduler::ExecutedFn executed;
        if (stats)
            executed = [stats, kind = step.kind](const nand::OpResult &r) {
                stats->tally(kind, r);
            };

        CommandScheduler::Callback done;
        if (last) {
            done = [this, state, stats, dma_after] {
                if (dma_after > 0) {
                    // With no readout phase, a trailing transfer is
                    // the program's final timeline event: completion
                    // rides it, so per-request accounting sees the
                    // instant the data actually lands.
                    if (!state->readOutResult && state->onComplete) {
                        scheduler_.submitDma(state->die, dma_after,
                                             [state] {
                                                 state->onComplete();
                                             });
                        return;
                    }
                    scheduler_.submitDma(state->die, dma_after);
                }
                finishProgram(state, stats);
            };
        } else if (dma_after > 0) {
            done = [this, die, dma_after] {
                scheduler_.submitDma(die, dma_after);
            };
        }
        scheduler_.submitPlaneOp(die, plane, energyComponentFor(step.kind),
                                 std::move(fn), std::move(done),
                                 step.dmaBeforeBytes, std::move(executed));
    }
}

void
ComputeEngine::finishProgram(const std::shared_ptr<ColumnProgram> &state,
                             OpStats *stats)
{
    if (!state->readOutResult) {
        if (state->onComplete)
            state->onComplete();
        return;
    }
    // Capture the cache latch now — at the plane's completion instant —
    // before any later program on this plane can overwrite it; the page
    // is then in flight on the channel until its DMA completes.
    BitVector page = farm_.chip(state->die).dataOut(state->plane);
    if (stats)
        ++stats->resultPages;
    if (state->resultAtCapture) {
        // Streamed delivery: hand the payload over immediately so no
        // copy sits inside the DMA closure; the transfer itself still
        // occupies the channel and books its time and energy.
        if (state->onResult)
            state->onResult(std::move(page));
        scheduler_.submitDma(state->die, farm_.geometry().pageBytes,
                             [state] {
                                 if (state->onComplete)
                                     state->onComplete();
                             });
        return;
    }
    scheduler_.submitDma(
        state->die, farm_.geometry().pageBytes,
        [state, page = std::move(page)]() mutable {
            if (state->onResult)
                state->onResult(std::move(page));
            if (state->onComplete)
                state->onComplete();
        });
}

void
ComputeEngine::submit(ShardedOp op, OpStats *stats)
{
    for (ColumnProgram &p : op.programs())
        submit(std::move(p), stats);
}

void
ComputeEngine::broadcastPage(std::uint32_t src_die,
                             const nand::WordlineAddr &src,
                             const std::vector<BroadcastTarget> &targets,
                             const nand::EspParams &esp, OpStats *stats,
                             std::function<void()> on_target_done)
{
    fcos_assert(src_die < farm_.dieCount(),
                "broadcast source beyond the farm");
    fcos_assert(!targets.empty(), "broadcast without destinations");
    for (const BroadcastTarget &t : targets)
        fcos_assert(t.die < farm_.dieCount(),
                    "broadcast destination beyond the farm");
    const std::uint64_t bytes = farm_.geometry().pageBytes;
    auto page = std::make_shared<BitVector>();

    scheduler_.submitPlaneOp(
        src_die, src.plane, ssd::EnergyComponent::NandRead,
        [src, page](nand::NandChip &chip) {
            // Raw copy of stored bits: polarity metadata travels with
            // the vector handle, not the cells.
            nand::OpResult r = chip.readPage(src, /*inverse=*/false);
            *page = chip.dataOut(src.plane);
            return r;
        },
        [this, src_die, targets, esp, page, stats, bytes,
         on_target_done = std::move(on_target_done)] {
            // One readout to the controller, then fan out: each
            // destination pays its own data-in transfer and program,
            // but the sense happened exactly once.
            scheduler_.submitDma(
                src_die, bytes,
                [this, targets, esp, page, stats, bytes,
                 on_target_done] {
                    // All destinations reference one payload buffer
                    // (copy-on-write dense image): N-way fan-out costs
                    // one page of memory regardless of N.
                    nand::PageImage image = nand::PageImage::shared(
                        std::shared_ptr<const BitVector>(page));
                    for (const BroadcastTarget &t : targets) {
                        CommandScheduler::ExecutedFn executed;
                        if (stats)
                            executed = [stats](const nand::OpResult &r) {
                                stats->tally(StepKind::Program, r);
                            };
                        scheduler_.submitPlaneOp(
                            t.die, t.addr.plane,
                            ssd::EnergyComponent::NandProgram,
                            [dst = t.addr, esp,
                             image](nand::NandChip &chip) {
                                return chip.programPageEsp(dst, image,
                                                           esp);
                            },
                            on_target_done
                                ? CommandScheduler::Callback(
                                      [on_target_done] {
                                          on_target_done();
                                      })
                                : CommandScheduler::Callback{},
                            /*pre_dma_bytes=*/bytes,
                            std::move(executed));
                    }
                });
        },
        /*pre_dma_bytes=*/0,
        stats ? CommandScheduler::ExecutedFn(
                    [stats](const nand::OpResult &r) {
                        stats->tally(StepKind::PageRead, r);
                    })
              : CommandScheduler::ExecutedFn{});
}

void
ComputeEngine::replicatePage(std::uint32_t src_die,
                             const nand::WordlineAddr &src,
                             std::uint32_t dst_die,
                             const nand::WordlineAddr &dst,
                             const nand::EspParams &esp, OpStats *stats)
{
    broadcastPage(src_die, src, {BroadcastTarget{dst_die, dst}}, esp,
                  stats);
}

} // namespace fcos::engine
