#include "engine/admission.h"

#include <algorithm>

#include "util/log.h"

namespace fcos::engine {

namespace {

/** Virtual-time quantum numerator: one admission of a weight-w class
 *  advances its tag by kServiceScale / w, so higher weights mean
 *  smaller steps and proportionally more admissions. The value only
 *  needs enough headroom that integer division keeps distinct weights
 *  distinct. */
constexpr std::uint64_t kServiceScale = 1 << 20;

void
sortKeys(std::vector<std::uint64_t> &keys)
{
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
}

/** Any element of @p sorted (ascending, unique) present in @p probe? */
bool
intersects(const std::vector<std::uint64_t> &sorted,
           const std::vector<std::uint64_t> &probe)
{
    if (sorted.empty() || probe.empty())
        return false;
    for (std::uint64_t k : probe) {
        if (std::binary_search(sorted.begin(), sorted.end(), k))
            return true;
    }
    return false;
}

} // namespace

const char *
requestClassName(RequestClass cls)
{
    switch (cls) {
    case RequestClass::Read:
        return "read";
    case RequestClass::Write:
        return "write";
    case RequestClass::Compute:
        return "compute";
    }
    return "?";
}

RequestQueue::RequestQueue(CommandScheduler &sched, const Config &cfg)
    : sched_(sched), cfg_(cfg)
{
    fcos_assert(cfg_.depth >= 1, "admission depth must be >= 1");
    for (std::size_t c = 0; c < kRequestClassCount; ++c)
        fcos_assert(cfg_.weights[c] >= 1,
                    "QoS weight for class %zu must be >= 1", c);
}

bool
RequestQueue::conflicts(const Request &r,
                        const std::vector<std::uint64_t> &a_reads,
                        const std::vector<std::uint64_t> &a_writes)
{
    // Readers share; a write excludes everyone touching the key.
    return intersects(r.writes, a_writes) ||
           intersects(r.writes, a_reads) ||
           intersects(r.reads, a_writes);
}

RequestId
RequestQueue::submit(RequestClass cls, Time arrival,
                     std::vector<std::uint64_t> read_keys,
                     std::vector<std::uint64_t> write_keys, IssueFn issue,
                     DoneFn done)
{
    fcos_assert(issue != nullptr, "request needs an issue closure");
    const RequestId id = next_id_++;
    Request &r = reqs_[id];
    r.cls = cls;
    r.arrival = std::max(arrival, sched_.queue().now());
    r.reads = std::move(read_keys);
    r.writes = std::move(write_keys);
    sortKeys(r.reads);
    sortKeys(r.writes);
    r.issue = std::move(issue);
    r.done = std::move(done);
    if (r.arrival <= sched_.queue().now()) {
        onArrival(id);
    } else {
        // Stage the arrival on the engine clock; same-time arrivals
        // keep submission order via the queue's FIFO tie-break.
        sched_.queue().schedule(r.arrival, [this, id] { onArrival(id); });
    }
    return id;
}

std::vector<std::uint64_t>
RequestQueue::liveKeys() const
{
    std::vector<std::uint64_t> keys;
    for (const auto &[id, r] : reqs_) {
        (void)id;
        keys.insert(keys.end(), r.reads.begin(), r.reads.end());
        keys.insert(keys.end(), r.writes.begin(), r.writes.end());
    }
    sortKeys(keys);
    return keys;
}

void
RequestQueue::onArrival(RequestId id)
{
    Request &r = reqs_.at(id);
    fcos_assert(!r.arrived, "request %llu arrived twice",
                static_cast<unsigned long long>(id));
    r.arrived = true;
    pending_.push_back(id);
    pumpAdmission();
}

void
RequestQueue::pumpAdmission()
{
    for (;;) {
        if (in_flight_.size() >= cfg_.depth || pending_.empty())
            return;

        // First admissible request of each class, scanning in arrival
        // order: a request is blocked by any in-flight conflict and by
        // any conflicting *earlier* pending request (order among
        // conflicting requests is arrival order, always).
        constexpr std::size_t kNone = static_cast<std::size_t>(-1);
        std::size_t cand[kRequestClassCount];
        for (auto &c : cand)
            c = kNone;
        std::size_t found = 0;
        std::vector<std::uint64_t> earlier_reads, earlier_writes;
        for (std::size_t i = 0;
             i < pending_.size() && found < kRequestClassCount; ++i) {
            const Request &r = reqs_.at(pending_[i]);
            const auto ci = static_cast<std::size_t>(r.cls);
            if (cand[ci] == kNone &&
                !conflicts(r, earlier_reads, earlier_writes)) {
                bool blocked = false;
                for (RequestId fid : in_flight_) {
                    const Request &f = reqs_.at(fid);
                    if (conflicts(f, r.reads, r.writes)) {
                        blocked = true;
                        break;
                    }
                }
                if (!blocked) {
                    cand[ci] = i;
                    ++found;
                }
            }
            earlier_reads.insert(earlier_reads.end(), r.reads.begin(),
                                 r.reads.end());
            earlier_writes.insert(earlier_writes.end(), r.writes.begin(),
                                  r.writes.end());
        }
        if (found == 0)
            return;

        // Weighted fair queueing over the candidate classes: smallest
        // virtual finish tag wins; ties break toward the lower class
        // index. Integer arithmetic keeps the schedule bit-stable.
        std::size_t best_cls = kNone;
        std::uint64_t best_tag = 0;
        for (std::size_t c = 0; c < kRequestClassCount; ++c) {
            if (cand[c] == kNone)
                continue;
            const std::uint64_t tag =
                service_[c] + kServiceScale / cfg_.weights[c];
            if (best_cls == kNone || tag < best_tag) {
                best_cls = c;
                best_tag = tag;
            }
        }
        service_[best_cls] = best_tag;

        const RequestId id = pending_[cand[best_cls]];
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(cand[best_cls]));
        in_flight_.push_back(id);
        ++admitted_[best_cls];

        Request &r = reqs_.at(id);
        r.admitted = sched_.queue().now();
        if (obs::metricsOn()) {
            const auto epoch = obs::metricsEpoch();
            if (epoch != m_epoch_) {
                m_epoch_ = epoch;
                for (std::size_t c = 0; c < kRequestClassCount; ++c) {
                    wait_hist_[c] = &obs::metrics().histogram(
                        std::string("engine.admission.wait.") +
                        requestClassName(static_cast<RequestClass>(c)));
                }
                inflight_peak_ = &obs::metrics().gauge(
                    "engine.admission.inflight_peak");
            }
            wait_hist_[best_cls]->record(r.admitted - r.arrival);
            inflight_peak_->noteMax(
                static_cast<double>(in_flight_.size()));
        }

        // Issue runs on this (serial) stack and registers the
        // request's engine work. Take the closure out first: addWork /
        // workDone inside it may not complete the request (work cannot
        // retire synchronously), but keeping `r` borrowed across user
        // code would be fragile against rehashes from nested submits.
        IssueFn issue = std::move(r.issue);
        issue(id);
        Request &r2 = reqs_.at(id);
        r2.issued = true;
        fcos_assert(r2.outstanding > 0,
                    "request %llu issued no engine work",
                    static_cast<unsigned long long>(id));
    }
}

void
RequestQueue::addWork(RequestId id)
{
    Request &r = reqs_.at(id);
    fcos_assert(!r.issued || r.outstanding > 0,
                "late addWork on a request with no work in flight");
    ++r.outstanding;
}

void
RequestQueue::workDone(RequestId id)
{
    auto it = reqs_.find(id);
    fcos_assert(it != reqs_.end(), "workDone on unknown request %llu",
                static_cast<unsigned long long>(id));
    Request &r = it->second;
    fcos_assert(r.outstanding > 0, "workDone underflow on request %llu",
                static_cast<unsigned long long>(id));
    --r.outstanding;
    if (r.outstanding == 0 && r.issued)
        complete(id, r);
}

void
RequestQueue::complete(RequestId id, Request &r)
{
    const Outcome oc{r.arrival, r.admitted, sched_.queue().now()};
    DoneFn done = std::move(r.done);
    auto pos = std::find(in_flight_.begin(), in_flight_.end(), id);
    fcos_assert(pos != in_flight_.end(),
                "completed request %llu not in flight",
                static_cast<unsigned long long>(id));
    in_flight_.erase(pos);
    ++completed_;
    reqs_.erase(id);
    // The done hook may submit follow-up requests (closed-loop
    // traffic); the queue is consistent by this point.
    if (done)
        done(oc);
    pumpAdmission();
}

} // namespace fcos::engine
