/**
 * @file
 * Admission/request queue in front of the command scheduler: the layer
 * that turns drain-per-op execution into a served request stream.
 *
 * Callers submit *requests* — an issue closure plus the conflict
 * footprint it will touch — instead of running ops back to back. The
 * queue admits requests onto the engine's shared event clock subject
 * to three policies:
 *
 *  - **bounded depth** (Config::depth): at most that many requests are
 *    in flight at once; the rest wait in arrival order. This is the
 *    backpressure window a real controller's command slots impose.
 *
 *  - **conflict-grained serialization**: each request declares read
 *    and write key sets (block-grained (die, plane, block) keys in the
 *    drive's usage, the lock-per-page idea of TrustedSSD's firmware at
 *    the granularity our FTL allocates). Two requests conflict when
 *    either writes a key the other touches. Conflicting requests are
 *    admitted strictly in arrival order; independent requests overtake
 *    and overlap on the shared timeline. Keys are acquired atomically
 *    at admission, so there is no lock-order deadlock.
 *
 *  - **QoS arbitration**: requests carry a class (Read / Write /
 *    Compute) and admission among eligible candidates is weighted fair
 *    queueing over Config::weights — integer virtual-time tags, so the
 *    schedule is bit-deterministic. Per-class queue-wait histograms
 *    land in the obs metrics registry ("engine.admission.wait.*").
 *
 * Completion is per-request: the issue closure registers engine work
 * via addWork()/workDone() (the drive wires workDone into each column
 * program's onComplete), and the request completes — keys released,
 * outcome reported, next admissions attempted — at the simulated
 * instant its last unit of work finishes. Everything here runs in
 * serial simulation contexts (host stack between runs, arrival events,
 * completion callbacks), so a concurrent schedule is bit-identical at
 * any worker count; a request stream submitted serially (each awaited
 * before the next) degenerates to exactly the seed's drain-per-op
 * behavior.
 */

#ifndef FCOS_ENGINE_ADMISSION_H
#define FCOS_ENGINE_ADMISSION_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "engine/scheduler.h"
#include "obs/obs.h"

namespace fcos::engine {

/** QoS class of a request (ordinary FTL I/O vs compute batches). */
enum class RequestClass : std::uint8_t
{
    Read = 0,
    Write = 1,
    Compute = 2,
};

inline constexpr std::size_t kRequestClassCount = 3;

const char *requestClassName(RequestClass cls);

using RequestId = std::uint64_t;

class RequestQueue
{
  public:
    struct Config
    {
        /** Admission window: max requests in flight at once. */
        std::uint32_t depth = 8;
        /** WFQ weights per class (Read, Write, Compute): under
         *  contention a class receives admissions proportional to its
         *  weight. All weights must be >= 1. */
        std::uint32_t weights[kRequestClassCount] = {1, 1, 1};
    };

    /** Lifecycle timestamps of a finished request. */
    struct Outcome
    {
        Time arrival = 0;   ///< when the request entered the queue
        Time admitted = 0;  ///< when it won admission (issue ran)
        Time completed = 0; ///< when its last unit of work finished
    };

    /** Runs at admission (a serial context): submit the request's
     *  engine work, registering it via addWork(). Must register at
     *  least one unit. */
    using IssueFn = std::function<void(RequestId)>;
    /** Runs at completion (a serial context), after the request's keys
     *  are released and before further admissions are attempted. */
    using DoneFn = std::function<void(const Outcome &)>;

    RequestQueue(CommandScheduler &sched, const Config &cfg);

    /**
     * Submit a request of class @p cls arriving at @p arrival (clamped
     * to now; future arrivals are staged as events on the engine
     * clock). @p read_keys / @p write_keys are the conflict footprint
     * (arbitrary 64-bit resource keys; duplicates allowed). The
     * request is admitted — @p issue invoked — as soon as it is
     * eligible, possibly synchronously within this call.
     */
    RequestId submit(RequestClass cls, Time arrival,
                     std::vector<std::uint64_t> read_keys,
                     std::vector<std::uint64_t> write_keys, IssueFn issue,
                     DoneFn done = {});

    /** Register one unit of engine work against an in-flight request
     *  (called from its issue closure or a continuation). */
    void addWork(RequestId id);

    /** Retire one unit of work; the last retirement completes the
     *  request at the current simulated time. */
    void workDone(RequestId id);

    /** True when no request is staged, pending, or in flight. */
    bool idle() const { return reqs_.empty(); }

    /** Requests holding any state: staged + pending + in flight. The
     *  steady-state memory bound — completed requests are erased, so
     *  this never grows with traffic served. */
    std::size_t liveRequestCount() const { return reqs_.size(); }

    /** Union of every live request's read and write keys, sorted and
     *  deduped — the busy set the drive's GC victim selection must
     *  avoid (those requests captured physical addresses at submit).
     *  O(live requests), not O(completed). */
    std::vector<std::uint64_t> liveKeys() const;

    std::size_t inFlightCount() const { return in_flight_.size(); }
    /** Arrived but not yet admitted. */
    std::size_t pendingCount() const { return pending_.size(); }
    std::uint64_t admittedCount(RequestClass cls) const
    {
        return admitted_[static_cast<std::size_t>(cls)];
    }
    std::uint64_t completedCount() const { return completed_; }
    const Config &config() const { return cfg_; }

  private:
    struct Request
    {
        RequestClass cls = RequestClass::Read;
        Time arrival = 0;
        Time admitted = 0;
        std::vector<std::uint64_t> reads;  ///< sorted, deduped
        std::vector<std::uint64_t> writes; ///< sorted, deduped
        IssueFn issue;
        DoneFn done;
        std::uint64_t outstanding = 0;
        bool issued = false;
        bool arrived = false;
    };

    /** Does (a_reads, a_writes) — sorted — conflict with r? */
    static bool conflicts(const Request &r,
                          const std::vector<std::uint64_t> &a_reads,
                          const std::vector<std::uint64_t> &a_writes);

    void onArrival(RequestId id);
    /** Admit every currently eligible request (WFQ order). */
    void pumpAdmission();
    void complete(RequestId id, Request &r);

    CommandScheduler &sched_;
    Config cfg_;
    RequestId next_id_ = 1;
    /** Every live request: staged, pending, or in flight. */
    std::unordered_map<RequestId, Request> reqs_;
    /** Arrived, not yet admitted — in arrival order (the order
     *  conflicting requests serialize in). */
    std::vector<RequestId> pending_;
    std::vector<RequestId> in_flight_;
    /** Integer WFQ virtual-time tag per class (units of
     *  kServiceScale / weight per admission). */
    std::uint64_t service_[kRequestClassCount] = {};
    std::uint64_t admitted_[kRequestClassCount] = {};
    std::uint64_t completed_ = 0;

    /** Lazily resolved per-class queue-wait histograms (+ peak
     *  in-flight gauge); all recording happens in serial contexts. */
    std::uint64_t m_epoch_ = 0;
    obs::Histogram *wait_hist_[kRequestClassCount] = {};
    obs::Gauge *inflight_peak_ = nullptr;
};

} // namespace fcos::engine

#endif // FCOS_ENGINE_ADMISSION_H
