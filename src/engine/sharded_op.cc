#include "engine/sharded_op.h"

#include "util/log.h"

namespace fcos::engine {

void
OpStats::tally(StepKind kind, const nand::OpResult &op)
{
    nandTime += op.latency;
    nandEnergyJ += op.energyJ;
    switch (kind) {
      case StepKind::Sense:
        ++mwsCommands;
        ++senses;
        break;
      case StepKind::PageRead:
        ++senses;
        ++pageReads;
        break;
      case StepKind::LatchXor:
        ++latchXors;
        break;
      case StepKind::Program:
        ++programs;
        break;
      case StepKind::OrDump:
        break;
      case StepKind::Copyback:
        ++copybacks;
        break;
      case StepKind::Erase:
        ++erases;
        break;
    }
}

std::vector<std::uint32_t>
ShardedOp::partition(std::uint32_t die_count) const
{
    std::vector<std::uint32_t> per_die(die_count, 0);
    for (const ColumnProgram &p : programs_) {
        fcos_assert(p.die < die_count, "program targets die %u beyond farm",
                    p.die);
        ++per_die[p.die];
    }
    return per_die;
}

std::uint32_t
ShardedOp::diesTouched(std::uint32_t die_count) const
{
    std::uint32_t n = 0;
    for (std::uint32_t c : partition(die_count))
        if (c > 0)
            ++n;
    return n;
}

} // namespace fcos::engine
