#include "host/host_model.h"

namespace fcos::host {

void
HostModel::compute(std::uint64_t bytes, std::function<void()> done)
{
    Time dur = computeTime(bytes);
    energy_.add(ssd::EnergyComponent::HostCpu,
                cfg_.cpuActiveWatts * timeToSec(dur));
    // Streaming reads the operands and writes results through DRAM.
    energy_.add(ssd::EnergyComponent::HostDram,
                cfg_.dramPjPerBit * 1e-12 * static_cast<double>(bytes) *
                    8.0);
    Time finish = cpu_.acquire(queue_.now(), dur);
    queue_.schedule(finish, std::move(done));
}

} // namespace fcos::host
