/**
 * @file
 * Host system model (paper Table 1: i7-11700K, 8 cores, 3.6 GHz,
 * 64 GB DDR4-3600 x4).
 *
 * The paper measures host behaviour on real hardware (with Ramulator
 * for DRAM timing detail); for this reproduction a calibrated
 * throughput/energy model suffices because, in every evaluated
 * scenario, host compute is *not* the bottleneck — Section 8.1 notes
 * that bitwise computation is completely hidden behind operand
 * delivery. What matters is (i) the streaming rate at which the host
 * can fold operands (bounded by DRAM bandwidth) and (ii) the energy
 * cost of keeping the package active, which RAPL attributes for the
 * whole busy interval.
 */

#ifndef FCOS_HOST_HOST_MODEL_H
#define FCOS_HOST_HOST_MODEL_H

#include <cstdint>

#include "sim/event_queue.h"
#include "ssd/energy.h"
#include "util/units.h"

namespace fcos::host {

struct HostConfig
{
    /** Sustained streaming rate for bulk bitwise ops / bit-count on
     *  8 cores (memory-bandwidth-bound, AVX2 kernels). */
    double streamGBps = 24.0;
    /** DDR4-3600 x4 channels peak bandwidth (GB/s). */
    double dramGBps = 115.2;
    /** Package power while streaming (RAPL-style attribution). */
    double cpuActiveWatts = 65.0;
    /** DRAM access energy per bit moved. */
    double dramPjPerBit = 20.0;
};

class HostModel
{
  public:
    HostModel(EventQueue &queue, ssd::EnergyMeter &energy,
              HostConfig cfg = HostConfig{})
        : queue_(queue), energy_(energy), cfg_(cfg), cpu_("host-cpu")
    {}

    const HostConfig &config() const { return cfg_; }

    /**
     * Stream @p bytes through the CPU (bitwise fold or bit-count).
     * Serializes on the host compute facility; books CPU-active and
     * DRAM energy; @p done fires at completion.
     */
    void compute(std::uint64_t bytes, std::function<void()> done);

    /** Pure query: how long @p bytes of streaming compute takes. */
    Time computeTime(std::uint64_t bytes) const
    {
        return transferTime(bytes, cfg_.streamGBps);
    }

    /**
     * One chunk of a streamed result fold: the same facility, rate,
     * and energy accounting as compute(), without a completion
     * callback. Chunked pipelines (the platform drivers, the streamed
     * functional runs) charge each chunk as it arrives, so the dense
     * and streamed result paths book identical time and joules.
     */
    void computeChunk(std::uint64_t bytes)
    {
        compute(bytes, [] {});
    }

    /**
     * Result lands in host DRAM without CPU post-processing (books
     * DRAM energy only; takes no host compute time).
     */
    void receive(std::uint64_t bytes)
    {
        energy_.add(ssd::EnergyComponent::HostDram,
                    cfg_.dramPjPerBit * 1e-12 *
                        static_cast<double>(bytes) * 8.0);
    }

    /** Total busy time of the host compute facility. */
    Time busyTime() const { return cpu_.busyTime(); }

  private:
    EventQueue &queue_;
    ssd::EnergyMeter &energy_;
    HostConfig cfg_;
    Facility cpu_;
};

} // namespace fcos::host

#endif // FCOS_HOST_HOST_MODEL_H
