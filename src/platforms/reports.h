/**
 * @file
 * Shared builders for the paper-figure tables that benches print and
 * tests pin as goldens.
 *
 * A bench that assembles its table inline can drift silently: the
 * binary still runs, the numbers change, nobody notices. Building the
 * table in one place lets bench drivers print it and a golden test
 * diff the exact same string against tests/data/golden/, so any drift
 * in configuration constants or model curves fails CI.
 */

#ifndef FCOS_PLATFORMS_REPORTS_H
#define FCOS_PLATFORMS_REPORTS_H

#include <vector>

#include "host/host_model.h"
#include "platforms/runner.h"
#include "platforms/sweep.h"
#include "reliability/chip_farm.h"
#include "ssd/config.h"
#include "util/table.h"

namespace fcos::plat {

/** Table 1 (SSD half): every configured parameter vs the paper. */
TablePrinter tab01SsdTable(const ssd::SsdConfig &cfg);

/** Table 1 (host half). */
TablePrinter tab01HostTable(const host::HostConfig &cfg);

/**
 * Figure 12: intra-block MWS latency (tMWS as a multiple of tR) vs
 * simultaneously read wordlines, from the calibrated timing model.
 * (The functional zero-error validation stays in the bench driver —
 * it needs the reliability stack.)
 */
TablePrinter fig12MwsLatencyTable();

/**
 * Figure 7: per-channel execution timelines of OSP, ISP and in-flash
 * processing for the illustrative OR of three 1-MiB vectors, with the
 * busiest resource called out per platform. Runs through @p runner
 * (engine mode by default), so the pinned golden certifies the
 * engine-produced timeline.
 */
TablePrinter fig07TimelineTable(const PlatformRunner &runner);

/** The Figure 7 micro-workload (OR of three 1-MiB vectors). */
wl::Workload figure7Workload();

/**
 * Figure 17: speedup over OSP per sweep point, one section per
 * workload series. Shared by the bench (full paper grids) and the
 * golden test (reduced grids) so the formatting and arithmetic cannot
 * drift between them.
 */
TablePrinter fig17SpeedupTable(const std::vector<SweepSeries> &series);

/** Figure 18: energy-efficiency ratios over OSP per sweep point. */
TablePrinter fig18EnergyTable(const std::vector<SweepSeries> &series);

/**
 * The reduced chip population the Figure 8 bench prints with and the
 * golden test pins — per-block statistics are analytic, so the
 * population size only affects the process-variation average.
 */
rel::ChipFarm::Config fig08FarmConfig();

/**
 * One Figure 8 panel: population-average RBER across the (P/E cycles,
 * retention months) measurement grid for a programming mode, with or
 * without data randomization.
 */
TablePrinter fig08RberPanel(const rel::ChipFarm &farm,
                            nand::ProgramMode mode, bool randomized);

/** All four Figure 8 panels (SLC/MLC x randomization) concatenated. */
std::string fig08RberReport(const rel::ChipFarm &farm);

/** Figure 11: RBER vs tESP for the worst / median / best block. */
TablePrinter fig11EspTable(const rel::ChipFarm &farm,
                           const rel::OperatingCondition &cond);

/**
 * Figure 11's zero-error validation campaigns: observed vs expected
 * error counts over @p total_bits at tESP factors 1.5 / 1.7 / 1.9 /
 * 2.0 (Poisson-sampled from the analytic rates).
 */
TablePrinter fig11CampaignTable(const rel::ChipFarm &farm,
                                const rel::OperatingCondition &cond,
                                std::uint64_t total_bits);

/**
 * Figure 13: inter-block MWS latency vs simultaneously activated
 * blocks, each point functionally validated (an inter-block MWS over
 * error-injected chips must still reproduce the reference OR).
 */
TablePrinter fig13InterMwsTable();

/**
 * Figure 14: normalized chip power of inter-block MWS vs activated
 * blocks, against the read / program / erase reference lines.
 */
TablePrinter fig14PowerTable();

// ---------------------------------------------------------------------
// Ablation tables (bench/ablation_*.cc print these; the golden test
// pins them, so the ablation conclusions cannot drift silently).

/** Ablation: inter-block MWS fan-in cap sweep for a 32-operand bulk
 *  OR — latency, peak power vs the erase budget, sensing energy. */
TablePrinter ablationBlockLimitTable();

/** Ablation: bulk-OR sensing cost by execution strategy (serial
 *  reads vs capped inter-block MWS vs §6.1 inverse intra-block). */
TablePrinter ablationDeMorganTable();

/** Ablation: operand-storage reliability comparison (ESP vs regular
 *  SLC vs MLC-LSB vs MLC) at the worst-case operating point. */
TablePrinter ablationMlcLsbTable();

/** Measured cost of one placement-ablation query on the functional
 *  drive (co-located group vs scattered sub-blocks). */
struct AblationPlacementCost
{
    std::uint64_t commandsPerPage = 0;
    Time nandTime = 0;
    double energyJ = 0.0;
    bool correct = false;
};

AblationPlacementCost ablationPlacementQuery(bool colocated,
                                             int operands);

/** Ablation: co-located vs scattered operand placement for bulk AND,
 *  executed on the functional drive (Section 6.3's contract). */
TablePrinter ablationPlacementTable();

/** Outcome counters of the XOR-encryption ablation run. */
struct AblationXorStats
{
    bool encryptChanges = false; ///< cipher != plaintext
    bool roundTrips = false;     ///< decrypt(encrypt(x)) == x
    std::uint64_t sensesPerPage = 0;
};

/** Ablation: in-flash XOR encryption (footnote 13) — bit-exact but
 *  one sense per operand, so MWS gains nothing. */
TablePrinter ablationXorEncryptionTable(AblationXorStats *stats =
                                            nullptr);

/** Outcome counters of the ECC-incompatibility trials. */
struct AblationEccStats
{
    int rejected = 0;
    int miscorrected = 0;
    int acceptedCorrect = 0;
    int trials = 0;
};

/** Ablation (Section 3.2): AND of two valid BCH codewords is not a
 *  codeword — decode outcomes over seeded random trials. */
TablePrinter ablationEccTable(AblationEccStats *stats = nullptr);

/** Ablation (Section 3.2): AND of two randomized pages cannot be
 *  de-randomized — recovery outcomes over seeded random trials.
 *  @p derand_ok receives how many trials recovered the payload AND. */
TablePrinter ablationRandomizationTable(int *derand_ok = nullptr);

} // namespace fcos::plat

#endif // FCOS_PLATFORMS_REPORTS_H
