/**
 * @file
 * Shared builders for the paper-figure tables that benches print and
 * tests pin as goldens.
 *
 * A bench that assembles its table inline can drift silently: the
 * binary still runs, the numbers change, nobody notices. Building the
 * table in one place lets bench drivers print it and a golden test
 * diff the exact same string against tests/data/golden/, so any drift
 * in configuration constants or model curves fails CI.
 */

#ifndef FCOS_PLATFORMS_REPORTS_H
#define FCOS_PLATFORMS_REPORTS_H

#include <vector>

#include "host/host_model.h"
#include "platforms/runner.h"
#include "platforms/sweep.h"
#include "ssd/config.h"
#include "util/table.h"

namespace fcos::plat {

/** Table 1 (SSD half): every configured parameter vs the paper. */
TablePrinter tab01SsdTable(const ssd::SsdConfig &cfg);

/** Table 1 (host half). */
TablePrinter tab01HostTable(const host::HostConfig &cfg);

/**
 * Figure 12: intra-block MWS latency (tMWS as a multiple of tR) vs
 * simultaneously read wordlines, from the calibrated timing model.
 * (The functional zero-error validation stays in the bench driver —
 * it needs the reliability stack.)
 */
TablePrinter fig12MwsLatencyTable();

/**
 * Figure 7: per-channel execution timelines of OSP, ISP and in-flash
 * processing for the illustrative OR of three 1-MiB vectors, with the
 * busiest resource called out per platform. Runs through @p runner
 * (engine mode by default), so the pinned golden certifies the
 * engine-produced timeline.
 */
TablePrinter fig07TimelineTable(const PlatformRunner &runner);

/** The Figure 7 micro-workload (OR of three 1-MiB vectors). */
wl::Workload figure7Workload();

/**
 * Figure 17: speedup over OSP per sweep point, one section per
 * workload series. Shared by the bench (full paper grids) and the
 * golden test (reduced grids) so the formatting and arithmetic cannot
 * drift between them.
 */
TablePrinter fig17SpeedupTable(const std::vector<SweepSeries> &series);

/** Figure 18: energy-efficiency ratios over OSP per sweep point. */
TablePrinter fig18EnergyTable(const std::vector<SweepSeries> &series);

} // namespace fcos::plat

#endif // FCOS_PLATFORMS_REPORTS_H
