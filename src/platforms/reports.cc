#include "platforms/reports.h"

#include "nand/chip.h"
#include "nand/power_model.h"
#include "nand/timing_model.h"
#include "reliability/error_injector.h"
#include "util/rng.h"
#include "util/units.h"

namespace fcos::plat {

TablePrinter
tab01SsdTable(const ssd::SsdConfig &c)
{
    TablePrinter t("Simulated SSD");
    t.setHeader({"parameter", "paper", "this build"});
    auto row = [&](const char *name, const char *paper,
                   std::string val) {
        t.addRow({name, paper, std::move(val)});
    };
    row("channels", "8", std::to_string(c.channels));
    row("dies/channel", "8", std::to_string(c.diesPerChannel));
    row("planes/die", "2", std::to_string(c.geometry.planesPerDie));
    row("blocks/plane", "2048",
        std::to_string(c.geometry.blocksPerPlane));
    row("WLs/block", "192 (4x48)",
        std::to_string(c.geometry.wordlinesPerBlock()) + " (" +
            std::to_string(c.geometry.subBlocksPerBlock) + "x" +
            std::to_string(c.geometry.wordlinesPerSubBlock) + ")");
    row("page size", "16 KiB", formatBytes(c.geometry.pageBytes));
    row("external I/O", "8 GB/s (PCIe Gen4 x4)",
        TablePrinter::cell(c.io.externalGBps, 1) + " GB/s");
    row("channel I/O rate", "1.2 GB/s",
        TablePrinter::cell(c.io.channelGBps, 1) + " GB/s");
    row("tR (SLC)", "22.5 us", formatTime(c.timings.tReadSlc));
    row("tMWS (max 4 blocks)", "25 us", formatTime(c.timings.tMwsFixed));
    row("tPROG SLC/MLC/TLC", "200/500/700 us",
        formatTime(c.timings.tProgSlc) + " / " +
            formatTime(c.timings.tProgMlc) + " / " +
            formatTime(c.timings.tProgTlc));
    row("tESP", "400 us", formatTime(c.timings.tProgEsp));
    row("tBERS", "3-5 ms", formatTime(c.timings.tErase));
    row("ISP accel energy", "93 pJ / 64 B",
        TablePrinter::cell(c.io.accelPjPer64B, 0) + " pJ / 64 B");
    row("inter-block MWS cap", "4 blocks",
        std::to_string(c.maxInterBlockMws));
    return t;
}

TablePrinter
tab01HostTable(const host::HostConfig &h)
{
    TablePrinter t("Real host system (modelled)");
    t.setHeader({"parameter", "paper", "this build"});
    t.addRow({"CPU", "i7-11700K, 8 cores, 3.6 GHz",
              "throughput model (see host/host_model.h)"});
    t.addRow({"main memory", "64 GB DDR4-3600 x4",
              TablePrinter::cell(h.dramGBps, 1) + " GB/s peak"});
    t.addRow({"bitwise stream rate", "(measured)",
              TablePrinter::cell(h.streamGBps, 1) + " GB/s"});
    t.addRow({"package power (streaming)", "(RAPL)",
              TablePrinter::cell(h.cpuActiveWatts, 0) + " W"});
    return t;
}

TablePrinter
fig12MwsLatencyTable()
{
    nand::TimingModel tm;
    TablePrinter t("tMWS / tR vs wordlines read");
    t.setHeader({"wordlines", "tMWS/tR", "tMWS", "serial reads"});
    for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 40u, 48u}) {
        double factor = nand::TimingModel::intraBlockFactor(n);
        Time t_mws = tm.mwsLatency(n, 1);
        t.addRow({std::to_string(n), TablePrinter::cell(factor, 4),
                  formatTime(t_mws),
                  formatTime(n * tm.timings().tReadSlc)});
    }
    return t;
}

wl::Workload
figure7Workload()
{
    wl::Workload w;
    w.name = "fig7";
    w.paramName = "-";
    wl::OpBatch b;
    b.andOperands = 0;
    b.orOperands = 3;
    b.operandBytes = 1ULL << 20;
    b.resultToHost = true;
    b.hostPostProcess = false;
    w.batches.push_back(b);
    return w;
}

TablePrinter
fig07TimelineTable(const PlatformRunner &runner)
{
    const wl::Workload w = figure7Workload();
    TablePrinter t("Per-channel execution timeline (" +
                   std::string(runnerModeName(runner.mode())) + " path)");
    t.setHeader({"platform", "exec time", "paper", "plane busy",
                 "channel busy", "external busy", "bottleneck"});

    struct Row
    {
        PlatformKind kind;
        const char *paper;
    };
    for (const Row &r : {Row{PlatformKind::Osp, "471 us"},
                         Row{PlatformKind::Isp, "431 us"},
                         Row{PlatformKind::ParaBit, "335 us"}}) {
        RunResult res = runner.run(r.kind, w);
        const char *bottleneck = "sensing";
        if (res.externalBusy >= res.channelBusy &&
            res.externalBusy >= res.planeBusy)
            bottleneck = "external I/O";
        else if (res.channelBusy >= res.planeBusy)
            bottleneck = "internal I/O";
        t.addRow({platformName(r.kind), formatTime(res.makespan),
                  r.paper, formatTime(res.planeBusy),
                  formatTime(res.channelBusy),
                  formatTime(res.externalBusy), bottleneck});
    }
    return t;
}

rel::ChipFarm::Config
fig08FarmConfig()
{
    rel::ChipFarm::Config cfg;
    cfg.chips = 40;
    cfg.blocksPerChip = 40;
    return cfg;
}

namespace {

/** The Figure 8 measurement grid (paper Section 5.1). */
const std::uint32_t kFig08Pecs[] = {0, 1000, 2000, 3000, 6000, 10000};
const double kFig08Months[] = {0.0, 1.0, 2.0, 3.0, 6.0, 12.0};

} // namespace

TablePrinter
fig08RberPanel(const rel::ChipFarm &farm, nand::ProgramMode mode,
               bool randomized)
{
    std::string title = std::string("Avg. RBER [x1e-3], ") +
                        (mode == nand::ProgramMode::Mlc ? "MLC" : "SLC") +
                        "-mode, " + (randomized ? "with" : "without") +
                        " data randomization";
    TablePrinter t(title);
    t.setHeader({"PEC \\ months", "0", "1", "2", "3", "6", "12"});
    for (std::uint32_t pec : kFig08Pecs) {
        std::vector<std::string> row{std::to_string(pec / 1000) + "K"};
        for (double mo : kFig08Months) {
            double rber = farm.averageRber(
                mode, rel::OperatingCondition{pec, mo, randomized});
            row.push_back(TablePrinter::cell(rber * 1e3, 3));
        }
        t.addRow(row);
    }
    return t;
}

std::string
fig08RberReport(const rel::ChipFarm &farm)
{
    std::string out;
    for (nand::ProgramMode mode :
         {nand::ProgramMode::SlcRegular, nand::ProgramMode::Mlc}) {
        for (bool randomized : {true, false}) {
            if (!out.empty())
                out += "\n";
            out += fig08RberPanel(farm, mode, randomized).toString();
        }
    }
    return out;
}

TablePrinter
fig11EspTable(const rel::ChipFarm &farm,
              const rel::OperatingCondition &cond)
{
    TablePrinter t("RBER per 1-KiB data vs ESP latency");
    t.setHeader({"tESP/tPROG", "tESP", "worst", "median", "best"});
    for (double f :
         {1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0}) {
        auto p = farm.espRber(f, cond);
        char lat[32];
        std::snprintf(lat, sizeof(lat), "%.0f us", 200.0 * f);
        t.addRow({TablePrinter::cell(f, 1), lat,
                  TablePrinter::cellSci(p.worst),
                  TablePrinter::cellSci(p.median),
                  TablePrinter::cellSci(p.best)});
    }
    return t;
}

TablePrinter
fig11CampaignTable(const rel::ChipFarm &farm,
                   const rel::OperatingCondition &cond,
                   std::uint64_t total_bits)
{
    TablePrinter t("Observed errors by tESP");
    t.setHeader({"tESP/tPROG", "observed errors", "expected errors"});
    for (double f : {1.5, 1.7, 1.9, 2.0}) {
        nand::PageMeta meta;
        meta.mode = nand::ProgramMode::SlcEsp;
        meta.espFactor = f;
        auto camp = farm.runCampaign(meta, cond, total_bits);
        t.addRow({TablePrinter::cell(f, 1),
                  TablePrinter::cellInt(
                      static_cast<long long>(camp.errors)),
                  TablePrinter::cellSci(camp.expectedErrors)});
    }
    return t;
}

namespace {

/** OR of n blocks' wordline 0 via one inter-block MWS, checked
 *  against the reference fold at a zero-error operating point. */
bool
fig13Validate(std::uint32_t n, Rng &rng)
{
    rel::VthModel model;
    rel::OperatingCondition worst{10000, 12.0, false};
    rel::VthErrorInjector inj(model, worst);
    nand::Geometry geom = nand::Geometry::tiny();
    geom.blocksPerPlane = 32;
    nand::NandChip chip(geom, nand::Timings{}, &inj,
                        nand::PageStoreKind::Sparse);

    BitVector expected(geom.pageBits(), false);
    nand::MwsCommand cmd;
    cmd.plane = 0;
    for (std::uint32_t b = 0; b < n; ++b) {
        BitVector v(geom.pageBits());
        v.randomize(rng, 0.2);
        chip.programPageEsp({0, b, 0, 0}, v, nand::EspParams{2.0});
        expected |= v;
        cmd.selections.push_back(nand::WlSelection{b, 0, 1});
    }
    chip.executeMws(cmd);
    return chip.dataOut(0) == expected;
}

} // namespace

TablePrinter
fig13InterMwsTable()
{
    Rng rng = Rng::seeded(13);
    nand::TimingModel tm;
    TablePrinter t("tMWS / tR vs activated blocks");
    t.setHeader({"blocks", "tMWS/tR", "tMWS", "serial reads",
                 "zero errors"});
    for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
        double factor = nand::TimingModel::interBlockFactor(n);
        t.addRow({std::to_string(n), TablePrinter::cell(factor, 4),
                  formatTime(tm.mwsLatency(1, n)),
                  formatTime(n * tm.timings().tReadSlc),
                  fig13Validate(n, rng) ? "yes" : "NO"});
    }
    return t;
}

TablePrinter
fig14PowerTable()
{
    TablePrinter t("Power normalized to a regular page read");
    t.setHeader({"blocks", "MWS power", "vs read", "vs program",
                 "vs erase"});
    for (std::uint32_t n : {1u, 2u, 3u, 4u, 5u}) {
        double p = nand::PowerModel::interBlockMwsPower(n);
        t.addRow({std::to_string(n), TablePrinter::cell(p, 3),
                  TablePrinter::cell(p / nand::PowerModel::kReadPower,
                                     2) +
                      "x",
                  p < nand::PowerModel::kProgramPower ? "below" : "above",
                  p < nand::PowerModel::kErasePower ? "below" : "above"});
    }
    return t;
}

TablePrinter
fig17SpeedupTable(const std::vector<SweepSeries> &series)
{
    TablePrinter t("Speedup over OSP per sweep point");
    t.setHeader({"series", "param", "OSP time", "ISP x", "PB x", "FC x"});
    for (const SweepSeries &s : series) {
        for (const SweepPoint &p : s.points) {
            t.addRow({s.name,
                      p.workload.paramName + "=" +
                          std::to_string(p.workload.paramValue),
                      formatTime(p.osp.makespan),
                      TablePrinter::cell(p.speedup(PlatformKind::Isp), 2),
                      TablePrinter::cell(
                          p.speedup(PlatformKind::ParaBit), 2),
                      TablePrinter::cell(
                          p.speedup(PlatformKind::FlashCosmos), 2)});
        }
    }
    return t;
}

TablePrinter
fig18EnergyTable(const std::vector<SweepSeries> &series)
{
    TablePrinter t("Energy-efficiency ratio over OSP per sweep point");
    t.setHeader(
        {"series", "param", "OSP energy", "ISP x", "PB x", "FC x"});
    for (const SweepSeries &s : series) {
        for (const SweepPoint &p : s.points) {
            t.addRow(
                {s.name,
                 p.workload.paramName + "=" +
                     std::to_string(p.workload.paramValue),
                 formatEnergy(p.osp.energyJ),
                 TablePrinter::cell(p.energyRatio(PlatformKind::Isp), 2),
                 TablePrinter::cell(p.energyRatio(PlatformKind::ParaBit),
                                    2),
                 TablePrinter::cell(
                     p.energyRatio(PlatformKind::FlashCosmos), 2)});
        }
    }
    return t;
}

} // namespace fcos::plat
