#include "platforms/reports.h"

#include "core/drive.h"
#include "nand/chip.h"
#include "nand/power_model.h"
#include "nand/timing_model.h"
#include "reliability/bch.h"
#include "reliability/error_injector.h"
#include "reliability/randomizer.h"
#include "reliability/vth_model.h"
#include "util/rng.h"
#include "util/units.h"

namespace fcos::plat {

TablePrinter
tab01SsdTable(const ssd::SsdConfig &c)
{
    TablePrinter t("Simulated SSD");
    t.setHeader({"parameter", "paper", "this build"});
    auto row = [&](const char *name, const char *paper,
                   std::string val) {
        t.addRow({name, paper, std::move(val)});
    };
    row("channels", "8", std::to_string(c.channels));
    row("dies/channel", "8", std::to_string(c.diesPerChannel));
    row("planes/die", "2", std::to_string(c.geometry.planesPerDie));
    row("blocks/plane", "2048",
        std::to_string(c.geometry.blocksPerPlane));
    row("WLs/block", "192 (4x48)",
        std::to_string(c.geometry.wordlinesPerBlock()) + " (" +
            std::to_string(c.geometry.subBlocksPerBlock) + "x" +
            std::to_string(c.geometry.wordlinesPerSubBlock) + ")");
    row("page size", "16 KiB", formatBytes(c.geometry.pageBytes));
    row("external I/O", "8 GB/s (PCIe Gen4 x4)",
        TablePrinter::cell(c.io.externalGBps, 1) + " GB/s");
    row("channel I/O rate", "1.2 GB/s",
        TablePrinter::cell(c.io.channelGBps, 1) + " GB/s");
    row("tR (SLC)", "22.5 us", formatTime(c.timings.tReadSlc));
    row("tMWS (max 4 blocks)", "25 us", formatTime(c.timings.tMwsFixed));
    row("tPROG SLC/MLC/TLC", "200/500/700 us",
        formatTime(c.timings.tProgSlc) + " / " +
            formatTime(c.timings.tProgMlc) + " / " +
            formatTime(c.timings.tProgTlc));
    row("tESP", "400 us", formatTime(c.timings.tProgEsp));
    row("tBERS", "3-5 ms", formatTime(c.timings.tErase));
    row("ISP accel energy", "93 pJ / 64 B",
        TablePrinter::cell(c.io.accelPjPer64B, 0) + " pJ / 64 B");
    row("inter-block MWS cap", "4 blocks",
        std::to_string(c.maxInterBlockMws));
    return t;
}

TablePrinter
tab01HostTable(const host::HostConfig &h)
{
    TablePrinter t("Real host system (modelled)");
    t.setHeader({"parameter", "paper", "this build"});
    t.addRow({"CPU", "i7-11700K, 8 cores, 3.6 GHz",
              "throughput model (see host/host_model.h)"});
    t.addRow({"main memory", "64 GB DDR4-3600 x4",
              TablePrinter::cell(h.dramGBps, 1) + " GB/s peak"});
    t.addRow({"bitwise stream rate", "(measured)",
              TablePrinter::cell(h.streamGBps, 1) + " GB/s"});
    t.addRow({"package power (streaming)", "(RAPL)",
              TablePrinter::cell(h.cpuActiveWatts, 0) + " W"});
    return t;
}

TablePrinter
fig12MwsLatencyTable()
{
    nand::TimingModel tm;
    TablePrinter t("tMWS / tR vs wordlines read");
    t.setHeader({"wordlines", "tMWS/tR", "tMWS", "serial reads"});
    for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 40u, 48u}) {
        double factor = nand::TimingModel::intraBlockFactor(n);
        Time t_mws = tm.mwsLatency(n, 1);
        t.addRow({std::to_string(n), TablePrinter::cell(factor, 4),
                  formatTime(t_mws),
                  formatTime(n * tm.timings().tReadSlc)});
    }
    return t;
}

wl::Workload
figure7Workload()
{
    wl::Workload w;
    w.name = "fig7";
    w.paramName = "-";
    wl::OpBatch b;
    b.andOperands = 0;
    b.orOperands = 3;
    b.operandBytes = 1ULL << 20;
    b.resultToHost = true;
    b.hostPostProcess = false;
    w.batches.push_back(b);
    return w;
}

TablePrinter
fig07TimelineTable(const PlatformRunner &runner)
{
    const wl::Workload w = figure7Workload();
    TablePrinter t("Per-channel execution timeline (" +
                   std::string(runnerModeName(runner.mode())) + " path)");
    t.setHeader({"platform", "exec time", "paper", "plane busy",
                 "channel busy", "external busy", "bottleneck"});

    struct Row
    {
        PlatformKind kind;
        const char *paper;
    };
    for (const Row &r : {Row{PlatformKind::Osp, "471 us"},
                         Row{PlatformKind::Isp, "431 us"},
                         Row{PlatformKind::ParaBit, "335 us"}}) {
        RunResult res = runner.run(r.kind, w);
        const char *bottleneck = "sensing";
        if (res.externalBusy >= res.channelBusy &&
            res.externalBusy >= res.planeBusy)
            bottleneck = "external I/O";
        else if (res.channelBusy >= res.planeBusy)
            bottleneck = "internal I/O";
        t.addRow({platformName(r.kind), formatTime(res.makespan),
                  r.paper, formatTime(res.planeBusy),
                  formatTime(res.channelBusy),
                  formatTime(res.externalBusy), bottleneck});
    }
    return t;
}

rel::ChipFarm::Config
fig08FarmConfig()
{
    rel::ChipFarm::Config cfg;
    cfg.chips = 40;
    cfg.blocksPerChip = 40;
    return cfg;
}

namespace {

/** The Figure 8 measurement grid (paper Section 5.1). */
const std::uint32_t kFig08Pecs[] = {0, 1000, 2000, 3000, 6000, 10000};
const double kFig08Months[] = {0.0, 1.0, 2.0, 3.0, 6.0, 12.0};

} // namespace

TablePrinter
fig08RberPanel(const rel::ChipFarm &farm, nand::ProgramMode mode,
               bool randomized)
{
    std::string title = std::string("Avg. RBER [x1e-3], ") +
                        (mode == nand::ProgramMode::Mlc ? "MLC" : "SLC") +
                        "-mode, " + (randomized ? "with" : "without") +
                        " data randomization";
    TablePrinter t(title);
    t.setHeader({"PEC \\ months", "0", "1", "2", "3", "6", "12"});
    for (std::uint32_t pec : kFig08Pecs) {
        std::vector<std::string> row{std::to_string(pec / 1000) + "K"};
        for (double mo : kFig08Months) {
            double rber = farm.averageRber(
                mode, rel::OperatingCondition{pec, mo, randomized});
            row.push_back(TablePrinter::cell(rber * 1e3, 3));
        }
        t.addRow(row);
    }
    return t;
}

std::string
fig08RberReport(const rel::ChipFarm &farm)
{
    std::string out;
    for (nand::ProgramMode mode :
         {nand::ProgramMode::SlcRegular, nand::ProgramMode::Mlc}) {
        for (bool randomized : {true, false}) {
            if (!out.empty())
                out += "\n";
            out += fig08RberPanel(farm, mode, randomized).toString();
        }
    }
    return out;
}

TablePrinter
fig11EspTable(const rel::ChipFarm &farm,
              const rel::OperatingCondition &cond)
{
    TablePrinter t("RBER per 1-KiB data vs ESP latency");
    t.setHeader({"tESP/tPROG", "tESP", "worst", "median", "best"});
    for (double f :
         {1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0}) {
        auto p = farm.espRber(f, cond);
        char lat[32];
        std::snprintf(lat, sizeof(lat), "%.0f us", 200.0 * f);
        t.addRow({TablePrinter::cell(f, 1), lat,
                  TablePrinter::cellSci(p.worst),
                  TablePrinter::cellSci(p.median),
                  TablePrinter::cellSci(p.best)});
    }
    return t;
}

TablePrinter
fig11CampaignTable(const rel::ChipFarm &farm,
                   const rel::OperatingCondition &cond,
                   std::uint64_t total_bits)
{
    TablePrinter t("Observed errors by tESP");
    t.setHeader({"tESP/tPROG", "observed errors", "expected errors"});
    for (double f : {1.5, 1.7, 1.9, 2.0}) {
        nand::PageMeta meta;
        meta.mode = nand::ProgramMode::SlcEsp;
        meta.espFactor = f;
        auto camp = farm.runCampaign(meta, cond, total_bits);
        t.addRow({TablePrinter::cell(f, 1),
                  TablePrinter::cellInt(
                      static_cast<long long>(camp.errors)),
                  TablePrinter::cellSci(camp.expectedErrors)});
    }
    return t;
}

namespace {

/** OR of n blocks' wordline 0 via one inter-block MWS, checked
 *  against the reference fold at a zero-error operating point. */
bool
fig13Validate(std::uint32_t n, Rng &rng)
{
    rel::VthModel model;
    rel::OperatingCondition worst{10000, 12.0, false};
    rel::VthErrorInjector inj(model, worst);
    nand::Geometry geom = nand::Geometry::tiny();
    geom.blocksPerPlane = 32;
    nand::NandChip chip(geom, nand::Timings{}, &inj,
                        nand::PageStoreKind::Sparse);

    BitVector expected(geom.pageBits(), false);
    nand::MwsCommand cmd;
    cmd.plane = 0;
    for (std::uint32_t b = 0; b < n; ++b) {
        BitVector v(geom.pageBits());
        v.randomize(rng, 0.2);
        chip.programPageEsp({0, b, 0, 0}, v, nand::EspParams{2.0});
        expected |= v;
        cmd.selections.push_back(nand::WlSelection{b, 0, 1});
    }
    chip.executeMws(cmd);
    return chip.dataOut(0) == expected;
}

} // namespace

TablePrinter
fig13InterMwsTable()
{
    Rng rng = Rng::seeded(13);
    nand::TimingModel tm;
    TablePrinter t("tMWS / tR vs activated blocks");
    t.setHeader({"blocks", "tMWS/tR", "tMWS", "serial reads",
                 "zero errors"});
    for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
        double factor = nand::TimingModel::interBlockFactor(n);
        t.addRow({std::to_string(n), TablePrinter::cell(factor, 4),
                  formatTime(tm.mwsLatency(1, n)),
                  formatTime(n * tm.timings().tReadSlc),
                  fig13Validate(n, rng) ? "yes" : "NO"});
    }
    return t;
}

TablePrinter
fig14PowerTable()
{
    TablePrinter t("Power normalized to a regular page read");
    t.setHeader({"blocks", "MWS power", "vs read", "vs program",
                 "vs erase"});
    for (std::uint32_t n : {1u, 2u, 3u, 4u, 5u}) {
        double p = nand::PowerModel::interBlockMwsPower(n);
        t.addRow({std::to_string(n), TablePrinter::cell(p, 3),
                  TablePrinter::cell(p / nand::PowerModel::kReadPower,
                                     2) +
                      "x",
                  p < nand::PowerModel::kProgramPower ? "below" : "above",
                  p < nand::PowerModel::kErasePower ? "below" : "above"});
    }
    return t;
}

TablePrinter
fig17SpeedupTable(const std::vector<SweepSeries> &series)
{
    TablePrinter t("Speedup over OSP per sweep point");
    t.setHeader({"series", "param", "OSP time", "ISP x", "PB x", "FC x"});
    for (const SweepSeries &s : series) {
        for (const SweepPoint &p : s.points) {
            t.addRow({s.name,
                      p.workload.paramName + "=" +
                          std::to_string(p.workload.paramValue),
                      formatTime(p.osp.makespan),
                      TablePrinter::cell(p.speedup(PlatformKind::Isp), 2),
                      TablePrinter::cell(
                          p.speedup(PlatformKind::ParaBit), 2),
                      TablePrinter::cell(
                          p.speedup(PlatformKind::FlashCosmos), 2)});
        }
    }
    return t;
}

TablePrinter
fig18EnergyTable(const std::vector<SweepSeries> &series)
{
    TablePrinter t("Energy-efficiency ratio over OSP per sweep point");
    t.setHeader(
        {"series", "param", "OSP energy", "ISP x", "PB x", "FC x"});
    for (const SweepSeries &s : series) {
        for (const SweepPoint &p : s.points) {
            t.addRow(
                {s.name,
                 p.workload.paramName + "=" +
                     std::to_string(p.workload.paramValue),
                 formatEnergy(p.osp.energyJ),
                 TablePrinter::cell(p.energyRatio(PlatformKind::Isp), 2),
                 TablePrinter::cell(p.energyRatio(PlatformKind::ParaBit),
                                    2),
                 TablePrinter::cell(
                     p.energyRatio(PlatformKind::FlashCosmos), 2)});
        }
    }
    return t;
}

// ---------------------------------------------------------------------
// Ablation tables.

TablePrinter
ablationBlockLimitTable()
{
    using nand::PowerModel;
    const std::uint32_t operands = 32;
    nand::TimingModel tm;

    TablePrinter t("Cap sweep");
    t.setHeader({"cap", "MWS ops", "sense time", "peak power",
                 "within erase budget", "sense energy"});
    for (std::uint32_t cap : {1u, 2u, 4u, 8u, 16u, 32u}) {
        std::uint32_t ops = (operands + cap - 1) / cap;
        Time per_op = tm.mwsLatency(1, cap);
        Time total = ops * per_op;
        double power = PowerModel::interBlockMwsPower(cap);
        double energy = ops * PowerModel::energy(power, per_op);
        t.addRow({std::to_string(cap), std::to_string(ops),
                  formatTime(total), TablePrinter::cell(power, 2),
                  power <= PowerModel::kErasePower ? "yes" : "NO",
                  formatEnergy(energy)});
    }
    return t;
}

TablePrinter
ablationDeMorganTable()
{
    nand::TimingModel tm;
    TablePrinter t("Sensing cost per result page for OR of N operands");
    t.setHeader({"N", "(a) serial reads", "(b) inter-block (cap 4)",
                 "(c) inverse intra-block"});
    for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 48u, 96u}) {
        Time serial = n * tm.timings().tReadSlc;
        std::uint32_t inter_ops = (n + 3) / 4;
        Time inter = inter_ops * tm.mwsLatency(1, 4);
        std::uint32_t intra_ops = (n + 47) / 48;
        Time intra = intra_ops * tm.mwsLatency(std::min(n, 48u), 1);
        t.addRow({std::to_string(n),
                  formatTime(serial) + " (" + std::to_string(n) +
                      " ops)",
                  formatTime(inter) + " (" + std::to_string(inter_ops) +
                      " ops)",
                  formatTime(intra) + " (" + std::to_string(intra_ops) +
                      " ops)"});
    }
    return t;
}

TablePrinter
ablationMlcLsbTable()
{
    rel::VthModel model;
    rel::OperatingCondition worst{10000, 12.0, false};

    TablePrinter t("Operand-storage comparison");
    t.setHeader({"storage", "RBER", "errors per 16-KiB page",
                 "capacity vs MLC", "usable for error-intolerant apps"});
    auto row = [&](const char *name, double rber, const char *capacity) {
        double per_page = rber * 16 * 1024 * 8;
        t.addRow({name, TablePrinter::cellSci(rber),
                  TablePrinter::cell(per_page, per_page < 0.01 ? 6 : 1),
                  capacity, rber < 1e-11 ? "yes" : "no"});
    };
    row("ESP (tESP = 2x)", model.rberEsp(2.0, worst), "0.5x");
    row("regular SLC", model.rberSlc(worst), "0.5x");
    row("MLC, LSB pages only", model.rberMlcLsb(worst), "0.5x");
    row("MLC, both pages", model.rberMlc(worst), "1.0x");
    return t;
}

AblationPlacementCost
ablationPlacementQuery(bool colocated, int operands)
{
    using core::Expr;
    using core::FlashCosmosDrive;
    // Scattered placement burns one sub-block per operand; give the
    // drive enough blocks for the 16-operand case.
    FlashCosmosDrive::Config cfg;
    cfg.geometry.blocksPerPlane = 32;
    FlashCosmosDrive drive(cfg);
    Rng rng = Rng::seeded(77);
    std::vector<BitVector> data;
    std::vector<Expr> leaves;
    for (int i = 0; i < operands; ++i) {
        FlashCosmosDrive::WriteOptions opts;
        if (colocated)
            opts.group = 1; // same NAND strings
        // else: default auto group — every vector in its own sub-block
        BitVector v(1024);
        v.randomize(rng);
        leaves.push_back(Expr::leaf(drive.fcWrite(v, opts)));
        data.push_back(std::move(v));
    }
    FlashCosmosDrive::ReadStats stats;
    BitVector result = drive.fcRead(Expr::And(leaves), &stats);
    BitVector expected = data[0];
    for (int i = 1; i < operands; ++i)
        expected &= data[i];
    return AblationPlacementCost{stats.mwsCommands / stats.resultPages,
                                 stats.nandTime, stats.nandEnergyJ,
                                 result == expected};
}

TablePrinter
ablationPlacementTable()
{
    TablePrinter t("Placement comparison");
    t.setHeader({"operands", "layout", "MWS/page", "NAND time",
                 "NAND energy", "correct"});
    for (int n : {4, 8, 16}) {
        for (bool coloc : {true, false}) {
            AblationPlacementCost c = ablationPlacementQuery(coloc, n);
            t.addRow({std::to_string(n),
                      coloc ? "co-located group" : "scattered",
                      std::to_string(c.commandsPerPage),
                      formatTime(c.nandTime), formatEnergy(c.energyJ),
                      c.correct ? "yes" : "NO"});
        }
    }
    return t;
}

TablePrinter
ablationXorEncryptionTable(AblationXorStats *stats)
{
    using core::Expr;
    using core::FlashCosmosDrive;
    // 16-Kib vectors need more room than the tiny test geometry.
    FlashCosmosDrive::Config cfg;
    cfg.geometry.pageBytes = 512;
    cfg.geometry.blocksPerPlane = 64;
    FlashCosmosDrive drive(cfg);
    Rng rng = Rng::seeded(21);

    // "Encrypt" an image by XOR-ing with a key stream (the optical
    // image-encryption scheme ParaBit evaluates).
    const std::size_t bits = 16384;
    BitVector image(bits), key(bits);
    image.randomize(rng);
    key.randomize(rng);
    core::VectorId vi = drive.fcWrite(image);
    core::VectorId vk = drive.fcWrite(key);

    FlashCosmosDrive::ReadStats enc_stats;
    BitVector cipher = drive.fcRead(
        Expr::Xor(Expr::leaf(vi), Expr::leaf(vk)), &enc_stats);

    // Decrypt: XOR with the key again.
    core::VectorId vc = drive.fcWrite(cipher);
    BitVector plain =
        drive.fcRead(Expr::Xor(Expr::leaf(vc), Expr::leaf(vk)));

    if (stats) {
        stats->encryptChanges = (cipher != image);
        stats->roundTrips = (plain == image);
        stats->sensesPerPage =
            enc_stats.senses / enc_stats.resultPages;
    }

    TablePrinter t("XOR encryption in flash");
    t.setHeader({"metric", "value"});
    t.addRow({"cipher != plaintext", cipher != image ? "yes" : "NO"});
    t.addRow(
        {"decrypt(encrypt(x)) == x", plain == image ? "yes" : "NO"});
    t.addRow({"senses per result page",
              std::to_string(enc_stats.senses / enc_stats.resultPages)});
    t.addRow({"serial reads ParaBit would need per page", "2"});
    return t;
}

TablePrinter
ablationEccTable(AblationEccStats *stats)
{
    Rng rng = Rng::seeded(99);
    rel::BchCode code(10, 4);
    AblationEccStats s;
    s.trials = 50;
    for (int i = 0; i < s.trials; ++i) {
        BitVector d1(code.k()), d2(code.k());
        d1.randomize(rng);
        d2.randomize(rng);
        BitVector cw = code.encode(d1) & code.encode(d2);
        rel::BchDecodeResult r = code.decode(cw);
        if (!r.ok)
            ++s.rejected;
        else if (code.extractData(cw) != (d1 & d2))
            ++s.miscorrected;
        else
            ++s.acceptedCorrect;
    }
    if (stats)
        *stats = s;

    TablePrinter t("AND of two valid BCH(1023, k, t=4) codewords");
    t.setHeader({"outcome", "count"});
    t.addRow({"decode failure", std::to_string(s.rejected)});
    t.addRow({"decodes to WRONG data", std::to_string(s.miscorrected)});
    t.addRow(
        {"decodes to AND of payloads", std::to_string(s.acceptedCorrect)});
    return t;
}

TablePrinter
ablationRandomizationTable(int *derand_ok_out)
{
    Rng rng = Rng::seeded(98);
    rel::Randomizer randomizer;
    const int trials = 50;
    int derand_ok = 0;
    std::size_t total_damage = 0;
    for (int i = 0; i < trials; ++i) {
        BitVector a(4096), b(4096);
        a.randomize(rng);
        b.randomize(rng);
        BitVector sa = a, sb = b;
        randomizer.apply(sa, 2 * static_cast<std::uint64_t>(i));
        randomizer.apply(sb, 2 * static_cast<std::uint64_t>(i) + 1);
        BitVector sensed = sa & sb; // what in-flash AND would return
        randomizer.apply(sensed, 2 * static_cast<std::uint64_t>(i));
        if (sensed == (a & b))
            ++derand_ok;
        total_damage += sensed.hammingDistance(a & b);
    }
    if (derand_ok_out)
        *derand_ok_out = derand_ok;

    TablePrinter t("AND of two randomized 4-Kib pages, de-randomized");
    t.setHeader({"outcome", "value"});
    t.addRow({"trials recovering AND of payloads",
              std::to_string(derand_ok) + " / " +
                  std::to_string(trials)});
    t.addRow({"average corrupted bits per page",
              std::to_string(total_damage / trials) + " / 4096"});
    return t;
}

} // namespace fcos::plat
