#include "platforms/reports.h"

#include "nand/timing_model.h"
#include "util/units.h"

namespace fcos::plat {

TablePrinter
tab01SsdTable(const ssd::SsdConfig &c)
{
    TablePrinter t("Simulated SSD");
    t.setHeader({"parameter", "paper", "this build"});
    auto row = [&](const char *name, const char *paper,
                   std::string val) {
        t.addRow({name, paper, std::move(val)});
    };
    row("channels", "8", std::to_string(c.channels));
    row("dies/channel", "8", std::to_string(c.diesPerChannel));
    row("planes/die", "2", std::to_string(c.geometry.planesPerDie));
    row("blocks/plane", "2048",
        std::to_string(c.geometry.blocksPerPlane));
    row("WLs/block", "192 (4x48)",
        std::to_string(c.geometry.wordlinesPerBlock()) + " (" +
            std::to_string(c.geometry.subBlocksPerBlock) + "x" +
            std::to_string(c.geometry.wordlinesPerSubBlock) + ")");
    row("page size", "16 KiB", formatBytes(c.geometry.pageBytes));
    row("external I/O", "8 GB/s (PCIe Gen4 x4)",
        TablePrinter::cell(c.externalGBps, 1) + " GB/s");
    row("channel I/O rate", "1.2 GB/s",
        TablePrinter::cell(c.channelGBps, 1) + " GB/s");
    row("tR (SLC)", "22.5 us", formatTime(c.timings.tReadSlc));
    row("tMWS (max 4 blocks)", "25 us", formatTime(c.timings.tMwsFixed));
    row("tPROG SLC/MLC/TLC", "200/500/700 us",
        formatTime(c.timings.tProgSlc) + " / " +
            formatTime(c.timings.tProgMlc) + " / " +
            formatTime(c.timings.tProgTlc));
    row("tESP", "400 us", formatTime(c.timings.tProgEsp));
    row("tBERS", "3-5 ms", formatTime(c.timings.tErase));
    row("ISP accel energy", "93 pJ / 64 B",
        TablePrinter::cell(c.accelPjPer64B, 0) + " pJ / 64 B");
    row("inter-block MWS cap", "4 blocks",
        std::to_string(c.maxInterBlockMws));
    return t;
}

TablePrinter
tab01HostTable(const host::HostConfig &h)
{
    TablePrinter t("Real host system (modelled)");
    t.setHeader({"parameter", "paper", "this build"});
    t.addRow({"CPU", "i7-11700K, 8 cores, 3.6 GHz",
              "throughput model (see host/host_model.h)"});
    t.addRow({"main memory", "64 GB DDR4-3600 x4",
              TablePrinter::cell(h.dramGBps, 1) + " GB/s peak"});
    t.addRow({"bitwise stream rate", "(measured)",
              TablePrinter::cell(h.streamGBps, 1) + " GB/s"});
    t.addRow({"package power (streaming)", "(RAPL)",
              TablePrinter::cell(h.cpuActiveWatts, 0) + " W"});
    return t;
}

TablePrinter
fig12MwsLatencyTable()
{
    nand::TimingModel tm;
    TablePrinter t("tMWS / tR vs wordlines read");
    t.setHeader({"wordlines", "tMWS/tR", "tMWS", "serial reads"});
    for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 40u, 48u}) {
        double factor = nand::TimingModel::intraBlockFactor(n);
        Time t_mws = tm.mwsLatency(n, 1);
        t.addRow({std::to_string(n), TablePrinter::cell(factor, 4),
                  formatTime(t_mws),
                  formatTime(n * tm.timings().tReadSlc)});
    }
    return t;
}

} // namespace fcos::plat
