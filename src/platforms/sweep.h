/**
 * @file
 * Evaluation sweeps (paper Section 8): run the three workloads across
 * the paper's parameter ranges on all four platforms and aggregate
 * speedup / energy-efficiency statistics. Shared by the Figure 17 and
 * Figure 18 benches and usable as a library API for new studies.
 */

#ifndef FCOS_PLATFORMS_SWEEP_H
#define FCOS_PLATFORMS_SWEEP_H

#include <cstdint>
#include <string>
#include <vector>

#include "platforms/runner.h"
#include "workloads/workload.h"

namespace fcos::plat {

/** Results of all four platforms on one workload point. */
struct SweepPoint
{
    wl::Workload workload;
    RunResult osp, isp, pb, fc;

    double speedup(PlatformKind k) const;
    double energyRatio(PlatformKind k) const;
};

/** One workload's sweep (e.g. BMI over m). */
struct SweepSeries
{
    std::string name;
    std::vector<SweepPoint> points;
};

class EvaluationSweep
{
  public:
    explicit EvaluationSweep(
        const PlatformRunner &runner = PlatformRunner{})
        : runner_(runner)
    {}

    /** Run all four platforms on @p workload. */
    SweepPoint runPoint(const wl::Workload &workload) const;

    /** The BMI sweep; the default months are the paper's
     *  m in {1,3,6,12,24,36}. Tests pin reduced grids through the
     *  same series builders the benches print. */
    SweepSeries bmiSeries(const std::vector<std::uint32_t> &months = {
                              1, 3, 6, 12, 24, 36}) const;
    /** The IMS sweep; default I in {10,50,100,200} thousand. */
    SweepSeries imsSeries(const std::vector<std::uint64_t> &images = {
                              10000, 50000, 100000, 200000}) const;
    /** The KCS sweep; default k in {8,16,24,32,48,64}. */
    SweepSeries kcsSeries(const std::vector<std::uint32_t> &ks = {
                              8, 16, 24, 32, 48, 64}) const;

    /** Geometric-mean speedup of @p kind over OSP across series. */
    static double meanSpeedup(const std::vector<SweepSeries> &series,
                              PlatformKind kind);
    /** Geometric-mean energy-efficiency ratio over OSP. */
    static double meanEnergyRatio(const std::vector<SweepSeries> &series,
                                  PlatformKind kind);

  private:
    PlatformRunner runner_;
};

} // namespace fcos::plat

#endif // FCOS_PLATFORMS_SWEEP_H
