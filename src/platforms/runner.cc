#include "platforms/runner.h"

#include <algorithm>
#include <cmath>

#include "nand/power_model.h"
#include "ssd/ssd_sim.h"
#include "util/log.h"

namespace fcos::plat {

const char *
platformName(PlatformKind k)
{
    switch (k) {
      case PlatformKind::Osp:
        return "OSP";
      case PlatformKind::Isp:
        return "ISP";
      case PlatformKind::ParaBit:
        return "PB";
      case PlatformKind::FlashCosmos:
        return "FC";
    }
    return "?";
}

namespace {

/** Page-chunking of one plane's row range. */
struct ChunkShape
{
    std::uint64_t rows = 0;   ///< result rows per plane
    std::uint64_t granule = 1; ///< rows per chunk
    std::uint64_t chunks = 0;

    std::uint64_t rowsOf(std::uint64_t chunk) const
    {
        std::uint64_t begin = chunk * granule;
        return std::min(granule, rows - begin);
    }
};

ChunkShape
shapeFor(std::uint64_t operand_bytes, const ssd::SsdConfig &cfg)
{
    std::uint64_t stripe =
        static_cast<std::uint64_t>(cfg.geometry.pageBytes) *
        cfg.totalPlanes();
    ChunkShape s;
    s.rows = std::max<std::uint64_t>(
        1, (operand_bytes + stripe - 1) / stripe);
    // <= 16 pages per chunk keeps the ISP tile inside the 256-KiB SRAM
    // and bounds event counts; <= 32 chunks keeps pipelines smooth.
    s.granule = std::clamp<std::uint64_t>((s.rows + 31) / 32, 1, 16);
    s.chunks = (s.rows + s.granule - 1) / s.granule;
    return s;
}

double
pageReadEnergy(const ssd::SsdConfig &cfg)
{
    return nand::PowerModel::energy(nand::PowerModel::kReadPower,
                                    cfg.timings.tReadSlc);
}

} // namespace

std::uint64_t
PlatformRunner::fcSensesPerRow(std::uint64_t and_operands,
                               std::uint64_t or_operands,
                               std::uint32_t max_wordlines,
                               std::uint32_t max_strings)
{
    fcos_assert(max_wordlines >= 1 && max_strings >= 1, "bad MWS limits");
    if (and_operands == 0 && or_operands == 0)
        return 0;
    if (and_operands == 0) {
        // Pure OR over inverse-stored operands: one inverse intra-block
        // MWS per string's worth, OR-merged (Section 6.1).
        return (or_operands + max_wordlines - 1) / max_wordlines;
    }
    std::uint64_t and_cmds =
        (and_operands + max_wordlines - 1) / max_wordlines;
    if (or_operands == 0)
        return and_cmds;
    if (and_cmds == 1 && or_operands <= max_strings - 1) {
        // The OR operands ride along as extra strings of the single
        // AND command: (AND-group) OR o1 OR ... (the KCS fusion).
        return 1;
    }
    // Otherwise the OR operands are folded afterwards with OR-merge
    // commands, up to (max_strings) plain strings each.
    return and_cmds + (or_operands + max_strings - 1) / max_strings;
}

RunResult
PlatformRunner::run(PlatformKind kind, const wl::Workload &workload) const
{
    // Per-channel symmetric simulation (see file comment).
    ssd::SsdConfig chan_cfg = cfg_;
    chan_cfg.channels = 1;
    chan_cfg.externalGBps = cfg_.externalGBps / cfg_.channels;
    host::HostConfig host_cfg = host_cfg_;
    host_cfg.streamGBps = host_cfg_.streamGBps / cfg_.channels;

    ssd::SsdSim sim(chan_cfg);
    host::HostModel host(sim.queue(), sim.energy(), host_cfg);

    const std::uint64_t page_bytes = cfg_.geometry.pageBytes;
    const std::uint32_t planes = chan_cfg.totalPlanes();
    const Time t_read = cfg_.timings.tReadSlc;
    const Time t_mws = cfg_.timings.tMwsFixed;
    const double e_read = pageReadEnergy(cfg_);

    std::uint64_t sense_ops = 0;

    auto finish = [&sim]() { sim.noteCompletion(sim.queue().now()); };

    for (const wl::OpBatch &batch : workload.batches) {
        ChunkShape shape = shapeFor(batch.operandBytes, cfg_);
        std::uint64_t operands = batch.totalOperands();

        switch (kind) {
          case PlatformKind::Osp: {
            // Operand-major streaming: sense -> DMA -> external -> host
            // fold. The host result never re-crosses the link.
            for (std::uint64_t op = 0; op < operands; ++op) {
                for (std::uint64_t c = 0; c < shape.chunks; ++c) {
                    std::uint64_t rows = shape.rowsOf(c);
                    std::uint64_t bytes = rows * page_bytes;
                    for (std::uint32_t p = 0; p < planes; ++p) {
                        sense_ops += rows;
                        sim.planeOp(
                            p, rows * t_read, rows * e_read,
                            ssd::EnergyComponent::NandRead,
                            [&, p, bytes] {
                                sim.dmaFromDie(p, bytes, [&, bytes] {
                                    sim.externalTransfer(
                                        bytes, [&, bytes] {
                                            host.compute(bytes, finish);
                                        });
                                });
                            });
                    }
                }
            }
            break;
          }
          case PlatformKind::Isp: {
            // sense -> DMA -> accelerator; the last operand's tiles
            // carry the finished result out through the external link.
            for (std::uint64_t op = 0; op < operands; ++op) {
                bool last = (op + 1 == operands);
                for (std::uint64_t c = 0; c < shape.chunks; ++c) {
                    std::uint64_t rows = shape.rowsOf(c);
                    std::uint64_t bytes = rows * page_bytes;
                    for (std::uint32_t p = 0; p < planes; ++p) {
                        sense_ops += rows;
                        bool to_host = last && batch.resultToHost;
                        bool post = batch.hostPostProcess;
                        sim.planeOp(
                            p, rows * t_read, rows * e_read,
                            ssd::EnergyComponent::NandRead,
                            [&, p, bytes, to_host, post] {
                                sim.dmaFromDie(p, bytes, [&, bytes,
                                                          to_host,
                                                          post] {
                                    sim.accelCompute(
                                        0, bytes,
                                        [&, bytes, to_host, post] {
                                            if (!to_host) {
                                                finish();
                                                return;
                                            }
                                            sim.externalTransfer(
                                                bytes,
                                                [&, bytes, post] {
                                                    if (post) {
                                                        host.compute(
                                                            bytes,
                                                            finish);
                                                    } else {
                                                        host.receive(
                                                            bytes);
                                                        finish();
                                                    }
                                                });
                                        });
                                });
                            });
                    }
                }
            }
            break;
          }
          case PlatformKind::ParaBit:
          case PlatformKind::FlashCosmos: {
            // In-flash processing: per result row, PB senses every
            // operand serially; FC senses via MWS command chains.
            std::uint64_t senses_per_row;
            Time t_sense;
            double e_sense;
            if (kind == PlatformKind::ParaBit) {
                senses_per_row = operands;
                t_sense = t_read;
                e_sense = e_read;
            } else {
                senses_per_row = fcSensesPerRow(
                    batch.andOperands, batch.orOperands,
                    cfg_.maxIntraMwsWordlines(), cfg_.maxInterBlockMws);
                t_sense = t_mws;
                // Conservative MWS power: a full string plus the
                // typical string count of this batch's commands.
                std::uint32_t strings = std::min<std::uint32_t>(
                    cfg_.maxInterBlockMws,
                    static_cast<std::uint32_t>(
                        1 + std::min<std::uint64_t>(batch.orOperands,
                                                    3)));
                e_sense = nand::PowerModel::energy(
                    nand::PowerModel::mwsPower(
                        cfg_.maxIntraMwsWordlines(), strings),
                    t_mws);
            }
            for (std::uint64_t c = 0; c < shape.chunks; ++c) {
                std::uint64_t rows = shape.rowsOf(c);
                std::uint64_t bytes = rows * page_bytes;
                for (std::uint32_t p = 0; p < planes; ++p) {
                    sense_ops += rows * senses_per_row;
                    bool to_host = batch.resultToHost;
                    bool post = batch.hostPostProcess;
                    sim.planeOp(
                        p, rows * senses_per_row * t_sense,
                        static_cast<double>(rows * senses_per_row) *
                            e_sense,
                        kind == PlatformKind::ParaBit
                            ? ssd::EnergyComponent::NandRead
                            : ssd::EnergyComponent::NandMws,
                        [&, p, bytes, to_host, post] {
                            if (!to_host) {
                                finish();
                                return;
                            }
                            sim.dmaFromDie(p, bytes, [&, bytes, post] {
                                sim.externalTransfer(
                                    bytes, [&, bytes, post] {
                                        if (post) {
                                            host.compute(bytes, finish);
                                        } else {
                                            host.receive(bytes);
                                            finish();
                                        }
                                    });
                            });
                        });
                }
            }
            break;
          }
        }
    }

    Time makespan = sim.drain();

    RunResult r;
    r.makespan = makespan;
    r.planeBusy = sim.maxPlaneBusyTime();
    r.channelBusy = sim.channelBusyTime(0);
    r.externalBusy = sim.externalBusyTime();
    r.hostBusy = host.busyTime();
    r.senseOps = sense_ops * cfg_.channels;

    // Scale per-channel energies to the whole SSD; host CPU time-based
    // energy and the (single) controller are not per-channel.
    ssd::EnergyMeter &m = sim.energy();
    double ch = static_cast<double>(cfg_.channels);
    for (ssd::EnergyComponent c :
         {ssd::EnergyComponent::NandRead, ssd::EnergyComponent::NandMws,
          ssd::EnergyComponent::NandProgram,
          ssd::EnergyComponent::NandErase,
          ssd::EnergyComponent::ChannelDma,
          ssd::EnergyComponent::ExternalLink,
          ssd::EnergyComponent::IspAccel,
          ssd::EnergyComponent::HostDram})
        m.scale(c, ch);
    m.add(ssd::EnergyComponent::Controller,
          cfg_.controllerActiveWatts * timeToSec(makespan));
    r.meter = m;
    r.energyJ = m.total();
    return r;
}

} // namespace fcos::plat
