#include "platforms/runner.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/lowering.h"
#include "core/planner.h"
#include "engine/engine.h"
#include "engine/result_stream.h"
#include "nand/power_model.h"
#include "ssd/ssd_sim.h"
#include "util/log.h"
#include "util/rng.h"

namespace fcos::plat {

const char *
platformName(PlatformKind k)
{
    switch (k) {
      case PlatformKind::Osp:
        return "OSP";
      case PlatformKind::Isp:
        return "ISP";
      case PlatformKind::ParaBit:
        return "PB";
      case PlatformKind::FlashCosmos:
        return "FC";
    }
    return "?";
}

const char *
runnerModeName(RunnerMode m)
{
    switch (m) {
      case RunnerMode::Engine:
        return "engine";
      case RunnerMode::Analytic:
        return "analytic";
    }
    return "?";
}

namespace {

/** Page-chunking of one plane's row range. */
struct ChunkShape
{
    std::uint64_t rows = 0;   ///< result rows per plane
    std::uint64_t granule = 1; ///< rows per chunk
    std::uint64_t chunks = 0;

    std::uint64_t rowsOf(std::uint64_t chunk) const
    {
        std::uint64_t begin = chunk * granule;
        return std::min(granule, rows - begin);
    }
};

ChunkShape
shapeFor(std::uint64_t operand_bytes, const ssd::SsdConfig &cfg)
{
    std::uint64_t stripe =
        static_cast<std::uint64_t>(cfg.geometry.pageBytes) *
        cfg.totalPlanes();
    ChunkShape s;
    s.rows = std::max<std::uint64_t>(
        1, (operand_bytes + stripe - 1) / stripe);
    // <= 16 pages per chunk keeps the ISP tile inside the 256-KiB SRAM
    // and bounds event counts; <= 32 chunks keeps pipelines smooth.
    s.granule = std::clamp<std::uint64_t>((s.rows + 31) / 32, 1, 16);
    s.chunks = (s.rows + s.granule - 1) / s.granule;
    return s;
}

double
pageReadEnergy(const ssd::SsdConfig &cfg)
{
    return nand::PowerModel::energy(nand::PowerModel::kReadPower,
                                    cfg.timings.tReadSlc);
}

/** Legacy analytic path: facilities of the SSD timing simulator. */
struct AnalyticBackend
{
    ssd::SsdSim &sim;

    void planeOp(std::uint32_t p, Time dur, double joules,
                 ssd::EnergyComponent comp, std::function<void()> done)
    {
        sim.planeOp(p, dur, joules, comp, std::move(done));
    }
    void dmaFromDie(std::uint32_t p, std::uint64_t bytes,
                    std::function<void()> done)
    {
        sim.dmaFromDie(p, bytes, std::move(done));
    }
    void external(std::uint64_t bytes, std::function<void()> done)
    {
        sim.externalTransfer(bytes, std::move(done));
    }
    void accel(std::uint64_t bytes, std::function<void()> done)
    {
        sim.accelCompute(0, bytes, std::move(done));
    }
    void finish() { sim.noteCompletion(sim.queue().now()); }
};

/** Unified path: the compute engine's scheduler runs the workload. */
struct EngineBackend
{
    engine::CommandScheduler &sched;
    std::uint32_t planesPerDie;

    void planeOp(std::uint32_t p, Time dur, double joules,
                 ssd::EnergyComponent comp, std::function<void()> done)
    {
        sched.submitPlaneOp(
            p / planesPerDie, p % planesPerDie, comp,
            [dur, joules](nand::NandChip &) {
                return nand::OpResult{dur, joules};
            },
            std::move(done));
    }
    void dmaFromDie(std::uint32_t p, std::uint64_t bytes,
                    std::function<void()> done)
    {
        sched.submitDma(p / planesPerDie, bytes, std::move(done));
    }
    void external(std::uint64_t bytes, std::function<void()> done)
    {
        sched.submitExternal(bytes, std::move(done));
    }
    void accel(std::uint64_t bytes, std::function<void()> done)
    {
        sched.submitAccel(0, bytes, std::move(done));
    }
    void finish() {} // drain() already tracks the last completion
};

/**
 * The platform op graph, independent of the execution backend: the
 * same chunked sense -> DMA -> external -> host pipelines are driven
 * over either facility set, so engine and analytic timelines come
 * from one description of each platform.
 */
template <typename Backend>
std::uint64_t
driveWorkload(PlatformKind kind, const wl::Workload &workload,
              const ssd::SsdConfig &cfg, const ssd::SsdConfig &chan_cfg,
              Backend &backend, host::HostModel &host)
{
    const std::uint64_t page_bytes = cfg.geometry.pageBytes;
    const std::uint32_t planes = chan_cfg.totalPlanes();
    const Time t_read = cfg.timings.tReadSlc;
    const Time t_mws = cfg.timings.tMwsFixed;
    const double e_read = pageReadEnergy(cfg);

    std::uint64_t sense_ops = 0;
    auto finish = [&backend]() { backend.finish(); };

    for (const wl::OpBatch &batch : workload.batches) {
        ChunkShape shape = shapeFor(batch.operandBytes, cfg);
        std::uint64_t operands = batch.totalOperands();

        switch (kind) {
          case PlatformKind::Osp: {
            // Operand-major streaming: sense -> DMA -> external -> host
            // fold. The host result never re-crosses the link.
            for (std::uint64_t op = 0; op < operands; ++op) {
                for (std::uint64_t c = 0; c < shape.chunks; ++c) {
                    std::uint64_t rows = shape.rowsOf(c);
                    std::uint64_t bytes = rows * page_bytes;
                    for (std::uint32_t p = 0; p < planes; ++p) {
                        sense_ops += rows;
                        backend.planeOp(
                            p, rows * t_read, rows * e_read,
                            ssd::EnergyComponent::NandRead,
                            [&backend, &host, finish, p, bytes] {
                                backend.dmaFromDie(
                                    p, bytes,
                                    [&backend, &host, finish, bytes] {
                                        backend.external(
                                            bytes,
                                            [&host, finish, bytes] {
                                                host.compute(bytes,
                                                             finish);
                                            });
                                    });
                            });
                    }
                }
            }
            break;
          }
          case PlatformKind::Isp: {
            // sense -> DMA -> accelerator; the last operand's tiles
            // carry the finished result out through the external link.
            for (std::uint64_t op = 0; op < operands; ++op) {
                bool last = (op + 1 == operands);
                for (std::uint64_t c = 0; c < shape.chunks; ++c) {
                    std::uint64_t rows = shape.rowsOf(c);
                    std::uint64_t bytes = rows * page_bytes;
                    for (std::uint32_t p = 0; p < planes; ++p) {
                        sense_ops += rows;
                        bool to_host = last && batch.resultToHost;
                        bool post = batch.hostPostProcess;
                        backend.planeOp(
                            p, rows * t_read, rows * e_read,
                            ssd::EnergyComponent::NandRead,
                            [&backend, &host, finish, p, bytes, to_host,
                             post] {
                                backend.dmaFromDie(p, bytes, [&backend,
                                                              &host,
                                                              finish,
                                                              bytes,
                                                              to_host,
                                                              post] {
                                    backend.accel(
                                        bytes,
                                        [&backend, &host, finish, bytes,
                                         to_host, post] {
                                            if (!to_host) {
                                                finish();
                                                return;
                                            }
                                            backend.external(
                                                bytes,
                                                [&host, finish, bytes,
                                                 post] {
                                                    if (post) {
                                                        host.compute(
                                                            bytes,
                                                            finish);
                                                    } else {
                                                        host.receive(
                                                            bytes);
                                                        finish();
                                                    }
                                                });
                                        });
                                });
                            });
                    }
                }
            }
            break;
          }
          case PlatformKind::ParaBit:
          case PlatformKind::FlashCosmos: {
            // In-flash processing: per result row, PB senses every
            // operand serially; FC senses via MWS command chains.
            std::uint64_t senses_per_row;
            Time t_sense;
            double e_sense;
            if (kind == PlatformKind::ParaBit) {
                senses_per_row = operands;
                t_sense = t_read;
                e_sense = e_read;
            } else {
                senses_per_row = PlatformRunner::fcSensesPerRow(
                    batch.andOperands, batch.orOperands,
                    cfg.maxIntraMwsWordlines(), cfg.maxInterBlockMws);
                t_sense = t_mws;
                // Conservative MWS power: a full string plus the
                // typical string count of this batch's commands.
                std::uint32_t strings = std::min<std::uint32_t>(
                    cfg.maxInterBlockMws,
                    static_cast<std::uint32_t>(
                        1 + std::min<std::uint64_t>(batch.orOperands,
                                                    3)));
                e_sense = nand::PowerModel::energy(
                    nand::PowerModel::mwsPower(
                        cfg.maxIntraMwsWordlines(), strings),
                    t_mws);
            }
            for (std::uint64_t c = 0; c < shape.chunks; ++c) {
                std::uint64_t rows = shape.rowsOf(c);
                std::uint64_t bytes = rows * page_bytes;
                for (std::uint32_t p = 0; p < planes; ++p) {
                    sense_ops += rows * senses_per_row;
                    bool to_host = batch.resultToHost;
                    bool post = batch.hostPostProcess;
                    backend.planeOp(
                        p, rows * senses_per_row * t_sense,
                        static_cast<double>(rows * senses_per_row) *
                            e_sense,
                        kind == PlatformKind::ParaBit
                            ? ssd::EnergyComponent::NandRead
                            : ssd::EnergyComponent::NandMws,
                        [&backend, &host, finish, p, bytes, to_host,
                         post] {
                            if (!to_host) {
                                finish();
                                return;
                            }
                            backend.dmaFromDie(
                                p, bytes,
                                [&backend, &host, finish, bytes, post] {
                                    backend.external(
                                        bytes,
                                        [&host, finish, bytes, post] {
                                            if (post) {
                                                host.compute(bytes,
                                                             finish);
                                            } else {
                                                host.receive(bytes);
                                                finish();
                                            }
                                        });
                                });
                        });
                }
            }
            break;
          }
        }
    }
    return sense_ops;
}

} // namespace

std::uint64_t
PlatformRunner::fcSensesPerRow(std::uint64_t and_operands,
                               std::uint64_t or_operands,
                               std::uint32_t max_wordlines,
                               std::uint32_t max_strings)
{
    fcos_assert(max_wordlines >= 1 && max_strings >= 1, "bad MWS limits");
    if (and_operands == 0 && or_operands == 0)
        return 0;
    if (and_operands == 0) {
        // Pure OR over inverse-stored operands: one inverse intra-block
        // MWS per string's worth, OR-merged (Section 6.1).
        return (or_operands + max_wordlines - 1) / max_wordlines;
    }
    std::uint64_t and_cmds =
        (and_operands + max_wordlines - 1) / max_wordlines;
    if (or_operands == 0)
        return and_cmds;
    if (and_cmds == 1 && or_operands <= max_strings - 1) {
        // The OR operands ride along as extra strings of the single
        // AND command: (AND-group) OR o1 OR ... (the KCS fusion).
        return 1;
    }
    // Otherwise the OR operands are folded afterwards with OR-merge
    // commands, up to (max_strings) plain strings each.
    return and_cmds + (or_operands + max_strings - 1) / max_strings;
}

namespace {

/** Per-channel symmetric configuration (see file comment). */
ssd::SsdConfig
channelSlice(const ssd::SsdConfig &cfg)
{
    ssd::SsdConfig chan_cfg = cfg;
    chan_cfg.channels = 1;
    chan_cfg.io.externalGBps = cfg.io.externalGBps / cfg.channels;
    return chan_cfg;
}

/** Scale per-channel energies to the whole SSD and finish the result.
 *  Host CPU time-based energy and the (single) controller are not
 *  per-channel. */
RunResult
finalizeResult(const ssd::SsdConfig &cfg, Time makespan,
               std::uint64_t sense_ops, Time plane_busy, Time channel_busy,
               Time external_busy, Time host_busy, ssd::EnergyMeter meter)
{
    RunResult r;
    r.makespan = makespan;
    r.planeBusy = plane_busy;
    r.channelBusy = channel_busy;
    r.externalBusy = external_busy;
    r.hostBusy = host_busy;
    r.senseOps = sense_ops * cfg.channels;

    double ch = static_cast<double>(cfg.channels);
    for (ssd::EnergyComponent c :
         {ssd::EnergyComponent::NandRead, ssd::EnergyComponent::NandMws,
          ssd::EnergyComponent::NandProgram,
          ssd::EnergyComponent::NandErase,
          ssd::EnergyComponent::ChannelDma,
          ssd::EnergyComponent::ExternalLink,
          ssd::EnergyComponent::IspAccel,
          ssd::EnergyComponent::HostDram})
        meter.scale(c, ch);
    meter.add(ssd::EnergyComponent::Controller,
              cfg.io.controllerActiveWatts * timeToSec(makespan));
    r.meter = meter;
    r.energyJ = meter.total();
    return r;
}

} // namespace

RunResult
PlatformRunner::run(PlatformKind kind, const wl::Workload &workload,
                    RunnerMode mode) const
{
    ssd::SsdConfig chan_cfg = channelSlice(cfg_);
    host::HostConfig host_cfg = host_cfg_;
    host_cfg.streamGBps = host_cfg_.streamGBps / cfg_.channels;

    if (mode == RunnerMode::Analytic) {
        ssd::SsdSim sim(chan_cfg);
        host::HostModel host(sim.queue(), sim.energy(), host_cfg);
        AnalyticBackend backend{sim};
        std::uint64_t sense_ops =
            driveWorkload(kind, workload, cfg_, chan_cfg, backend, host);
        Time makespan = sim.drain();
        return finalizeResult(cfg_, makespan, sense_ops,
                              sim.maxPlaneBusyTime(),
                              sim.channelBusyTime(0),
                              sim.externalBusyTime(), host.busyTime(),
                              sim.energy());
    }

    engine::ComputeEngine eng(engine::FarmConfig::fromSsd(chan_cfg));
    engine::CommandScheduler &sched = eng.scheduler();
    host::HostModel host(sched.queue(), sched.energy(), host_cfg);
    EngineBackend backend{sched, chan_cfg.geometry.planesPerDie};
    std::uint64_t sense_ops =
        driveWorkload(kind, workload, cfg_, chan_cfg, backend, host);
    Time makespan = eng.drain();
    return finalizeResult(cfg_, makespan, sense_ops,
                          sched.maxPlaneBusyTime(),
                          sched.channelBusyTime(0),
                          sched.externalBusyTime(), host.busyTime(),
                          sched.energy());
}

namespace {

/** Storage facts of one functional batch's abstract operand table:
 *  ids [0, chained) stack in the row's string chain (AND operands, or
 *  the inverse-stored De Morgan operands of a pure-OR batch); ids
 *  beyond that are the KCS-fusion OR operands, each in its own block
 *  so it contributes a distinct string. */
class BatchLayout : public core::StorageResolver
{
  public:
    BatchLayout(const nand::Geometry &geom, std::uint64_t and_ops,
                std::uint64_t or_ops)
        : geom_(geom), and_ops_(and_ops), or_ops_(or_ops),
          pure_or_(and_ops == 0 && or_ops > 0),
          chained_(and_ops + (pure_or_ ? or_ops : 0))
    {
        std::uint64_t chains =
            (chained_ + geom.wordlinesPerSubBlock - 1) /
            geom.wordlinesPerSubBlock;
        chain_blocks_ = chained_
                            ? (chains + geom.subBlocksPerBlock - 1) /
                                  geom.subBlocksPerBlock
                            : 0;
    }

    std::uint64_t operandCount() const { return and_ops_ + or_ops_; }

    /** Blocks one result row's operands occupy. */
    std::uint64_t blocksPerRow() const
    {
        std::uint64_t fused = pure_or_ ? 0 : or_ops_;
        return std::max<std::uint64_t>(1, chain_blocks_ + fused);
    }

    /** Physical wordline of operand @p id in the row rooted at
     *  @p row_block on @p plane. */
    nand::WordlineAddr addrOf(core::VectorId id, std::uint32_t plane,
                              std::uint32_t row_block) const
    {
        const std::uint32_t wls = geom_.wordlinesPerSubBlock;
        const std::uint32_t subs = geom_.subBlocksPerBlock;
        if (id < chained_) {
            std::uint32_t chain = static_cast<std::uint32_t>(id / wls);
            return {plane, row_block + chain / subs, chain % subs,
                    static_cast<std::uint32_t>(id % wls)};
        }
        std::uint32_t j = static_cast<std::uint32_t>(id - chained_);
        return {plane,
                row_block + static_cast<std::uint32_t>(chain_blocks_) + j,
                0, 0};
    }

    // core::StorageResolver: pure-OR operands store the complement
    // (the §6.1 De Morgan trick); everything else stores plain.
    bool isStoredInverted(core::VectorId id) const override
    {
        return pure_or_ && id < chained_;
    }
    std::uint64_t stringKey(core::VectorId id) const override
    {
        if (id < chained_)
            return id / geom_.wordlinesPerSubBlock;
        return (1ULL << 20) + (id - chained_);
    }

    /** The batch expression: AND of the and-operands with the
     *  or-operands OR-ed in (the KCS star-formation shape). */
    core::Expr expression() const
    {
        using core::Expr;
        std::vector<Expr> ors;
        if (and_ops_ > 0) {
            std::vector<Expr> ands;
            for (std::uint64_t i = 0; i < and_ops_; ++i)
                ands.push_back(Expr::leaf(
                    static_cast<core::VectorId>(i)));
            if (or_ops_ == 0)
                return Expr::And(std::move(ands));
            ors.push_back(Expr::And(std::move(ands)));
        }
        for (std::uint64_t j = 0; j < or_ops_; ++j)
            ors.push_back(Expr::leaf(
                static_cast<core::VectorId>(and_ops_ + j)));
        return Expr::Or(std::move(ors));
    }

  private:
    nand::Geometry geom_;
    std::uint64_t and_ops_;
    std::uint64_t or_ops_;
    bool pure_or_;
    std::uint64_t chained_;
    std::uint64_t chain_blocks_ = 0;
};

/** Seed stream of operand @p i at (batch, column, row). The streamed
 *  run programs operands with these seeds and
 *  fcFunctionalExpectedPage re-derives the fold from them, so the two
 *  must stay one function. */
std::uint64_t
operandStream(std::uint64_t batch_idx, std::uint32_t col, std::uint64_t r,
              std::uint64_t i)
{
    return (batch_idx << 48) + (static_cast<std::uint64_t>(col) << 28) +
           (r << 8) + i;
}

} // namespace

RunResult
PlatformRunner::runFcStreamed(const wl::Workload &workload,
                              std::uint64_t seed, core::ResultSink &sink,
                              StreamStats *stream_stats) const
{
    ssd::SsdConfig chan_cfg = channelSlice(cfg_);
    host::HostConfig host_cfg = host_cfg_;
    host_cfg.streamGBps = host_cfg_.streamGBps / cfg_.channels;

    engine::ComputeEngine eng(engine::FarmConfig::fromSsd(chan_cfg));
    engine::CommandScheduler &sched = eng.scheduler();
    host::HostModel host(sched.queue(), sched.energy(), host_cfg);

    const nand::Geometry &geom = chan_cfg.geometry;
    const std::uint64_t page_bits = geom.pageBits();
    const std::uint64_t page_bytes = geom.pageBytes;
    const std::uint32_t columns =
        chan_cfg.totalDies() * geom.planesPerDie;
    const Time t_mws = cfg_.timings.tMwsFixed;
    const nand::EspParams esp{2.0};

    std::uint64_t sense_ops = 0;
    std::uint64_t page_base = 0;
    std::uint32_t block_base = 0;

    // Result pages across batches; the stream hands them to the sink
    // in slot order, so the sink sees exactly the dense layout without
    // anything materializing it.
    std::uint64_t total_pages = 0;
    for (const wl::OpBatch &batch : workload.batches)
        total_pages += shapeFor(batch.operandBytes, cfg_).rows * columns;
    sink.begin(core::StreamShape{total_pages, page_bits,
                                 total_pages * page_bits});
    engine::OrderedChunkStream stream(
        std::max<std::uint64_t>(total_pages, 1),
        [&sink, page_bits](std::uint64_t slot, BitVector page) {
            sink.consume(core::ResultChunk{slot, slot * page_bits,
                                           page_bits, page});
        });

    std::size_t batch_idx = 0;
    for (const wl::OpBatch &batch : workload.batches) {
        const std::uint64_t k = batch.andOperands;
        const std::uint64_t m = batch.orOperands;
        fcos_assert(k + m >= 2, "functional batch needs >= 2 operands");
        const BatchLayout layout(geom, k, m);
        const ChunkShape shape = shapeFor(batch.operandBytes, cfg_);
        const std::uint64_t row_blocks = layout.blocksPerRow();
        fcos_assert(block_base + shape.rows * row_blocks <=
                        geom.blocksPerPlane,
                    "workload too large to materialize");

        // One plan serves every column and row: the abstract operand
        // table is position-independent; only the lowering binds
        // physical wordlines.
        const core::Planner planner(layout);
        const core::MwsPlan plan = planner.plan(layout.expression());
        fcos_assert(plan.kind == core::MwsPlan::Kind::Mws,
                    "functional batch must compile to an MWS chain: %s",
                    plan.toString().c_str());
        fcos_assert(!plan.finalInvert,
                    "functional batches never need a final NOT");
        // Certify the analytic sense-count model: the planner must
        // execute the batch in exactly the commands the timing-only
        // driver charges for.
        fcos_assert(plan.senseCount() ==
                        fcSensesPerRow(k, m, cfg_.maxIntraMwsWordlines(),
                                       cfg_.maxInterBlockMws),
                    "planner (%zu cmds) disagrees with the analytic "
                    "sense count",
                    plan.senseCount());

        for (std::uint32_t col = 0; col < columns; ++col) {
            const std::uint32_t die = col / geom.planesPerDie;
            const std::uint32_t plane = col % geom.planesPerDie;
            nand::NandChip &chip = eng.farm().chip(die);
            for (std::uint64_t r = 0; r < shape.rows; ++r) {
                const std::uint32_t row_block =
                    block_base +
                    static_cast<std::uint32_t>(r * row_blocks);
                // Operands in place (instant functional programming):
                // the workload models computation over stored data.
                // Pages are programmed as seeded descriptors, so the
                // sparse backend materializes nothing here — the
                // reference fold of the same descriptors is
                // fcFunctionalExpectedPage, recomputed per page by
                // whoever verifies the stream.
                for (std::uint64_t i = 0; i < layout.operandCount();
                     ++i) {
                    nand::PageImage img = nand::PageImage::random(
                        Rng::mix(seed,
                                 operandStream(batch_idx, col, r, i)));
                    const core::VectorId id =
                        static_cast<core::VectorId>(i);
                    chip.programPageEsp(
                        layout.addrOf(id, plane, row_block),
                        layout.isStoredInverted(id) ? img.inverted()
                                                    : img,
                        esp);
                }
                const std::uint64_t slot =
                    page_base + r * columns + col;

                core::LoweringContext ctx;
                ctx.plane = plane;
                ctx.addrOf = [&layout, plane,
                              row_block](core::VectorId id) {
                    return layout.addrOf(id, plane, row_block);
                };
                ctx.storedInverted = [&layout](core::VectorId id) {
                    return layout.isStoredInverted(id);
                };

                engine::ColumnProgram prog;
                prog.die = die;
                prog.plane = plane;
                for (core::LoweredStep &ls : core::lowerPlan(plan, ctx)) {
                    fcos_assert(ls.kind ==
                                    core::LoweredStep::Kind::Sense,
                                "functional plans lower to senses only");
                    prog.steps.push_back(engine::ColumnStep{
                        engine::StepKind::Sense,
                        [cmd = std::move(ls.cmd),
                         or_merge = ls.orMergeAfter,
                         t_mws](nand::NandChip &c) {
                            nand::OpResult op = c.executeMws(cmd);
                            if (or_merge)
                                c.latches(cmd.plane).dumpOrMerge();
                            // The SSD schedules the conservative fixed
                            // command latency (Section 5.2), matching
                            // the timing-only driver.
                            op.latency = t_mws;
                            return op;
                        },
                        0, 0});
                    ++sense_ops;
                }
                const bool to_host = batch.resultToHost;
                const bool post = batch.hostPostProcess;
                // Payload streams out at latch capture; the readout
                // DMA and the external/host chunk charges stay on the
                // timeline exactly where the dense path booked them.
                prog.resultAtCapture = true;
                prog.onResult = stream.handler(slot);
                if (to_host) {
                    prog.onComplete = [&sched, &host, page_bytes,
                                       post] {
                        sched.submitExternal(
                            page_bytes, [&host, page_bytes, post] {
                                if (post)
                                    host.computeChunk(page_bytes);
                                else
                                    host.receive(page_bytes);
                            });
                    };
                }
                eng.submit(std::move(prog));
            }
        }
        block_base += static_cast<std::uint32_t>(shape.rows * row_blocks);
        page_base += shape.rows * columns;
        ++batch_idx;
    }

    Time makespan = eng.drain();
    fcos_assert(total_pages == 0 || stream.complete(),
                "streamed functional run lost pages");
    if (stream_stats) {
        stream_stats->chunks = stream.emitted();
        stream_stats->peakBufferedPages = stream.peakBufferedPages();
    }
    sink.end();
    return finalizeResult(cfg_, makespan, sense_ops,
                          sched.maxPlaneBusyTime(),
                          sched.channelBusyTime(0),
                          sched.externalBusyTime(), host.busyTime(),
                          sched.energy());
}

BitVector
PlatformRunner::fcFunctionalExpectedPage(const wl::Workload &workload,
                                         std::uint64_t seed,
                                         std::uint64_t page) const
{
    ssd::SsdConfig chan_cfg = channelSlice(cfg_);
    const nand::Geometry &geom = chan_cfg.geometry;
    const std::uint64_t page_bits = geom.pageBits();
    const std::uint32_t columns =
        chan_cfg.totalDies() * geom.planesPerDie;

    std::uint64_t base = 0;
    std::uint64_t batch_idx = 0;
    for (const wl::OpBatch &batch : workload.batches) {
        const std::uint64_t span =
            shapeFor(batch.operandBytes, cfg_).rows * columns;
        if (page < base + span) {
            const std::uint64_t local = page - base;
            const std::uint64_t r = local / columns;
            const std::uint32_t col =
                static_cast<std::uint32_t>(local % columns);
            const std::uint64_t k = batch.andOperands;
            const std::uint64_t m = batch.orOperands;
            BitVector ref(page_bits, k > 0);
            for (std::uint64_t i = 0; i < k + m; ++i) {
                BitVector value =
                    nand::PageImage::random(
                        Rng::mix(seed,
                                 operandStream(batch_idx, col, r, i)))
                        .materialize(page_bits);
                if (i < k)
                    ref &= value;
                else
                    ref |= value;
            }
            return ref;
        }
        base += span;
        ++batch_idx;
    }
    fcos_panic("result page %llu beyond the workload",
               (unsigned long long)page);
}

PlatformRunner::FunctionalRun
PlatformRunner::runFcFunctional(const wl::Workload &workload,
                                std::uint64_t seed) const
{
    FunctionalRun fr;
    core::DenseCollectSink dense;
    fr.timing = runFcStreamed(workload, seed, dense);
    fr.result = dense.take();
    const std::uint64_t page_bits = cfg_.geometry.pageBits();
    fr.expected = BitVector(fr.result.size());
    for (std::uint64_t p = 0; p * page_bits < fr.result.size(); ++p)
        fr.expected.paste(p * page_bits,
                          fcFunctionalExpectedPage(workload, seed, p));
    return fr;
}

} // namespace fcos::plat
