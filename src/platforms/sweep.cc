#include "platforms/sweep.h"

#include "util/log.h"
#include "util/mathutil.h"

namespace fcos::plat {

namespace {

const RunResult &
resultFor(const SweepPoint &p, PlatformKind k)
{
    switch (k) {
      case PlatformKind::Osp:
        return p.osp;
      case PlatformKind::Isp:
        return p.isp;
      case PlatformKind::ParaBit:
        return p.pb;
      case PlatformKind::FlashCosmos:
        return p.fc;
    }
    fcos_panic("bad platform");
}

} // namespace

double
SweepPoint::speedup(PlatformKind k) const
{
    return static_cast<double>(osp.makespan) /
           static_cast<double>(resultFor(*this, k).makespan);
}

double
SweepPoint::energyRatio(PlatformKind k) const
{
    return osp.energyJ / resultFor(*this, k).energyJ;
}

SweepPoint
EvaluationSweep::runPoint(const wl::Workload &workload) const
{
    SweepPoint p;
    p.workload = workload;
    p.osp = runner_.run(PlatformKind::Osp, workload);
    p.isp = runner_.run(PlatformKind::Isp, workload);
    p.pb = runner_.run(PlatformKind::ParaBit, workload);
    p.fc = runner_.run(PlatformKind::FlashCosmos, workload);
    return p;
}

SweepSeries
EvaluationSweep::bmiSeries(const std::vector<std::uint32_t> &months) const
{
    SweepSeries s;
    s.name = "BMI";
    for (std::uint32_t m : months)
        s.points.push_back(runPoint(wl::makeBmi(m)));
    return s;
}

SweepSeries
EvaluationSweep::imsSeries(const std::vector<std::uint64_t> &images) const
{
    SweepSeries s;
    s.name = "IMS";
    for (std::uint64_t i : images)
        s.points.push_back(runPoint(wl::makeIms(i)));
    return s;
}

SweepSeries
EvaluationSweep::kcsSeries(const std::vector<std::uint32_t> &ks) const
{
    SweepSeries s;
    s.name = "KCS";
    for (std::uint32_t k : ks)
        s.points.push_back(runPoint(wl::makeKcs(k)));
    return s;
}

double
EvaluationSweep::meanSpeedup(const std::vector<SweepSeries> &series,
                             PlatformKind kind)
{
    std::vector<double> values;
    for (const auto &s : series)
        for (const auto &p : s.points)
            values.push_back(p.speedup(kind));
    return geomean(values);
}

double
EvaluationSweep::meanEnergyRatio(const std::vector<SweepSeries> &series,
                                 PlatformKind kind)
{
    std::vector<double> values;
    for (const auto &s : series)
        for (const auto &p : s.points)
            values.push_back(p.energyRatio(kind));
    return geomean(values);
}

} // namespace fcos::plat
