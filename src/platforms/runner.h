/**
 * @file
 * The four evaluated computing platforms (paper Section 7), as
 * event-driven drivers over the SSD timing simulator:
 *
 *  - OSP (outside-storage processing): every operand page is sensed,
 *    moved over its channel, shipped across the external link, and
 *    folded by the host CPU. External I/O is the bottleneck (Fig. 7b).
 *
 *  - ISP (in-storage processing): operands stop at the per-channel
 *    accelerator (bitwise logic + 256-KiB SRAM); only results cross
 *    the external link. Internal channel I/O becomes the bottleneck
 *    (Fig. 7c).
 *
 *  - PB (ParaBit): in-flash serial sensing — one tR per operand — with
 *    latch accumulation; only result pages leave the dies (Fig. 7d).
 *
 *  - FC (Flash-Cosmos): MWS senses up to a NAND string's worth of
 *    operands per tMWS, with latch accumulation across commands
 *    (Section 6.1); only result pages leave the dies.
 *
 * Channel symmetry: workloads stripe uniformly, so one channel is
 * simulated and shared resources (external link, host stream rate)
 * are given their per-channel fair share; energies that scale with
 * channel count are scaled back afterwards. Page streams are chunked
 * (<= 16 pages) to bound event counts at full workload scale; the
 * pipeline fill/drain behaviour is preserved.
 */

#ifndef FCOS_PLATFORMS_RUNNER_H
#define FCOS_PLATFORMS_RUNNER_H

#include <cstdint>

#include "host/host_model.h"
#include "ssd/config.h"
#include "ssd/energy.h"
#include "workloads/workload.h"

namespace fcos::plat {

enum class PlatformKind : std::uint8_t
{
    Osp,
    Isp,
    ParaBit,
    FlashCosmos,
};

const char *platformName(PlatformKind k);

struct RunResult
{
    Time makespan = 0;
    double energyJ = 0.0;
    ssd::EnergyMeter meter; ///< scaled to the whole SSD
    std::uint64_t senseOps = 0; ///< sensing operations, whole SSD
    /** Per-channel resource busy times (bottleneck analysis). */
    Time planeBusy = 0;
    Time channelBusy = 0;
    Time externalBusy = 0;
    Time hostBusy = 0;

    /** Bits per joule (Figure 18's metric, before normalization). */
    double bitsPerJoule(double computed_bits) const
    {
        return computed_bits / energyJ;
    }
};

class PlatformRunner
{
  public:
    explicit PlatformRunner(
        const ssd::SsdConfig &cfg = ssd::SsdConfig::table1(),
        const host::HostConfig &host_cfg = host::HostConfig{})
        : cfg_(cfg), host_cfg_(host_cfg)
    {}

    const ssd::SsdConfig &config() const { return cfg_; }

    /** Execute @p workload on platform @p kind and report time/energy. */
    RunResult run(PlatformKind kind, const wl::Workload &workload) const;

    /**
     * Sensing operations per result row for Flash-Cosmos, given the
     * batch shape (exposed for tests and the ablation benches).
     * @param max_wordlines  intra-block MWS width (string length)
     * @param max_strings    strings per command (inter-block cap)
     */
    static std::uint64_t fcSensesPerRow(std::uint64_t and_operands,
                                        std::uint64_t or_operands,
                                        std::uint32_t max_wordlines,
                                        std::uint32_t max_strings);

  private:
    ssd::SsdConfig cfg_;
    host::HostConfig host_cfg_;
};

} // namespace fcos::plat

#endif // FCOS_PLATFORMS_RUNNER_H
