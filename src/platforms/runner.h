/**
 * @file
 * The four evaluated computing platforms (paper Section 7), as
 * event-driven drivers over the unified execution engine:
 *
 *  - OSP (outside-storage processing): every operand page is sensed,
 *    moved over its channel, shipped across the external link, and
 *    folded by the host CPU. External I/O is the bottleneck (Fig. 7b).
 *
 *  - ISP (in-storage processing): operands stop at the per-channel
 *    accelerator (bitwise logic + 256-KiB SRAM); only results cross
 *    the external link. Internal channel I/O becomes the bottleneck
 *    (Fig. 7c).
 *
 *  - PB (ParaBit): in-flash serial sensing — one tR per operand — with
 *    latch accumulation; only result pages leave the dies (Fig. 7d).
 *
 *  - FC (Flash-Cosmos): MWS senses up to a NAND string's worth of
 *    operands per tMWS, with latch accumulation across commands
 *    (Section 6.1); only result pages leave the dies.
 *
 * Execution modes: by default the runner builds a chip farm from the
 * SSD configuration and executes the workload through
 * engine::ComputeEngine's scheduler — the same per-plane facilities,
 * channel buses, external link and energy ledger the functional drive
 * uses, so every paper figure comes off the engine's timeline. The
 * legacy analytic model over ssd/ssd_sim is retained behind
 * RunnerMode::Analytic for cross-validation (see
 * tests/platforms/parity_test.cc).
 *
 * Channel symmetry: workloads stripe uniformly, so one channel is
 * simulated and shared resources (external link, host stream rate)
 * are given their per-channel fair share; energies that scale with
 * channel count are scaled back afterwards. Page streams are chunked
 * (<= 16 pages) to bound event counts at full workload scale; the
 * pipeline fill/drain behaviour is preserved.
 */

#ifndef FCOS_PLATFORMS_RUNNER_H
#define FCOS_PLATFORMS_RUNNER_H

#include <cstdint>

#include "core/result_sink.h"
#include "host/host_model.h"
#include "ssd/config.h"
#include "ssd/energy.h"
#include "util/bitvector.h"
#include "workloads/workload.h"

namespace fcos::plat {

enum class PlatformKind : std::uint8_t
{
    Osp,
    Isp,
    ParaBit,
    FlashCosmos,
};

const char *platformName(PlatformKind k);

/** Which execution path produces the timeline. */
enum class RunnerMode : std::uint8_t
{
    Engine,   ///< engine::ComputeEngine scheduler (the default)
    Analytic, ///< legacy analytic model over ssd/ssd_sim
};

const char *runnerModeName(RunnerMode m);

struct RunResult
{
    Time makespan = 0;
    double energyJ = 0.0;
    ssd::EnergyMeter meter; ///< scaled to the whole SSD
    std::uint64_t senseOps = 0; ///< sensing operations, whole SSD
    /** Per-channel resource busy times (bottleneck analysis). */
    Time planeBusy = 0;
    Time channelBusy = 0;
    Time externalBusy = 0;
    Time hostBusy = 0;

    /** Bits per joule (Figure 18's metric, before normalization). */
    double bitsPerJoule(double computed_bits) const
    {
        return computed_bits / energyJ;
    }
};

class PlatformRunner
{
  public:
    explicit PlatformRunner(
        const ssd::SsdConfig &cfg = ssd::SsdConfig::table1(),
        const host::HostConfig &host_cfg = host::HostConfig{},
        RunnerMode mode = RunnerMode::Engine)
        : cfg_(cfg), host_cfg_(host_cfg), mode_(mode)
    {}

    const ssd::SsdConfig &config() const { return cfg_; }
    RunnerMode mode() const { return mode_; }

    /** Execute @p workload on platform @p kind in the runner's mode. */
    RunResult run(PlatformKind kind, const wl::Workload &workload) const
    {
        return run(kind, workload, mode_);
    }

    /** Execute with an explicit mode (cross-validation). */
    RunResult run(PlatformKind kind, const wl::Workload &workload,
                  RunnerMode mode) const;

    /** A functional Flash-Cosmos execution: timing plus real bits. */
    struct FunctionalRun
    {
        RunResult timing;
        BitVector result;   ///< bits the engine's chips produced
        BitVector expected; ///< host-side reference fold
        bool bitExact() const { return result == expected; }
    };

    /** Stream accounting of a runFcStreamed execution. */
    struct StreamStats
    {
        std::uint64_t chunks = 0;      ///< result pages delivered
        /** Most result pages buffered at once while re-ordering
         *  out-of-order column completions (memory high-water mark). */
        std::uint64_t peakBufferedPages = 0;
    };

    /**
     * Run a Flash-Cosmos workload with *real* data through the engine,
     * streaming result pages into @p sink in page order as they come
     * off the farm: deterministic seeded operand pages are
     * ESP-programmed onto the farm's chips as procedural descriptors
     * (sparse page store — no payload materializes until sensed), the
     * batch expression is compiled by the core planner and lowered to
     * real MWS command chains (booked at the SSD's fixed tMWS, Section
     * 5.2), and the result pages read out over the channel / external
     * link exactly like the timing-only driver. Peak memory is the
     * re-ordering window, never the dense result — the beyond-DRAM
     * verification path.
     *
     * Supported batch shapes (they cover every figure workload):
     *  - pure AND: operands stack in one string chain (multiple MWS
     *    commands with AND-merge when they span sub-blocks);
     *  - pure OR: operands stored inverted, sensed with inverse MWS
     *    (the §6.1 De Morgan path), OR-merged across chunks;
     *  - AND + m OR operands: up to 3 OR operands join the AND command
     *    as extra strings (the KCS fusion); wider mixed batches split
     *    the OR operands into follow-up OR-merge commands.
     * The planner's command count is asserted equal to
     * fcSensesPerRow() per row, so the analytic model is certified,
     * not just approximated.
     */
    RunResult runFcStreamed(const wl::Workload &workload,
                            std::uint64_t seed, core::ResultSink &sink,
                            StreamStats *stream_stats = nullptr) const;

    /**
     * The host-side reference page for result slot @p page of
     * runFcStreamed(@p workload, @p seed): a pure function of the seed
     * (the fold of the operand PageImage descriptors), so a streaming
     * comparator (core::SparseCompareSink) can verify a beyond-DRAM
     * result one chunk at a time without ever holding the dense
     * reference.
     */
    BitVector fcFunctionalExpectedPage(const wl::Workload &workload,
                                       std::uint64_t seed,
                                       std::uint64_t page) const;

    /**
     * Dense-collect wrapper over runFcStreamed: assembles the streamed
     * chunks into FunctionalRun::result and the per-page reference
     * fold into FunctionalRun::expected. Timing, energy, and bits are
     * identical to the streamed path (it *is* the streamed path).
     */
    FunctionalRun runFcFunctional(const wl::Workload &workload,
                                  std::uint64_t seed = 1) const;

    /**
     * Sensing operations per result row for Flash-Cosmos, given the
     * batch shape (exposed for tests and the ablation benches).
     * @param max_wordlines  intra-block MWS width (string length)
     * @param max_strings    strings per command (inter-block cap)
     */
    static std::uint64_t fcSensesPerRow(std::uint64_t and_operands,
                                        std::uint64_t or_operands,
                                        std::uint32_t max_wordlines,
                                        std::uint32_t max_strings);

  private:
    ssd::SsdConfig cfg_;
    host::HostConfig host_cfg_;
    RunnerMode mode_;
};

} // namespace fcos::plat

#endif // FCOS_PLATFORMS_RUNNER_H
