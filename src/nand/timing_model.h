/**
 * @file
 * Fine-grained MWS latency model calibrated to the paper's real-device
 * measurements (Figures 12 and 13).
 *
 * The paper measures tMWS, the minimum latency for a *reliable* MWS
 * operation (zero bit errors across all tested blocks), as a multiple of
 * the regular SLC read latency tR:
 *
 *  - Intra-block MWS (Fig. 12): reading n wordlines of one NAND string
 *    raises the string resistance because the n target wordlines are
 *    biased at V_REF instead of V_PASS. Measured: <1% extra latency for
 *    n <= 8, +3.3% for n = 48.
 *
 *  - Inter-block MWS (Fig. 13): activating m blocks multiplies the
 *    wordline-precharge load. The extra WL-precharge time hides under
 *    the BL-precharge time until m = 8, then grows roughly linearly:
 *    +36.3% at m = 32.
 *
 * Both effects are fit with smooth monotone curves anchored exactly on
 * the quoted data points; the constants below are named after their
 * anchors.
 */

#ifndef FCOS_NAND_TIMING_MODEL_H
#define FCOS_NAND_TIMING_MODEL_H

#include <cstdint>

#include "nand/config.h"
#include "util/units.h"

namespace fcos::nand {

class TimingModel
{
  public:
    explicit TimingModel(Timings timings = Timings{})
        : timings_(timings)
    {}

    const Timings &timings() const { return timings_; }

    /**
     * Latency multiplier (relative to tR) for an intra-block MWS that
     * senses @p wordlines wordlines of a single NAND string.
     * Fig. 12: f(1)=1.000, f(8)~1.008, f(48)=1.033.
     */
    static double intraBlockFactor(std::uint32_t wordlines);

    /**
     * Latency multiplier for an inter-block MWS activating @p blocks
     * blocks (one or more wordlines each).
     * Fig. 13: f(1)=1.000, f(8)=1.033, f(32)=1.363.
     */
    static double interBlockFactor(std::uint32_t blocks);

    /**
     * Latency of a reliable MWS operation sensing @p blocks strings with
     * at most @p max_wordlines_per_string target wordlines each. The
     * slower of the two mechanisms dominates.
     */
    Time mwsLatency(std::uint32_t max_wordlines_per_string,
                    std::uint32_t blocks) const;

    /**
     * The fixed command latency the SSD uses when the inter-block count
     * is capped at 4 (Table 1: tMWS = 25 us): a single conservative
     * value covering every legal MWS shape, as Section 5.2 concludes.
     */
    Time mwsLatencyFixed() const { return timings_.tMwsFixed; }

  private:
    // Fig. 12 anchors: 1 + kIntraCoeff * (n-1)^kIntraExp.
    static constexpr double kIntraCoeff = 0.0018809;
    static constexpr double kIntraExp = 0.744;

    // Fig. 13 anchors: below the hide threshold the WL-precharge grows
    // inside the BL-precharge shadow; beyond it, linearly.
    static constexpr std::uint32_t kInterHideBlocks = 8;
    static constexpr double kInterHiddenCoeff = 0.033 / 3.895; // ^0.7 fit
    static constexpr double kInterHiddenExp = 0.7;
    static constexpr double kInterLinearPerBlock = 0.01375;

    Timings timings_;
};

} // namespace fcos::nand

#endif // FCOS_NAND_TIMING_MODEL_H
