/**
 * @file
 * NAND flash geometry and physical addressing (paper Section 2.1).
 *
 * Layout of one chip (die):
 *
 *   die -> planes -> blocks -> sub-blocks -> wordlines
 *
 * A *NAND string* is the serial stack of cells on one bitline within one
 * sub-block; it therefore contains wordlinesPerSubBlock cells. All
 * strings of a plane share the plane's bitlines, so simultaneously
 * activated wordlines behave as:
 *
 *   - AND across wordlines of the same (block, sub-block) — same string;
 *   - OR  across different (block, sub-block) pairs — different strings
 *     on the same bitline (Equation 1 of the paper).
 *
 * The paper refers to a sub-block as a "block" for simplicity; this
 * model keeps both levels explicit because erase operates on the
 * physical block (all sub-blocks) while MWS string semantics follow the
 * sub-block.
 */

#ifndef FCOS_NAND_GEOMETRY_H
#define FCOS_NAND_GEOMETRY_H

#include <cstdint>

#include "util/log.h"

namespace fcos::nand {

struct Geometry
{
    std::uint32_t planesPerDie = 2;
    std::uint32_t blocksPerPlane = 2048;
    std::uint32_t subBlocksPerBlock = 4;
    std::uint32_t wordlinesPerSubBlock = 48;
    std::uint32_t pageBytes = 16 * 1024;

    /** Bits per page (== bitlines in a plane for this model). */
    std::uint64_t pageBits() const
    {
        return static_cast<std::uint64_t>(pageBytes) * 8;
    }

    /** Wordlines (== SLC pages) in a physical block. */
    std::uint32_t wordlinesPerBlock() const
    {
        return subBlocksPerBlock * wordlinesPerSubBlock;
    }

    /** SLC pages per plane. */
    std::uint64_t pagesPerPlane() const
    {
        return static_cast<std::uint64_t>(blocksPerPlane) *
               wordlinesPerBlock();
    }

    /** SLC capacity of a die in bytes. */
    std::uint64_t dieBytesSlc() const
    {
        return static_cast<std::uint64_t>(planesPerDie) * pagesPerPlane() *
               pageBytes;
    }

    /** A geometry small enough for exhaustive functional tests. */
    static Geometry tiny()
    {
        Geometry g;
        g.planesPerDie = 2;
        g.blocksPerPlane = 8;
        g.subBlocksPerBlock = 2;
        g.wordlinesPerSubBlock = 8;
        g.pageBytes = 32;
        return g;
    }

    /** The 48-layer 3D TLC geometry of Table 1 (one die). */
    static Geometry table1()
    {
        return Geometry{};
    }
};

/** Address of one wordline (== one SLC page) within a die. */
struct WordlineAddr
{
    std::uint32_t plane = 0;
    std::uint32_t block = 0;
    std::uint32_t subBlock = 0;
    std::uint32_t wordline = 0;

    bool operator==(const WordlineAddr &o) const = default;

    /** True if @p o lies in the same NAND string set (same sub-block). */
    bool sameString(const WordlineAddr &o) const
    {
        return plane == o.plane && block == o.block &&
               subBlock == o.subBlock;
    }
};

/** Validate @p a against @p g; panics on violation (library bug). */
inline void
checkAddr(const Geometry &g, const WordlineAddr &a)
{
    fcos_assert(a.plane < g.planesPerDie, "plane %u out of range", a.plane);
    fcos_assert(a.block < g.blocksPerPlane, "block %u out of range",
                a.block);
    fcos_assert(a.subBlock < g.subBlocksPerBlock, "sub-block %u", a.subBlock);
    fcos_assert(a.wordline < g.wordlinesPerSubBlock, "wordline %u",
                a.wordline);
}

/** Dense index of a wordline within its plane. */
inline std::uint64_t
wordlineIndex(const Geometry &g, const WordlineAddr &a)
{
    return (static_cast<std::uint64_t>(a.block) * g.subBlocksPerBlock +
            a.subBlock) *
               g.wordlinesPerSubBlock +
           a.wordline;
}

} // namespace fcos::nand

#endif // FCOS_NAND_GEOMETRY_H
