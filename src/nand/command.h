/**
 * @file
 * Flash-Cosmos NAND command set (paper Section 6.2, Figure 15).
 *
 * Three new commands extend the regular read/program interface:
 *
 *  - MWS: [opcode][ISCM][addr-slot]([CONT][addr-slot])*[CONF]
 *    ISCM packs four flags — (i) inverse-read mode, (ii) S-latch
 *    initialization, (iii) C-latch initialization, (iv) S->C transfer.
 *    Each address slot carries a block address plus a *page bitmap*
 *    (PBM) selecting the wordlines to activate, instead of a single
 *    page index. Up to four address slots are allowed, matching the
 *    4-block inter-block power cap of Section 5.2.
 *
 *  - ESP: the regular program command plus the ISPP extension factor.
 *
 *  - XOR: C-latch := S-latch XOR C-latch (no operands).
 *
 * The codec below byte-serializes and parses these commands exactly as
 * a flash controller would latch them, so the command-interface design
 * is executable and unit-testable.
 */

#ifndef FCOS_NAND_COMMAND_H
#define FCOS_NAND_COMMAND_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nand/cell_array.h"
#include "nand/config.h"
#include "nand/geometry.h"

namespace fcos::nand {

/** Command opcodes and framing slots. */
enum : std::uint8_t
{
    kOpMws = 0x78,
    kOpEsp = 0x7C,
    kOpXor = 0x7E,
    kSlotCont = 0x7A, ///< another address slot follows
    kSlotConf = 0x7B, ///< end of command sequence
};

/** The four ISCM flags (Figure 15(a)). */
struct IscmFlags
{
    bool inverseRead = false;   ///< (i) inverse-read mode
    bool initSenseLatch = true; ///< (ii) S-latch initialization
    bool initCacheLatch = true; ///< (iii) C-latch initialization
    bool dumpToCache = true;    ///< (iv) transfer S-latch -> C-latch

    std::uint8_t toByte() const;
    static IscmFlags fromByte(std::uint8_t b);

    bool operator==(const IscmFlags &o) const = default;
};

/** Parsed MWS command: one target plane, up to four wordline groups. */
struct MwsCommand
{
    std::uint32_t plane = 0;
    IscmFlags flags;
    std::vector<WlSelection> selections;

    /** Maximum address slots per command (Figure 15). */
    static constexpr std::size_t kMaxSelections = 4;

    bool operator==(const MwsCommand &o) const;
};

/** Parsed ESP program command. */
struct EspCommand
{
    WordlineAddr addr;
    /** ISPP extension quantized in 1% steps of tPROG: 0 => 1.00x,
     *  100 => 2.00x. */
    std::uint8_t extensionCode = 100;

    double espFactor() const { return 1.0 + extensionCode / 100.0; }
    static std::uint8_t encodeFactor(double factor);

    bool operator==(const EspCommand &o) const = default;
};

/** Byte-serialize an MWS command. Validates slot count and masks. */
std::vector<std::uint8_t> encodeMws(const Geometry &geom,
                                    const MwsCommand &cmd);

/** Parse an MWS command; fatal on malformed input (controller bug). */
MwsCommand decodeMws(const Geometry &geom,
                     const std::vector<std::uint8_t> &bytes);

/**
 * Strict non-fatal parse: nullopt (with the reason in @p error) on any
 * byte sequence that is not the canonical encoding of a well-formed
 * command. Beyond the framing checks of decodeMws, this also rejects
 * reserved ISCM bits, empty or beyond-string-length PBMs, and (for
 * ESP) extension codes outside the encodable factor range — so a
 * corrupted frame can never slip through validation and silently
 * execute as some other command (the mutation-fuzz contract).
 */
std::optional<MwsCommand>
tryDecodeMws(const Geometry &geom, const std::vector<std::uint8_t> &bytes,
             std::string *error = nullptr);

/** Strict non-fatal ESP parse (see tryDecodeMws). */
std::optional<EspCommand>
tryDecodeEsp(const Geometry &geom, const std::vector<std::uint8_t> &bytes,
             std::string *error = nullptr);

/** Byte-serialize an ESP command. */
std::vector<std::uint8_t> encodeEsp(const Geometry &geom,
                                    const EspCommand &cmd);

/** Parse an ESP command. */
EspCommand decodeEsp(const Geometry &geom,
                     const std::vector<std::uint8_t> &bytes);

/** The XOR command has no operands: a fixed two-byte sequence. */
std::vector<std::uint8_t> encodeXor();

} // namespace fcos::nand

#endif // FCOS_NAND_COMMAND_H
