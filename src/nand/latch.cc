#include "nand/latch.h"

#include "util/log.h"

namespace fcos::nand {

LatchArray::LatchArray(std::size_t bitlines)
    : sense_(bitlines, false), cache_(bitlines, false)
{
}

void
LatchArray::initSense()
{
    sense_.fill(true);
    sense_initialized_ = true;
}

void
LatchArray::initCache()
{
    cache_.fill(false);
}

void
LatchArray::evaluate(const BitVector &conduction, bool inverse,
                     bool initialized)
{
    fcos_assert(conduction.size() == sense_.size(),
                "conduction width %zu != %zu bitlines", conduction.size(),
                sense_.size());
    if (inverse) {
        // Figure 4: inverse evaluation only works from an initialized
        // latch (the activation order of M1/M2 is swapped during init).
        fcos_assert(initialized && sense_initialized_,
                    "inverse read requires S-latch initialization");
        sense_ = ~conduction;
    } else if (initialized) {
        fcos_assert(sense_initialized_,
                    "evaluate(initialized) without initSense()");
        sense_ = conduction;
    } else {
        // ParaBit AND accumulation: evaluation can only discharge OUT_S.
        sense_ &= conduction;
    }
    sense_initialized_ = false;
}

void
LatchArray::dumpOrMerge()
{
    cache_ |= sense_;
}

void
LatchArray::dumpAndMerge()
{
    cache_ &= sense_;
}

void
LatchArray::dumpCopy()
{
    cache_ = sense_;
}

void
LatchArray::xorSenseIntoCache()
{
    cache_ ^= sense_;
}

} // namespace fcos::nand
