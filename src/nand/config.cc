#include "nand/config.h"

#include "util/log.h"

namespace fcos::nand {

const char *
programModeName(ProgramMode m)
{
    switch (m) {
      case ProgramMode::SlcRegular:
        return "SLC";
      case ProgramMode::SlcEsp:
        return "ESP";
      case ProgramMode::Mlc:
        return "MLC";
      case ProgramMode::Tlc:
        return "TLC";
    }
    return "?";
}

Time
Timings::programLatency(ProgramMode mode) const
{
    switch (mode) {
      case ProgramMode::SlcRegular:
        return tProgSlc;
      case ProgramMode::SlcEsp:
        return tProgEsp;
      case ProgramMode::Mlc:
        return tProgMlc;
      case ProgramMode::Tlc:
        return tProgTlc;
    }
    fcos_panic("unknown program mode");
}

} // namespace fcos::nand
