#include "nand/chip.h"

#include <algorithm>

#include "util/log.h"

namespace fcos::nand {

NandChip::NandChip(const Geometry &geom, const Timings &timings,
                   ErrorInjector *injector, PageStoreKind store)
    : geom_(geom), timing_(timings), cells_(geom, store),
      injector_(injector), plane_seq_(geom.planesPerDie, 0)
{
    latches_.reserve(geom.planesPerDie);
    for (std::uint32_t p = 0; p < geom.planesPerDie; ++p)
        latches_.emplace_back(geom.pageBits());
}

std::uint64_t
NandChip::senseCount(std::uint32_t plane) const
{
    fcos_assert(plane < geom_.planesPerDie, "plane %u out of range", plane);
    return plane_seq_[plane];
}

std::uint64_t
NandChip::nextSenseSeq(std::uint32_t plane)
{
    ++sense_seq_;
    return plane_seq_[plane]++;
}

OpResult
NandChip::eraseBlock(std::uint32_t plane, std::uint32_t block)
{
    cells_.eraseBlock(plane, block);
    Time t = timing_.timings().tErase;
    return {t, PowerModel::energy(PowerModel::kErasePower, t)};
}

OpResult
NandChip::programPage(const WordlineAddr &addr, const BitVector &data,
                      ProgramMode mode, bool randomized)
{
    return programPage(addr, PageImage::dense(data), mode, randomized);
}

OpResult
NandChip::programPage(const WordlineAddr &addr, const PageImage &image,
                      ProgramMode mode, bool randomized)
{
    PageMeta meta;
    meta.mode = mode;
    meta.randomized = randomized;
    meta.espFactor = 1.0;
    cells_.program(addr, image, meta);
    Time t = timing_.timings().programLatency(mode);
    return {t, PowerModel::energy(PowerModel::kProgramPower, t)};
}

OpResult
NandChip::programPageEsp(const WordlineAddr &addr, const BitVector &data,
                         const EspParams &esp)
{
    return programPageEsp(addr, PageImage::dense(data), esp);
}

OpResult
NandChip::programPageEsp(const WordlineAddr &addr, const PageImage &image,
                         const EspParams &esp)
{
    PageMeta meta;
    meta.mode = ProgramMode::SlcEsp;
    meta.randomized = false; // Flash-Cosmos stores operands unrandomized
    meta.espFactor = esp.tEspFactor;
    cells_.program(addr, image, meta);
    Time t = esp.latency(timing_.timings());
    return {t, PowerModel::energy(PowerModel::kProgramPower, t)};
}

OpResult
NandChip::senseCommon(std::uint32_t plane,
                      const std::vector<WlSelection> &selections,
                      const IscmFlags &flags)
{
    fcos_assert(plane < geom_.planesPerDie, "plane %u out of range", plane);
    LatchArray &l = latches_[plane];

    // Precharge step: latch initialization per the ISCM flags.
    if (flags.initSenseLatch)
        l.initSense();
    if (flags.initCacheLatch)
        l.initCache();

    // Evaluation step: simultaneous sensing of all selected wordlines.
    BitVector conduction = cells_.senseConduction(
        plane, selections, injector_, nextSenseSeq(plane));
    l.evaluate(conduction, flags.inverseRead, flags.initSenseLatch);

    if (flags.dumpToCache) {
        // MWS dump: plain copy when the C-latch was initialized,
        // AND-merge accumulation otherwise (Figure 16 semantics).
        if (flags.initCacheLatch)
            l.dumpCopy();
        else
            l.dumpAndMerge();
    }

    std::uint32_t max_wls = 0;
    for (const auto &s : selections)
        max_wls = std::max(max_wls, s.wordlineCount());
    std::uint32_t strings = static_cast<std::uint32_t>(selections.size());

    Time t = timing_.mwsLatency(max_wls, strings);
    double power = PowerModel::mwsPower(max_wls, strings);
    return {t, PowerModel::energy(power, t)};
}

OpResult
NandChip::readPage(const WordlineAddr &addr, bool inverse)
{
    checkAddr(geom_, addr);
    IscmFlags flags;
    flags.inverseRead = inverse;
    WlSelection sel{addr.block, addr.subBlock, 1ULL << addr.wordline};
    return senseCommon(addr.plane, {sel}, flags);
}

OpResult
NandChip::executeMws(const MwsCommand &cmd)
{
    fcos_assert(!cmd.selections.empty(), "MWS without selections");
    // An inverse read cannot accumulate: it requires S-latch init.
    if (cmd.flags.inverseRead) {
        fcos_assert(cmd.flags.initSenseLatch,
                    "inverse MWS requires S-latch initialization");
    }
    return senseCommon(cmd.plane, cmd.selections, cmd.flags);
}

OpResult
NandChip::executeMwsBytes(const std::vector<std::uint8_t> &bytes)
{
    return executeMws(decodeMws(geom_, bytes));
}

OpResult
NandChip::executeXor(std::uint32_t plane)
{
    fcos_assert(plane < geom_.planesPerDie, "plane %u out of range", plane);
    latches_[plane].xorSenseIntoCache();
    // Latch-to-latch movement is orders of magnitude faster than a
    // sense; model it as 1 us of array-logic activity.
    Time t = usToTime(1.0);
    return {t, PowerModel::energy(0.2, t)};
}

OpResult
NandChip::senseParaBit(const WordlineAddr &addr, bool init_sense,
                       bool dump_or)
{
    checkAddr(geom_, addr);
    LatchArray &l = latches_[addr.plane];
    if (init_sense)
        l.initSense();
    WlSelection sel{addr.block, addr.subBlock, 1ULL << addr.wordline};
    BitVector conduction = cells_.senseConduction(
        addr.plane, {sel}, injector_, nextSenseSeq(addr.plane));
    l.evaluate(conduction, false, init_sense);
    if (dump_or)
        l.dumpOrMerge();
    Time t = timing_.timings().tReadSlc;
    return {t, PowerModel::energy(PowerModel::kReadPower, t)};
}

OpResult
NandChip::programFromCache(const WordlineAddr &addr, ProgramMode mode,
                           const EspParams &esp)
{
    checkAddr(geom_, addr);
    const BitVector &data = latches_[addr.plane].cache();
    PageMeta meta;
    meta.mode = mode;
    meta.randomized = false;
    meta.espFactor =
        (mode == ProgramMode::SlcEsp) ? esp.tEspFactor : 1.0;
    cells_.program(addr, data, meta);
    Time t = (mode == ProgramMode::SlcEsp)
                 ? esp.latency(timing_.timings())
                 : timing_.timings().programLatency(mode);
    return {t, PowerModel::energy(PowerModel::kProgramPower, t)};
}

OpResult
NandChip::copyback(const WordlineAddr &src, const WordlineAddr &dst)
{
    checkAddr(geom_, src);
    checkAddr(geom_, dst);
    fcos_assert(src.plane == dst.plane,
                "copyback cannot cross planes (no shared latches)");
    const PageMeta *pm = cells_.pageMeta(src);
    ProgramMode mode = pm ? pm->mode : ProgramMode::SlcRegular;
    EspParams esp{pm ? pm->espFactor : 1.0};

    // Read phase latches the inverse of the stored data...
    OpResult read = readPage(src, true);
    // ...and the program phase writes the latch complement back.
    LatchArray &l = latches_[src.plane];
    BitVector restored = ~l.cache();
    PageMeta meta;
    meta.mode = mode;
    meta.randomized = pm ? pm->randomized : false;
    meta.espFactor = esp.tEspFactor;
    cells_.program(dst, restored, meta);
    Time t_prog = (mode == ProgramMode::SlcEsp)
                      ? esp.latency(timing_.timings())
                      : timing_.timings().programLatency(mode);
    return {read.latency + t_prog,
            read.energyJ +
                PowerModel::energy(PowerModel::kProgramPower, t_prog)};
}

bool
NandChip::eraseVerify(std::uint32_t plane, std::uint32_t block,
                      OpResult *cost)
{
    fcos_assert(plane < geom_.planesPerDie && block < geom_.blocksPerPlane,
                "erase-verify target out of range");
    std::uint64_t all_wls =
        (geom_.wordlinesPerSubBlock >= 64)
            ? ~0ULL
            : (1ULL << geom_.wordlinesPerSubBlock) - 1;
    // The conduction of every string must be all-'1' (all cells
    // erased); any programmed cell blocks its string. Activating all
    // sub-blocks at once would OR across strings and mask a single
    // programmed string, so verify each sub-block's AND separately.
    bool ok = true;
    OpResult total;
    for (std::uint32_t sb = 0; sb < geom_.subBlocksPerBlock; ++sb) {
        MwsCommand per;
        per.plane = plane;
        per.selections.push_back(WlSelection{block, sb, all_wls});
        OpResult r = executeMws(per);
        total.latency += r.latency;
        total.energyJ += r.energyJ;
        ok = ok && dataOut(plane).allOnes();
    }
    if (cost)
        *cost = total;
    return ok;
}

void
NandChip::initCache(std::uint32_t plane)
{
    fcos_assert(plane < geom_.planesPerDie, "plane %u out of range", plane);
    latches_[plane].initCache();
}

void
NandChip::dumpCopy(std::uint32_t plane)
{
    fcos_assert(plane < geom_.planesPerDie, "plane %u out of range", plane);
    latches_[plane].dumpCopy();
}

const BitVector &
NandChip::dataOut(std::uint32_t plane) const
{
    fcos_assert(plane < geom_.planesPerDie, "plane %u out of range", plane);
    return latches_[plane].cache();
}

LatchArray &
NandChip::latches(std::uint32_t plane)
{
    fcos_assert(plane < geom_.planesPerDie, "plane %u out of range", plane);
    return latches_[plane];
}

} // namespace fcos::nand
