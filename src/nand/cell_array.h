/**
 * @file
 * Functional model of one die's cell array.
 *
 * Page payloads live behind the PageStore abstraction (page_store.h):
 * the dense backend materializes every programmed page, the sparse
 * backend keeps generator descriptors and materializes only the pages
 * a sense touches. Either way the array tracks per-block P/E cycle
 * counts and computes the per-bitline *string conduction* of an
 * arbitrary set of simultaneously activated wordlines — the physical
 * primitive behind Multi-Wordline Sensing (Section 4.1):
 *
 *   conduction(bitline) = OR over activated strings of
 *                         (AND over target cells in the string)
 *
 * where a cell contributes '1' when erased (V_TH <= V_REF). Erased
 * wordlines are the AND identity and are never materialized. Error
 * injection is delegated to an ErrorInjector so the functional model
 * stays independent of the reliability model.
 */

#ifndef FCOS_NAND_CELL_ARRAY_H
#define FCOS_NAND_CELL_ARRAY_H

#include <cstdint>
#include <memory>
#include <vector>

#include "nand/config.h"
#include "nand/geometry.h"
#include "nand/page_store.h"
#include "util/bitvector.h"

namespace fcos::nand {

/**
 * Error-injection hook: flips bits of a sensed page in place.
 * Implemented by reliability::VthErrorInjector; a null injector means
 * error-free sensing.
 */
class ErrorInjector
{
  public:
    virtual ~ErrorInjector() = default;

    /**
     * @param bits  sensed page data to corrupt in place
     * @param meta  programming context of the page
     * @param seed  deterministic per-(page, sense) seed
     */
    virtual void inject(BitVector &bits, const PageMeta &meta,
                        std::uint64_t seed) = 0;
};

/**
 * One wordline group inside a single NAND string set: the wordlines of
 * (block, subBlock) selected by @p wlMask are biased at V_REF together.
 */
struct WlSelection
{
    std::uint32_t block = 0;
    std::uint32_t subBlock = 0;
    std::uint64_t wlMask = 0;

    std::uint32_t wordlineCount() const;
};

class CellArray
{
  public:
    explicit CellArray(const Geometry &geom,
                       PageStoreKind store = PageStoreKind::Dense);

    const Geometry &geometry() const { return geom_; }
    PageStoreKind storeKind() const { return store_->kind(); }

    /**
     * Erase a physical block (all sub-blocks): pages revert to the
     * erased (all-'1') state and the block's P/E count increments.
     */
    void eraseBlock(std::uint32_t plane, std::uint32_t block);

    /**
     * Program one page. NAND cannot rewrite a programmed page without
     * an erase; violating that is a user error (fatal).
     */
    void program(const WordlineAddr &addr, const BitVector &data,
                 const PageMeta &meta);

    /** Program from an image descriptor; the sparse backend stores the
     *  descriptor without materializing the payload. */
    void program(const WordlineAddr &addr, PageImage image,
                 const PageMeta &meta);

    bool isProgrammed(const WordlineAddr &addr) const;

    /** Programming context of a programmed page, or nullptr if erased. */
    const PageMeta *pageMeta(const WordlineAddr &addr) const;

    /** Stored payload of a programmed page, materialized (error-free);
     *  fatal if the page is erased. */
    BitVector pageData(const WordlineAddr &addr) const;

    std::uint32_t blockPec(std::uint32_t plane, std::uint32_t block) const;

    /** Artificially raise a block's P/E count (wear stress in tests). */
    void setBlockPec(std::uint32_t plane, std::uint32_t block,
                     std::uint32_t pec);

    /**
     * Stored data of one wordline as the sense amp would see it:
     * erased pages read all-'1'; programmed pages read their payload
     * with @p injector errors applied.
     */
    BitVector effectiveData(const WordlineAddr &addr,
                            ErrorInjector *injector,
                            std::uint64_t read_seq) const;

    /**
     * Per-bitline conduction of the activated wordline set
     * (the MWS primitive). @p selections must be non-empty; every
     * selection must name a distinct string set.
     */
    BitVector senseConduction(std::uint32_t plane,
                              const std::vector<WlSelection> &selections,
                              ErrorInjector *injector,
                              std::uint64_t read_seq) const;

    /** Number of programmed pages (for tests / memory accounting). */
    std::size_t programmedPages() const;

    /** Heap footprint of the stored pages (scale-budget assertions). */
    std::size_t contentBytes() const { return store_->contentBytes(); }

  private:
    std::uint64_t planeKey(std::uint32_t plane, std::uint64_t wl_idx) const
    {
        return static_cast<std::uint64_t>(plane) *
                   geom_.pagesPerPlane() +
               wl_idx;
    }

    Geometry geom_;
    std::unique_ptr<PageStore> store_;
    std::vector<std::uint32_t> block_pec_; // [plane * blocksPerPlane + b]
};

} // namespace fcos::nand

#endif // FCOS_NAND_CELL_ARRAY_H
