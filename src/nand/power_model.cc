#include "nand/power_model.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace fcos::nand {

double
PowerModel::interBlockMwsPower(std::uint32_t blocks)
{
    fcos_assert(blocks >= 1, "MWS needs >= 1 block");
    if (blocks == 1)
        return kReadPower;
    return kReadPower +
           kInterCoeff *
               std::pow(static_cast<double>(blocks - 1), kInterExp);
}

double
PowerModel::intraBlockMwsPower(std::uint32_t wordlines)
{
    fcos_assert(wordlines >= 1, "MWS needs >= 1 wordline");
    double p = kReadPower -
               kIntraSlopePerWl * static_cast<double>(wordlines - 1);
    return std::max(p, 0.5 * kReadPower);
}

double
PowerModel::mwsPower(std::uint32_t wordlines, std::uint32_t blocks)
{
    // The inter-block WL-precharge load dominates; the intra-block
    // V_REF-vs-V_PASS saving applies to the sensed string's wordlines.
    double inter = interBlockMwsPower(blocks);
    double intra_delta =
        kReadPower - intraBlockMwsPower(wordlines);
    return std::max(inter - intra_delta, 0.5 * kReadPower);
}

} // namespace fcos::nand
