/**
 * @file
 * NAND chip power/energy model calibrated to Figure 14 and Section 5.2.
 *
 * All powers are normalized to the average power of a regular page read
 * (= 1.0); an absolute scale converts to watts for energy accounting.
 * Anchors from the paper:
 *
 *  - activating a second block raises power by ~34%;
 *  - four activated blocks cost ~+80% vs. a read, still below erase;
 *  - five blocks exceed erase power (hence the 4-block cap);
 *  - intra-block MWS draws slightly *less* than a read because target
 *    wordlines get V_REF instead of the much higher V_PASS.
 */

#ifndef FCOS_NAND_POWER_MODEL_H
#define FCOS_NAND_POWER_MODEL_H

#include <cstdint>

#include "nand/config.h"
#include "util/units.h"

namespace fcos::nand {

class PowerModel
{
  public:
    /** Normalized average power of a regular page read. */
    static constexpr double kReadPower = 1.0;

    /** Normalized program power (between read and erase). */
    static constexpr double kProgramPower = 1.5;

    /** Normalized erase power; the 4-block MWS budget sits just below. */
    static constexpr double kErasePower = 1.85;

    /** Absolute scale: watts corresponding to normalized power 1.0.
     *  82.5 mW is a typical 3D-NAND read power (25 mA at 3.3 V), giving
     *  ~1.86 uJ per 16-KiB page read. */
    static constexpr double kReadWatts = 0.0825;

    /**
     * Normalized power of an inter-block MWS activating @p blocks
     * blocks. Fig. 14 fit: 1 + 0.34*(m-1)^0.78.
     */
    static double interBlockMwsPower(std::uint32_t blocks);

    /**
     * Normalized power of an intra-block MWS sensing @p wordlines
     * wordlines of one string (slightly below read power).
     */
    static double intraBlockMwsPower(std::uint32_t wordlines);

    /**
     * Normalized power of a combined MWS: @p blocks strings activated,
     * each sensing up to @p wordlines wordlines.
     */
    static double mwsPower(std::uint32_t wordlines, std::uint32_t blocks);

    /** Energy (joules) of an operation with normalized power @p power
     *  lasting @p duration. */
    static double energy(double power, Time duration)
    {
        return power * kReadWatts * timeToSec(duration);
    }

  private:
    // Fig. 14 anchors.
    static constexpr double kInterCoeff = 0.34;
    static constexpr double kInterExp = 0.78;
    static constexpr double kIntraSlopePerWl = 0.0015;
};

} // namespace fcos::nand

#endif // FCOS_NAND_POWER_MODEL_H
