#include "nand/page_store.h"

#include <unordered_map>
#include <unordered_set>

#include "util/log.h"
#include "util/rng.h"

namespace fcos::nand {

const char *
pageStoreName(PageStoreKind kind)
{
    switch (kind) {
      case PageStoreKind::Dense:
        return "dense";
      case PageStoreKind::Sparse:
        return "sparse";
    }
    return "?";
}

PageImage
PageImage::fill(bool ones)
{
    PageImage img;
    img.kind_ = Kind::Fill;
    img.flag_ = ones;
    return img;
}

PageImage
PageImage::random(std::uint64_t seed, double p_one)
{
    PageImage img;
    img.kind_ = Kind::Random;
    img.seed_ = seed;
    img.p_one_ = p_one;
    return img;
}

PageImage
PageImage::checkered(bool first)
{
    PageImage img;
    img.kind_ = Kind::Checkered;
    img.flag_ = first;
    return img;
}

PageImage
PageImage::dense(BitVector bits)
{
    return shared(std::make_shared<const BitVector>(std::move(bits)));
}

PageImage
PageImage::shared(std::shared_ptr<const BitVector> bits)
{
    fcos_assert(bits != nullptr, "dense page image without payload");
    PageImage img;
    img.kind_ = Kind::Dense;
    img.payload_ = std::move(bits);
    return img;
}

PageImage
PageImage::inverted() const
{
    PageImage img = *this;
    img.inverted_ = !img.inverted_;
    return img;
}

BitVector
PageImage::materialize(std::size_t bits) const
{
    BitVector out;
    switch (kind_) {
      case Kind::Fill:
        out = BitVector(bits, flag_);
        break;
      case Kind::Random: {
        Rng rng = Rng::seeded(seed_);
        out = BitVector(bits);
        out.randomize(rng, p_one_);
        break;
      }
      case Kind::Checkered:
        out = BitVector(bits);
        out.fillCheckered(flag_);
        break;
      case Kind::Dense:
        fcos_assert(payload_->size() == bits,
                    "dense page image is %zu bits, page is %zu bits",
                    payload_->size(), bits);
        out = *payload_;
        break;
    }
    if (inverted_)
        out.invert();
    return out;
}

std::size_t
PageImage::heapBytes() const
{
    return payload_ ? payload_->words().capacity() * sizeof(std::uint64_t)
                    : 0;
}

namespace {

/** Per-entry bookkeeping estimate: stored page + key + hash node. */
constexpr std::size_t kEntryBytes =
    sizeof(StoredPage) + sizeof(std::uint64_t) + 4 * sizeof(void *);

/** Map-based store; the backends differ only in how program() treats
 *  procedural images. */
class MapPageStore : public PageStore
{
  public:
    void erase(std::uint64_t key) override { pages_.erase(key); }

    const StoredPage *find(std::uint64_t key) const override
    {
        auto it = pages_.find(key);
        return it == pages_.end() ? nullptr : &it->second;
    }

    std::size_t pageCount() const override { return pages_.size(); }

    std::size_t contentBytes() const override
    {
        std::size_t bytes = pages_.size() * kEntryBytes;
        std::unordered_set<const BitVector *> counted;
        for (const auto &[key, page] : pages_) {
            (void)key;
            const BitVector *id = page.image.payloadId();
            if (id && counted.insert(id).second)
                bytes += page.image.heapBytes();
        }
        return bytes;
    }

  protected:
    std::unordered_map<std::uint64_t, StoredPage> pages_;
};

class DensePageStore final : public MapPageStore
{
  public:
    explicit DensePageStore(std::size_t page_bits) : page_bits_(page_bits)
    {}

    PageStoreKind kind() const override { return PageStoreKind::Dense; }

    void program(std::uint64_t key, PageImage image,
                 const PageMeta &meta) override
    {
        // Materialize eagerly: every page owns a dense payload (the
        // pre-abstraction behaviour, kept as the equivalence baseline).
        if (!image.isDense() || image.payloadId()->size() != page_bits_)
            image = PageImage::dense(image.materialize(page_bits_));
        pages_.emplace(key, StoredPage{std::move(image), meta});
    }

  private:
    std::size_t page_bits_;
};

class SparsePageStore final : public MapPageStore
{
  public:
    PageStoreKind kind() const override { return PageStoreKind::Sparse; }

    void program(std::uint64_t key, PageImage image,
                 const PageMeta &meta) override
    {
        // Keep the descriptor; materialization happens per sense.
        pages_.emplace(key, StoredPage{std::move(image), meta});
    }
};

} // namespace

std::unique_ptr<PageStore>
PageStore::make(PageStoreKind kind, std::size_t page_bits)
{
    if (kind == PageStoreKind::Dense)
        return std::make_unique<DensePageStore>(page_bits);
    return std::make_unique<SparsePageStore>();
}

} // namespace fcos::nand
