/**
 * @file
 * NAND operation modes and timing parameters (paper Table 1, Section 5).
 */

#ifndef FCOS_NAND_CONFIG_H
#define FCOS_NAND_CONFIG_H

#include <cstdint>

#include "util/units.h"

namespace fcos::nand {

/**
 * Cell programming mode. The paper evaluates SLC-mode (1 bit/cell),
 * MLC-mode (2 bits/cell) and the proposed Enhanced SLC-mode Programming
 * (ESP, Section 4.2). TLC is the chips' native mode, used for P/E
 * cycling stress.
 */
enum class ProgramMode : std::uint8_t
{
    SlcRegular, ///< regular SLC-mode programming
    SlcEsp,     ///< Enhanced SLC-mode Programming (Flash-Cosmos)
    Mlc,        ///< 2 bits/cell
    Tlc,        ///< 3 bits/cell (native mode of the evaluated chips)
};

const char *programModeName(ProgramMode m);

/**
 * Timing parameters (Table 1 plus program/erase latencies from
 * Sections 2.1 and 5.1). All values are exact in nanoseconds.
 */
struct Timings
{
    Time tReadSlc = usToTime(22.5);   ///< tR, SLC-mode page read
    Time tProgSlc = usToTime(200.0);  ///< tPROG, regular SLC
    Time tProgMlc = usToTime(500.0);  ///< tPROG, MLC
    Time tProgTlc = usToTime(700.0);  ///< tPROG, TLC
    Time tProgEsp = usToTime(400.0);  ///< tESP (2.0x regular SLC)
    Time tErase = usToTime(3500.0);   ///< tBERS (paper: 3-5 ms)
    Time tMwsFixed = usToTime(25.0);  ///< tMWS with <= 4 blocks (Table 1)

    /** Program latency for @p mode using the fixed tESP. */
    Time programLatency(ProgramMode mode) const;
};

/**
 * ESP knobs (Section 4.2): the ISPP extension is expressed as the ratio
 * tESP / tPROG(SLC) in [1.0, 2.0]. 1.0 degenerates to regular SLC
 * programming; the Table 1 operating point is 2.0 (400 us).
 */
struct EspParams
{
    double tEspFactor = 2.0;

    Time latency(const Timings &t) const
    {
        return static_cast<Time>(static_cast<double>(t.tProgSlc) *
                                 tEspFactor);
    }
};

} // namespace fcos::nand

#endif // FCOS_NAND_CONFIG_H
