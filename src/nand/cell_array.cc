#include "nand/cell_array.h"

#include <bit>

#include "util/log.h"

namespace fcos::nand {

std::uint32_t
WlSelection::wordlineCount() const
{
    return static_cast<std::uint32_t>(std::popcount(wlMask));
}

CellArray::CellArray(const Geometry &geom, PageStoreKind store)
    : geom_(geom), store_(PageStore::make(store, geom.pageBits())),
      block_pec_(static_cast<std::size_t>(geom.planesPerDie) *
                     geom.blocksPerPlane,
                 0)
{
}

void
CellArray::eraseBlock(std::uint32_t plane, std::uint32_t block)
{
    fcos_assert(plane < geom_.planesPerDie && block < geom_.blocksPerPlane,
                "erase target out of range");
    for (std::uint32_t sb = 0; sb < geom_.subBlocksPerBlock; ++sb) {
        for (std::uint32_t wl = 0; wl < geom_.wordlinesPerSubBlock; ++wl) {
            WordlineAddr a{plane, block, sb, wl};
            store_->erase(planeKey(plane, wordlineIndex(geom_, a)));
        }
    }
    ++block_pec_[static_cast<std::size_t>(plane) * geom_.blocksPerPlane +
                 block];
}

void
CellArray::program(const WordlineAddr &addr, const BitVector &data,
                   const PageMeta &meta)
{
    fcos_assert(data.size() == geom_.pageBits(),
                "page data %zu bits, expected %llu", data.size(),
                (unsigned long long)geom_.pageBits());
    program(addr, PageImage::dense(data), meta);
}

void
CellArray::program(const WordlineAddr &addr, PageImage image,
                   const PageMeta &meta)
{
    checkAddr(geom_, addr);
    if (image.isDense()) {
        fcos_assert(image.payloadId()->size() == geom_.pageBits(),
                    "page data %zu bits, expected %llu",
                    image.payloadId()->size(),
                    (unsigned long long)geom_.pageBits());
    }
    std::uint64_t key = planeKey(addr.plane, wordlineIndex(geom_, addr));
    if (store_->find(key)) {
        fcos_fatal("program of already-programmed page "
                   "(plane %u blk %u sb %u wl %u) without erase",
                   addr.plane, addr.block, addr.subBlock, addr.wordline);
    }
    PageMeta m = meta;
    m.pecAtProgram = blockPec(addr.plane, addr.block);
    store_->program(key, std::move(image), m);
}

bool
CellArray::isProgrammed(const WordlineAddr &addr) const
{
    checkAddr(geom_, addr);
    return store_->find(planeKey(addr.plane, wordlineIndex(geom_, addr))) !=
           nullptr;
}

const PageMeta *
CellArray::pageMeta(const WordlineAddr &addr) const
{
    checkAddr(geom_, addr);
    const StoredPage *sp =
        store_->find(planeKey(addr.plane, wordlineIndex(geom_, addr)));
    return sp ? &sp->meta : nullptr;
}

BitVector
CellArray::pageData(const WordlineAddr &addr) const
{
    checkAddr(geom_, addr);
    const StoredPage *sp =
        store_->find(planeKey(addr.plane, wordlineIndex(geom_, addr)));
    fcos_assert(sp != nullptr,
                "pageData of erased page (plane %u blk %u sb %u wl %u)",
                addr.plane, addr.block, addr.subBlock, addr.wordline);
    return sp->image.materialize(geom_.pageBits());
}

std::uint32_t
CellArray::blockPec(std::uint32_t plane, std::uint32_t block) const
{
    fcos_assert(plane < geom_.planesPerDie && block < geom_.blocksPerPlane,
                "PEC query out of range");
    return block_pec_[static_cast<std::size_t>(plane) *
                          geom_.blocksPerPlane +
                      block];
}

void
CellArray::setBlockPec(std::uint32_t plane, std::uint32_t block,
                       std::uint32_t pec)
{
    fcos_assert(plane < geom_.planesPerDie && block < geom_.blocksPerPlane,
                "PEC set out of range");
    block_pec_[static_cast<std::size_t>(plane) * geom_.blocksPerPlane +
               block] = pec;
}

BitVector
CellArray::effectiveData(const WordlineAddr &addr, ErrorInjector *injector,
                         std::uint64_t read_seq) const
{
    checkAddr(geom_, addr);
    std::uint64_t key = planeKey(addr.plane, wordlineIndex(geom_, addr));
    const StoredPage *sp = store_->find(key);
    if (!sp)
        return BitVector(geom_.pageBits(), true); // erased: all '1'
    BitVector bits = sp->image.materialize(geom_.pageBits());
    if (injector) {
        std::uint64_t seed = key * 0x2545F491ULL + read_seq;
        injector->inject(bits, sp->meta, seed);
    }
    return bits;
}

BitVector
CellArray::senseConduction(std::uint32_t plane,
                           const std::vector<WlSelection> &selections,
                           ErrorInjector *injector,
                           std::uint64_t read_seq) const
{
    fcos_assert(!selections.empty(), "MWS with empty selection");
    BitVector result(geom_.pageBits(), false);
    for (const auto &sel : selections) {
        fcos_assert(sel.block < geom_.blocksPerPlane &&
                        sel.subBlock < geom_.subBlocksPerBlock,
                    "selection out of range (blk %u sb %u)", sel.block,
                    sel.subBlock);
        fcos_assert(sel.wlMask != 0, "selection with empty wordline mask");
        fcos_assert(
            geom_.wordlinesPerSubBlock >= 64 ||
                (sel.wlMask >> geom_.wordlinesPerSubBlock) == 0,
            "wordline mask beyond string length");
        // AND across target wordlines of the same string. Erased
        // wordlines sense as all-'1' — the AND identity — so only
        // programmed pages are materialized.
        BitVector string_conduction(geom_.pageBits(), true);
        for (std::uint32_t wl = 0; wl < geom_.wordlinesPerSubBlock; ++wl) {
            if (!(sel.wlMask & (1ULL << wl)))
                continue;
            WordlineAddr a{plane, sel.block, sel.subBlock, wl};
            if (!isProgrammed(a))
                continue;
            string_conduction &= effectiveData(a, injector, read_seq);
        }
        // OR across distinct strings sharing the bitlines.
        result |= string_conduction;
    }
    return result;
}

std::size_t
CellArray::programmedPages() const
{
    return store_->pageCount();
}

} // namespace fcos::nand
