/**
 * @file
 * Per-plane sensing-latch (S-latch) and cache-latch (C-latch) arrays.
 *
 * Semantics follow the paper's circuit descriptions:
 *
 *  - Figure 3 (normal read): after S-latch initialization, the
 *    evaluation step stores the sensed bit ('1' = conducting string).
 *
 *  - Figure 4 (inverse read): swapping the M1/M2 activation order
 *    initializes the latch to the opposite polarity, so evaluation
 *    stores the *inverse* of the sensed bit. An inverse read requires
 *    S-latch initialization (Section 6.2).
 *
 *  - Figure 6(b) (ParaBit AND): sensing *without* re-initializing the
 *    S-latch can only pull OUT_S down, never up, so repeated sensing
 *    accumulates S := S AND N.
 *
 *  - Figure 6(c) (ParaBit OR): the M3 transfer into the C-latch can only
 *    force OUT_L to '1' (never back to '0'), so repeated transfers
 *    accumulate C := C OR S once the C-latch was initialized to '0'.
 *
 *  - Figure 16 (Flash-Cosmos accumulation): a dump with C-latch
 *    initialization disabled accumulates C := C AND S. Rationale: the
 *    latch pair is symmetric — driving the complementary node OUT_L
 *    instead of OUT_L can only force '0', which is exactly the AND
 *    merge; the paper's worked example (Equation 4) requires the two
 *    MWS results to combine conjunctively in both latches. The MWS
 *    command's dump therefore uses the AND path, while the ParaBit OR
 *    sequence keeps using the classic OR path.
 *
 *  - XOR command (Section 6.1): C := S XOR C, using the spare program
 *    latches present in MLC/TLC chips.
 */

#ifndef FCOS_NAND_LATCH_H
#define FCOS_NAND_LATCH_H

#include <cstddef>

#include "util/bitvector.h"

namespace fcos::nand {

class LatchArray
{
  public:
    /** @param bitlines  number of bitlines (== page bits). */
    explicit LatchArray(std::size_t bitlines);

    std::size_t bitlines() const { return sense_.size(); }

    /** Precharge-step S-latch initialization (normal polarity). */
    void initSense();

    /** Precharge-step C-latch initialization (to the OR identity '0'). */
    void initCache();

    /**
     * Evaluation step: latch the sensed conduction pattern.
     *
     * @param conduction  per-bitline string conduction ('1' = discharged
     *                    = all target cells erased / at least one string
     *                    conducting).
     * @param inverse     inverse-read mode (Figure 4). Requires that
     *                    initSense() was called since the last sense.
     * @param initialized whether the S-latch was initialized; when
     *                    false, the evaluation can only pull down, i.e.
     *                    S := S AND conduction (ParaBit AND, Fig. 6(b)).
     */
    void evaluate(const BitVector &conduction, bool inverse,
                  bool initialized);

    /** ParaBit OR transfer (Fig. 6(c)): C := C OR S. */
    void dumpOrMerge();

    /** Flash-Cosmos accumulate transfer (Fig. 16): C := C AND S. */
    void dumpAndMerge();

    /** Plain copy: initialize C then transfer, C := S. */
    void dumpCopy();

    /** On-chip XOR (Section 6.1): C := S XOR C. */
    void xorSenseIntoCache();

    /** Data-out path reads the cache latch. */
    const BitVector &cache() const { return cache_; }

    /** The sensing latch contents (visible for tests/inspection). */
    const BitVector &sense() const { return sense_; }

    /** True if initSense() was called since the last evaluate(). */
    bool senseInitialized() const { return sense_initialized_; }

  private:
    BitVector sense_;
    BitVector cache_;
    bool sense_initialized_ = false;
};

} // namespace fcos::nand

#endif // FCOS_NAND_LATCH_H
