/**
 * @file
 * Page-payload storage backends for the functional cell array.
 *
 * The dense backend materializes every programmed page as a BitVector —
 * exact but O(pageBytes) per page, which caps tests at toy geometries.
 * The sparse backend keeps a *descriptor* per page instead: a page is
 * either absent (erased), a procedural generator (seeded random
 * pattern, constant fill, the Section 5.1 checkered worst case), or a
 * shared dense payload (copy-on-write: broadcast copies reference one
 * buffer). Sensing materializes exactly the pages a command touches,
 * so a Table-1 chip (2048 blocks x 16-KiB pages) with a few thousand
 * programmed pages costs kilobytes, not gigabytes — the prerequisite
 * for running full-geometry drives inside CTest.
 *
 * Materialization is a pure function of the descriptor, so the two
 * backends are bit-for-bit interchangeable: same sensed data, same
 * conduction, same injected-error seeds (certified by
 * tests/nand/page_store_test.cc).
 */

#ifndef FCOS_NAND_PAGE_STORE_H
#define FCOS_NAND_PAGE_STORE_H

#include <cstdint>
#include <memory>

#include "nand/config.h"
#include "util/bitvector.h"

namespace fcos::nand {

/** Programming context of one page, consumed by the error model. */
struct PageMeta
{
    ProgramMode mode = ProgramMode::SlcRegular;
    /** tESP / tPROG(SLC) in [1, 2]; meaningful only for SlcEsp. */
    double espFactor = 1.0;
    /** Whether the stored pattern went through the data randomizer. */
    bool randomized = false;
    /** Block P/E cycle count when the page was programmed. */
    std::uint32_t pecAtProgram = 0;
};

enum class PageStoreKind : std::uint8_t
{
    Dense,  ///< every page a materialized BitVector
    Sparse, ///< descriptors; payloads materialized per sense
};

const char *pageStoreName(PageStoreKind kind);

/**
 * The content of one page: a procedural generator descriptor or a
 * (possibly shared) dense payload. Descriptors may additionally be
 * stored with inverted polarity — the §6.1 De Morgan storage — without
 * materializing the complement.
 */
class PageImage
{
  public:
    enum class Kind : std::uint8_t
    {
        Fill,      ///< every bit == fill value
        Random,    ///< seeded Bernoulli(pOne) pattern
        Checkered, ///< alternating 1,0,1,0,... (Section 5.1 worst case)
        Dense,     ///< explicit payload (shared, copy-on-write)
    };

    /** Default: an all-ones (erased-looking) fill. */
    PageImage() = default;

    static PageImage fill(bool ones);
    static PageImage random(std::uint64_t seed, double p_one = 0.5);
    static PageImage checkered(bool first = true);
    /** Takes ownership of @p bits (one dense payload for this page). */
    static PageImage dense(BitVector bits);
    /** References @p bits without copying (broadcast fan-out shares
     *  one payload across every destination page). */
    static PageImage shared(std::shared_ptr<const BitVector> bits);

    Kind kind() const { return kind_; }
    bool isDense() const { return kind_ == Kind::Dense; }

    /** This image with flipped polarity (descriptor-level NOT). */
    PageImage inverted() const;

    /** Generate the page content at @p bits page width. */
    BitVector materialize(std::size_t bits) const;

    /** Heap bytes held by this image (0 for procedural descriptors). */
    std::size_t heapBytes() const;

    /** Identity of the shared payload (dedup in footprint accounting);
     *  nullptr for procedural images. */
    const BitVector *payloadId() const { return payload_.get(); }

  private:
    Kind kind_ = Kind::Fill;
    bool inverted_ = false;
    bool flag_ = true; ///< Fill: value; Checkered: first bit
    std::uint64_t seed_ = 0;
    double p_one_ = 0.5;
    std::shared_ptr<const BitVector> payload_;
};

/** One programmed page: content plus programming context. */
struct StoredPage
{
    PageImage image;
    PageMeta meta;
};

/**
 * Keyed page container behind CellArray. Keys are the array's flat
 * (plane, wordline) indices; the store is policy only — address
 * checking and NAND program/erase rules stay in CellArray.
 */
class PageStore
{
  public:
    virtual ~PageStore() = default;

    virtual PageStoreKind kind() const = 0;

    /** Store @p image at @p key (caller guarantees the key is free). */
    virtual void program(std::uint64_t key, PageImage image,
                         const PageMeta &meta) = 0;

    /** Drop the page at @p key if present. */
    virtual void erase(std::uint64_t key) = 0;

    /** Stored page at @p key, or nullptr if erased. */
    virtual const StoredPage *find(std::uint64_t key) const = 0;

    virtual std::size_t pageCount() const = 0;

    /**
     * Estimated heap footprint of the stored pages: payload bytes
     * (each shared payload counted once) plus per-entry bookkeeping.
     * The sparse backend's scale contract — a Table-1 chip with
     * sparsely programmed pages stays within a pinned budget — is
     * asserted against this number.
     */
    virtual std::size_t contentBytes() const = 0;

    /** @param page_bits  page width, needed by the dense backend to
     *                    materialize descriptors at program time. */
    static std::unique_ptr<PageStore> make(PageStoreKind kind,
                                           std::size_t page_bits);
};

} // namespace fcos::nand

#endif // FCOS_NAND_PAGE_STORE_H
