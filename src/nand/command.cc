#include "nand/command.h"

#include "util/log.h"

namespace fcos::nand {

std::uint8_t
IscmFlags::toByte() const
{
    return static_cast<std::uint8_t>(
        (inverseRead ? 0x1 : 0) | (initSenseLatch ? 0x2 : 0) |
        (initCacheLatch ? 0x4 : 0) | (dumpToCache ? 0x8 : 0));
}

IscmFlags
IscmFlags::fromByte(std::uint8_t b)
{
    IscmFlags f;
    f.inverseRead = b & 0x1;
    f.initSenseLatch = b & 0x2;
    f.initCacheLatch = b & 0x4;
    f.dumpToCache = b & 0x8;
    return f;
}

bool
MwsCommand::operator==(const MwsCommand &o) const
{
    if (plane != o.plane || !(flags == o.flags) ||
        selections.size() != o.selections.size())
        return false;
    for (std::size_t i = 0; i < selections.size(); ++i) {
        if (selections[i].block != o.selections[i].block ||
            selections[i].subBlock != o.selections[i].subBlock ||
            selections[i].wlMask != o.selections[i].wlMask)
            return false;
    }
    return true;
}

std::uint8_t
EspCommand::encodeFactor(double factor)
{
    fcos_assert(factor >= 1.0 && factor <= 2.55,
                "ESP factor %g outside encodable range", factor);
    return static_cast<std::uint8_t>((factor - 1.0) * 100.0 + 0.5);
}

namespace {

void
pushSelection(std::vector<std::uint8_t> &out, const Geometry &geom,
              std::uint32_t plane, const WlSelection &sel)
{
    fcos_assert(plane < geom.planesPerDie, "plane out of range");
    fcos_assert(sel.block < geom.blocksPerPlane, "block out of range");
    fcos_assert(sel.subBlock < geom.subBlocksPerBlock, "sub out of range");
    fcos_assert(sel.wlMask != 0, "empty PBM");
    fcos_assert(geom.wordlinesPerSubBlock >= 64 ||
                    (sel.wlMask >> geom.wordlinesPerSubBlock) == 0,
                "PBM beyond string length");
    out.push_back(static_cast<std::uint8_t>(plane));
    out.push_back(static_cast<std::uint8_t>(sel.block & 0xFF));
    out.push_back(static_cast<std::uint8_t>((sel.block >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>(sel.subBlock));
    for (int i = 0; i < 6; ++i)
        out.push_back(
            static_cast<std::uint8_t>((sel.wlMask >> (8 * i)) & 0xFF));
}

struct SlotReader
{
    const std::vector<std::uint8_t> &bytes;
    std::size_t pos = 0;

    std::uint8_t next()
    {
        fcos_assert(pos < bytes.size(), "truncated command");
        return bytes[pos++];
    }
};

WlSelection
readSelection(SlotReader &r, const Geometry &geom, std::uint32_t &plane_out)
{
    plane_out = r.next();
    WlSelection sel;
    sel.block = r.next();
    sel.block |= static_cast<std::uint32_t>(r.next()) << 8;
    sel.subBlock = r.next();
    sel.wlMask = 0;
    for (int i = 0; i < 6; ++i)
        sel.wlMask |= static_cast<std::uint64_t>(r.next()) << (8 * i);
    fcos_assert(plane_out < geom.planesPerDie, "decoded plane out of range");
    fcos_assert(sel.block < geom.blocksPerPlane,
                "decoded block out of range");
    fcos_assert(sel.subBlock < geom.subBlocksPerBlock,
                "decoded sub-block out of range");
    return sel;
}

} // namespace

std::vector<std::uint8_t>
encodeMws(const Geometry &geom, const MwsCommand &cmd)
{
    fcos_assert(!cmd.selections.empty(), "MWS without selections");
    fcos_assert(cmd.selections.size() <= MwsCommand::kMaxSelections,
                "MWS with %zu slots exceeds the 4-slot limit",
                cmd.selections.size());
    std::vector<std::uint8_t> out;
    out.push_back(kOpMws);
    out.push_back(cmd.flags.toByte());
    for (std::size_t i = 0; i < cmd.selections.size(); ++i) {
        pushSelection(out, geom, cmd.plane, cmd.selections[i]);
        out.push_back(i + 1 < cmd.selections.size() ? kSlotCont
                                                    : kSlotConf);
    }
    return out;
}

MwsCommand
decodeMws(const Geometry &geom, const std::vector<std::uint8_t> &bytes)
{
    SlotReader r{bytes};
    fcos_assert(r.next() == kOpMws, "not an MWS command");
    MwsCommand cmd;
    cmd.flags = IscmFlags::fromByte(r.next());
    bool more = true;
    bool first = true;
    while (more) {
        std::uint32_t plane = 0;
        WlSelection sel = readSelection(r, geom, plane);
        if (first) {
            cmd.plane = plane;
            first = false;
        } else {
            fcos_assert(plane == cmd.plane,
                        "MWS slots must target one plane");
        }
        cmd.selections.push_back(sel);
        std::uint8_t slot = r.next();
        fcos_assert(slot == kSlotCont || slot == kSlotConf,
                    "bad framing byte 0x%02X", slot);
        more = (slot == kSlotCont);
        fcos_assert(cmd.selections.size() <= MwsCommand::kMaxSelections,
                    "too many MWS slots");
    }
    fcos_assert(r.pos == bytes.size(), "trailing bytes after CONF");
    return cmd;
}

std::vector<std::uint8_t>
encodeEsp(const Geometry &geom, const EspCommand &cmd)
{
    checkAddr(geom, cmd.addr);
    std::vector<std::uint8_t> out;
    out.push_back(kOpEsp);
    out.push_back(cmd.extensionCode);
    out.push_back(static_cast<std::uint8_t>(cmd.addr.plane));
    out.push_back(static_cast<std::uint8_t>(cmd.addr.block & 0xFF));
    out.push_back(static_cast<std::uint8_t>((cmd.addr.block >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>(cmd.addr.subBlock));
    out.push_back(static_cast<std::uint8_t>(cmd.addr.wordline));
    out.push_back(kSlotConf);
    return out;
}

EspCommand
decodeEsp(const Geometry &geom, const std::vector<std::uint8_t> &bytes)
{
    SlotReader r{bytes};
    fcos_assert(r.next() == kOpEsp, "not an ESP command");
    EspCommand cmd;
    cmd.extensionCode = r.next();
    cmd.addr.plane = r.next();
    cmd.addr.block = r.next();
    cmd.addr.block |= static_cast<std::uint32_t>(r.next()) << 8;
    cmd.addr.subBlock = r.next();
    cmd.addr.wordline = r.next();
    fcos_assert(r.next() == kSlotConf, "missing CONF");
    fcos_assert(r.pos == bytes.size(), "trailing bytes after CONF");
    checkAddr(geom, cmd.addr);
    return cmd;
}

std::vector<std::uint8_t>
encodeXor()
{
    return {kOpXor, kSlotConf};
}

} // namespace fcos::nand
