#include "nand/command.h"

#include "util/log.h"

namespace fcos::nand {

std::uint8_t
IscmFlags::toByte() const
{
    return static_cast<std::uint8_t>(
        (inverseRead ? 0x1 : 0) | (initSenseLatch ? 0x2 : 0) |
        (initCacheLatch ? 0x4 : 0) | (dumpToCache ? 0x8 : 0));
}

IscmFlags
IscmFlags::fromByte(std::uint8_t b)
{
    IscmFlags f;
    f.inverseRead = b & 0x1;
    f.initSenseLatch = b & 0x2;
    f.initCacheLatch = b & 0x4;
    f.dumpToCache = b & 0x8;
    return f;
}

bool
MwsCommand::operator==(const MwsCommand &o) const
{
    if (plane != o.plane || !(flags == o.flags) ||
        selections.size() != o.selections.size())
        return false;
    for (std::size_t i = 0; i < selections.size(); ++i) {
        if (selections[i].block != o.selections[i].block ||
            selections[i].subBlock != o.selections[i].subBlock ||
            selections[i].wlMask != o.selections[i].wlMask)
            return false;
    }
    return true;
}

std::uint8_t
EspCommand::encodeFactor(double factor)
{
    fcos_assert(factor >= 1.0 && factor <= 2.55,
                "ESP factor %g outside encodable range", factor);
    return static_cast<std::uint8_t>((factor - 1.0) * 100.0 + 0.5);
}

namespace {

void
pushSelection(std::vector<std::uint8_t> &out, const Geometry &geom,
              std::uint32_t plane, const WlSelection &sel)
{
    fcos_assert(plane < geom.planesPerDie, "plane out of range");
    fcos_assert(sel.block < geom.blocksPerPlane, "block out of range");
    fcos_assert(sel.subBlock < geom.subBlocksPerBlock, "sub out of range");
    fcos_assert(sel.wlMask != 0, "empty PBM");
    fcos_assert(geom.wordlinesPerSubBlock >= 64 ||
                    (sel.wlMask >> geom.wordlinesPerSubBlock) == 0,
                "PBM beyond string length");
    out.push_back(static_cast<std::uint8_t>(plane));
    out.push_back(static_cast<std::uint8_t>(sel.block & 0xFF));
    out.push_back(static_cast<std::uint8_t>((sel.block >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>(sel.subBlock));
    for (int i = 0; i < 6; ++i)
        out.push_back(
            static_cast<std::uint8_t>((sel.wlMask >> (8 * i)) & 0xFF));
}

/** Cursor that records the first failure instead of aborting. */
struct TryReader
{
    const std::vector<std::uint8_t> &bytes;
    std::size_t pos = 0;
    std::string error;

    bool failed() const { return !error.empty(); }

    bool fail(const char *msg)
    {
        if (error.empty())
            error = msg;
        return false;
    }

    bool next(std::uint8_t *out)
    {
        if (failed())
            return false;
        if (pos >= bytes.size())
            return fail("truncated command");
        *out = bytes[pos++];
        return true;
    }
};

bool
readSelection(TryReader &r, const Geometry &geom, WlSelection *sel,
              std::uint32_t *plane_out)
{
    std::uint8_t b = 0;
    if (!r.next(&b))
        return false;
    *plane_out = b;
    std::uint8_t lo = 0, hi = 0;
    if (!r.next(&lo) || !r.next(&hi))
        return false;
    sel->block = lo | (static_cast<std::uint32_t>(hi) << 8);
    if (!r.next(&b))
        return false;
    sel->subBlock = b;
    sel->wlMask = 0;
    for (int i = 0; i < 6; ++i) {
        if (!r.next(&b))
            return false;
        sel->wlMask |= static_cast<std::uint64_t>(b) << (8 * i);
    }
    if (*plane_out >= geom.planesPerDie)
        return r.fail("decoded plane out of range");
    if (sel->block >= geom.blocksPerPlane)
        return r.fail("decoded block out of range");
    if (sel->subBlock >= geom.subBlocksPerBlock)
        return r.fail("decoded sub-block out of range");
    if (sel->wlMask == 0)
        return r.fail("empty PBM");
    if (geom.wordlinesPerSubBlock < 64 &&
        (sel->wlMask >> geom.wordlinesPerSubBlock) != 0)
        return r.fail("PBM beyond string length");
    return true;
}

} // namespace

std::vector<std::uint8_t>
encodeMws(const Geometry &geom, const MwsCommand &cmd)
{
    fcos_assert(!cmd.selections.empty(), "MWS without selections");
    fcos_assert(cmd.selections.size() <= MwsCommand::kMaxSelections,
                "MWS with %zu slots exceeds the 4-slot limit",
                cmd.selections.size());
    std::vector<std::uint8_t> out;
    out.push_back(kOpMws);
    out.push_back(cmd.flags.toByte());
    for (std::size_t i = 0; i < cmd.selections.size(); ++i) {
        pushSelection(out, geom, cmd.plane, cmd.selections[i]);
        out.push_back(i + 1 < cmd.selections.size() ? kSlotCont
                                                    : kSlotConf);
    }
    return out;
}

std::optional<MwsCommand>
tryDecodeMws(const Geometry &geom, const std::vector<std::uint8_t> &bytes,
             std::string *error)
{
    TryReader r{bytes, 0, {}};
    auto reject = [&](const char *msg) -> std::optional<MwsCommand> {
        r.fail(msg);
        if (error)
            *error = r.error;
        return std::nullopt;
    };

    std::uint8_t b = 0;
    if (!r.next(&b))
        return reject("truncated command");
    if (b != kOpMws)
        return reject("not an MWS command");
    if (!r.next(&b))
        return reject("truncated command");
    if (b & 0xF0)
        return reject("reserved ISCM bits set");
    MwsCommand cmd;
    cmd.flags = IscmFlags::fromByte(b);

    bool more = true;
    bool first = true;
    while (more) {
        std::uint32_t plane = 0;
        WlSelection sel;
        if (!readSelection(r, geom, &sel, &plane)) {
            if (error)
                *error = r.error;
            return std::nullopt;
        }
        if (first) {
            cmd.plane = plane;
            first = false;
        } else if (plane != cmd.plane) {
            return reject("MWS slots must target one plane");
        }
        cmd.selections.push_back(sel);
        std::uint8_t slot = 0;
        if (!r.next(&slot))
            return reject("truncated command");
        if (slot != kSlotCont && slot != kSlotConf)
            return reject("bad framing byte");
        more = (slot == kSlotCont);
        if (cmd.selections.size() > MwsCommand::kMaxSelections)
            return reject("too many MWS slots");
    }
    if (r.pos != bytes.size())
        return reject("trailing bytes after CONF");
    return cmd;
}

MwsCommand
decodeMws(const Geometry &geom, const std::vector<std::uint8_t> &bytes)
{
    std::string error;
    std::optional<MwsCommand> cmd = tryDecodeMws(geom, bytes, &error);
    fcos_assert(cmd.has_value(), "%s", error.c_str());
    return *cmd;
}

std::vector<std::uint8_t>
encodeEsp(const Geometry &geom, const EspCommand &cmd)
{
    checkAddr(geom, cmd.addr);
    std::vector<std::uint8_t> out;
    out.push_back(kOpEsp);
    out.push_back(cmd.extensionCode);
    out.push_back(static_cast<std::uint8_t>(cmd.addr.plane));
    out.push_back(static_cast<std::uint8_t>(cmd.addr.block & 0xFF));
    out.push_back(static_cast<std::uint8_t>((cmd.addr.block >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>(cmd.addr.subBlock));
    out.push_back(static_cast<std::uint8_t>(cmd.addr.wordline));
    out.push_back(kSlotConf);
    return out;
}

std::optional<EspCommand>
tryDecodeEsp(const Geometry &geom, const std::vector<std::uint8_t> &bytes,
             std::string *error)
{
    TryReader r{bytes, 0, {}};
    auto reject = [&](const char *msg) -> std::optional<EspCommand> {
        r.fail(msg);
        if (error)
            *error = r.error;
        return std::nullopt;
    };

    std::uint8_t op = 0, ext = 0, plane = 0, blo = 0, bhi = 0, sub = 0,
                 wl = 0, conf = 0;
    if (!r.next(&op) || !r.next(&ext) || !r.next(&plane) ||
        !r.next(&blo) || !r.next(&bhi) || !r.next(&sub) || !r.next(&wl) ||
        !r.next(&conf))
        return reject("truncated command");
    if (op != kOpEsp)
        return reject("not an ESP command");
    if (conf != kSlotConf)
        return reject("missing CONF");
    if (r.pos != bytes.size())
        return reject("trailing bytes after CONF");
    // encodeFactor() covers [1.00, 2.55] in 1% steps.
    if (ext > 155)
        return reject("ESP extension beyond encodable range");
    EspCommand cmd;
    cmd.extensionCode = ext;
    cmd.addr.plane = plane;
    cmd.addr.block = blo | (static_cast<std::uint32_t>(bhi) << 8);
    cmd.addr.subBlock = sub;
    cmd.addr.wordline = wl;
    if (cmd.addr.plane >= geom.planesPerDie ||
        cmd.addr.block >= geom.blocksPerPlane ||
        cmd.addr.subBlock >= geom.subBlocksPerBlock ||
        cmd.addr.wordline >= geom.wordlinesPerSubBlock)
        return reject("decoded address out of range");
    return cmd;
}

EspCommand
decodeEsp(const Geometry &geom, const std::vector<std::uint8_t> &bytes)
{
    std::string error;
    std::optional<EspCommand> cmd = tryDecodeEsp(geom, bytes, &error);
    fcos_assert(cmd.has_value(), "%s", error.c_str());
    return *cmd;
}

std::vector<std::uint8_t>
encodeXor()
{
    return {kOpXor, kSlotConf};
}

} // namespace fcos::nand
