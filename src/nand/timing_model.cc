#include "nand/timing_model.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace fcos::nand {

double
TimingModel::intraBlockFactor(std::uint32_t wordlines)
{
    fcos_assert(wordlines >= 1, "intra-block MWS needs >= 1 wordline");
    if (wordlines == 1)
        return 1.0;
    return 1.0 +
           kIntraCoeff * std::pow(static_cast<double>(wordlines - 1),
                                  kIntraExp);
}

double
TimingModel::interBlockFactor(std::uint32_t blocks)
{
    fcos_assert(blocks >= 1, "inter-block MWS needs >= 1 block");
    if (blocks == 1)
        return 1.0;
    if (blocks <= kInterHideBlocks) {
        return 1.0 +
               kInterHiddenCoeff *
                   std::pow(static_cast<double>(blocks - 1),
                            kInterHiddenExp);
    }
    double at_threshold =
        1.0 + kInterHiddenCoeff *
                  std::pow(static_cast<double>(kInterHideBlocks - 1),
                           kInterHiddenExp);
    return at_threshold +
           kInterLinearPerBlock *
               static_cast<double>(blocks - kInterHideBlocks);
}

Time
TimingModel::mwsLatency(std::uint32_t max_wordlines_per_string,
                        std::uint32_t blocks) const
{
    double factor = std::max(intraBlockFactor(max_wordlines_per_string),
                             interBlockFactor(blocks));
    return static_cast<Time>(static_cast<double>(timings_.tReadSlc) *
                                 factor +
                             0.5);
}

} // namespace fcos::nand
