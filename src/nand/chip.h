/**
 * @file
 * Functional + timing + power model of one NAND flash die.
 *
 * The chip executes the regular command set (read / program / erase)
 * and the three Flash-Cosmos commands (MWS / ESP / XOR) against the
 * cell array, drives the per-plane latch arrays, and reports the
 * latency and energy of every operation from the calibrated timing and
 * power models.
 *
 * Two dump paths exist from the sensing latch to the cache latch (see
 * latch.h): the legacy cache-read path (OR-merge, used by ParaBit's OR
 * flow) and the MWS command's accumulate path (copy when C-init is on,
 * AND-merge when off, per the Figure 16 semantics).
 */

#ifndef FCOS_NAND_CHIP_H
#define FCOS_NAND_CHIP_H

#include <cstdint>
#include <vector>

#include "nand/cell_array.h"
#include "nand/command.h"
#include "nand/config.h"
#include "nand/geometry.h"
#include "nand/latch.h"
#include "nand/power_model.h"
#include "nand/timing_model.h"
#include "util/bitvector.h"

namespace fcos::nand {

/** Latency and energy of one chip operation. */
struct OpResult
{
    Time latency = 0;
    double energyJ = 0.0;
};

class NandChip
{
  public:
    /**
     * @param geom      die geometry
     * @param timings   latency parameters
     * @param injector  optional error model (nullptr = error-free)
     * @param store     page-payload backend (see nand/page_store.h);
     *                  the sparse backend makes Table-1 geometries
     *                  cheap to instantiate
     */
    NandChip(const Geometry &geom, const Timings &timings = Timings{},
             ErrorInjector *injector = nullptr,
             PageStoreKind store = PageStoreKind::Dense);

    const Geometry &geometry() const { return geom_; }
    const TimingModel &timingModel() const { return timing_; }
    CellArray &cells() { return cells_; }
    const CellArray &cells() const { return cells_; }

    /** Replace the error model (tests switch between models). */
    void setErrorInjector(ErrorInjector *injector) { injector_ = injector; }

    /** Erase a physical block. */
    OpResult eraseBlock(std::uint32_t plane, std::uint32_t block);

    /**
     * Program one SLC page.
     * @param randomized  marks that the payload passed the randomizer
     *                    (affects the error model's pattern factor).
     */
    OpResult programPage(const WordlineAddr &addr, const BitVector &data,
                         ProgramMode mode = ProgramMode::SlcRegular,
                         bool randomized = false);

    /** Program from an image descriptor (procedural or shared payload);
     *  with the sparse store no page payload is materialized. */
    OpResult programPage(const WordlineAddr &addr, const PageImage &image,
                         ProgramMode mode = ProgramMode::SlcRegular,
                         bool randomized = false);

    /** Program one page with Enhanced SLC-mode Programming. */
    OpResult programPageEsp(const WordlineAddr &addr, const BitVector &data,
                            const EspParams &esp = EspParams{});

    /** ESP-program an image descriptor. */
    OpResult programPageEsp(const WordlineAddr &addr,
                            const PageImage &image,
                            const EspParams &esp = EspParams{});

    /**
     * Regular page read: sense one wordline, copy to the cache latch.
     * @param inverse  inverse-read mode (returns NOT of the data).
     */
    OpResult readPage(const WordlineAddr &addr, bool inverse = false);

    /**
     * Execute a parsed MWS command (Section 6.2): senses all selected
     * wordlines simultaneously and updates the latches per the ISCM
     * flags. Latency comes from the fine-grained model (Figs. 12/13).
     */
    OpResult executeMws(const MwsCommand &cmd);

    /** Execute an encoded MWS command byte sequence. */
    OpResult executeMwsBytes(const std::vector<std::uint8_t> &bytes);

    /** Execute the XOR command on @p plane: C := S XOR C. */
    OpResult executeXor(std::uint32_t plane);

    /**
     * ParaBit-style sensing (Figure 6): a *regular* single-wordline
     * sense with explicit latch control. @p init_sense false gives the
     * S := S AND N accumulation; @p dump_or true OR-merges into the
     * cache latch after evaluation.
     */
    OpResult senseParaBit(const WordlineAddr &addr, bool init_sense,
                          bool dump_or);

    /**
     * Program the cache latch contents into @p addr without any
     * off-chip transfer (the write half of the copyback path; also
     * how in-flash computed results persist for later operations).
     */
    OpResult programFromCache(const WordlineAddr &addr,
                              ProgramMode mode = ProgramMode::SlcEsp,
                              const EspParams &esp = EspParams{});

    /**
     * Copyback (Section 2.1, footnote 3): move a page to another
     * location in the same plane without off-chip transfer. The read
     * phase latches the *inverse* of the data; the program phase
     * writes the latch complement back, restoring the original — the
     * reason inverse reads exist in commodity chips.
     */
    OpResult copyback(const WordlineAddr &src, const WordlineAddr &dst);

    /**
     * Erase-verify (Section 4.1): after an erase, the chip senses
     * every wordline of the block simultaneously — an intra-block MWS
     * over the whole string — and checks that all cells conduct. This
     * is the pre-existing chip capability Flash-Cosmos builds on.
     * @return true if the block verifies as erased.
     */
    bool eraseVerify(std::uint32_t plane, std::uint32_t block,
                     OpResult *cost = nullptr);

    /** Initialize the cache latch of @p plane (precharge step). */
    void initCache(std::uint32_t plane);

    /** Move S-latch to C-latch (cache-read transfer), C := S. */
    void dumpCopy(std::uint32_t plane);

    /** Data-out: the cache latch contents of @p plane. */
    const BitVector &dataOut(std::uint32_t plane) const;

    /** Direct latch access for tests. */
    LatchArray &latches(std::uint32_t plane);

    /** Total senses across all planes (campaign bookkeeping). */
    std::uint64_t senseCount() const { return sense_seq_; }

    /** Monotone per-plane sense counter (seeds the error model).
     *  Keeping the counter per plane makes every plane's error
     *  sequence a pure function of that plane's own op order, so
     *  plane-parallel scheduling cannot perturb sensed bits. */
    std::uint64_t senseCount(std::uint32_t plane) const;

  private:
    OpResult senseCommon(std::uint32_t plane,
                         const std::vector<WlSelection> &selections,
                         const IscmFlags &flags);

    /** Advance plane @p plane's sense sequence; returns the seed. */
    std::uint64_t nextSenseSeq(std::uint32_t plane);

    Geometry geom_;
    TimingModel timing_;
    CellArray cells_;
    ErrorInjector *injector_;
    std::vector<LatchArray> latches_;
    std::uint64_t sense_seq_ = 0;
    std::vector<std::uint64_t> plane_seq_;
};

} // namespace fcos::nand

#endif // FCOS_NAND_CHIP_H
