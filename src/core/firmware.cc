#include "core/firmware.h"

#include "nand/power_model.h"
#include "util/log.h"

namespace fcos::core {

ssd::SsdConfig
FcFirmware::mergedConfig(FlashCosmosDrive &drive, ssd::SsdConfig cfg)
{
    cfg.geometry = drive.chip(0).geometry();
    if (cfg.channels * cfg.diesPerChannel != drive.dieCount()) {
        cfg.channels = 1;
        cfg.diesPerChannel = drive.dieCount();
    }
    return cfg;
}

FcFirmware::FcFirmware(FlashCosmosDrive &drive, const ssd::SsdConfig &cfg)
    : drive_(drive), cfg_(mergedConfig(drive, cfg)), sim_(cfg_)
{
}

std::uint32_t
FcFirmware::planeIndex(const ssd::PhysPage &page) const
{
    return page.die * cfg_.geometry.planesPerDie + page.addr.plane;
}

FcFirmware::WriteResult
FcFirmware::fcWrite(const BitVector &data,
                    const FlashCosmosDrive::WriteOptions &opts)
{
    WriteResult result;
    result.id = drive_.fcWrite(data, opts);

    const auto &pages = drive_.vectorPages(result.id);
    Time t_prog = cfg_.timings.tProgEsp;
    double e_prog = nand::PowerModel::energy(
        nand::PowerModel::kProgramPower, t_prog);
    for (const ssd::PhysPage &p : pages) {
        std::uint32_t plane = planeIndex(p);
        std::uint64_t bytes = cfg_.geometry.pageBytes;
        sim_.externalTransfer(bytes, [this, plane, bytes, t_prog,
                                      e_prog] {
            sim_.dmaToDie(plane, bytes, [this, plane, t_prog, e_prog] {
                sim_.planeOp(plane, t_prog, e_prog,
                             ssd::EnergyComponent::NandProgram,
                             [this] {
                                 sim_.noteCompletion(
                                     sim_.queue().now());
                             });
            });
        });
    }
    result.completedAt = sim_.drain();
    return result;
}

FcFirmware::ReadResult
FcFirmware::fcRead(const Expr &expr)
{
    ReadResult result;
    result.data = drive_.fcRead(expr, &result.stats);

    // Charge the timing model with exactly the command stream the
    // functional execution issued: per result page, the chain's NAND
    // time, then the result page over channel + external link.
    fcos_assert(result.stats.resultPages > 0, "no pages read");
    Time per_page_nand = static_cast<Time>(
        result.stats.nandTime / result.stats.resultPages);
    double per_page_energy =
        result.stats.nandEnergyJ /
        static_cast<double>(result.stats.resultPages);

    std::vector<VectorId> leaves = expr.leafIds();
    const auto &pages = drive_.vectorPages(leaves[0]);
    for (const ssd::PhysPage &p : pages) {
        std::uint32_t plane = planeIndex(p);
        std::uint64_t bytes = cfg_.geometry.pageBytes;
        sim_.planeOp(plane, per_page_nand, per_page_energy,
                     ssd::EnergyComponent::NandMws,
                     [this, plane, bytes] {
                         sim_.dmaFromDie(plane, bytes, [this, bytes] {
                             sim_.externalTransfer(bytes, [this] {
                                 sim_.noteCompletion(
                                     sim_.queue().now());
                             });
                         });
                     });
    }
    result.completedAt = sim_.drain();
    return result;
}

} // namespace fcos::core
