#include "core/drive.h"

#include <algorithm>

#include "core/lowering.h"
#include "engine/result_stream.h"
#include "util/log.h"

namespace fcos::core {

namespace {

/** Config-level observability knobs must take effect before the engine
 *  (and its scheduler/queue) is constructed, because components
 *  capture the obs epoch at construction. Runs in cfg_'s initializer,
 *  which precedes engine_'s. */
const FlashCosmosDrive::Config &
applyObsKnobs(const FlashCosmosDrive::Config &cfg)
{
    if (!cfg.traceFile.empty())
        obs::enableTrace(cfg.traceFile);
    if (!cfg.metricsFile.empty())
        obs::enableMetrics(cfg.metricsFile);
    return cfg;
}

engine::FarmConfig
farmConfigFor(const FlashCosmosDrive::Config &cfg)
{
    engine::FarmConfig fc;
    fc.channels = cfg.channels;
    fc.diesPerChannel = cfg.dies;
    fc.geometry = cfg.geometry;
    fc.timings = cfg.timings;
    fc.pageStore = cfg.pageStore;
    fc.io = cfg.io;
    fc.workers = cfg.workers;
    return fc;
}

/** Emit adapter shared by every streamed read path: clamps page @p j
 *  to the vector's @p bits tail and hands it to @p sink. */
engine::OrderedChunkStream::Emit
sinkEmitter(ResultSink &sink, std::uint64_t page_bits,
            std::uint64_t bits)
{
    return [&sink, page_bits, bits](std::uint64_t j, BitVector page) {
        fcos_assert(!page.empty(), "column %llu produced no result",
                    (unsigned long long)j);
        std::uint64_t begin = j * page_bits;
        std::uint64_t len =
            std::min<std::uint64_t>(page_bits, bits - begin);
        sink.consume(ResultChunk{j, begin, len, page});
    };
}

} // namespace

FlashCosmosDrive::FlashCosmosDrive() : FlashCosmosDrive(Config{}) {}

FlashCosmosDrive::FlashCosmosDrive(const Config &cfg)
    : cfg_(applyObsKnobs(cfg)), engine_(farmConfigFor(cfg)),
      ftl_(cfg.channels * cfg.dies, cfg.geometry), planner_(*this)
{
    fcos_assert(cfg.dies > 0, "drive needs at least one die");
    fcos_assert(cfg.channels > 0, "drive needs at least one channel");
    // Reserve one erased wordline per column for the final-NOT trick.
    erased_ref_ = ftl_.allocateStriped(ftl_.columns());
    // Request spans share the scheduler's "drive" trace process.
    const engine::CommandScheduler &sched = engine_.scheduler();
    if (obs::traceLive(sched.traceEpoch())) {
        trace_epoch_ = sched.traceEpoch();
        req_track_ = obs::trace().newTrack(sched.tracePid(), "requests");
    }
    if (obs::metricsOn())
        m_epoch_ = obs::metricsEpoch();
}

void
FlashCosmosDrive::setErrorInjector(nand::ErrorInjector *injector)
{
    engine_.farm().setErrorInjector(injector);
}

const FlashCosmosDrive::VectorInfo &
FlashCosmosDrive::info(VectorId id) const
{
    fcos_assert(id < vectors_.size(), "vector id %u out of range", id);
    return vectors_[id];
}

bool
FlashCosmosDrive::isStoredInverted(VectorId id) const
{
    return info(id).inverted;
}

std::uint64_t
FlashCosmosDrive::stringKey(VectorId id) const
{
    const VectorInfo &v = info(id);
    // Vectors of one group stack wordlines in lockstep; the chain
    // segment (orderInGroup / wordlinesPerSubBlock) identifies the
    // shared sub-block.
    return v.group * 4096 +
           v.orderInGroup / cfg_.geometry.wordlinesPerSubBlock;
}

std::size_t
FlashCosmosDrive::vectorBits(VectorId id) const
{
    return info(id).bits;
}

const std::vector<ssd::PhysPage> &
FlashCosmosDrive::vectorPages(VectorId id) const
{
    return info(id).pages;
}

FlashCosmosDrive::VectorInfo
FlashCosmosDrive::makeVector(std::size_t bits, std::uint64_t group,
                             bool inverted, std::uint64_t pages)
{
    if (group == kAutoGroup)
        group = next_auto_group_++;
    auto &[count, group_pages] = group_info_[group];
    if (count == 0) {
        group_pages = pages;
    } else {
        // Lockstep invariant (see class comment).
        fcos_assert(group_pages == pages,
                    "group %llu vectors must have equal page counts "
                    "(%llu vs %llu)",
                    (unsigned long long)group,
                    (unsigned long long)group_pages,
                    (unsigned long long)pages);
    }
    VectorInfo v;
    v.bits = bits;
    v.inverted = inverted;
    v.group = group;
    v.orderInGroup = count++;
    v.pages = ftl_.allocateInGroup(group, pages);
    return v;
}

void
FlashCosmosDrive::submitPageWrite(const ssd::PhysPage &dst,
                                  nand::PageImage page,
                                  engine::OpStats *stats)
{
    engine::ColumnProgram p;
    p.die = dst.die;
    p.plane = dst.addr.plane;
    p.readOutResult = false;
    engine::ColumnStep st;
    st.kind = engine::StepKind::Program;
    // Program data moves controller -> die over the channel first.
    st.dmaBeforeBytes = cfg_.geometry.pageBytes;
    if (cfg_.defaultMode == nand::ProgramMode::SlcEsp) {
        nand::EspParams esp{cfg_.espFactor};
        st.run = [addr = dst.addr, data = std::move(page),
                  esp](nand::NandChip &chip) {
            return chip.programPageEsp(addr, data, esp);
        };
    } else {
        st.run = [addr = dst.addr, data = std::move(page),
                  mode = cfg_.defaultMode](nand::NandChip &chip) {
            return chip.programPage(addr, data, mode);
        };
    }
    p.steps.push_back(std::move(st));
    engine_.submit(std::move(p), stats);
}

VectorId
FlashCosmosDrive::fcWrite(const BitVector &data, const WriteOptions &opts)
{
    fcos_assert(!data.empty(), "fcWrite of empty vector");
    std::uint64_t page_bits = cfg_.geometry.pageBits();
    std::uint64_t pages =
        (data.size() + page_bits - 1) / page_bits;

    VectorInfo v =
        makeVector(data.size(), opts.group, opts.storeInverted, pages);

    const Time t0 = engine_.now();
    for (std::uint64_t j = 0; j < pages; ++j) {
        std::uint64_t begin = j * page_bits;
        std::uint64_t len =
            std::min<std::uint64_t>(page_bits, data.size() - begin);
        BitVector page(page_bits, false);
        page.paste(0, data.slice(begin, len));
        if (v.inverted)
            page.invert();
        submitPageWrite(v.pages[j], nand::PageImage::dense(std::move(page)),
                        nullptr);
    }
    engine_.drain();
    noteRequest("fcWrite", t0);

    VectorId id = static_cast<VectorId>(vectors_.size());
    vectors_.push_back(std::move(v));
    return id;
}

VectorId
FlashCosmosDrive::fcWritePages(
    const std::function<nand::PageImage(std::uint64_t)> &gen,
    std::uint64_t pages, const WriteOptions &opts)
{
    fcos_assert(gen != nullptr, "fcWritePages without a generator");
    fcos_assert(pages >= 1, "fcWritePages of empty vector");
    VectorInfo v = makeVector(pages * cfg_.geometry.pageBits(), opts.group,
                              opts.storeInverted, pages);
    const Time t0 = engine_.now();
    for (std::uint64_t j = 0; j < pages; ++j) {
        nand::PageImage img = gen(j);
        submitPageWrite(v.pages[j],
                        v.inverted ? img.inverted() : std::move(img),
                        nullptr);
    }
    engine_.drain();
    noteRequest("fcWrite", t0);

    VectorId id = static_cast<VectorId>(vectors_.size());
    vectors_.push_back(std::move(v));
    return id;
}

VectorId
FlashCosmosDrive::fcReplicate(VectorId src, std::uint64_t pages,
                              const WriteOptions &opts, ReadStats *stats)
{
    const VectorInfo &s = info(src);
    fcos_assert(s.pages.size() == 1,
                "fcReplicate source must be a single-page vector");
    fcos_assert(pages >= 1, "fcReplicate needs >= 1 copy");

    // The copies hold the source's *stored* bits, so polarity follows
    // the source; logically the result is the source page tiled.
    VectorInfo v = makeVector(pages * cfg_.geometry.pageBits(),
                              opts.group, s.inverted, pages);
    const ssd::PhysPage src_page = s.pages[0];

    engine::OpStats os;
    Time t0 = engine_.now();
    nand::EspParams esp{cfg_.espFactor};
    // Broadcast fan-out: the source page is sensed exactly once and
    // read out to the controller once; every copy then pays only its
    // own data-in transfer and ESP program, concurrently across dies.
    std::vector<engine::ComputeEngine::BroadcastTarget> targets;
    targets.reserve(pages);
    for (std::uint64_t j = 0; j < pages; ++j)
        targets.push_back({v.pages[j].die, v.pages[j].addr});
    engine_.broadcastPage(src_page.die, src_page.addr, targets, esp, &os);
    engine_.drain();
    mergeStats(stats, os, engine_.now() - t0);
    noteRequest("fcReplicate", t0);

    VectorId id = static_cast<VectorId>(vectors_.size());
    vectors_.push_back(std::move(v));
    return id;
}

MwsPlan
FlashCosmosDrive::planFor(const Expr &expr) const
{
    return planner_.plan(expr);
}

void
FlashCosmosDrive::noteRequest(const char *name, Time t0)
{
    if (obs::traceLive(trace_epoch_)) {
        // Requests execute one at a time, so [t0, now] spans never
        // overlap on the track.
        obs::trace().span(req_track_, name, t0, engine_.now());
    }
    if (obs::metricsLive(m_epoch_)) {
        obs::metrics()
            .histogram(std::string("drive.latency.") + name)
            .record(engine_.now() - t0);
    }
}

void
FlashCosmosDrive::mergeStats(ReadStats *stats, const engine::OpStats &os,
                             Time makespan)
{
    if (!stats)
        return;
    stats->mwsCommands += os.mwsCommands;
    stats->senses += os.senses;
    stats->latchXors += os.latchXors;
    stats->pageReads += os.pageReads;
    stats->nandTime += os.nandTime;
    stats->nandEnergyJ += os.nandEnergyJ;
    stats->makespan += makespan;
}

void
FlashCosmosDrive::columnLocation(const Expr &expr, std::size_t page_index,
                                 std::uint32_t *die,
                                 std::uint32_t *plane) const
{
    std::vector<VectorId> leaves = expr.leafIds();
    fcos_assert(!leaves.empty(), "expression with no leaves");
    const ssd::PhysPage &first = info(leaves[0]).pages[page_index];
    for (VectorId id : leaves) {
        const ssd::PhysPage &p = info(id).pages[page_index];
        fcos_assert(p.die == first.die &&
                        p.addr.plane == first.addr.plane,
                    "operands of one expression must stripe identically");
    }
    *die = first.die;
    *plane = first.addr.plane;
}

engine::ColumnProgram
FlashCosmosDrive::planProgram(const MwsPlan &plan, const Expr &expr,
                              std::size_t page_index) const
{
    std::uint32_t die = 0, plane = 0;
    columnLocation(expr, page_index, &die, &plane);

    engine::ColumnProgram prog;
    prog.die = die;
    prog.plane = plane;

    std::uint32_t column = die * cfg_.geometry.planesPerDie + plane;
    fcos_assert(erased_ref_[column].die == die, "erased ref layout");

    LoweringContext ctx;
    ctx.plane = plane;
    ctx.addrOf = [this, page_index](VectorId id) {
        return info(id).pages[page_index].addr;
    };
    ctx.storedInverted = [this](VectorId id) {
        return info(id).inverted;
    };
    ctx.erasedRef = &erased_ref_[column].addr;

    for (LoweredStep &ls : lowerPlan(plan, ctx)) {
        if (ls.kind == LoweredStep::Kind::LatchXor) {
            prog.steps.push_back(engine::ColumnStep{
                engine::StepKind::LatchXor,
                [plane](nand::NandChip &chip) {
                    return chip.executeXor(plane);
                },
                0, 0});
            continue;
        }
        prog.steps.push_back(engine::ColumnStep{
            engine::StepKind::Sense,
            [cmd = std::move(ls.cmd),
             or_merge = ls.orMergeAfter](nand::NandChip &chip) {
                nand::OpResult r = chip.executeMws(cmd);
                if (or_merge) {
                    // Legacy cache-read OR transfer (Figure 6(c) path).
                    chip.latches(cmd.plane).dumpOrMerge();
                }
                return r;
            },
            0, 0});
    }

    return prog;
}

engine::ColumnProgram
FlashCosmosDrive::fallbackProgram(
    const Expr &expr, std::size_t page_index,
    std::shared_ptr<std::map<VectorId, BitVector>> values) const
{
    std::uint32_t die = 0, plane = 0;
    columnLocation(expr, page_index, &die, &plane);

    engine::ColumnProgram prog;
    prog.die = die;
    prog.plane = plane;
    prog.readOutResult = false;

    // Serial page reads; every page crosses the channel to the
    // controller, which evaluates the expression (after drain).
    // Reads use inverse mode for inverse-stored vectors, recovering
    // logical values directly.
    for (VectorId id : expr.leafIds()) {
        const nand::WordlineAddr &a = info(id).pages[page_index].addr;
        prog.steps.push_back(engine::ColumnStep{
            engine::StepKind::PageRead,
            [a, inv = info(id).inverted, id, values,
             plane](nand::NandChip &chip) {
                nand::OpResult r = chip.readPage(a, inv);
                (*values)[id] = chip.dataOut(plane);
                return r;
            },
            /*dmaAfterBytes=*/cfg_.geometry.pageBytes, 0});
    }
    return prog;
}

std::vector<BitVector>
FlashCosmosDrive::evaluateFallback(const Expr &expr, std::size_t pages,
                                   engine::OpStats *os)
{
    std::vector<std::shared_ptr<std::map<VectorId, BitVector>>> vals;
    vals.reserve(pages);
    for (std::size_t j = 0; j < pages; ++j) {
        vals.push_back(
            std::make_shared<std::map<VectorId, BitVector>>());
        engine_.submit(fallbackProgram(expr, j, vals[j]), os);
    }
    engine_.drain();
    std::vector<BitVector> out;
    out.reserve(pages);
    for (std::size_t j = 0; j < pages; ++j)
        out.push_back(expr.evaluate(
            [&](VectorId id) -> const BitVector & {
                return vals[j]->at(id);
            }));
    return out;
}

void
FlashCosmosDrive::fcRead(const Expr &expr, ResultSink &sink,
                         ReadStats *stats)
{
    std::vector<VectorId> leaves = expr.leafIds();
    fcos_assert(!leaves.empty(), "fcRead of constant expression");
    std::size_t bits = info(leaves[0]).bits;
    std::size_t pages = info(leaves[0]).pages.size();
    for (VectorId id : leaves) {
        fcos_assert(info(id).bits == bits,
                    "fcRead operands must have equal sizes");
        fcos_assert(info(id).pages.size() == pages, "page count mismatch");
    }

    MwsPlan plan = planner_.plan(expr);
    if (stats) {
        stats->planKind = plan.kind;
        stats->planText = plan.toString();
    }
    if (plan.kind == MwsPlan::Kind::Fallback) {
        fcos_warn("fcRead falling back to serial reads: %s",
                  plan.fallbackReason.c_str());
    }

    const std::uint64_t page_bits = cfg_.geometry.pageBits();
    sink.begin(StreamShape{pages, page_bits, bits});
    engine::OpStats os;
    Time t0 = engine_.now();
    std::uint64_t peak = 0;
    engine::OrderedChunkStream::Emit emit =
        sinkEmitter(sink, page_bits, bits);

    if (plan.kind == MwsPlan::Kind::Fallback) {
        // The fallback evaluates controller-side after drain, so it
        // inherently buffers every leaf page; stream the evaluated
        // pages in order and report the dense peak honestly.
        std::vector<BitVector> out = evaluateFallback(expr, pages, &os);
        for (std::size_t j = 0; j < pages; ++j)
            emit(j, std::move(out[j]));
        peak = pages;
    } else {
        engine::OrderedChunkStream stream(pages, emit);
        for (std::size_t j = 0; j < pages; ++j) {
            engine::ColumnProgram prog = planProgram(plan, expr, j);
            prog.resultAtCapture = true;
            prog.onResult = stream.handler(j);
            engine_.submit(std::move(prog), &os);
        }
        engine_.drain();
        fcos_assert(stream.complete(), "streamed fcRead lost pages");
        peak = stream.peakBufferedPages();
    }

    mergeStats(stats, os, engine_.now() - t0);
    noteRequest("fcRead", t0);
    if (stats) {
        stats->resultPages += pages;
        stats->streamChunks += pages;
        stats->streamPeakPages =
            std::max<std::uint64_t>(stats->streamPeakPages, peak);
    }
    sink.end();
}

BitVector
FlashCosmosDrive::fcRead(const Expr &expr, ReadStats *stats)
{
    DenseCollectSink dense;
    fcRead(expr, dense, stats);
    return dense.take();
}

VectorId
FlashCosmosDrive::fcCompute(const Expr &expr, const WriteOptions &opts,
                            ReadStats *stats)
{
    std::vector<VectorId> leaves = expr.leafIds();
    fcos_assert(!leaves.empty(), "fcCompute of constant expression");
    std::size_t bits = info(leaves[0]).bits;
    std::size_t pages = info(leaves[0]).pages.size();
    for (VectorId id : leaves) {
        fcos_assert(info(id).bits == bits,
                    "fcCompute operands must have equal sizes");
        fcos_assert(info(id).pages.size() == pages,
                    "page count mismatch");
    }

    // Inverted storage computes the complement into the latch.
    Expr stored_expr = opts.storeInverted ? Expr::Not(expr) : expr;
    MwsPlan plan = planner_.plan(stored_expr);
    if (stats) {
        stats->planKind = plan.kind;
        stats->planText = plan.toString();
    }

    VectorInfo v = makeVector(bits, opts.group, opts.storeInverted, pages);

    engine::OpStats os;
    Time t0 = engine_.now();
    nand::EspParams esp{cfg_.espFactor};

    if (plan.kind == MwsPlan::Kind::Fallback) {
        // Compute controller-side, then write the pages normally.
        fcos_warn("fcCompute falling back to serial reads: %s",
                  plan.fallbackReason.c_str());
        std::vector<BitVector> out =
            evaluateFallback(stored_expr, pages, &os);
        for (std::size_t j = 0; j < pages; ++j)
            submitPageWrite(v.pages[j],
                            nand::PageImage::dense(std::move(out[j])),
                            &os);
        engine_.drain();
    } else {
        for (std::size_t j = 0; j < pages; ++j) {
            engine::ColumnProgram prog =
                planProgram(plan, stored_expr, j);
            const ssd::PhysPage &dst = v.pages[j];
            // The operands' column and the destination column
            // round-robin identically, so the latch holding the result
            // belongs to the destination's plane.
            fcos_assert(dst.die == prog.die &&
                            dst.addr.plane == prog.plane,
                        "fcCompute destination must share the plane");
            prog.readOutResult = false;
            prog.steps.push_back(engine::ColumnStep{
                engine::StepKind::Program,
                [addr = dst.addr, esp](nand::NandChip &chip) {
                    return chip.programFromCache(
                        addr, nand::ProgramMode::SlcEsp, esp);
                },
                0, 0});
            engine_.submit(std::move(prog), &os);
        }
        engine_.drain();
    }

    mergeStats(stats, os, engine_.now() - t0);
    noteRequest("fcCompute", t0);
    VectorId id = static_cast<VectorId>(vectors_.size());
    vectors_.push_back(std::move(v));
    return id;
}

void
FlashCosmosDrive::readVector(VectorId id, ResultSink &sink,
                             ReadStats *stats)
{
    const VectorInfo &v = info(id);
    const std::uint64_t page_bits = cfg_.geometry.pageBits();
    const std::size_t pages = v.pages.size();
    sink.begin(StreamShape{pages, page_bits, v.bits});
    engine::OpStats os;
    Time t0 = engine_.now();

    engine::OrderedChunkStream stream(
        pages, sinkEmitter(sink, page_bits, v.bits));
    for (std::size_t j = 0; j < pages; ++j) {
        const ssd::PhysPage &p = v.pages[j];
        engine::ColumnProgram prog;
        prog.die = p.die;
        prog.plane = p.addr.plane;
        prog.steps.push_back(engine::ColumnStep{
            engine::StepKind::PageRead,
            [a = p.addr, inv = v.inverted](nand::NandChip &chip) {
                return chip.readPage(a, inv);
            },
            0, 0});
        prog.resultAtCapture = true;
        prog.onResult = stream.handler(j);
        engine_.submit(std::move(prog), &os);
    }
    engine_.drain();
    fcos_assert(stream.complete(), "streamed readVector lost pages");

    mergeStats(stats, os, engine_.now() - t0);
    noteRequest("readVector", t0);
    if (stats) {
        stats->resultPages += pages;
        stats->streamChunks += pages;
        stats->streamPeakPages = std::max<std::uint64_t>(
            stats->streamPeakPages, stream.peakBufferedPages());
    }
    sink.end();
}

BitVector
FlashCosmosDrive::readVector(VectorId id, ReadStats *stats)
{
    DenseCollectSink dense;
    readVector(id, dense, stats);
    return dense.take();
}

} // namespace fcos::core
