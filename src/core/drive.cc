#include "core/drive.h"

#include <algorithm>
#include <map>

#include "core/lowering.h"
#include "engine/result_stream.h"
#include "util/log.h"

namespace fcos::core {

namespace {

/** Config-level observability knobs must take effect before the engine
 *  (and its scheduler/queue) is constructed, because components
 *  capture the obs epoch at construction. Runs in cfg_'s initializer,
 *  which precedes engine_'s. */
const FlashCosmosDrive::Config &
applyObsKnobs(const FlashCosmosDrive::Config &cfg)
{
    if (!cfg.traceFile.empty())
        obs::enableTrace(cfg.traceFile);
    if (!cfg.metricsFile.empty())
        obs::enableMetrics(cfg.metricsFile);
    return cfg;
}

engine::FarmConfig
farmConfigFor(const FlashCosmosDrive::Config &cfg)
{
    engine::FarmConfig fc;
    fc.channels = cfg.channels;
    fc.diesPerChannel = cfg.dies;
    fc.geometry = cfg.geometry;
    fc.timings = cfg.timings;
    fc.pageStore = cfg.pageStore;
    fc.io = cfg.io;
    fc.workers = cfg.workers;
    return fc;
}

engine::RequestQueue::Config
admissionConfigFor(const FlashCosmosDrive::Config &cfg)
{
    engine::RequestQueue::Config rc;
    rc.depth = cfg.admissionDepth;
    rc.weights[static_cast<std::size_t>(engine::RequestClass::Read)] =
        cfg.qosReadWeight;
    rc.weights[static_cast<std::size_t>(engine::RequestClass::Write)] =
        cfg.qosWriteWeight;
    rc.weights[static_cast<std::size_t>(engine::RequestClass::Compute)] =
        cfg.qosComputeWeight;
    return rc;
}

/** Emit adapter shared by every streamed read path: clamps page @p j
 *  to the vector's @p bits tail and hands it to @p sink. */
engine::OrderedChunkStream::Emit
sinkEmitter(ResultSink &sink, std::uint64_t page_bits,
            std::uint64_t bits)
{
    return [&sink, page_bits, bits](std::uint64_t j, BitVector page) {
        fcos_assert(!page.empty(), "column %llu produced no result",
                    (unsigned long long)j);
        std::uint64_t begin = j * page_bits;
        std::uint64_t len =
            std::min<std::uint64_t>(page_bits, bits - begin);
        sink.consume(ResultChunk{j, begin, len, page});
    };
}

/** Per-request state of a streamed (planned) read. */
struct StreamJob
{
    engine::OpStats os;
    std::unique_ptr<engine::OrderedChunkStream> stream;
};

/** Per-request state of a fallback read/compute: captured leaf pages
 *  per column, evaluated controller-side at completion. */
struct FallbackJob
{
    engine::OpStats os;
    std::vector<std::shared_ptr<std::map<VectorId, BitVector>>> vals;
    std::size_t leafReadsLeft = 0;
};

/** Per-request state of write-like ops (stats tallies only). */
struct OpJob
{
    engine::OpStats os;
};

} // namespace

FlashCosmosDrive::FlashCosmosDrive() : FlashCosmosDrive(Config{}) {}

FlashCosmosDrive::FlashCosmosDrive(const Config &cfg)
    : cfg_(applyObsKnobs(cfg)), engine_(farmConfigFor(cfg)),
      rq_(engine_.scheduler(), admissionConfigFor(cfg)),
      ftl_(cfg.channels * cfg.dies, cfg.geometry), planner_(*this)
{
    fcos_assert(cfg.dies > 0, "drive needs at least one die");
    fcos_assert(cfg.channels > 0, "drive needs at least one channel");
    // Reserve one erased wordline per column for the final-NOT trick,
    // pinned so GC never relocates it (it must stay unprogrammed).
    erased_ref_.reserve(ftl_.columns());
    for (ssd::Lpn lpn : ftl_.allocateStriped(ftl_.columns())) {
        ftl_.pin(lpn);
        erased_ref_.push_back(ftl_.physOf(lpn));
    }
    // Request spans share the scheduler's "drive" trace process.
    const engine::CommandScheduler &sched = engine_.scheduler();
    if (obs::traceLive(sched.traceEpoch())) {
        trace_epoch_ = sched.traceEpoch();
        req_track_ = obs::trace().newTrack(sched.tracePid(), "requests");
    }
    if (obs::metricsOn())
        m_epoch_ = obs::metricsEpoch();
}

void
FlashCosmosDrive::setErrorInjector(nand::ErrorInjector *injector)
{
    engine_.farm().setErrorInjector(injector);
}

const FlashCosmosDrive::VectorInfo &
FlashCosmosDrive::info(VectorId id) const
{
    fcos_assert(id < vectors_.size(), "vector id %u out of range", id);
    fcos_assert(vectors_[id].live, "vector %u was trimmed", id);
    return vectors_[id];
}

std::vector<ssd::PhysPage>
FlashCosmosDrive::resolvePages(const std::vector<ssd::Lpn> &lpns) const
{
    std::vector<ssd::PhysPage> pages;
    pages.reserve(lpns.size());
    for (ssd::Lpn lpn : lpns)
        pages.push_back(ftl_.physOf(lpn));
    return pages;
}

VectorId
FlashCosmosDrive::allocVectorId(VectorInfo &&v)
{
    if (!free_ids_.empty()) {
        const VectorId id = free_ids_.back();
        free_ids_.pop_back();
        vectors_[id] = std::move(v);
        return id;
    }
    const VectorId id = static_cast<VectorId>(vectors_.size());
    vectors_.push_back(std::move(v));
    return id;
}

void
FlashCosmosDrive::trimVector(VectorId id)
{
    fcos_assert(id < vectors_.size(), "vector id %u out of range", id);
    VectorInfo &v = vectors_[id];
    fcos_assert(v.live, "double trim of vector %u", id);
    for (ssd::Lpn lpn : v.pages)
        ftl_.free(lpn);
    v.pages.clear();
    v.pages.shrink_to_fit();
    v.bits = 0;
    v.live = false;
    auto it = group_info_.find(v.group);
    fcos_assert(it != group_info_.end(), "vector %u lost its group", id);
    fcos_assert(it->second.live > 0, "group live-count underflow");
    if (--it->second.live == 0) {
        // Last vector of the group gone: release the group's write
        // cursors so its (now hole-ridden) sub-blocks can die and a
        // later reuse of the same group id starts fresh.
        ftl_.dropGroup(v.group);
        group_info_.erase(it);
    }
    free_ids_.push_back(id);
}

bool
FlashCosmosDrive::isStoredInverted(VectorId id) const
{
    return info(id).inverted;
}

std::uint64_t
FlashCosmosDrive::stringKey(VectorId id) const
{
    const VectorInfo &v = info(id);
    // Vectors of one group stack wordlines in lockstep; the chain
    // segment (orderInGroup / wordlinesPerSubBlock) identifies the
    // shared sub-block.
    return v.group * 4096 +
           v.orderInGroup / cfg_.geometry.wordlinesPerSubBlock;
}

std::size_t
FlashCosmosDrive::vectorBits(VectorId id) const
{
    return info(id).bits;
}

std::vector<ssd::PhysPage>
FlashCosmosDrive::vectorPages(VectorId id) const
{
    return resolvePages(info(id).pages);
}

FlashCosmosDrive::VectorInfo
FlashCosmosDrive::makeVector(std::size_t bits, std::uint64_t group,
                             bool inverted, std::uint64_t pages,
                             std::uint32_t home_column)
{
    fcos_assert(home_column < ftl_.columns(),
                "homeColumn %u out of %u columns", home_column,
                ftl_.columns());
    // Recycle capacity before allocating: GC runs as foreground work
    // ahead of the write that needed the room, exactly the blocking
    // collection a real FTL charges the triggering host write.
    maybeCollect();
    if (group == kAutoGroup)
        group = next_auto_group_++;
    GroupInfo &g = group_info_[group];
    if (g.count == 0) {
        g.pages = pages;
        g.homeColumn = home_column;
    } else {
        // Lockstep invariant (see class comment).
        fcos_assert(g.pages == pages,
                    "group %llu vectors must have equal page counts "
                    "(%llu vs %llu)",
                    (unsigned long long)group,
                    (unsigned long long)g.pages,
                    (unsigned long long)pages);
        fcos_assert(g.homeColumn == home_column,
                    "group %llu vectors must share homeColumn "
                    "(%u vs %u)",
                    (unsigned long long)group, g.homeColumn,
                    home_column);
    }
    VectorInfo v;
    v.bits = bits;
    v.inverted = inverted;
    v.live = true;
    v.group = group;
    v.orderInGroup = g.count++;
    ++g.live;
    v.pages = ftl_.allocateInGroup(group, pages, home_column);
    gc_.hostPagesWritten += pages;
    return v;
}

void
FlashCosmosDrive::maybeCollect()
{
    for (std::uint32_t col = 0; col < ftl_.columns(); ++col) {
        while (ftl_.gcNeeded(col)) {
            // The busy set is recomputed per victim: blocks any live
            // request captured physical addresses for must not move,
            // and each submitted GC plan protects its own destination
            // blocks against the next round.
            ssd::Ftl::GcPlan plan;
            if (!ftl_.collect(col, rq_.liveKeys(), &plan))
                break;
            submitGcPlan(plan);
        }
    }
}

void
FlashCosmosDrive::submitGcPlan(const ssd::Ftl::GcPlan &plan)
{
    ++gc_.runs;
    gc_.pageCopies += plan.moves.size();
    ++gc_.blocksErased;

    const std::uint32_t die = plan.column / cfg_.geometry.planesPerDie;
    const std::uint32_t plane = plan.column % cfg_.geometry.planesPerDie;

    // The request writes the victim (erase) and every destination
    // block: host traffic touching the recycled or refilled blocks
    // serializes after this request in arrival order.
    std::vector<std::uint64_t> write_keys;
    write_keys.reserve(plan.moves.size() + 1);
    write_keys.push_back(ssd::Ftl::blockKey(die, plane, plan.block));
    for (const ssd::Ftl::GcMove &m : plan.moves)
        write_keys.push_back(ssd::Ftl::blockKey(m.dst));

    auto moves =
        std::make_shared<std::vector<ssd::Ftl::GcMove>>(plan.moves);
    rq_.submit(
        engine::RequestClass::Write, engine_.now(), {},
        std::move(write_keys),
        [this, moves, die, plane, block = plan.block](RequestId req) {
            // One copyback program per live page, then the erase: all
            // on one plane, so the plane FIFO runs the copies strictly
            // before the erase regardless of admission interleaving.
            for (const ssd::Ftl::GcMove &m : *moves) {
                rq_.addWork(req);
                engine::ColumnProgram p;
                p.die = die;
                p.plane = plane;
                p.readOutResult = false;
                p.onComplete = [this, req] { rq_.workDone(req); };
                p.steps.push_back(engine::ColumnStep{
                    engine::StepKind::Copyback,
                    [src = m.src.addr,
                     dst = m.dst.addr](nand::NandChip &chip) {
                        return chip.copyback(src, dst);
                    },
                    0, 0});
                engine_.submit(std::move(p), nullptr);
            }
            rq_.addWork(req);
            engine::ColumnProgram e;
            e.die = die;
            e.plane = plane;
            e.readOutResult = false;
            e.onComplete = [this, req] { rq_.workDone(req); };
            e.steps.push_back(engine::ColumnStep{
                engine::StepKind::Erase,
                [plane, block](nand::NandChip &chip) {
                    return chip.eraseBlock(plane, block);
                },
                0, 0});
            engine_.submit(std::move(e), nullptr);
        },
        [this](const engine::RequestQueue::Outcome &oc) {
            noteRequest("gc", oc.admitted, oc.completed);
        });
}

std::vector<std::uint64_t>
FlashCosmosDrive::blockKeysOf(
    const std::vector<ssd::PhysPage> &pages) const
{
    std::vector<std::uint64_t> keys;
    keys.reserve(pages.size());
    for (const ssd::PhysPage &p : pages) {
        keys.push_back((std::uint64_t{p.die} << 40) |
                       (std::uint64_t{p.addr.plane} << 32) |
                       p.addr.block);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
}

std::vector<std::uint64_t>
FlashCosmosDrive::readKeysOf(const std::vector<VectorId> &leaves) const
{
    std::vector<std::uint64_t> keys;
    for (VectorId id : leaves) {
        std::vector<std::uint64_t> k =
            blockKeysOf(resolvePages(info(id).pages));
        keys.insert(keys.end(), k.begin(), k.end());
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
}

Time
FlashCosmosDrive::arrivalTime(const RequestOptions &ro) const
{
    return std::max(ro.arrival, engine_.now());
}

void
FlashCosmosDrive::submitPageWrite(const ssd::PhysPage &dst,
                                  nand::PageImage page,
                                  engine::OpStats *stats,
                                  std::function<void()> done)
{
    engine::ColumnProgram p;
    p.die = dst.die;
    p.plane = dst.addr.plane;
    p.readOutResult = false;
    p.onComplete = std::move(done);
    engine::ColumnStep st;
    st.kind = engine::StepKind::Program;
    // Program data moves controller -> die over the channel first.
    st.dmaBeforeBytes = cfg_.geometry.pageBytes;
    if (cfg_.defaultMode == nand::ProgramMode::SlcEsp) {
        nand::EspParams esp{cfg_.espFactor};
        st.run = [addr = dst.addr, data = std::move(page),
                  esp](nand::NandChip &chip) {
            return chip.programPageEsp(addr, data, esp);
        };
    } else {
        st.run = [addr = dst.addr, data = std::move(page),
                  mode = cfg_.defaultMode](nand::NandChip &chip) {
            return chip.programPage(addr, data, mode);
        };
    }
    p.steps.push_back(std::move(st));
    engine_.submit(std::move(p), stats);
}

// --------------------------------------------------------------------------
// Concurrent request API (the sync fc* calls are submit+wait wrappers)
// --------------------------------------------------------------------------

void
FlashCosmosDrive::waitAll()
{
    engine_.drain();
    fcos_assert(rq_.idle(), "waitAll left %zu requests unfinished",
                rq_.pendingCount() + rq_.inFlightCount());
}

Time
FlashCosmosDrive::advanceTo(Time t)
{
    return engine_.scheduler().runUntil(t);
}

FlashCosmosDrive::Submitted
FlashCosmosDrive::submitWrite(const BitVector &data,
                              const WriteOptions &opts,
                              const RequestOptions &ro)
{
    fcos_assert(!data.empty(), "fcWrite of empty vector");
    const std::uint64_t page_bits = cfg_.geometry.pageBits();
    const std::uint64_t pages =
        (data.size() + page_bits - 1) / page_bits;

    if (opts.replaces != kNoVector)
        trimVector(opts.replaces);
    VectorInfo v = makeVector(data.size(), opts.group, opts.storeInverted,
                              pages, opts.homeColumn);

    // The payload is sliced into page images now, at submit: the host
    // hands the data over with the request, so the caller's buffer may
    // die before admission.
    auto images = std::make_shared<std::vector<nand::PageImage>>();
    images->reserve(pages);
    for (std::uint64_t j = 0; j < pages; ++j) {
        std::uint64_t begin = j * page_bits;
        std::uint64_t len =
            std::min<std::uint64_t>(page_bits, data.size() - begin);
        BitVector page(page_bits, false);
        page.paste(0, data.slice(begin, len));
        if (v.inverted)
            page.invert();
        images->push_back(nand::PageImage::dense(std::move(page)));
    }

    std::vector<ssd::PhysPage> page_list = resolvePages(v.pages);
    std::vector<std::uint64_t> write_keys = blockKeysOf(page_list);
    const VectorId id = allocVectorId(std::move(v));

    RequestId rid = rq_.submit(
        engine::RequestClass::Write, arrivalTime(ro), {},
        std::move(write_keys),
        [this, images,
         page_list = std::move(page_list)](RequestId req) {
            for (std::size_t j = 0; j < page_list.size(); ++j) {
                rq_.addWork(req);
                submitPageWrite(page_list[j], std::move((*images)[j]),
                                nullptr,
                                [this, req] { rq_.workDone(req); });
            }
        },
        [this, hook = ro.onOutcome](
            const engine::RequestQueue::Outcome &oc) {
            noteRequest("fcWrite", oc.admitted, oc.completed);
            if (hook)
                hook(oc);
        });
    return Submitted{rid, id};
}

FlashCosmosDrive::Submitted
FlashCosmosDrive::submitWritePages(
    const std::function<nand::PageImage(std::uint64_t)> &gen,
    std::uint64_t pages, const WriteOptions &opts,
    const RequestOptions &ro)
{
    fcos_assert(gen != nullptr, "fcWritePages without a generator");
    fcos_assert(pages >= 1, "fcWritePages of empty vector");
    if (opts.replaces != kNoVector)
        trimVector(opts.replaces);
    VectorInfo v = makeVector(pages * cfg_.geometry.pageBits(), opts.group,
                              opts.storeInverted, pages, opts.homeColumn);

    // Generator runs host-side at submit, in page order (its call
    // sequence is part of the reproducibility contract).
    auto images = std::make_shared<std::vector<nand::PageImage>>();
    images->reserve(pages);
    for (std::uint64_t j = 0; j < pages; ++j) {
        nand::PageImage img = gen(j);
        images->push_back(v.inverted ? img.inverted() : std::move(img));
    }

    std::vector<ssd::PhysPage> page_list = resolvePages(v.pages);
    std::vector<std::uint64_t> write_keys = blockKeysOf(page_list);
    const VectorId id = allocVectorId(std::move(v));

    RequestId rid = rq_.submit(
        engine::RequestClass::Write, arrivalTime(ro), {},
        std::move(write_keys),
        [this, images,
         page_list = std::move(page_list)](RequestId req) {
            for (std::size_t j = 0; j < page_list.size(); ++j) {
                rq_.addWork(req);
                submitPageWrite(page_list[j], std::move((*images)[j]),
                                nullptr,
                                [this, req] { rq_.workDone(req); });
            }
        },
        [this, hook = ro.onOutcome](
            const engine::RequestQueue::Outcome &oc) {
            noteRequest("fcWrite", oc.admitted, oc.completed);
            if (hook)
                hook(oc);
        });
    return Submitted{rid, id};
}

FlashCosmosDrive::Submitted
FlashCosmosDrive::submitReplicate(VectorId src, std::uint64_t pages,
                                  const WriteOptions &opts,
                                  ReadStats *stats,
                                  const RequestOptions &ro)
{
    fcos_assert(info(src).pages.size() == 1,
                "fcReplicate source must be a single-page vector");
    fcos_assert(pages >= 1, "fcReplicate needs >= 1 copy");

    // The copies hold the source's *stored* bits, so polarity follows
    // the source; logically the result is the source page tiled.
    // makeVector may run GC, so the source's physical address is
    // resolved only afterwards (its block is then protected by this
    // request's read key until completion).
    VectorInfo v = makeVector(pages * cfg_.geometry.pageBits(),
                              opts.group, info(src).inverted, pages,
                              opts.homeColumn);
    const ssd::PhysPage src_page = pageAt(info(src), 0);

    // Broadcast fan-out: the source page is sensed exactly once and
    // read out to the controller once; every copy then pays only its
    // own data-in transfer and ESP program, concurrently across dies.
    std::vector<ssd::PhysPage> dst_pages = resolvePages(v.pages);
    std::vector<engine::ComputeEngine::BroadcastTarget> targets;
    targets.reserve(pages);
    for (std::uint64_t j = 0; j < pages; ++j)
        targets.push_back({dst_pages[j].die, dst_pages[j].addr});

    std::vector<std::uint64_t> write_keys = blockKeysOf(dst_pages);
    const VectorId id = allocVectorId(std::move(v));

    auto job = std::make_shared<OpJob>();
    RequestId rid = rq_.submit(
        engine::RequestClass::Write, arrivalTime(ro),
        blockKeysOf({src_page}), std::move(write_keys),
        [this, job, src_page, targets = std::move(targets),
         esp = nand::EspParams{cfg_.espFactor}](RequestId req) {
            for (std::size_t j = 0; j < targets.size(); ++j)
                rq_.addWork(req);
            engine_.broadcastPage(src_page.die, src_page.addr, targets,
                                  esp, &job->os,
                                  [this, req] { rq_.workDone(req); });
        },
        [this, job, stats, hook = ro.onOutcome](
            const engine::RequestQueue::Outcome &oc) {
            mergeStats(stats, job->os, oc.completed - oc.admitted);
            noteRequest("fcReplicate", oc.admitted, oc.completed);
            if (hook)
                hook(oc);
        });
    return Submitted{rid, id};
}

engine::RequestId
FlashCosmosDrive::submitStreamedRead(
    const char *name, std::size_t pages, std::size_t bits,
    std::vector<std::uint64_t> read_keys, ResultSink &sink,
    ReadStats *stats,
    std::function<engine::ColumnProgram(std::size_t)> make_program,
    const RequestOptions &ro)
{
    auto job = std::make_shared<StreamJob>();
    ResultSink *sink_p = &sink;
    const std::uint64_t page_bits = cfg_.geometry.pageBits();
    return rq_.submit(
        engine::RequestClass::Read, arrivalTime(ro),
        std::move(read_keys), {},
        [this, job, sink_p, pages, bits, page_bits,
         make_program = std::move(make_program)](RequestId req) {
            sink_p->begin(StreamShape{pages, page_bits, bits});
            job->stream = std::make_unique<engine::OrderedChunkStream>(
                pages, sinkEmitter(*sink_p, page_bits, bits));
            for (std::size_t j = 0; j < pages; ++j) {
                engine::ColumnProgram prog = make_program(j);
                prog.resultAtCapture = true;
                prog.onResult = job->stream->handler(j);
                prog.onComplete = [this, req] { rq_.workDone(req); };
                rq_.addWork(req);
                engine_.submit(std::move(prog), &job->os);
            }
        },
        [this, job, sink_p, stats, pages, name,
         hook = ro.onOutcome](const engine::RequestQueue::Outcome &oc) {
            fcos_assert(job->stream->complete(),
                        "streamed %s lost pages", name);
            mergeStats(stats, job->os, oc.completed - oc.admitted);
            noteRequest(name, oc.admitted, oc.completed);
            if (stats) {
                stats->resultPages += pages;
                stats->streamChunks += pages;
                stats->streamPeakPages = std::max<std::uint64_t>(
                    stats->streamPeakPages,
                    job->stream->peakBufferedPages());
            }
            sink_p->end();
            if (hook)
                hook(oc);
        });
}

engine::RequestId
FlashCosmosDrive::submitRead(const Expr &expr, ResultSink &sink,
                             ReadStats *stats, const RequestOptions &ro)
{
    std::vector<VectorId> leaves = expr.leafIds();
    fcos_assert(!leaves.empty(), "fcRead of constant expression");
    std::size_t bits = info(leaves[0]).bits;
    std::size_t pages = info(leaves[0]).pages.size();
    for (VectorId id : leaves) {
        fcos_assert(info(id).bits == bits,
                    "fcRead operands must have equal sizes");
        fcos_assert(info(id).pages.size() == pages, "page count mismatch");
    }

    MwsPlan plan = planner_.plan(expr);
    if (stats) {
        stats->planKind = plan.kind;
        stats->planText = plan.toString();
    }

    if (plan.kind != MwsPlan::Kind::Fallback) {
        return submitStreamedRead(
            "fcRead", pages, bits, readKeysOf(leaves), sink, stats,
            [this, plan = std::move(plan), expr](std::size_t j) {
                return planProgram(plan, expr, j);
            },
            ro);
    }

    fcos_warn("fcRead falling back to serial reads: %s",
              plan.fallbackReason.c_str());
    // The fallback reads every leaf page to the controller and
    // evaluates there at completion, so it inherently buffers every
    // leaf page; the evaluated pages stream in order and the dense
    // peak is reported honestly.
    auto job = std::make_shared<FallbackJob>();
    ResultSink *sink_p = &sink;
    const std::uint64_t page_bits = cfg_.geometry.pageBits();
    return rq_.submit(
        engine::RequestClass::Read, arrivalTime(ro), readKeysOf(leaves),
        {},
        [this, job, sink_p, expr, pages, bits,
         page_bits](RequestId req) {
            sink_p->begin(StreamShape{pages, page_bits, bits});
            job->vals.reserve(pages);
            for (std::size_t j = 0; j < pages; ++j) {
                job->vals.push_back(
                    std::make_shared<std::map<VectorId, BitVector>>());
                engine::ColumnProgram prog =
                    fallbackProgram(expr, j, job->vals[j]);
                prog.onComplete = [this, req] { rq_.workDone(req); };
                rq_.addWork(req);
                engine_.submit(std::move(prog), &job->os);
            }
        },
        [this, job, sink_p, expr, stats, pages, bits, page_bits,
         hook = ro.onOutcome](const engine::RequestQueue::Outcome &oc) {
            engine::OrderedChunkStream::Emit emit =
                sinkEmitter(*sink_p, page_bits, bits);
            for (std::size_t j = 0; j < pages; ++j) {
                emit(j, expr.evaluate(
                            [&](VectorId id) -> const BitVector & {
                                return job->vals[j]->at(id);
                            }));
            }
            mergeStats(stats, job->os, oc.completed - oc.admitted);
            noteRequest("fcRead", oc.admitted, oc.completed);
            if (stats) {
                stats->resultPages += pages;
                stats->streamChunks += pages;
                stats->streamPeakPages = std::max<std::uint64_t>(
                    stats->streamPeakPages, pages);
            }
            sink_p->end();
            if (hook)
                hook(oc);
        });
}

engine::RequestId
FlashCosmosDrive::submitReadVector(VectorId id, ResultSink &sink,
                                   ReadStats *stats,
                                   const RequestOptions &ro)
{
    const VectorInfo &v = info(id);
    std::vector<ssd::PhysPage> page_list = resolvePages(v.pages);
    std::vector<std::uint64_t> read_keys = blockKeysOf(page_list);
    return submitStreamedRead(
        "readVector", v.pages.size(), v.bits, std::move(read_keys), sink,
        stats,
        [page_list = std::move(page_list), inv = v.inverted](std::size_t j) {
            const ssd::PhysPage &p = page_list[j];
            engine::ColumnProgram prog;
            prog.die = p.die;
            prog.plane = p.addr.plane;
            prog.steps.push_back(engine::ColumnStep{
                engine::StepKind::PageRead,
                [a = p.addr, inv](nand::NandChip &chip) {
                    return chip.readPage(a, inv);
                },
                0, 0});
            return prog;
        },
        ro);
}

FlashCosmosDrive::Submitted
FlashCosmosDrive::submitCompute(const Expr &expr, const WriteOptions &opts,
                                ReadStats *stats, const RequestOptions &ro)
{
    std::vector<VectorId> leaves = expr.leafIds();
    fcos_assert(!leaves.empty(), "fcCompute of constant expression");
    std::size_t bits = info(leaves[0]).bits;
    std::size_t pages = info(leaves[0]).pages.size();
    for (VectorId id : leaves) {
        fcos_assert(info(id).bits == bits,
                    "fcCompute operands must have equal sizes");
        fcos_assert(info(id).pages.size() == pages,
                    "page count mismatch");
    }

    // Inverted storage computes the complement into the latch.
    Expr stored_expr = opts.storeInverted ? Expr::Not(expr) : expr;
    MwsPlan plan = planner_.plan(stored_expr);
    if (stats) {
        stats->planKind = plan.kind;
        stats->planText = plan.toString();
    }

    if (opts.replaces != kNoVector)
        trimVector(opts.replaces);
    // Keys resolve after makeVector (which may run GC and relocate
    // operands); once submitted, they pin every touched block.
    VectorInfo v = makeVector(bits, opts.group, opts.storeInverted, pages,
                              opts.homeColumn);
    std::vector<ssd::PhysPage> page_list = resolvePages(v.pages);
    std::vector<std::uint64_t> read_keys = readKeysOf(leaves);
    std::vector<std::uint64_t> write_keys = blockKeysOf(page_list);
    const VectorId id = allocVectorId(std::move(v));

    RequestId rid = 0;
    if (plan.kind == MwsPlan::Kind::Fallback) {
        // Compute controller-side, then write the pages normally: the
        // leaf reads are stage one; the instant the last one lands,
        // the continuation evaluates and submits the page programs as
        // stage two (registered before the final workDone, so the
        // request stays open across the stage boundary).
        fcos_warn("fcCompute falling back to serial reads: %s",
                  plan.fallbackReason.c_str());
        auto job = std::make_shared<FallbackJob>();
        rid = rq_.submit(
            engine::RequestClass::Compute, arrivalTime(ro),
            std::move(read_keys), std::move(write_keys),
            [this, job, stored_expr, pages,
             page_list = std::move(page_list)](RequestId req) {
                job->vals.reserve(pages);
                job->leafReadsLeft = pages;
                for (std::size_t j = 0; j < pages; ++j) {
                    job->vals.push_back(std::make_shared<
                                        std::map<VectorId, BitVector>>());
                    engine::ColumnProgram prog =
                        fallbackProgram(stored_expr, j, job->vals[j]);
                    prog.onComplete = [this, req, job, stored_expr,
                                       page_list] {
                        if (--job->leafReadsLeft == 0) {
                            for (std::size_t k = 0;
                                 k < page_list.size(); ++k) {
                                BitVector out = stored_expr.evaluate(
                                    [&](VectorId vid)
                                        -> const BitVector & {
                                        return job->vals[k]->at(vid);
                                    });
                                rq_.addWork(req);
                                submitPageWrite(
                                    page_list[k],
                                    nand::PageImage::dense(
                                        std::move(out)),
                                    &job->os, [this, req] {
                                        rq_.workDone(req);
                                    });
                            }
                        }
                        rq_.workDone(req);
                    };
                    rq_.addWork(req);
                    engine_.submit(std::move(prog), &job->os);
                }
            },
            [this, job, stats, hook = ro.onOutcome](
                const engine::RequestQueue::Outcome &oc) {
                mergeStats(stats, job->os, oc.completed - oc.admitted);
                noteRequest("fcCompute", oc.admitted, oc.completed);
                if (hook)
                    hook(oc);
            });
        return Submitted{rid, id};
    }

    auto job = std::make_shared<OpJob>();
    rid = rq_.submit(
        engine::RequestClass::Compute, arrivalTime(ro),
        std::move(read_keys), std::move(write_keys),
        [this, job, plan = std::move(plan), stored_expr, pages,
         page_list = std::move(page_list),
         esp = nand::EspParams{cfg_.espFactor}](RequestId req) {
            for (std::size_t j = 0; j < pages; ++j) {
                engine::ColumnProgram prog =
                    planProgram(plan, stored_expr, j);
                const ssd::PhysPage &dst = page_list[j];
                // The operands' column and the destination column
                // round-robin identically, so the latch holding the
                // result belongs to the destination's plane.
                fcos_assert(dst.die == prog.die &&
                                dst.addr.plane == prog.plane,
                            "fcCompute destination must share the plane");
                prog.readOutResult = false;
                prog.steps.push_back(engine::ColumnStep{
                    engine::StepKind::Program,
                    [addr = dst.addr, esp](nand::NandChip &chip) {
                        return chip.programFromCache(
                            addr, nand::ProgramMode::SlcEsp, esp);
                    },
                    0, 0});
                prog.onComplete = [this, req] { rq_.workDone(req); };
                rq_.addWork(req);
                engine_.submit(std::move(prog), &job->os);
            }
        },
        [this, job, stats, hook = ro.onOutcome](
            const engine::RequestQueue::Outcome &oc) {
            mergeStats(stats, job->os, oc.completed - oc.admitted);
            noteRequest("fcCompute", oc.admitted, oc.completed);
            if (hook)
                hook(oc);
        });
    return Submitted{rid, id};
}

// --------------------------------------------------------------------------
// Synchronous wrappers
// --------------------------------------------------------------------------

VectorId
FlashCosmosDrive::fcWrite(const BitVector &data, const WriteOptions &opts)
{
    Submitted s = submitWrite(data, opts);
    waitAll();
    return s.vector;
}

VectorId
FlashCosmosDrive::fcWritePages(
    const std::function<nand::PageImage(std::uint64_t)> &gen,
    std::uint64_t pages, const WriteOptions &opts)
{
    Submitted s = submitWritePages(gen, pages, opts);
    waitAll();
    return s.vector;
}

VectorId
FlashCosmosDrive::fcReplicate(VectorId src, std::uint64_t pages,
                              const WriteOptions &opts, ReadStats *stats)
{
    Submitted s = submitReplicate(src, pages, opts, stats);
    waitAll();
    return s.vector;
}

MwsPlan
FlashCosmosDrive::planFor(const Expr &expr) const
{
    return planner_.plan(expr);
}

void
FlashCosmosDrive::fcRead(const Expr &expr, ResultSink &sink,
                         ReadStats *stats)
{
    submitRead(expr, sink, stats);
    waitAll();
}

BitVector
FlashCosmosDrive::fcRead(const Expr &expr, ReadStats *stats)
{
    DenseCollectSink dense;
    fcRead(expr, dense, stats);
    return dense.take();
}

VectorId
FlashCosmosDrive::fcCompute(const Expr &expr, const WriteOptions &opts,
                            ReadStats *stats)
{
    Submitted s = submitCompute(expr, opts, stats);
    waitAll();
    return s.vector;
}

void
FlashCosmosDrive::readVector(VectorId id, ResultSink &sink,
                             ReadStats *stats)
{
    submitReadVector(id, sink, stats);
    waitAll();
}

BitVector
FlashCosmosDrive::readVector(VectorId id, ReadStats *stats)
{
    DenseCollectSink dense;
    readVector(id, dense, stats);
    return dense.take();
}

// --------------------------------------------------------------------------
// Observability and program construction
// --------------------------------------------------------------------------

void
FlashCosmosDrive::noteRequest(const char *name, Time begin, Time end)
{
    if (obs::traceLive(trace_epoch_)) {
        // Serial traffic records B/E spans — byte-identical to the
        // historical one-request-at-a-time trace. A request window
        // overlapping the previous one on the track records as an X
        // overlay instead (Perfetto orders X events by timestamp
        // itself, so completion-order recording is safe).
        if (begin >= req_last_end_)
            obs::trace().span(req_track_, name, begin, end);
        else
            obs::trace().overlay(req_track_, name, begin, end);
        req_last_end_ = std::max(req_last_end_, end);
    }
    if (obs::metricsLive(m_epoch_)) {
        obs::metrics()
            .histogram(std::string("drive.latency.") + name)
            .record(end - begin);
    }
}

void
FlashCosmosDrive::mergeStats(ReadStats *stats, const engine::OpStats &os,
                             Time makespan)
{
    if (!stats)
        return;
    stats->mwsCommands += os.mwsCommands;
    stats->senses += os.senses;
    stats->latchXors += os.latchXors;
    stats->pageReads += os.pageReads;
    stats->nandTime += os.nandTime;
    stats->nandEnergyJ += os.nandEnergyJ;
    stats->makespan += makespan;
}

void
FlashCosmosDrive::columnLocation(const Expr &expr, std::size_t page_index,
                                 std::uint32_t *die,
                                 std::uint32_t *plane) const
{
    std::vector<VectorId> leaves = expr.leafIds();
    fcos_assert(!leaves.empty(), "expression with no leaves");
    const ssd::PhysPage first = pageAt(info(leaves[0]), page_index);
    for (VectorId id : leaves) {
        const ssd::PhysPage p = pageAt(info(id), page_index);
        fcos_assert(p.die == first.die &&
                        p.addr.plane == first.addr.plane,
                    "operands of one expression must stripe identically");
    }
    *die = first.die;
    *plane = first.addr.plane;
}

engine::ColumnProgram
FlashCosmosDrive::planProgram(const MwsPlan &plan, const Expr &expr,
                              std::size_t page_index) const
{
    std::uint32_t die = 0, plane = 0;
    columnLocation(expr, page_index, &die, &plane);

    engine::ColumnProgram prog;
    prog.die = die;
    prog.plane = plane;

    std::uint32_t column = die * cfg_.geometry.planesPerDie + plane;
    fcos_assert(erased_ref_[column].die == die, "erased ref layout");

    LoweringContext ctx;
    ctx.plane = plane;
    ctx.addrOf = [this, page_index](VectorId id) {
        return pageAt(info(id), page_index).addr;
    };
    ctx.storedInverted = [this](VectorId id) {
        return info(id).inverted;
    };
    ctx.erasedRef = &erased_ref_[column].addr;

    for (LoweredStep &ls : lowerPlan(plan, ctx)) {
        if (ls.kind == LoweredStep::Kind::LatchXor) {
            prog.steps.push_back(engine::ColumnStep{
                engine::StepKind::LatchXor,
                [plane](nand::NandChip &chip) {
                    return chip.executeXor(plane);
                },
                0, 0});
            continue;
        }
        prog.steps.push_back(engine::ColumnStep{
            engine::StepKind::Sense,
            [cmd = std::move(ls.cmd),
             or_merge = ls.orMergeAfter](nand::NandChip &chip) {
                nand::OpResult r = chip.executeMws(cmd);
                if (or_merge) {
                    // Legacy cache-read OR transfer (Figure 6(c) path).
                    chip.latches(cmd.plane).dumpOrMerge();
                }
                return r;
            },
            0, 0});
    }

    return prog;
}

engine::ColumnProgram
FlashCosmosDrive::fallbackProgram(
    const Expr &expr, std::size_t page_index,
    std::shared_ptr<std::map<VectorId, BitVector>> values) const
{
    std::uint32_t die = 0, plane = 0;
    columnLocation(expr, page_index, &die, &plane);

    engine::ColumnProgram prog;
    prog.die = die;
    prog.plane = plane;
    prog.readOutResult = false;

    // Serial page reads; every page crosses the channel to the
    // controller, which evaluates the expression at the request's
    // completion. Reads use inverse mode for inverse-stored vectors,
    // recovering logical values directly.
    for (VectorId id : expr.leafIds()) {
        const nand::WordlineAddr a = pageAt(info(id), page_index).addr;
        prog.steps.push_back(engine::ColumnStep{
            engine::StepKind::PageRead,
            [a, inv = info(id).inverted, id, values,
             plane](nand::NandChip &chip) {
                nand::OpResult r = chip.readPage(a, inv);
                (*values)[id] = chip.dataOut(plane);
                return r;
            },
            /*dmaAfterBytes=*/cfg_.geometry.pageBytes, 0});
    }
    return prog;
}

} // namespace fcos::core
