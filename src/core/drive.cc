#include "core/drive.h"

#include <algorithm>
#include <map>

#include "util/log.h"

namespace fcos::core {

FlashCosmosDrive::FlashCosmosDrive() : FlashCosmosDrive(Config{}) {}

FlashCosmosDrive::FlashCosmosDrive(const Config &cfg)
    : cfg_(cfg), ftl_(cfg.dies, cfg.geometry), planner_(*this)
{
    fcos_assert(cfg.dies > 0, "drive needs at least one die");
    chips_.reserve(cfg.dies);
    for (std::uint32_t d = 0; d < cfg.dies; ++d)
        chips_.push_back(
            std::make_unique<nand::NandChip>(cfg.geometry, cfg.timings));
    // Reserve one erased wordline per column for the final-NOT trick.
    erased_ref_ = ftl_.allocateStriped(ftl_.columns());
}

void
FlashCosmosDrive::setErrorInjector(nand::ErrorInjector *injector)
{
    for (auto &c : chips_)
        c->setErrorInjector(injector);
}

nand::NandChip &
FlashCosmosDrive::chip(std::uint32_t die)
{
    fcos_assert(die < chips_.size(), "die %u out of range", die);
    return *chips_[die];
}

const FlashCosmosDrive::VectorInfo &
FlashCosmosDrive::info(VectorId id) const
{
    fcos_assert(id < vectors_.size(), "vector id %u out of range", id);
    return vectors_[id];
}

bool
FlashCosmosDrive::isStoredInverted(VectorId id) const
{
    return info(id).inverted;
}

std::uint64_t
FlashCosmosDrive::stringKey(VectorId id) const
{
    const VectorInfo &v = info(id);
    // Vectors of one group stack wordlines in lockstep; the chain
    // segment (orderInGroup / wordlinesPerSubBlock) identifies the
    // shared sub-block.
    return v.group * 4096 +
           v.orderInGroup / cfg_.geometry.wordlinesPerSubBlock;
}

std::size_t
FlashCosmosDrive::vectorBits(VectorId id) const
{
    return info(id).bits;
}

const std::vector<ssd::PhysPage> &
FlashCosmosDrive::vectorPages(VectorId id) const
{
    return info(id).pages;
}

VectorId
FlashCosmosDrive::fcWrite(const BitVector &data, const WriteOptions &opts)
{
    fcos_assert(!data.empty(), "fcWrite of empty vector");
    std::uint64_t group = opts.group;
    if (group == kAutoGroup)
        group = next_auto_group_++;

    std::uint64_t page_bits = cfg_.geometry.pageBits();
    std::uint64_t pages =
        (data.size() + page_bits - 1) / page_bits;

    auto &[count, group_pages] = group_info_[group];
    if (count == 0) {
        group_pages = pages;
    } else {
        // Lockstep invariant (see class comment).
        fcos_assert(group_pages == pages,
                    "group %llu vectors must have equal page counts "
                    "(%llu vs %llu)",
                    (unsigned long long)group,
                    (unsigned long long)group_pages,
                    (unsigned long long)pages);
    }

    VectorInfo v;
    v.bits = data.size();
    v.inverted = opts.storeInverted;
    v.group = group;
    v.orderInGroup = count++;
    v.pages = ftl_.allocateInGroup(group, pages);

    nand::EspParams esp{cfg_.espFactor};
    for (std::uint64_t j = 0; j < pages; ++j) {
        std::uint64_t begin = j * page_bits;
        std::uint64_t len =
            std::min<std::uint64_t>(page_bits, data.size() - begin);
        BitVector page(page_bits, false);
        page.paste(0, data.slice(begin, len));
        if (v.inverted)
            page.invert();
        const ssd::PhysPage &p = v.pages[j];
        if (cfg_.defaultMode == nand::ProgramMode::SlcEsp)
            chips_[p.die]->programPageEsp(p.addr, page, esp);
        else
            chips_[p.die]->programPage(p.addr, page, cfg_.defaultMode);
    }

    VectorId id = static_cast<VectorId>(vectors_.size());
    vectors_.push_back(std::move(v));
    return id;
}

MwsPlan
FlashCosmosDrive::planFor(const Expr &expr) const
{
    return planner_.plan(expr);
}

void
FlashCosmosDrive::addOp(ReadStats *stats, const nand::OpResult &op,
                        bool is_sense)
{
    if (!stats)
        return;
    stats->nandTime += op.latency;
    stats->nandEnergyJ += op.energyJ;
    if (is_sense)
        ++stats->senses;
}

BitVector
FlashCosmosDrive::executeOnColumn(const MwsPlan &plan, const Expr &expr,
                                  std::size_t page_index,
                                  ReadStats *stats)
{
    // Locate the column (die, plane) from any leaf; validate agreement.
    std::vector<VectorId> leaves = expr.leafIds();
    fcos_assert(!leaves.empty(), "expression with no leaves");
    const ssd::PhysPage &first = info(leaves[0]).pages[page_index];
    std::uint32_t die = first.die;
    std::uint32_t plane = first.addr.plane;
    for (VectorId id : leaves) {
        const ssd::PhysPage &p = info(id).pages[page_index];
        fcos_assert(p.die == die && p.addr.plane == plane,
                    "operands of one expression must stripe identically");
    }
    nand::NandChip &chip = *chips_[die];

    auto member_addr = [&](const Literal &l) -> const nand::WordlineAddr & {
        return info(l.id).pages[page_index].addr;
    };

    if (plan.kind == MwsPlan::Kind::Xor) {
        auto sense_lit = [&](const Literal &l, bool extra_invert,
                             bool first_op) {
            const nand::WordlineAddr &a = member_addr(l);
            bool stored_mismatch =
                info(l.id).inverted != l.negated; // stored != literal
            nand::MwsCommand cmd;
            cmd.plane = plane;
            cmd.flags.inverseRead = stored_mismatch ^ extra_invert;
            cmd.flags.initSenseLatch = true;
            cmd.flags.initCacheLatch = first_op;
            cmd.flags.dumpToCache = first_op;
            cmd.selections.push_back(nand::WlSelection{
                a.block, a.subBlock, 1ULL << a.wordline});
            nand::OpResult op = chip.executeMws(cmd);
            addOp(stats, op, true);
            if (stats)
                ++stats->mwsCommands;
        };
        fcos_assert(plan.xorMembers.size() >= 2, "degenerate XOR plan");
        for (std::size_t i = 0; i < plan.xorMembers.size(); ++i) {
            bool last = (i + 1 == plan.xorMembers.size());
            // The overall parity folds into the last member's sense.
            sense_lit(plan.xorMembers[i], last && plan.xorInvert,
                      i == 0);
            if (i > 0) {
                nand::OpResult op = chip.executeXor(plane);
                addOp(stats, op, false);
                if (stats)
                    ++stats->latchXors;
            }
        }
        return chip.dataOut(plane);
    }

    if (plan.kind == MwsPlan::Kind::Fallback) {
        // Serial page reads + controller-side evaluation. Reads use
        // inverse mode for inverse-stored vectors, recovering logical
        // values directly.
        std::map<VectorId, BitVector> page_values;
        for (VectorId id : leaves) {
            const nand::WordlineAddr &a = info(id).pages[page_index].addr;
            nand::OpResult op =
                chip.readPage(a, info(id).inverted);
            addOp(stats, op, true);
            if (stats)
                ++stats->pageReads;
            page_values.emplace(id, chip.dataOut(plane));
        }
        return expr.evaluate(
            [&](VectorId id) -> const BitVector & {
                return page_values.at(id);
            });
    }

    // MWS command chain.
    for (const PlanCommand &pc : plan.commands) {
        nand::MwsCommand cmd;
        cmd.plane = plane;
        cmd.flags.inverseRead = pc.inverse;
        cmd.flags.initSenseLatch = true;
        switch (pc.merge) {
          case MergeMode::Copy:
            cmd.flags.initCacheLatch = true;
            cmd.flags.dumpToCache = true;
            break;
          case MergeMode::And:
            cmd.flags.initCacheLatch = false;
            cmd.flags.dumpToCache = true;
            break;
          case MergeMode::Or:
            cmd.flags.initCacheLatch = false;
            cmd.flags.dumpToCache = false;
            break;
        }
        for (const PlanString &s : pc.strings) {
            fcos_assert(!s.members.empty(), "empty plan string");
            const nand::WordlineAddr &a0 = member_addr(s.members[0]);
            nand::WlSelection sel{a0.block, a0.subBlock, 0};
            for (const Literal &m : s.members) {
                const nand::WordlineAddr &a = member_addr(m);
                fcos_assert(a.block == sel.block &&
                                a.subBlock == sel.subBlock,
                            "string members not co-located "
                            "(planner/placement bug)");
                sel.wlMask |= 1ULL << a.wordline;
            }
            cmd.selections.push_back(sel);
        }
        nand::OpResult op = chip.executeMws(cmd);
        addOp(stats, op, true);
        if (stats)
            ++stats->mwsCommands;
        if (pc.merge == MergeMode::Or) {
            // Legacy cache-read OR transfer (Figure 6(c) path).
            chip.latches(plane).dumpOrMerge();
        }
    }

    if (plan.finalInvert) {
        // Sense the reserved erased wordline (reads all-'1'), then
        // XOR it into the cache latch: C := NOT C.
        std::uint32_t column = die * cfg_.geometry.planesPerDie + plane;
        const nand::WordlineAddr &e = erased_ref_[column].addr;
        fcos_assert(erased_ref_[column].die == die, "erased ref layout");
        nand::MwsCommand cmd;
        cmd.plane = plane;
        cmd.flags.inverseRead = false;
        cmd.flags.initSenseLatch = true;
        cmd.flags.initCacheLatch = false;
        cmd.flags.dumpToCache = false;
        cmd.selections.push_back(
            nand::WlSelection{e.block, e.subBlock, 1ULL << e.wordline});
        nand::OpResult op = chip.executeMws(cmd);
        addOp(stats, op, true);
        if (stats)
            ++stats->mwsCommands;
        nand::OpResult xop = chip.executeXor(plane);
        addOp(stats, xop, false);
        if (stats)
            ++stats->latchXors;
    }

    return chip.dataOut(plane);
}

BitVector
FlashCosmosDrive::fcRead(const Expr &expr, ReadStats *stats)
{
    std::vector<VectorId> leaves = expr.leafIds();
    fcos_assert(!leaves.empty(), "fcRead of constant expression");
    std::size_t bits = info(leaves[0]).bits;
    std::size_t pages = info(leaves[0]).pages.size();
    for (VectorId id : leaves) {
        fcos_assert(info(id).bits == bits,
                    "fcRead operands must have equal sizes");
        fcos_assert(info(id).pages.size() == pages, "page count mismatch");
    }

    MwsPlan plan = planner_.plan(expr);
    if (stats) {
        stats->planKind = plan.kind;
        stats->planText = plan.toString();
    }
    if (plan.kind == MwsPlan::Kind::Fallback) {
        fcos_warn("fcRead falling back to serial reads: %s",
                  plan.fallbackReason.c_str());
    }

    std::uint64_t page_bits = cfg_.geometry.pageBits();
    BitVector result(bits);
    for (std::size_t j = 0; j < pages; ++j) {
        BitVector page = executeOnColumn(plan, expr, j, stats);
        if (stats)
            ++stats->resultPages;
        std::size_t begin = j * page_bits;
        std::size_t len = std::min<std::size_t>(page_bits, bits - begin);
        result.paste(begin, page.slice(0, len));
    }
    return result;
}

VectorId
FlashCosmosDrive::fcCompute(const Expr &expr, const WriteOptions &opts,
                            ReadStats *stats)
{
    std::vector<VectorId> leaves = expr.leafIds();
    fcos_assert(!leaves.empty(), "fcCompute of constant expression");
    std::size_t bits = info(leaves[0]).bits;
    std::size_t pages = info(leaves[0]).pages.size();
    for (VectorId id : leaves) {
        fcos_assert(info(id).bits == bits,
                    "fcCompute operands must have equal sizes");
        fcos_assert(info(id).pages.size() == pages,
                    "page count mismatch");
    }

    // Inverted storage computes the complement into the latch.
    Expr stored_expr = opts.storeInverted ? Expr::Not(expr) : expr;
    MwsPlan plan = planner_.plan(stored_expr);
    if (stats) {
        stats->planKind = plan.kind;
        stats->planText = plan.toString();
    }

    std::uint64_t group = opts.group;
    if (group == kAutoGroup)
        group = next_auto_group_++;
    auto &[count, group_pages] = group_info_[group];
    if (count == 0) {
        group_pages = pages;
    } else {
        fcos_assert(group_pages == pages,
                    "group %llu vectors must have equal page counts",
                    (unsigned long long)group);
    }

    VectorInfo v;
    v.bits = bits;
    v.inverted = opts.storeInverted;
    v.group = group;
    v.orderInGroup = count++;
    v.pages = ftl_.allocateInGroup(group, pages);

    nand::EspParams esp{cfg_.espFactor};
    for (std::size_t j = 0; j < pages; ++j) {
        if (plan.kind == MwsPlan::Kind::Fallback) {
            // Compute controller-side, then write the page normally.
            fcos_warn("fcCompute falling back to serial reads: %s",
                      plan.fallbackReason.c_str());
            BitVector page =
                executeOnColumn(plan, stored_expr, j, stats);
            const ssd::PhysPage &dst = v.pages[j];
            chips_[dst.die]->programPageEsp(dst.addr, page, esp);
            continue;
        }
        executeOnColumn(plan, stored_expr, j, stats);
        const ssd::PhysPage &dst = v.pages[j];
        // The operands' column and the destination column round-robin
        // identically, so the latch holding the result belongs to the
        // destination's plane.
        const ssd::PhysPage &src = info(leaves[0]).pages[j];
        fcos_assert(dst.die == src.die &&
                        dst.addr.plane == src.addr.plane,
                    "fcCompute destination must share the plane");
        nand::OpResult op = chips_[dst.die]->programFromCache(
            dst.addr, nand::ProgramMode::SlcEsp, esp);
        addOp(stats, op, false);
    }

    VectorId id = static_cast<VectorId>(vectors_.size());
    vectors_.push_back(std::move(v));
    return id;
}

BitVector
FlashCosmosDrive::readVector(VectorId id, ReadStats *stats)
{
    const VectorInfo &v = info(id);
    std::uint64_t page_bits = cfg_.geometry.pageBits();
    BitVector result(v.bits);
    for (std::size_t j = 0; j < v.pages.size(); ++j) {
        const ssd::PhysPage &p = v.pages[j];
        nand::OpResult op =
            chips_[p.die]->readPage(p.addr, v.inverted);
        addOp(stats, op, true);
        if (stats) {
            ++stats->pageReads;
            ++stats->resultPages;
        }
        const BitVector &page = chips_[p.die]->dataOut(p.addr.plane);
        std::size_t begin = j * page_bits;
        std::size_t len =
            std::min<std::size_t>(page_bits, v.bits - begin);
        result.paste(begin, page.slice(0, len));
    }
    return result;
}

} // namespace fcos::core
