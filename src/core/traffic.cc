#include "core/traffic.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <functional>

#include "util/rng.h"
#include "util/units.h"

namespace fcos::core {
namespace {

// Same FNV-1a constants as DigestSink — the traffic digest is a fold
// of per-request stream digests in submission order.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::size_t kPoolGroups = 4;
constexpr std::size_t kVectorBits = 1000; ///< 4 tiny-geometry pages

/** Request class of open-loop slot @p i (6:2:2 read:write:compute). */
std::size_t
classOfSlot(std::uint32_t i)
{
    const std::uint32_t slot = i % 10;
    return slot < 6 ? 0 : (slot < 8 ? 1 : 2);
}

ClassLatency
summarize(std::vector<Time> &lat)
{
    ClassLatency s;
    s.count = lat.size();
    if (lat.empty())
        return s;
    std::sort(lat.begin(), lat.end());
    s.p50 = lat[(lat.size() - 1) / 2];
    s.p99 = lat[(lat.size() - 1) * 99 / 100];
    return s;
}

} // namespace

std::string
TrafficConfig::label() const
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%gus %u:%u:%u", interArrivalUs,
                  qosReadWeight, qosWriteWeight, qosComputeWeight);
    return buf;
}

TrafficPoint
runMixedTraffic(const TrafficConfig &cfg)
{
    FlashCosmosDrive::Config dc;
    dc.channels = cfg.channels;
    dc.dies = cfg.dies;
    dc.workers = cfg.workers;
    dc.admissionDepth = cfg.admissionDepth;
    dc.qosReadWeight = cfg.qosReadWeight;
    dc.qosWriteWeight = cfg.qosWriteWeight;
    dc.qosComputeWeight = cfg.qosComputeWeight;
    FlashCosmosDrive drive(dc);

    const std::uint32_t columns =
        cfg.channels * cfg.dies * dc.geometry.planesPerDie;
    const auto home = [columns](std::size_t g) {
        return static_cast<std::uint32_t>((g * 3) % columns);
    };

    // Operand pool: two co-located vectors per group, groups spread
    // over home columns so independent requests land on distinct dies.
    Rng rng = Rng::seeded(20260808);
    std::vector<VectorId> pool;
    for (std::size_t g = 0; g < kPoolGroups; ++g) {
        for (int v = 0; v < 2; ++v) {
            BitVector vec(kVectorBits);
            vec.randomize(rng);
            FlashCosmosDrive::WriteOptions opts;
            opts.group = g + 1;
            opts.homeColumn = home(g);
            pool.push_back(drive.fcWrite(vec, opts));
        }
    }

    const Time t0 = drive.now();
    const Time gap = usToTime(cfg.interArrivalUs);

    std::size_t read_count = 0;
    for (std::uint32_t i = 0; i < cfg.requests; ++i)
        read_count += classOfSlot(i) == 0;
    std::vector<DigestSink> sinks(read_count);
    std::vector<Time> lats[3];

    const auto wall0 = std::chrono::steady_clock::now();
    std::size_t r = 0;
    for (std::uint32_t i = 0; i < cfg.requests; ++i) {
        const std::size_t cls = classOfSlot(i);
        const std::size_t g = i % kPoolGroups;
        FlashCosmosDrive::RequestOptions ro;
        ro.arrival = t0 + gap * i;
        ro.onOutcome =
            [&lats, cls](const engine::RequestQueue::Outcome &oc) {
                lats[cls].push_back(oc.completed - oc.arrival);
            };
        if (cls == 0) {
            drive.submitReadVector(pool[(i * 5 + 1) % pool.size()],
                                   sinks[r++], nullptr, ro);
        } else if (cls == 1) {
            BitVector vec(kVectorBits);
            vec.randomize(rng);
            FlashCosmosDrive::WriteOptions opts;
            opts.group = g + 1;
            opts.homeColumn = home(g);
            drive.submitWrite(vec, opts, ro);
        } else {
            FlashCosmosDrive::WriteOptions opts;
            opts.group = g + 1;
            opts.homeColumn = home(g);
            drive.submitCompute(Expr::leaf(pool[2 * g]) &
                                    Expr::leaf(pool[2 * g + 1]),
                                opts, nullptr, ro);
        }
        // Paced (open-loop) submission: drain the clock up to the
        // current arrival so the staged-request window stays bounded.
        if ((i & 31) == 31)
            drive.advanceTo(ro.arrival);
    }
    drive.waitAll();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall0;

    TrafficPoint p;
    for (int c = 0; c < 3; ++c)
        p.byClass[c] = summarize(lats[c]);
    p.makespan = drive.now() - t0;
    p.energyJ = drive.engine().totalEnergyJ();
    std::uint64_t d = kFnvOffset;
    for (const DigestSink &s : sinks) {
        d ^= s.digest();
        d *= kFnvPrime;
    }
    p.digest = d;
    p.wallSeconds = wall.count();
    p.requestsPerSecond =
        wall.count() > 0.0 ? cfg.requests / wall.count() : 0.0;
    return p;
}

namespace {

/** Log2-bucket latency histogram: O(1) memory for any request count,
 *  quantiles reported as bucket lower bounds (deterministic). */
struct LatencyBuckets
{
    std::uint64_t counts[65] = {};
    std::uint64_t total = 0;

    void record(Time lat)
    {
        ++counts[std::bit_width(static_cast<std::uint64_t>(lat))];
        ++total;
    }

    Time quantile(std::uint64_t pct) const
    {
        if (total == 0)
            return 0;
        const std::uint64_t rank = (total - 1) * pct / 100;
        std::uint64_t cum = 0;
        for (int b = 0; b <= 64; ++b) {
            cum += counts[b];
            if (cum > rank)
                return b == 0 ? 0 : Time{1} << (b - 1);
        }
        return 0;
    }

    ClassLatency summary() const
    {
        return ClassLatency{total, quantile(50), quantile(99)};
    }
};

/** Request class of closed-loop op @p n (6:3:1 read:write:compute). */
std::size_t
classOfOp(std::uint64_t n)
{
    const std::uint64_t slot = n % 10;
    if (slot == 7)
        return 2;
    return (slot == 3 || slot == 5 || slot == 9) ? 1 : 0;
}

} // namespace

std::string
ClosedLoopConfig::label() const
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%lluk x%u %u:%u:%u",
                  static_cast<unsigned long long>(requests / 1000),
                  inflight, qosReadWeight, qosWriteWeight,
                  qosComputeWeight);
    return buf;
}

ClosedLoopPoint
runClosedLoopTraffic(const ClosedLoopConfig &cfg)
{
    FlashCosmosDrive::Config dc;
    dc.channels = cfg.channels;
    dc.dies = cfg.dies;
    dc.workers = cfg.workers;
    dc.admissionDepth = cfg.admissionDepth;
    dc.qosReadWeight = cfg.qosReadWeight;
    dc.qosWriteWeight = cfg.qosWriteWeight;
    dc.qosComputeWeight = cfg.qosComputeWeight;
    FlashCosmosDrive drive(dc);

    const std::uint32_t columns =
        cfg.channels * cfg.dies * dc.geometry.planesPerDie;
    const std::uint32_t inflight = std::max(1u, cfg.inflight);
    const std::uint32_t slots = std::max(1u, cfg.slots);
    const std::uint64_t seed = 0x50a6'20260808ULL;
    const auto home = [columns](std::uint64_t g) {
        return static_cast<std::uint32_t>((g * 3) % columns);
    };
    const auto slotHome = [columns](std::uint32_t s) {
        return static_cast<std::uint32_t>((s * 5 + 1) % columns);
    };
    /** Single-page image of write @p n (procedural: no host payload
     *  is materialized, so a million writes stay O(1) memory). */
    const auto pageGen = [seed](std::uint64_t n) {
        return [seed, n](std::uint64_t) {
            return nand::PageImage::random(Rng::mix(seed, n));
        };
    };
    // Churn groups sit far above the stable pool ids and far below the
    // drive's auto-group range.
    constexpr std::uint64_t kChurnGroupBase = 1000;
    constexpr std::uint64_t kResidentGroup = 999;
    const std::uint32_t residents = std::max(1u, cfg.residents);
    const std::uint32_t resident_home = 2 % columns;

    // Stable compute-operand pool: two co-located single-page vectors
    // per group, never trimmed. GC must relocate these live sub-blocks
    // as units whenever churn garbage accumulates around them.
    std::vector<VectorId> pool;
    for (std::uint64_t g = 0; g < kPoolGroups; ++g) {
        for (std::uint64_t v = 0; v < 2; ++v) {
            FlashCosmosDrive::WriteOptions wo;
            wo.group = g + 1;
            wo.homeColumn = home(g);
            pool.push_back(
                drive.submitWritePages(pageGen(g * 2 + v), 1, wo, {})
                    .vector);
        }
    }
    // Churn working set: the vectors the closed loop overwrites and
    // trims — the invalid-capacity source that forces recycling.
    std::vector<VectorId> slot_vec(slots);
    for (std::uint32_t s = 0; s < slots; ++s) {
        FlashCosmosDrive::WriteOptions wo;
        wo.group = kChurnGroupBase + s;
        wo.homeColumn = slotHome(s);
        slot_vec[s] =
            drive.submitWritePages(pageGen(1000 + s), 1, wo, {}).vector;
    }
    // Resident working set: one stripe row per vector, all in one
    // group, so 8 successive residents pack the 8 wordlines of one
    // sub-block per column. Out-of-phase overwrites punch holes into
    // those shared sub-blocks — the garbage only live-page relocation
    // can reclaim.
    std::vector<VectorId> resident_vec(residents);
    for (std::uint32_t r = 0; r < residents; ++r) {
        FlashCosmosDrive::WriteOptions wo;
        wo.group = kResidentGroup;
        wo.homeColumn = resident_home;
        resident_vec[r] =
            drive.submitWritePages(pageGen(3000 + r), columns, wo, {})
                .vector;
    }
    drive.waitAll();
    const Time t0 = drive.now();

    // One chain per inflight unit; chain c serves ops c, c+inflight,
    // c+2*inflight, ... — a fixed per-chain sequence, so the schedule
    // (and the digest fold) is worker-invariant.
    struct Chain
    {
        DigestSink sink;
        FlashCosmosDrive::ReadStats stats;
        std::uint64_t next = 0;
        VectorId scratch = kDriveNoVector;
    };
    std::vector<Chain> chains(inflight);
    LatencyBuckets lats[3];
    std::uint64_t completed = 0;
    std::uint64_t write_counter = 2000; // page-image stream, post-setup
    // Residents are rewritten in a sequential sweep, not hashed: the
    // FTL reclaims holes only when a whole sub-block dies (unit moves
    // preserve wordline offsets), so a sweep — which kills the 8
    // wordlines of each resident sub-block back to back — keeps the
    // partially-dead sub count bounded. Hashed selection drains subs
    // so slowly that holes accumulate past device capacity.
    std::uint64_t resident_sweep = 0;

    std::function<void(std::uint32_t)> submitNext =
        [&](std::uint32_t c) {
            Chain &ch = chains[c];
            if (ch.next >= cfg.requests)
                return;
            const std::uint64_t n = ch.next;
            ch.next += inflight;
            const std::size_t cls = classOfOp(n);
            FlashCosmosDrive::RequestOptions ro;
            ro.onOutcome =
                [&, c, cls](const engine::RequestQueue::Outcome &oc) {
                    lats[cls].record(oc.completed - oc.arrival);
                    ++completed;
                    submitNext(c); // closed loop: completion refills
                };
            const std::uint32_t s =
                static_cast<std::uint32_t>((n * 7 + c) % slots);
            const std::uint64_t sel = n % 10;
            if (cls == 0) {
                // Read whatever version of the slot is current at
                // submit — deterministic, since submits happen in
                // serial contexts on the simulated clock.
                drive.submitReadVector(slot_vec[s], ch.sink, &ch.stats,
                                       ro);
            } else if (cls == 1 && sel == 9) {
                // Resident overwrite: invalidates one wordline of a
                // packed, mostly-live sub-block per column.
                const std::uint32_t r = static_cast<std::uint32_t>(
                    resident_sweep++ % residents);
                FlashCosmosDrive::WriteOptions wo;
                wo.group = kResidentGroup;
                wo.homeColumn = resident_home;
                wo.replaces = resident_vec[r];
                resident_vec[r] =
                    drive
                        .submitWritePages(pageGen(write_counter++),
                                          columns, wo, ro)
                        .vector;
            } else if (cls == 1) {
                FlashCosmosDrive::WriteOptions wo;
                wo.group = kChurnGroupBase + s;
                wo.homeColumn = slotHome(s);
                if (sel == 5) {
                    // Explicit trim, then append (the two-call form).
                    drive.trimVector(slot_vec[s]);
                } else {
                    // Overwrite semantics: one call trims + appends.
                    wo.replaces = slot_vec[s];
                }
                slot_vec[s] =
                    drive
                        .submitWritePages(pageGen(write_counter++), 1,
                                          wo, ro)
                        .vector;
            } else {
                // In-flash compute over a stable pair. The scratch
                // result must co-locate with its operands (program-
                // from-latch stays on the operand column), so it is
                // trimmed right at completion — otherwise every chain
                // could pile a scratch sub-block onto one column.
                const std::uint64_t g = (c + n) % kPoolGroups;
                FlashCosmosDrive::WriteOptions wo;
                wo.homeColumn = home(g);
                ro.onOutcome =
                    [&, c, cls](const engine::RequestQueue::Outcome &oc) {
                        Chain &self = chains[c];
                        drive.trimVector(self.scratch);
                        self.scratch = kDriveNoVector;
                        lats[cls].record(oc.completed - oc.arrival);
                        ++completed;
                        submitNext(c);
                    };
                ch.scratch =
                    drive
                        .submitCompute(Expr::leaf(pool[2 * g]) &
                                           Expr::leaf(pool[2 * g + 1]),
                                       wo, &ch.stats, ro)
                        .vector;
            }
        };

    const auto wall0 = std::chrono::steady_clock::now();
    for (std::uint32_t c = 0; c < inflight; ++c) {
        chains[c].next = c;
        submitNext(c);
    }
    drive.waitAll();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall0;

    ClosedLoopPoint p;
    p.completed = completed;
    for (int c = 0; c < 3; ++c)
        p.byClass[c] = lats[c].summary();
    p.makespan = drive.now() - t0;
    p.energyJ = drive.engine().totalEnergyJ();
    std::uint64_t d = kFnvOffset;
    for (const Chain &ch : chains) {
        d ^= ch.sink.digest();
        d *= kFnvPrime;
    }
    p.digest = d;
    p.wallSeconds = wall.count();
    p.requestsPerSecond =
        wall.count() > 0.0 ? completed / wall.count() : 0.0;
    p.liveVectors = drive.liveVectorCount();
    p.liveRequests = drive.admission().liveRequestCount();
    for (const Chain &ch : chains)
        p.peakStreamPages =
            std::max(p.peakStreamPages, ch.stats.streamPeakPages);
    const FlashCosmosDrive::GcTotals &gc = drive.gcTotals();
    p.gcRuns = gc.runs;
    p.gcPageCopies = gc.pageCopies;
    p.gcBlocksErased = gc.blocksErased;
    p.hostPagesWritten = gc.hostPagesWritten;
    return p;
}

std::vector<TrafficConfig>
defaultTrafficSweep()
{
    std::vector<TrafficConfig> sweep;
    for (double gap_us : {50.0, 10.0, 2.0}) {
        for (int qos = 0; qos < 2; ++qos) {
            TrafficConfig cfg;
            cfg.interArrivalUs = gap_us;
            if (qos == 1) {
                cfg.qosReadWeight = 4;
                cfg.qosWriteWeight = 2;
                cfg.qosComputeWeight = 1;
            }
            sweep.push_back(cfg);
        }
    }
    return sweep;
}

TablePrinter
trafficReport(const std::vector<TrafficConfig> &configs,
              std::vector<TrafficPoint> *points)
{
    TablePrinter table("mixed traffic: simulated throughput vs latency");
    table.setHeader({"config", "reqs", "rd p50us", "rd p99us",
                     "wr p50us", "wr p99us", "cp p50us", "cp p99us",
                     "span us", "energy J", "digest"});
    for (const TrafficConfig &cfg : configs) {
        const TrafficPoint p = runMixedTraffic(cfg);
        char digest[24];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(p.digest));
        table.addRow({cfg.label(),
                      TablePrinter::cellInt(cfg.requests),
                      TablePrinter::cell(timeToUs(p.byClass[0].p50), 1),
                      TablePrinter::cell(timeToUs(p.byClass[0].p99), 1),
                      TablePrinter::cell(timeToUs(p.byClass[1].p50), 1),
                      TablePrinter::cell(timeToUs(p.byClass[1].p99), 1),
                      TablePrinter::cell(timeToUs(p.byClass[2].p50), 1),
                      TablePrinter::cell(timeToUs(p.byClass[2].p99), 1),
                      TablePrinter::cell(timeToUs(p.makespan), 1),
                      TablePrinter::cellSci(p.energyJ, 3), digest});
        if (points)
            points->push_back(p);
    }
    return table;
}

} // namespace fcos::core
