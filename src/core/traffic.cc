#include "core/traffic.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/rng.h"
#include "util/units.h"

namespace fcos::core {
namespace {

// Same FNV-1a constants as DigestSink — the traffic digest is a fold
// of per-request stream digests in submission order.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::size_t kPoolGroups = 4;
constexpr std::size_t kVectorBits = 1000; ///< 4 tiny-geometry pages

/** Request class of open-loop slot @p i (6:2:2 read:write:compute). */
std::size_t
classOfSlot(std::uint32_t i)
{
    const std::uint32_t slot = i % 10;
    return slot < 6 ? 0 : (slot < 8 ? 1 : 2);
}

ClassLatency
summarize(std::vector<Time> &lat)
{
    ClassLatency s;
    s.count = lat.size();
    if (lat.empty())
        return s;
    std::sort(lat.begin(), lat.end());
    s.p50 = lat[(lat.size() - 1) / 2];
    s.p99 = lat[(lat.size() - 1) * 99 / 100];
    return s;
}

} // namespace

std::string
TrafficConfig::label() const
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%gus %u:%u:%u", interArrivalUs,
                  qosReadWeight, qosWriteWeight, qosComputeWeight);
    return buf;
}

TrafficPoint
runMixedTraffic(const TrafficConfig &cfg)
{
    FlashCosmosDrive::Config dc;
    dc.channels = cfg.channels;
    dc.dies = cfg.dies;
    dc.workers = cfg.workers;
    dc.admissionDepth = cfg.admissionDepth;
    dc.qosReadWeight = cfg.qosReadWeight;
    dc.qosWriteWeight = cfg.qosWriteWeight;
    dc.qosComputeWeight = cfg.qosComputeWeight;
    FlashCosmosDrive drive(dc);

    const std::uint32_t columns =
        cfg.channels * cfg.dies * dc.geometry.planesPerDie;
    const auto home = [columns](std::size_t g) {
        return static_cast<std::uint32_t>((g * 3) % columns);
    };

    // Operand pool: two co-located vectors per group, groups spread
    // over home columns so independent requests land on distinct dies.
    Rng rng = Rng::seeded(20260808);
    std::vector<VectorId> pool;
    for (std::size_t g = 0; g < kPoolGroups; ++g) {
        for (int v = 0; v < 2; ++v) {
            BitVector vec(kVectorBits);
            vec.randomize(rng);
            FlashCosmosDrive::WriteOptions opts;
            opts.group = g + 1;
            opts.homeColumn = home(g);
            pool.push_back(drive.fcWrite(vec, opts));
        }
    }

    const Time t0 = drive.now();
    const Time gap = usToTime(cfg.interArrivalUs);

    std::size_t read_count = 0;
    for (std::uint32_t i = 0; i < cfg.requests; ++i)
        read_count += classOfSlot(i) == 0;
    std::vector<DigestSink> sinks(read_count);
    std::vector<Time> lats[3];

    const auto wall0 = std::chrono::steady_clock::now();
    std::size_t r = 0;
    for (std::uint32_t i = 0; i < cfg.requests; ++i) {
        const std::size_t cls = classOfSlot(i);
        const std::size_t g = i % kPoolGroups;
        FlashCosmosDrive::RequestOptions ro;
        ro.arrival = t0 + gap * i;
        ro.onOutcome =
            [&lats, cls](const engine::RequestQueue::Outcome &oc) {
                lats[cls].push_back(oc.completed - oc.arrival);
            };
        if (cls == 0) {
            drive.submitReadVector(pool[(i * 5 + 1) % pool.size()],
                                   sinks[r++], nullptr, ro);
        } else if (cls == 1) {
            BitVector vec(kVectorBits);
            vec.randomize(rng);
            FlashCosmosDrive::WriteOptions opts;
            opts.group = g + 1;
            opts.homeColumn = home(g);
            drive.submitWrite(vec, opts, ro);
        } else {
            FlashCosmosDrive::WriteOptions opts;
            opts.group = g + 1;
            opts.homeColumn = home(g);
            drive.submitCompute(Expr::leaf(pool[2 * g]) &
                                    Expr::leaf(pool[2 * g + 1]),
                                opts, nullptr, ro);
        }
        // Paced (open-loop) submission: drain the clock up to the
        // current arrival so the staged-request window stays bounded.
        if ((i & 31) == 31)
            drive.advanceTo(ro.arrival);
    }
    drive.waitAll();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall0;

    TrafficPoint p;
    for (int c = 0; c < 3; ++c)
        p.byClass[c] = summarize(lats[c]);
    p.makespan = drive.now() - t0;
    p.energyJ = drive.engine().totalEnergyJ();
    std::uint64_t d = kFnvOffset;
    for (const DigestSink &s : sinks) {
        d ^= s.digest();
        d *= kFnvPrime;
    }
    p.digest = d;
    p.wallSeconds = wall.count();
    p.requestsPerSecond =
        wall.count() > 0.0 ? cfg.requests / wall.count() : 0.0;
    return p;
}

std::vector<TrafficConfig>
defaultTrafficSweep()
{
    std::vector<TrafficConfig> sweep;
    for (double gap_us : {50.0, 10.0, 2.0}) {
        for (int qos = 0; qos < 2; ++qos) {
            TrafficConfig cfg;
            cfg.interArrivalUs = gap_us;
            if (qos == 1) {
                cfg.qosReadWeight = 4;
                cfg.qosWriteWeight = 2;
                cfg.qosComputeWeight = 1;
            }
            sweep.push_back(cfg);
        }
    }
    return sweep;
}

TablePrinter
trafficReport(const std::vector<TrafficConfig> &configs,
              std::vector<TrafficPoint> *points)
{
    TablePrinter table("mixed traffic: simulated throughput vs latency");
    table.setHeader({"config", "reqs", "rd p50us", "rd p99us",
                     "wr p50us", "wr p99us", "cp p50us", "cp p99us",
                     "span us", "energy J", "digest"});
    for (const TrafficConfig &cfg : configs) {
        const TrafficPoint p = runMixedTraffic(cfg);
        char digest[24];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(p.digest));
        table.addRow({cfg.label(),
                      TablePrinter::cellInt(cfg.requests),
                      TablePrinter::cell(timeToUs(p.byClass[0].p50), 1),
                      TablePrinter::cell(timeToUs(p.byClass[0].p99), 1),
                      TablePrinter::cell(timeToUs(p.byClass[1].p50), 1),
                      TablePrinter::cell(timeToUs(p.byClass[1].p99), 1),
                      TablePrinter::cell(timeToUs(p.byClass[2].p50), 1),
                      TablePrinter::cell(timeToUs(p.byClass[2].p99), 1),
                      TablePrinter::cell(timeToUs(p.makespan), 1),
                      TablePrinter::cellSci(p.energyJ, 3), digest});
        if (points)
            points->push_back(p);
    }
    return table;
}

} // namespace fcos::core
