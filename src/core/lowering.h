/**
 * @file
 * Lowers compiled MwsPlans to concrete chip commands.
 *
 * The planner (core/planner.h) reasons over abstract vector ids; a
 * plan becomes executable once every literal is bound to a physical
 * wordline. That binding differs per consumer — FlashCosmosDrive binds
 * through its FTL placement per page column, the platform runner's
 * functional mode binds through its own batch layout — but the mapping
 * from PlanCommands / XOR chains to MWS command bytes, ISCM flags, OR
 * dumps and latch XORs is hardware semantics and must exist exactly
 * once. lowerPlan() is that one place: both execution paths feed it
 * their address resolver and drive the resulting step list, so the
 * figure workloads and the fc_read library cannot drift apart in how
 * they translate plans to silicon.
 */

#ifndef FCOS_CORE_LOWERING_H
#define FCOS_CORE_LOWERING_H

#include <cstdint>
#include <functional>
#include <vector>

#include "core/plan.h"
#include "nand/command.h"

namespace fcos::core {

/** One die-local step of a lowered plan. */
struct LoweredStep
{
    enum class Kind : std::uint8_t
    {
        Sense,    ///< execute cmd (an MWS sense)
        LatchXor, ///< on-chip C := S XOR C
    };

    Kind kind = Kind::Sense;
    nand::MwsCommand cmd; ///< valid for Kind::Sense
    /** Legacy cache-read OR transfer (Figure 6(c)) after the sense. */
    bool orMergeAfter = false;
};

/** Physical binding of a plan's literals for one page column. */
struct LoweringContext
{
    /** Target plane of every lowered command. */
    std::uint32_t plane = 0;
    /** Wordline of a literal's stored page on this column. */
    std::function<nand::WordlineAddr(VectorId)> addrOf;
    /** Storage polarity (XOR plans fold it into the sensing mode). */
    std::function<bool(VectorId)> storedInverted;
    /** Reserved never-programmed wordline (senses all-'1'), required
     *  when the plan ends in a final NOT; may be null otherwise. */
    const nand::WordlineAddr *erasedRef = nullptr;
};

/**
 * Lower @p plan (Kind::Mws or Kind::Xor; fallback plans have no chip
 * execution) to an ordered step list against one plane's latch pair.
 */
std::vector<LoweredStep> lowerPlan(const MwsPlan &plan,
                                   const LoweringContext &ctx);

} // namespace fcos::core

#endif // FCOS_CORE_LOWERING_H
