#include "core/planner.h"

#include <algorithm>
#include <functional>
#include <map>

#include "util/log.h"

namespace fcos::core {

namespace {

std::string
mergeName(MergeMode m)
{
    switch (m) {
      case MergeMode::Copy:
        return "copy";
      case MergeMode::And:
        return "and";
      case MergeMode::Or:
        return "or";
    }
    return "?";
}

} // namespace

std::string
MwsPlan::toString() const
{
    switch (kind) {
      case Kind::Xor: {
        std::string s = "XOR plan:";
        for (std::size_t i = 0; i < xorMembers.size(); ++i) {
            if (i)
                s += " ^";
            s += " ";
            if (xorMembers[i].negated)
                s += "!";
            s += "v" + std::to_string(xorMembers[i].id);
        }
        if (xorInvert)
            s += " [inverted]";
        return s;
      }
      case Kind::Fallback:
        return "FALLBACK: " + fallbackReason;
      case Kind::Mws: {
        std::string s = "MWS plan (" + std::to_string(commands.size()) +
                        " commands)";
        for (const auto &c : commands) {
            s += "\n  [" + mergeName(c.merge) + "]";
            s += c.inverse ? " inverse" : " normal";
            for (const auto &str : c.strings) {
                s += " {";
                for (std::size_t i = 0; i < str.members.size(); ++i) {
                    if (i)
                        s += ",";
                    if (str.members[i].negated)
                        s += "!";
                    s += "v" + std::to_string(str.members[i].id);
                }
                s += "}";
            }
        }
        if (finalInvert)
            s += "\n  [final invert]";
        return s;
      }
    }
    return "?";
}

Planner::Nnf
Planner::toNnf(const Expr &e, bool negate)
{
    Nnf n;
    switch (e.op()) {
      case BitOp::Leaf:
        n.kind = Nnf::Kind::Lit;
        n.lit = Literal{e.id(), negate};
        return n;
      case BitOp::Not:
        return toNnf(e.children()[0], !negate);
      case BitOp::And:
      case BitOp::Nand: {
        bool inner_neg = negate ^ (e.op() == BitOp::Nand);
        n.kind = inner_neg ? Nnf::Kind::Or : Nnf::Kind::And;
        for (const Expr &c : e.children())
            n.children.push_back(toNnf(c, inner_neg));
        return n;
      }
      case BitOp::Or:
      case BitOp::Nor: {
        bool inner_neg = negate ^ (e.op() == BitOp::Nor);
        n.kind = inner_neg ? Nnf::Kind::And : Nnf::Kind::Or;
        for (const Expr &c : e.children())
            n.children.push_back(toNnf(c, inner_neg));
        return n;
      }
      case BitOp::Xor:
      case BitOp::Xnor: {
        n.kind = Nnf::Kind::Xor;
        n.xorInvert = negate ^ (e.op() == BitOp::Xnor);
        n.children.push_back(toNnf(e.children()[0], false));
        n.children.push_back(toNnf(e.children()[1], false));
        return n;
      }
    }
    fcos_panic("bad op");
}

void
Planner::flatten(Nnf &n)
{
    for (Nnf &c : n.children)
        flatten(c);
    if (n.kind != Nnf::Kind::And && n.kind != Nnf::Kind::Or)
        return;
    // Absorb children of the same kind and unwrap single-child nodes.
    std::vector<Nnf> merged;
    for (Nnf &c : n.children) {
        if (c.kind == n.kind) {
            for (Nnf &gc : c.children)
                merged.push_back(std::move(gc));
        } else {
            merged.push_back(std::move(c));
        }
    }
    n.children = std::move(merged);
    if (n.children.size() == 1) {
        Nnf only = std::move(n.children[0]);
        n = std::move(only);
    }
}

bool
Planner::normalLiteralOk(const Literal &l) const
{
    // The sensed (stored) data must equal the literal's value.
    return storage_.isStoredInverted(l.id) == l.negated;
}

bool
Planner::inverseLiteralOk(const Literal &l) const
{
    // The sensed data must equal the literal's complement.
    return storage_.isStoredInverted(l.id) != l.negated;
}

std::optional<PlanString>
Planner::normalString(const Nnf &n) const
{
    // A string computes AND of its members' stored data, so it can
    // realize a single literal or an AND of co-located literals.
    if (n.kind == Nnf::Kind::Lit) {
        if (!normalLiteralOk(n.lit))
            return std::nullopt;
        return PlanString{{n.lit}};
    }
    if (n.kind != Nnf::Kind::And)
        return std::nullopt;
    PlanString s;
    std::uint64_t key = 0;
    bool first = true;
    for (const Nnf &c : n.children) {
        if (c.kind != Nnf::Kind::Lit || !normalLiteralOk(c.lit))
            return std::nullopt;
        std::uint64_t k = storage_.stringKey(c.lit.id);
        if (first) {
            key = k;
            first = false;
        } else if (k != key) {
            return std::nullopt; // not co-located in one sub-block
        }
        s.members.push_back(c.lit);
    }
    return s;
}

std::optional<PlanCommand>
Planner::singleCommand(const Nnf &n) const
{
    switch (n.kind) {
      case Nnf::Kind::Lit: {
        PlanCommand cmd;
        if (normalLiteralOk(n.lit)) {
            cmd.inverse = false;
        } else {
            cmd.inverse = true; // sensed data is the complement
        }
        cmd.strings.push_back(PlanString{{n.lit}});
        return cmd;
      }
      case Nnf::Kind::And: {
        // (i) one co-located string sensed normally;
        if (auto s = normalString(n)) {
            PlanCommand cmd;
            cmd.inverse = false;
            cmd.strings.push_back(std::move(*s));
            return cmd;
        }
        // (ii) inverse command: AND over strings of OR over each
        // string's complemented stored data. Children may be literals
        // (1-member strings) or OR groups of co-located inverse-stored
        // literals (Figure 16's first command).
        PlanCommand cmd;
        cmd.inverse = true;
        for (const Nnf &c : n.children) {
            if (c.kind == Nnf::Kind::Lit) {
                if (!inverseLiteralOk(c.lit))
                    return std::nullopt;
                cmd.strings.push_back(PlanString{{c.lit}});
            } else if (c.kind == Nnf::Kind::Or) {
                PlanString s;
                std::uint64_t key = 0;
                bool first = true;
                for (const Nnf &gc : c.children) {
                    if (gc.kind != Nnf::Kind::Lit ||
                        !inverseLiteralOk(gc.lit))
                        return std::nullopt;
                    std::uint64_t k = storage_.stringKey(gc.lit.id);
                    if (first) {
                        key = k;
                        first = false;
                    } else if (k != key) {
                        return std::nullopt;
                    }
                    s.members.push_back(gc.lit);
                }
                cmd.strings.push_back(std::move(s));
            } else {
                return std::nullopt;
            }
        }
        if (cmd.strings.size() > PlanCommand::kMaxStrings)
            return std::nullopt;
        return cmd;
      }
      case Nnf::Kind::Or: {
        // (a) inverse: one co-located string of inverse-stored
        // literals — NOT(AND(stored)) == OR(values) (§6.1).
        {
            PlanString s;
            std::uint64_t key = 0;
            bool first = true;
            bool ok = true;
            for (const Nnf &c : n.children) {
                if (c.kind != Nnf::Kind::Lit ||
                    !inverseLiteralOk(c.lit)) {
                    ok = false;
                    break;
                }
                std::uint64_t k = storage_.stringKey(c.lit.id);
                if (first) {
                    key = k;
                    first = false;
                } else if (k != key) {
                    ok = false;
                    break;
                }
                s.members.push_back(c.lit);
            }
            if (ok) {
                PlanCommand cmd;
                cmd.inverse = true;
                cmd.strings.push_back(std::move(s));
                return cmd;
            }
        }
        // (b) normal: OR over up to four strings (literals or
        // co-located AND groups) — inter-block MWS.
        PlanCommand cmd;
        cmd.inverse = false;
        for (const Nnf &c : n.children) {
            auto s = normalString(c);
            if (!s)
                return std::nullopt;
            cmd.strings.push_back(std::move(*s));
        }
        if (cmd.strings.size() > PlanCommand::kMaxStrings)
            return std::nullopt;
        return cmd;
      }
      case Nnf::Kind::Xor:
        return std::nullopt;
    }
    return std::nullopt;
}

std::optional<std::vector<PlanCommand>>
Planner::planChain(const Nnf &n) const
{
    if (n.kind == Nnf::Kind::Lit) {
        auto cmd = singleCommand(n);
        if (!cmd)
            return std::nullopt;
        return std::vector<PlanCommand>{std::move(*cmd)};
    }
    if (n.kind == Nnf::Kind::Xor)
        return std::nullopt;

    bool is_and = (n.kind == Nnf::Kind::And);
    MergeMode merge = is_and ? MergeMode::And : MergeMode::Or;

    std::vector<PlanCommand> built;    // commands from batchable factors
    std::vector<PlanCommand> deep;     // chain of the one deep child
    bool have_deep = false;

    if (is_and) {
        // Pools: plain co-located literal groups (one intra-block MWS
        // each) and inverse strings (literals + OR groups, <= 4 per
        // inverse command).
        std::map<std::uint64_t, PlanString> normal_groups;
        std::vector<PlanString> inverse_pool;
        for (const Nnf &c : n.children) {
            if (c.kind == Nnf::Kind::Lit && normalLiteralOk(c.lit)) {
                normal_groups[storage_.stringKey(c.lit.id)]
                    .members.push_back(c.lit);
                continue;
            }
            if (c.kind == Nnf::Kind::Lit && inverseLiteralOk(c.lit)) {
                inverse_pool.push_back(PlanString{{c.lit}});
                continue;
            }
            if (c.kind == Nnf::Kind::Or) {
                // Try the inverse-string realization for pooling.
                PlanString s;
                std::uint64_t key = 0;
                bool first = true;
                bool ok = true;
                for (const Nnf &gc : c.children) {
                    if (gc.kind != Nnf::Kind::Lit ||
                        !inverseLiteralOk(gc.lit)) {
                        ok = false;
                        break;
                    }
                    std::uint64_t k = storage_.stringKey(gc.lit.id);
                    if (first) {
                        key = k;
                        first = false;
                    } else if (k != key) {
                        ok = false;
                        break;
                    }
                    s.members.push_back(gc.lit);
                }
                if (ok) {
                    inverse_pool.push_back(std::move(s));
                    continue;
                }
            }
            if (auto cmd = singleCommand(c)) {
                built.push_back(std::move(*cmd));
                continue;
            }
            auto chain = planChain(c);
            if (!chain || have_deep)
                return std::nullopt; // only one accumulator exists
            deep = std::move(*chain);
            have_deep = true;
        }
        for (auto &[key, s] : normal_groups) {
            (void)key;
            PlanCommand cmd;
            cmd.inverse = false;
            cmd.strings.push_back(std::move(s));
            built.push_back(std::move(cmd));
        }
        for (std::size_t i = 0; i < inverse_pool.size();
             i += PlanCommand::kMaxStrings) {
            PlanCommand cmd;
            cmd.inverse = true;
            for (std::size_t j = i;
                 j < std::min(inverse_pool.size(),
                              i + PlanCommand::kMaxStrings);
                 ++j)
                cmd.strings.push_back(std::move(inverse_pool[j]));
            built.push_back(std::move(cmd));
        }
    } else {
        // OR chain. Pools: normal strings (literals and co-located AND
        // groups, <= 4 strings per inter-block MWS) and co-located
        // inverse-stored literal groups (one inverse command each).
        std::vector<PlanString> normal_pool;
        std::map<std::uint64_t, PlanString> inverse_groups;
        for (const Nnf &c : n.children) {
            if (auto s = normalString(c)) {
                normal_pool.push_back(std::move(*s));
                continue;
            }
            if (c.kind == Nnf::Kind::Lit && inverseLiteralOk(c.lit)) {
                inverse_groups[storage_.stringKey(c.lit.id)]
                    .members.push_back(c.lit);
                continue;
            }
            if (auto cmd = singleCommand(c)) {
                built.push_back(std::move(*cmd));
                continue;
            }
            auto chain = planChain(c);
            if (!chain || have_deep)
                return std::nullopt;
            deep = std::move(*chain);
            have_deep = true;
        }
        // Pack the pooled strings into inter-block commands. A chained
        // (multi-member AND-group) string may share a command with
        // plain strings only when the whole pool fits in one command —
        // the KCS fusion, where the OR operands ride as the AND
        // command's spare string slots. Beyond that budget chained
        // strings and plain strings pack into *separate* commands
        // (each kMaxStrings at a time), exactly how the analytic
        // sense-count model (PlatformRunner::fcSensesPerRow) charges
        // wide mixed batches: AND commands first, then OR-merge
        // commands of plain strings. Mixing the two pools would beat
        // the model and break the functional-vs-timing certification.
        auto pack = [&built](std::vector<PlanString> &pool) {
            for (std::size_t i = 0; i < pool.size();
                 i += PlanCommand::kMaxStrings) {
                PlanCommand cmd;
                cmd.inverse = false;
                for (std::size_t j = i;
                     j < std::min(pool.size(),
                                  i + PlanCommand::kMaxStrings);
                     ++j)
                    cmd.strings.push_back(std::move(pool[j]));
                built.push_back(std::move(cmd));
            }
        };
        if (normal_pool.size() <= PlanCommand::kMaxStrings) {
            pack(normal_pool);
        } else {
            std::vector<PlanString> chained, singles;
            for (PlanString &s : normal_pool)
                (s.members.size() > 1 ? chained : singles)
                    .push_back(std::move(s));
            pack(chained);
            pack(singles);
        }
        for (auto &[key, s] : inverse_groups) {
            (void)key;
            PlanCommand cmd;
            cmd.inverse = true;
            cmd.strings.push_back(std::move(s));
            built.push_back(std::move(cmd));
        }
    }

    std::vector<PlanCommand> chain;
    if (have_deep) {
        chain = std::move(deep);
    } else {
        fcos_assert(!built.empty(), "chain with no commands");
        chain.push_back(std::move(built.front()));
        built.erase(built.begin());
        chain.front().merge = MergeMode::Copy;
    }
    for (auto &cmd : built) {
        cmd.merge = merge;
        chain.push_back(std::move(cmd));
    }
    return chain;
}

MwsPlan
Planner::plan(const Expr &expr) const
{
    Nnf nnf = toNnf(expr, false);
    flatten(nnf);

    // XOR / XNOR chains of stored vectors: on-chip latch XOR. Nested
    // XOR nodes flatten into one chain; every negation (XNOR nodes,
    // negated literals) contributes to a single overall parity bit.
    if (nnf.kind == Nnf::Kind::Xor) {
        MwsPlan p;
        p.kind = MwsPlan::Kind::Xor;
        bool ok = true;
        std::function<void(const Nnf &)> gather = [&](const Nnf &n) {
            if (n.kind == Nnf::Kind::Lit) {
                p.xorMembers.push_back(Literal{n.lit.id, false});
                p.xorInvert ^= n.lit.negated;
                return;
            }
            if (n.kind == Nnf::Kind::Xor) {
                p.xorInvert ^= n.xorInvert;
                for (const Nnf &c : n.children)
                    gather(c);
                return;
            }
            ok = false;
        };
        gather(nnf);
        if (ok && p.xorMembers.size() >= 2)
            return p;
        MwsPlan f;
        f.kind = MwsPlan::Kind::Fallback;
        f.fallbackReason =
            "XOR chain members must be stored vectors (or their "
            "negations)";
        return f;
    }

    if (auto chain = planChain(nnf)) {
        MwsPlan p;
        p.commands = std::move(*chain);
        p.commands.front().merge = MergeMode::Copy;
        return p;
    }

    // Try the complement: NOT(expr) may linearize even when expr does
    // not (e.g. NAND over plain-stored operands).
    Nnf comp = toNnf(expr, true);
    flatten(comp);
    if (comp.kind != Nnf::Kind::Xor) {
        if (auto chain = planChain(comp)) {
            MwsPlan p;
            p.commands = std::move(*chain);
            p.commands.front().merge = MergeMode::Copy;
            if (p.commands.size() == 1) {
                // A single command inverts for free via inverse mode.
                p.commands.front().inverse =
                    !p.commands.front().inverse;
            } else {
                p.finalInvert = true;
            }
            return p;
        }
    }

    MwsPlan p;
    p.kind = MwsPlan::Kind::Fallback;
    p.fallbackReason =
        "expression does not linearize onto the single latch "
        "accumulator with the current data placement: " +
        expr.toString();
    return p;
}

} // namespace fcos::core
