/**
 * @file
 * Mixed-traffic generator and throughput-vs-latency sweep over the
 * drive's concurrent request API.
 *
 * An open-loop arrival process submits interleaved read / write /
 * compute requests (paced with FlashCosmosDrive::advanceTo so the
 * staged-request window stays bounded) and collects per-class
 * end-to-end latency quantiles — simulated arrival-to-completion,
 * queue wait included. The simulated side of every point (quantiles,
 * makespan, energy, payload digest) is bit-deterministic at any
 * worker count; the wall-clock side (requests/second of the host
 * simulator) is measured per run. bench/mixed_traffic prints both,
 * and the golden test pins the deterministic table.
 */

#ifndef FCOS_CORE_TRAFFIC_H
#define FCOS_CORE_TRAFFIC_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/drive.h"
#include "util/table.h"

namespace fcos::core {

struct TrafficConfig
{
    std::uint32_t channels = 2;
    std::uint32_t dies = 2; ///< per channel (tiny geometry)
    /** 0 = FCOS_WORKERS env default; results are worker-invariant. */
    std::uint32_t workers = 0;
    std::uint32_t admissionDepth = 8;
    std::uint32_t qosReadWeight = 1;
    std::uint32_t qosWriteWeight = 1;
    std::uint32_t qosComputeWeight = 1;
    /** Open-loop request count (6:2:2 read:write:compute mix). */
    std::uint32_t requests = 120;
    /** Mean inter-arrival gap of the open-loop process. */
    double interArrivalUs = 10.0;

    /** "20us 4:2:1" style row label. */
    std::string label() const;
};

/** Per-class simulated latency summary (arrival -> completion). */
struct ClassLatency
{
    std::uint64_t count = 0;
    Time p50 = 0;
    Time p99 = 0;
};

struct TrafficPoint
{
    ClassLatency byClass[3]; ///< indexed by engine::RequestClass
    /** Traffic span on the simulated clock (first arrival to last
     *  completion). */
    Time makespan = 0;
    double energyJ = 0.0;
    /** Order-sensitive fold of every read request's stream digest —
     *  the cross-worker-count determinism certificate. */
    std::uint64_t digest = 0;
    double wallSeconds = 0.0;
    double requestsPerSecond = 0.0;
};

/** Run one mixed-traffic configuration to completion. */
TrafficPoint runMixedTraffic(const TrafficConfig &cfg);

/** The default sweep: arrival rates x QoS weight settings, serial. */
std::vector<TrafficConfig> defaultTrafficSweep();

/**
 * Deterministic throughput-vs-latency table over @p configs (the
 * wall-clock columns are deliberately excluded so the table can be
 * pinned as a golden). Points are appended to @p points when given.
 */
TablePrinter trafficReport(const std::vector<TrafficConfig> &configs,
                           std::vector<TrafficPoint> *points = nullptr);

} // namespace fcos::core

#endif // FCOS_CORE_TRAFFIC_H
