/**
 * @file
 * Mixed-traffic generator and throughput-vs-latency sweep over the
 * drive's concurrent request API.
 *
 * An open-loop arrival process submits interleaved read / write /
 * compute requests (paced with FlashCosmosDrive::advanceTo so the
 * staged-request window stays bounded) and collects per-class
 * end-to-end latency quantiles — simulated arrival-to-completion,
 * queue wait included. The simulated side of every point (quantiles,
 * makespan, energy, payload digest) is bit-deterministic at any
 * worker count; the wall-clock side (requests/second of the host
 * simulator) is measured per run. bench/mixed_traffic prints both,
 * and the golden test pins the deterministic table.
 */

#ifndef FCOS_CORE_TRAFFIC_H
#define FCOS_CORE_TRAFFIC_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/drive.h"
#include "util/table.h"

namespace fcos::core {

struct TrafficConfig
{
    std::uint32_t channels = 2;
    std::uint32_t dies = 2; ///< per channel (tiny geometry)
    /** 0 = FCOS_WORKERS env default; results are worker-invariant. */
    std::uint32_t workers = 0;
    std::uint32_t admissionDepth = 8;
    std::uint32_t qosReadWeight = 1;
    std::uint32_t qosWriteWeight = 1;
    std::uint32_t qosComputeWeight = 1;
    /** Open-loop request count (6:2:2 read:write:compute mix). */
    std::uint32_t requests = 120;
    /** Mean inter-arrival gap of the open-loop process. */
    double interArrivalUs = 10.0;

    /** "20us 4:2:1" style row label. */
    std::string label() const;
};

/** Per-class simulated latency summary (arrival -> completion). */
struct ClassLatency
{
    std::uint64_t count = 0;
    Time p50 = 0;
    Time p99 = 0;
};

struct TrafficPoint
{
    ClassLatency byClass[3]; ///< indexed by engine::RequestClass
    /** Traffic span on the simulated clock (first arrival to last
     *  completion). */
    Time makespan = 0;
    double energyJ = 0.0;
    /** Order-sensitive fold of every read request's stream digest —
     *  the cross-worker-count determinism certificate. */
    std::uint64_t digest = 0;
    double wallSeconds = 0.0;
    double requestsPerSecond = 0.0;
};

/** Run one mixed-traffic configuration to completion. */
TrafficPoint runMixedTraffic(const TrafficConfig &cfg);

/**
 * Closed-loop steady-state generator: @p inflight independent request
 * chains, each keeping exactly one request in flight, continuously
 * reading, overwriting, trimming, and computing over a bounded working
 * set until @p requests requests have completed. Overwrites and trims
 * invalidate old pages, so the drive must recycle capacity (GC) to
 * serve the stream — unlike the open-loop mixed sweep, which only
 * appends. Every drive-side quantity is bit-deterministic at any
 * worker count; host memory stays O(working set + inflight) no matter
 * how many requests are served — the soak tier's contract.
 */
struct ClosedLoopConfig
{
    std::uint32_t channels = 2;
    std::uint32_t dies = 2; ///< per channel (tiny geometry)
    /** 0 = FCOS_WORKERS env default; results are worker-invariant. */
    std::uint32_t workers = 0;
    std::uint32_t admissionDepth = 8;
    std::uint32_t qosReadWeight = 1;
    std::uint32_t qosWriteWeight = 1;
    std::uint32_t qosComputeWeight = 1;
    /** Closed-loop requests to serve (6:3:1 read:write:compute). */
    std::uint64_t requests = 1'000'000;
    /** Concurrent request chains (each chain: one request at a time). */
    std::uint32_t inflight = 8;
    /** Churn working set: single-page vectors being overwritten and
     *  trimmed (the invalid-capacity source GC reclaims). */
    std::uint32_t slots = 16;
    /** Resident working set: one-row vectors packed into a shared
     *  placement group (8 per sub-block wordline-stacked) and
     *  overwritten out of phase — garbage accumulates as holes in
     *  mostly-live sub-blocks, so GC has to *relocate* live pages
     *  (copyback traffic), not just erase dead blocks. Sized to keep
     *  the drive ~2/3 full. */
    std::uint32_t residents = 40;

    std::string label() const;
};

struct ClosedLoopPoint
{
    std::uint64_t completed = 0;
    /** Per-class end-to-end latency (log2-bucket approximation, so
     *  recording a million requests stays O(1) memory). */
    ClassLatency byClass[3];
    Time makespan = 0;
    double energyJ = 0.0;
    /** Order-sensitive fold of per-chain read digests — the
     *  cross-worker-count determinism certificate. */
    std::uint64_t digest = 0;
    double wallSeconds = 0.0;
    double requestsPerSecond = 0.0;

    // Steady-state bookkeeping at quiesce:
    std::uint64_t liveVectors = 0;  ///< stored vectors (bounded)
    std::uint64_t liveRequests = 0; ///< must be 0 after waitAll
    std::uint64_t peakStreamPages = 0;
    std::uint64_t gcRuns = 0;
    std::uint64_t gcPageCopies = 0;
    std::uint64_t gcBlocksErased = 0;
    std::uint64_t hostPagesWritten = 0;
};

/** Run one closed-loop configuration to completion. */
ClosedLoopPoint runClosedLoopTraffic(const ClosedLoopConfig &cfg);

/** The default sweep: arrival rates x QoS weight settings, serial. */
std::vector<TrafficConfig> defaultTrafficSweep();

/**
 * Deterministic throughput-vs-latency table over @p configs (the
 * wall-clock columns are deliberately excluded so the table can be
 * pinned as a golden). Points are appended to @p points when given.
 */
TablePrinter trafficReport(const std::vector<TrafficConfig> &configs,
                           std::vector<TrafficPoint> *points = nullptr);

} // namespace fcos::core

#endif // FCOS_CORE_TRAFFIC_H
